file(REMOVE_RECURSE
  "CMakeFiles/secure_inference_service.dir/secure_inference_service.cpp.o"
  "CMakeFiles/secure_inference_service.dir/secure_inference_service.cpp.o.d"
  "secure_inference_service"
  "secure_inference_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_inference_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
