# Empty dependencies file for secure_inference_service.
# This may be replaced when dependencies are built.
