file(REMOVE_RECURSE
  "CMakeFiles/fault_detection_demo.dir/fault_detection_demo.cpp.o"
  "CMakeFiles/fault_detection_demo.dir/fault_detection_demo.cpp.o.d"
  "fault_detection_demo"
  "fault_detection_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_detection_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
