# Empty dependencies file for fault_detection_demo.
# This may be replaced when dependencies are built.
