file(REMOVE_RECURSE
  "CMakeFiles/selective_mvx_tuning.dir/selective_mvx_tuning.cpp.o"
  "CMakeFiles/selective_mvx_tuning.dir/selective_mvx_tuning.cpp.o.d"
  "selective_mvx_tuning"
  "selective_mvx_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selective_mvx_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
