# Empty compiler generated dependencies file for selective_mvx_tuning.
# This may be replaced when dependencies are built.
