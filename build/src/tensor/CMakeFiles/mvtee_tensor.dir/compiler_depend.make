# Empty compiler generated dependencies file for mvtee_tensor.
# This may be replaced when dependencies are built.
