file(REMOVE_RECURSE
  "libmvtee_tensor.a"
)
