file(REMOVE_RECURSE
  "CMakeFiles/mvtee_tensor.dir/tensor.cc.o"
  "CMakeFiles/mvtee_tensor.dir/tensor.cc.o.d"
  "libmvtee_tensor.a"
  "libmvtee_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvtee_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
