file(REMOVE_RECURSE
  "libmvtee_util.a"
)
