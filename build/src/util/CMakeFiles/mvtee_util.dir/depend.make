# Empty dependencies file for mvtee_util.
# This may be replaced when dependencies are built.
