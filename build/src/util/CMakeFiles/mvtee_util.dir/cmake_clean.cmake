file(REMOVE_RECURSE
  "CMakeFiles/mvtee_util.dir/bytes.cc.o"
  "CMakeFiles/mvtee_util.dir/bytes.cc.o.d"
  "CMakeFiles/mvtee_util.dir/logging.cc.o"
  "CMakeFiles/mvtee_util.dir/logging.cc.o.d"
  "CMakeFiles/mvtee_util.dir/rng.cc.o"
  "CMakeFiles/mvtee_util.dir/rng.cc.o.d"
  "CMakeFiles/mvtee_util.dir/status.cc.o"
  "CMakeFiles/mvtee_util.dir/status.cc.o.d"
  "libmvtee_util.a"
  "libmvtee_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvtee_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
