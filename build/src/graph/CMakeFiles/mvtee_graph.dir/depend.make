# Empty dependencies file for mvtee_graph.
# This may be replaced when dependencies are built.
