file(REMOVE_RECURSE
  "libmvtee_graph.a"
)
