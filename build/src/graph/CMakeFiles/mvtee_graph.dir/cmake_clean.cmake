file(REMOVE_RECURSE
  "CMakeFiles/mvtee_graph.dir/builder.cc.o"
  "CMakeFiles/mvtee_graph.dir/builder.cc.o.d"
  "CMakeFiles/mvtee_graph.dir/ir.cc.o"
  "CMakeFiles/mvtee_graph.dir/ir.cc.o.d"
  "CMakeFiles/mvtee_graph.dir/model_zoo.cc.o"
  "CMakeFiles/mvtee_graph.dir/model_zoo.cc.o.d"
  "libmvtee_graph.a"
  "libmvtee_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvtee_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
