file(REMOVE_RECURSE
  "libmvtee_runtime.a"
)
