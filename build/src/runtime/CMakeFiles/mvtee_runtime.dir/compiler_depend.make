# Empty compiler generated dependencies file for mvtee_runtime.
# This may be replaced when dependencies are built.
