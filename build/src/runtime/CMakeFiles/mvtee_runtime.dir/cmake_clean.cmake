file(REMOVE_RECURSE
  "CMakeFiles/mvtee_runtime.dir/executor.cc.o"
  "CMakeFiles/mvtee_runtime.dir/executor.cc.o.d"
  "CMakeFiles/mvtee_runtime.dir/gemm.cc.o"
  "CMakeFiles/mvtee_runtime.dir/gemm.cc.o.d"
  "CMakeFiles/mvtee_runtime.dir/kernels.cc.o"
  "CMakeFiles/mvtee_runtime.dir/kernels.cc.o.d"
  "libmvtee_runtime.a"
  "libmvtee_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvtee_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
