
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/executor.cc" "src/runtime/CMakeFiles/mvtee_runtime.dir/executor.cc.o" "gcc" "src/runtime/CMakeFiles/mvtee_runtime.dir/executor.cc.o.d"
  "/root/repo/src/runtime/gemm.cc" "src/runtime/CMakeFiles/mvtee_runtime.dir/gemm.cc.o" "gcc" "src/runtime/CMakeFiles/mvtee_runtime.dir/gemm.cc.o.d"
  "/root/repo/src/runtime/kernels.cc" "src/runtime/CMakeFiles/mvtee_runtime.dir/kernels.cc.o" "gcc" "src/runtime/CMakeFiles/mvtee_runtime.dir/kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mvtee_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mvtee_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mvtee_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
