file(REMOVE_RECURSE
  "libmvtee_core.a"
)
