# Empty dependencies file for mvtee_core.
# This may be replaced when dependencies are built.
