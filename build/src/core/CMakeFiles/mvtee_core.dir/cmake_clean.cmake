file(REMOVE_RECURSE
  "CMakeFiles/mvtee_core.dir/consistency.cc.o"
  "CMakeFiles/mvtee_core.dir/consistency.cc.o.d"
  "CMakeFiles/mvtee_core.dir/messages.cc.o"
  "CMakeFiles/mvtee_core.dir/messages.cc.o.d"
  "CMakeFiles/mvtee_core.dir/monitor.cc.o"
  "CMakeFiles/mvtee_core.dir/monitor.cc.o.d"
  "CMakeFiles/mvtee_core.dir/offline.cc.o"
  "CMakeFiles/mvtee_core.dir/offline.cc.o.d"
  "CMakeFiles/mvtee_core.dir/owner.cc.o"
  "CMakeFiles/mvtee_core.dir/owner.cc.o.d"
  "CMakeFiles/mvtee_core.dir/variant_host.cc.o"
  "CMakeFiles/mvtee_core.dir/variant_host.cc.o.d"
  "libmvtee_core.a"
  "libmvtee_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvtee_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
