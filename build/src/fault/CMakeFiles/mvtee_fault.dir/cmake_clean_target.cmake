file(REMOVE_RECURSE
  "libmvtee_fault.a"
)
