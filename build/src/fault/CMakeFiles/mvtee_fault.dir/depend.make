# Empty dependencies file for mvtee_fault.
# This may be replaced when dependencies are built.
