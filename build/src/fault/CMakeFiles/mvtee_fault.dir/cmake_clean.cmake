file(REMOVE_RECURSE
  "CMakeFiles/mvtee_fault.dir/campaign.cc.o"
  "CMakeFiles/mvtee_fault.dir/campaign.cc.o.d"
  "CMakeFiles/mvtee_fault.dir/injectors.cc.o"
  "CMakeFiles/mvtee_fault.dir/injectors.cc.o.d"
  "libmvtee_fault.a"
  "libmvtee_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvtee_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
