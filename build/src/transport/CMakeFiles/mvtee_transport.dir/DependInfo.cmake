
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/channel.cc" "src/transport/CMakeFiles/mvtee_transport.dir/channel.cc.o" "gcc" "src/transport/CMakeFiles/mvtee_transport.dir/channel.cc.o.d"
  "/root/repo/src/transport/secure_channel.cc" "src/transport/CMakeFiles/mvtee_transport.dir/secure_channel.cc.o" "gcc" "src/transport/CMakeFiles/mvtee_transport.dir/secure_channel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mvtee_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mvtee_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/mvtee_tee.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
