file(REMOVE_RECURSE
  "CMakeFiles/mvtee_transport.dir/channel.cc.o"
  "CMakeFiles/mvtee_transport.dir/channel.cc.o.d"
  "CMakeFiles/mvtee_transport.dir/secure_channel.cc.o"
  "CMakeFiles/mvtee_transport.dir/secure_channel.cc.o.d"
  "libmvtee_transport.a"
  "libmvtee_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvtee_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
