# Empty dependencies file for mvtee_transport.
# This may be replaced when dependencies are built.
