file(REMOVE_RECURSE
  "libmvtee_transport.a"
)
