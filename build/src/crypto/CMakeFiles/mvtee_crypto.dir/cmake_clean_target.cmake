file(REMOVE_RECURSE
  "libmvtee_crypto.a"
)
