# Empty compiler generated dependencies file for mvtee_crypto.
# This may be replaced when dependencies are built.
