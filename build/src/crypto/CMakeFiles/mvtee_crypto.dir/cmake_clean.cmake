file(REMOVE_RECURSE
  "CMakeFiles/mvtee_crypto.dir/aead.cc.o"
  "CMakeFiles/mvtee_crypto.dir/aead.cc.o.d"
  "CMakeFiles/mvtee_crypto.dir/aes.cc.o"
  "CMakeFiles/mvtee_crypto.dir/aes.cc.o.d"
  "CMakeFiles/mvtee_crypto.dir/hmac.cc.o"
  "CMakeFiles/mvtee_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/mvtee_crypto.dir/rand.cc.o"
  "CMakeFiles/mvtee_crypto.dir/rand.cc.o.d"
  "CMakeFiles/mvtee_crypto.dir/sha256.cc.o"
  "CMakeFiles/mvtee_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/mvtee_crypto.dir/x25519.cc.o"
  "CMakeFiles/mvtee_crypto.dir/x25519.cc.o.d"
  "libmvtee_crypto.a"
  "libmvtee_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvtee_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
