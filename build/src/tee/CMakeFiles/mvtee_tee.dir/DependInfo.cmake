
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tee/enclave.cc" "src/tee/CMakeFiles/mvtee_tee.dir/enclave.cc.o" "gcc" "src/tee/CMakeFiles/mvtee_tee.dir/enclave.cc.o.d"
  "/root/repo/src/tee/manifest.cc" "src/tee/CMakeFiles/mvtee_tee.dir/manifest.cc.o" "gcc" "src/tee/CMakeFiles/mvtee_tee.dir/manifest.cc.o.d"
  "/root/repo/src/tee/sealed_fs.cc" "src/tee/CMakeFiles/mvtee_tee.dir/sealed_fs.cc.o" "gcc" "src/tee/CMakeFiles/mvtee_tee.dir/sealed_fs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mvtee_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mvtee_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
