file(REMOVE_RECURSE
  "libmvtee_tee.a"
)
