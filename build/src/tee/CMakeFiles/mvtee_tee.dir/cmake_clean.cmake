file(REMOVE_RECURSE
  "CMakeFiles/mvtee_tee.dir/enclave.cc.o"
  "CMakeFiles/mvtee_tee.dir/enclave.cc.o.d"
  "CMakeFiles/mvtee_tee.dir/manifest.cc.o"
  "CMakeFiles/mvtee_tee.dir/manifest.cc.o.d"
  "CMakeFiles/mvtee_tee.dir/sealed_fs.cc.o"
  "CMakeFiles/mvtee_tee.dir/sealed_fs.cc.o.d"
  "libmvtee_tee.a"
  "libmvtee_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvtee_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
