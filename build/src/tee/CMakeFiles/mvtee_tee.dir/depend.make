# Empty dependencies file for mvtee_tee.
# This may be replaced when dependencies are built.
