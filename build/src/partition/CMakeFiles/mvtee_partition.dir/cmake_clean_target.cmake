file(REMOVE_RECURSE
  "libmvtee_partition.a"
)
