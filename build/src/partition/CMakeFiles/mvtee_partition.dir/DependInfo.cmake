
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/partition.cc" "src/partition/CMakeFiles/mvtee_partition.dir/partition.cc.o" "gcc" "src/partition/CMakeFiles/mvtee_partition.dir/partition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mvtee_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mvtee_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mvtee_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
