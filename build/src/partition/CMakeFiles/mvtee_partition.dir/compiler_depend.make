# Empty compiler generated dependencies file for mvtee_partition.
# This may be replaced when dependencies are built.
