file(REMOVE_RECURSE
  "CMakeFiles/mvtee_partition.dir/partition.cc.o"
  "CMakeFiles/mvtee_partition.dir/partition.cc.o.d"
  "libmvtee_partition.a"
  "libmvtee_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvtee_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
