# Empty dependencies file for mvtee_variant.
# This may be replaced when dependencies are built.
