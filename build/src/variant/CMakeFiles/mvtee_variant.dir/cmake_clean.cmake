file(REMOVE_RECURSE
  "CMakeFiles/mvtee_variant.dir/spec.cc.o"
  "CMakeFiles/mvtee_variant.dir/spec.cc.o.d"
  "CMakeFiles/mvtee_variant.dir/transforms.cc.o"
  "CMakeFiles/mvtee_variant.dir/transforms.cc.o.d"
  "libmvtee_variant.a"
  "libmvtee_variant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvtee_variant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
