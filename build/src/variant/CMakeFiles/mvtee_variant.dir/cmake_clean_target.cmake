file(REMOVE_RECURSE
  "libmvtee_variant.a"
)
