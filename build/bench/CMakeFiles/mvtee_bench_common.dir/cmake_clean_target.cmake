file(REMOVE_RECURSE
  "libmvtee_bench_common.a"
)
