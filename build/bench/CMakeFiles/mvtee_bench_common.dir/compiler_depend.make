# Empty compiler generated dependencies file for mvtee_bench_common.
# This may be replaced when dependencies are built.
