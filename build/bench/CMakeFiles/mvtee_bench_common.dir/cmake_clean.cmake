file(REMOVE_RECURSE
  "CMakeFiles/mvtee_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/mvtee_bench_common.dir/bench_common.cc.o.d"
  "libmvtee_bench_common.a"
  "libmvtee_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvtee_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
