file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_horizontal.dir/bench_fig11_horizontal.cc.o"
  "CMakeFiles/bench_fig11_horizontal.dir/bench_fig11_horizontal.cc.o.d"
  "bench_fig11_horizontal"
  "bench_fig11_horizontal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_horizontal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
