# Empty dependencies file for bench_fig12_vertical.
# This may be replaced when dependencies are built.
