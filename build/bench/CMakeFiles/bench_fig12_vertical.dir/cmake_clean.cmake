file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_vertical.dir/bench_fig12_vertical.cc.o"
  "CMakeFiles/bench_fig12_vertical.dir/bench_fig12_vertical.cc.o.d"
  "bench_fig12_vertical"
  "bench_fig12_vertical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_vertical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
