file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_real_setup.dir/bench_fig14_real_setup.cc.o"
  "CMakeFiles/bench_fig14_real_setup.dir/bench_fig14_real_setup.cc.o.d"
  "bench_fig14_real_setup"
  "bench_fig14_real_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_real_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
