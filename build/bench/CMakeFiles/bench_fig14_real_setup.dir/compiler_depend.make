# Empty compiler generated dependencies file for bench_fig14_real_setup.
# This may be replaced when dependencies are built.
