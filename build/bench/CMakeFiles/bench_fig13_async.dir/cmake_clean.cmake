file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_async.dir/bench_fig13_async.cc.o"
  "CMakeFiles/bench_fig13_async.dir/bench_fig13_async.cc.o.d"
  "bench_fig13_async"
  "bench_fig13_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
