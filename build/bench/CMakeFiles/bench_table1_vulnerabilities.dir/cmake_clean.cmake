file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_vulnerabilities.dir/bench_table1_vulnerabilities.cc.o"
  "CMakeFiles/bench_table1_vulnerabilities.dir/bench_table1_vulnerabilities.cc.o.d"
  "bench_table1_vulnerabilities"
  "bench_table1_vulnerabilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_vulnerabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
