# Empty dependencies file for bench_fig9_partitioning.
# This may be replaced when dependencies are built.
