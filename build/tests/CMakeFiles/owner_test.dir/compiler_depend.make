# Empty compiler generated dependencies file for owner_test.
# This may be replaced when dependencies are built.
