file(REMOVE_RECURSE
  "CMakeFiles/owner_test.dir/owner_test.cc.o"
  "CMakeFiles/owner_test.dir/owner_test.cc.o.d"
  "owner_test"
  "owner_test.pdb"
  "owner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/owner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
