
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/util_test.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fault/CMakeFiles/mvtee_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mvtee_core.dir/DependInfo.cmake"
  "/root/repo/build/src/variant/CMakeFiles/mvtee_variant.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mvtee_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/mvtee_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mvtee_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mvtee_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/mvtee_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/mvtee_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mvtee_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mvtee_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
