# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/variant_test[1]_include.cmake")
include("/root/repo/build/tests/tee_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/owner_test[1]_include.cmake")
