// Unit tests for the variant lifecycle supervisor and the ReactionPolicy
// value type (state machine only — the monitor integration is covered by
// fault_test.cc lifecycle campaigns and system_test.cc).
#include "core/supervisor.h"

#include <gtest/gtest.h>

#include "core/reaction_policy.h"
#include "obs/metrics.h"

namespace mvtee::core {
namespace {

ReactionPolicy QuarantinePolicy() {
  return ReactionPolicy::Builder()
      .QuarantineAndRestart()
      .MinPanel(1)
      .ProbationBatches(2)
      .DissentThreshold(2)
      .RetryBudget(2)
      .Backoff(/*initial_us=*/100, /*multiplier=*/2.0, /*max_us=*/1'000)
      .Build();
}

std::vector<std::vector<std::string>> OneStage(int k) {
  std::vector<std::string> ids;
  for (int i = 0; i < k; ++i) ids.push_back("s0.v" + std::to_string(i));
  return {ids};
}

TEST(ReactionPolicyTest, FactoriesSetKind) {
  EXPECT_EQ(ReactionPolicy::Abort().kind, ReactionKind::kAbort);
  EXPECT_EQ(ReactionPolicy::ContinueWithWinner().kind,
            ReactionKind::kContinueWithWinner);
  EXPECT_EQ(ReactionPolicy::QuarantineAndRestart().kind,
            ReactionKind::kQuarantineAndRestart);
}

TEST(ReactionPolicyTest, BuilderClampsOutOfRangeKnobs) {
  const ReactionPolicy p = ReactionPolicy::Builder()
                               .QuarantineAndRestart()
                               .MinPanel(0)
                               .ProbationBatches(-3)
                               .DissentThreshold(0)
                               .RetryBudget(-1)
                               .Backoff(-5, 0.5, -10)
                               .Build();
  EXPECT_EQ(p.min_panel, 1);
  EXPECT_EQ(p.probation_batches, 1);
  EXPECT_EQ(p.dissent_threshold, 1);
  EXPECT_EQ(p.retry_budget, 0);
  EXPECT_EQ(p.initial_backoff_us, 0);
  EXPECT_EQ(p.backoff_multiplier, 1.0);
  EXPECT_GE(p.max_backoff_us, p.initial_backoff_us);
}

TEST(ReactionPolicyTest, KindNamesAreStable) {
  EXPECT_EQ(ReactionKindName(ReactionKind::kAbort), "abort");
  EXPECT_EQ(ReactionKindName(ReactionKind::kQuarantineAndRestart),
            "quarantine-and-restart");
}

class SupervisorTest : public ::testing::Test {
 protected:
  obs::Registry registry_;
};

TEST_F(SupervisorTest, DissentThresholdGatesQuarantine) {
  Supervisor sup(QuarantinePolicy(), &registry_);
  sup.Reset(OneStage(3));
  // First dissent: Suspect, still voting.
  EXPECT_FALSE(sup.ReportDissent(0, 1, 1'000));
  EXPECT_EQ(sup.state(0, 1), VariantLifecycle::kSuspect);
  EXPECT_TRUE(sup.Voting(0, 1));
  EXPECT_EQ(sup.ActiveCount(0), 3u);
  // Second dissent crosses the threshold: quarantined, panel shrinks.
  EXPECT_TRUE(sup.ReportDissent(0, 1, 2'000));
  EXPECT_EQ(sup.state(0, 1), VariantLifecycle::kQuarantined);
  EXPECT_FALSE(sup.Voting(0, 1));
  EXPECT_FALSE(sup.ChannelLive(0, 1));
  EXPECT_EQ(sup.ActiveCount(0), 2u);
  EXPECT_EQ(sup.quarantines_total(), 1u);
  EXPECT_TRUE(sup.AnyEvents());
}

TEST_F(SupervisorTest, HardFailureQuarantinesImmediately) {
  Supervisor sup(QuarantinePolicy(), &registry_);
  sup.Reset(OneStage(3));
  EXPECT_TRUE(sup.ReportFailure(0, 2, FailureKind::kCrash, 1'000));
  EXPECT_EQ(sup.state(0, 2), VariantLifecycle::kQuarantined);
  // Re-reporting an already-quarantined slot is a no-op.
  EXPECT_FALSE(sup.ReportFailure(0, 2, FailureKind::kChannel, 2'000));
  EXPECT_EQ(sup.quarantines_total(), 1u);
}

TEST_F(SupervisorTest, PanelFloorBlocksShrink) {
  auto policy = QuarantinePolicy();
  policy.min_panel = 2;
  Supervisor sup(policy, &registry_);
  sup.Reset(OneStage(3));
  EXPECT_TRUE(sup.ReportFailure(0, 0, FailureKind::kCrash, 1'000));
  EXPECT_EQ(sup.ActiveCount(0), 2u);
  // At the floor: the next failing slot stays in the panel as Suspect.
  EXPECT_FALSE(sup.ReportFailure(0, 1, FailureKind::kCrash, 2'000));
  EXPECT_EQ(sup.state(0, 1), VariantLifecycle::kSuspect);
  EXPECT_TRUE(sup.Voting(0, 1));
  EXPECT_EQ(sup.ActiveCount(0), 2u);
  EXPECT_EQ(sup.quarantines_total(), 1u);
}

TEST_F(SupervisorTest, BackoffIsCappedExponential) {
  Supervisor sup(QuarantinePolicy(), &registry_);
  sup.Reset(OneStage(3));
  ASSERT_TRUE(sup.ReportFailure(0, 0, FailureKind::kCrash, 10'000));
  // attempt 0 done -> initial backoff.
  EXPECT_EQ(sup.slot(0, 0).next_retry_us, 10'000 + 100);
  // Not due before the deadline, due after.
  EXPECT_TRUE(sup.DueForRebootstrap(10'050).empty());
  auto due = sup.DueForRebootstrap(10'100);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], (std::pair<size_t, size_t>{0, 0}));
  sup.BeginRebootstrap(0, 0);
  EXPECT_EQ(sup.state(0, 0), VariantLifecycle::kRebootstrapping);
  // Failed attempt: backoff doubles (100 * 2^1 = 200), still quarantined.
  EXPECT_EQ(sup.FinishRebootstrap(0, 0, false, 20'000),
            VariantLifecycle::kQuarantined);
  EXPECT_EQ(sup.slot(0, 0).next_retry_us, 20'000 + 200);
}

TEST_F(SupervisorTest, RetryBudgetExhaustionRetires) {
  Supervisor sup(QuarantinePolicy(), &registry_);  // retry_budget = 2
  sup.Reset(OneStage(3));
  ASSERT_TRUE(sup.ReportFailure(0, 0, FailureKind::kCrash, 0));
  sup.BeginRebootstrap(0, 0);
  ASSERT_EQ(sup.FinishRebootstrap(0, 0, false, 1'000),
            VariantLifecycle::kQuarantined);
  sup.BeginRebootstrap(0, 0);
  // Second (budget-final) failure retires the slot permanently.
  EXPECT_EQ(sup.FinishRebootstrap(0, 0, false, 2'000),
            VariantLifecycle::kRetired);
  EXPECT_EQ(sup.retirements_total(), 1u);
  EXPECT_TRUE(sup.DueForRebootstrap(1'000'000).empty());
  EXPECT_FALSE(sup.ChannelLive(0, 0));
}

TEST_F(SupervisorTest, ProbationReadmitsAfterCleanCheckpoints) {
  Supervisor sup(QuarantinePolicy(), &registry_);  // probation = 2
  sup.Reset(OneStage(3));
  ASSERT_TRUE(sup.ReportFailure(0, 1, FailureKind::kTimeout, 0));
  sup.BeginRebootstrap(0, 1);
  ASSERT_EQ(sup.FinishRebootstrap(0, 1, true, 1'000),
            VariantLifecycle::kProbation);
  EXPECT_TRUE(sup.Shadow(0, 1));
  EXPECT_TRUE(sup.ChannelLive(0, 1));
  EXPECT_FALSE(sup.Voting(0, 1));
  EXPECT_EQ(sup.ReportProbation(0, 1, true, 2'000),
            Supervisor::ProbationOutcome::kNone);
  EXPECT_EQ(sup.ReportProbation(0, 1, true, 3'000),
            Supervisor::ProbationOutcome::kReadmitted);
  EXPECT_EQ(sup.state(0, 1), VariantLifecycle::kHealthy);
  EXPECT_TRUE(sup.Voting(0, 1));
  EXPECT_EQ(sup.slot(0, 1).dissents, 0);  // strikes cleared
  EXPECT_EQ(sup.readmissions_total(), 1u);
}

TEST_F(SupervisorTest, ProbationDissentRequarantinesThenRetires) {
  Supervisor sup(QuarantinePolicy(), &registry_);  // retry_budget = 2
  sup.Reset(OneStage(3));
  ASSERT_TRUE(sup.ReportFailure(0, 1, FailureKind::kCrash, 0));
  sup.BeginRebootstrap(0, 1);  // attempt 1
  ASSERT_EQ(sup.FinishRebootstrap(0, 1, true, 1'000),
            VariantLifecycle::kProbation);
  // Shadow dissent with budget left: back to quarantine.
  EXPECT_EQ(sup.ReportProbation(0, 1, false, 2'000),
            Supervisor::ProbationOutcome::kRequarantined);
  EXPECT_EQ(sup.state(0, 1), VariantLifecycle::kQuarantined);
  sup.BeginRebootstrap(0, 1);  // attempt 2 (budget spent)
  ASSERT_EQ(sup.FinishRebootstrap(0, 1, true, 3'000),
            VariantLifecycle::kProbation);
  EXPECT_EQ(sup.ReportProbation(0, 1, false, 4'000),
            Supervisor::ProbationOutcome::kRetired);
  EXPECT_EQ(sup.state(0, 1), VariantLifecycle::kRetired);
  EXPECT_EQ(sup.retirements_total(), 1u);
}

TEST_F(SupervisorTest, MetricsCountTransitions) {
  Supervisor sup(QuarantinePolicy(), &registry_);
  sup.Reset(OneStage(3));
  ASSERT_TRUE(sup.ReportFailure(0, 0, FailureKind::kCrash, 0));
  sup.BeginRebootstrap(0, 0);
  ASSERT_EQ(sup.FinishRebootstrap(0, 0, true, 1'000),
            VariantLifecycle::kProbation);
  ASSERT_EQ(sup.ReportProbation(0, 0, true, 2'000),
            Supervisor::ProbationOutcome::kNone);
  ASSERT_EQ(sup.ReportProbation(0, 0, true, 3'000),
            Supervisor::ProbationOutcome::kReadmitted);
  EXPECT_EQ(registry_.GetCounter("supervisor.quarantines_total").value(), 1u);
  EXPECT_EQ(registry_.GetCounter("supervisor.rebootstraps_total").value(), 1u);
  EXPECT_EQ(registry_.GetCounter("supervisor.readmissions_total").value(), 1u);
  EXPECT_EQ(registry_.GetCounter("supervisor.retirements_total").value(), 0u);
}

TEST_F(SupervisorTest, ResetRestoresHealthyTable) {
  Supervisor sup(QuarantinePolicy(), &registry_);
  sup.Reset(OneStage(3));
  ASSERT_TRUE(sup.ReportFailure(0, 2, FailureKind::kCrash, 0));
  sup.Reset(OneStage(3));
  EXPECT_EQ(sup.state(0, 2), VariantLifecycle::kHealthy);
  EXPECT_EQ(sup.quarantines_total(), 0u);
  EXPECT_FALSE(sup.AnyEvents());
  EXPECT_EQ(sup.Snapshot().size(), 3u);
}

TEST_F(SupervisorTest, LifecycleNamesAreStable) {
  EXPECT_EQ(LifecycleName(VariantLifecycle::kHealthy), "healthy");
  EXPECT_EQ(LifecycleName(VariantLifecycle::kQuarantined), "quarantined");
  EXPECT_EQ(LifecycleName(VariantLifecycle::kRetired), "retired");
  EXPECT_EQ(FailureKindName(FailureKind::kChannel), "channel");
}

}  // namespace
}  // namespace mvtee::core
