#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "obs/metrics.h"
#include "tee/enclave.h"
#include "transport/channel.h"
#include "transport/msg_channel.h"
#include "transport/secure_channel.h"
#include "util/clock.h"

namespace mvtee::transport {
namespace {

using util::Bytes;
using util::StatusCode;
using util::ToBytes;

// ---------------------------------------------------------------- channel

TEST(ChannelTest, SendRecvBothDirections) {
  auto [a, b] = CreateChannel();
  ASSERT_TRUE(a.Send(ToBytes("ping")).ok());
  auto got = b.Recv(100'000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, ToBytes("ping"));
  ASSERT_TRUE(b.Send(ToBytes("pong")).ok());
  auto back = a.Recv(100'000);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, ToBytes("pong"));
}

TEST(ChannelTest, RecvTimesOut) {
  auto [a, b] = CreateChannel();
  (void)a;
  auto got = b.Recv(10'000);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ChannelTest, CloseUnblocksReceiver) {
  auto [a, b] = CreateChannel();
  std::thread closer([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a.Close();
  });
  auto got = b.Recv(2'000'000);
  closer.join();
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST(ChannelTest, QueuedFramesSurviveClose) {
  auto [a, b] = CreateChannel();
  ASSERT_TRUE(a.Send(ToBytes("last words")).ok());
  a.Close();
  auto got = b.Recv(100'000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, ToBytes("last words"));
  EXPECT_FALSE(b.Recv(10'000).ok());
}

TEST(ChannelTest, InterceptorCanDropAndTamper) {
  auto [a, b] = CreateChannel();
  int count = 0;
  a.SetInterceptor([&count](const Bytes& frame) -> std::optional<Bytes> {
    ++count;
    if (count == 1) return std::nullopt;  // drop first
    Bytes tampered = frame;
    tampered[0] ^= 0xff;
    return tampered;
  });
  ASSERT_TRUE(a.Send(ToBytes("dropped")).ok());
  ASSERT_TRUE(a.Send(ToBytes("tampered")).ok());
  auto got = b.Recv(100'000);
  ASSERT_TRUE(got.ok());
  EXPECT_NE((*got)[0], 't');
  EXPECT_EQ((*got)[1], 'a');
}

TEST(ChannelTest, InjectRawBypassesEverything) {
  auto [a, b] = CreateChannel();
  a.SetInterceptor([](const Bytes&) { return std::nullopt; });  // drop all
  a.InjectRaw(ToBytes("smuggled"));
  auto got = b.Recv(100'000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, ToBytes("smuggled"));
}

TEST(ChannelTest, CostModelAddsLatency) {
  NetworkCostModel cost{2000.0, 0.0};  // 2 ms per message
  auto [a, b] = CreateChannel(cost);
  int64_t start = util::NowMicros();
  ASSERT_TRUE(a.Send(ToBytes("x")).ok());
  int64_t elapsed = util::NowMicros() - start;
  EXPECT_GE(elapsed, 1500);
  auto got = b.Recv(100'000);
  EXPECT_TRUE(got.ok());
}

TEST(ChannelTest, TracksBytesAndFrames) {
  auto [a, b] = CreateChannel();
  (void)b;
  ASSERT_TRUE(a.Send(Bytes(100, 1)).ok());
  ASSERT_TRUE(a.Send(Bytes(50, 2)).ok());
  EXPECT_EQ(a.bytes_sent(), 150u);
  EXPECT_EQ(a.frames_sent(), 2u);
}

// ---------------------------------------------------------------- waitset

TEST(WaitSetTest, NotifyBumpsEpochAndWakesWaiter) {
  WaitSet set;
  const uint64_t e0 = set.Epoch();
  std::thread notifier([&set] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    set.Notify();
  });
  int64_t start = util::NowMicros();
  uint64_t e1 = set.WaitFor(e0, 2'000'000);
  notifier.join();
  EXPECT_GT(e1, e0);
  EXPECT_LT(util::NowMicros() - start, 1'000'000);  // woke well before timeout
}

TEST(WaitSetTest, NotifyBetweenSnapshotAndWaitIsNotLost) {
  WaitSet set;
  const uint64_t e0 = set.Epoch();
  set.Notify();  // event lands before the wait starts
  int64_t start = util::NowMicros();
  uint64_t e1 = set.WaitFor(e0, 2'000'000);
  EXPECT_GT(e1, e0);
  EXPECT_LT(util::NowMicros() - start, 500'000);  // returned immediately
}

TEST(WaitSetTest, TimeoutReturnsUnchangedEpoch) {
  WaitSet set;
  const uint64_t e0 = set.Epoch();
  EXPECT_EQ(set.WaitFor(e0, 5'000), e0);
}

TEST(WaitSetTest, EndpointPushNotifiesAttachedWaiter) {
  auto set = std::make_shared<WaitSet>();
  auto [a, b] = CreateChannel();
  b.AttachWaiter(set);
  EXPECT_FALSE(b.Readable());
  const uint64_t e0 = set->Epoch();
  std::thread sender([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(a.Send(ToBytes("wake")).ok());
  });
  set->WaitFor(e0, 2'000'000);
  sender.join();
  EXPECT_TRUE(b.Readable());
  EXPECT_TRUE(b.Recv(10'000).ok());
}

TEST(WaitSetTest, AttachAfterQueuedFramesNotifies) {
  auto set = std::make_shared<WaitSet>();
  auto [a, b] = CreateChannel();
  ASSERT_TRUE(a.Send(ToBytes("early")).ok());
  const uint64_t e0 = set->Epoch();
  b.AttachWaiter(set);  // frame already queued — must not strand a waiter
  EXPECT_GT(set->WaitFor(e0, 100'000), e0);
  EXPECT_TRUE(b.Readable());
}

TEST(WaitSetTest, CloseNotifiesWaiter) {
  auto set = std::make_shared<WaitSet>();
  auto [a, b] = CreateChannel();
  b.AttachWaiter(set);
  const uint64_t e0 = set->Epoch();
  std::thread closer([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a.Close();
  });
  uint64_t e1 = set->WaitFor(e0, 2'000'000);
  closer.join();
  EXPECT_GT(e1, e0);
}

TEST(WaitAnyTest, ReturnsIndexOfReadableChannel) {
  auto set = std::make_shared<WaitSet>();
  auto [a0, b0] = CreateChannel();
  auto [a1, b1] = CreateChannel();
  PlainMsgChannel c0(std::move(b0));
  PlainMsgChannel c1(std::move(b1));
  std::vector<MsgChannel*> channels{&c0, &c1};
  for (auto* c : channels) c->AttachWaiter(set);

  EXPECT_EQ(WaitAny(channels, *set, 5'000), -1);  // nothing readable
  ASSERT_TRUE(a1.Send(ToBytes("x")).ok());
  EXPECT_EQ(WaitAny(channels, *set, 1'000'000), 1);
  (void)c1.Recv(0);
  ASSERT_TRUE(a0.Send(ToBytes("y")).ok());
  EXPECT_EQ(WaitAny(channels, *set, 1'000'000), 0);
}

TEST(WaitAnyTest, BlocksUntilCrossThreadSend) {
  auto set = std::make_shared<WaitSet>();
  auto [a, b] = CreateChannel();
  PlainMsgChannel c(std::move(b));
  std::vector<MsgChannel*> channels{&c};
  c.AttachWaiter(set);
  std::thread sender([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(a.Send(ToBytes("late")).ok());
  });
  int64_t start = util::NowMicros();
  int idx = WaitAny(channels, *set, 2'000'000);
  sender.join();
  EXPECT_EQ(idx, 0);
  EXPECT_LT(util::NowMicros() - start, 1'000'000);
}

// --------------------------------------------------------- secure channel

class SecureChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto monitor = cpu_.LaunchEnclave(tee::TeeType::kSgx1,
                                      ToBytes("monitor-code"),
                                      tee::MonitorManifest(), 64);
    auto variant = cpu_.LaunchEnclave(tee::TeeType::kSgx2,
                                      ToBytes("variant-code"),
                                      tee::InitVariantManifest(), 1024);
    ASSERT_TRUE(monitor.ok() && variant.ok());
    monitor_ = std::move(*monitor);
    variant_ = std::move(*variant);
  }

  // Handshakes both sides on threads; returns the two channels.
  std::pair<std::unique_ptr<SecureChannel>, std::unique_ptr<SecureChannel>>
  Connect(ReportVerifier client_verify, ReportVerifier server_verify,
          Interceptor client_interceptor = nullptr) {
    auto [a, b] = CreateChannel();
    if (client_interceptor) a.SetInterceptor(client_interceptor);
    util::Result<std::unique_ptr<SecureChannel>> client_result(
        util::Internal("unset"));
    std::thread client_thread([&, ep = std::move(a)]() mutable {
      client_result = SecureChannel::Handshake(
          std::move(ep), SecureChannel::Role::kClient, *monitor_,
          client_verify, 1'000'000);
    });
    auto server_result = SecureChannel::Handshake(
        std::move(b), SecureChannel::Role::kServer, *variant_, server_verify,
        1'000'000);
    client_thread.join();
    if (!client_result.ok() || !server_result.ok()) return {nullptr, nullptr};
    return {std::move(*client_result), std::move(*server_result)};
  }

  tee::SimulatedCpu cpu_{tee::SimulatedCpu::Options{.hardware_key_seed = 7}};
  std::unique_ptr<tee::Enclave> monitor_;
  std::unique_ptr<tee::Enclave> variant_;
};

TEST_F(SecureChannelTest, HandshakeAndExchange) {
  auto [client, server] =
      Connect(ExpectMeasurement(cpu_, variant_->measurement()),
              ExpectMeasurement(cpu_, monitor_->measurement()));
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  ASSERT_TRUE(client->Send(ToBytes("hello variant")).ok());
  auto got = server->Recv(100'000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, ToBytes("hello variant"));

  ASSERT_TRUE(server->Send(ToBytes("hello monitor")).ok());
  auto back = client->Recv(100'000);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, ToBytes("hello monitor"));
}

TEST_F(SecureChannelTest, PeerReportExposed) {
  auto [client, server] = Connect(AnyAttestedPeer(cpu_),
                                  AnyAttestedPeer(cpu_));
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->peer_report().measurement, variant_->measurement());
  EXPECT_EQ(server->peer_report().measurement, monitor_->measurement());
}

TEST_F(SecureChannelTest, WrongMeasurementRejected) {
  auto [client, server] =
      Connect(ExpectMeasurement(cpu_, monitor_->measurement()),  // wrong!
              AnyAttestedPeer(cpu_));
  EXPECT_EQ(client, nullptr);
}

TEST_F(SecureChannelTest, TamperedHandshakeRejected) {
  // Flip one byte of the client hello — either the report MAC breaks or
  // the key-binding check fails.
  auto [client, server] = Connect(
      AnyAttestedPeer(cpu_), AnyAttestedPeer(cpu_),
      [](const Bytes& frame) -> std::optional<Bytes> {
        Bytes tampered = frame;
        tampered[8] ^= 0x01;  // inside the X25519 public key
        return tampered;
      });
  EXPECT_EQ(client, nullptr);
  EXPECT_EQ(server, nullptr);
}

TEST_F(SecureChannelTest, TamperedRecordRejected) {
  auto [client, server] = Connect(AnyAttestedPeer(cpu_),
                                  AnyAttestedPeer(cpu_));
  ASSERT_NE(client, nullptr);
  client->raw_endpoint().SetInterceptor(
      [](const Bytes& frame) -> std::optional<Bytes> {
        Bytes tampered = frame;
        tampered[tampered.size() - 1] ^= 0x01;
        return tampered;
      });
  ASSERT_TRUE(client->Send(ToBytes("data")).ok());
  auto got = server->Recv(100'000);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kAuthenticationFailure);
}

TEST_F(SecureChannelTest, ReplayDetected) {
  auto [client, server] = Connect(AnyAttestedPeer(cpu_),
                                  AnyAttestedPeer(cpu_));
  ASSERT_NE(client, nullptr);
  // Capture the wire frame of the first message.
  Bytes captured;
  client->raw_endpoint().SetInterceptor(
      [&captured](const Bytes& frame) -> std::optional<Bytes> {
        captured = frame;
        return frame;
      });
  ASSERT_TRUE(client->Send(ToBytes("one-time command")).ok());
  ASSERT_TRUE(server->Recv(100'000).ok());
  // Replay the captured frame.
  client->raw_endpoint().InjectRaw(captured);
  auto replayed = server->Recv(100'000);
  EXPECT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kReplayDetected);
}

TEST_F(SecureChannelTest, ReorderDetected) {
  auto [client, server] = Connect(AnyAttestedPeer(cpu_),
                                  AnyAttestedPeer(cpu_));
  ASSERT_NE(client, nullptr);
  // Hold back the first frame, deliver the second first.
  Bytes held;
  client->raw_endpoint().SetInterceptor(
      [&held](const Bytes& frame) -> std::optional<Bytes> {
        if (held.empty()) {
          held = frame;
          return std::nullopt;
        }
        return frame;
      });
  ASSERT_TRUE(client->Send(ToBytes("first")).ok());
  ASSERT_TRUE(client->Send(ToBytes("second")).ok());
  auto got = server->Recv(100'000);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kReplayDetected);
}

TEST_F(SecureChannelTest, ConfidentialityOnTheWire) {
  auto [client, server] = Connect(AnyAttestedPeer(cpu_),
                                  AnyAttestedPeer(cpu_));
  ASSERT_NE(client, nullptr);
  Bytes wire;
  client->raw_endpoint().SetInterceptor(
      [&wire](const Bytes& frame) -> std::optional<Bytes> {
        wire = frame;
        return frame;
      });
  const std::string secret = "super secret model weights";
  ASSERT_TRUE(client->Send(ToBytes(secret)).ok());
  ASSERT_TRUE(server->Recv(100'000).ok());
  // The plaintext must not appear anywhere in the wire frame.
  std::string wire_str(wire.begin(), wire.end());
  EXPECT_EQ(wire_str.find(secret), std::string::npos);
}

TEST_F(SecureChannelTest, LargePayload) {
  auto [client, server] = Connect(AnyAttestedPeer(cpu_),
                                  AnyAttestedPeer(cpu_));
  ASSERT_NE(client, nullptr);
  Bytes big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(client->Send(big).ok());
  auto got = server->Recv(1'000'000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, big);
}

TEST_F(SecureChannelTest, AuthFailureMetricsCountOnlyRealOpens) {
  auto [client, server] = Connect(AnyAttestedPeer(cpu_),
                                  AnyAttestedPeer(cpu_));
  ASSERT_NE(client, nullptr);
  // ChannelMetrics is process-cumulative; measure deltas.
  auto& reg = obs::Registry::Default();
  const uint64_t opened0 = reg.GetCounter("channel.records_opened").value();
  const uint64_t auth0 = reg.GetCounter("channel.auth_failures").value();

  // 1. Replay: deliver one good record, then inject it again. (The good
  // record is the only genuine open in this test; the receiver's
  // sequence counter only advances on success, so the attacks below
  // leave it in sync with the sender.)
  Bytes captured;
  client->raw_endpoint().SetInterceptor(
      [&captured](const Bytes& frame) -> std::optional<Bytes> {
        captured = frame;
        return frame;
      });
  ASSERT_TRUE(client->Send(ToBytes("good")).ok());
  ASSERT_TRUE(server->Recv(100'000).ok());
  client->raw_endpoint().InjectRaw(captured);
  auto replayed = server->Recv(100'000);
  EXPECT_EQ(replayed.status().code(), StatusCode::kReplayDetected);

  // 2. Malformed record: too short to even carry a header.
  client->raw_endpoint().InjectRaw(ToBytes("junk"));
  auto malformed = server->Recv(100'000);
  EXPECT_EQ(malformed.status().code(), StatusCode::kAuthenticationFailure);

  // 3. MAC failure: flip a ciphertext byte of a well-formed record.
  client->raw_endpoint().SetInterceptor(
      [](const Bytes& frame) -> std::optional<Bytes> {
        Bytes tampered = frame;
        tampered[tampered.size() - 1] ^= 0x01;
        return tampered;
      });
  ASSERT_TRUE(client->Send(ToBytes("data")).ok());
  auto tampered = server->Recv(100'000);
  EXPECT_EQ(tampered.status().code(), StatusCode::kAuthenticationFailure);

  // Exactly one record was genuinely opened; all three attacks counted
  // as auth failures, none as opens.
  EXPECT_EQ(reg.GetCounter("channel.records_opened").value() - opened0, 1u);
  EXPECT_EQ(reg.GetCounter("channel.auth_failures").value() - auth0, 3u);
}

TEST_F(SecureChannelTest, ManyMessagesKeepSequence) {
  auto [client, server] = Connect(AnyAttestedPeer(cpu_),
                                  AnyAttestedPeer(cpu_));
  ASSERT_NE(client, nullptr);
  for (int i = 0; i < 200; ++i) {
    Bytes msg = ToBytes("msg " + std::to_string(i));
    ASSERT_TRUE(client->Send(msg).ok());
    auto got = server->Recv(100'000);
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, msg);
  }
}

// ------------------------------------------------- per-frame headers

TEST(PlainMsgChannelTest, HeaderRoundTrip) {
  auto [a, b] = CreateChannel();
  PlainMsgChannel sender(std::move(a));
  PlainMsgChannel receiver(std::move(b));

  ASSERT_TRUE(sender.Send(ToBytes("payload"), ToBytes("ctx")).ok());
  Bytes header;
  auto got = receiver.Recv(100'000, &header);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, ToBytes("payload"));
  EXPECT_EQ(header, ToBytes("ctx"));

  // Headerless convenience form still interoperates.
  ASSERT_TRUE(sender.Send(ToBytes("plain")).ok());
  header = ToBytes("stale");
  got = receiver.Recv(100'000, &header);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, ToBytes("plain"));
  EXPECT_TRUE(header.empty());
}

TEST_F(SecureChannelTest, HeaderRoundTrip) {
  auto [client, server] = Connect(AnyAttestedPeer(cpu_),
                                  AnyAttestedPeer(cpu_));
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client->Send(ToBytes("sealed payload"),
                           ToBytes("trace-ctx")).ok());
  Bytes header;
  auto got = server->Recv(100'000, &header);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, ToBytes("sealed payload"));
  EXPECT_EQ(header, ToBytes("trace-ctx"));

  // Headerless records still decode, and report an empty header.
  ASSERT_TRUE(client->Send(ToBytes("no header")).ok());
  header = ToBytes("stale");
  got = server->Recv(100'000, &header);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(header.empty());
}

TEST_F(SecureChannelTest, HeaderIsPlaintextButPayloadIsNot) {
  // The header rides as *authenticated plaintext* (readable metadata —
  // trace ids only); the payload must stay sealed.
  auto [client, server] = Connect(AnyAttestedPeer(cpu_),
                                  AnyAttestedPeer(cpu_));
  ASSERT_NE(client, nullptr);
  Bytes wire;
  client->raw_endpoint().SetInterceptor(
      [&wire](const Bytes& frame) -> std::optional<Bytes> {
        wire = frame;
        return frame;
      });
  const std::string header = "trace-context-header";
  const std::string secret = "confidential activations";
  ASSERT_TRUE(client->Send(ToBytes(secret), ToBytes(header)).ok());
  ASSERT_TRUE(server->Recv(100'000).ok());

  const std::string wire_str(wire.begin(), wire.end());
  EXPECT_NE(wire_str.find(header), std::string::npos);
  EXPECT_EQ(wire_str.find(secret), std::string::npos);
}

TEST_F(SecureChannelTest, TamperedHeaderRejected) {
  // The header is bound into the record AAD: flipping one header byte
  // on the wire must fail the AEAD open, exactly like ciphertext
  // tampering. Record layout: seq(8) || header_len(4) || header || sealed.
  auto [client, server] = Connect(AnyAttestedPeer(cpu_),
                                  AnyAttestedPeer(cpu_));
  ASSERT_NE(client, nullptr);
  client->raw_endpoint().SetInterceptor(
      [](const Bytes& frame) -> std::optional<Bytes> {
        Bytes tampered = frame;
        tampered[12] ^= 0x01;  // first header byte
        return tampered;
      });
  ASSERT_TRUE(client->Send(ToBytes("payload"), ToBytes("trace-ctx")).ok());
  Bytes header;
  auto got = server->Recv(100'000, &header);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kAuthenticationFailure);
}

TEST_F(SecureChannelTest, TruncatedHeaderLengthRejected) {
  // header_len pointing past the record end must fail closed as an
  // authentication error, not read out of bounds.
  auto [client, server] = Connect(AnyAttestedPeer(cpu_),
                                  AnyAttestedPeer(cpu_));
  ASSERT_NE(client, nullptr);
  client->raw_endpoint().SetInterceptor(
      [](const Bytes& frame) -> std::optional<Bytes> {
        Bytes tampered = frame;
        tampered[10] = 0xff;  // header_len low bytes: claims a 64 KiB header
        tampered[11] = 0xff;
        return tampered;
      });
  ASSERT_TRUE(client->Send(ToBytes("payload"), ToBytes("ctx")).ok());
  auto got = server->Recv(100'000);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kAuthenticationFailure);
}

TEST_F(SecureChannelTest, SecureMsgChannelHeaderPassThrough) {
  auto [client, server] = Connect(AnyAttestedPeer(cpu_),
                                  AnyAttestedPeer(cpu_));
  ASSERT_NE(client, nullptr);
  SecureMsgChannel tx(std::move(client));
  SecureMsgChannel rx(std::move(server));
  ASSERT_TRUE(tx.Send(ToBytes("frame"), ToBytes("hdr")).ok());
  Bytes header;
  auto got = rx.Recv(100'000, &header);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, ToBytes("frame"));
  EXPECT_EQ(header, ToBytes("hdr"));
}

}  // namespace
}  // namespace mvtee::transport
