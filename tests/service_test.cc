// Service front end tests (DESIGN.md §11): attested session
// establishment, per-session key isolation and sequence spaces,
// admission backpressure, deadlines, and the Run() compatibility
// wrapper over the long-lived request loop.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include <dirent.h>

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "core/messages.h"
#include "core/monitor.h"
#include "core/offline.h"
#include "core/variant_host.h"
#include "graph/builder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/watchdog.h"
#include "service/admin.h"
#include "service/inference_service.h"
#include "service/scheduler.h"
#include "tensor/tensor.h"
#include "transport/channel.h"
#include "transport/secure_channel.h"
#include "util/clock.h"
#include "util/rng.h"

namespace mvtee::service {
namespace {

using core::InferenceRequest;
using core::InferenceResponse;
using core::Monitor;
using core::MonitorConfig;
using core::MvxSelection;
using core::OfflineBundle;
using core::OfflineOptions;
using core::RunOfflineTool;
using core::VariantHost;
using graph::Graph;
using graph::ModelBuilder;
using graph::NodeId;
using tensor::MaxAbsDiff;
using tensor::Shape;
using tensor::Tensor;
using util::StatusCode;

Graph TestModel(uint64_t seed = 5) {
  ModelBuilder b(seed);
  NodeId x = b.Input("img", Shape({1, 3, 16, 16}));
  x = b.ConvBnRelu(x, 8, 3, 1, 1);
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Gemm(x, 10);
  x = b.Softmax(x);
  b.MarkOutput(x);
  return b.Build();
}

OfflineOptions SmallOffline(int partitions = 2, int variants = 2) {
  OfflineOptions opts;
  opts.num_partitions = partitions;
  opts.partition_seed = 11;
  opts.key_seed = 99;
  opts.pool.variants_per_stage = variants;
  opts.pool.seed = 7;
  return opts;
}

Tensor TestInput(uint64_t seed = 1) {
  util::Rng rng(seed);
  return Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
}

// Spins until `counter` reaches `target` (service-loop progress is
// asynchronous; the pop that we wait for bumps service.groups_total
// before the group starts executing).
bool WaitForCounter(const obs::Counter& counter, uint64_t target,
                    int64_t timeout_us = 5'000'000) {
  const int64_t give_up = util::NowMicros() + timeout_us;
  while (counter.value() < target) {
    if (util::NowMicros() > give_up) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return true;
}

// Full deployment fixture: offline tool -> host -> monitor. Wire tests
// layer a Listener + InferenceService on top.
class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto bundle = RunOfflineTool(TestModel(), SmallOffline());
    ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
    bundle_ = std::move(*bundle);
    host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store);
    auto monitor = Monitor::Create(&cpu_, MonitorConfig{});
    ASSERT_TRUE(monitor.ok());
    monitor_ = std::move(*monitor);
    auto status =
        monitor_->Initialize(bundle_, MvxSelection::Uniform(bundle_, 2),
                             *host_);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  void TearDown() override {
    if (monitor_) ASSERT_TRUE(monitor_->Shutdown().ok());
    if (host_) host_->JoinAll();
  }

  tee::SimulatedCpu cpu_{tee::SimulatedCpu::Options{.hardware_key_seed = 3}};
  OfflineBundle bundle_;
  std::unique_ptr<VariantHost> host_;
  std::unique_ptr<Monitor> monitor_;
};

// ------------------------------------------------ in-process sessions

TEST_F(ServiceTest, SessionSubmitMatchesRunWrapper) {
  const Tensor input = TestInput();
  auto direct = monitor_->Run({{input}});
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  auto session = monitor_->OpenSession();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto future = (*session)->Submit({{input}});
  ASSERT_TRUE(future.ok()) << future.status().ToString();
  InferenceResponse response = future->get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.seq, 0u);
  EXPECT_GT(response.latency_us, 0);
  ASSERT_EQ(response.outputs.size(), (*direct)[0].size());
  EXPECT_LT(MaxAbsDiff(response.outputs[0], (*direct)[0][0]), 1e-6f);
}

TEST_F(ServiceTest, OpenSessionRequiresRunningService) {
  // Before any Run()/StartService() the request loop is down.
  auto session = monitor_->OpenSession();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(monitor_->StartService().ok());
  EXPECT_TRUE(monitor_->OpenSession().ok());
}

TEST_F(ServiceTest, SequenceViolationAbortsSession) {
  ASSERT_TRUE(monitor_->StartService().ok());
  auto session = monitor_->OpenSession();
  ASSERT_TRUE(session.ok());
  // In-order first sequence number works...
  auto ok = (*session)->SubmitSequenced({{TestInput()}}, 0);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok->get().status.ok());
  // ...a replay of seq 0 condemns the session...
  auto replay = (*session)->SubmitSequenced({{TestInput()}}, 0);
  EXPECT_EQ(replay.status().code(), StatusCode::kReplayDetected);
  // ...including subsequent well-formed submits.
  auto after = (*session)->SubmitSequenced({{TestInput()}}, 1);
  EXPECT_EQ(after.status().code(), StatusCode::kReplayDetected);
}

TEST_F(ServiceTest, AdmissionOverflowRejectedWithTaxonomyCode) {
  core::ServiceConfig config;
  config.admission_queue_max = 0;  // every queued submit overflows
  ASSERT_TRUE(monitor_->StartService(config).ok());
  auto session = monitor_->OpenSession();
  ASSERT_TRUE(session.ok());
  obs::Counter& rejected =
      monitor_->metrics().GetCounter("service.rejected_total");
  const uint64_t before = rejected.value();
  auto result = (*session)->Submit({{TestInput()}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAdmissionRejected);
  EXPECT_EQ(rejected.value(), before + 1);
  // Backpressure is not session-fatal: the rejected submit consumed its
  // sequence number but did not condemn the session — after a restart
  // with a sane bound the same session keeps working.
  monitor_->StopService();
  ASSERT_TRUE(monitor_->StartService().ok());
  auto retry = (*session)->Submit({{TestInput()}});
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(retry->get().status.ok());
}

TEST_F(ServiceTest, StoppedServiceFailsSubmits) {
  ASSERT_TRUE(monitor_->StartService().ok());
  auto session = monitor_->OpenSession();
  ASSERT_TRUE(session.ok());
  monitor_->StopService();
  auto result = (*session)->Submit({{TestInput()}});
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(ServiceTest, RunWrapperKeepsWorkingAcrossReconfiguration) {
  const Tensor input = TestInput();
  auto first = monitor_->Run({{input}});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // UpdateStage quiesces the request loop; the next Run() restarts it.
  auto ids = bundle_.StageVariantIds(0);
  ASSERT_GE(ids.size(), 2u);
  ASSERT_TRUE(
      monitor_->UpdateStage(bundle_, *host_, 0, {ids[0], ids[1]}).ok());
  auto second = monitor_->Run({{input}});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_LT(MaxAbsDiff((*first)[0][0], (*second)[0][0]), 1e-6f);
}

TEST_F(ServiceTest, QueuedSubmitsCoalesceIntoOneGroup) {
  ASSERT_TRUE(monitor_->StartService().ok());
  auto session = monitor_->OpenSession();
  ASSERT_TRUE(session.ok());
  obs::Counter& groups =
      monitor_->metrics().GetCounter("service.groups_total");
  const uint64_t base = groups.value();

  // Occupy the loop with a legacy group, then queue three submits while
  // it runs: they must drain as ONE coalesced pipelined group.
  std::vector<std::vector<Tensor>> batches;
  for (int i = 0; i < 16; ++i) batches.push_back({TestInput()});
  auto legacy = std::async(std::launch::async, [&] {
    return monitor_->Run(batches, core::RunOptions{.pipelined = true});
  });
  ASSERT_TRUE(WaitForCounter(groups, base + 1));  // legacy group popped

  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < 3; ++i) {
    auto submitted = (*session)->Submit({{TestInput(7 + i)}});
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(*submitted));
  }
  ASSERT_TRUE(legacy.get().ok());
  for (auto& f : futures) {
    InferenceResponse response = f.get();
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_FALSE(response.outputs.empty());
  }
  EXPECT_EQ(groups.value(), base + 2);  // legacy + one coalesced group
}

TEST_F(ServiceTest, ExpiredDeadlineFailsInAdmissionQueue) {
  ASSERT_TRUE(monitor_->StartService().ok());
  auto session = monitor_->OpenSession();
  ASSERT_TRUE(session.ok());
  obs::Counter& groups =
      monitor_->metrics().GetCounter("service.groups_total");
  const uint64_t base = groups.value();
  // Hold the loop busy with a legacy group so the dated submit expires
  // while queued.
  std::vector<std::vector<Tensor>> batches;
  for (int i = 0; i < 16; ++i) batches.push_back({TestInput()});
  auto legacy = std::async(std::launch::async, [&] {
    return monitor_->Run(batches, core::RunOptions{.pipelined = true});
  });
  ASSERT_TRUE(WaitForCounter(groups, base + 1));

  InferenceRequest request;
  request.inputs = {TestInput()};
  request.deadline_us = 1;  // expires long before the legacy group ends
  auto future = (*session)->Submit(std::move(request));
  ASSERT_TRUE(future.ok()) << future.status().ToString();
  ASSERT_TRUE(legacy.get().ok());
  InferenceResponse response = future->get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ServiceTest, NegativeDeadlineRejectedAtSubmitKeepsSessionAlive) {
  ASSERT_TRUE(monitor_->StartService().ok());
  auto session = monitor_->OpenSession();
  ASSERT_TRUE(session.ok());
  obs::Counter& misses =
      monitor_->metrics().GetCounter("scheduler.deadline_misses_total");
  const uint64_t before = misses.value();

  InferenceRequest request;
  request.inputs = {TestInput()};
  request.deadline_us = -1;  // expired before it starts
  auto rejected = (*session)->Submit(std::move(request));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kAdmissionRejected);
  EXPECT_EQ(misses.value(), before + 1);

  // Fail-fast, not session-fatal: the rejection consumed seq 0 like any
  // other admission rejection, and 0 still means "no deadline".
  auto retry = (*session)->Submit({{TestInput()}});
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  InferenceResponse response = retry->get();
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.seq, 1u);
}

TEST_F(ServiceTest, TenantGoodputAndOccupancyInstruments) {
  ASSERT_TRUE(monitor_->StartService().ok());
  auto session = monitor_->OpenSession();
  ASSERT_TRUE(session.ok());
  obs::Registry& reg = monitor_->metrics();
  const uint64_t acme_before =
      reg.GetCounter("scheduler.tenant.acme.goodput_total").value();

  InferenceRequest request;
  request.inputs = {TestInput()};
  request.tenant = "acme";
  request.priority = 2;
  auto future = (*session)->Submit(std::move(request));
  ASSERT_TRUE(future.ok()) << future.status().ToString();
  EXPECT_TRUE(future->get().status.ok());

  // On-time completion counts toward the tenant's goodput, and the
  // dispatch recorded a batch-occupancy sample.
  EXPECT_EQ(reg.GetCounter("scheduler.tenant.acme.goodput_total").value(),
            acme_before + 1);
  EXPECT_GE(reg.GetHistogram("scheduler.batch_occupancy").Stats().count, 1u);
}

TEST_F(ServiceTest, CrossSessionCoalescingKeepsSequenceSpacesIsolated) {
  // Reference outputs per input, computed through the legacy wrapper.
  std::vector<Tensor> inputs;
  std::vector<Tensor> expected;
  for (uint64_t i = 0; i < 6; ++i) {
    inputs.push_back(TestInput(20 + i));
    auto ref = monitor_->Run({{inputs.back()}});
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    expected.push_back((*ref)[0][0]);
  }

  auto a = monitor_->OpenSession();
  auto b = monitor_->OpenSession();
  ASSERT_TRUE(a.ok() && b.ok());
  obs::Counter& groups =
      monitor_->metrics().GetCounter("service.groups_total");
  const uint64_t base = groups.value();

  // Hold the loop busy so the six submits below queue up and the
  // continuous scheduler coalesces them across both sessions.
  std::vector<std::vector<Tensor>> batches;
  for (int i = 0; i < 16; ++i) batches.push_back({TestInput()});
  auto legacy = std::async(std::launch::async, [&] {
    return monitor_->Run(batches, core::RunOptions{.pipelined = true});
  });
  ASSERT_TRUE(WaitForCounter(groups, base + 1));

  // Interleave submissions: a, b, a, b, ...
  std::vector<std::future<InferenceResponse>> futures;
  for (size_t i = 0; i < inputs.size(); ++i) {
    auto& session = (i % 2 == 0) ? *a : *b;
    InferenceRequest request;
    request.inputs = {inputs[i]};
    request.tenant = (i % 2 == 0) ? "even" : "odd";
    auto submitted = session->Submit(std::move(request));
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(*submitted));
  }
  ASSERT_TRUE(legacy.get().ok());

  // Every reply carries its own session's payload (no cross-session
  // mixing in the shared stream) and its own session's sequence number
  // (each session's space advances 0,1,2 independently).
  for (size_t i = 0; i < futures.size(); ++i) {
    InferenceResponse response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_EQ(response.outputs.size(), 1u);
    EXPECT_LT(MaxAbsDiff(response.outputs[0], expected[i]), 1e-6f)
        << "reply " << i << " carries another request's payload";
    EXPECT_EQ(response.seq, static_cast<uint64_t>(i / 2));
  }
}

// --------------------------------------------- wire sessions (RA-TLS)

TEST_F(ServiceTest, AttestedHandshakeAndEncryptedInference) {
  transport::Listener listener;
  auto service = InferenceService::Start(*monitor_, listener);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  auto client = InferenceClient::Connect(listener, cpu_,
                                         monitor_->enclave().measurement());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // The handshake surfaced the monitor's hardware-signed report with
  // the session key bound into report_data.
  EXPECT_TRUE(cpu_.VerifyReport((*client)->monitor_report()).ok());
  EXPECT_EQ((*client)->monitor_report().measurement,
            monitor_->enclave().measurement());

  const Tensor input = TestInput();
  auto reference = monitor_->Run({{input}});
  ASSERT_TRUE(reference.ok());
  auto outputs = (*client)->Infer({input});
  ASSERT_TRUE(outputs.ok()) << outputs.status().ToString();
  ASSERT_EQ(outputs->size(), (*reference)[0].size());
  EXPECT_LT(MaxAbsDiff((*outputs)[0], (*reference)[0][0]), 1e-6f);
  EXPECT_GT((*client)->last_latency_us(), 0);

  (*client)->Disconnect();
  (*service)->Stop();
}

TEST_F(ServiceTest, WrongMeasurementRejected) {
  transport::Listener listener;
  auto service = InferenceService::Start(*monitor_, listener);
  ASSERT_TRUE(service.ok());
  obs::Registry& reg = monitor_->metrics();
  const uint64_t auth_before =
      reg.GetCounter("channel.auth_failures").value();
  const uint64_t hs_before =
      reg.GetCounter("service.handshake_failures").value();

  crypto::Sha256Digest wrong{};
  wrong[0] = 0xab;
  auto client = InferenceClient::Connect(listener, cpu_, wrong, 2'000'000);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kAttestationFailure);
  (*service)->Stop();
  // Server-side the dead session is a distinct taxonomy event, counted
  // in both service.handshake_failures and channel.auth_failures.
  EXPECT_GE(reg.GetCounter("service.handshake_failures").value(),
            hs_before + 1);
  EXPECT_GE(reg.GetCounter("channel.auth_failures").value(),
            auth_before + 1);
}

TEST_F(ServiceTest, TamperedMonitorKeyRejected) {
  // A host attacker splicing the monitor's handshake key (or replaying
  // a stale hello) cannot survive the client's report check: the
  // report_data binds H(pubkey || role) under the hardware MAC.
  transport::Listener listener;
  std::thread server([&] {
    auto endpoint = listener.Accept(5'000'000);
    if (!endpoint.ok()) return;
    endpoint->SetInterceptor(
        [](const util::Bytes& frame) -> std::optional<util::Bytes> {
          util::Bytes tampered = frame;
          tampered[8] ^= 0x01;  // inside the server's X25519 public key
          return tampered;
        });
    (void)transport::SecureChannel::Handshake(
        std::move(*endpoint), transport::SecureChannel::Role::kServer,
        monitor_->enclave(), transport::AllowUnattestedPeer(), 2'000'000);
  });
  auto client = InferenceClient::Connect(
      listener, cpu_, monitor_->enclave().measurement(), 2'000'000);
  server.join();
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kAttestationFailure);
}

TEST_F(ServiceTest, SessionKeyIsolationAcrossSessions) {
  transport::Listener listener;
  auto service = InferenceService::Start(*monitor_, listener);
  ASSERT_TRUE(service.ok());

  auto a = InferenceClient::Connect(listener, cpu_,
                                    monitor_->enclave().measurement());
  auto b = InferenceClient::Connect(listener, cpu_,
                                    monitor_->enclave().measurement());
  ASSERT_TRUE(a.ok() && b.ok());

  // Capture session A's encrypted Submit record off the wire.
  util::Bytes captured;
  (*a)->raw_endpoint().SetInterceptor(
      [&captured](const util::Bytes& frame) -> std::optional<util::Bytes> {
        captured = frame;
        return frame;
      });
  ASSERT_TRUE((*a)->Infer({TestInput()}).ok());
  ASSERT_FALSE(captured.empty());
  (*a)->raw_endpoint().SetInterceptor(nullptr);

  obs::Counter& auth =
      monitor_->metrics().GetCounter("channel.auth_failures");
  const uint64_t before = auth.value();
  // Injecting A's ciphertext into B's session must fail the AEAD open
  // (per-session HKDF keys) and kill session B.
  (*b)->raw_endpoint().InjectRaw(captured);
  auto poisoned = (*b)->Infer({TestInput()}, /*deadline_us=*/0,
                              /*recv_timeout_us=*/5'000'000);
  EXPECT_FALSE(poisoned.ok());
  EXPECT_GE(auth.value(), before + 1);

  // Session A is unaffected.
  EXPECT_TRUE((*a)->Infer({TestInput()}).ok());
  (*service)->Stop();
}

TEST_F(ServiceTest, ReplayedSubmitFrameAbortsSession) {
  transport::Listener listener;
  auto service = InferenceService::Start(*monitor_, listener);
  ASSERT_TRUE(service.ok());
  auto client = InferenceClient::Connect(listener, cpu_,
                                         monitor_->enclave().measurement());
  ASSERT_TRUE(client.ok());

  util::Bytes captured;
  (*client)->raw_endpoint().SetInterceptor(
      [&captured](const util::Bytes& frame) -> std::optional<util::Bytes> {
        captured = frame;
        return frame;
      });
  ASSERT_TRUE((*client)->Infer({TestInput()}).ok());
  ASSERT_FALSE(captured.empty());
  (*client)->raw_endpoint().SetInterceptor(nullptr);

  obs::Counter& auth =
      monitor_->metrics().GetCounter("channel.auth_failures");
  const uint64_t before = auth.value();
  // The identical record re-injected: its record sequence number is
  // stale, the channel flags the replay and the service tears the
  // session down — the request never executes twice.
  (*client)->raw_endpoint().InjectRaw(captured);
  auto after = (*client)->Infer({TestInput()}, /*deadline_us=*/0,
                                /*recv_timeout_us=*/5'000'000);
  EXPECT_FALSE(after.ok());
  EXPECT_GE(auth.value(), before + 1);
  (*service)->Stop();
}

TEST_F(ServiceTest, WireAdmissionRejectionKeepsSessionAlive) {
  transport::Listener listener;
  ServiceOptions options;
  options.admission.admission_queue_max = 0;  // reject everything
  auto service = InferenceService::Start(*monitor_, listener, options);
  ASSERT_TRUE(service.ok());
  auto client = InferenceClient::Connect(listener, cpu_,
                                         monitor_->enclave().measurement());
  ASSERT_TRUE(client.ok());
  // Reject-with-status backpressure: the client keeps getting explicit
  // kAdmissionRejected replies on the SAME session (a reply at all
  // proves the session survived the previous rejection).
  for (int i = 0; i < 3; ++i) {
    auto outputs = (*client)->Infer({TestInput()});
    ASSERT_FALSE(outputs.ok());
    EXPECT_EQ(outputs.status().code(), StatusCode::kAdmissionRejected);
  }
  (*client)->Disconnect();
  (*service)->Stop();
}

TEST_F(ServiceTest, EightConcurrentSessionsInterleave) {
  transport::Listener listener;
  auto service = InferenceService::Start(*monitor_, listener);
  ASSERT_TRUE(service.ok());

  constexpr int kSessions = 8;
  constexpr int kRequests = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (int c = 0; c < kSessions; ++c) {
    clients.emplace_back([&, c] {
      auto client = InferenceClient::Connect(
          listener, cpu_, monitor_->enclave().measurement());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int r = 0; r < kRequests; ++r) {
        auto outputs =
            (*client)->Infer({TestInput(static_cast<uint64_t>(c + 1))});
        if (!outputs.ok() || outputs->empty()) failures.fetch_add(1);
      }
      (*client)->Disconnect();
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  obs::Registry& reg = monitor_->metrics();
  EXPECT_GE(reg.GetCounter("service.requests_total").value(),
            static_cast<uint64_t>(kSessions * kRequests));
  (*service)->Stop();
  EXPECT_EQ(reg.GetGauge("service.sessions_active").value(), 0);
}

TEST_F(ServiceTest, ClientRejectsExpiredDeadlineWithoutSpendingSequence) {
  transport::Listener listener;
  auto service = InferenceService::Start(*monitor_, listener);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  auto client = InferenceClient::Connect(listener, cpu_,
                                         monitor_->enclave().measurement());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // An already-expired budget is rejected before any frame leaves: no
  // network round trip, no sequence number consumed.
  int frames = 0;
  (*client)->raw_endpoint().SetInterceptor(
      [&frames](const util::Bytes& frame) -> std::optional<util::Bytes> {
        ++frames;
        return frame;
      });
  InferenceClient::InferOptions options;
  options.deadline_us = -5;
  auto rejected = (*client)->Infer({TestInput()}, options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kAdmissionRejected);
  EXPECT_EQ(frames, 0);
  (*client)->raw_endpoint().SetInterceptor(nullptr);

  // The session's sequence space never moved, so it keeps working.
  EXPECT_TRUE((*client)->Infer({TestInput()}).ok());
  (*client)->Disconnect();
  (*service)->Stop();
}

TEST_F(ServiceTest, CoalescedWireSessionsNeverMixKeysOrPayloads) {
  // System test for the continuous scheduler: concurrent attested
  // sessions whose requests coalesce into shared MVX batches must each
  // get back exactly their own answer — decrypted under their own
  // per-session AEAD keys and matched to their own inputs.
  constexpr int kClients = 3;
  constexpr int kRequests = 4;
  std::vector<std::vector<Tensor>> expected(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRequests; ++r) {
      auto ref =
          monitor_->Run({{TestInput(static_cast<uint64_t>(100 * c + r))}});
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      expected[c].push_back((*ref)[0][0]);
    }
  }

  transport::Listener listener;
  auto service = InferenceService::Start(*monitor_, listener);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = InferenceClient::Connect(
          listener, cpu_, monitor_->enclave().measurement());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int r = 0; r < kRequests; ++r) {
        InferenceClient::InferOptions options;
        options.tenant = "tenant-" + std::to_string(c);
        auto outputs = (*client)->Infer(
            {TestInput(static_cast<uint64_t>(100 * c + r))}, options);
        if (!outputs.ok() || outputs->size() != 1) {
          failures.fetch_add(1);
        } else if (MaxAbsDiff((*outputs)[0], expected[c][r]) > 1e-6f) {
          mismatches.fetch_add(1);
        }
      }
      (*client)->Disconnect();
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // No AEAD open failed along the way: a cross-session payload mix-up
  // on the wire would have surfaced as an auth failure or a mismatch.
  (*service)->Stop();
}

// ------------------------------- multi-model zoo (service::Scheduler)

TEST_F(ServiceTest, SchedulerRoutesModelsAndRejectsUnknown) {
  // Second model with different weights, its own monitor and host.
  auto bundle2 = RunOfflineTool(TestModel(/*seed=*/6), SmallOffline());
  ASSERT_TRUE(bundle2.ok()) << bundle2.status().ToString();
  VariantHost host2(&cpu_, bundle2->store);
  auto monitor2 = Monitor::Create(&cpu_, MonitorConfig{});
  ASSERT_TRUE(monitor2.ok());
  ASSERT_TRUE((*monitor2)
                  ->Initialize(*bundle2, MvxSelection::Uniform(*bundle2, 2),
                               host2)
                  .ok());

  const Tensor input = TestInput();
  auto ref_alpha = monitor_->Run({{input}});
  auto ref_beta = (*monitor2)->Run({{input}});
  ASSERT_TRUE(ref_alpha.ok() && ref_beta.ok());
  // Different weight seeds: routing errors are observable.
  ASSERT_GT(MaxAbsDiff((*ref_alpha)[0][0], (*ref_beta)[0][0]), 1e-6f);

  auto scheduler = Scheduler::Start(
      {{"alpha", monitor_.get()}, {"beta", monitor2->get()}},
      core::ServiceConfig{});
  ASSERT_TRUE(scheduler.ok()) << scheduler.status().ToString();
  EXPECT_EQ((*scheduler)->Route(""), monitor_.get());
  EXPECT_EQ((*scheduler)->Route("beta"), monitor2->get());
  EXPECT_EQ((*scheduler)->Route("nope"), nullptr);

  auto session = (*scheduler)->OpenSession();
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // Submit to both models concurrently — each monitor's loop runs
  // independently, and replies come from the routed model's pipeline.
  InferenceRequest to_beta;
  to_beta.inputs = {input};
  to_beta.model = "beta";
  auto beta_future = (*session)->Submit(std::move(to_beta));
  ASSERT_TRUE(beta_future.ok()) << beta_future.status().ToString();
  InferenceRequest to_default;
  to_default.inputs = {input};  // empty model -> first registered entry
  auto default_future = (*session)->Submit(std::move(to_default));
  ASSERT_TRUE(default_future.ok()) << default_future.status().ToString();

  InferenceResponse beta_response = beta_future->get();
  ASSERT_TRUE(beta_response.status.ok()) << beta_response.status.ToString();
  EXPECT_LT(MaxAbsDiff(beta_response.outputs[0], (*ref_beta)[0][0]), 1e-6f);
  InferenceResponse default_response = default_future->get();
  ASSERT_TRUE(default_response.status.ok());
  EXPECT_LT(MaxAbsDiff(default_response.outputs[0], (*ref_alpha)[0][0]),
            1e-6f);
  // Per-(session, model) sequence spaces: both submits were each
  // model-session's first, so both replies carry seq 0.
  EXPECT_EQ(beta_response.seq, 0u);
  EXPECT_EQ(default_response.seq, 0u);

  InferenceRequest unknown;
  unknown.inputs = {input};
  unknown.model = "nope";
  auto bad = (*session)->Submit(std::move(unknown));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  (*session)->Close();
  ASSERT_TRUE((*monitor2)->Shutdown().ok());
  host2.JoinAll();
}

// ------------------------------------------------- wire-format basics

TEST(SessionMessagesTest, SubmitRoundTrip) {
  core::SessionSubmitMsg msg;
  msg.seq = 42;
  msg.deadline_us = 1'000'000;
  msg.inputs = {TestInput()};
  util::Bytes frame = core::EncodeSessionSubmit(msg);
  EXPECT_EQ(frame.size(), core::EncodedSize(msg));
  auto type = core::PeekType(frame);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, core::MsgType::kSessionSubmit);
  auto decoded = core::DecodeSessionSubmit(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(decoded->deadline_us, 1'000'000);
  ASSERT_EQ(decoded->inputs.size(), 1u);
  EXPECT_LT(MaxAbsDiff(decoded->inputs[0], msg.inputs[0]), 1e-9f);
}

TEST(SessionMessagesTest, SubmitRoundTripCarriesSchedulingHints) {
  core::SessionSubmitMsg msg;
  msg.seq = 9;
  // Negative deadlines DECODE fine — the server answers the submit with
  // kAdmissionRejected instead of tearing the channel down, so client
  // clock skew cannot condemn a session.
  msg.deadline_us = -250;
  msg.priority = 3;
  msg.tenant = "tenant-a";
  msg.model = "resnet18";
  msg.inputs = {TestInput()};
  util::Bytes frame = core::EncodeSessionSubmit(msg);
  EXPECT_EQ(frame.size(), core::EncodedSize(msg));
  auto decoded = core::DecodeSessionSubmit(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->seq, 9u);
  EXPECT_EQ(decoded->deadline_us, -250);
  EXPECT_EQ(decoded->priority, 3);
  EXPECT_EQ(decoded->tenant, "tenant-a");
  EXPECT_EQ(decoded->model, "resnet18");
  ASSERT_EQ(decoded->inputs.size(), 1u);
}

TEST(SessionMessagesTest, ReplyRoundTripCarriesTaxonomyCode) {
  core::SessionReplyMsg msg;
  msg.seq = 7;
  msg.code = static_cast<uint8_t>(StatusCode::kAdmissionRejected);
  msg.error = "admission queue full";
  msg.latency_us = 1234;
  util::Bytes frame = core::EncodeSessionReply(msg);
  EXPECT_EQ(frame.size(), core::EncodedSize(msg));
  auto decoded = core::DecodeSessionReply(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->seq, 7u);
  EXPECT_EQ(static_cast<StatusCode>(decoded->code),
            StatusCode::kAdmissionRejected);
  EXPECT_EQ(decoded->error, "admission queue full");
  EXPECT_EQ(decoded->latency_us, 1234);
}

TEST(SessionMessagesTest, TaxonomyCodesHaveDistinctNames) {
  EXPECT_EQ(util::StatusCodeName(StatusCode::kAdmissionRejected),
            "ADMISSION_REJECTED");
  EXPECT_EQ(util::StatusCodeName(StatusCode::kHandshakeFailure),
            "HANDSHAKE_FAILURE");
  EXPECT_EQ(util::AdmissionRejected("x").code(),
            StatusCode::kAdmissionRejected);
  EXPECT_EQ(util::HandshakeFailure("x").code(),
            StatusCode::kHandshakeFailure);
}


// ------------------------------------------- live introspection plane

// "HTTP/1.0 200 OK\r\nheaders\r\n\r\nbody" -> (200, body).
std::pair<int, std::string> SplitHttp(const std::string& wire) {
  const size_t space = wire.find(' ');
  const int code = std::stoi(wire.substr(space + 1));
  const size_t blank = wire.find("\r\n\r\n");
  return {code, blank == std::string::npos ? "" : wire.substr(blank + 4)};
}

TEST_F(ServiceTest, AdminEndpointsServeLiveState) {
  obs::TimelineLog::Default().Clear();
  transport::Listener listener;
  auto service = InferenceService::Start(*monitor_, listener);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  transport::Listener admin_listener;
  AdminOptions admin_opts;  // no TCP bridge, default watchdog
  auto admin = AdminServer::Start(*monitor_, admin_listener, admin_opts);
  ASSERT_TRUE(admin.ok()) << admin.status().ToString();
  EXPECT_EQ((*admin)->tcp_port(), -1);

  // Put real traffic through so the phase histograms have samples.
  auto client = InferenceClient::Connect(listener, cpu_,
                                         monitor_->enclave().measurement());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int i = 0; i < 3; ++i) {
    auto result = (*client)->Infer({TestInput(static_cast<uint64_t>(i))});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  // /healthz: healthy verdict with the live heartbeat.
  auto healthz = AdminGet(admin_listener, "/healthz");
  ASSERT_TRUE(healthz.ok()) << healthz.status().ToString();
  auto [hcode, hbody] = SplitHttp(*healthz);
  EXPECT_EQ(hcode, 200);
  auto hjson = obs::ParseJson(hbody);
  ASSERT_TRUE(hjson.ok()) << hjson.status().ToString();
  EXPECT_TRUE(hjson->Find("healthy")->as_bool());
  EXPECT_GT(hjson->Find("heartbeat")->as_number(), 0.0);

  // /metrics: live Prometheus scrape carrying the per-phase breakdown.
  auto metrics = AdminGet(admin_listener, "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  auto [mcode, mbody] = SplitHttp(*metrics);
  EXPECT_EQ(mcode, 200);
  EXPECT_NE(metrics->find("text/plain; version=0.0.4"), std::string::npos);
  for (const char* phase :
       {"mvtee_service_queue_wait_us", "mvtee_service_infer_us",
        "mvtee_service_verify_us", "mvtee_service_reply_us"}) {
    EXPECT_NE(mbody.find("# TYPE " + std::string(phase) + " summary\n"),
              std::string::npos)
        << phase;
    EXPECT_NE(mbody.find(std::string(phase) + "{quantile=\"0.5\"} "),
              std::string::npos)
        << phase;
  }
  // The three completed requests landed in every per-request phase
  // histogram (the fixture panel is k=2, so verification really ran).
  for (const char* phase :
       {"mvtee_service_queue_wait_us_count", "mvtee_service_infer_us_count",
        "mvtee_service_verify_us_count", "mvtee_service_reply_us_count"}) {
    const size_t pos = mbody.find(std::string(phase) + " ");
    ASSERT_NE(pos, std::string::npos) << phase;
    const size_t eol = mbody.find('\n', pos);
    const int count = std::stoi(
        mbody.substr(pos + std::string(phase).size() + 1,
                     eol - pos - std::string(phase).size() - 1));
    EXPECT_GE(count, 3) << phase;
  }
  EXPECT_GT(monitor_->metrics().GetHistogram("service.verify_us").Stats().sum,
            0.0);

  // /status: sessions, queue accounting, provenance, exemplars.
  auto status = AdminGet(admin_listener, "/status");
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  auto [scode, sbody] = SplitHttp(*status);
  EXPECT_EQ(scode, 200);
  auto sjson = obs::ParseJson(sbody);
  ASSERT_TRUE(sjson.ok()) << sjson.status().ToString();
  EXPECT_GT(sjson->Find("uptime_us")->as_number(), 0.0);
  const obs::JsonValue* svc = sjson->Find("service");
  ASSERT_NE(svc, nullptr);
  EXPECT_TRUE(svc->Find("running")->as_bool());
  EXPECT_TRUE(svc->Find("accepting")->as_bool());
  ASSERT_EQ(svc->Find("sessions")->as_array().size(), 1u);
  EXPECT_EQ(svc->Find("sessions")->as_array()[0].Find("next_seq")
                ->as_number(),
            3.0);
  const obs::JsonValue* build = sjson->Find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_TRUE(build->Find("cpu_features")->is_string());
  const obs::JsonValue* timelines = sjson->Find("timelines");
  ASSERT_NE(timelines, nullptr);
  EXPECT_EQ(timelines->Find("total_noted")->as_number(), 3.0);
  const auto& slowest = timelines->Find("slowest")->as_array();
  ASSERT_GE(slowest.size(), 1u);
  EXPECT_GT(slowest[0].Find("infer_us")->as_number(), 0.0);
  EXPECT_NE(slowest[0].Find("trace_id")->as_string(), "0");

  // Unknown paths 404; malformed request lines too.
  auto missing = AdminGet(admin_listener, "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(SplitHttp(*missing).first, 404);

  (*client)->Disconnect();
  (*service)->Stop();
  (*admin)->Stop();
}

TEST_F(ServiceTest, ConcurrentScrapeDuringLoadStaysConsistent) {
  transport::Listener listener;
  auto service = InferenceService::Start(*monitor_, listener);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  transport::Listener admin_listener;
  auto admin =
      AdminServer::Start(*monitor_, admin_listener, AdminOptions{});
  ASSERT_TRUE(admin.ok()) << admin.status().ToString();

  // Load: two client sessions hammering Infer while a scraper reads
  // /metrics and /status. TSan builds get real interleaving here; all
  // builds assert every scrape stays well-formed mid-mutation.
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      auto client = InferenceClient::Connect(
          listener, cpu_, monitor_->enclave().measurement());
      if (!client.ok()) return;
      uint64_t seed = 100 + static_cast<uint64_t>(c);
      while (!stop.load()) {
        (void)(*client)->Infer({TestInput(seed++)});
      }
      (*client)->Disconnect();
    });
  }
  for (int i = 0; i < 25; ++i) {
    auto scrape = AdminGet(admin_listener, "/metrics");
    ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
    auto [code, body] = SplitHttp(*scrape);
    ASSERT_EQ(code, 200);
    std::istringstream lines(body);
    std::string line;
    while (std::getline(lines, line)) {
      ASSERT_FALSE(line.empty());
      if (line[0] == '#') continue;
      const size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      ASSERT_EQ(line.compare(0, 6, "mvtee_"), 0) << line;
      ASSERT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
    }
    auto status = AdminGet(admin_listener, "/status");
    ASSERT_TRUE(status.ok());
    auto parsed = obs::ParseJson(SplitHttp(*status).second);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  (*service)->Stop();
  (*admin)->Stop();
}

// Wedges the monitor's event loop through the fault-injection seam and
// asserts the full detection chain: heartbeat freezes -> watchdog flips
// /healthz to 503 and dumps a stall evidence bundle -> releasing the
// loop recovers /healthz to 200.
TEST(AdminStallTest, InjectedEventLoopStallFlipsHealthzAndLeavesEvidence) {
  char dir_template[] = "/tmp/mvtee-stall-XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  ::setenv("MVTEE_EVIDENCE_DIR", dir_template, 1);

  auto bundle = RunOfflineTool(TestModel(), SmallOffline());
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  tee::SimulatedCpu cpu{tee::SimulatedCpu::Options{.hardware_key_seed = 3}};
  VariantHost host(&cpu, bundle->store);

  // The gate the hook blocks on; armed mid-test, released for recovery.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool wedged = false;
  MonitorConfig config;
  config.loop_tick_hook = [&] {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return !wedged; });
  };
  auto monitor = Monitor::Create(&cpu, config);
  ASSERT_TRUE(monitor.ok());
  ASSERT_TRUE((*monitor)
                  ->Initialize(*bundle, MvxSelection::Uniform(*bundle, 2),
                               host)
                  .ok());

  transport::Listener listener;
  auto service = InferenceService::Start(**monitor, listener);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  transport::Listener admin_listener;
  AdminOptions admin_opts;
  admin_opts.watchdog.poll_interval_us = 5'000;
  admin_opts.watchdog.stall_threshold_us = 50'000;
  auto admin = AdminServer::Start(**monitor, admin_listener, admin_opts);
  ASSERT_TRUE(admin.ok()) << admin.status().ToString();

  auto client = InferenceClient::Connect(
      listener, cpu, (*monitor)->enclave().measurement());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // Sanity: un-wedged requests flow and /healthz is 200.
  ASSERT_TRUE((*client)->Infer({TestInput()}).ok());
  auto healthz = AdminGet(admin_listener, "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(SplitHttp(*healthz).first, 200);
  const uint64_t bundles_before =
      (*monitor)->metrics().GetCounter("watchdog.stall_bundles_total")
          .value();

  // Arm the gate and submit: the request pops (inflight goes up), the
  // event loop hits the hook and freezes mid-run.
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    wedged = true;
  }
  auto stalled = std::async(std::launch::async, [&] {
    return (*client)->Infer({TestInput(2)});
  });

  // The watchdog must flip /healthz within a few thresholds.
  int code = 200;
  std::string body;
  const int64_t give_up = util::NowMicros() + 10'000'000;
  while (util::NowMicros() < give_up) {
    auto probe = AdminGet(admin_listener, "/healthz");
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    std::tie(code, body) = SplitHttp(*probe);
    if (code == 503) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(code, 503) << body;
  auto verdict = obs::ParseJson(body);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_FALSE(verdict->Find("healthy")->as_bool());
  EXPECT_NE(verdict->Find("reason")->as_string().find("event loop silent"),
            std::string::npos);

  // The sustained stall left a forensic bundle.
  ASSERT_TRUE(WaitForCounter(
      (*monitor)->metrics().GetCounter("watchdog.stall_bundles_total"),
      bundles_before + 1));

  // Release the loop: the wedged request completes and health recovers.
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    wedged = false;
  }
  gate_cv.notify_all();
  auto result = stalled.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  code = 503;
  const int64_t recover_by = util::NowMicros() + 10'000'000;
  while (util::NowMicros() < recover_by) {
    auto probe = AdminGet(admin_listener, "/healthz");
    ASSERT_TRUE(probe.ok());
    code = SplitHttp(*probe).first;
    if (code == 200) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(code, 200);

  (*client)->Disconnect();
  (*service)->Stop();
  (*admin)->Stop();
  ASSERT_TRUE((*monitor)->Shutdown().ok());
  host.JoinAll();

  // The evidence files are watchdog-stall bundles; clean up the dir.
  int bundle_files = 0;
  const std::string dir(dir_template);
  ::DIR* d = ::opendir(dir.c_str());
  ASSERT_NE(d, nullptr);
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    ++bundle_files;
    std::remove((dir + "/" + name).c_str());
  }
  ::closedir(d);
  EXPECT_GE(bundle_files, 1);
  ::unsetenv("MVTEE_EVIDENCE_DIR");
  ::rmdir(dir_template);
}

}  // namespace
}  // namespace mvtee::service
