// BatchFormer / SchedulerConfig unit and property tests (DESIGN.md
// §13). The former is deterministic and clock-free, so every test
// drives it with synthetic clocks — no sleeps, no wall time.
#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "util/knobs.h"

namespace mvtee::core {
namespace {

SchedEntry Entry(uint64_t id, const std::string& tenant,
                 int64_t deadline_abs_us = 0, int32_t priority = 0,
                 int64_t enqueue_us = 0) {
  SchedEntry e;
  e.id = id;
  e.tenant = tenant;
  e.priority = priority;
  e.deadline_abs_us = deadline_abs_us;
  e.enqueue_us = enqueue_us;
  return e;
}

// No batch window: everything dispatchable immediately.
SchedulerConfig Immediate(size_t max_batch = 8) {
  return SchedulerConfig::Builder()
      .MaxBatch(max_batch)
      .BatchWindowUs(0)
      .Build();
}

TEST(SchedulerConfigTest, BuilderIsFluentAndClamps) {
  const SchedulerConfig cfg = SchedulerConfig::Builder()
                                  .MaxBatch(0)          // clamped to 1
                                  .BatchWindowUs(-5)    // clamped to 0
                                  .TenantQuotaPct(250)  // clamped to 100
                                  .Edf(false)
                                  .Continuous(false)
                                  .TenantWeight("gold", 0)  // clamped to 1
                                  .Build();
  EXPECT_EQ(cfg.max_batch, 1u);
  EXPECT_EQ(cfg.batch_window_us, 0);
  EXPECT_EQ(cfg.tenant_quota_pct, 100);
  EXPECT_FALSE(cfg.edf);
  EXPECT_FALSE(cfg.continuous);
  EXPECT_EQ(cfg.tenant_weights.at("gold"), 1u);
}

TEST(SchedulerConfigTest, DefaultsMatchKnobTable) {
  const SchedulerConfig cfg;
  const util::KnobRegistry& knobs = util::KnobRegistry::Default();
  EXPECT_EQ(static_cast<int64_t>(cfg.max_batch),
            knobs.Find("MVTEE_SCHED_MAX_BATCH")->def);
  EXPECT_EQ(cfg.batch_window_us, knobs.Find("MVTEE_SCHED_WINDOW_US")->def);
  EXPECT_EQ(cfg.edf, knobs.Find("MVTEE_SCHED_EDF")->def != 0);
  EXPECT_EQ(static_cast<int64_t>(cfg.tenant_quota_pct),
            knobs.Find("MVTEE_SCHED_QUOTA_PCT")->def);
}

TEST(BatchFormerTest, EdfOrdersByDeadlineThenPriorityThenArrival) {
  BatchFormer former(Immediate(4));
  // Same tenant; ids are arrival order. Deadlines invert it.
  std::vector<SchedEntry> pending = {
      Entry(1, "t", /*deadline=*/9'000),
      Entry(2, "t", /*deadline=*/3'000),
      Entry(3, "t", /*deadline=*/0),           // no deadline: last
      Entry(4, "t", /*deadline=*/3'000, /*priority=*/5),  // tie: priority
  };
  const BatchPlan plan = former.Form(pending, /*now=*/1'000, 4, {});
  ASSERT_EQ(plan.picks.size(), 4u);
  EXPECT_EQ(pending[plan.picks[0]].id, 4u);  // 3000us deadline, prio 5
  EXPECT_EQ(pending[plan.picks[1]].id, 2u);  // 3000us deadline, prio 0
  EXPECT_EQ(pending[plan.picks[2]].id, 1u);  // 9000us deadline
  EXPECT_EQ(pending[plan.picks[3]].id, 3u);  // deadline-free
  // Picks 4 and 2 overtook entry 1 — wait, 1 was picked too; only
  // entries left waiting count. Nothing waits, so no preemptions.
  EXPECT_EQ(plan.preemptions, 0u);
}

TEST(BatchFormerTest, EdfOffFallsBackToPriorityThenArrival) {
  SchedulerConfig cfg = Immediate(4);
  cfg.edf = false;
  BatchFormer former(cfg);
  std::vector<SchedEntry> pending = {
      Entry(1, "t", /*deadline=*/500),
      Entry(2, "t", /*deadline=*/100),  // tighter deadline, ignored
      Entry(3, "t", 0, /*priority=*/9),
  };
  const BatchPlan plan = former.Form(pending, 0, 4, {});
  ASSERT_EQ(plan.picks.size(), 3u);
  EXPECT_EQ(pending[plan.picks[0]].id, 3u);  // priority
  EXPECT_EQ(pending[plan.picks[1]].id, 1u);  // arrival
  EXPECT_EQ(pending[plan.picks[2]].id, 2u);
}

TEST(BatchFormerTest, PreemptionsCountPicksThatOvertookOlderWaiters) {
  BatchFormer former(Immediate(1));
  std::vector<SchedEntry> pending = {
      Entry(1, "t", /*deadline=*/0),
      Entry(2, "t", /*deadline=*/2'000),
  };
  // One slot: EDF picks id 2 past the older id 1.
  const BatchPlan plan = former.Form(pending, 0, 1, {});
  ASSERT_EQ(plan.picks.size(), 1u);
  EXPECT_EQ(pending[plan.picks[0]].id, 2u);
  EXPECT_EQ(plan.preemptions, 1u);
}

TEST(BatchFormerTest, BatchWindowIsWorkConservingAndReportsRecheck) {
  SchedulerConfig cfg = SchedulerConfig::Builder()
                            .MaxBatch(8)
                            .BatchWindowUs(2'000)
                            .Build();
  BatchFormer former(cfg);
  // A lone deadline-free entry with free slots everywhere dispatches
  // immediately: holding it would idle the pipeline for nothing (the
  // window orders scarce slots, it never throttles admission).
  std::vector<SchedEntry> pending = {Entry(1, "t", 0, 0, /*enqueue=*/100)};
  BatchPlan plan = former.Form(pending, /*now=*/200, 8, {});
  ASSERT_EQ(plan.picks.size(), 1u);
  EXPECT_EQ(plan.recheck_at_us, 0);
  // Scarce slot, competition: the tight-deadline arrival wins the only
  // slot; the fresh slack entries left waiting report when their
  // windows expire so the caller re-forms.
  std::vector<SchedEntry> mixed = {
      Entry(10, "t", /*deadline=*/0, 0, /*enqueue=*/5'000),
      Entry(11, "t", /*deadline=*/0, 0, /*enqueue=*/5'100),
      Entry(12, "t", /*deadline=*/6'500, 0, /*enqueue=*/5'200),
  };
  plan = former.Form(mixed, /*now=*/5'300, /*free=*/1, {});
  ASSERT_EQ(plan.picks.size(), 1u);
  EXPECT_EQ(mixed[plan.picks[0]].id, 12u);
  EXPECT_EQ(plan.recheck_at_us, 5'000 + 2'000);
  // A burst of fresh slack work with free slots available: held status
  // never throttles — the slots fill anyway (work-conserving), and the
  // leftovers report their window expiry.
  std::vector<SchedEntry> burst;
  for (uint64_t i = 0; i < 4; ++i) {
    burst.push_back(Entry(20 + i, "t", 0, 0, /*enqueue=*/9'000));
  }
  plan = former.Form(burst, /*now=*/9'001, /*free=*/2, {});
  EXPECT_EQ(plan.picks.size(), 2u);
  EXPECT_EQ(plan.recheck_at_us, 9'000 + 2'000);
}

TEST(BatchFormerTest, TightDeadlineDispatchesInsideWindow) {
  SchedulerConfig cfg =
      SchedulerConfig::Builder().MaxBatch(8).BatchWindowUs(2'000).Build();
  BatchFormer former(cfg);
  // Scarce slot: the entry whose deadline is inside 2x window outranks
  // the OLDER slack entry still inside its window (EDF jump-ahead, one
  // counted preemption).
  std::vector<SchedEntry> pending = {
      Entry(1, "t", /*deadline=*/0, 0, /*enqueue=*/0),
      Entry(2, "t", /*deadline=*/3'000, 0, /*enqueue=*/0),
  };
  BatchPlan plan = former.Form(pending, /*now=*/10, /*free=*/1, {});
  ASSERT_EQ(plan.picks.size(), 1u);
  EXPECT_EQ(pending[plan.picks[0]].id, 2u);
  EXPECT_EQ(plan.preemptions, 1u);
  // With a second slot free the held slack entry rides along instead of
  // leaving the slot idle.
  BatchFormer former2(cfg);
  plan = former2.Form(pending, /*now=*/10, /*free=*/8, {});
  ASSERT_EQ(plan.picks.size(), 2u);
  EXPECT_EQ(pending[plan.picks[0]].id, 2u);
  EXPECT_EQ(pending[plan.picks[1]].id, 1u);
}

TEST(BatchFormerTest, WfqSplitsSlotsEvenlyAcrossEqualTenants) {
  BatchFormer former(Immediate(8));
  std::vector<SchedEntry> pending;
  for (uint64_t i = 0; i < 8; ++i) pending.push_back(Entry(i, "a"));
  for (uint64_t i = 8; i < 16; ++i) pending.push_back(Entry(i, "b"));
  const BatchPlan plan = former.Form(pending, 0, 8, {});
  ASSERT_EQ(plan.picks.size(), 8u);
  size_t a = 0, b = 0;
  for (size_t i : plan.picks) {
    (pending[i].tenant == "a" ? a : b) += 1;
  }
  EXPECT_EQ(a, 4u);
  EXPECT_EQ(b, 4u);
}

TEST(BatchFormerTest, WeightedTenantGetsProportionalShare) {
  SchedulerConfig cfg = SchedulerConfig::Builder()
                            .MaxBatch(8)
                            .BatchWindowUs(0)
                            .TenantWeight("gold", 3)
                            .Build();
  BatchFormer former(cfg);
  std::vector<SchedEntry> pending;
  for (uint64_t i = 0; i < 8; ++i) pending.push_back(Entry(i, "gold"));
  for (uint64_t i = 8; i < 16; ++i) pending.push_back(Entry(i, "iron"));
  const BatchPlan plan = former.Form(pending, 0, 8, {});
  ASSERT_EQ(plan.picks.size(), 8u);
  size_t gold = 0;
  for (size_t i : plan.picks) {
    if (pending[i].tenant == "gold") ++gold;
  }
  EXPECT_EQ(gold, 6u);  // 3:1 split of 8 slots
}

TEST(BatchFormerTest, QuotaCapsOccupancyUntilWorkConservingTopUp) {
  SchedulerConfig cfg = SchedulerConfig::Builder()
                            .MaxBatch(8)
                            .BatchWindowUs(0)
                            .TenantQuotaPct(25)  // 2 of 8 slots
                            .Build();
  BatchFormer former(cfg);
  std::vector<SchedEntry> flood;
  for (uint64_t i = 0; i < 16; ++i) flood.push_back(Entry(i, "flood"));
  flood.push_back(Entry(100, "quiet"));
  // Contended: flood is quota-capped at 2, quiet takes 1, and the
  // work-conserving top-up hands flood the 5 leftover slots.
  const BatchPlan plan = former.Form(flood, 0, 8, {});
  ASSERT_EQ(plan.picks.size(), 8u);
  size_t quiet = 0;
  for (size_t i : plan.picks) {
    if (flood[i].tenant == "quiet") ++quiet;
  }
  EXPECT_EQ(quiet, 1u);
  // A lone tenant is never capped (work conservation).
  BatchFormer lone(cfg);
  std::vector<SchedEntry> only;
  for (uint64_t i = 0; i < 8; ++i) only.push_back(Entry(i, "flood"));
  EXPECT_EQ(lone.Form(only, 0, 8, {}).picks.size(), 8u);
}

TEST(BatchFormerTest, QuotaCountsInflightOccupancy) {
  SchedulerConfig cfg = SchedulerConfig::Builder()
                            .MaxBatch(4)
                            .BatchWindowUs(0)
                            .TenantQuotaPct(50)  // 2 of 4 slots
                            .Build();
  BatchFormer former(cfg);
  std::vector<SchedEntry> pending = {Entry(1, "a"), Entry(2, "a"),
                                     Entry(3, "b")};
  // Tenant a already occupies 2 slots: its quota is spent, so the
  // contended pass admits only b; the top-up then admits a's backlog
  // into the genuinely free remainder.
  std::map<std::string, size_t> inflight{{"a", 2}};
  const BatchPlan plan = former.Form(pending, 0, /*free=*/2, inflight);
  ASSERT_EQ(plan.picks.size(), 2u);
  EXPECT_EQ(pending[plan.picks[0]].tenant, "b");
}

// Property: under adversarial arrivals (one tenant floods every round),
// a quiet tenant's request is admitted within a bounded number of
// formation rounds — WFQ + quotas bound starvation.
TEST(BatchFormerPropertyTest, QuotasBoundStarvationUnderAdversarialFloods) {
  std::mt19937 rng(0xC0FFEE);
  for (int trial = 0; trial < 20; ++trial) {
    SchedulerConfig cfg = SchedulerConfig::Builder()
                              .MaxBatch(4)
                              .BatchWindowUs(0)
                              .TenantQuotaPct(50)
                              .Build();
    BatchFormer former(cfg);
    uint64_t next_id = 0;
    int64_t now = 0;
    std::vector<SchedEntry> queue;
    // Warm the flood's WFQ history with a few uncontended rounds.
    const int warm_rounds = static_cast<int>(rng() % 4);
    for (int r = 0; r < warm_rounds; ++r) {
      for (int i = 0; i < 4; ++i) queue.push_back(Entry(next_id++, "flood"));
      const BatchPlan plan = former.Form(queue, now, 4, {});
      std::set<size_t> picked(plan.picks.begin(), plan.picks.end());
      std::vector<SchedEntry> rest;
      for (size_t i = 0; i < queue.size(); ++i) {
        if (!picked.count(i)) rest.push_back(queue[i]);
      }
      queue.swap(rest);
      now += 1'000;
    }
    // The quiet tenant arrives; the flood keeps flooding. The quiet
    // request must be picked within 2 rounds (it has the minimal
    // virtual time the moment it becomes backlogged).
    const uint64_t quiet_id = next_id++;
    queue.push_back(Entry(quiet_id, "quiet"));
    int rounds_until_admitted = -1;
    for (int r = 0; r < 6; ++r) {
      const uint64_t burst = rng() % 8;
      for (uint64_t i = 0; i < burst; ++i) {
        queue.push_back(Entry(next_id++, "flood"));
      }
      const BatchPlan plan = former.Form(queue, now, 4, {});
      bool admitted = false;
      for (size_t i : plan.picks) {
        if (queue[i].id == quiet_id) admitted = true;
      }
      if (admitted) {
        rounds_until_admitted = r;
        break;
      }
      std::set<size_t> picked(plan.picks.begin(), plan.picks.end());
      std::vector<SchedEntry> rest;
      for (size_t i = 0; i < queue.size(); ++i) {
        if (!picked.count(i)) rest.push_back(queue[i]);
      }
      queue.swap(rest);
      now += 1'000;
    }
    ASSERT_NE(rounds_until_admitted, -1)
        << "trial " << trial << ": quiet tenant starved";
    EXPECT_LE(rounds_until_admitted, 1)
        << "trial " << trial << ": quiet tenant waited too long";
  }
}

// Property: picks never exceed free slots, never duplicate, and always
// reference valid pending indices — for arbitrary arrival patterns.
TEST(BatchFormerPropertyTest, PlansAreWellFormedUnderRandomArrivals) {
  std::mt19937 rng(1234);
  const std::vector<std::string> tenants = {"a", "b", "c"};
  BatchFormer former(SchedulerConfig::Builder()
                         .MaxBatch(8)
                         .BatchWindowUs(1'000)
                         .TenantQuotaPct(40)
                         .Build());
  int64_t now = 0;
  uint64_t id = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<SchedEntry> pending;
    const size_t n = rng() % 12;
    for (size_t i = 0; i < n; ++i) {
      const int64_t dl = rng() % 3 == 0 ? now + 1 + (rng() % 5'000) : 0;
      pending.push_back(Entry(id++, tenants[rng() % tenants.size()], dl,
                              static_cast<int32_t>(rng() % 3),
                              now - (rng() % 2'000)));
    }
    const size_t free_slots = rng() % 9;
    const BatchPlan plan = former.Form(pending, now, free_slots, {});
    EXPECT_LE(plan.picks.size(), free_slots);
    std::set<size_t> seen;
    for (size_t i : plan.picks) {
      ASSERT_LT(i, pending.size());
      EXPECT_TRUE(seen.insert(i).second) << "duplicate pick";
    }
    now += 500;
  }
}

TEST(SchedulerConfigTest, FromEnvAppliesOnlyPresentKnobs) {
  // Absent env: base passes through untouched.
  unsetenv("MVTEE_SCHED_MAX_BATCH");
  unsetenv("MVTEE_SCHED_WINDOW_US");
  unsetenv("MVTEE_SCHED_EDF");
  unsetenv("MVTEE_SCHED_QUOTA_PCT");
  SchedulerConfig base = SchedulerConfig::Builder()
                             .MaxBatch(3)
                             .BatchWindowUs(777)
                             .Build();
  SchedulerConfig out = SchedulerConfig::FromEnv(base);
  EXPECT_EQ(out.max_batch, 3u);
  EXPECT_EQ(out.batch_window_us, 777);
  // Present env overrides.
  setenv("MVTEE_SCHED_MAX_BATCH", "16", 1);
  setenv("MVTEE_SCHED_EDF", "0", 1);
  out = SchedulerConfig::FromEnv(base);
  EXPECT_EQ(out.max_batch, 16u);
  EXPECT_FALSE(out.edf);
  EXPECT_EQ(out.batch_window_us, 777);  // still base
  // Garbage falls back to the knob default (strict resolution).
  setenv("MVTEE_SCHED_MAX_BATCH", "lots", 1);
  out = SchedulerConfig::FromEnv(base);
  EXPECT_EQ(static_cast<int64_t>(out.max_batch),
            util::KnobRegistry::Default().Find("MVTEE_SCHED_MAX_BATCH")->def);
  unsetenv("MVTEE_SCHED_MAX_BATCH");
  unsetenv("MVTEE_SCHED_EDF");
}

TEST(KnobRegistryTest, UnknownMvteeVarsAreDetected)
{
  const char* envp[] = {"MVTEE_THERADS=4", "MVTEE_SCHED_EDF=1",
                        "PATH=/bin", "MVTEE_BOGUS=1", nullptr};
  const std::vector<std::string> unknown =
      util::KnobRegistry::Default().UnknownIn(envp);
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "MVTEE_THERADS");
  EXPECT_EQ(unknown[1], "MVTEE_BOGUS");
}

}  // namespace
}  // namespace mvtee::core
