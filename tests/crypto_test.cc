#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/aead.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/rand.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"
#include "util/bytes.h"
#include "util/cpu_features.h"

namespace mvtee::crypto {
namespace {

using util::Bytes;
using util::ByteSpan;
using util::HexDecode;
using util::HexEncode;

Bytes FromHex(std::string_view hex) {
  Bytes out;
  EXPECT_TRUE(HexDecode(hex, out));
  return out;
}

std::string DigestHex(const Sha256Digest& d) {
  return HexEncode(ByteSpan(d.data(), d.size()));
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestHex(Sha256::Hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  auto msg = util::ToBytes("abc");
  EXPECT_EQ(DigestHex(Sha256::Hash(msg)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  auto msg = util::ToBytes(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(DigestHex(Sha256::Hash(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes msg;
  for (int i = 0; i < 300; ++i) msg.push_back(static_cast<uint8_t>(i * 7));
  // Feed in irregular chunk sizes to exercise buffering.
  Sha256 h;
  size_t pos = 0;
  for (size_t chunk : {1u, 3u, 63u, 64u, 65u, 100u, 4u}) {
    size_t take = std::min(chunk, msg.size() - pos);
    h.Update(ByteSpan(msg.data() + pos, take));
    pos += take;
  }
  h.Update(ByteSpan(msg.data() + pos, msg.size() - pos));
  EXPECT_EQ(h.Finish(), Sha256::Hash(msg));
}

// -------------------------------------------------------------- HMAC/HKDF

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  auto mac = HmacSha256(key, util::ToBytes("Hi There"));
  EXPECT_EQ(DigestHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  auto mac = HmacSha256(util::ToBytes("Jefe"),
                        util::ToBytes("what do ya want for nothing?"));
  EXPECT_EQ(DigestHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  auto mac = HmacSha256(key, data);
  EXPECT_EQ(DigestHex(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashed) {
  Bytes key(131, 0xaa);  // RFC 4231 case 6
  auto mac = HmacSha256(
      key, util::ToBytes("Test Using Larger Than Block-Size Key - Hash "
                         "Key First"));
  EXPECT_EQ(DigestHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HkdfTest, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = FromHex("000102030405060708090a0b0c");
  Bytes info = FromHex("f0f1f2f3f4f5f6f7f8f9");
  auto okm = Hkdf(salt, ikm, info, 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, Rfc5869Case3NoSaltNoInfo) {
  Bytes ikm(22, 0x0b);
  auto okm = Hkdf({}, ikm, {}, 42);
  EXPECT_EQ(HexEncode(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(HkdfTest, ExpandLengths) {
  Bytes prk(32, 0x42);
  for (size_t len : {1u, 16u, 31u, 32u, 33u, 64u, 100u, 255u}) {
    auto okm = HkdfExpand(prk, util::ToBytes("info"), len);
    EXPECT_EQ(okm.size(), len);
  }
  // Prefix property: a longer expansion extends a shorter one.
  auto short_okm = HkdfExpand(prk, util::ToBytes("ctx"), 16);
  auto long_okm = HkdfExpand(prk, util::ToBytes("ctx"), 48);
  EXPECT_TRUE(std::equal(short_okm.begin(), short_okm.end(),
                         long_okm.begin()));
}

// -------------------------------------------------------------------- AES

TEST(AesTest, Fips197Aes128) {
  auto key = FromHex("000102030405060708090a0b0c0d0e0f");
  auto pt = FromHex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ByteSpan(ct, 16)),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesTest, Fips197Aes256) {
  auto key =
      FromHex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  auto pt = FromHex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ByteSpan(ct, 16)),
            "8ea2b7ca516745bfeafc49904b496089");
}

TEST(AesTest, Aes256EcbNistVector) {
  // NIST AESAVS: key = 256-bit zero... use SP 800-38A F.1.5 vector instead.
  auto key =
      FromHex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  auto pt = FromHex("6bc1bee22e409f96e93d7e117393172a");
  Aes aes(key);
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ByteSpan(ct, 16)),
            "f3eed1bdb5d2a03c064b5a7e3db181f8");
}

// -------------------------------------------------------------- AES-GCM

TEST(GcmTest, NistTestCase1EmptyAes128) {
  // GCM spec test case 1: K=0^128, IV=0^96, empty PT/AAD.
  Bytes key(16, 0);
  Bytes nonce(12, 0);
  AesGcm gcm(key);
  auto sealed = gcm.Seal(nonce, {}, {});
  EXPECT_EQ(HexEncode(sealed), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(GcmTest, NistTestCase2SingleBlockAes128) {
  Bytes key(16, 0);
  Bytes nonce(12, 0);
  Bytes pt(16, 0);
  AesGcm gcm(key);
  auto sealed = gcm.Seal(nonce, {}, pt);
  EXPECT_EQ(HexEncode(sealed),
            "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(GcmTest, NistTestCase4WithAadAes128) {
  auto key = FromHex("feffe9928665731c6d6a8f9467308308");
  auto nonce = FromHex("cafebabefacedbaddecaf888");
  auto pt = FromHex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  auto aad = FromHex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  AesGcm gcm(key);
  auto sealed = gcm.Seal(nonce, aad, pt);
  EXPECT_EQ(HexEncode(sealed),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            "5bc94fbc3221a5db94fae95ae7121a47");
}

TEST(GcmTest, NistTestCase13EmptyAes256) {
  Bytes key(32, 0);
  Bytes nonce(12, 0);
  AesGcm gcm(key);
  auto sealed = gcm.Seal(nonce, {}, {});
  EXPECT_EQ(HexEncode(sealed), "530f8afbc74536b9a963b4f1c4cb738b");
}

TEST(GcmTest, NistTestCase16Aes256) {
  auto key = FromHex(
      "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
  auto nonce = FromHex("cafebabefacedbaddecaf888");
  auto pt = FromHex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  auto aad = FromHex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  AesGcm gcm(key);
  auto sealed = gcm.Seal(nonce, aad, pt);
  EXPECT_EQ(HexEncode(sealed),
            "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
            "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662"
            "76fc6ece0f4e1768cddf8853bb2d551b");
}

TEST(GcmTest, SealOpenRoundTrip) {
  Bytes key(32, 0x11);
  Bytes nonce(12, 0x22);
  auto pt = util::ToBytes("the quick brown fox jumps over the lazy dog");
  auto aad = util::ToBytes("header");
  AesGcm gcm(key);
  auto sealed = gcm.Seal(nonce, aad, pt);
  auto opened = gcm.Open(nonce, aad, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, pt);
}

TEST(GcmTest, TamperedCiphertextRejected) {
  Bytes key(32, 0x11);
  Bytes nonce(12, 0x22);
  auto pt = util::ToBytes("sensitive tensor bytes");
  AesGcm gcm(key);
  auto sealed = gcm.Seal(nonce, {}, pt);

  for (size_t i : {size_t{0}, sealed.size() / 2, sealed.size() - 1}) {
    auto corrupt = sealed;
    corrupt[i] ^= 0x01;
    auto r = gcm.Open(nonce, {}, corrupt);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kAuthenticationFailure);
  }
}

TEST(GcmTest, WrongAadRejected) {
  Bytes key(32, 0x11);
  Bytes nonce(12, 0x22);
  AesGcm gcm(key);
  auto sealed = gcm.Seal(nonce, util::ToBytes("aad1"), util::ToBytes("data"));
  EXPECT_FALSE(gcm.Open(nonce, util::ToBytes("aad2"), sealed).ok());
}

TEST(GcmTest, WrongNonceRejected) {
  Bytes key(32, 0x11);
  AesGcm gcm(key);
  Bytes nonce1(12, 1), nonce2(12, 2);
  auto sealed = gcm.Seal(nonce1, {}, util::ToBytes("data"));
  EXPECT_FALSE(gcm.Open(nonce2, {}, sealed).ok());
}

TEST(GcmTest, WrongKeyRejected) {
  Bytes key1(32, 0x11), key2(32, 0x12);
  Bytes nonce(12, 0);
  auto sealed = AesGcm(key1).Seal(nonce, {}, util::ToBytes("data"));
  EXPECT_FALSE(AesGcm(key2).Open(nonce, {}, sealed).ok());
}

TEST(GcmTest, TruncatedInputRejectedGracefully) {
  Bytes key(32, 0x11);
  Bytes nonce(12, 0);
  AesGcm gcm(key);
  Bytes too_short(10, 0);
  auto r = gcm.Open(nonce, {}, too_short);
  EXPECT_FALSE(r.ok());
}

TEST(GcmTest, LargePayloadRoundTrip) {
  Bytes key(32, 0x33);
  Bytes nonce(12, 0x44);
  Bytes pt(1 << 16);
  for (size_t i = 0; i < pt.size(); ++i) pt[i] = static_cast<uint8_t>(i * 31);
  AesGcm gcm(key);
  auto sealed = gcm.Seal(nonce, {}, pt);
  auto opened = gcm.Open(nonce, {}, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, pt);
}

TEST(GcmTest, InPlaceSealMatchesCopyingSeal) {
  Bytes key(32, 0x55);
  Bytes nonce(12, 0x66);
  auto aad = util::ToBytes("record header");
  AesGcm gcm(key);
  for (size_t len : {size_t{0}, size_t{1}, size_t{16}, size_t{4097}}) {
    Bytes pt(len);
    for (size_t i = 0; i < len; ++i) pt[i] = static_cast<uint8_t>(i * 7 + 3);
    const Bytes sealed = gcm.Seal(nonce, aad, pt);

    Bytes buf = pt;
    buf.resize(len + kGcmTagSize);
    gcm.SealInPlace(nonce, aad, buf.data(), len);
    EXPECT_EQ(buf, sealed) << len;

    // In-place open restores the plaintext prefix.
    auto n = gcm.OpenInPlace(nonce, aad, buf.data(), buf.size());
    ASSERT_TRUE(n.ok()) << len;
    EXPECT_EQ(*n, len);
    EXPECT_TRUE(std::equal(pt.begin(), pt.end(), buf.begin()));
  }
}

// ------------------------------------------------- GCM SIMD dispatch
//
// AES-GCM must be a single cipher with two speeds: whatever mix of
// AES-NI/PCLMUL and portable table code the dispatcher picks, the
// ciphertext and tag are bitwise identical. These run in one process
// and flip the path with ScopedForceScalar; CI additionally reruns the
// whole suite under MVTEE_SIMD=0 so the portable path is exercised as
// the default on its own leg.

TEST(GcmDispatchTest, NistKatsPassOnForcedScalarPath) {
  util::ScopedForceScalar force_scalar;
  ASSERT_FALSE(AesGcmAccelerated());
  // GCM spec test case 4 (AES-128, AAD, partial final block).
  {
    AesGcm gcm(FromHex("feffe9928665731c6d6a8f9467308308"));
    auto sealed = gcm.Seal(
        FromHex("cafebabefacedbaddecaf888"),
        FromHex("feedfacedeadbeeffeedfacedeadbeefabaddad2"),
        FromHex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"));
    EXPECT_EQ(HexEncode(sealed),
              "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
              "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
              "5bc94fbc3221a5db94fae95ae7121a47");
  }
  // GCM spec test case 16 (AES-256).
  {
    AesGcm gcm(FromHex(
        "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308"));
    auto sealed = gcm.Seal(
        FromHex("cafebabefacedbaddecaf888"),
        FromHex("feedfacedeadbeeffeedfacedeadbeefabaddad2"),
        FromHex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"));
    EXPECT_EQ(HexEncode(sealed),
              "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
              "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662"
              "76fc6ece0f4e1768cddf8853bb2d551b");
  }
}

TEST(GcmDispatchTest, SealBitwiseIdenticalAcrossPaths) {
  Bytes key(32, 0x7a);
  Bytes nonce(12, 0x1b);
  AesGcm gcm(key);
  // Lengths probing every CTR/GHASH code path: empty, AAD-only, sub-
  // block, exact block multiples (the 8-block pipelined main loop and
  // its single-block remainder), and ragged tails.
  const std::pair<size_t, size_t> shapes[] = {
      {0, 0},    {0, 20},   {1, 0},    {15, 7},  {16, 0},   {16, 16},
      {17, 3},   {32, 0},   {33, 13},  {112, 0}, {128, 24}, {129, 5},
      {4096, 20} };
  for (const auto& [pt_len, aad_len] : shapes) {
    Bytes pt(pt_len), aad(aad_len);
    for (size_t i = 0; i < pt_len; ++i) pt[i] = static_cast<uint8_t>(i * 13);
    for (size_t i = 0; i < aad_len; ++i) aad[i] = static_cast<uint8_t>(i + 5);

    const Bytes fast = gcm.Seal(nonce, aad, pt);
    Bytes scalar;
    {
      util::ScopedForceScalar force_scalar;
      ASSERT_FALSE(AesGcmAccelerated());
      scalar = gcm.Seal(nonce, aad, pt);
    }
    ASSERT_EQ(HexEncode(fast), HexEncode(scalar))
        << "pt=" << pt_len << " aad=" << aad_len;

    // Cross-path open: bytes sealed on one path authenticate on the
    // other (what actually happens when peers run different silicon).
    {
      util::ScopedForceScalar force_scalar;
      auto opened = gcm.Open(nonce, aad, fast);
      ASSERT_TRUE(opened.ok()) << "pt=" << pt_len;
      EXPECT_EQ(*opened, pt);
    }
    auto opened = gcm.Open(nonce, aad, scalar);
    ASSERT_TRUE(opened.ok()) << "pt=" << pt_len;
    EXPECT_EQ(*opened, pt);
  }
}

TEST(GcmDispatchTest, InPlacePathsMatchAcrossDispatch) {
  Bytes key(32, 0x42);
  Bytes nonce(12, 0x99);
  auto aad = util::ToBytes("frame header");
  AesGcm gcm(key);
  for (size_t len : {size_t{0}, size_t{16}, size_t{129}, size_t{4097}}) {
    Bytes pt(len);
    for (size_t i = 0; i < len; ++i) pt[i] = static_cast<uint8_t>(i * 31 + 1);

    Bytes fast = pt;
    fast.resize(len + kGcmTagSize);
    gcm.SealInPlace(nonce, aad, fast.data(), len);

    Bytes scalar = pt;
    scalar.resize(len + kGcmTagSize);
    {
      util::ScopedForceScalar force_scalar;
      gcm.SealInPlace(nonce, aad, scalar.data(), len);
    }
    ASSERT_EQ(fast, scalar) << len;

    // Open each buffer on the opposite path it was sealed on.
    {
      util::ScopedForceScalar force_scalar;
      auto n = gcm.OpenInPlace(nonce, aad, fast.data(), fast.size());
      ASSERT_TRUE(n.ok()) << len;
      EXPECT_EQ(*n, len);
    }
    auto n = gcm.OpenInPlace(nonce, aad, scalar.data(), scalar.size());
    ASSERT_TRUE(n.ok()) << len;
    EXPECT_EQ(*n, len);
    EXPECT_TRUE(std::equal(pt.begin(), pt.end(), scalar.begin())) << len;
  }
}

TEST(GcmTest, InPlaceOpenRejectsExactlyLikeOpen) {
  Bytes key(32, 0x55);
  Bytes nonce(12, 0x66);
  auto aad = util::ToBytes("seq||header");
  auto pt = util::ToBytes("tensor payload bytes for parity checking");
  AesGcm gcm(key);
  const Bytes sealed = gcm.Seal(nonce, aad, pt);

  // Bit flips anywhere (ciphertext or tag) fail both entry points with
  // the same taxonomy, and the in-place buffer stays untouched.
  for (size_t i : {size_t{0}, sealed.size() / 2, sealed.size() - 1}) {
    Bytes corrupt = sealed;
    corrupt[i] ^= 0x01;
    const Bytes before = corrupt;
    auto copy_r = gcm.Open(nonce, aad, corrupt);
    auto r = gcm.OpenInPlace(nonce, aad, corrupt.data(), corrupt.size());
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(copy_r.ok());
    EXPECT_EQ(r.status().code(), copy_r.status().code());
    EXPECT_EQ(r.status().code(), util::StatusCode::kAuthenticationFailure);
    EXPECT_EQ(corrupt, before) << "failed open must not decrypt in place";
  }

  // AAD tampering parity.
  Bytes sealed2 = sealed;
  EXPECT_FALSE(gcm.Open(nonce, util::ToBytes("other"), sealed2).ok());
  EXPECT_FALSE(gcm.OpenInPlace(nonce, util::ToBytes("other"), sealed2.data(),
                               sealed2.size())
                   .ok());

  // Truncation parity (shorter than a tag, and truncated ciphertext).
  for (size_t keep : {size_t{0}, kGcmTagSize - 1, sealed.size() - 1}) {
    Bytes cut(sealed.begin(), sealed.begin() + static_cast<long>(keep));
    EXPECT_FALSE(gcm.Open(nonce, aad, cut).ok());
    EXPECT_FALSE(gcm.OpenInPlace(nonce, aad, cut.data(), cut.size()).ok());
  }
}

// ----------------------------------------------------------------- X25519

TEST(X25519Test, Rfc7748Vector1) {
  X25519Key scalar, point;
  Bytes s = FromHex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  Bytes u = FromHex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  std::copy(s.begin(), s.end(), scalar.begin());
  std::copy(u.begin(), u.end(), point.begin());
  auto out = X25519(scalar, point);
  EXPECT_EQ(HexEncode(ByteSpan(out.data(), out.size())),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519Test, Rfc7748Vector2) {
  X25519Key scalar, point;
  Bytes s = FromHex(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  Bytes u = FromHex(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  std::copy(s.begin(), s.end(), scalar.begin());
  std::copy(u.begin(), u.end(), point.begin());
  auto out = X25519(scalar, point);
  EXPECT_EQ(HexEncode(ByteSpan(out.data(), out.size())),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519Test, DiffieHellmanAgreement) {
  // RFC 7748 §6.1 test keys.
  X25519Key alice_priv, bob_priv;
  Bytes a = FromHex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  Bytes b = FromHex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  std::copy(a.begin(), a.end(), alice_priv.begin());
  std::copy(b.begin(), b.end(), bob_priv.begin());

  auto alice_pub = X25519PublicKey(alice_priv);
  auto bob_pub = X25519PublicKey(bob_priv);
  EXPECT_EQ(HexEncode(ByteSpan(alice_pub.data(), 32)),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(HexEncode(ByteSpan(bob_pub.data(), 32)),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  auto shared_a = X25519(alice_priv, bob_pub);
  auto shared_b = X25519(bob_priv, alice_pub);
  EXPECT_EQ(shared_a, shared_b);
  EXPECT_EQ(HexEncode(ByteSpan(shared_a.data(), 32)),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519Test, IteratedRfc7748) {
  // RFC 7748 §5.2: after 1 iteration of k = X25519(k, u); u = old k.
  X25519Key k{}, u{};
  k[0] = 9;
  u[0] = 9;
  auto result = X25519(k, u);
  EXPECT_EQ(HexEncode(ByteSpan(result.data(), 32)),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");
}

// ------------------------------------------------------------------ rand

TEST(RandTest, DeterministicIsReproducible) {
  DeterministicRandom a(99), b(99);
  auto x = a.Generate(64);
  auto y = b.Generate(64);
  EXPECT_EQ(x, y);
}

TEST(RandTest, DeterministicDiffersBySeed) {
  DeterministicRandom a(1), b(2);
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(RandTest, SequentialCallsDiffer) {
  DeterministicRandom a(7);
  EXPECT_NE(a.Generate(32), a.Generate(32));
}

TEST(RandTest, SecureRandomProducesNonConstantOutput) {
  SecureRandom sr;
  auto x = sr.Generate(32);
  auto y = sr.Generate(32);
  EXPECT_NE(x, y);
}

}  // namespace
}  // namespace mvtee::crypto
