// System-level integration and property tests: full deployments across
// zoo models, virtual-time engine properties, attack-surface behaviour,
// and resource-exhaustion edges.
#include <gtest/gtest.h>

#include "core/monitor.h"
#include "core/offline.h"
#include "core/variant_host.h"
#include "fault/injectors.h"
#include "graph/model_zoo.h"
#include "obs/json.h"
#include "runtime/executor.h"
#include "transport/channel.h"
#include "util/clock.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>


namespace mvtee::core {
namespace {

using graph::Graph;
using tensor::Shape;
using tensor::Tensor;

// One-batch convenience over the unified Run() surface (replaces the
// removed RunBatch wrapper): returns the single batch's outputs.
util::Result<std::vector<Tensor>> RunOne(Monitor& m,
                                         const std::vector<Tensor>& inputs) {
  auto all = m.Run({inputs});
  if (!all.ok()) return all.status();
  return std::move((*all)[0]);
}

graph::ZooConfig SmallZoo() {
  graph::ZooConfig cfg;
  cfg.input_hw = 32;
  cfg.width_mult = 0.25;
  cfg.depth_mult = 0.34;
  return cfg;
}

OfflineOptions Offline(int partitions, int variants, bool replicated,
                       uint64_t seed = 41) {
  OfflineOptions opts;
  opts.num_partitions = partitions;
  opts.partition_seed = seed;
  opts.key_seed = seed + 1;
  opts.pool.variants_per_stage = variants;
  opts.pool.replicated = replicated;
  opts.pool.verify = false;
  opts.pool.seed = seed + 2;
  return opts;
}

std::vector<Tensor> ReferenceRun(const Graph& model,
                                 const std::vector<Tensor>& inputs) {
  auto exec =
      runtime::Executor::Create(model, runtime::ReferenceExecutorConfig());
  MVTEE_CHECK(exec.ok());
  auto out = (*exec)->Run(inputs);
  MVTEE_CHECK(out.ok());
  return *out;
}

// Full deployment across real zoo models with a diversified pool.
class ZooDeploymentTest : public ::testing::TestWithParam<graph::ModelKind> {
};

TEST_P(ZooDeploymentTest, DiversifiedMvxMatchesReference) {
  Graph model = graph::BuildModel(GetParam(), SmallZoo());
  auto bundle = RunOfflineTool(model, Offline(4, 3, /*replicated=*/false));
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  tee::SimulatedCpu cpu{tee::SimulatedCpu::Options{.hardware_key_seed = 5}};
  VariantHost host(&cpu, bundle->store);
  MonitorConfig config;
  config.check = CheckPolicy::Cosine(0.99);
  config.vote = VotePolicy::kMajority;
  config.reaction = ReactionPolicy::ContinueWithWinner();
  config.direct_fastpath = true;
  auto monitor = Monitor::Create(&cpu, config);
  ASSERT_TRUE(monitor.ok());
  ASSERT_TRUE((*monitor)
                  ->Initialize(*bundle, MvxSelection::Uniform(*bundle, 3),
                               host)
                  .ok());

  util::Rng rng(1);
  auto input = Tensor::RandomUniform(Shape({1, 3, 32, 32}), rng);
  auto out = RunOne(**monitor, {input});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto expected = ReferenceRun(model, {input});
  EXPECT_GT(tensor::CosineSimilarity((*out)[0], expected[0]), 0.999);

  auto stats = (*monitor)->ConsumeStats();
  EXPECT_EQ(stats.divergences, 0u);
  EXPECT_EQ(stats.variant_failures, 0u);
  ASSERT_TRUE((*monitor)->Shutdown().ok());
  host.JoinAll();
}

INSTANTIATE_TEST_SUITE_P(Models, ZooDeploymentTest,
                         ::testing::Values(graph::ModelKind::kResNet50,
                                           graph::ModelKind::kGoogleNet,
                                           graph::ModelKind::kMobileNetV3),
                         [](const auto& info) {
                           std::string name(graph::ModelName(info.param));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// Fixture for virtual-time and attack-surface tests on a small model.
class VirtualTimeTest : public ::testing::Test {
 protected:
  void Boot(MonitorConfig config, int partitions = 4, int variants = 1,
            VariantHost::Options host_options = VariantHost::Options{}) {
    model_ = graph::BuildModel(graph::ModelKind::kResNet50, SmallZoo());
    auto bundle =
        RunOfflineTool(model_, Offline(partitions, 5, /*replicated=*/true));
    ASSERT_TRUE(bundle.ok());
    bundle_ = std::move(*bundle);
    host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store,
                                          host_options);
    auto monitor = Monitor::Create(&cpu_, config);
    ASSERT_TRUE(monitor.ok());
    monitor_ = std::move(*monitor);
    ASSERT_TRUE(monitor_
                    ->Initialize(bundle_,
                                 MvxSelection::Uniform(bundle_, variants),
                                 *host_)
                    .ok());
  }

  std::vector<std::vector<Tensor>> MakeBatches(int n) {
    util::Rng rng(9);
    std::vector<std::vector<Tensor>> batches;
    for (int i = 0; i < n; ++i) {
      batches.push_back({Tensor::RandomUniform(Shape({1, 3, 32, 32}), rng)});
    }
    return batches;
  }

  void TearDown() override {
    if (monitor_) ASSERT_TRUE(monitor_->Shutdown().ok());
    if (host_) host_->JoinAll();
  }

  tee::SimulatedCpu cpu_{tee::SimulatedCpu::Options{.hardware_key_seed = 7}};
  Graph model_;
  OfflineBundle bundle_;
  std::unique_ptr<VariantHost> host_;
  std::unique_ptr<Monitor> monitor_;
};

TEST_F(VirtualTimeTest, PipelinedBeatsSequentialThroughput) {
  MonitorConfig config;
  config.direct_fastpath = true;
  Boot(config);
  auto batches = MakeBatches(10);

  ASSERT_TRUE(monitor_->Run(batches).ok());
  auto seq = monitor_->ConsumeStats();
  ASSERT_TRUE(monitor_->Run(batches, RunOptions{.pipelined = true}).ok());
  auto pipe = monitor_->ConsumeStats();

  EXPECT_GT(seq.ThroughputPerSec(), 0.0);
  // With 4 stages on independent (virtual) executors, pipelining must
  // improve steady-state throughput materially.
  EXPECT_GT(pipe.ThroughputPerSec(), seq.ThroughputPerSec() * 1.3);
}

TEST_F(VirtualTimeTest, StatsAreMeaningful) {
  MonitorConfig config;
  Boot(config, 3, 3);
  auto batches = MakeBatches(4);
  ASSERT_TRUE(monitor_->Run(batches).ok());
  auto stats = monitor_->ConsumeStats();
  EXPECT_EQ(stats.batch_latency_us.size(), 4u);
  for (int64_t lat : stats.batch_latency_us) EXPECT_GT(lat, 0);
  EXPECT_GT(stats.wall_us, 0);
  EXPECT_EQ(stats.checkpoints_evaluated, 3u * 4u);
  EXPECT_GT(stats.bytes_sent, 0u);
  // Mean latency consistent with the list.
  double mean = stats.MeanLatencyUs();
  EXPECT_GT(mean, 0.0);
  // Consuming resets.
  auto empty = monitor_->ConsumeStats();
  EXPECT_TRUE(empty.batch_latency_us.empty());
}

TEST_F(VirtualTimeTest, SlowVariantDelaysSyncButNotAsyncQuorum) {
  // Diversified pool with an extra-slow variant on one stage's panel.
  model_ = graph::BuildModel(graph::ModelKind::kResNet50, SmallZoo());
  auto opts = Offline(3, 2, /*replicated=*/false);
  opts.pool.include_slow_variant = true;
  opts.pool.slow_variant_factor = 6.0;
  auto bundle = RunOfflineTool(model_, opts);
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);

  auto run_mode = [&](ExecMode mode) -> double {
    host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store);
    MonitorConfig config;
    config.mode = mode;
    config.check = CheckPolicy::Cosine(0.99);
    config.vote = VotePolicy::kMajority;
    config.reaction = ReactionPolicy::ContinueWithWinner();
    auto monitor = Monitor::Create(&cpu_, config);
    MVTEE_CHECK(monitor.ok());
    monitor_ = std::move(*monitor);
    MVTEE_CHECK(monitor_
                    ->Initialize(bundle_,
                                 MvxSelection::PerStage(bundle_, {1, 3, 1}),
                                 *host_)
                    .ok());
    auto batches = MakeBatches(6);
    MVTEE_CHECK(monitor_->Run(batches).ok());
    auto stats = monitor_->ConsumeStats();
    MVTEE_CHECK(monitor_->Shutdown().ok());
    host_->JoinAll();
    return stats.ThroughputPerSec();
  };

  double sync_tput = run_mode(ExecMode::kSync);
  double async_tput = run_mode(ExecMode::kAsync);
  // The 6x-slow panel member throttles sync but not the async quorum.
  EXPECT_GT(async_tput, sync_tput * 1.2);
}

TEST_F(VirtualTimeTest, AsyncLateDivergenceDetected) {
  // Corrupt ONLY the slow variant: async proceeds on the healthy quorum,
  // then flags the straggler at the next checkpoint (late divergence).
  model_ = graph::BuildModel(graph::ModelKind::kResNet50, SmallZoo());
  auto opts = Offline(3, 2, /*replicated=*/false);
  opts.pool.include_slow_variant = true;
  opts.pool.slow_variant_factor = 6.0;
  auto bundle = RunOfflineTool(model_, opts);
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);

  class Corrupt : public runtime::FaultHook {
   public:
    void OnNodeComplete(const graph::Node&, Tensor& out) override {
      if (out.num_elements() > 0) out.data()[0] += 100.0f;
    }
  };
  host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store);
  host_->SetFaultHook("s1.v2", std::make_shared<Corrupt>());  // slow variant

  MonitorConfig config;
  config.mode = ExecMode::kAsync;
  config.check = CheckPolicy::Cosine(0.99);
  config.vote = VotePolicy::kMajority;
  config.reaction = ReactionPolicy::ContinueWithWinner();
  auto monitor = Monitor::Create(&cpu_, config);
  ASSERT_TRUE(monitor.ok());
  monitor_ = std::move(*monitor);
  ASSERT_TRUE(monitor_
                  ->Initialize(bundle_,
                               MvxSelection::PerStage(bundle_, {1, 3, 1}),
                               *host_)
                  .ok());
  auto batches = MakeBatches(6);
  auto out = monitor_->Run(batches);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto stats = monitor_->ConsumeStats();
  // Dissent observed — either at a checkpoint or via late validation.
  EXPECT_GT(stats.divergences + stats.late_divergences, 0u);
  // And every released output matches the healthy reference.
  for (size_t b = 0; b < batches.size(); ++b) {
    auto expected = ReferenceRun(model_, batches[b]);
    EXPECT_GT(tensor::CosineSimilarity((*out)[b][0], expected[0]), 0.999);
  }
}

TEST_F(VirtualTimeTest, VerifyFastPathCatchesNonFinitePoisoning) {
  model_ = graph::BuildModel(graph::ModelKind::kResNet50, SmallZoo());
  auto bundle = RunOfflineTool(model_, Offline(3, 1, /*replicated=*/true));
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);

  class Poison : public runtime::FaultHook {
   public:
    void OnNodeComplete(const graph::Node& node, Tensor& out) override {
      if (node.op == graph::OpType::kConv2d && out.num_elements() > 0) {
        out.data()[0] = std::numeric_limits<float>::quiet_NaN();
      }
    }
  };
  host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store);
  host_->SetFaultHook("s1.v0", std::make_shared<Poison>());

  MonitorConfig config;
  config.verify_fast_path = true;  // single-variant rule evaluation
  auto monitor = Monitor::Create(&cpu_, config);
  ASSERT_TRUE(monitor.ok());
  monitor_ = std::move(*monitor);
  ASSERT_TRUE(monitor_
                  ->Initialize(bundle_, MvxSelection::Uniform(bundle_, 1),
                               *host_)
                  .ok());
  auto out = RunOne(*monitor_, MakeBatches(1)[0]);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), util::StatusCode::kDivergenceDetected);
}

TEST_F(VirtualTimeTest, EventedMonitorExposesWaitAndPrefilterMetrics) {
  // Replicated 3-variant panels produce byte-identical outputs, so the
  // digest prefilter must absorb every pairwise check; the evented loop
  // must record blocking waits instead of busy-poll sleeps.
  MonitorConfig config;
  Boot(config, 3, 3);
  auto before = obs::Registry::Default().Snapshot();
  auto batches = MakeBatches(4);
  ASSERT_TRUE(monitor_->Run(batches).ok());
  auto delta = obs::Registry::Default().Snapshot().DeltaSince(before);
  EXPECT_GT(delta.counters.at("monitor.prefilter_hits"), 0u);
  EXPECT_EQ(delta.counters.at("monitor.full_checks"), 0u);
  EXPECT_GT(delta.histograms.at("monitor.wait_us").count, 0u);
  EXPECT_GT(delta.histograms.at("monitor.verify_job_us").count, 0u);
  // The pool drained before Run returned.
  EXPECT_EQ(delta.gauges.at("monitor.verify_queue_depth"), 0);
}

TEST_F(VirtualTimeTest, InlineVerifyAndPrefilterOffStillCorrect) {
  // verify_threads = 0 degrades to deterministic inline verification
  // and digest_prefilter = false forces full element-wise votes; both
  // must preserve results and checkpoint accounting.
  MonitorConfig config;
  config.verify_threads = 0;
  config.digest_prefilter = false;
  Boot(config, 3, 3);
  auto batches = MakeBatches(3);
  auto out = monitor_->Run(batches);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto stats = monitor_->ConsumeStats();
  EXPECT_EQ(stats.checkpoints_evaluated, 3u * 3u);
  EXPECT_EQ(stats.divergences, 0u);
  for (size_t b = 0; b < batches.size(); ++b) {
    auto expected = ReferenceRun(model_, batches[b]);
    EXPECT_GT(tensor::CosineSimilarity((*out)[b][0], expected[0]), 0.999);
  }
}

TEST_F(VirtualTimeTest, SequentialPacingKeepsVirtualTimeSane) {
  // Regression: sequential admission used to run inside the decision
  // handler and clobber the in-flight event's virtual-time bases,
  // skewing per-batch latencies. Latencies must stay positive and
  // mutually sane.
  Boot(MonitorConfig{}, 3, 3);
  auto batches = MakeBatches(5);
  RunStats run_stats;
  RunOptions opts;
  opts.stats = &run_stats;
  ASSERT_TRUE(monitor_->Run(batches, opts).ok());
  ASSERT_EQ(run_stats.batch_latency_us.size(), 5u);
  int64_t lo = *std::min_element(run_stats.batch_latency_us.begin(),
                                 run_stats.batch_latency_us.end());
  int64_t hi = *std::max_element(run_stats.batch_latency_us.begin(),
                                 run_stats.batch_latency_us.end());
  EXPECT_GT(lo, 0);
  EXPECT_LT(hi, lo * 100);  // no batch pays another's clobbered baseline
}

TEST_F(VirtualTimeTest, TamperedResultFrameAbortsRun) {
  // Host-level attacker: flip one ciphertext byte in every large
  // variant-to-monitor frame (inference results; handshake and init
  // acks are small and pass untouched). The secure channel reports
  // AuthenticationFailure and the monitor must abort the run with that
  // code instead of swallowing it and spinning until the deadline.
  model_ = graph::BuildModel(graph::ModelKind::kResNet50, SmallZoo());
  auto bundle = RunOfflineTool(model_, Offline(3, 1, /*replicated=*/true));
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);

  VariantHost::Options hostile;
  hostile.tamper_variant_tx =
      [](const util::Bytes& frame) -> std::optional<util::Bytes> {
    if (frame.size() <= 2048) return frame;
    util::Bytes tampered = frame;
    tampered[tampered.size() / 2] ^= 0x01;
    return tampered;
  };
  VariantHost host(&cpu_, bundle_.store, hostile);

  MonitorConfig config;
  config.recv_timeout_us = 5'000'000;
  auto monitor = Monitor::Create(&cpu_, config);
  ASSERT_TRUE(monitor.ok());
  ASSERT_TRUE((*monitor)
                  ->Initialize(bundle_, MvxSelection::Uniform(bundle_, 1),
                               host)
                  .ok());
  const int64_t wall0 = util::NowMicros();
  auto out = RunOne(**monitor, MakeBatches(1)[0]);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), util::StatusCode::kAuthenticationFailure);
  // Aborted on detection, not by burning the full recv deadline.
  EXPECT_LT(util::NowMicros() - wall0, 4'000'000);
  (void)(*monitor)->Shutdown();
  host.JoinAll();
}

TEST_F(VirtualTimeTest, DivergenceWritesEvidenceBundleWithLinkedTrace) {
  // End-to-end observability check: a fault-injected divergent run must
  // leave behind a self-contained evidence bundle whose merged trace is
  // causally linked across TEEs — monitor and variant spans share the
  // batch's trace id, and the stage-0 variant/infer spans parent under
  // the monitor's dispatch (monitor/admit) span.
  char evidence_dir[] = "/tmp/mvtee-evidence-XXXXXX";
  ASSERT_NE(::mkdtemp(evidence_dir), nullptr);
  ASSERT_EQ(::setenv("MVTEE_EVIDENCE_DIR", evidence_dir, 1), 0);

  model_ = graph::BuildModel(graph::ModelKind::kResNet50, SmallZoo());
  auto bundle = RunOfflineTool(model_, Offline(3, 3, /*replicated=*/true));
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);

  class Corrupt : public runtime::FaultHook {
   public:
    void OnNodeComplete(const graph::Node&, Tensor& out) override {
      if (out.num_elements() > 0) out.data()[0] += 100.0f;
    }
  };
  VariantHost host(&cpu_, bundle_.store);
  host.SetFaultHook("s0.v1", std::make_shared<Corrupt>());

  MonitorConfig config;  // kUnanimous + kAbort: one dissenter aborts
  auto monitor = Monitor::Create(&cpu_, config);
  ASSERT_TRUE(monitor.ok());
  ASSERT_TRUE((*monitor)
                  ->Initialize(bundle_, MvxSelection::Uniform(bundle_, 3),
                               host)
                  .ok());
  auto out = (*monitor)->Run(MakeBatches(1));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), util::StatusCode::kDivergenceDetected);
  (void)(*monitor)->Shutdown();
  host.JoinAll();
  ASSERT_EQ(::unsetenv("MVTEE_EVIDENCE_DIR"), 0);

  // Exactly one incident → exactly one bundle.
  std::vector<std::filesystem::path> bundles;
  for (const auto& entry :
       std::filesystem::directory_iterator(evidence_dir)) {
    bundles.push_back(entry.path());
  }
  ASSERT_EQ(bundles.size(), 1u);

  std::ifstream in(bundles[0]);
  std::stringstream text;
  text << in.rdbuf();
  auto doc = obs::ParseJson(text.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  ASSERT_NE(doc->Find("schema"), nullptr);
  EXPECT_EQ(doc->Find("schema")->as_string(), "mvtee-evidence-v1");
  ASSERT_NE(doc->Find("trigger"), nullptr);
  EXPECT_EQ(doc->Find("trigger")->as_string(), "vote-divergence");

  // The flight recorder captured the divergent checkpoint, with the
  // corrupted variant marked as the dissenter.
  const obs::JsonValue* verdicts = doc->Find("verdicts");
  ASSERT_NE(verdicts, nullptr);
  bool saw_divergence = false;
  for (const auto& v : verdicts->as_array()) {
    if (v.Find("verdict")->as_string() != "divergence") continue;
    saw_divergence = true;
    for (const auto& variant : v.Find("variants")->as_array()) {
      const bool dissent = variant.Find("dissent")->as_bool();
      EXPECT_EQ(dissent,
                variant.Find("variant_id")->as_string() == "s0.v1");
    }
  }
  EXPECT_TRUE(saw_divergence);

  // JsonValue stores numbers as doubles; ids compared after the same
  // uint64→double cast are consistent.
  ASSERT_NE(doc->Find("trace_id"), nullptr);
  const double trace_id = static_cast<double>(
      std::strtoull(doc->Find("trace_id")->as_string().c_str(), nullptr, 10));
  ASSERT_NE(trace_id, 0.0);

  const obs::JsonValue* trace = doc->Find("trace");
  ASSERT_NE(trace, nullptr);
  const obs::JsonValue* processes = trace->Find("processes");
  ASSERT_NE(processes, nullptr);

  double admit_span_id = 0.0;
  int variant_spans_under_admit = 0;
  bool saw_monitor = false, saw_tee = false;
  for (const auto& proc : processes->as_array()) {
    const std::string& name = proc.Find("process")->as_string();
    if (name == "monitor") saw_monitor = true;
    if (name.rfind("tee/", 0) == 0) saw_tee = true;
    for (const auto& span : proc.Find("spans")->as_array()) {
      // Every span in the slice belongs to the aborting batch's trace.
      EXPECT_EQ(span.Find("trace_id")->as_number(), trace_id);
      if (name == "monitor" &&
          span.Find("name")->as_string() == "monitor/admit") {
        admit_span_id = span.Find("span_id")->as_number();
      }
    }
  }
  EXPECT_TRUE(saw_monitor);
  EXPECT_TRUE(saw_tee);
  ASSERT_NE(admit_span_id, 0.0);
  for (const auto& proc : processes->as_array()) {
    const std::string& name = proc.Find("process")->as_string();
    if (name.rfind("tee/s0.", 0) != 0) continue;
    for (const auto& span : proc.Find("spans")->as_array()) {
      if (span.Find("name")->as_string() != "variant/infer") continue;
      EXPECT_EQ(span.Find("parent_span_id")->as_number(), admit_span_id);
      ++variant_spans_under_admit;
    }
  }
  // All three stage-0 replicas inferred under the monitor's dispatch.
  EXPECT_EQ(variant_spans_under_admit, 3);

  std::filesystem::remove_all(evidence_dir);
}

TEST_F(VirtualTimeTest, EpcExhaustionFailsInitializationGracefully) {
  model_ = graph::BuildModel(graph::ModelKind::kResNet50, SmallZoo());
  auto bundle = RunOfflineTool(model_, Offline(3, 3, /*replicated=*/true));
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);

  // Enough EPC for the monitor and a couple of variants only.
  tee::SimulatedCpu tiny_cpu{
      tee::SimulatedCpu::Options{.total_epc_pages = 9000,
                                 .hardware_key_seed = 11}};
  VariantHost host(&tiny_cpu, bundle_.store);
  auto monitor = Monitor::Create(&tiny_cpu, MonitorConfig{});
  ASSERT_TRUE(monitor.ok());
  auto status = (*monitor)->Initialize(
      bundle_, MvxSelection::Uniform(bundle_, 3), host);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
  (void)(*monitor)->Shutdown();
  host.JoinAll();
}

TEST_F(VirtualTimeTest, ExplicitSelectionPicksNamedVariants) {
  model_ = graph::BuildModel(graph::ModelKind::kResNet50, SmallZoo());
  auto bundle = RunOfflineTool(model_, Offline(3, 4, /*replicated=*/false));
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);
  host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store);
  auto monitor = Monitor::Create(&cpu_, MonitorConfig{});
  ASSERT_TRUE(monitor.ok());
  monitor_ = std::move(*monitor);
  MvxSelection sel;
  sel.stage_variant_ids = {{"s0.v3"}, {"s1.v1", "s1.v2"}, {"s2.v0"}};
  ASSERT_TRUE(monitor_->Initialize(bundle_, sel, *host_).ok());
  auto bindings = monitor_->bindings();
  ASSERT_EQ(bindings.size(), 4u);
  EXPECT_EQ(bindings[0].variant_id, "s0.v3");
  EXPECT_EQ(bindings[1].variant_id, "s1.v1");
  auto out = RunOne(*monitor_, MakeBatches(1)[0]);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
}

TEST_F(VirtualTimeTest, RepeatedRunsAccumulateIndependentStats) {
  MonitorConfig config;
  Boot(config, 3, 1);
  auto batches = MakeBatches(3);
  ASSERT_TRUE(monitor_->Run(batches).ok());
  auto first = monitor_->ConsumeStats();
  ASSERT_TRUE(monitor_->Run(batches).ok());
  auto second = monitor_->ConsumeStats();
  EXPECT_EQ(first.batch_latency_us.size(), 3u);
  EXPECT_EQ(second.batch_latency_us.size(), 3u);
  // Virtual clocks persist across runs but latencies stay per-run sane:
  // within an order of magnitude of each other.
  EXPECT_LT(second.MeanLatencyUs(), first.MeanLatencyUs() * 10);
  EXPECT_GT(second.MeanLatencyUs(), first.MeanLatencyUs() / 10);
}

TEST_F(VirtualTimeTest, PlaintextAblationIsNotSlower) {
  // Encryption can only add (virtual) cost.
  auto batches = MakeBatches(8);

  MonitorConfig config;
  config.direct_fastpath = true;
  Boot(config);
  ASSERT_TRUE(monitor_->Run(batches).ok());
  auto encrypted = monitor_->ConsumeStats();
  ASSERT_TRUE(monitor_->Shutdown().ok());
  host_->JoinAll();

  VariantHost::Options plain;
  plain.plaintext_channels = true;
  host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store, plain);
  auto monitor = Monitor::Create(&cpu_, config);
  ASSERT_TRUE(monitor.ok());
  monitor_ = std::move(*monitor);
  ASSERT_TRUE(monitor_
                  ->Initialize(bundle_, MvxSelection::Uniform(bundle_, 1),
                               *host_)
                  .ok());
  ASSERT_TRUE(monitor_->Run(batches).ok());
  auto plaintext = monitor_->ConsumeStats();

  // Allow generous noise margin; the point is no systematic inversion.
  EXPECT_LT(plaintext.MeanLatencyUs(), encrypted.MeanLatencyUs() * 1.25);
}

TEST_F(VirtualTimeTest, LifecycleEvidenceBundleRecordsQuarantineAndReadmit) {
  // Full reaction loop inside ONE Run call: a transient tamper on one
  // replica trips quarantine, the supervisor re-bootstraps it through
  // the attested two-stage protocol and re-admits it after a clean
  // shadow checkpoint — all without aborting. The end-of-run evidence
  // bundle must carry the quarantine AND readmit verdicts, each linked
  // to its batch's trace, and the supervisor metrics must move.
  char evidence_dir[] = "/tmp/mvtee-lifecycle-XXXXXX";
  ASSERT_NE(::mkdtemp(evidence_dir), nullptr);
  ASSERT_EQ(::setenv("MVTEE_EVIDENCE_DIR", evidence_dir, 1), 0);

  model_ = graph::BuildModel(graph::ModelKind::kResNet50, SmallZoo());
  auto bundle = RunOfflineTool(model_, Offline(2, 3, /*replicated=*/true));
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);

  fault::WindowedFaultSpec spec;
  spec.effect = fault::FaultEffect::kCorruptSilent;
  spec.fire_limit = 1;  // fires on batch 0, then runs clean
  auto hook = std::make_shared<fault::WindowedFault>(spec);
  VariantHost host(&cpu_, bundle_.store);
  host.SetFaultHook("s0.v1", hook);

  MonitorConfig config;
  config.reaction = ReactionPolicy::Builder()
                        .QuarantineAndRestart()
                        .DissentThreshold(1)
                        .ProbationBatches(1)
                        .RetryBudget(2)
                        .Backoff(/*initial_us=*/0, /*multiplier=*/2.0,
                                 /*max_us=*/1'000)
                        .Build();
  auto monitor = Monitor::Create(&cpu_, config);
  ASSERT_TRUE(monitor.ok());
  ASSERT_TRUE((*monitor)
                  ->Initialize(bundle_, MvxSelection::Uniform(bundle_, 3),
                               host)
                  .ok());

  auto before = obs::Registry::Default().Snapshot();
  auto batches = MakeBatches(6);
  auto out = (*monitor)->Run(batches);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto delta = obs::Registry::Default().Snapshot().DeltaSince(before);
  EXPECT_GE(delta.counters.at("supervisor.quarantines_total"), 1u);
  EXPECT_GE(delta.counters.at("supervisor.readmissions_total"), 1u);

  // Every released output is the healthy panel's answer.
  for (size_t b = 0; b < batches.size(); ++b) {
    auto expected = ReferenceRun(model_, batches[b]);
    EXPECT_GT(tensor::CosineSimilarity((*out)[b][0], expected[0]), 0.999);
  }
  EXPECT_EQ(hook->fire_count(), 1u);

  const Supervisor* sup = (*monitor)->supervisor();
  ASSERT_NE(sup, nullptr);
  EXPECT_GE(sup->quarantines_total(), 1u);
  EXPECT_GE(sup->readmissions_total(), 1u);
  EXPECT_EQ(sup->state(0, 1), VariantLifecycle::kHealthy);  // readmitted

  ASSERT_TRUE((*monitor)->Shutdown().ok());
  host.JoinAll();
  ASSERT_EQ(::unsetenv("MVTEE_EVIDENCE_DIR"), 0);

  // One completed-but-eventful run -> exactly one bundle.
  std::vector<std::filesystem::path> bundles;
  for (const auto& entry :
       std::filesystem::directory_iterator(evidence_dir)) {
    bundles.push_back(entry.path());
  }
  ASSERT_EQ(bundles.size(), 1u);

  std::ifstream in(bundles[0]);
  std::stringstream text;
  text << in.rdbuf();
  auto doc = obs::ParseJson(text.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_NE(doc->Find("schema"), nullptr);
  EXPECT_EQ(doc->Find("schema")->as_string(), "mvtee-evidence-v1");
  ASSERT_NE(doc->Find("trigger"), nullptr);
  EXPECT_EQ(doc->Find("trigger")->as_string(), "quarantine");
  ASSERT_NE(doc->Find("trace_id"), nullptr);
  const std::string bundle_trace = doc->Find("trace_id")->as_string();
  EXPECT_NE(bundle_trace, "0");

  // The retained ring holds the whole lifecycle of s0.v1: quarantine on
  // the triggering batch's trace (which is also the bundle's trace),
  // then rebootstrap and readmit on later batches' traces.
  const obs::JsonValue* verdicts = doc->Find("verdicts");
  ASSERT_NE(verdicts, nullptr);
  bool saw_quarantine = false, saw_rebootstrap = false, saw_readmit = false;
  for (const auto& v : verdicts->as_array()) {
    const std::string& verdict = v.Find("verdict")->as_string();
    if (verdict != "quarantine" && verdict != "rebootstrap" &&
        verdict != "readmit") {
      continue;
    }
    const auto& variants = v.Find("variants")->as_array();
    ASSERT_EQ(variants.size(), 1u);
    if (variants[0].Find("variant_id")->as_string() != "s0.v1") continue;
    const std::string& trace = v.Find("trace_id")->as_string();
    EXPECT_NE(trace, "0");  // every lifecycle verdict is trace-linked
    if (verdict == "quarantine") {
      saw_quarantine = true;
      EXPECT_EQ(trace, bundle_trace);  // attributed to the first incident
      EXPECT_TRUE(variants[0].Find("dissent")->as_bool());
    } else if (verdict == "rebootstrap") {
      saw_rebootstrap = true;
    } else {
      saw_readmit = true;
      EXPECT_TRUE(variants[0].Find("ok")->as_bool());
    }
  }
  EXPECT_TRUE(saw_quarantine);
  EXPECT_TRUE(saw_rebootstrap);
  EXPECT_TRUE(saw_readmit);

  std::filesystem::remove_all(evidence_dir);
}

TEST_F(VirtualTimeTest, RecvTimeoutBecomesVariantFailureNotRunError) {
  // A variant that goes silent past recv_timeout_us must cost only its
  // own panel seat when the remaining replicas still satisfy the vote:
  // the expiry is classified as a per-slot failure, the slot is
  // quarantined, and the run completes instead of DeadlineExceeded.
  // The hook parks the variant's first inference on a latch (released
  // after Run) rather than a fixed sleep, so the silence outlasts the
  // recv timeout regardless of scheduler load; respawned instances of
  // the variant run clean.
  class HangFirstCall : public runtime::FaultHook {
   public:
    util::Status OnNodeStart(const graph::Node&) override {
      if (first_.exchange(false)) {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return released_; });
      }
      return util::OkStatus();
    }
    void Release() {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
      cv_.notify_all();
    }

   private:
    std::atomic<bool> first_{true};
    std::mutex mu_;
    std::condition_variable cv_;
    bool released_ = false;
  };

  model_ = graph::BuildModel(graph::ModelKind::kResNet50, SmallZoo());
  auto bundle = RunOfflineTool(model_, Offline(2, 3, /*replicated=*/true));
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);

  VariantHost host(&cpu_, bundle_.store);
  auto hang = std::make_shared<HangFirstCall>();
  host.SetFaultHook("s0.v0", hang);

  MonitorConfig config;
  // Generous enough that handshakes and healthy inferences never trip
  // it even on a loaded CI box; the parked variant stays silent past
  // any value.
  config.recv_timeout_us = 4'000'000;
  config.reaction = ReactionPolicy::Builder()
                        .QuarantineAndRestart()
                        .DissentThreshold(1)
                        .Backoff(/*initial_us=*/0, /*multiplier=*/2.0,
                                 /*max_us=*/1'000)
                        .Build();
  auto monitor = Monitor::Create(&cpu_, config);
  ASSERT_TRUE(monitor.ok());
  ASSERT_TRUE((*monitor)
                  ->Initialize(bundle_, MvxSelection::Uniform(bundle_, 3),
                               host)
                  .ok());

  auto batches = MakeBatches(3);
  auto out = (*monitor)->Run(batches);
  hang->Release();  // unpark the quarantined original before teardown
  ASSERT_TRUE(out.ok()) << out.status().ToString();  // not DeadlineExceeded

  const Supervisor* sup = (*monitor)->supervisor();
  ASSERT_NE(sup, nullptr);
  EXPECT_GE(sup->quarantines_total(), 1u);
  EXPECT_GE(sup->slot(0, 0).quarantines, 1);

  for (size_t b = 0; b < batches.size(); ++b) {
    auto expected = ReferenceRun(model_, batches[b]);
    EXPECT_GT(tensor::CosineSimilarity((*out)[b][0], expected[0]), 0.999);
  }

  ASSERT_TRUE((*monitor)->Shutdown().ok());
  host.JoinAll();
}

}  // namespace
}  // namespace mvtee::core
