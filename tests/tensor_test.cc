#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace mvtee::tensor {
namespace {

TEST(ShapeTest, Basics) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.num_elements(), 24);
  EXPECT_EQ(s.ToString(), "[2,3,4]");
  EXPECT_EQ(s, Shape({2, 3, 4}));
  EXPECT_NE(s, Shape({2, 3, 5}));
}

TEST(ShapeTest, ScalarShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.num_elements(), 1);
}

TEST(TensorTest, ZerosAndFull) {
  auto z = Tensor::Zeros(Shape({2, 2}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(z.at(i), 0.0f);
  auto f = Tensor::Full(Shape({3}), 2.5f);
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(f.at(i), 2.5f);
}

TEST(TensorTest, RandomUniformRange) {
  util::Rng rng(1);
  auto t = Tensor::RandomUniform(Shape({1000}), rng, -2.0f, 3.0f);
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    EXPECT_GE(t.at(i), -2.0f);
    EXPECT_LT(t.at(i), 3.0f);
  }
}

TEST(TensorTest, RandomNormalDeterministicBySeed) {
  util::Rng a(5), b(5);
  auto x = Tensor::RandomNormal(Shape({64}), a);
  auto y = Tensor::RandomNormal(Shape({64}), b);
  EXPECT_EQ(x, y);
}

TEST(TensorTest, At4Indexing) {
  Tensor t(Shape({2, 3, 4, 5}));
  t.at4(1, 2, 3, 4) = 7.0f;
  // linear index = ((1*3+2)*4+3)*5+4 = 119
  EXPECT_EQ(t.at(119), 7.0f);
  EXPECT_EQ(t.at4(1, 2, 3, 4), 7.0f);
}

TEST(TensorTest, At2Indexing) {
  Tensor t(Shape({3, 4}));
  t.at2(2, 1) = 9.0f;
  EXPECT_EQ(t.at(9), 9.0f);
}

TEST(TensorTest, SerializeRoundTrip) {
  util::Rng rng(7);
  auto t = Tensor::RandomUniform(Shape({2, 3, 5}), rng);
  auto bytes = t.Serialize();
  auto back = Tensor::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(TensorTest, SerializeScalarShape) {
  Tensor t{Shape({1})};
  t.at(0) = 42.0f;
  auto back = Tensor::Deserialize(t.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->at(0), 42.0f);
}

TEST(TensorTest, DeserializeRejectsCorruption) {
  util::Rng rng(7);
  auto bytes = Tensor::RandomUniform(Shape({4, 4}), rng).Serialize();
  // Bad magic.
  auto bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_FALSE(Tensor::Deserialize(bad).ok());
  // Truncation.
  auto truncated = bytes;
  truncated.resize(truncated.size() - 5);
  EXPECT_FALSE(Tensor::Deserialize(truncated).ok());
  // Empty.
  EXPECT_FALSE(Tensor::Deserialize({}).ok());
}

TEST(TensorTest, DeserializeRejectsCountMismatch) {
  util::Rng rng(7);
  auto t = Tensor::RandomUniform(Shape({2, 2}), rng);
  auto bytes = t.Serialize();
  // Flip the element count field (offset: 4 magic + 4 rank + 16 dims).
  bytes[24 + 7] ^= 0x01;
  EXPECT_FALSE(Tensor::Deserialize(bytes).ok());
}

TEST(MetricsTest, CosineSimilarityIdentical) {
  util::Rng rng(3);
  auto t = Tensor::RandomUniform(Shape({100}), rng);
  EXPECT_NEAR(CosineSimilarity(t, t), 1.0, 1e-9);
}

TEST(MetricsTest, CosineSimilarityOpposite) {
  Tensor a(Shape({3}), {1, 2, 3});
  Tensor b(Shape({3}), {-1, -2, -3});
  EXPECT_NEAR(CosineSimilarity(a, b), -1.0, 1e-9);
}

TEST(MetricsTest, CosineSimilarityOrthogonal) {
  Tensor a(Shape({2}), {1, 0});
  Tensor b(Shape({2}), {0, 1});
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0, 1e-9);
}

TEST(MetricsTest, CosineSimilarityZeroVectors) {
  Tensor z(Shape({4}));
  Tensor nz(Shape({4}), {1, 1, 1, 1});
  EXPECT_EQ(CosineSimilarity(z, z), 1.0);
  EXPECT_EQ(CosineSimilarity(z, nz), 0.0);
}

TEST(MetricsTest, MseAndMaxAbsDiff) {
  Tensor a(Shape({4}), {1, 2, 3, 4});
  Tensor b(Shape({4}), {1, 2, 3, 8});
  EXPECT_NEAR(MeanSquaredError(a, b), 4.0, 1e-9);  // 16/4
  EXPECT_NEAR(MaxAbsDiff(a, b), 4.0, 1e-9);
  EXPECT_EQ(MeanSquaredError(a, a), 0.0);
}

TEST(MetricsTest, AllClose) {
  Tensor a(Shape({3}), {1.0f, 2.0f, 3.0f});
  Tensor b(Shape({3}), {1.0f + 1e-7f, 2.0f, 3.0f});
  EXPECT_TRUE(AllClose(a, b));
  Tensor c(Shape({3}), {1.1f, 2.0f, 3.0f});
  EXPECT_FALSE(AllClose(a, c));
  // Shape mismatch -> false, not crash.
  Tensor d(Shape({2}), {1.0f, 2.0f});
  EXPECT_FALSE(AllClose(a, d));
}

TEST(MetricsTest, AllCloseRejectsNan) {
  Tensor a(Shape({2}), {1.0f, std::nanf("")});
  EXPECT_FALSE(AllClose(a, a));
}

TEST(MetricsTest, AllCloseRelativeTolerance) {
  Tensor a(Shape({1}), {1000.0f});
  Tensor b(Shape({1}), {1000.005f});
  EXPECT_TRUE(AllClose(a, b, 1e-5, 1e-8));   // within rtol*1000 = 0.01
  EXPECT_FALSE(AllClose(a, b, 1e-6, 1e-8));  // rtol*1000 = 0.001
}

TEST(MetricsTest, HasNonFinite) {
  Tensor ok(Shape({3}), {1, 2, 3});
  EXPECT_FALSE(HasNonFinite(ok));
  Tensor with_nan(Shape({2}), {1.0f, std::nanf("")});
  EXPECT_TRUE(HasNonFinite(with_nan));
  Tensor with_inf(Shape({2}), {1.0f, INFINITY});
  EXPECT_TRUE(HasNonFinite(with_inf));
}

}  // namespace
}  // namespace mvtee::tensor
