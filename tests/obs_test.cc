// Tests for the observability subsystem: metrics registry (counters,
// gauges, histograms with percentile estimation), JSON snapshot
// round-trips, and trace spans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "util/clock.h"
#include "util/logging.h"

namespace mvtee::obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(JsonTest, DumpAndParseRoundTrip) {
  JsonValue::Object obj;
  obj.emplace_back("name", std::string("hello \"world\"\n"));
  obj.emplace_back("count", static_cast<int64_t>(42));
  obj.emplace_back("ratio", 0.25);
  obj.emplace_back("flag", true);
  obj.emplace_back("nothing", JsonValue());
  JsonValue::Array arr;
  arr.push_back(JsonValue(static_cast<int64_t>(1)));
  arr.push_back(JsonValue(static_cast<int64_t>(2)));
  obj.emplace_back("items", JsonValue(std::move(arr)));
  const JsonValue value(std::move(obj));

  for (int indent : {0, 2}) {
    auto parsed = ParseJson(value.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const JsonValue::Object& o = parsed->as_object();
    ASSERT_EQ(o.size(), 6u);
    EXPECT_EQ(o[0].second.as_string(), "hello \"world\"\n");
    EXPECT_EQ(o[1].second.as_number(), 42.0);
    EXPECT_EQ(o[2].second.as_number(), 0.25);
    EXPECT_TRUE(o[3].second.as_bool());
    EXPECT_TRUE(o[4].second.is_null());
    EXPECT_EQ(o[5].second.as_array().size(), 2u);
  }
}

TEST(JsonTest, EscapeSequencesRoundTrip) {
  // Every escape class the writer emits: quote, backslash, control
  // chars (named and \u-encoded), plus 8-bit pass-through.
  const std::string nasty = "q\"b\\t\tn\nr\rc\x01z\x7f";
  const std::string dumped = JsonValue(nasty).Dump(0);
  auto parsed = ParseJson(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->as_string(), nasty);
  // Explicit \u escape parse.
  auto uni = ParseJson("\"\\u0041\\u000a\"");
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(uni->as_string(), "A\n");
}

TEST(JsonTest, NestedArraysRoundTrip) {
  auto parsed = ParseJson("[[1, [2, [3]]], [], [[\"x\"]]]");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue::Array& outer = parsed->as_array();
  ASSERT_EQ(outer.size(), 3u);
  EXPECT_EQ(outer[0].as_array()[1].as_array()[1].as_array()[0].as_number(),
            3.0);
  EXPECT_TRUE(outer[1].as_array().empty());
  EXPECT_EQ(outer[2].as_array()[0].as_array()[0].as_string(), "x");
  // Dump of the parsed tree re-parses to the same shape.
  auto again = ParseJson(parsed->Dump(2));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Dump(0), parsed->Dump(0));
}

TEST(JsonTest, FindMissesReturnNull) {
  auto parsed = ParseJson("{\"present\": 1}");
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->Find("present"), nullptr);
  EXPECT_EQ(parsed->Find("absent"), nullptr);
  // Find on a non-object is a miss, not a crash.
  EXPECT_EQ(JsonValue(static_cast<int64_t>(3)).Find("x"), nullptr);
  EXPECT_EQ(JsonValue().Find("x"), nullptr);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
}

// ------------------------------------------------------------- counters

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Registry registry;
  Counter& counter = registry.GetCounter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(CounterTest, PointerStableAcrossLookups) {
  Registry registry;
  Counter* a = &registry.GetCounter("stable");
  registry.GetCounter("other");
  EXPECT_EQ(a, &registry.GetCounter("stable"));
}

TEST(GaugeTest, SetAndAdd) {
  Registry registry;
  Gauge& g = registry.GetGauge("depth");
  g.Set(5);
  g.Add(-2);
  EXPECT_EQ(g.value(), 3);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

// ------------------------------------------------------------ histogram

TEST(HistogramTest, BucketBoundsAreMonotonic) {
  for (size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_GT(Histogram::BucketBound(i), Histogram::BucketBound(i - 1))
        << "bucket " << i;
  }
  EXPECT_GE(Histogram::BucketBound(Histogram::kNumBuckets - 1),
            int64_t{3'000'000'000});
}

TEST(HistogramTest, PercentilesOnUniformSamples) {
  Histogram h;
  // 1..1000: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990. The geometric buckets
  // carry at most ~25% relative error inside one bucket.
  for (int64_t v = 1; v <= 1000; ++v) h.Observe(v);
  HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 1000u);
  EXPECT_EQ(stats.min, 1);
  EXPECT_EQ(stats.max, 1000);
  EXPECT_DOUBLE_EQ(stats.sum, 500500.0);
  EXPECT_NEAR(stats.p50, 500.0, 500.0 * 0.30);
  EXPECT_NEAR(stats.p95, 950.0, 950.0 * 0.30);
  EXPECT_NEAR(stats.p99, 990.0, 990.0 * 0.30);
  EXPECT_DOUBLE_EQ(stats.mean(), 500.5);
}

TEST(HistogramTest, PercentileClampsToObservedRange) {
  Histogram h;
  h.Observe(70);
  h.Observe(70);
  h.Observe(70);
  // All mass in one bucket: every percentile must stay inside [min,max].
  EXPECT_EQ(h.Percentile(0.0), 70.0);
  EXPECT_EQ(h.Percentile(0.5), 70.0);
  EXPECT_EQ(h.Percentile(1.0), 70.0);
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram h;
  h.Observe(-5);
  HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 1u);
  EXPECT_EQ(stats.min, 0);
  EXPECT_EQ(stats.max, 0);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.p50, 0.0);
  EXPECT_EQ(stats.mean(), 0.0);
}

TEST(HistogramTest, ConcurrentObservationsAllCounted) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(t * 100 + i % 97);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------------- registry

TEST(RegistryTest, SnapshotCapturesAllKinds) {
  Registry registry;
  registry.GetCounter("c").Add(7);
  registry.GetGauge("g").Set(-3);
  registry.GetHistogram("h").Observe(100);

  RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("c"), 7u);
  EXPECT_EQ(snap.gauges.at("g"), -3);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
}

TEST(RegistryTest, ResetZeroesButKeepsRegistrations) {
  Registry registry;
  Counter* c = &registry.GetCounter("c");
  c->Add(5);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(&registry.GetCounter("c"), c);
}

TEST(RegistrySnapshotTest, JsonRoundTrip) {
  Registry registry;
  registry.GetCounter("monitor.bytes_sent").Add(4096);
  registry.GetGauge("queue.depth").Set(12);
  Histogram& h = registry.GetHistogram("monitor.stage0.verify_us");
  for (int64_t v : {10, 20, 30, 40, 50}) h.Observe(v);

  RegistrySnapshot snap = registry.Snapshot();
  auto parsed = RegistrySnapshot::FromJson(snap.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->counters, snap.counters);
  EXPECT_EQ(parsed->gauges, snap.gauges);
  ASSERT_EQ(parsed->histograms.size(), 1u);
  const HistogramStats& a = parsed->histograms.at("monitor.stage0.verify_us");
  const HistogramStats& b = snap.histograms.at("monitor.stage0.verify_us");
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
}

TEST(RegistrySnapshotTest, CompactJsonAlsoParses) {
  Registry registry;
  registry.GetCounter("a.b").Add(1);
  registry.GetHistogram("c.d").Observe(5);
  auto parsed = RegistrySnapshot::FromJson(registry.Snapshot().ToJson(0));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->counters.at("a.b"), 1u);
}

TEST(RegistrySnapshotTest, DeltaSinceSubtractsCounters) {
  Registry registry;
  Counter& c = registry.GetCounter("events");
  Histogram& h = registry.GetHistogram("lat_us");
  c.Add(10);
  h.Observe(100);
  RegistrySnapshot base = registry.Snapshot();
  c.Add(5);
  h.Observe(200);
  RegistrySnapshot delta = registry.Snapshot().DeltaSince(base);
  EXPECT_EQ(delta.counters.at("events"), 5u);
  EXPECT_EQ(delta.histograms.at("lat_us").count, 1u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("lat_us").sum, 200.0);
}

// ---------------------------------------------------------------- spans

TEST(TraceTest, SpanNestingDepthsAreRecorded) {
  TraceBuffer buffer(16);
  {
    ScopedSpan outer("a/outer", {}, &buffer);
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);
    {
      ScopedSpan inner("a/inner", {.stage = 1, .batch = 7, .tag = "x"},
                       &buffer);
      EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
      {
        ScopedSpan innermost("a/innermost", {}, &buffer);
        EXPECT_EQ(ScopedSpan::CurrentDepth(), 2);
      }
      EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
    }
  }
  EXPECT_EQ(ScopedSpan::CurrentDepth(), -1);

  // Spans complete innermost-first.
  auto spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "a/innermost");
  EXPECT_EQ(spans[0].depth, 2);
  EXPECT_EQ(spans[1].name, "a/inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].stage, 1);
  EXPECT_EQ(spans[1].batch, 7);
  EXPECT_EQ(spans[1].tag, "x");
  EXPECT_EQ(spans[2].name, "a/outer");
  EXPECT_EQ(spans[2].depth, 0);
}

TEST(TraceTest, SpanFeedsHistogram) {
  TraceBuffer buffer(4);
  Histogram h;
  { ScopedSpan span("timed", {}, &buffer, &h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(TraceTest, RingBufferKeepsNewestSpans) {
  TraceBuffer buffer(4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("span" + std::to_string(i), {}, &buffer);
  }
  EXPECT_EQ(buffer.total_recorded(), 10u);
  auto spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first among the surviving (newest) four.
  EXPECT_EQ(spans[0].name, "span6");
  EXPECT_EQ(spans[3].name, "span9");
}

TEST(TraceTest, ToJsonIsParseable) {
  TraceBuffer buffer(4);
  { ScopedSpan span("x/y", {.stage = 2, .batch = 3, .tag = "v"}, &buffer); }
  auto parsed = ParseJson(buffer.ToJson());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->as_array().size(), 1u);
}

TEST(TraceTest, TidIsRecordedAndExported) {
  TraceBuffer buffer(8);
  const int32_t here = CurrentTid();
  EXPECT_GT(here, 0);
  EXPECT_EQ(CurrentTid(), here);  // stable on re-query
  { ScopedSpan span("t/local", {}, &buffer); }
  int32_t other = 0;
  std::thread([&] {
    other = CurrentTid();
    ScopedSpan span("t/remote", {}, &buffer);
  }).join();
  EXPECT_NE(other, here);

  auto spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].tid, here);
  EXPECT_EQ(spans[1].tid, other);

  auto parsed = ParseJson(buffer.ToJson());
  ASSERT_TRUE(parsed.ok());
  const JsonValue* tid = parsed->as_array()[0].Find("tid");
  ASSERT_NE(tid, nullptr);
  EXPECT_EQ(tid->as_number(), static_cast<double>(here));
}

TEST(TraceTest, ToJsonOnEmptyAndWrappedBuffers) {
  TraceBuffer empty(4);
  auto parsed = ParseJson(empty.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->as_array().empty());

  // Wrapped ring: ToJson carries exactly the surviving capacity-many
  // spans, oldest first.
  TraceBuffer wrapped(3);
  for (int i = 0; i < 7; ++i) {
    ScopedSpan span("w" + std::to_string(i), {}, &wrapped);
  }
  auto wj = ParseJson(wrapped.ToJson(0));
  ASSERT_TRUE(wj.ok());
  ASSERT_EQ(wj->as_array().size(), 3u);
  EXPECT_EQ(wj->as_array()[0].Find("name")->as_string(), "w4");
  EXPECT_EQ(wj->as_array()[2].Find("name")->as_string(), "w6");

  wrapped.Clear();
  EXPECT_TRUE(wrapped.Snapshot().empty());
  EXPECT_EQ(wrapped.total_recorded(), 0u);
}

// -------------------------------------------------------- trace context

TEST(TraceContextTest, SpansParentUnderEnclosingSpan) {
  TraceBuffer buffer(8);
  const uint64_t trace = NewTraceId();
  uint64_t outer_id = 0;
  {
    TraceContextScope root(trace, 0);
    ScopedSpan outer("ctx/outer", {}, &buffer);
    outer_id = outer.context().span_id;
    EXPECT_EQ(outer.context().trace_id, trace);
    { ScopedSpan inner("ctx/inner", {}, &buffer); }
  }
  // Context restored once the scope closed.
  EXPECT_FALSE(CurrentTraceContext().valid());

  auto spans = buffer.Snapshot();  // inner completes first
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, trace);
  EXPECT_EQ(spans[0].parent_span_id, outer_id);
  EXPECT_EQ(spans[1].span_id, outer_id);
  EXPECT_EQ(spans[1].parent_span_id, 0u);
  EXPECT_NE(spans[0].span_id, spans[1].span_id);
}

TEST(TraceContextTest, RemoteParentAdoptedAcrossThreads) {
  // Monitor side: a dispatch span whose context crosses the "TEE
  // boundary"; variant side: a thread adopting it via TraceContextScope.
  TraceBuffer monitor_buf(4), variant_buf(4);
  TraceContext wire;
  {
    TraceContextScope root(NewTraceId(), 0);
    ScopedSpan dispatch("monitor/admit", {}, &monitor_buf);
    wire = dispatch.context();
  }
  std::thread([&] {
    TraceContextScope remote(wire);
    ScopedSpan infer("variant/infer", {}, &variant_buf);
  }).join();

  auto vspans = variant_buf.Snapshot();
  ASSERT_EQ(vspans.size(), 1u);
  EXPECT_EQ(vspans[0].trace_id, wire.trace_id);
  EXPECT_EQ(vspans[0].parent_span_id, wire.span_id);
}

TEST(TraceCollectorTest, MergeAndSliceByTraceId) {
  TraceCollector collector;
  auto mon = std::make_shared<TraceBuffer>(8);
  auto tee = std::make_shared<TraceBuffer>(8);
  collector.Register("monitor", mon);
  collector.Register("tee/s0.v1", tee);

  const uint64_t t1 = NewTraceId(), t2 = NewTraceId();
  {
    TraceContextScope scope(t1, 0);
    ScopedSpan a("m/one", {}, mon.get());
  }
  {
    TraceContextScope scope(t2, 0);
    ScopedSpan b("m/two", {}, mon.get());
    ScopedSpan c("v/two", {}, tee.get());
  }

  TraceCollector::MergedTrace merged = collector.Merge();
  ASSERT_EQ(merged.processes.size(), 2u);
  EXPECT_EQ(merged.processes[0].process, "monitor");  // name order
  EXPECT_EQ(merged.processes[1].process, "tee/s0.v1");
  EXPECT_EQ(merged.total_spans(), 3u);

  TraceCollector::MergedTrace slice = merged.Slice(t1);
  ASSERT_EQ(slice.processes.size(), 1u);  // buffers with no match drop
  EXPECT_EQ(slice.processes[0].process, "monitor");
  ASSERT_EQ(slice.total_spans(), 1u);
  EXPECT_EQ(slice.processes[0].spans[0].name, "m/one");

  auto parsed = ParseJson(merged.ToJson());
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->Find("processes"), nullptr);

  collector.Unregister("tee/s0.v1");
  EXPECT_EQ(collector.Merge().processes.size(), 1u);
}

// ------------------------------------------------------------ exporters

TEST(ChromeTraceExporterTest, EmitsValidTraceEventJson) {
  TraceCollector collector;
  auto mon = std::make_shared<TraceBuffer>(8);
  auto tee = std::make_shared<TraceBuffer>(8);
  collector.Register("monitor", mon);
  collector.Register("tee/s0.v1", tee);
  uint64_t span_id = 0;
  {
    TraceContextScope scope(NewTraceId(), 0);
    ScopedSpan a("monitor/admit", {.batch = 5, .tag = {}}, mon.get());
    span_id = a.context().span_id;
    ScopedSpan b("variant/infer", {.stage = 0, .batch = 5, .tag = "s0.v1"},
                 tee.get());
  }

  ChromeTraceExporter exporter(&collector);
  auto parsed = ParseJson(exporter.Export());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Two metadata rows (one per process) + two duration events.
  ASSERT_EQ(events->as_array().size(), 4u);

  int metadata = 0, duration = 0;
  for (const JsonValue& ev : events->as_array()) {
    const std::string& ph = ev.Find("ph")->as_string();
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(ev.Find("name")->as_string(), "process_name");
      ASSERT_NE(ev.Find("args"), nullptr);
      EXPECT_NE(ev.Find("args")->Find("name"), nullptr);
    } else {
      ASSERT_EQ(ph, "X");
      ++duration;
      EXPECT_NE(ev.Find("ts"), nullptr);
      EXPECT_NE(ev.Find("dur"), nullptr);
      EXPECT_GE(ev.Find("pid")->as_number(), 1.0);
      ASSERT_NE(ev.Find("args"), nullptr);
    }
  }
  EXPECT_EQ(metadata, 2);
  EXPECT_EQ(duration, 2);

  // Ids survive as strings (64-bit safe).
  for (const JsonValue& ev : events->as_array()) {
    if (ev.Find("ph")->as_string() != "X") continue;
    if (ev.Find("name")->as_string() != "monitor/admit") continue;
    EXPECT_EQ(ev.Find("args")->Find("span_id")->as_string(),
              std::to_string(span_id));
  }
}

TEST(PrometheusExporterTest, TextExpositionFormat) {
  Registry registry;
  registry.GetCounter("monitor.divergences_total").Add(3);
  registry.GetGauge("monitor.verify_queue_depth_hwm").Set(7);
  Histogram& h = registry.GetHistogram("monitor.batch_latency_us");
  for (int64_t v : {100, 200, 300}) h.Observe(v);

  PrometheusExporter exporter(&registry);
  const std::string text = exporter.Export();

  EXPECT_NE(text.find("# TYPE mvtee_monitor_divergences_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("mvtee_monitor_divergences_total 3\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE mvtee_monitor_verify_queue_depth_hwm gauge\n"),
      std::string::npos);
  EXPECT_NE(text.find("mvtee_monitor_verify_queue_depth_hwm 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mvtee_monitor_batch_latency_us summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("mvtee_monitor_batch_latency_us{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("mvtee_monitor_batch_latency_us_sum 600\n"),
            std::string::npos);
  EXPECT_NE(text.find("mvtee_monitor_batch_latency_us_count 3\n"),
            std::string::npos);

  // Every non-comment line is "name[{labels}] value".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.compare(0, 6, "mvtee_"), 0) << line;
    // Value parses as a number.
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }

  EXPECT_EQ(PrometheusExporter::MetricName("monitor.stage0.verify_us"),
            "mvtee_monitor_stage0_verify_us");
  EXPECT_EQ(PrometheusExporter::MetricName("weird-name.1"),
            "mvtee_weird_name_1");
}

// ------------------------------------------------------ flight recorder

CheckpointEvidence MakeEvidence(uint64_t trace_id, uint64_t batch,
                                const std::string& verdict) {
  CheckpointEvidence ev;
  ev.trace_id = trace_id;
  ev.batch = batch;
  ev.stage = 0;
  ev.verdict = verdict;
  ev.v_decide_us = 1000 + static_cast<int64_t>(batch);
  VariantEvidence a{"s0.v1", true, 0xdeadbeefULL, false, 900, false};
  VariantEvidence b{"s0.v2", true, 0xfeedfaceULL, false, 950, true};
  ev.variants = {a, b};
  return ev;
}

TEST(FlightRecorderTest, BoundedRingKeepsNewest) {
  FlightRecorder recorder(4);
  for (uint64_t i = 0; i < 10; ++i) {
    recorder.Note(MakeEvidence(1, i, "accepted"));
  }
  EXPECT_EQ(recorder.total_noted(), 10u);
  auto snap = recorder.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().batch, 6u);  // oldest survivor
  EXPECT_EQ(snap.back().batch, 9u);
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.total_noted(), 0u);
}

TEST(FlightRecorderTest, DumpBundleRequiresEvidenceDir) {
  ::unsetenv("MVTEE_EVIDENCE_DIR");
  FlightRecorder recorder(4);
  auto result = recorder.DumpBundle("run-abort", 0, "no dir set");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(FlightRecorderTest, DumpBundleWritesSelfContainedJson) {
  char dir_template[] = "/tmp/mvtee-evidence-XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  ::setenv("MVTEE_EVIDENCE_DIR", dir_template, 1);

  TraceCollector collector;
  auto buf = std::make_shared<TraceBuffer>(8);
  collector.Register("monitor", buf);
  const uint64_t trace = NewTraceId();
  {
    TraceContextScope scope(trace, 0);
    ScopedSpan span("monitor/admit", {}, buf.get());
  }
  {
    TraceContextScope scope(NewTraceId(), 0);  // unrelated trace
    ScopedSpan span("monitor/other", {}, buf.get());
  }

  FlightRecorder recorder(8);
  recorder.Note(MakeEvidence(trace, 0, "accepted"));
  recorder.Note(MakeEvidence(trace, 1, "divergence"));
  const uint64_t bundles0 =
      Registry::Default().GetCounter("recorder.bundles_written").value();

  auto path = recorder.DumpBundle("vote-divergence", trace,
                                  "stage 0 batch 1: 1/2 variants dissent",
                                  &collector);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(
      Registry::Default().GetCounter("recorder.bundles_written").value(),
      bundles0 + 1);

  std::ifstream in(*path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  auto parsed = ParseJson(content.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->Find("schema")->as_string(), "mvtee-evidence-v1");
  EXPECT_EQ(parsed->Find("trigger")->as_string(), "vote-divergence");
  EXPECT_EQ(parsed->Find("trace_id")->as_string(), std::to_string(trace));
  ASSERT_NE(parsed->Find("metrics"), nullptr);

  const JsonValue* verdicts = parsed->Find("verdicts");
  ASSERT_NE(verdicts, nullptr);
  ASSERT_EQ(verdicts->as_array().size(), 2u);
  const JsonValue& bad = verdicts->as_array()[1];
  EXPECT_EQ(bad.Find("verdict")->as_string(), "divergence");
  const JsonValue::Array& variants = bad.Find("variants")->as_array();
  ASSERT_EQ(variants.size(), 2u);
  EXPECT_EQ(variants[0].Find("digest")->as_string(), "00000000deadbeef");
  EXPECT_FALSE(variants[0].Find("dissent")->as_bool());
  EXPECT_TRUE(variants[1].Find("dissent")->as_bool());

  // The embedded trace is sliced to the incident's trace id.
  const JsonValue* trace_obj = parsed->Find("trace");
  ASSERT_NE(trace_obj, nullptr);
  const JsonValue::Array& procs = trace_obj->Find("processes")->as_array();
  ASSERT_EQ(procs.size(), 1u);
  ASSERT_EQ(procs[0].Find("spans")->as_array().size(), 1u);
  EXPECT_EQ(
      procs[0].Find("spans")->as_array()[0].Find("name")->as_string(),
      "monitor/admit");

  ::unsetenv("MVTEE_EVIDENCE_DIR");
  std::remove(path->c_str());
  ::rmdir(dir_template);
}


// ------------------------------------------------------------ timeline

RequestTimeline MakeTimeline(uint64_t trace_id, uint64_t seq,
                             int64_t infer_us) {
  RequestTimeline t;
  t.trace_id = trace_id;
  t.session_id = 1;
  t.seq = seq;
  t.enqueue_wall_us = 1'000'000 + static_cast<int64_t>(seq);
  t.queue_wait_us = 10;
  t.coalesce_us = 2;
  t.infer_us = infer_us;
  t.verify_us = 5;
  t.ok = true;
  return t;
}

TEST(TimelineLogTest, SnapshotIsOldestFirstAndBounded) {
  TimelineLog log(4);
  for (uint64_t i = 0; i < 10; ++i) {
    log.Note(MakeTimeline(100 + i, i, 1000));
  }
  EXPECT_EQ(log.total_noted(), 10u);
  auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().seq, 6u);  // oldest survivor
  EXPECT_EQ(snap.back().seq, 9u);
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.total_noted(), 0u);
}

TEST(TimelineLogTest, NoteReplyPatchesNewestMatchOnly) {
  TimelineLog log(8);
  log.Note(MakeTimeline(7, 0, 1000));
  log.Note(MakeTimeline(8, 1, 1000));
  log.Note(MakeTimeline(7, 2, 1000));  // same trace id, newer entry
  log.NoteReply(7, 333);
  auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].reply_us, 0);  // older entry untouched
  EXPECT_EQ(snap[1].reply_us, 0);
  EXPECT_EQ(snap[2].reply_us, 333);
  // A trace id already evicted (or never noted) is silently dropped.
  log.NoteReply(424242, 1);
}

TEST(TimelineLogTest, SlowestKRanksByTotalTime) {
  TimelineLog log(16);
  for (uint64_t i = 0; i < 6; ++i) {
    log.Note(MakeTimeline(i, i, static_cast<int64_t>(1000 * (i + 1))));
  }
  auto slowest = log.SlowestK(3);
  ASSERT_EQ(slowest.size(), 3u);
  EXPECT_EQ(slowest[0].trace_id, 5u);
  EXPECT_EQ(slowest[1].trace_id, 4u);
  EXPECT_EQ(slowest[2].trace_id, 3u);
  // k beyond the retained count clamps.
  EXPECT_EQ(log.SlowestK(100).size(), 6u);
}

TEST(TimelineLogTest, ToJsonKeepsTraceIdExact) {
  // A trace id above 2^53 would round if serialized as a JSON number.
  RequestTimeline t = MakeTimeline(0xffffffffffffffffULL, 3, 1000);
  t.reply_us = 9;
  JsonValue json = TimelineToJson(t);
  EXPECT_EQ(json.Find("trace_id")->as_string(), "18446744073709551615");
  EXPECT_EQ(json.Find("seq")->as_number(), 3.0);
  EXPECT_EQ(json.Find("infer_us")->as_number(), 1000.0);
  EXPECT_EQ(json.Find("reply_us")->as_number(), 9.0);
  auto reparsed = ParseJson(json.Dump(2));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
}

// ------------------------------------------------------------ watchdog

TEST(WatchdogKnobTest, ResolveKnobStrictParsing) {
  auto resolve = [](const char* v) {
    return StallWatchdog::ResolveKnob("TEST_KNOB", v, 1, 60'000, 42);
  };
  EXPECT_EQ(resolve(nullptr), 42);  // unset: silent default
  EXPECT_EQ(resolve(""), 42);
  EXPECT_EQ(resolve("abc"), 42);
  EXPECT_EQ(resolve("-3"), 42);   // signs rejected
  EXPECT_EQ(resolve("+3"), 42);
  EXPECT_EQ(resolve(" 5"), 42);   // whitespace rejected
  EXPECT_EQ(resolve("4q"), 42);   // partial parse rejected
  EXPECT_EQ(resolve("3.5"), 42);
  EXPECT_EQ(resolve("0"), 42);    // below min
  EXPECT_EQ(resolve("60001"), 42);  // above max
  EXPECT_EQ(resolve("99999999999999999999999"), 42);  // overflow
  EXPECT_EQ(resolve("1"), 1);
  EXPECT_EQ(resolve("25"), 25);
  EXPECT_EQ(resolve("60000"), 60'000);
}

TEST(WatchdogKnobTest, OptionsFromEnvAppliesValidValues) {
  ::setenv("MVTEE_WATCHDOG_POLL_MS", "5", 1);
  ::setenv("MVTEE_WATCHDOG_STALL_MS", "150", 1);
  ::setenv("MVTEE_WATCHDOG_QUEUE_ALARM", "bogus", 1);  // keeps default
  ::unsetenv("MVTEE_WATCHDOG_VERIFY_ALARM");
  WatchdogOptions opts = WatchdogOptions::FromEnv();
  EXPECT_EQ(opts.poll_interval_us, 5'000);
  EXPECT_EQ(opts.stall_threshold_us, 150'000);
  EXPECT_EQ(opts.queue_depth_alarm, WatchdogOptions{}.queue_depth_alarm);
  EXPECT_EQ(opts.verify_backlog_alarm,
            WatchdogOptions{}.verify_backlog_alarm);
  ::unsetenv("MVTEE_WATCHDOG_POLL_MS");
  ::unsetenv("MVTEE_WATCHDOG_STALL_MS");
  ::unsetenv("MVTEE_WATCHDOG_QUEUE_ALARM");
}

// Evaluate() is driven with a synthetic clock: the first heartbeat
// advance re-baselines last_advance to the fake `now`, after which
// silence is measured against it.
TEST(WatchdogTest, IdleSilenceStaysHealthy) {
  Registry reg;
  WatchdogOptions opts;
  opts.stall_threshold_us = 100'000;
  FlightRecorder recorder(4);
  StallWatchdog dog(reg, opts, &recorder);
  const int64_t t0 = 1'000'000'000;
  reg.GetCounter("monitor.loop_heartbeat").Add(1);
  dog.Evaluate(t0);  // baseline
  // Way past the threshold, but queue and inflight are both 0: an idle
  // loop parked in cv.wait is healthy, not stalled.
  dog.Evaluate(t0 + 10 * opts.stall_threshold_us);
  EXPECT_TRUE(dog.health().healthy);
  EXPECT_EQ(reg.GetCounter("watchdog.stall_alarms_total").value(), 0u);
  EXPECT_EQ(reg.GetGauge("watchdog.healthy").value(), 1);
}

TEST(WatchdogTest, BusySilenceFlipsUnhealthyAndRearms) {
  Registry reg;
  WatchdogOptions opts;
  opts.stall_threshold_us = 100'000;
  FlightRecorder recorder(4);
  StallWatchdog dog(reg, opts, &recorder);
  Counter& beat = reg.GetCounter("monitor.loop_heartbeat");
  Gauge& queue = reg.GetGauge("service.admission_queue_depth");
  const int64_t t0 = 1'000'000'000;
  beat.Add(1);
  dog.Evaluate(t0);  // baseline
  queue.Set(2);
  dog.Evaluate(t0 + opts.stall_threshold_us - 1);
  EXPECT_TRUE(dog.health().healthy);  // not yet sustained
  dog.Evaluate(t0 + opts.stall_threshold_us);
  StallWatchdog::Health h = dog.health();
  EXPECT_FALSE(h.healthy);
  EXPECT_NE(h.reason.find("event loop silent"), std::string::npos);
  EXPECT_EQ(h.stall_alarms, 1u);
  EXPECT_EQ(reg.GetGauge("watchdog.healthy").value(), 0);
  // Holding the stall does not double-count the episode.
  dog.Evaluate(t0 + 2 * opts.stall_threshold_us);
  EXPECT_EQ(dog.health().stall_alarms, 1u);
  // The heartbeat advancing ends the episode...
  beat.Add(1);
  dog.Evaluate(t0 + 3 * opts.stall_threshold_us);
  EXPECT_TRUE(dog.health().healthy);
  // ...and a second sustained stall is a second episode.
  dog.Evaluate(t0 + 5 * opts.stall_threshold_us);
  EXPECT_EQ(dog.health().stall_alarms, 2u);
}

TEST(WatchdogTest, SustainedStallDumpsOneEvidenceBundle) {
  char dir_template[] = "/tmp/mvtee-watchdog-XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  ::setenv("MVTEE_EVIDENCE_DIR", dir_template, 1);

  Registry reg;
  WatchdogOptions opts;
  opts.stall_threshold_us = 100'000;
  FlightRecorder recorder(8);
  recorder.Note(MakeEvidence(1, 0, "accepted"));
  StallWatchdog dog(reg, opts, &recorder);
  Counter& beat = reg.GetCounter("monitor.loop_heartbeat");
  reg.GetGauge("service.inflight").Set(1);
  const int64_t t0 = 1'000'000'000;
  beat.Add(1);
  dog.Evaluate(t0);
  dog.Evaluate(t0 + opts.stall_threshold_us);
  Counter& bundles = reg.GetCounter("watchdog.stall_bundles_total");
  EXPECT_EQ(bundles.value(), 1u);
  // The episode dumps exactly once, however long it lasts.
  dog.Evaluate(t0 + 2 * opts.stall_threshold_us);
  dog.Evaluate(t0 + 3 * opts.stall_threshold_us);
  EXPECT_EQ(bundles.value(), 1u);
  // Recovery re-arms: the NEXT sustained stall leaves fresh evidence.
  beat.Add(1);
  dog.Evaluate(t0 + 4 * opts.stall_threshold_us);
  dog.Evaluate(t0 + 6 * opts.stall_threshold_us);
  EXPECT_EQ(bundles.value(), 2u);

  // The bundles are well-formed evidence files in the evidence dir.
  int bundle_files = 0;
  std::string dir(dir_template);
  ::DIR* d = ::opendir(dir.c_str());
  ASSERT_NE(d, nullptr);
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    ++bundle_files;
    std::ifstream in(dir + "/" + name);
    std::stringstream content;
    content << in.rdbuf();
    auto parsed = ParseJson(content.str());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Find("trigger")->as_string(), "watchdog-stall");
    std::remove((dir + "/" + name).c_str());
  }
  ::closedir(d);
  EXPECT_EQ(bundle_files, 2);
  ::unsetenv("MVTEE_EVIDENCE_DIR");
  ::rmdir(dir_template);
}

TEST(WatchdogTest, QueueAndVerifyBacklogAlarms) {
  Registry reg;
  WatchdogOptions opts;
  opts.queue_depth_alarm = 4;
  opts.verify_backlog_alarm = 8;
  FlightRecorder recorder(4);
  StallWatchdog dog(reg, opts, &recorder);
  Counter& beat = reg.GetCounter("monitor.loop_heartbeat");
  Gauge& queue = reg.GetGauge("service.admission_queue_depth");
  Gauge& verify = reg.GetGauge("monitor.verify_queue_depth");
  int64_t now = 1'000'000'000;
  auto tick = [&] {  // heartbeat keeps advancing: no stall in play
    beat.Add(1);
    dog.Evaluate(now += 1000);
  };
  tick();
  EXPECT_TRUE(dog.health().healthy);
  queue.Set(4);
  tick();
  EXPECT_FALSE(dog.health().healthy);
  EXPECT_NE(dog.health().reason.find("admission queue depth"),
            std::string::npos);
  EXPECT_EQ(reg.GetCounter("watchdog.queue_alarms_total").value(), 1u);
  tick();  // held condition: rising-edge counter does not re-fire
  EXPECT_EQ(reg.GetCounter("watchdog.queue_alarms_total").value(), 1u);
  queue.Set(0);
  verify.Set(9);
  tick();
  EXPECT_FALSE(dog.health().healthy);
  EXPECT_NE(dog.health().reason.find("verify backlog"), std::string::npos);
  EXPECT_EQ(reg.GetCounter("watchdog.verify_backlog_alarms_total").value(),
            1u);
  verify.Set(0);
  tick();
  EXPECT_TRUE(dog.health().healthy);
}

TEST(WatchdogTest, BackgroundThreadTicks) {
  Registry reg;
  WatchdogOptions opts;
  opts.poll_interval_us = 2'000;
  FlightRecorder recorder(4);
  StallWatchdog dog(reg, opts, &recorder);
  dog.Start();
  Counter& ticks = reg.GetCounter("watchdog.ticks_total");
  const int64_t give_up = util::NowMicros() + 5'000'000;
  while (ticks.value() < 3 && util::NowMicros() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  dog.Stop();
  dog.Stop();  // idempotent
  EXPECT_GE(ticks.value(), 3u);
}

// --------------------------------------- prometheus 0.0.4 conformance

TEST(PrometheusExporterTest, LabelAndHelpEscaping) {
  EXPECT_EQ(PrometheusExporter::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PrometheusExporter::EscapeLabelValue("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd");
  EXPECT_EQ(PrometheusExporter::EscapeHelpText("a\\b\nc"), "a\\\\b\\nc");
  // HELP text keeps double quotes unescaped per the 0.0.4 spec.
  EXPECT_EQ(PrometheusExporter::EscapeHelpText("say \"hi\""),
            "say \"hi\"");
}

TEST(PrometheusExporterTest, HelpAndTypePrecedeEveryMetric) {
  Registry reg;
  reg.GetCounter("a.count_total").Add(1);
  reg.GetGauge("a.depth").Set(2);
  reg.GetHistogram("a.lat_us").Observe(10);
  const std::string text = PrometheusExporter(&reg).Export();
  for (const char* name :
       {"mvtee_a_count_total", "mvtee_a_depth", "mvtee_a_lat_us"}) {
    const size_t help = text.find("# HELP " + std::string(name) + " ");
    const size_t type = text.find("# TYPE " + std::string(name) + " ");
    const size_t sample = text.find("\n" + std::string(name));
    ASSERT_NE(help, std::string::npos) << name;
    ASSERT_NE(type, std::string::npos) << name;
    ASSERT_NE(sample, std::string::npos) << name;
    EXPECT_LT(help, type) << name;
    EXPECT_LT(type, sample) << name;
  }
}

TEST(PrometheusExporterTest, CollidingSanitizedNamesEmitOnce) {
  // "q.depth" and "q_depth" both sanitize to mvtee_q_depth; emitting
  // both would duplicate the # TYPE line, which parsers reject.
  Registry reg;
  reg.GetGauge("q.depth").Set(1);
  reg.GetGauge("q_depth").Set(2);
  reg.GetCounter("other_total").Add(1);
  const std::string text = PrometheusExporter(&reg).Export();
  size_t type_lines = 0, pos = 0;
  while ((pos = text.find("# TYPE mvtee_q_depth gauge", pos)) !=
         std::string::npos) {
    ++type_lines;
    pos += 1;
  }
  EXPECT_EQ(type_lines, 1u);
  // And exactly one sample line for the name.
  size_t samples = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("mvtee_q_depth ", 0) == 0) ++samples;
  }
  EXPECT_EQ(samples, 1u);
}

// ------------------------------ histogram snapshot consistency (TSan)

TEST(HistogramTest, StatsAreSelfConsistentUnderConcurrentObserve) {
  Registry reg;
  Histogram& h = reg.GetHistogram("stress.lat_us");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop, t] {
      uint64_t x = 88172645463325252ULL + static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        h.Observe(static_cast<int64_t>(x % 100'000));
      }
    });
  }
  uint64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    HistogramStats s = h.Stats();
    // Quantiles and count come from ONE bucket-array snapshot: they
    // must be mutually ordered and inside the observed range even
    // while writers race.
    EXPECT_GE(s.count, last_count);
    last_count = s.count;
    if (s.count == 0) continue;
    EXPECT_LE(s.p50, s.p95);
    EXPECT_LE(s.p95, s.p99);
    EXPECT_GE(s.p50, 0.0);
    EXPECT_LT(s.p99, 200'000.0);  // top bucket bound for 100k samples
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  HistogramStats final = h.Stats();
  EXPECT_EQ(final.count, h.count());
  EXPECT_LE(final.p50, final.p95);
}


// ------------------------------------------- trace ids in log lines

TEST(TraceContextTest, LiveScopeStampsLogLines) {
  // obs/trace.cc wires the provider at static init: any log emitted
  // under a live TraceContextScope carries the active trace id.
  const uint64_t id = NewTraceId();
  ::testing::internal::CaptureStderr();
  {
    TraceContextScope scope(id, 0);
    MVTEE_WLOG << "inside-scope";
  }
  MVTEE_WLOG << "outside-scope";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  std::istringstream lines(captured);
  std::string line;
  bool saw_inside = false, saw_outside = false;
  while (std::getline(lines, line)) {
    if (line.find("inside-scope") != std::string::npos) {
      saw_inside = true;
      EXPECT_NE(line.find("t=" + std::to_string(id)), std::string::npos)
          << line;
    }
    if (line.find("outside-scope") != std::string::npos) {
      saw_outside = true;
      EXPECT_EQ(line.find("t="), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(saw_inside);
  EXPECT_TRUE(saw_outside);
}

}  // namespace
}  // namespace mvtee::obs
