// Tests for the observability subsystem: metrics registry (counters,
// gauges, histograms with percentile estimation), JSON snapshot
// round-trips, and trace spans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mvtee::obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(JsonTest, DumpAndParseRoundTrip) {
  JsonValue::Object obj;
  obj.emplace_back("name", std::string("hello \"world\"\n"));
  obj.emplace_back("count", static_cast<int64_t>(42));
  obj.emplace_back("ratio", 0.25);
  obj.emplace_back("flag", true);
  obj.emplace_back("nothing", JsonValue());
  JsonValue::Array arr;
  arr.push_back(JsonValue(static_cast<int64_t>(1)));
  arr.push_back(JsonValue(static_cast<int64_t>(2)));
  obj.emplace_back("items", JsonValue(std::move(arr)));
  const JsonValue value(std::move(obj));

  for (int indent : {0, 2}) {
    auto parsed = ParseJson(value.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const JsonValue::Object& o = parsed->as_object();
    ASSERT_EQ(o.size(), 6u);
    EXPECT_EQ(o[0].second.as_string(), "hello \"world\"\n");
    EXPECT_EQ(o[1].second.as_number(), 42.0);
    EXPECT_EQ(o[2].second.as_number(), 0.25);
    EXPECT_TRUE(o[3].second.as_bool());
    EXPECT_TRUE(o[4].second.is_null());
    EXPECT_EQ(o[5].second.as_array().size(), 2u);
  }
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
}

// ------------------------------------------------------------- counters

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Registry registry;
  Counter& counter = registry.GetCounter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(CounterTest, PointerStableAcrossLookups) {
  Registry registry;
  Counter* a = &registry.GetCounter("stable");
  registry.GetCounter("other");
  EXPECT_EQ(a, &registry.GetCounter("stable"));
}

TEST(GaugeTest, SetAndAdd) {
  Registry registry;
  Gauge& g = registry.GetGauge("depth");
  g.Set(5);
  g.Add(-2);
  EXPECT_EQ(g.value(), 3);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

// ------------------------------------------------------------ histogram

TEST(HistogramTest, BucketBoundsAreMonotonic) {
  for (size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_GT(Histogram::BucketBound(i), Histogram::BucketBound(i - 1))
        << "bucket " << i;
  }
  EXPECT_GE(Histogram::BucketBound(Histogram::kNumBuckets - 1),
            int64_t{3'000'000'000});
}

TEST(HistogramTest, PercentilesOnUniformSamples) {
  Histogram h;
  // 1..1000: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990. The geometric buckets
  // carry at most ~25% relative error inside one bucket.
  for (int64_t v = 1; v <= 1000; ++v) h.Observe(v);
  HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 1000u);
  EXPECT_EQ(stats.min, 1);
  EXPECT_EQ(stats.max, 1000);
  EXPECT_DOUBLE_EQ(stats.sum, 500500.0);
  EXPECT_NEAR(stats.p50, 500.0, 500.0 * 0.30);
  EXPECT_NEAR(stats.p95, 950.0, 950.0 * 0.30);
  EXPECT_NEAR(stats.p99, 990.0, 990.0 * 0.30);
  EXPECT_DOUBLE_EQ(stats.mean(), 500.5);
}

TEST(HistogramTest, PercentileClampsToObservedRange) {
  Histogram h;
  h.Observe(70);
  h.Observe(70);
  h.Observe(70);
  // All mass in one bucket: every percentile must stay inside [min,max].
  EXPECT_EQ(h.Percentile(0.0), 70.0);
  EXPECT_EQ(h.Percentile(0.5), 70.0);
  EXPECT_EQ(h.Percentile(1.0), 70.0);
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram h;
  h.Observe(-5);
  HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 1u);
  EXPECT_EQ(stats.min, 0);
  EXPECT_EQ(stats.max, 0);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.p50, 0.0);
  EXPECT_EQ(stats.mean(), 0.0);
}

TEST(HistogramTest, ConcurrentObservationsAllCounted) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(t * 100 + i % 97);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------------- registry

TEST(RegistryTest, SnapshotCapturesAllKinds) {
  Registry registry;
  registry.GetCounter("c").Add(7);
  registry.GetGauge("g").Set(-3);
  registry.GetHistogram("h").Observe(100);

  RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("c"), 7u);
  EXPECT_EQ(snap.gauges.at("g"), -3);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
}

TEST(RegistryTest, ResetZeroesButKeepsRegistrations) {
  Registry registry;
  Counter* c = &registry.GetCounter("c");
  c->Add(5);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(&registry.GetCounter("c"), c);
}

TEST(RegistrySnapshotTest, JsonRoundTrip) {
  Registry registry;
  registry.GetCounter("monitor.bytes_sent").Add(4096);
  registry.GetGauge("queue.depth").Set(12);
  Histogram& h = registry.GetHistogram("monitor.stage0.verify_us");
  for (int64_t v : {10, 20, 30, 40, 50}) h.Observe(v);

  RegistrySnapshot snap = registry.Snapshot();
  auto parsed = RegistrySnapshot::FromJson(snap.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->counters, snap.counters);
  EXPECT_EQ(parsed->gauges, snap.gauges);
  ASSERT_EQ(parsed->histograms.size(), 1u);
  const HistogramStats& a = parsed->histograms.at("monitor.stage0.verify_us");
  const HistogramStats& b = snap.histograms.at("monitor.stage0.verify_us");
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
}

TEST(RegistrySnapshotTest, CompactJsonAlsoParses) {
  Registry registry;
  registry.GetCounter("a.b").Add(1);
  registry.GetHistogram("c.d").Observe(5);
  auto parsed = RegistrySnapshot::FromJson(registry.Snapshot().ToJson(0));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->counters.at("a.b"), 1u);
}

TEST(RegistrySnapshotTest, DeltaSinceSubtractsCounters) {
  Registry registry;
  Counter& c = registry.GetCounter("events");
  Histogram& h = registry.GetHistogram("lat_us");
  c.Add(10);
  h.Observe(100);
  RegistrySnapshot base = registry.Snapshot();
  c.Add(5);
  h.Observe(200);
  RegistrySnapshot delta = registry.Snapshot().DeltaSince(base);
  EXPECT_EQ(delta.counters.at("events"), 5u);
  EXPECT_EQ(delta.histograms.at("lat_us").count, 1u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("lat_us").sum, 200.0);
}

// ---------------------------------------------------------------- spans

TEST(TraceTest, SpanNestingDepthsAreRecorded) {
  TraceBuffer buffer(16);
  {
    ScopedSpan outer("a/outer", {}, &buffer);
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);
    {
      ScopedSpan inner("a/inner", {.stage = 1, .batch = 7, .tag = "x"},
                       &buffer);
      EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
      {
        ScopedSpan innermost("a/innermost", {}, &buffer);
        EXPECT_EQ(ScopedSpan::CurrentDepth(), 2);
      }
      EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
    }
  }
  EXPECT_EQ(ScopedSpan::CurrentDepth(), -1);

  // Spans complete innermost-first.
  auto spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "a/innermost");
  EXPECT_EQ(spans[0].depth, 2);
  EXPECT_EQ(spans[1].name, "a/inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].stage, 1);
  EXPECT_EQ(spans[1].batch, 7);
  EXPECT_EQ(spans[1].tag, "x");
  EXPECT_EQ(spans[2].name, "a/outer");
  EXPECT_EQ(spans[2].depth, 0);
}

TEST(TraceTest, SpanFeedsHistogram) {
  TraceBuffer buffer(4);
  Histogram h;
  { ScopedSpan span("timed", {}, &buffer, &h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(TraceTest, RingBufferKeepsNewestSpans) {
  TraceBuffer buffer(4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("span" + std::to_string(i), {}, &buffer);
  }
  EXPECT_EQ(buffer.total_recorded(), 10u);
  auto spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first among the surviving (newest) four.
  EXPECT_EQ(spans[0].name, "span6");
  EXPECT_EQ(spans[3].name, "span9");
}

TEST(TraceTest, ToJsonIsParseable) {
  TraceBuffer buffer(4);
  { ScopedSpan span("x/y", {.stage = 2, .batch = 3, .tag = "v"}, &buffer); }
  auto parsed = ParseJson(buffer.ToJson());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->as_array().size(), 1u);
}

}  // namespace
}  // namespace mvtee::obs
