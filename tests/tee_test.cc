#include <gtest/gtest.h>

#include "tee/enclave.h"
#include "tee/manifest.h"
#include "tee/sealed_fs.h"

namespace mvtee::tee {
namespace {

using util::Bytes;
using util::StatusCode;
using util::ToBytes;

// ---------------------------------------------------------------- manifest

TEST(ManifestTest, SerializeRoundTrip) {
  Manifest m = InitVariantManifest();
  m.trusted_files["init.bin"] = crypto::Sha256::Hash(ToBytes("init code"));
  m.encrypted_files.insert("variant.graph");
  m.allowed_env.insert("MVTEE_STAGE");
  auto back = Manifest::Deserialize(m.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->entrypoint, m.entrypoint);
  EXPECT_EQ(back->trusted_files, m.trusted_files);
  EXPECT_EQ(back->encrypted_files, m.encrypted_files);
  EXPECT_EQ(back->allowed_syscalls, m.allowed_syscalls);
  EXPECT_EQ(back->allowed_env, m.allowed_env);
  EXPECT_EQ(back->two_stage_enabled, m.two_stage_enabled);
  EXPECT_EQ(back->Hash(), m.Hash());
}

TEST(ManifestTest, HashChangesWithContent) {
  Manifest a = MonitorManifest();
  Manifest b = a;
  b.allowed_syscalls.insert("exec");
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(ManifestTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Manifest::Deserialize({}).ok());
  Bytes junk(64, 0x5a);
  EXPECT_FALSE(Manifest::Deserialize(junk).ok());
}

TEST(ManifestTest, FactoriesHaveDistinctSurfaces) {
  EXPECT_TRUE(InitVariantManifest().two_stage_enabled);
  EXPECT_FALSE(MonitorManifest().two_stage_enabled);
  EXPECT_TRUE(InitVariantManifest().SyscallAllowed("exec"));
  EXPECT_FALSE(MonitorManifest().SyscallAllowed("exec"));
  EXPECT_FALSE(MainVariantManifest().SyscallAllowed("pf_install_key"));
  EXPECT_TRUE(MainVariantManifest().exec_from_encrypted_only);
}

// ---------------------------------------------------------------- enclave

class EnclaveTest : public ::testing::Test {
 protected:
  SimulatedCpu cpu_{SimulatedCpu::Options{.hardware_key_seed = 42}};
};

TEST_F(EnclaveTest, MeasuredLaunch) {
  auto e1 = cpu_.LaunchEnclave(TeeType::kSgx2, ToBytes("code-v1"),
                               InitVariantManifest(), 100);
  auto e2 = cpu_.LaunchEnclave(TeeType::kSgx2, ToBytes("code-v1"),
                               InitVariantManifest(), 100);
  auto e3 = cpu_.LaunchEnclave(TeeType::kSgx2, ToBytes("code-v2"),
                               InitVariantManifest(), 100);
  ASSERT_TRUE(e1.ok() && e2.ok() && e3.ok());
  EXPECT_EQ((*e1)->measurement(), (*e2)->measurement());
  EXPECT_NE((*e1)->measurement(), (*e3)->measurement());
  EXPECT_NE((*e1)->id(), (*e2)->id());
}

TEST_F(EnclaveTest, ManifestChangesMeasurement) {
  Manifest m1 = InitVariantManifest();
  Manifest m2 = m1;
  m2.allowed_syscalls.insert("evil_syscall");
  auto e1 = cpu_.LaunchEnclave(TeeType::kSgx2, ToBytes("code"), m1, 10);
  auto e2 = cpu_.LaunchEnclave(TeeType::kSgx2, ToBytes("code"), m2, 10);
  ASSERT_TRUE(e1.ok() && e2.ok());
  EXPECT_NE((*e1)->measurement(), (*e2)->measurement());
}

TEST_F(EnclaveTest, ReportSignAndVerify) {
  auto e = cpu_.LaunchEnclave(TeeType::kSgx2, ToBytes("code"),
                              MonitorManifest(), 10);
  ASSERT_TRUE(e.ok());
  std::array<uint8_t, kReportDataSize> data{};
  data[0] = 0xaa;
  auto report = (*e)->CreateReport(data);
  EXPECT_TRUE(cpu_.VerifyReport(report).ok());

  // Any field tamper breaks the MAC.
  auto tampered = report;
  tampered.measurement[0] ^= 1;
  EXPECT_EQ(cpu_.VerifyReport(tampered).code(),
            StatusCode::kAttestationFailure);
  tampered = report;
  tampered.report_data[5] ^= 1;
  EXPECT_FALSE(cpu_.VerifyReport(tampered).ok());
  tampered = report;
  tampered.enclave_id += 1;
  EXPECT_FALSE(cpu_.VerifyReport(tampered).ok());
}

TEST_F(EnclaveTest, ForgedReportFromOtherPlatformRejected) {
  SimulatedCpu other{SimulatedCpu::Options{.hardware_key_seed = 43}};
  auto e = other.LaunchEnclave(TeeType::kSgx2, ToBytes("code"),
                               MonitorManifest(), 10);
  ASSERT_TRUE(e.ok());
  auto report = (*e)->CreateReport({});
  EXPECT_FALSE(cpu_.VerifyReport(report).ok());
}

TEST_F(EnclaveTest, ReportSerializeRoundTrip) {
  auto e = cpu_.LaunchEnclave(TeeType::kTdx, ToBytes("code"),
                              MonitorManifest(), 10);
  ASSERT_TRUE(e.ok());
  std::array<uint8_t, kReportDataSize> data{};
  data[63] = 7;
  auto report = (*e)->CreateReport(data);
  auto back = AttestationReport::Deserialize(report.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->enclave_id, report.enclave_id);
  EXPECT_EQ(back->tee_type, TeeType::kTdx);
  EXPECT_EQ(back->measurement, report.measurement);
  EXPECT_EQ(back->report_data, report.report_data);
  EXPECT_TRUE(cpu_.VerifyReport(*back).ok());
}

TEST_F(EnclaveTest, EpcAccounting) {
  SimulatedCpu cpu{SimulatedCpu::Options{.total_epc_pages = 100,
                                         .hardware_key_seed = 1}};
  auto e1 = cpu.LaunchEnclave(TeeType::kSgx2, ToBytes("a"),
                              MonitorManifest(), 60);
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(cpu.used_epc_pages(), 60u);
  auto e2 = cpu.LaunchEnclave(TeeType::kSgx2, ToBytes("b"),
                              MonitorManifest(), 60);
  EXPECT_FALSE(e2.ok());  // would exceed total
  EXPECT_EQ(e2.status().code(), StatusCode::kUnavailable);
  cpu.ReleaseEnclave(**e1);
  EXPECT_EQ(cpu.used_epc_pages(), 0u);
  auto e3 = cpu.LaunchEnclave(TeeType::kSgx2, ToBytes("b"),
                              MonitorManifest(), 60);
  EXPECT_TRUE(e3.ok());
}

TEST_F(EnclaveTest, Sgx1SizeCap) {
  auto big = cpu_.LaunchEnclave(TeeType::kSgx1, ToBytes("big"),
                                MonitorManifest(), 1u << 20);
  EXPECT_FALSE(big.ok());
  auto small = cpu_.LaunchEnclave(TeeType::kSgx1, ToBytes("small"),
                                  MonitorManifest(), 1024);
  EXPECT_TRUE(small.ok());
}

TEST_F(EnclaveTest, SyscallFiltering) {
  auto e = cpu_.LaunchEnclave(TeeType::kSgx2, ToBytes("code"),
                              MonitorManifest(), 10);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->CheckSyscall("read").ok());
  EXPECT_EQ((*e)->CheckSyscall("exec").code(), StatusCode::kPermissionDenied);
  EXPECT_FALSE((*e)->CheckSyscall("ptrace").ok());
}

TEST_F(EnclaveTest, TrustedFileVerification) {
  Manifest m = InitVariantManifest();
  Bytes contents = ToBytes("the init-variant binary");
  m.trusted_files["init.bin"] = crypto::Sha256::Hash(contents);
  auto e = cpu_.LaunchEnclave(TeeType::kSgx2, ToBytes("code"), m, 10);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->VerifyTrustedFile("init.bin", contents).ok());
  // Tampered file.
  Bytes tampered = contents;
  tampered[0] ^= 1;
  EXPECT_EQ((*e)->VerifyTrustedFile("init.bin", tampered).code(),
            StatusCode::kDataLoss);
  // Unknown file.
  EXPECT_EQ((*e)->VerifyTrustedFile("other.bin", contents).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(EnclaveTest, TwoStageLifecycle) {
  auto e = cpu_.LaunchEnclave(TeeType::kSgx2, ToBytes("init"),
                              InitVariantManifest(), 10);
  ASSERT_TRUE(e.ok());
  Enclave& enclave = **e;
  EXPECT_EQ(enclave.stage(), Enclave::Stage::kInit);

  // Install PF key (allowed in init stage).
  EXPECT_TRUE(enclave.InstallProtectedFsKey(Bytes(32, 0x77)).ok());

  // exec() before second-stage install fails (two-stage enabled).
  EXPECT_EQ(enclave.Exec().code(), StatusCode::kFailedPrecondition);

  Manifest second = MainVariantManifest();
  EXPECT_TRUE(enclave.InstallSecondStageManifest(second).ok());
  // One-time: a second install is rejected.
  EXPECT_EQ(enclave.InstallSecondStageManifest(second).code(),
            StatusCode::kPermissionDenied);

  // Transition.
  EXPECT_TRUE(enclave.Exec().ok());
  EXPECT_EQ(enclave.stage(), Enclave::Stage::kMain);
  // Second-stage manifest now governs: exec and installs are blocked.
  EXPECT_FALSE(enclave.Exec().ok());
  EXPECT_FALSE(enclave.InstallSecondStageManifest(second).ok());
  EXPECT_EQ(enclave.InstallProtectedFsKey(Bytes(32, 1)).code(),
            StatusCode::kPermissionDenied);
  // Key survives the transition for the encrypted FS.
  ASSERT_TRUE(enclave.protected_fs_key().has_value());
  EXPECT_EQ((*enclave.protected_fs_key())[0], 0x77);
  // The stricter syscall surface is active.
  EXPECT_FALSE(enclave.CheckSyscall("pf_install_key").ok());
  EXPECT_TRUE(enclave.CheckSyscall("read").ok());
}

TEST_F(EnclaveTest, TwoStageRequiresBootFlag) {
  auto e = cpu_.LaunchEnclave(TeeType::kSgx2, ToBytes("mon"),
                              MonitorManifest(), 10);
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE((*e)->InstallSecondStageManifest(MainVariantManifest()).ok());
}

// --------------------------------------------------------------- sealed fs

TEST(SealedFsTest, PutGetRoundTrip) {
  ProtectedStore store;
  Bytes key(32, 0x11);
  ASSERT_TRUE(store.Put("model.graph", ToBytes("weights..."), key).ok());
  auto got = store.Get("model.graph", key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, ToBytes("weights..."));
}

TEST(SealedFsTest, WrongKeyRejected) {
  ProtectedStore store;
  Bytes key(32, 0x11), wrong(32, 0x12);
  ASSERT_TRUE(store.Put("f", ToBytes("secret"), key).ok());
  EXPECT_EQ(store.Get("f", wrong).status().code(),
            StatusCode::kAuthenticationFailure);
}

TEST(SealedFsTest, MissingFile) {
  ProtectedStore store;
  Bytes key(32, 0x11);
  EXPECT_EQ(store.Get("nope", key).status().code(), StatusCode::kNotFound);
}

TEST(SealedFsTest, TamperDetected) {
  ProtectedStore store;
  Bytes key(32, 0x11);
  ASSERT_TRUE(store.Put("f", ToBytes("integrity matters"), key).ok());
  ASSERT_TRUE(store.TamperCiphertext("f", 3));
  EXPECT_EQ(store.Get("f", key).status().code(),
            StatusCode::kAuthenticationFailure);
}

TEST(SealedFsTest, VersionsUseDistinctKeys) {
  ProtectedStore store;
  Bytes key(32, 0x11);
  ASSERT_TRUE(store.Put("f", ToBytes("v1"), key).ok());
  auto snapshot_v1 = store.Snapshot("f");
  ASSERT_TRUE(snapshot_v1.has_value());
  ASSERT_TRUE(store.Put("f", ToBytes("v2"), key).ok());
  auto got = store.Get("f", key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, ToBytes("v2"));
}

TEST(SealedFsTest, RollbackDetectedWithLedger) {
  ProtectedStore store;
  FreshnessLedger ledger;
  Bytes key(32, 0x11);
  ASSERT_TRUE(store.Put("f", ToBytes("v1"), key).ok());
  ASSERT_TRUE(store.Get("f", key, &ledger).ok());  // records v1
  auto old = store.Snapshot("f");
  ASSERT_TRUE(old.has_value());
  ASSERT_TRUE(store.Put("f", ToBytes("v2"), key).ok());
  ASSERT_TRUE(store.Get("f", key, &ledger).ok());  // records v2
  // Host rolls the file back to v1.
  ASSERT_TRUE(store.Restore("f", *old));
  auto got = store.Get("f", key, &ledger);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kReplayDetected);
  // Without a ledger the rollback is NOT caught (the paper's stated
  // limitation absent monotonic counters).
  EXPECT_TRUE(store.Get("f", key).ok());
}

TEST(SealedFsTest, SameVersionSubstitutionDetected) {
  // Two stores, same path+version, different content: swapping entries
  // between them must be caught by the ledger (and by the key if keys
  // differ).
  ProtectedStore store;
  FreshnessLedger ledger;
  Bytes key(32, 0x11);
  ASSERT_TRUE(store.Put("f", ToBytes("genuine"), key).ok());
  ASSERT_TRUE(store.Get("f", key, &ledger).ok());

  ProtectedStore other;
  ASSERT_TRUE(other.Put("f", ToBytes("malicious"), key).ok());
  auto foreign = other.Snapshot("f");
  ASSERT_TRUE(foreign.has_value());
  ASSERT_TRUE(store.Restore("f", *foreign));
  EXPECT_EQ(store.Get("f", key, &ledger).status().code(),
            StatusCode::kReplayDetected);
}

TEST(SealedFsTest, DerivedKeysDifferPerVariant) {
  Bytes master(32, 0x42);
  auto k1 = DeriveVariantFileKey(master, "variant-1");
  auto k2 = DeriveVariantFileKey(master, "variant-2");
  EXPECT_NE(k1, k2);
  EXPECT_EQ(k1.size(), 32u);
  EXPECT_EQ(k1, DeriveVariantFileKey(master, "variant-1"));
}

TEST(SealedFsTest, AadBindsPath) {
  // Copying ciphertext from one path to another must fail even with the
  // right key, because the path is bound as AAD.
  ProtectedStore store;
  Bytes key(32, 0x11);
  ASSERT_TRUE(store.Put("a", ToBytes("for path a"), key).ok());
  ASSERT_TRUE(store.Put("b", ToBytes("for path b"), key).ok());
  auto a_entry = store.Snapshot("a");
  ASSERT_TRUE(a_entry.has_value());
  ASSERT_TRUE(store.Restore("b", *a_entry));
  EXPECT_FALSE(store.Get("b", key).ok());
}

}  // namespace
}  // namespace mvtee::tee
