#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/model_zoo.h"
#include "partition/partition.h"
#include "runtime/executor.h"
#include "variant/spec.h"
#include "variant/transforms.h"

namespace mvtee::variant {
namespace {

using graph::Graph;
using graph::ModelBuilder;
using graph::NodeId;
using graph::OpType;
using tensor::CosineSimilarity;
using tensor::MaxAbsDiff;
using tensor::Shape;
using tensor::Tensor;

Graph TestNet(uint64_t seed = 5) {
  ModelBuilder b(seed);
  NodeId x = b.Input("img", Shape({1, 3, 16, 16}));
  x = b.ConvBnRelu(x, 8, 3, 1, 1);
  NodeId left = b.ConvBnRelu(x, 8, 3, 1, 1);
  x = b.Relu(b.Add(left, x));
  x = b.ConvBnRelu(x, 16, 3, 2, 1);
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Gemm(x, 10);
  b.MarkOutput(x);
  return b.Build();
}

Tensor RunGraph(const Graph& g, const Tensor& input,
                runtime::ExecutorConfig cfg = runtime::ReferenceExecutorConfig()) {
  auto exec = runtime::Executor::Create(g, cfg);
  MVTEE_CHECK(exec.ok());
  auto out = (*exec)->Run({input});
  MVTEE_CHECK(out.ok());
  return (*out)[0];
}

class TransformEquivalenceTest
    : public ::testing::TestWithParam<GraphTransform> {};

TEST_P(TransformEquivalenceTest, PreservesOutputs) {
  Graph g = TestNet();
  util::Rng rng(1);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  Tensor expected = RunGraph(g, input);

  for (uint64_t seed = 0; seed < 4; ++seed) {
    auto transformed = ApplyGraphTransform(g, GetParam(), seed);
    ASSERT_TRUE(transformed.ok()) << transformed.status().ToString();
    Tensor actual = RunGraph(*transformed, input);
    EXPECT_LT(MaxAbsDiff(expected, actual), 1e-3)
        << GraphTransformName(GetParam()) << " seed " << seed;
    EXPECT_GT(CosineSimilarity(expected, actual), 0.99999);
  }
}

TEST_P(TransformEquivalenceTest, TransformedGraphValidates) {
  Graph g = TestNet();
  auto transformed = ApplyGraphTransform(g, GetParam(), 3);
  ASSERT_TRUE(transformed.ok());
  EXPECT_TRUE(transformed->Validate().ok());
  EXPECT_TRUE(transformed->InferShapes().ok());
  // And survives serialization.
  auto round = Graph::Deserialize(transformed->Serialize());
  EXPECT_TRUE(round.ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllTransforms, TransformEquivalenceTest,
    ::testing::Values(GraphTransform::kInsertDummyOps,
                      GraphTransform::kSplitConv,
                      GraphTransform::kShuffleChannels,
                      GraphTransform::kReorderCommutative,
                      GraphTransform::kSelectiveBnFold),
    [](const auto& info) {
      std::string name(GraphTransformName(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(TransformTest, DummyOpsAddNodes) {
  Graph g = TestNet();
  auto transformed =
      ApplyGraphTransform(g, GraphTransform::kInsertDummyOps, 7, 3);
  ASSERT_TRUE(transformed.ok());
  EXPECT_EQ(transformed->num_nodes(), g.num_nodes() + 3);
}

TEST(TransformTest, SplitConvAddsConcat) {
  Graph g = TestNet();
  auto transformed = ApplyGraphTransform(g, GraphTransform::kSplitConv, 7, 2);
  ASSERT_TRUE(transformed.ok());
  int concats_before = 0, concats_after = 0;
  for (const auto& n : g.nodes()) {
    if (n.op == OpType::kConcat) ++concats_before;
  }
  for (const auto& n : transformed->nodes()) {
    if (n.op == OpType::kConcat) ++concats_after;
  }
  EXPECT_EQ(concats_after, concats_before + 2);
}

TEST(TransformTest, ShuffleChannelsChangesWeightsNotStructure) {
  Graph g = TestNet();
  auto transformed =
      ApplyGraphTransform(g, GraphTransform::kShuffleChannels, 7, 2);
  ASSERT_TRUE(transformed.ok());
  EXPECT_EQ(transformed->num_nodes(), g.num_nodes());
  bool any_weight_changed = false;
  for (const auto& [name, t] : g.initializers()) {
    const Tensor* other = transformed->FindInitializer(name);
    ASSERT_NE(other, nullptr);
    if (!(*other == t)) any_weight_changed = true;
  }
  EXPECT_TRUE(any_weight_changed);
}

TEST(TransformTest, ReorderSwapsAddInputs) {
  Graph g = TestNet();
  auto transformed =
      ApplyGraphTransform(g, GraphTransform::kReorderCommutative, 7, 8);
  ASSERT_TRUE(transformed.ok());
  bool any_swapped = false;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (g.node(id).op == OpType::kAdd &&
        g.node(id).inputs != transformed->node(id).inputs) {
      any_swapped = true;
    }
  }
  EXPECT_TRUE(any_swapped);
}

TEST(TransformTest, SelectiveFoldRemovesSomeBatchNorms) {
  Graph g = TestNet();
  auto transformed =
      ApplyGraphTransform(g, GraphTransform::kSelectiveBnFold, 7, 2);
  ASSERT_TRUE(transformed.ok());
  int bn_before = 0, bn_after = 0;
  for (const auto& n : g.nodes()) {
    if (n.op == OpType::kBatchNorm) ++bn_before;
  }
  for (const auto& n : transformed->nodes()) {
    if (n.op == OpType::kBatchNorm) ++bn_after;
  }
  EXPECT_EQ(bn_after, bn_before - 2);
}

TEST(TransformTest, ConvToFcEquivalentOnSqueezeExcite) {
  // SE blocks contain exactly the 1x1-conv-over-[N,C,1,1] pattern the
  // conv->FC replacement targets.
  graph::ModelBuilder b(21);
  NodeId x = b.Input("img", Shape({2, 3, 8, 8}));
  x = b.ConvBnRelu(x, 8, 3, 1, 1);
  x = b.SqueezeExcite(x);
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Gemm(x, 5);
  b.MarkOutput(x);
  Graph g = b.Build();

  EXPECT_GE(CountApplicableSites(g, GraphTransform::kConvToFc), 2);
  util::Rng rng(3);
  auto input = Tensor::RandomUniform(Shape({2, 3, 8, 8}), rng);
  Tensor expected = RunGraph(g, input);
  for (uint64_t seed = 0; seed < 3; ++seed) {
    auto transformed =
        ApplyGraphTransform(g, GraphTransform::kConvToFc, seed, 2);
    ASSERT_TRUE(transformed.ok()) << transformed.status().ToString();
    // Structure changed: Gemm + Reshape nodes appear.
    int gemms = 0, reshapes = 0;
    for (const auto& n : transformed->nodes()) {
      if (n.op == OpType::kGemm) ++gemms;
      if (n.op == OpType::kReshape) ++reshapes;
    }
    EXPECT_GE(gemms, 2);     // original classifier Gemm + converted conv
    EXPECT_GE(reshapes, 2);  // in/out reshapes
    Tensor actual = RunGraph(*transformed, input);
    EXPECT_LT(MaxAbsDiff(expected, actual), 1e-4);
    // Survives serialization (Reshape round-trips).
    auto round = Graph::Deserialize(transformed->Serialize());
    ASSERT_TRUE(round.ok());
  }
}

TEST(TransformTest, ConvToFcNoSitesIsIdentity) {
  Graph g = TestNet();  // no [N,C,1,1] 1x1 convs before GAP
  int sites = CountApplicableSites(g, GraphTransform::kConvToFc);
  auto transformed = ApplyGraphTransform(g, GraphTransform::kConvToFc, 1);
  ASSERT_TRUE(transformed.ok());
  if (sites == 0) {
    EXPECT_EQ(transformed->num_nodes(), g.num_nodes());
  }
}

TEST(TransformTest, CountApplicableSites) {
  Graph g = TestNet();
  EXPECT_EQ(CountApplicableSites(g, GraphTransform::kInsertDummyOps),
            static_cast<int>(g.num_nodes()));
  EXPECT_GE(CountApplicableSites(g, GraphTransform::kSplitConv), 3);
  EXPECT_GE(CountApplicableSites(g, GraphTransform::kShuffleChannels), 1);
  EXPECT_EQ(CountApplicableSites(g, GraphTransform::kReorderCommutative), 1);
  EXPECT_GE(CountApplicableSites(g, GraphTransform::kSelectiveBnFold), 3);
}

TEST(TransformTest, RejectsBadMaxSites) {
  Graph g = TestNet();
  EXPECT_FALSE(
      ApplyGraphTransform(g, GraphTransform::kInsertDummyOps, 1, 0).ok());
}

TEST(TransformTest, ComposedTransformsStillEquivalent) {
  Graph g = TestNet();
  util::Rng rng(2);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  Tensor expected = RunGraph(g, input);

  VariantSpec spec;
  spec.id = "composed";
  spec.graph_transforms = {
      GraphTransform::kShuffleChannels, GraphTransform::kInsertDummyOps,
      GraphTransform::kSplitConv, GraphTransform::kReorderCommutative,
      GraphTransform::kSelectiveBnFold};
  spec.transform_seed = 17;
  auto vgraph = BuildVariantGraph(g, spec);
  ASSERT_TRUE(vgraph.ok()) << vgraph.status().ToString();
  Tensor actual = RunGraph(*vgraph, input);
  EXPECT_GT(CosineSimilarity(expected, actual), 0.99999);
}

// ----------------------------------------------------------------- specs

TEST(VariantSpecTest, SerializeRoundTrip) {
  VariantSpec spec;
  spec.id = "stage2.tvm-shuffled.v1";
  spec.graph_transforms = {GraphTransform::kShuffleChannels,
                           GraphTransform::kInsertDummyOps};
  spec.transform_seed = 12345;
  spec.transform_sites = 6;
  spec.exec_config = runtime::TvmLikeExecutorConfig();
  spec.exec_config.slowdown_factor = 1.75;

  auto back = VariantSpec::Deserialize(spec.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, spec.id);
  EXPECT_EQ(back->graph_transforms, spec.graph_transforms);
  EXPECT_EQ(back->transform_seed, spec.transform_seed);
  EXPECT_EQ(back->transform_sites, spec.transform_sites);
  EXPECT_EQ(back->exec_config.name, spec.exec_config.name);
  EXPECT_EQ(back->exec_config.gemm, spec.exec_config.gemm);
  EXPECT_EQ(back->exec_config.conv_algo, spec.exec_config.conv_algo);
  EXPECT_EQ(back->exec_config.slowdown_factor, 1.75);
}

TEST(VariantSpecTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(VariantSpec::Deserialize({}).ok());
  util::Bytes junk(32, 0xee);
  EXPECT_FALSE(VariantSpec::Deserialize(junk).ok());
}

TEST(VariantSpecTest, VerifyEquivalenceDetectsBrokenVariant) {
  Graph g = TestNet();
  VariantSpec spec;
  spec.id = "broken";
  spec.exec_config = runtime::OrtLikeExecutorConfig();
  Graph broken = g;
  // Corrupt a weight severely.
  for (auto& [name, t] : *const_cast<std::map<std::string, Tensor>*>(
           &broken.initializers())) {
    if (name.find("fc") != std::string::npos && name.ends_with(".w")) {
      for (int64_t i = 0; i < t.num_elements(); ++i) t.data()[i] = -t.at(i);
    }
  }
  auto equivalent = VerifyVariantEquivalence(g, broken, spec, 1);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_FALSE(*equivalent);
}

// ------------------------------------------------------------------ pool

TEST(VariantPoolTest, BuildsDiversifiedPool) {
  Graph g = TestNet();
  partition::PartitionOptions popts;
  popts.target_partitions = 3;
  popts.seed = 7;
  auto set = partition::RandomContraction(g, popts);
  ASSERT_TRUE(set.ok());
  auto pm = partition::BuildPartitionedModel(g, *set);
  ASSERT_TRUE(pm.ok());

  PoolConfig cfg;
  cfg.variants_per_stage = 3;
  cfg.seed = 11;
  auto pools = BuildVariantPool(*pm, cfg);
  ASSERT_TRUE(pools.ok()) << pools.status().ToString();
  ASSERT_EQ(pools->size(), 3u);
  for (const auto& pool : *pools) {
    EXPECT_EQ(pool.variants.size(), 3u);
    // Distinct runtime configs across first three recipes.
    EXPECT_NE(pool.variants[0].spec.exec_config.name,
              pool.variants[1].spec.exec_config.name);
  }
}

TEST(VariantPoolTest, ReplicatedPoolIsUniform) {
  Graph g = TestNet();
  partition::PartitionOptions popts;
  popts.target_partitions = 2;
  popts.seed = 7;
  auto set = partition::RandomContraction(g, popts);
  ASSERT_TRUE(set.ok());
  auto pm = partition::BuildPartitionedModel(g, *set);
  ASSERT_TRUE(pm.ok());

  PoolConfig cfg;
  cfg.variants_per_stage = 3;
  cfg.replicated = true;
  auto pools = BuildVariantPool(*pm, cfg);
  ASSERT_TRUE(pools.ok());
  for (const auto& pool : *pools) {
    for (const auto& v : pool.variants) {
      EXPECT_TRUE(v.spec.graph_transforms.empty());
      EXPECT_EQ(v.spec.exec_config.name, "ort");
    }
    // Replicated graphs are bit-identical.
    EXPECT_EQ(pool.variants[0].graph.Serialize(),
              pool.variants[1].graph.Serialize());
  }
}

TEST(VariantPoolTest, SlowVariantAppended) {
  Graph g = TestNet();
  partition::PartitionOptions popts;
  popts.target_partitions = 2;
  popts.seed = 3;
  auto set = partition::RandomContraction(g, popts);
  ASSERT_TRUE(set.ok());
  auto pm = partition::BuildPartitionedModel(g, *set);
  ASSERT_TRUE(pm.ok());

  PoolConfig cfg;
  cfg.variants_per_stage = 2;
  cfg.include_slow_variant = true;
  cfg.slow_variant_factor = 2.5;
  auto pools = BuildVariantPool(*pm, cfg);
  ASSERT_TRUE(pools.ok()) << pools.status().ToString();
  for (const auto& pool : *pools) {
    ASSERT_EQ(pool.variants.size(), 3u);
    const auto& slow = pool.variants.back();
    EXPECT_NE(slow.spec.id.find("slow"), std::string::npos);
    EXPECT_EQ(slow.spec.exec_config.slowdown_factor, 2.5);
  }
}

TEST(VariantPoolTest, PoolVariantsProduceConsistentStageOutputs) {
  // Every variant of a stage must produce outputs consistent with the
  // base stage graph — this is the property checkpoint verification
  // relies on.
  Graph g = TestNet();
  partition::PartitionOptions popts;
  popts.target_partitions = 2;
  popts.seed = 19;
  auto set = partition::RandomContraction(g, popts);
  ASSERT_TRUE(set.ok());
  auto pm = partition::BuildPartitionedModel(g, *set);
  ASSERT_TRUE(pm.ok());

  PoolConfig cfg;
  cfg.variants_per_stage = 5;  // all recipes
  cfg.seed = 23;
  auto pools = BuildVariantPool(*pm, cfg);
  ASSERT_TRUE(pools.ok()) << pools.status().ToString();

  // Feed stage 0 with a random input and compare all variants pairwise.
  const auto& stage0 = pm->stages[0];
  util::Rng rng(29);
  std::vector<Tensor> inputs;
  for (auto in : stage0.inputs()) {
    inputs.push_back(Tensor::RandomUniform(stage0.input_shape(in), rng));
  }
  std::vector<std::vector<Tensor>> all_outputs;
  for (const auto& v : (*pools)[0].variants) {
    auto exec = runtime::Executor::Create(v.graph, v.spec.exec_config);
    ASSERT_TRUE(exec.ok());
    auto out = (*exec)->Run(inputs);
    ASSERT_TRUE(out.ok()) << v.spec.id;
    all_outputs.push_back(std::move(*out));
  }
  for (size_t i = 1; i < all_outputs.size(); ++i) {
    ASSERT_EQ(all_outputs[i].size(), all_outputs[0].size());
    for (size_t k = 0; k < all_outputs[0].size(); ++k) {
      EXPECT_GT(CosineSimilarity(all_outputs[0][k], all_outputs[i][k]),
                0.9999);
    }
  }
}

TEST(VariantPoolTest, WorksOnZooModelPartitions) {
  graph::ZooConfig zcfg;
  zcfg.input_hw = 32;
  zcfg.depth_mult = 0.34;
  Graph g = graph::BuildModel(graph::ModelKind::kResNet50, zcfg);
  partition::PartitionOptions popts;
  popts.target_partitions = 5;
  popts.seed = 2;
  auto set = partition::RandomContraction(g, popts);
  ASSERT_TRUE(set.ok());
  auto pm = partition::BuildPartitionedModel(g, *set);
  ASSERT_TRUE(pm.ok());
  PoolConfig cfg;
  cfg.variants_per_stage = 3;
  auto pools = BuildVariantPool(*pm, cfg);
  ASSERT_TRUE(pools.ok()) << pools.status().ToString();
  EXPECT_EQ(pools->size(), 5u);
}

}  // namespace
}  // namespace mvtee::variant
