#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "graph/builder.h"
#include "graph/model_zoo.h"
#include "partition/partition.h"
#include "runtime/executor.h"

namespace mvtee::partition {
namespace {

using graph::Graph;
using graph::ModelBuilder;
using graph::NodeId;
using graph::OpType;
using tensor::MaxAbsDiff;
using tensor::Shape;
using tensor::Tensor;

Graph LinearChain(int num_convs) {
  ModelBuilder b(3);
  NodeId x = b.Input("img", Shape({1, 4, 16, 16}));
  for (int i = 0; i < num_convs; ++i) {
    x = b.ConvBnRelu(x, 8, 3, 1, 1);
  }
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Gemm(x, 10);
  b.MarkOutput(x);
  return b.Build();
}

Graph DiamondNet() {
  ModelBuilder b(4);
  NodeId x = b.Input("img", Shape({1, 4, 8, 8}));
  NodeId stem = b.ConvBnRelu(x, 8, 3, 1, 1);
  NodeId left = b.ConvBnRelu(stem, 8, 3, 1, 1);
  NodeId right = b.ConvBnRelu(stem, 8, 3, 1, 1);
  NodeId join = b.Add(left, right);
  NodeId out = b.GlobalAvgPool(join);
  b.MarkOutput(out);
  return b.Build();
}

void ExpectValidPartitionSet(const Graph& g, const PartitionSet& set,
                             int64_t expected_count) {
  EXPECT_EQ(set.num_partitions(), expected_count);
  // Exact cover.
  std::set<NodeId> seen;
  for (const auto& p : set.partitions) {
    for (NodeId id : p.nodes) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate node " << id;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), g.num_nodes());
  // Topological order between partitions: every cross-partition edge goes
  // forward.
  std::map<NodeId, size_t> stage_of;
  for (size_t si = 0; si < set.partitions.size(); ++si) {
    for (NodeId id : set.partitions[si].nodes) stage_of[id] = si;
  }
  for (const auto& node : g.nodes()) {
    for (NodeId in : node.inputs) {
      EXPECT_LE(stage_of[in], stage_of[node.id])
          << "backward edge " << in << "->" << node.id;
    }
  }
}

TEST(RandomContractionTest, ProducesRequestedPartitionCounts) {
  Graph g = LinearChain(10);
  for (int64_t t : {1, 2, 3, 5, 7, 9}) {
    PartitionOptions opts;
    opts.target_partitions = t;
    opts.seed = 11;
    auto set = RandomContraction(g, opts);
    ASSERT_TRUE(set.ok()) << "t=" << t << ": " << set.status().ToString();
    ExpectValidPartitionSet(g, *set, t);
  }
}

TEST(RandomContractionTest, WorksOnBranchyGraph) {
  Graph g = DiamondNet();
  PartitionOptions opts;
  opts.target_partitions = 3;
  opts.seed = 5;
  auto set = RandomContraction(g, opts);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ExpectValidPartitionSet(g, *set, 3);
}

TEST(RandomContractionTest, DeterministicForSeed) {
  Graph g = LinearChain(8);
  PartitionOptions opts;
  opts.target_partitions = 4;
  opts.seed = 77;
  auto a = RandomContraction(g, opts);
  auto b = RandomContraction(g, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->partitions.size(), b->partitions.size());
  for (size_t i = 0; i < a->partitions.size(); ++i) {
    EXPECT_EQ(a->partitions[i].nodes, b->partitions[i].nodes);
  }
}

TEST(RandomContractionTest, DifferentSeedsGiveDifferentCuts) {
  Graph g = LinearChain(12);
  PartitionOptions opts;
  opts.target_partitions = 4;
  bool any_different = false;
  opts.seed = 1;
  auto first = RandomContraction(g, opts);
  ASSERT_TRUE(first.ok());
  for (uint64_t s = 2; s < 10 && !any_different; ++s) {
    opts.seed = s;
    auto other = RandomContraction(g, opts);
    ASSERT_TRUE(other.ok());
    for (size_t i = 0; i < first->partitions.size(); ++i) {
      if (first->partitions[i].nodes != other->partitions[i].nodes) {
        any_different = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(RandomContractionTest, BalanceBiasBeatsUnbiased) {
  // With the default balanced weight function, average imbalance across
  // seeds should be no worse than with a uniform weight function.
  Graph g = graph::BuildModel(graph::ModelKind::kResNet50,
                              {.input_hw = 32, .depth_mult = 0.34});
  double balanced_total = 0, uniform_total = 0;
  const int kTrials = 5;
  for (int s = 0; s < kTrials; ++s) {
    PartitionOptions balanced;
    balanced.target_partitions = 5;
    balanced.seed = static_cast<uint64_t>(s);
    auto bs = RandomContraction(g, balanced);
    ASSERT_TRUE(bs.ok());
    balanced_total += bs->CostImbalance();

    PartitionOptions uniform = balanced;
    uniform.weight_fn = [](double, double, double) { return 1.0; };
    uniform.max_cost_fraction = 1.0;  // disable the balancing cap too
    auto us = RandomContraction(g, uniform);
    ASSERT_TRUE(us.ok());
    uniform_total += us->CostImbalance();
  }
  EXPECT_LE(balanced_total, uniform_total * 1.05);
}

TEST(RandomContractionTest, CustomConstraintRespected) {
  Graph g = LinearChain(10);
  PartitionOptions opts;
  opts.target_partitions = 5;
  opts.seed = 3;
  // Forbid any partition from holding more than 12 nodes.
  opts.constraint_fn = [](const Partition& a, const Partition& b) {
    return a.nodes.size() + b.nodes.size() <= 12;
  };
  auto set = RandomContraction(g, opts);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  for (const auto& p : set->partitions) EXPECT_LE(p.nodes.size(), 12u);
}

TEST(RandomContractionTest, RejectsBadTargets) {
  Graph g = LinearChain(3);
  PartitionOptions opts;
  opts.target_partitions = 0;
  EXPECT_FALSE(RandomContraction(g, opts).ok());
  opts.target_partitions = g.num_nodes() + 1;
  EXPECT_FALSE(RandomContraction(g, opts).ok());
}

TEST(BestOfRandomContractionTest, NeverWorseThanSingle) {
  Graph g = LinearChain(12);
  PartitionOptions opts;
  opts.target_partitions = 4;
  opts.seed = 9;
  auto single = RandomContraction(g, opts);
  auto best = BestOfRandomContraction(g, opts, 8);
  ASSERT_TRUE(single.ok() && best.ok());
  EXPECT_LE(best->CostImbalance(), single->CostImbalance() + 1e-9);
}

TEST(ManualSliceTest, ValidSlice) {
  Graph g = LinearChain(4);  // nodes: input + 4*(conv,bn,relu) + gap+flat+fc
  std::vector<std::vector<NodeId>> groups;
  std::vector<NodeId> first, second;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    (id < g.num_nodes() / 2 ? first : second).push_back(id);
  }
  groups = {first, second};
  auto set = ManualSlice(g, groups);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ExpectValidPartitionSet(g, *set, 2);
}

TEST(ManualSliceTest, RejectsIncompleteCover) {
  Graph g = LinearChain(2);
  auto set = ManualSlice(g, {{0, 1, 2}});
  EXPECT_FALSE(set.ok());
}

TEST(ManualSliceTest, RejectsDoubleAssignment) {
  Graph g = LinearChain(2);
  std::vector<NodeId> all(static_cast<size_t>(g.num_nodes()));
  std::iota(all.begin(), all.end(), 0);
  auto set = ManualSlice(g, {all, {0}});
  EXPECT_FALSE(set.ok());
}

TEST(ManualSliceTest, RejectsCyclicQuotient) {
  Graph g = DiamondNet();
  // Put stem+join in one group, branches in another: stem->branch->join
  // makes the two groups mutually dependent.
  // Node layout: 0 input, stem = 1..3 (conv,bn,relu), left = 4..6,
  // right = 7..9, add = 10, gap = 11.
  std::vector<NodeId> a = {0, 1, 2, 3, 10, 11};
  std::vector<NodeId> b = {4, 5, 6, 7, 8, 9};
  auto set = ManualSlice(g, {a, b});
  EXPECT_FALSE(set.ok());
}

// -------------------------------------------------- partitioned execution

// Runs a PartitionedModel stage by stage sequentially and returns the
// model outputs (reference harness for equivalence tests; the real
// pipeline engine lives in core).
std::vector<Tensor> RunPartitioned(const PartitionedModel& pm,
                                   const std::vector<Tensor>& model_inputs) {
  std::vector<std::vector<Tensor>> stage_outputs(pm.stages.size());
  for (size_t si = 0; si < pm.stages.size(); ++si) {
    auto exec = runtime::Executor::Create(pm.stages[si],
                                          runtime::ReferenceExecutorConfig());
    MVTEE_CHECK(exec.ok());
    std::vector<Tensor> inputs;
    for (const StageInputSource& src : pm.stage_inputs[si]) {
      if (src.stage < 0) {
        inputs.push_back(model_inputs[static_cast<size_t>(src.index)]);
      } else {
        inputs.push_back(
            stage_outputs[static_cast<size_t>(src.stage)]
                         [static_cast<size_t>(src.index)]);
      }
    }
    auto out = (*exec)->Run(inputs);
    MVTEE_CHECK(out.ok());
    stage_outputs[si] = std::move(*out);
  }
  std::vector<Tensor> outputs;
  for (const StageInputSource& src : pm.model_outputs) {
    outputs.push_back(stage_outputs[static_cast<size_t>(src.stage)]
                                   [static_cast<size_t>(src.index)]);
  }
  return outputs;
}

TEST(PartitionedModelTest, EquivalentToWholeModelLinear) {
  Graph g = LinearChain(6);
  util::Rng rng(21);
  auto input = Tensor::RandomUniform(Shape({1, 4, 16, 16}), rng);

  auto whole = runtime::Executor::Create(g, runtime::ReferenceExecutorConfig());
  ASSERT_TRUE(whole.ok());
  auto expected = (*whole)->Run({input});
  ASSERT_TRUE(expected.ok());

  for (int64_t t : {2, 3, 5}) {
    PartitionOptions opts;
    opts.target_partitions = t;
    opts.seed = 31;
    auto set = RandomContraction(g, opts);
    ASSERT_TRUE(set.ok());
    auto pm = BuildPartitionedModel(g, *set);
    ASSERT_TRUE(pm.ok()) << pm.status().ToString();
    auto actual = RunPartitioned(*pm, {input});
    ASSERT_EQ(actual.size(), 1u);
    EXPECT_LT(MaxAbsDiff(actual[0], (*expected)[0]), 1e-5) << "t=" << t;
  }
}

TEST(PartitionedModelTest, EquivalentToWholeModelDiamond) {
  Graph g = DiamondNet();
  util::Rng rng(22);
  auto input = Tensor::RandomUniform(Shape({1, 4, 8, 8}), rng);
  auto whole = runtime::Executor::Create(g, runtime::ReferenceExecutorConfig());
  ASSERT_TRUE(whole.ok());
  auto expected = (*whole)->Run({input});
  ASSERT_TRUE(expected.ok());

  for (uint64_t seed = 0; seed < 5; ++seed) {
    PartitionOptions opts;
    opts.target_partitions = 3;
    opts.seed = seed;
    auto set = RandomContraction(g, opts);
    ASSERT_TRUE(set.ok());
    auto pm = BuildPartitionedModel(g, *set);
    ASSERT_TRUE(pm.ok());
    auto actual = RunPartitioned(*pm, {input});
    EXPECT_LT(MaxAbsDiff(actual[0], (*expected)[0]), 1e-5);
  }
}

TEST(PartitionedModelTest, EquivalentOnRealModel) {
  graph::ZooConfig cfg;
  cfg.input_hw = 32;
  cfg.depth_mult = 0.34;
  Graph g = graph::BuildModel(graph::ModelKind::kGoogleNet, cfg);
  util::Rng rng(23);
  auto input = Tensor::RandomUniform(Shape({1, 3, 32, 32}), rng);

  auto whole = runtime::Executor::Create(g, runtime::ReferenceExecutorConfig());
  ASSERT_TRUE(whole.ok());
  auto expected = (*whole)->Run({input});
  ASSERT_TRUE(expected.ok());

  PartitionOptions opts;
  opts.target_partitions = 5;
  opts.seed = 13;
  auto set = RandomContraction(g, opts);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  auto pm = BuildPartitionedModel(g, *set);
  ASSERT_TRUE(pm.ok()) << pm.status().ToString();
  EXPECT_EQ(pm->num_stages(), 5);
  auto actual = RunPartitioned(*pm, {input});
  EXPECT_LT(MaxAbsDiff(actual[0], (*expected)[0]), 1e-4);
}

TEST(PartitionedModelTest, StageGraphsValidateAndSerialize) {
  Graph g = LinearChain(6);
  PartitionOptions opts;
  opts.target_partitions = 3;
  opts.seed = 17;
  auto set = RandomContraction(g, opts);
  ASSERT_TRUE(set.ok());
  auto pm = BuildPartitionedModel(g, *set);
  ASSERT_TRUE(pm.ok());
  for (const Graph& stage : pm->stages) {
    EXPECT_TRUE(stage.Validate().ok());
    auto round = Graph::Deserialize(stage.Serialize());
    ASSERT_TRUE(round.ok());
    EXPECT_EQ(round->Serialize(), stage.Serialize());
  }
}

TEST(PartitionedModelTest, SinglePartitionIsWholeModel) {
  Graph g = LinearChain(4);
  PartitionOptions opts;
  opts.target_partitions = 1;
  opts.seed = 1;
  auto set = RandomContraction(g, opts);
  ASSERT_TRUE(set.ok());
  auto pm = BuildPartitionedModel(g, *set);
  ASSERT_TRUE(pm.ok());
  EXPECT_EQ(pm->num_stages(), 1);
  util::Rng rng(2);
  auto input = Tensor::RandomUniform(Shape({1, 4, 16, 16}), rng);
  auto whole = runtime::Executor::Create(g, runtime::ReferenceExecutorConfig());
  auto expected = (*whole)->Run({input});
  ASSERT_TRUE(expected.ok());
  auto actual = RunPartitioned(*pm, {input});
  EXPECT_LT(MaxAbsDiff(actual[0], (*expected)[0]), 1e-6);
}

TEST(PartitionSetTest, CostImbalanceComputation) {
  PartitionSet set;
  set.partitions.push_back({.nodes = {0}, .cost = 10});
  set.partitions.push_back({.nodes = {1}, .cost = 10});
  EXPECT_NEAR(set.CostImbalance(), 1.0, 1e-9);
  set.partitions.push_back({.nodes = {2}, .cost = 40});
  EXPECT_NEAR(set.CostImbalance(), 2.0, 1e-9);  // 40 / mean(20)
}

}  // namespace
}  // namespace mvtee::partition
