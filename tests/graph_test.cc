#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/ir.h"
#include "graph/model_zoo.h"

namespace mvtee::graph {
namespace {

using tensor::Shape;
using tensor::Tensor;

Graph TinyMlp() {
  ModelBuilder b(1);
  NodeId x = b.Input("x", Shape({1, 8}));
  x = b.Gemm(x, 16);
  x = b.Relu(x);
  x = b.Gemm(x, 4);
  x = b.Softmax(x);
  b.MarkOutput(x);
  return b.Build();
}

TEST(GraphTest, BuildAndValidate) {
  Graph g = TinyMlp();
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.inputs().size(), 1u);
  EXPECT_EQ(g.outputs().size(), 1u);
  EXPECT_EQ(g.num_nodes(), 5);
}

TEST(GraphTest, ValidateRejectsNoOutputs) {
  ModelBuilder b(1);
  NodeId x = b.Input("x", Shape({1, 4}));
  b.Relu(x);
  Graph& g = b.graph();
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GraphTest, ValidateRejectsMissingInitializer) {
  Graph g;
  NodeId x = g.AddInput("x", Shape({1, 4}));
  g.AddNode("fc", OpType::kGemm, {x}, {"nonexistent.w"});
  g.MarkOutput(1);
  EXPECT_EQ(g.Validate().code(), util::StatusCode::kNotFound);
}

TEST(GraphTest, ShapeInferenceMlp) {
  Graph g = TinyMlp();
  auto shapes = g.InferShapes();
  ASSERT_TRUE(shapes.ok());
  EXPECT_EQ((*shapes)[0], Shape({1, 8}));
  EXPECT_EQ((*shapes)[1], Shape({1, 16}));
  EXPECT_EQ((*shapes)[4], Shape({1, 4}));
}

TEST(GraphTest, ShapeInferenceConvChain) {
  ModelBuilder b(2);
  NodeId x = b.Input("img", Shape({2, 3, 32, 32}));
  x = b.Conv(x, 8, 3, 1, 1);       // same spatial
  x = b.MaxPool(x, 2, 2);          // halve
  x = b.Conv(x, 16, 3, 2, 1);      // stride 2
  NodeId gap = b.GlobalAvgPool(x);
  b.MarkOutput(gap);
  Graph g = b.Build();
  auto shapes = g.InferShapes();
  ASSERT_TRUE(shapes.ok());
  EXPECT_EQ((*shapes)[1], Shape({2, 8, 32, 32}));
  EXPECT_EQ((*shapes)[2], Shape({2, 8, 16, 16}));
  EXPECT_EQ((*shapes)[3], Shape({2, 16, 8, 8}));
  EXPECT_EQ((*shapes)[4], Shape({2, 16, 1, 1}));
}

TEST(GraphTest, ShapeInferenceGroupedConv) {
  ModelBuilder b(3);
  NodeId x = b.Input("img", Shape({1, 16, 8, 8}));
  x = b.Conv(x, 16, 3, 1, 1, /*groups=*/16);  // depthwise
  b.MarkOutput(x);
  Graph g = b.Build();
  auto shapes = g.InferShapes();
  ASSERT_TRUE(shapes.ok());
  EXPECT_EQ((*shapes)[1], Shape({1, 16, 8, 8}));
}

TEST(GraphTest, ShapeInferenceRejectsChannelMismatch) {
  Graph g;
  NodeId x = g.AddInput("x", Shape({1, 3, 8, 8}));
  g.AddInitializer("w", Tensor(Shape({8, 4, 3, 3})));  // wants 4 channels
  Attributes attrs;
  attrs.SetInt("stride", 1);
  attrs.SetInt("padding", 1);
  attrs.SetInt("groups", 1);
  NodeId c = g.AddNode("conv", OpType::kConv2d, {x}, {"w"}, attrs);
  g.MarkOutput(c);
  EXPECT_FALSE(g.InferShapes().ok());
}

TEST(GraphTest, ShapeInferenceRejectsBadConcat) {
  ModelBuilder b(4);
  NodeId x = b.Input("x", Shape({1, 4, 8, 8}));
  NodeId a = b.Conv(x, 4, 3, 1, 1);
  NodeId c = b.Conv(x, 4, 3, 2, 1);  // different spatial dims
  Graph& g = b.graph();
  Attributes attrs;
  attrs.SetInt("axis", 1);
  NodeId cat = g.AddNode("bad_cat", OpType::kConcat, {a, c}, {}, attrs);
  g.MarkOutput(cat);
  EXPECT_FALSE(g.InferShapes().ok());
}

TEST(GraphTest, SerializeRoundTrip) {
  Graph g = TinyMlp();
  auto bytes = g.Serialize();
  auto back = Graph::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_nodes(), g.num_nodes());
  EXPECT_EQ(back->inputs(), g.inputs());
  EXPECT_EQ(back->outputs(), g.outputs());
  EXPECT_EQ(back->initializers().size(), g.initializers().size());
  for (const auto& [name, t] : g.initializers()) {
    const Tensor* other = back->FindInitializer(name);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(*other, t);
  }
  // Node-level equality.
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    EXPECT_EQ(back->node(id).op, g.node(id).op);
    EXPECT_EQ(back->node(id).inputs, g.node(id).inputs);
    EXPECT_EQ(back->node(id).weights, g.node(id).weights);
    EXPECT_EQ(back->node(id).attrs, g.node(id).attrs);
  }
}

TEST(GraphTest, DeserializeRejectsCorruption) {
  auto bytes = TinyMlp().Serialize();
  auto bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_FALSE(Graph::Deserialize(bad).ok());
  auto truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(Graph::Deserialize(truncated).ok());
}

TEST(GraphTest, EstimateNodeCostsConvDominates) {
  ModelBuilder b(5);
  NodeId x = b.Input("x", Shape({1, 8, 16, 16}));
  NodeId conv = b.Conv(x, 16, 3, 1, 1);
  NodeId relu = b.Relu(conv);
  b.MarkOutput(relu);
  Graph g = b.Build();
  auto costs = g.EstimateNodeCosts();
  EXPECT_GT(costs[1], costs[2] * 10);  // conv >> relu
  EXPECT_EQ(costs[0], 0.0);            // input free
}

TEST(GraphTest, DropUnusedInitializers) {
  Graph g = TinyMlp();
  g.AddInitializer("orphan", Tensor(Shape({4})));
  EXPECT_EQ(g.DropUnusedInitializers(), 1u);
  EXPECT_EQ(g.FindInitializer("orphan"), nullptr);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphTest, BuildConsumers) {
  ModelBuilder b(6);
  NodeId x = b.Input("x", Shape({1, 4, 8, 8}));
  NodeId a = b.Relu(x);
  NodeId c = b.Sigmoid(x);
  NodeId add = b.Add(a, c);
  b.MarkOutput(add);
  Graph g = b.Build();
  auto consumers = g.BuildConsumers();
  EXPECT_EQ(consumers[0].size(), 2u);  // x feeds relu and sigmoid
  EXPECT_EQ(consumers[1], std::vector<NodeId>{add});
}

// ------------------------------------------------------------- model zoo

class ModelZooTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelZooTest, BuildsAndInfersShapes) {
  ZooConfig cfg;
  cfg.input_hw = 32;  // small: structure checks only
  Graph g = BuildModel(GetParam(), cfg);
  EXPECT_TRUE(g.Validate().ok());
  auto shapes = g.InferShapes();
  ASSERT_TRUE(shapes.ok()) << shapes.status().ToString();
  // Classifier output: [batch, classes].
  const auto& out_shape = (*shapes)[static_cast<size_t>(g.outputs()[0])];
  EXPECT_EQ(out_shape, Shape({cfg.batch, cfg.num_classes}));
}

TEST_P(ModelZooTest, DeterministicAcrossBuilds) {
  ZooConfig cfg;
  cfg.input_hw = 32;
  Graph a = BuildModel(GetParam(), cfg);
  Graph b = BuildModel(GetParam(), cfg);
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST_P(ModelZooTest, SerializeRoundTrip) {
  ZooConfig cfg;
  cfg.input_hw = 32;
  Graph g = BuildModel(GetParam(), cfg);
  auto back = Graph::Deserialize(g.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Serialize(), g.Serialize());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelZooTest,
                         ::testing::ValuesIn(AllModels()),
                         [](const auto& info) {
                           std::string name(ModelName(info.param));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ModelZooTest, ModelSizesAreOrdered) {
  // EfficientNet-B7 should be the largest model by parameter bytes and
  // MobileNetV3/MnasNet the smallest — preserving the paper's ordering.
  ZooConfig cfg;
  cfg.input_hw = 32;
  size_t b7 = BuildModel(ModelKind::kEfficientNetB7, cfg).ParameterBytes();
  size_t r152 = BuildModel(ModelKind::kResNet152, cfg).ParameterBytes();
  size_t r50 = BuildModel(ModelKind::kResNet50, cfg).ParameterBytes();
  size_t mobile = BuildModel(ModelKind::kMobileNetV3, cfg).ParameterBytes();
  EXPECT_GT(r152, r50);
  EXPECT_GT(b7, mobile);
  EXPECT_GT(r50, mobile);
}

TEST(ModelZooTest, DepthScalingChangesNodeCount) {
  ZooConfig small, big;
  small.input_hw = big.input_hw = 32;
  small.depth_mult = 0.34;
  big.depth_mult = 1.0;
  Graph a = BuildModel(ModelKind::kResNet152, small);
  Graph b = BuildModel(ModelKind::kResNet152, big);
  EXPECT_LT(a.num_nodes(), b.num_nodes());
}

// ------------------------------------------------- frozen initializers

TEST(GraphFreezeTest, FreezeBlocksEveryMutationPath) {
  // Once an executor binds its PackedWeightCache the cached bytes must
  // never go stale, so the frozen graph aborts on any initializer
  // mutation instead of silently diverging from the cache.
  Graph g = TinyMlp();
  ASSERT_FALSE(g.initializers_frozen());
  const std::string name = g.initializers().begin()->first;
  g.FreezeInitializers();
  EXPECT_TRUE(g.initializers_frozen());
  EXPECT_DEATH(g.MutableInitializer(name), "");
  EXPECT_DEATH(g.AddInitializer("fresh", Tensor(Shape({1}), {1.0f})), "");
  EXPECT_DEATH(g.DropUnusedInitializers(), "");
  // Read-only access stays open.
  EXPECT_NE(g.FindInitializer(name), nullptr);
}

TEST(GraphFreezeTest, CopyIsAFreshMutableGraph) {
  // Variant generation copies the template graph and perturbs weights;
  // a copy of a frozen graph must therefore start unfrozen, while a
  // move keeps the flag (it is the same graph changing hands).
  Graph g = TinyMlp();
  g.FreezeInitializers();
  Graph copy = g;
  EXPECT_FALSE(copy.initializers_frozen());
  EXPECT_TRUE(g.initializers_frozen());
  const std::string name = copy.initializers().begin()->first;
  EXPECT_NE(copy.MutableInitializer(name), nullptr);  // no abort
  Graph assigned;
  assigned = g;
  EXPECT_FALSE(assigned.initializers_frozen());
  Graph moved = std::move(copy);
  EXPECT_FALSE(moved.initializers_frozen());
  Graph moved_frozen = std::move(g);
  EXPECT_TRUE(moved_frozen.initializers_frozen());
}

}  // namespace
}  // namespace mvtee::graph
