#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/buffer_pool.h"
#include "util/bytes.h"
#include "util/cpu_features.h"
#include "util/knobs.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mvtee::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_NE(s.ToString().find("INVALID_ARGUMENT"), std::string::npos);
}

TEST(StatusTest, SecuritySpecificCodes) {
  EXPECT_EQ(AuthenticationFailure("x").code(),
            StatusCode::kAuthenticationFailure);
  EXPECT_EQ(AttestationFailure("x").code(), StatusCode::kAttestationFailure);
  EXPECT_EQ(ReplayDetected("x").code(), StatusCode::kReplayDetected);
  EXPECT_EQ(DivergenceDetected("x").code(), StatusCode::kDivergenceDetected);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

Status HelperReturnsError() { return DataLoss("oops"); }

Status UsesReturnIfError() {
  MVTEE_RETURN_IF_ERROR(HelperReturnsError());
  return OkStatus();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kDataLoss);
}

Result<int> MakeValue(bool fail) {
  if (fail) return Internal("nope");
  return 5;
}

Status UsesAssignOrReturn(bool fail, int& out) {
  MVTEE_ASSIGN_OR_RETURN(int v, MakeValue(fail));
  out = v;
  return OkStatus();
}

TEST(StatusMacroTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(false, out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UsesAssignOrReturn(true, out).code(), StatusCode::kInternal);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.UniformU64(17);
    EXPECT_LT(v, 17u);
  }
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NormalHasPlausibleMoments) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, SampleIndexByWeightRespectsZeros) {
  Rng rng(13);
  std::vector<double> weights = {0.0, 1.0, 0.0, 3.0};
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 10000; ++i) counts[rng.SampleIndexByWeight(weights)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_GT(counts[3], counts[1]);  // 3:1 weight ratio
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7e};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abff7e");
  Bytes back;
  ASSERT_TRUE(HexDecode(hex, back));
  EXPECT_EQ(back, data);
}

TEST(BytesTest, HexDecodeRejectsMalformed) {
  Bytes out;
  EXPECT_FALSE(HexDecode("abc", out));   // odd length
  EXPECT_FALSE(HexDecode("zz", out));    // non-hex
  EXPECT_TRUE(HexDecode("", out));
  EXPECT_TRUE(out.empty());
}

TEST(BytesTest, AppendAndReadRoundTrip) {
  Bytes buf;
  AppendU8(buf, 0x12);
  AppendU16(buf, 0x3456);
  AppendU32(buf, 0x789abcde);
  AppendU64(buf, 0x0123456789abcdefULL);
  AppendF32(buf, 3.5f);
  AppendLengthPrefixedStr(buf, "hello");

  ByteReader reader(buf);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  float f;
  std::string s;
  ASSERT_TRUE(reader.ReadU8(u8));
  ASSERT_TRUE(reader.ReadU16(u16));
  ASSERT_TRUE(reader.ReadU32(u32));
  ASSERT_TRUE(reader.ReadU64(u64));
  ASSERT_TRUE(reader.ReadF32(f));
  ASSERT_TRUE(reader.ReadLengthPrefixedStr(s));
  EXPECT_EQ(u8, 0x12);
  EXPECT_EQ(u16, 0x3456);
  EXPECT_EQ(u32, 0x789abcdeu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(f, 3.5f);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(reader.done());
}

TEST(BytesTest, ReaderUnderflowIsSafe) {
  Bytes buf = {1, 2};
  ByteReader reader(buf);
  uint32_t v = 0xdead;
  EXPECT_FALSE(reader.ReadU32(v));
  EXPECT_EQ(v, 0xdeadu);  // untouched
  uint16_t v16;
  EXPECT_TRUE(reader.ReadU16(v16));
  EXPECT_TRUE(reader.done());
}

TEST(BytesTest, LengthPrefixTruncationRejected) {
  Bytes buf;
  AppendU32(buf, 100);  // claims 100 bytes, provides 2
  buf.push_back(1);
  buf.push_back(2);
  ByteReader reader(buf);
  Bytes out;
  EXPECT_FALSE(reader.ReadLengthPrefixed(out));
  // Position restored so caller can handle the error.
  EXPECT_EQ(reader.position(), 0u);
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3}, b = {1, 2, 3}, c = {1, 2, 4}, d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(BytesTest, ReadSpanAliasesWithoutCopy) {
  Bytes buf = {1, 2, 3, 4, 5};
  ByteReader reader(buf);
  ByteSpan head, tail;
  ASSERT_TRUE(reader.ReadSpan(2, head));
  ASSERT_TRUE(reader.ReadSpan(3, tail));
  EXPECT_EQ(head.data(), buf.data());
  EXPECT_EQ(tail.data(), buf.data() + 2);
  EXPECT_TRUE(reader.done());
  EXPECT_FALSE(reader.ReadSpan(1, head));
}

TEST(BufferPoolTest, RoundUpToClassAndRecycle) {
  BufferPool pool(1 << 20);
  PooledBuffer b = pool.Acquire(700);
  EXPECT_EQ(b.size(), 700u);
  EXPECT_GE(b.bytes().capacity(), 1024u);  // next power-of-two class
  const uint8_t* storage = b.data();
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.bytes_in_use, 1024u);
  b.reset();  // released back to the pool
  s = pool.stats();
  EXPECT_EQ(s.bytes_in_use, 0u);
  EXPECT_EQ(s.retained_bytes, 1024u);
  // Any size in the same class reuses the retained storage.
  PooledBuffer c = pool.Acquire(1000);
  EXPECT_EQ(c.data(), storage);
  s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.retained_bytes, 0u);
}

TEST(BufferPoolTest, SizeClassAccountingIsExact) {
  BufferPool pool(1 << 30);
  // Sub-minimum, mid-class, exact-class and oversize requests.
  const size_t sizes[] = {1, 700, 4096, (1u << 26) + 1};
  const size_t charged[] = {512, 1024, 4096, (1u << 26) + 1};
  std::vector<PooledBuffer> held;
  size_t expect_in_use = 0;
  for (size_t i = 0; i < 4; ++i) {
    held.push_back(pool.Acquire(sizes[i]));
    expect_in_use += charged[i];
    EXPECT_EQ(pool.stats().bytes_in_use, expect_in_use) << sizes[i];
  }
  EXPECT_EQ(pool.stats().bytes_in_use_hwm, expect_in_use);
  held.clear();
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.bytes_in_use, 0u);
  // Oversize buffers are never retained.
  EXPECT_EQ(s.retained_bytes, 512u + 1024u + 4096u);
  EXPECT_EQ(s.bytes_in_use_hwm, expect_in_use);  // high-water survives
  pool.Trim();
  EXPECT_EQ(pool.stats().retained_bytes, 0u);
}

TEST(BufferPoolTest, RetentionCapAndAdoptedBuffers) {
  BufferPool pool(0);  // retain nothing
  pool.Acquire(512).reset();
  EXPECT_EQ(pool.stats().retained_bytes, 0u);

  // Adopted buffers never touch pool accounting.
  Bytes plain = {9, 9, 9};
  PooledBuffer adopted = PooledBuffer::Adopt(std::move(plain));
  EXPECT_EQ(adopted.size(), 3u);
  EXPECT_TRUE(adopted.unique());
  Bytes back = adopted.TakeBytes();  // sole owner: moves, no copy
  EXPECT_EQ(back.size(), 3u);
}

TEST(BufferPoolTest, KeepaliveSharesStorage) {
  BufferPool pool(1 << 20);
  PooledBuffer b = pool.Acquire(100);
  std::shared_ptr<const void> pin = b.keepalive();
  b.reset();
  // The keepalive still pins the storage: not yet back in the pool.
  EXPECT_EQ(pool.stats().bytes_in_use, 512u);
  pin.reset();
  EXPECT_EQ(pool.stats().bytes_in_use, 0u);
}

TEST(BufferPoolTest, ConcurrentAcquireReleaseIsConsistent) {
  BufferPool pool(4 << 20);
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      Rng rng(0xb0f5eed + static_cast<uint64_t>(t));
      for (int i = 0; i < kIters; ++i) {
        const size_t n = 1 + rng.NextU64() % 8192;
        PooledBuffer b = pool.Acquire(n);
        ASSERT_EQ(b.size(), n);
        b.data()[0] = static_cast<uint8_t>(t);  // touch the storage
        b.data()[n - 1] = static_cast<uint8_t>(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(s.bytes_in_use, 0u);  // everything released
  EXPECT_GT(s.hits, 0u);          // recycling actually happened
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, BackToBackJobsReuseWorkers) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(64, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 64u * 50);
}

TEST(ThreadPoolTest, EmptyAndSingleIndexJobs) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
  size_t seen = 1234;
  pool.ParallelFor(1, [&](size_t i) { seen = i; });
  EXPECT_EQ(seen, 0u);
}

TEST(ThreadPoolTest, ResolveThreadCountUsesHardwareWhenUnset) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(nullptr, 16), 16u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(nullptr, 1), 1u);
}

TEST(ThreadPoolTest, ResolveThreadCountHonorsValidOverride) {
  // No silent cap: values above the old 8-thread ceiling stick.
  EXPECT_EQ(ThreadPool::ResolveThreadCount("12", 64), 12u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount("96", 8), 96u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount("1", 8), 1u);
}

TEST(CpuFeaturesTest, ScopedForceScalarDisablesEveryDispatchPredicate) {
  ScopedForceScalar force_scalar;
  EXPECT_FALSE(SimdEnabled());
  EXPECT_FALSE(UseAvx2Gemm());
  EXPECT_FALSE(UseAesGcmAccel());
}

TEST(CpuFeaturesTest, FeatureStringIsStableAndNonEmpty) {
  const std::string s = CpuFeatureString();
  EXPECT_FALSE(s.empty());  // at minimum "scalar"
  EXPECT_EQ(s, CpuFeatureString());
  const CpuFeatures& f = HostCpuFeatures();
  EXPECT_EQ(f.avx2, s.find("avx2") != std::string::npos);
  EXPECT_EQ(f.pclmul, s.find("pclmul") != std::string::npos);
}

TEST(ThreadPoolTest, ResolveThreadCountRejectsMalformedValues) {
  // Malformed or out-of-range values fall back to hardware concurrency
  // (with a warning) instead of being misparsed or treated as 0.
  for (const char* bad : {"", "abc", "4x", " 8", "8 ", "-2", "+4", "0x10",
                          "3.5", "0", "99999999999999999999", "5000"}) {
    EXPECT_EQ(ThreadPool::ResolveThreadCount(bad, 6), 6u) << "value: " << bad;
  }
}


// -------------------------------------------------------------- logging

TEST(LoggingTest, ResolveLogLevelStrictParsing) {
  const LogLevel fb = LogLevel::kWarning;
  EXPECT_EQ(ResolveLogLevel(nullptr, fb), fb);  // unset: silent default
  EXPECT_EQ(ResolveLogLevel("debug", fb), LogLevel::kDebug);
  EXPECT_EQ(ResolveLogLevel("info", fb), LogLevel::kInfo);
  EXPECT_EQ(ResolveLogLevel("warning", fb), LogLevel::kWarning);
  EXPECT_EQ(ResolveLogLevel("warn", fb), LogLevel::kWarning);
  EXPECT_EQ(ResolveLogLevel("error", fb), LogLevel::kError);
  // Wrong case, whitespace, abbreviations and junk all fall back.
  EXPECT_EQ(ResolveLogLevel("DEBUG", fb), fb);
  EXPECT_EQ(ResolveLogLevel("Info", fb), fb);
  EXPECT_EQ(ResolveLogLevel(" info", fb), fb);
  EXPECT_EQ(ResolveLogLevel("info ", fb), fb);
  EXPECT_EQ(ResolveLogLevel("inf", fb), fb);
  EXPECT_EQ(ResolveLogLevel("", fb), fb);
  EXPECT_EQ(ResolveLogLevel("2", fb), fb);
  EXPECT_EQ(ResolveLogLevel("verbose", LogLevel::kError), LogLevel::kError);
}

TEST(LoggingTest, SetLogLevelGatesEmission) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  MVTEE_WLOG << "should be dropped";
  MVTEE_ELOG << "should appear";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("should be dropped"), std::string::npos);
  EXPECT_NE(captured.find("should appear"), std::string::npos);
  SetLogLevel(before);
}

uint64_t FakeTraceId() { return 424242; }
uint64_t NoTraceId() { return 0; }

TEST(LoggingTest, TraceIdProviderStampsLogLines) {
  SetLogTraceIdProvider(&FakeTraceId);
  ::testing::internal::CaptureStderr();
  MVTEE_WLOG << "with-context";
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("t=424242"), std::string::npos) << captured;
  EXPECT_NE(captured.find("with-context"), std::string::npos);

  // A provider reporting no live context (0) omits the field entirely.
  SetLogTraceIdProvider(&NoTraceId);
  ::testing::internal::CaptureStderr();
  MVTEE_WLOG << "no-context";
  captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("t="), std::string::npos) << captured;
  SetLogTraceIdProvider(nullptr);
}

// ------------------------------------------------- kernel-layer knobs

TEST(KnobRegistryTest, SimdKnobRejectsGarbageStrictly) {
  // MVTEE_SIMD resolves through the strict knob table: anything but
  // "0"/"1" warns and falls back to the default (dispatch stays ON),
  // never silently parses to 0 and turns SIMD off.
  const KnobRegistry& knobs = KnobRegistry::Default();
  ASSERT_NE(knobs.Find("MVTEE_SIMD"), nullptr);
  EXPECT_EQ(knobs.IntFrom("MVTEE_SIMD", nullptr), 1);
  EXPECT_EQ(knobs.IntFrom("MVTEE_SIMD", "0"), 0);
  EXPECT_EQ(knobs.IntFrom("MVTEE_SIMD", "1"), 1);
  for (const char* bad : {"", "2", "-1", "yes", "true", "0x0", " 0", "01x"}) {
    EXPECT_EQ(knobs.IntFrom("MVTEE_SIMD", bad), 1) << "value: " << bad;
  }
}

TEST(KnobRegistryTest, PackCacheKnobRegisteredAndStrict) {
  const KnobRegistry& knobs = KnobRegistry::Default();
  const KnobDesc* d = knobs.Find("MVTEE_PACK_CACHE");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->def, 1);  // cache on by default
  EXPECT_EQ(knobs.IntFrom("MVTEE_PACK_CACHE", "0"), 0);
  for (const char* bad : {"", "2", "off", "-1"}) {
    EXPECT_EQ(knobs.IntFrom("MVTEE_PACK_CACHE", bad), 1) << "value: " << bad;
  }
}

TEST(CpuFeaturesTest, Avx512DetectedButUnusedIsSurfaced) {
  // AVX-512 has no kernel tier yet (ROADMAP): detection must show up
  // in the provenance string so /status can report it as unused, but
  // no dispatch predicate may key on it.
  const CpuFeatures& f = HostCpuFeatures();
  EXPECT_EQ(f.avx512f, CpuFeatureString().find("avx512f") != std::string::npos);
  if (!f.avx2 && f.avx512f) {
    // Hypothetical avx512-only host: the AVX2 tiers must stay off.
    EXPECT_FALSE(UseAvx2Gemm());
    EXPECT_FALSE(UseAvx2Elementwise());
  }
}

TEST(CpuFeaturesTest, ElementwiseDispatchFollowsSimdToggle) {
  // UseAvx2Elementwise needs only avx2 (no FMA: contraction would
  // break bitwise identity) and obeys the same kill switches as the
  // other predicates.
  EXPECT_EQ(UseAvx2Elementwise(), HostCpuFeatures().avx2 && SimdEnabled());
  ScopedForceScalar force_scalar;
  EXPECT_FALSE(UseAvx2Elementwise());
}

}  // namespace
}  // namespace mvtee::util
