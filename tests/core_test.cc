#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "core/consistency.h"
#include "core/verify_pool.h"
#include "core/messages.h"
#include "core/monitor.h"
#include "core/offline.h"
#include "core/variant_host.h"
#include "graph/builder.h"
#include "runtime/executor.h"


namespace mvtee::core {
namespace {

using graph::Graph;
using graph::ModelBuilder;
using graph::NodeId;
using tensor::MaxAbsDiff;
using tensor::Shape;
using tensor::Tensor;

// One-batch convenience over the unified Run() surface (replaces the
// removed RunBatch wrapper): returns the single batch's outputs.
util::Result<std::vector<Tensor>> RunOne(Monitor& m,
                                         const std::vector<Tensor>& inputs) {
  auto all = m.Run({inputs});
  if (!all.ok()) return all.status();
  return std::move((*all)[0]);
}

// --------------------------------------------------------- consistency

Tensor Vec(std::vector<float> v) {
  Shape s({static_cast<int64_t>(v.size())});
  return Tensor(s, std::move(v));
}

TEST(ConsistencyTest, CosineMetric) {
  CheckPolicy p = CheckPolicy::Cosine(0.999);
  EXPECT_TRUE(OutputsConsistent({Vec({1, 2, 3})}, {Vec({1, 2, 3})}, p));
  EXPECT_TRUE(
      OutputsConsistent({Vec({1, 2, 3})}, {Vec({1.0001f, 2, 3})}, p));
  EXPECT_FALSE(OutputsConsistent({Vec({1, 2, 3})}, {Vec({3, 2, 1})}, p));
}

TEST(ConsistencyTest, MseAndMaxAbsMetrics) {
  EXPECT_TRUE(OutputsConsistent({Vec({1, 2})}, {Vec({1.01f, 2})},
                                CheckPolicy::Mse(1e-3)));
  EXPECT_FALSE(OutputsConsistent({Vec({1, 2})}, {Vec({2, 2})},
                                 CheckPolicy::Mse(1e-3)));
  EXPECT_TRUE(OutputsConsistent({Vec({1, 2})}, {Vec({1.05f, 2})},
                                CheckPolicy::MaxAbs(0.1)));
  EXPECT_FALSE(OutputsConsistent({Vec({1, 2})}, {Vec({1.5f, 2})},
                                 CheckPolicy::MaxAbs(0.1)));
}

TEST(ConsistencyTest, AllCloseMetric) {
  CheckPolicy p = CheckPolicy::AllClose(1e-3, 1e-5);
  EXPECT_TRUE(OutputsConsistent({Vec({100, 200})}, {Vec({100.05f, 200})}, p));
  EXPECT_FALSE(OutputsConsistent({Vec({100, 200})}, {Vec({101, 200})}, p));
}

TEST(ConsistencyTest, ShapeMismatchFails) {
  CheckPolicy p = CheckPolicy::Cosine(0.5);
  EXPECT_FALSE(OutputsConsistent({Vec({1, 2})}, {Vec({1, 2, 3})}, p));
  EXPECT_FALSE(OutputsConsistent({Vec({1})}, {Vec({1}), Vec({1})}, p));
}

TEST(ConsistencyTest, NonFiniteAlwaysFails) {
  CheckPolicy p = CheckPolicy::Cosine(0.0);
  EXPECT_FALSE(
      OutputsConsistent({Vec({std::nanf("")})}, {Vec({std::nanf("")})}, p));
  EXPECT_FALSE(OutputsConsistent({Vec({INFINITY})}, {Vec({INFINITY})}, p));
}

TEST(VoteTest, UnanimousAllAgree) {
  std::vector<std::vector<Tensor>> outs = {
      {Vec({1, 2, 3})}, {Vec({1.0001f, 2, 3})}, {Vec({1, 2, 3.0001f})}};
  auto v = Vote(outs, CheckPolicy::Cosine(0.999), VotePolicy::kUnanimous);
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.winner, 0);
  EXPECT_TRUE(v.dissenters.empty());
}

TEST(VoteTest, UnanimousRejectsSingleDissent) {
  std::vector<std::vector<Tensor>> outs = {
      {Vec({1, 2, 3})}, {Vec({1, 2, 3})}, {Vec({-1, 5, 0})}};
  auto v = Vote(outs, CheckPolicy::Cosine(0.999), VotePolicy::kUnanimous);
  EXPECT_FALSE(v.accepted);
  EXPECT_EQ(v.dissenters, std::vector<int>{2});
}

TEST(VoteTest, MajorityToleratesMinorityDissent) {
  std::vector<std::vector<Tensor>> outs = {
      {Vec({1, 2, 3})}, {Vec({1, 2, 3})}, {Vec({-1, 5, 0})}};
  auto v = Vote(outs, CheckPolicy::Cosine(0.999), VotePolicy::kMajority);
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.winner, 0);
  EXPECT_EQ(v.dissenters, std::vector<int>{2});
}

TEST(VoteTest, MajorityRejectsEvenSplit) {
  std::vector<std::vector<Tensor>> outs = {
      {Vec({1, 2, 3})}, {Vec({1, 2, 3})}, {Vec({-1, 5, 0})},
      {Vec({-1, 5, 0})}};
  auto v = Vote(outs, CheckPolicy::Cosine(0.999), VotePolicy::kMajority);
  EXPECT_FALSE(v.accepted);
}

TEST(VoteTest, FailedVariantIsDissent) {
  std::vector<std::vector<Tensor>> outs = {
      {Vec({1, 2, 3})}, {}, {Vec({1, 2, 3})}};
  auto una = Vote(outs, CheckPolicy::Cosine(0.999), VotePolicy::kUnanimous);
  EXPECT_FALSE(una.accepted);
  auto maj = Vote(outs, CheckPolicy::Cosine(0.999), VotePolicy::kMajority);
  EXPECT_TRUE(maj.accepted);
  EXPECT_EQ(maj.dissenters, std::vector<int>{1});
}

TEST(VoteTest, SingleVariantPanels) {
  auto ok = Vote({{Vec({1})}}, CheckPolicy::Cosine(0.9),
                 VotePolicy::kUnanimous);
  EXPECT_TRUE(ok.accepted);
  auto failed = Vote({{}}, CheckPolicy::Cosine(0.9), VotePolicy::kUnanimous);
  EXPECT_FALSE(failed.accepted);
}

// ------------------------------------------------------------- messages

TEST(MessagesTest, AssignIdentityRoundTrip) {
  AssignIdentityMsg msg{"s2.v1", util::Bytes(32, 0x42)};
  auto frame = EncodeAssignIdentity(msg);
  ASSERT_TRUE(PeekType(frame).ok());
  EXPECT_EQ(*PeekType(frame), MsgType::kAssignIdentity);
  auto back = DecodeAssignIdentity(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->variant_id, "s2.v1");
  EXPECT_EQ(back->variant_key, msg.variant_key);
}

TEST(MessagesTest, InferRoundTrip) {
  InferMsg msg;
  msg.batch_id = 77;
  util::Rng rng(1);
  msg.slots = {0, 2};
  msg.inputs.push_back(Tensor::RandomUniform(Shape({1, 3, 4, 4}), rng));
  msg.inputs.push_back(Tensor::RandomUniform(Shape({2, 2}), rng));
  auto back = DecodeInfer(EncodeInfer(msg));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->batch_id, 77u);
  EXPECT_EQ(back->slots, msg.slots);
  ASSERT_EQ(back->inputs.size(), 2u);
  EXPECT_EQ(back->inputs[0], msg.inputs[0]);
  EXPECT_EQ(back->inputs[1], msg.inputs[1]);
}

TEST(MessagesTest, SetupRoutesRoundTrip) {
  SetupRoutesMsg msg;
  msg.upstream = {{42}, {43}};
  msg.downstream.push_back({44, {{0, 1}, {2, 0}}});
  msg.report_to_monitor = false;
  auto back = DecodeSetupRoutes(EncodeSetupRoutes(msg));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->upstream.size(), 2u);
  EXPECT_EQ(back->upstream[0].pipe_id, 42u);
  ASSERT_EQ(back->downstream.size(), 1u);
  EXPECT_EQ(back->downstream[0].pipe_id, 44u);
  EXPECT_EQ(back->downstream[0].output_to_slot, msg.downstream[0].output_to_slot);
  EXPECT_FALSE(back->report_to_monitor);
}

TEST(MessagesTest, StageDataRoundTrip) {
  StageDataMsg msg;
  msg.batch_id = 9;
  util::Rng rng(2);
  msg.slots = {1};
  msg.tensors.push_back(Tensor::RandomUniform(Shape({4}), rng));
  auto back = DecodeStageData(EncodeStageData(msg));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->batch_id, 9u);
  EXPECT_EQ(back->slots, msg.slots);
  EXPECT_EQ(back->tensors[0], msg.tensors[0]);
}

TEST(MessagesTest, InferResultWithError) {
  InferResultMsg msg;
  msg.batch_id = 3;
  msg.ok = false;
  msg.error = "ABORTED: simulated crash";
  auto back = DecodeInferResult(EncodeInferResult(msg));
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->ok);
  EXPECT_EQ(back->error, msg.error);
  EXPECT_TRUE(back->outputs.empty());
}

TEST(MessagesTest, MalformedFramesRejected) {
  EXPECT_FALSE(PeekType({}).ok());
  util::Bytes junk = {0x99};
  EXPECT_FALSE(PeekType(junk).ok());
  util::Bytes truncated = EncodeInfer(InferMsg{});
  truncated.resize(3);
  EXPECT_FALSE(DecodeInfer(truncated).ok());
}

// ------------------------------------------------- offline tool + system

Graph TestModel(uint64_t seed = 5) {
  ModelBuilder b(seed);
  NodeId x = b.Input("img", Shape({1, 3, 16, 16}));
  x = b.ConvBnRelu(x, 8, 3, 1, 1);
  NodeId left = b.ConvBnRelu(x, 8, 3, 1, 1);
  x = b.Relu(b.Add(left, x));
  x = b.ConvBnRelu(x, 16, 3, 2, 1);
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Gemm(x, 10);
  x = b.Softmax(x);
  b.MarkOutput(x);
  return b.Build();
}

OfflineOptions SmallOffline(int partitions = 3, int variants = 3) {
  OfflineOptions opts;
  opts.num_partitions = partitions;
  opts.partition_seed = 11;
  opts.key_seed = 99;
  opts.pool.variants_per_stage = variants;
  opts.pool.seed = 7;
  return opts;
}

TEST(OfflineToolTest, ProducesCompleteBundle) {
  Graph model = TestModel();
  auto bundle = RunOfflineTool(model, SmallOffline());
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_EQ(bundle->num_stages, 3);
  EXPECT_EQ(bundle->num_model_inputs, 1);
  EXPECT_EQ(bundle->variants.size(), 9u);  // 3 stages x 3 variants
  // Store holds 3 encrypted files per variant.
  EXPECT_EQ(bundle->store->size(), 27u);
  // Every variant's files decrypt with its own key and no other.
  const auto& v0 = bundle->variants[0];
  const auto& v1 = bundle->variants[1];
  auto k0 = tee::DeriveVariantFileKey(v0.variant_key, v0.variant_id);
  auto k1 = tee::DeriveVariantFileKey(v1.variant_key, v1.variant_id);
  EXPECT_TRUE(bundle->store->Get(VariantGraphPath(v0.variant_id), k0).ok());
  EXPECT_FALSE(bundle->store->Get(VariantGraphPath(v0.variant_id), k1).ok());
}

TEST(OfflineToolTest, StageVariantLookup) {
  auto bundle = RunOfflineTool(TestModel(), SmallOffline());
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle->StageVariantIds(0).size(), 3u);
  EXPECT_EQ(bundle->StageVariantIds(2).size(), 3u);
  EXPECT_NE(bundle->FindVariant("s1.v2"), nullptr);
  EXPECT_EQ(bundle->FindVariant("s9.v0"), nullptr);
}

TEST(OfflineToolTest, DeterministicKeysBySeed) {
  auto a = RunOfflineTool(TestModel(), SmallOffline());
  auto b = RunOfflineTool(TestModel(), SmallOffline());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->variants[0].variant_key, b->variants[0].variant_key);
}

// Full-system fixture: offline tool -> host -> monitor -> run.
class MvteeSystemTest : public ::testing::Test {
 protected:
  void Boot(int partitions, int variants_per_stage, MonitorConfig config,
            VariantHost::Options host_options = VariantHost::Options{},
            std::vector<int> per_stage_counts = {}) {
    model_ = TestModel();
    auto bundle = RunOfflineTool(model_, SmallOffline(partitions, 5));
    ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
    bundle_ = std::move(*bundle);
    host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store,
                                          host_options);
    auto monitor = Monitor::Create(&cpu_, config);
    ASSERT_TRUE(monitor.ok());
    monitor_ = std::move(*monitor);
    MvxSelection sel =
        per_stage_counts.empty()
            ? MvxSelection::Uniform(bundle_, variants_per_stage)
            : MvxSelection::PerStage(bundle_, per_stage_counts);
    auto status = monitor_->Initialize(bundle_, sel, *host_);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  std::vector<Tensor> ReferenceRun(const std::vector<Tensor>& inputs) {
    auto exec =
        runtime::Executor::Create(model_, runtime::ReferenceExecutorConfig());
    MVTEE_CHECK(exec.ok());
    auto out = (*exec)->Run(inputs);
    MVTEE_CHECK(out.ok());
    return *out;
  }

  void TearDown() override {
    if (monitor_) ASSERT_TRUE(monitor_->Shutdown().ok());
    if (host_) host_->JoinAll();
  }

  tee::SimulatedCpu cpu_{tee::SimulatedCpu::Options{.hardware_key_seed = 3}};
  Graph model_;
  OfflineBundle bundle_;
  std::unique_ptr<VariantHost> host_;
  std::unique_ptr<Monitor> monitor_;
};

TEST_F(MvteeSystemTest, SingleVariantFastPathMatchesReference) {
  Boot(3, 1, MonitorConfig{});
  util::Rng rng(1);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  auto out = RunOne(*monitor_, {input});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto expected = ReferenceRun({input});
  ASSERT_EQ(out->size(), 1u);
  EXPECT_LT(MaxAbsDiff((*out)[0], expected[0]), 1e-3);

  auto stats = monitor_->ConsumeStats();
  EXPECT_EQ(stats.fast_path_forwards, 3u);  // one per stage
  EXPECT_EQ(stats.checkpoints_evaluated, 0u);
  EXPECT_EQ(stats.divergences, 0u);
}

TEST_F(MvteeSystemTest, MultiVariantSlowPathMatchesReference) {
  Boot(3, 3, MonitorConfig{});
  util::Rng rng(2);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  auto out = RunOne(*monitor_, {input});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto expected = ReferenceRun({input});
  EXPECT_GT(tensor::CosineSimilarity((*out)[0], expected[0]), 0.999);

  auto stats = monitor_->ConsumeStats();
  EXPECT_EQ(stats.checkpoints_evaluated, 3u);
  EXPECT_EQ(stats.fast_path_forwards, 0u);
  EXPECT_EQ(stats.divergences, 0u);
}

TEST_F(MvteeSystemTest, SequentialMultipleBatches) {
  Boot(3, 3, MonitorConfig{});
  util::Rng rng(3);
  std::vector<std::vector<Tensor>> batches;
  for (int i = 0; i < 4; ++i) {
    batches.push_back({Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng)});
  }
  auto outs = monitor_->Run(batches);
  ASSERT_TRUE(outs.ok()) << outs.status().ToString();
  ASSERT_EQ(outs->size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    auto expected = ReferenceRun(batches[i]);
    EXPECT_GT(tensor::CosineSimilarity((*outs)[i][0], expected[0]), 0.999);
  }
  auto stats = monitor_->ConsumeStats();
  EXPECT_EQ(stats.batch_latency_us.size(), 4u);
  EXPECT_GT(stats.wall_us, 0);
  EXPECT_GT(stats.bytes_sent, 0u);
}

TEST_F(MvteeSystemTest, PipelinedMatchesSequential) {
  Boot(3, 3, MonitorConfig{});
  util::Rng rng(4);
  std::vector<std::vector<Tensor>> batches;
  for (int i = 0; i < 6; ++i) {
    batches.push_back({Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng)});
  }
  auto pipelined = monitor_->Run(batches, RunOptions{.pipelined = true});
  ASSERT_TRUE(pipelined.ok()) << pipelined.status().ToString();
  ASSERT_EQ(pipelined->size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    auto expected = ReferenceRun(batches[i]);
    EXPECT_GT(tensor::CosineSimilarity((*pipelined)[i][0], expected[0]),
              0.999);
  }
}

TEST_F(MvteeSystemTest, SelectiveMvxPerStageCounts) {
  Boot(3, 1, MonitorConfig{}, VariantHost::Options{}, {1, 3, 1});
  util::Rng rng(5);
  auto out = RunOne(*monitor_, 
      {Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng)});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto stats = monitor_->ConsumeStats();
  EXPECT_EQ(stats.checkpoints_evaluated, 1u);  // only stage 1 is MVX
  EXPECT_EQ(stats.fast_path_forwards, 2u);
}

TEST_F(MvteeSystemTest, DetectsCorruptedVariant) {
  // Attach a corrupting fault hook to one variant of stage 1.
  class Corrupt : public runtime::FaultHook {
   public:
    void OnNodeComplete(const graph::Node& node, Tensor& out) override {
      if (out.num_elements() > 0 && node.op == graph::OpType::kConv2d) {
        out.data()[0] += 50.0f;  // a "bit flip" of consequence
      }
    }
  };
  model_ = TestModel();
  auto bundle = RunOfflineTool(model_, SmallOffline(3, 3));
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);
  host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store);
  host_->SetFaultHook("s1.v1", std::make_shared<Corrupt>());
  auto monitor = Monitor::Create(&cpu_, MonitorConfig{});
  ASSERT_TRUE(monitor.ok());
  monitor_ = std::move(*monitor);
  ASSERT_TRUE(
      monitor_->Initialize(bundle_, MvxSelection::Uniform(bundle_, 3), *host_)
          .ok());

  util::Rng rng(6);
  auto out = RunOne(*monitor_, 
      {Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng)});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), util::StatusCode::kDivergenceDetected);
  auto stats = monitor_->ConsumeStats();
  EXPECT_GE(stats.divergences, 1u);
}

TEST_F(MvteeSystemTest, MajorityVoteSurvivesCorruptedMinority) {
  class Corrupt : public runtime::FaultHook {
   public:
    void OnNodeComplete(const graph::Node&, Tensor& out) override {
      if (out.num_elements() > 0) out.data()[0] += 50.0f;
    }
  };
  model_ = TestModel();
  auto bundle = RunOfflineTool(model_, SmallOffline(3, 3));
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);
  host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store);
  host_->SetFaultHook("s1.v1", std::make_shared<Corrupt>());
  MonitorConfig cfg;
  cfg.vote = VotePolicy::kMajority;
  cfg.reaction = ReactionPolicy::ContinueWithWinner();
  auto monitor = Monitor::Create(&cpu_, cfg);
  ASSERT_TRUE(monitor.ok());
  monitor_ = std::move(*monitor);
  ASSERT_TRUE(
      monitor_->Initialize(bundle_, MvxSelection::Uniform(bundle_, 3), *host_)
          .ok());

  util::Rng rng(7);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  auto out = RunOne(*monitor_, {input});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Output must match the healthy majority, not the corrupted variant.
  auto expected = ReferenceRun({input});
  EXPECT_GT(tensor::CosineSimilarity((*out)[0], expected[0]), 0.999);
  auto stats = monitor_->ConsumeStats();
  EXPECT_GE(stats.divergences, 1u);
}

TEST_F(MvteeSystemTest, DetectsCrashingVariant) {
  class Crash : public runtime::FaultHook {
   public:
    util::Status OnNodeStart(const graph::Node& node) override {
      if (node.op == graph::OpType::kGemm) {
        return util::Aborted("CVE-2022-XXXX: heap overflow trapped");
      }
      return util::OkStatus();
    }
  };
  model_ = TestModel();
  auto bundle = RunOfflineTool(model_, SmallOffline(3, 3));
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);
  host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store);
  // Crash hook on the stage owning the Gemm (last stage, id s2.*).
  host_->SetFaultHook("s2.v0", std::make_shared<Crash>());
  MonitorConfig cfg;
  cfg.vote = VotePolicy::kMajority;
  cfg.reaction = ReactionPolicy::ContinueWithWinner();
  auto monitor = Monitor::Create(&cpu_, cfg);
  ASSERT_TRUE(monitor.ok());
  monitor_ = std::move(*monitor);
  ASSERT_TRUE(
      monitor_->Initialize(bundle_, MvxSelection::Uniform(bundle_, 3), *host_)
          .ok());

  util::Rng rng(8);
  auto out = RunOne(*monitor_, 
      {Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng)});
  ASSERT_TRUE(out.ok()) << out.status().ToString();  // majority survives
  auto stats = monitor_->ConsumeStats();
  EXPECT_GE(stats.variant_failures, 1u);
  EXPECT_GE(stats.divergences, 1u);
}

TEST_F(MvteeSystemTest, AsyncModeProducesSameResults) {
  MonitorConfig cfg;
  cfg.mode = ExecMode::kAsync;
  cfg.vote = VotePolicy::kMajority;
  cfg.reaction = ReactionPolicy::ContinueWithWinner();
  Boot(3, 3, cfg);
  util::Rng rng(9);
  std::vector<std::vector<Tensor>> batches;
  for (int i = 0; i < 4; ++i) {
    batches.push_back({Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng)});
  }
  auto outs = monitor_->Run(batches);
  ASSERT_TRUE(outs.ok()) << outs.status().ToString();
  for (size_t i = 0; i < batches.size(); ++i) {
    auto expected = ReferenceRun(batches[i]);
    EXPECT_GT(tensor::CosineSimilarity((*outs)[i][0], expected[0]), 0.999);
  }
}

TEST_F(MvteeSystemTest, PlaintextChannelsWork) {
  VariantHost::Options host_opts;
  host_opts.plaintext_channels = true;
  Boot(3, 3, MonitorConfig{}, host_opts);
  util::Rng rng(10);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  auto out = RunOne(*monitor_, {input});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto expected = ReferenceRun({input});
  EXPECT_GT(tensor::CosineSimilarity((*out)[0], expected[0]), 0.999);
}

TEST_F(MvteeSystemTest, PartialUpdateReplacesStageVariants) {
  Boot(3, 2, MonitorConfig{});
  util::Rng rng(11);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  ASSERT_TRUE(RunOne(*monitor_, {input}).ok());

  // Swap stage 1 to a different pair of pool variants.
  auto status = monitor_->UpdateStage(bundle_, *host_, 1,
                                      {"s1.v2", "s1.v3"});
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto out = RunOne(*monitor_, {input});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto expected = ReferenceRun({input});
  EXPECT_GT(tensor::CosineSimilarity((*out)[0], expected[0]), 0.999);

  // Audit log: old bindings inactive, new appended.
  int active_s1 = 0, inactive_s1 = 0;
  for (const auto& b : monitor_->bindings()) {
    if (b.stage == 1) (b.active ? active_s1 : inactive_s1)++;
  }
  EXPECT_EQ(active_s1, 2);
  EXPECT_EQ(inactive_s1, 2);
}

TEST_F(MvteeSystemTest, FullUpdateRebindsEverything) {
  Boot(3, 2, MonitorConfig{});
  auto status = monitor_->FullUpdate(
      bundle_, MvxSelection::Uniform(bundle_, 3), *host_);
  ASSERT_TRUE(status.ok()) << status.ToString();
  util::Rng rng(12);
  auto out = RunOne(*monitor_, 
      {Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng)});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
}

TEST_F(MvteeSystemTest, TamperedStoreBlocksBootstrap) {
  model_ = TestModel();
  auto bundle = RunOfflineTool(model_, SmallOffline(3, 3));
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);
  // Host tampers with one variant's encrypted graph before launch.
  ASSERT_TRUE(
      bundle_.store->TamperCiphertext(VariantGraphPath("s0.v0"), 10));
  host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store);
  auto monitor = Monitor::Create(&cpu_, MonitorConfig{});
  ASSERT_TRUE(monitor.ok());
  monitor_ = std::move(*monitor);
  auto status = monitor_->Initialize(bundle_,
                                     MvxSelection::Uniform(bundle_, 1),
                                     *host_);
  EXPECT_FALSE(status.ok());
}

TEST_F(MvteeSystemTest, RejectsSelectionFromWrongStage) {
  model_ = TestModel();
  auto bundle = RunOfflineTool(model_, SmallOffline(3, 3));
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);
  host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store);
  auto monitor = Monitor::Create(&cpu_, MonitorConfig{});
  ASSERT_TRUE(monitor.ok());
  monitor_ = std::move(*monitor);
  MvxSelection sel;
  sel.stage_variant_ids = {{"s1.v0"}, {"s1.v1"}, {"s2.v0"}};  // s1.v0 wrong
  EXPECT_FALSE(monitor_->Initialize(bundle_, sel, *host_).ok());
}

TEST_F(MvteeSystemTest, DirectFastPathMatchesReference) {
  MonitorConfig cfg;
  cfg.direct_fastpath = true;
  Boot(3, 1, cfg);
  util::Rng rng(13);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  auto out = RunOne(*monitor_, {input});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto expected = ReferenceRun({input});
  EXPECT_LT(MaxAbsDiff((*out)[0], expected[0]), 1e-3);
  auto stats = monitor_->ConsumeStats();
  // All three stages traversed on the fast path (silent or reporting).
  EXPECT_EQ(stats.fast_path_forwards, 3u);
  EXPECT_EQ(stats.checkpoints_evaluated, 0u);
}

TEST_F(MvteeSystemTest, DirectFastPathWithMvxStage) {
  MonitorConfig cfg;
  cfg.direct_fastpath = true;
  Boot(3, 1, cfg, VariantHost::Options{}, {1, 3, 1});
  util::Rng rng(14);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  auto out = RunOne(*monitor_, {input});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto expected = ReferenceRun({input});
  EXPECT_GT(tensor::CosineSimilarity((*out)[0], expected[0]), 0.999);
  auto stats = monitor_->ConsumeStats();
  EXPECT_EQ(stats.checkpoints_evaluated, 1u);  // the MVX stage
  EXPECT_EQ(stats.fast_path_forwards, 2u);
}

TEST_F(MvteeSystemTest, DirectFastPathPipelined) {
  MonitorConfig cfg;
  cfg.direct_fastpath = true;
  Boot(3, 1, cfg);
  util::Rng rng(15);
  std::vector<std::vector<Tensor>> batches;
  for (int i = 0; i < 5; ++i) {
    batches.push_back({Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng)});
  }
  auto outs = monitor_->Run(batches, RunOptions{.pipelined = true});
  ASSERT_TRUE(outs.ok()) << outs.status().ToString();
  for (size_t i = 0; i < batches.size(); ++i) {
    auto expected = ReferenceRun(batches[i]);
    EXPECT_LT(MaxAbsDiff((*outs)[i][0], expected[0]), 1e-3);
  }
}

TEST_F(MvteeSystemTest, DirectFastPathDetectsCorruption) {
  class Corrupt : public runtime::FaultHook {
   public:
    void OnNodeComplete(const graph::Node&, Tensor& out) override {
      if (out.num_elements() > 0) out.data()[0] += 50.0f;
    }
  };
  model_ = TestModel();
  auto bundle = RunOfflineTool(model_, SmallOffline(3, 3));
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);
  host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store);
  host_->SetFaultHook("s1.v1", std::make_shared<Corrupt>());
  MonitorConfig cfg;
  cfg.direct_fastpath = true;
  auto monitor = Monitor::Create(&cpu_, cfg);
  ASSERT_TRUE(monitor.ok());
  monitor_ = std::move(*monitor);
  ASSERT_TRUE(monitor_->Initialize(bundle_,
                                   MvxSelection::PerStage(bundle_, {1, 3, 1}),
                                   *host_)
                  .ok());
  util::Rng rng(16);
  auto out = RunOne(*monitor_, 
      {Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng)});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), util::StatusCode::kDivergenceDetected);
}

TEST_F(MvteeSystemTest, UpdateStageRejectedUnderDirectRouting) {
  MonitorConfig cfg;
  cfg.direct_fastpath = true;
  Boot(3, 1, cfg);
  auto status = monitor_->UpdateStage(bundle_, *host_, 1, {"s1.v2"});
  EXPECT_EQ(status.code(), util::StatusCode::kUnimplemented);
}

// ------------------------------------------- MvxSelection::Builder

TEST(MvxSelectionBuilderTest, DefaultsToSingleVariantPerStage) {
  auto bundle = RunOfflineTool(TestModel(), SmallOffline(3, 3));
  ASSERT_TRUE(bundle.ok());
  MvxSelection sel = MvxSelection::Builder().Build(*bundle);
  ASSERT_EQ(sel.stage_variant_ids.size(), 3u);
  for (const auto& ids : sel.stage_variant_ids) EXPECT_EQ(ids.size(), 1u);
}

TEST(MvxSelectionBuilderTest, UniformCountAndExplicitIdsCompose) {
  auto bundle = RunOfflineTool(TestModel(), SmallOffline(3, 3));
  ASSERT_TRUE(bundle.ok());
  MvxSelection sel = MvxSelection::Builder()
                         .Uniform(2)
                         .Stage(1, 3)
                         .Stage(2, {"s2.v2", "s2.v0"})
                         .Build(*bundle);
  ASSERT_EQ(sel.stage_variant_ids.size(), 3u);
  EXPECT_EQ(sel.stage_variant_ids[0].size(), 2u);  // Uniform default
  EXPECT_EQ(sel.stage_variant_ids[1].size(), 3u);  // per-stage count
  EXPECT_EQ(sel.stage_variant_ids[2],
            (std::vector<std::string>{"s2.v2", "s2.v0"}));
}

TEST(MvxSelectionBuilderTest, CountsClampToPoolBounds) {
  auto bundle = RunOfflineTool(TestModel(), SmallOffline(3, 3));
  ASSERT_TRUE(bundle.ok());
  MvxSelection sel =
      MvxSelection::Builder().Stage(0, 99).Stage(1, 0).Build(*bundle);
  EXPECT_EQ(sel.stage_variant_ids[0].size(), 3u);  // clamped to pool size
  EXPECT_EQ(sel.stage_variant_ids[1].size(), 1u);  // floor of one
}

TEST(MvxSelectionBuilderTest, ExplicitIdsOverrideCount) {
  auto bundle = RunOfflineTool(TestModel(), SmallOffline(3, 3));
  ASSERT_TRUE(bundle.ok());
  MvxSelection sel = MvxSelection::Builder()
                         .Stage(1, 3)
                         .Stage(1, {"s1.v2"})
                         .Build(*bundle);
  EXPECT_EQ(sel.stage_variant_ids[1],
            (std::vector<std::string>{"s1.v2"}));
}

TEST_F(MvteeSystemTest, BuilderSelectionRunsEndToEnd) {
  model_ = TestModel();
  auto bundle = RunOfflineTool(model_, SmallOffline(3, 5));
  ASSERT_TRUE(bundle.ok());
  bundle_ = std::move(*bundle);
  host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store);
  auto monitor = Monitor::Create(&cpu_, MonitorConfig{});
  ASSERT_TRUE(monitor.ok());
  monitor_ = std::move(*monitor);
  MvxSelection sel =
      MvxSelection::Builder().Uniform(1).Stage(1, 3).Build(bundle_);
  ASSERT_TRUE(monitor_->Initialize(bundle_, sel, *host_).ok());

  util::Rng rng(20);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  auto out = monitor_->Run({{input}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto expected = ReferenceRun({input});
  EXPECT_GT(tensor::CosineSimilarity((*out)[0][0], expected[0]), 0.999);
  auto stats = monitor_->ConsumeStats();
  EXPECT_EQ(stats.checkpoints_evaluated, 1u);  // only stage 1 is MVX
  EXPECT_EQ(stats.fast_path_forwards, 2u);
}

// ---------------------------------------------- Monitor::Run options

TEST_F(MvteeSystemTest, RunRecordsPerStageMetrics) {
  Boot(2, 2, MonitorConfig{});
  const obs::RegistrySnapshot base = monitor_->metrics().Snapshot();

  util::Rng rng(17);
  std::vector<std::vector<Tensor>> batches;
  for (int i = 0; i < 2; ++i) {
    batches.push_back({Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng)});
  }
  RunStats stats;
  auto outs = monitor_->Run(batches, RunOptions{.stats = &stats});
  ASSERT_TRUE(outs.ok()) << outs.status().ToString();
  ASSERT_EQ(outs->size(), 2u);

  // The per-call stats handle reflects just this run.
  EXPECT_EQ(stats.batch_latency_us.size(), 2u);
  EXPECT_EQ(stats.checkpoints_evaluated, 4u);  // 2 stages x 2 batches
  EXPECT_GT(stats.wall_us, 0);
  EXPECT_GT(stats.bytes_sent, 0u);

  const obs::RegistrySnapshot delta =
      monitor_->metrics().Snapshot().DeltaSince(base);
  // One checkpoint-verify observation per (stage, batch).
  EXPECT_EQ(delta.histograms.at("monitor.stage0.verify_us").count, 2u);
  EXPECT_EQ(delta.histograms.at("monitor.stage1.verify_us").count, 2u);
  EXPECT_EQ(delta.counters.at("monitor.checkpoints_evaluated"), 4u);
  EXPECT_EQ(delta.counters.at("monitor.batches_completed"), 2u);
  EXPECT_EQ(delta.histograms.at("monitor.batch_latency_us").count, 2u);
  // Both stage boundaries carried payload bytes.
  EXPECT_GT(delta.counters.at("monitor.stage0.bytes"), 0u);
  EXPECT_GT(delta.counters.at("monitor.stage1.bytes"), 0u);

  // The stats handle is a snapshot, not a consume: the cumulative
  // ConsumeStats() still reports the same run.
  EXPECT_EQ(monitor_->ConsumeStats().checkpoints_evaluated, 4u);
}

TEST_F(MvteeSystemTest, RunEnforcesDeadline) {
  Boot(3, 3, MonitorConfig{});
  util::Rng rng(18);
  std::vector<std::vector<Tensor>> batches;
  for (int i = 0; i < 3; ++i) {
    batches.push_back({Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng)});
  }
  auto outs = monitor_->Run(batches, RunOptions{.deadline_us = 1});
  ASSERT_FALSE(outs.ok());
  EXPECT_EQ(outs.status().code(), util::StatusCode::kDeadlineExceeded);
}

TEST_F(MvteeSystemTest, BindingsRecordAttestation) {
  Boot(2, 2, MonitorConfig{});
  auto bindings = monitor_->bindings();
  EXPECT_EQ(bindings.size(), 4u);
  for (const auto& b : bindings) {
    EXPECT_TRUE(b.active);
    EXPECT_GT(b.enclave_report_id, 0u);  // secure channels attested
  }
}

// ---------------------------------------------------------- verify pool

TEST(VerifyPoolTest, InlineModeRunsTaskAndApplierInSubmit) {
  VerifyPool pool(0, nullptr);
  int task_runs = 0, apply_runs = 0;
  pool.Submit([&]() -> VerifyPool::Apply {
    ++task_runs;
    return [&] { ++apply_runs; };
  });
  // Zero threads degrades to synchronous execution: both closures ran
  // before Submit returned, nothing is left pending.
  EXPECT_EQ(task_runs, 1);
  EXPECT_EQ(apply_runs, 1);
  EXPECT_EQ(pool.pending(), 0u);
  EXPECT_FALSE(pool.TryPopCompleted().has_value());
}

TEST(VerifyPoolTest, ThreadedModeDefersApplierToConsumer) {
  auto waiter = std::make_shared<transport::WaitSet>();
  VerifyPool pool(2, waiter);
  std::atomic<int> task_runs{0};
  int apply_runs = 0;  // mutated only on this (consumer) thread
  const int kJobs = 16;
  for (int i = 0; i < kJobs; ++i) {
    pool.Submit([&]() -> VerifyPool::Apply {
      task_runs.fetch_add(1);
      return [&] { ++apply_runs; };
    });
  }
  // Drain: block on the waiter, then pop completed appliers.
  while (pool.pending() > 0) {
    const uint64_t epoch = waiter->Epoch();
    bool popped = false;
    while (auto apply = pool.TryPopCompleted()) {
      (*apply)();
      popped = true;
    }
    if (!popped && pool.pending() > 0) waiter->WaitFor(epoch, 100'000);
  }
  EXPECT_EQ(task_runs.load(), kJobs);
  EXPECT_EQ(apply_runs, kJobs);
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(VerifyPoolTest, DestructorDrainsSubmittedTasks) {
  // Submitted work is never dropped: the pool finishes queued tasks on
  // shutdown even if the consumer stopped popping.
  std::atomic<int> task_runs{0};
  {
    VerifyPool pool(1, nullptr);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&]() -> VerifyPool::Apply {
        task_runs.fetch_add(1);
        return [] {};
      });
    }
  }
  EXPECT_EQ(task_runs.load(), 8);
}

}  // namespace
}  // namespace mvtee::core
