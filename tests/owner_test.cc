// Tests for the model-owner provisioning protocol (Fig. 6 steps 1-3, 8),
// combined user attestation, bundle-config serialization and key
// rotation (§6.5).
#include <gtest/gtest.h>

#include <thread>

#include "core/owner.h"
#include "crypto/rand.h"
#include "graph/builder.h"


namespace mvtee::core {
namespace {

using graph::Graph;
using graph::ModelBuilder;
using graph::NodeId;
using tensor::Shape;
using tensor::Tensor;

// One-batch convenience over the unified Run() surface (replaces the
// removed RunBatch wrapper): returns the single batch's outputs.
util::Result<std::vector<Tensor>> RunOne(Monitor& m,
                                         const std::vector<Tensor>& inputs) {
  auto all = m.Run({inputs});
  if (!all.ok()) return all.status();
  return std::move((*all)[0]);
}

Graph TestModel(uint64_t seed = 5) {
  ModelBuilder b(seed);
  NodeId x = b.Input("img", Shape({1, 3, 16, 16}));
  x = b.ConvBnRelu(x, 8, 3, 1, 1);
  x = b.ConvBnRelu(x, 8, 3, 1, 1);
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Gemm(x, 10);
  b.MarkOutput(x);
  return b.Build();
}

OfflineBundle MakeBundle() {
  OfflineOptions opts;
  opts.num_partitions = 3;
  opts.partition_seed = 11;
  opts.key_seed = 12;
  opts.pool.variants_per_stage = 3;
  opts.pool.verify = false;
  auto bundle = RunOfflineTool(TestModel(), opts);
  MVTEE_CHECK(bundle.ok());
  return std::move(*bundle);
}

TEST(BundleConfigTest, SerializeRoundTrip) {
  OfflineBundle bundle = MakeBundle();
  auto config = bundle.SerializeConfig();
  auto back = OfflineBundle::DeserializeConfig(config);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_stages, bundle.num_stages);
  EXPECT_EQ(back->num_model_inputs, bundle.num_model_inputs);
  ASSERT_EQ(back->variants.size(), bundle.variants.size());
  for (size_t i = 0; i < bundle.variants.size(); ++i) {
    EXPECT_EQ(back->variants[i].variant_id, bundle.variants[i].variant_id);
    EXPECT_EQ(back->variants[i].stage, bundle.variants[i].stage);
    EXPECT_EQ(back->variants[i].variant_key, bundle.variants[i].variant_key);
    EXPECT_EQ(back->variants[i].manifest_hash,
              bundle.variants[i].manifest_hash);
  }
  ASSERT_EQ(back->stage_inputs.size(), bundle.stage_inputs.size());
  for (size_t s = 0; s < bundle.stage_inputs.size(); ++s) {
    ASSERT_EQ(back->stage_inputs[s].size(), bundle.stage_inputs[s].size());
    for (size_t j = 0; j < bundle.stage_inputs[s].size(); ++j) {
      EXPECT_EQ(back->stage_inputs[s][j].stage,
                bundle.stage_inputs[s][j].stage);
      EXPECT_EQ(back->stage_inputs[s][j].index,
                bundle.stage_inputs[s][j].index);
    }
  }
  // No store travels with the config.
  EXPECT_EQ(back->store, nullptr);
}

TEST(BundleConfigTest, RejectsCorruption) {
  OfflineBundle bundle = MakeBundle();
  auto config = bundle.SerializeConfig();
  auto bad = config;
  bad[0] ^= 0xff;
  EXPECT_FALSE(OfflineBundle::DeserializeConfig(bad).ok());
  auto truncated = config;
  truncated.resize(truncated.size() / 3);
  EXPECT_FALSE(OfflineBundle::DeserializeConfig(truncated).ok());
}

class OwnerProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bundle_ = MakeBundle();
    host_ = std::make_unique<VariantHost>(&cpu_, bundle_.store);
    auto monitor = Monitor::Create(&cpu_, MonitorConfig{});
    ASSERT_TRUE(monitor.ok());
    monitor_ = std::move(*monitor);
  }

  void TearDown() override {
    if (monitor_) (void)monitor_->Shutdown();
    if (host_) host_->JoinAll();
  }

  // Runs ServeOwner on a thread and returns the owner-side endpoint.
  transport::Endpoint StartOwnerService() {
    auto [owner_side, monitor_side] = transport::CreateChannel();
    service_ = std::thread([this, ep = std::move(monitor_side)]() mutable {
      service_status_ = ServeOwner(*monitor_, *host_, std::move(ep),
                                   5'000'000);
    });
    return std::move(owner_side);
  }

  void JoinService() {
    if (service_.joinable()) service_.join();
  }

  tee::SimulatedCpu cpu_{tee::SimulatedCpu::Options{.hardware_key_seed = 3}};
  OfflineBundle bundle_;
  std::unique_ptr<VariantHost> host_;
  std::unique_ptr<Monitor> monitor_;
  std::thread service_;
  util::Status service_status_ = util::OkStatus();
};

TEST_F(OwnerProtocolTest, FullProvisioningFlow) {
  auto endpoint = StartOwnerService();
  ModelOwner owner(bundle_);
  auto status = owner.ProvisionDeployment(
      std::move(endpoint), cpu_, monitor_->enclave().measurement(),
      MvxSelection::Uniform(bundle_, 2));
  ASSERT_TRUE(status.ok()) << status.ToString();

  // Combined attestation: 3 stages x 2 variants = 6 attested TEEs.
  auto verified =
      owner.VerifyDeployment(cpu_, host_->init_variant_measurement());
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(*verified, 6u);

  // The provisioned monitor actually serves inference.
  util::Rng rng(1);
  auto out = RunOne(*monitor_, 
      {Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng)});
  EXPECT_TRUE(out.ok()) << out.status().ToString();

  owner.Disconnect();
  JoinService();
  EXPECT_TRUE(service_status_.ok()) << service_status_.ToString();
  ASSERT_TRUE(monitor_->Shutdown().ok());
  monitor_.reset();
}

TEST_F(OwnerProtocolTest, RejectsWrongMonitorMeasurement) {
  auto endpoint = StartOwnerService();
  ModelOwner owner(bundle_);
  crypto::Sha256Digest wrong{};
  wrong[0] = 0xaa;
  auto status = owner.ProvisionDeployment(std::move(endpoint), cpu_, wrong,
                                          MvxSelection::Uniform(bundle_, 1));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kAttestationFailure);
  JoinService();
}

TEST_F(OwnerProtocolTest, RejectsForeignPlatformMonitor) {
  // A monitor on a different (attacker) platform cannot satisfy the
  // owner even if it knows the expected measurement bytes.
  tee::SimulatedCpu other_cpu{
      tee::SimulatedCpu::Options{.hardware_key_seed = 99}};
  auto endpoint = StartOwnerService();
  ModelOwner owner(bundle_);
  auto status = owner.ProvisionDeployment(
      std::move(endpoint), other_cpu, monitor_->enclave().measurement(),
      MvxSelection::Uniform(bundle_, 1));
  EXPECT_FALSE(status.ok());
  JoinService();
}

TEST_F(OwnerProtocolTest, ProvisionFailureIsReported) {
  auto endpoint = StartOwnerService();
  ModelOwner owner(bundle_);
  // Selection referencing a variant from the wrong stage.
  MvxSelection bad;
  bad.stage_variant_ids = {{"s1.v0"}, {"s1.v1"}, {"s2.v0"}};
  auto status = owner.ProvisionDeployment(
      std::move(endpoint), cpu_, monitor_->enclave().measurement(), bad);
  EXPECT_FALSE(status.ok());
  JoinService();
}

TEST(KeyRotationTest, RotatedKeysReencryptFiles) {
  OfflineBundle bundle = MakeBundle();
  const std::string id = "s0.v0";
  const auto* entry = bundle.FindVariant(id);
  ASSERT_NE(entry, nullptr);
  const util::Bytes old_variant_key = entry->variant_key;  // copy: rotation
                                                           // mutates in place
  const util::Bytes old_key =
      tee::DeriveVariantFileKey(old_variant_key, id);
  ASSERT_TRUE(bundle.store->Get(VariantGraphPath(id), old_key).ok());

  crypto::DeterministicRandom random(77);
  ASSERT_TRUE(bundle.RotateVariantKey(id, random).ok());

  // Old key no longer opens the files; the rotated key does.
  EXPECT_FALSE(bundle.store->Get(VariantGraphPath(id), old_key).ok());
  const auto* rotated = bundle.FindVariant(id);
  const util::Bytes new_key =
      tee::DeriveVariantFileKey(rotated->variant_key, id);
  EXPECT_TRUE(bundle.store->Get(VariantGraphPath(id), new_key).ok());
  EXPECT_TRUE(bundle.store->Get(VariantManifestPath(id), new_key).ok());
  EXPECT_TRUE(bundle.store->Get(VariantSpecPath(id), new_key).ok());
  EXPECT_NE(rotated->variant_key, old_variant_key);
}

TEST(KeyRotationTest, DeploymentWorksAfterRotation) {
  OfflineBundle bundle = MakeBundle();
  crypto::DeterministicRandom random(78);
  for (const std::string id : {"s0.v0", "s1.v0", "s2.v0"}) {
    ASSERT_TRUE(bundle.RotateVariantKey(id, random).ok());
  }
  tee::SimulatedCpu cpu{tee::SimulatedCpu::Options{.hardware_key_seed = 4}};
  VariantHost host(&cpu, bundle.store);
  auto monitor = Monitor::Create(&cpu, MonitorConfig{});
  ASSERT_TRUE(monitor.ok());
  ASSERT_TRUE(
      (*monitor)
          ->Initialize(bundle, MvxSelection::Uniform(bundle, 1), host)
          .ok());
  util::Rng rng(2);
  auto out = RunOne(**monitor, 
      {Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng)});
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE((*monitor)->Shutdown().ok());
  host.JoinAll();
}

TEST(KeyRotationTest, StaleBundleFailsAfterRotation) {
  // A monitor provisioned with PRE-rotation keys must fail bootstrap
  // (the variant cannot decrypt its files with the stale key).
  OfflineBundle bundle = MakeBundle();
  OfflineBundle stale = bundle;  // copies entries incl. old keys
  stale.store = bundle.store;    // same host storage
  crypto::DeterministicRandom random(79);
  ASSERT_TRUE(bundle.RotateVariantKey("s0.v0", random).ok());

  tee::SimulatedCpu cpu{tee::SimulatedCpu::Options{.hardware_key_seed = 6}};
  VariantHost host(&cpu, bundle.store);
  auto monitor = Monitor::Create(&cpu, MonitorConfig{});
  ASSERT_TRUE(monitor.ok());
  auto status = (*monitor)->Initialize(
      stale, MvxSelection::Uniform(stale, 1), host);
  EXPECT_FALSE(status.ok());
  (void)(*monitor)->Shutdown();
  host.JoinAll();
}

TEST(MessagesTest, ProvisionRoundTrip) {
  ProvisionMsg msg;
  msg.nonce = util::Bytes(32, 0x42);
  msg.bundle_config = util::ToBytes("config-bytes");
  msg.stage_variant_ids = {{"s0.v0", "s0.v1"}, {"s1.v2"}};
  auto back = DecodeProvision(EncodeProvision(msg));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->nonce, msg.nonce);
  EXPECT_EQ(back->bundle_config, msg.bundle_config);
  EXPECT_EQ(back->stage_variant_ids, msg.stage_variant_ids);
}

TEST(MessagesTest, ProvisionResultRoundTrip) {
  ProvisionResultMsg msg;
  msg.nonce = util::Bytes(32, 0x43);
  msg.ok = true;
  msg.bound_variant_ids = {"s0.v0", "s1.v0"};
  auto back = DecodeProvisionResult(EncodeProvisionResult(msg));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ok);
  EXPECT_EQ(back->nonce, msg.nonce);
  EXPECT_EQ(back->bound_variant_ids, msg.bound_variant_ids);
}

TEST(MessagesTest, AttestRoundTrips) {
  AttestQueryMsg q;
  q.nonce = util::Bytes(16, 0x01);
  auto back_q = DecodeAttestQuery(EncodeAttestQuery(q));
  ASSERT_TRUE(back_q.ok());
  EXPECT_EQ(back_q->nonce, q.nonce);

  AttestReplyMsg r;
  r.nonce = q.nonce;
  r.variant_reports = {util::Bytes(10, 2), util::Bytes(20, 3)};
  auto back_r = DecodeAttestReply(EncodeAttestReply(r));
  ASSERT_TRUE(back_r.ok());
  EXPECT_EQ(back_r->variant_reports, r.variant_reports);
}

}  // namespace
}  // namespace mvtee::core
