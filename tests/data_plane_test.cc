// Zero-copy data-plane integration tests (DESIGN.md §10): single-pass
// message encoding into pooled buffers, in-place record opening, tensor
// views aliasing received frames, and the pool-allocation budget of a
// monitor -> variant -> monitor round trip.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/messages.h"
#include "tee/enclave.h"
#include "tensor/tensor.h"
#include "transport/channel.h"
#include "transport/msg_channel.h"
#include "transport/secure_channel.h"
#include "util/buffer_pool.h"
#include "util/dataplane_stats.h"
#include "util/rng.h"

namespace mvtee::core {
namespace {

using tensor::Shape;
using tensor::Tensor;
using transport::CreateChannel;
using transport::InFrame;
using transport::MsgChannel;
using transport::SecureChannel;
using transport::SecureMsgChannel;
using util::Bytes;
using util::ToBytes;

InferMsg MakeInfer(uint64_t batch_id) {
  util::Rng rng(batch_id + 17);
  InferMsg msg;
  msg.batch_id = batch_id;
  msg.vtime_us = 1234;
  // Odd element counts so the per-tensor alignment padding actually
  // varies from tensor to tensor.
  for (uint32_t slot : {0u, 1u, 2u}) {
    msg.slots.push_back(slot);
    msg.inputs.push_back(
        Tensor::RandomUniform(Shape({3, static_cast<int64_t>(5 + slot)}), rng));
  }
  return msg;
}

TEST(EncodedSizeTest, MatchesEncodedFrameForEveryType) {
  const InferMsg infer = MakeInfer(7);
  EXPECT_EQ(EncodeInfer(infer).size(), EncodedSize(infer));

  InferResultMsg result;
  result.batch_id = 9;
  result.ok = true;
  result.outputs = infer.inputs;
  result.error = "partial";
  EXPECT_EQ(EncodeInferResult(result).size(), EncodedSize(result));

  StageDataMsg stage;
  stage.batch_id = 3;
  stage.slots = infer.slots;
  stage.tensors = infer.inputs;
  EXPECT_EQ(EncodeStageData(stage).size(), EncodedSize(stage));

  AssignIdentityMsg assign{.variant_id = "v0", .variant_key = Bytes(32, 1)};
  EXPECT_EQ(EncodeAssignIdentity(assign).size(), EncodedSize(assign));

  IdentityAckMsg ack{.variant_id = "v0", .ok = true, .error = "e"};
  EXPECT_EQ(EncodeIdentityAck(ack).size(), EncodedSize(ack));

  EXPECT_EQ(EncodeShutdown().size(), EncodedSizeShutdown());

  SetupRoutesMsg routes;
  routes.upstream.push_back({.pipe_id = 5});
  routes.downstream.push_back({.pipe_id = 6, .output_to_slot = {{0, 1}, {1, 0}}});
  EXPECT_EQ(EncodeSetupRoutes(routes).size(), EncodedSize(routes));

  RoutesAckMsg rack{.ok = false, .error = "nope"};
  EXPECT_EQ(EncodeRoutesAck(rack).size(), EncodedSize(rack));

  ProvisionMsg prov;
  prov.nonce = Bytes(16, 2);
  prov.bundle_config = Bytes(100, 3);
  prov.stage_variant_ids = {{"a", "bb"}, {"ccc"}};
  EXPECT_EQ(EncodeProvision(prov).size(), EncodedSize(prov));

  ProvisionResultMsg prov_result;
  prov_result.nonce = Bytes(16, 2);
  prov_result.ok = true;
  prov_result.bound_variant_ids = {"a", "bb"};
  EXPECT_EQ(EncodeProvisionResult(prov_result).size(),
            EncodedSize(prov_result));

  AttestQueryMsg query{.nonce = Bytes(24, 4)};
  EXPECT_EQ(EncodeAttestQuery(query).size(), EncodedSize(query));

  AttestReplyMsg reply;
  reply.nonce = Bytes(24, 4);
  reply.variant_reports = {Bytes(80, 5), Bytes(81, 6)};
  EXPECT_EQ(EncodeAttestReply(reply).size(), EncodedSize(reply));
}

TEST(EncodedSizeTest, PadAlignedContainerRoundTrips) {
  const InferMsg msg = MakeInfer(11);
  const Bytes frame = EncodeInfer(msg);
  auto decoded = DecodeInfer(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->batch_id, msg.batch_id);
  EXPECT_EQ(decoded->slots, msg.slots);
  ASSERT_EQ(decoded->inputs.size(), msg.inputs.size());
  for (size_t i = 0; i < msg.inputs.size(); ++i) {
    EXPECT_EQ(decoded->inputs[i], msg.inputs[i]) << i;
  }
  // PatchVtime's fixed offset is unaffected by the tensor container.
  Bytes patched = frame;
  PatchVtime(patched, 0xdeadbeef);
  auto repatched = DecodeInfer(patched);
  ASSERT_TRUE(repatched.ok());
  EXPECT_EQ(repatched->vtime_us, 0xdeadbeefu);
}

TEST(DataPlaneTest, PooledDecodeAliasesFrameBuffer) {
  const InferMsg msg = MakeInfer(23);
  InFrame frame = InFrame::Adopt(EncodeInfer(msg));
  const uint8_t* lo = frame.span().data();
  const uint8_t* hi = lo + frame.span().size();
  auto decoded = DecodeInfer(frame);
  ASSERT_TRUE(decoded.ok());
  for (size_t i = 0; i < decoded->inputs.size(); ++i) {
    const Tensor& t = decoded->inputs[i];
    EXPECT_TRUE(t.is_view()) << i;
    const auto* p = reinterpret_cast<const uint8_t*>(t.data());
    EXPECT_GE(p, lo) << i;
    EXPECT_LE(p + t.byte_size(), hi) << i;
    EXPECT_EQ(t, msg.inputs[i]) << i;
  }
  // The views pin the buffer: dropping the frame must not invalidate
  // the decoded tensors.
  frame = InFrame();
  for (size_t i = 0; i < decoded->inputs.size(); ++i) {
    EXPECT_EQ(decoded->inputs[i], msg.inputs[i]) << i;
  }
}

// ------------------------------------------------- secure-channel round trip

class DataPlaneChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto monitor = cpu_.LaunchEnclave(tee::TeeType::kSgx1,
                                      ToBytes("monitor-code"),
                                      tee::MonitorManifest(), 64);
    auto variant = cpu_.LaunchEnclave(tee::TeeType::kSgx2,
                                      ToBytes("variant-code"),
                                      tee::InitVariantManifest(), 1024);
    ASSERT_TRUE(monitor.ok() && variant.ok());
    monitor_ = std::move(*monitor);
    variant_ = std::move(*variant);

    auto [a, b] = CreateChannel();
    util::Result<std::unique_ptr<SecureChannel>> client(
        util::Internal("unset"));
    std::thread client_thread([&, ep = std::move(a)]() mutable {
      client = SecureChannel::Handshake(
          std::move(ep), SecureChannel::Role::kClient, *monitor_,
          transport::AnyAttestedPeer(cpu_), 1'000'000);
    });
    auto server = SecureChannel::Handshake(
        std::move(b), SecureChannel::Role::kServer, *variant_,
        transport::AnyAttestedPeer(cpu_), 1'000'000);
    client_thread.join();
    ASSERT_TRUE(client.ok() && server.ok());
    monitor_ch_ = std::make_unique<SecureMsgChannel>(std::move(*client));
    variant_ch_ = std::make_unique<SecureMsgChannel>(std::move(*server));
  }

  tee::SimulatedCpu cpu_{tee::SimulatedCpu::Options{.hardware_key_seed = 7}};
  std::unique_ptr<tee::Enclave> monitor_;
  std::unique_ptr<tee::Enclave> variant_;
  std::unique_ptr<MsgChannel> monitor_ch_;
  std::unique_ptr<MsgChannel> variant_ch_;
};

TEST_F(DataPlaneChannelTest, SealedRoundTripYieldsAlignedViews) {
  const InferMsg msg = MakeInfer(42);
  const Bytes header = EncodeTraceContext({.trace_id = 77, .span_id = 3});
  ASSERT_TRUE(SendFrame(*monitor_ch_, msg, header).ok());

  Bytes got_header;
  auto frame = variant_ch_->RecvPooled(1'000'000, &got_header);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(got_header, header);
  auto decoded = DecodeInfer(*frame);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->inputs.size(), msg.inputs.size());
  for (size_t i = 0; i < msg.inputs.size(); ++i) {
    // The 16-byte trace header keeps the frame 4-aligned inside the
    // record, so every tensor decodes as an aliasing view.
    EXPECT_TRUE(decoded->inputs[i].is_view()) << i;
    EXPECT_EQ(decoded->inputs[i], msg.inputs[i]) << i;
  }
}

TEST_F(DataPlaneChannelTest, RoundTripStaysWithinPoolBudget) {
  util::BufferPool& pool = util::BufferPool::Default();
  // Prime both directions so steady-state reuse (not cold-pool misses)
  // is what gets measured.
  for (int warm = 0; warm < 2; ++warm) {
    ASSERT_TRUE(SendFrame(*monitor_ch_, MakeInfer(1), {}).ok());
    auto f = variant_ch_->RecvPooled(1'000'000);
    ASSERT_TRUE(f.ok());
    InferResultMsg r;
    r.ok = true;
    ASSERT_TRUE(SendFrame(*variant_ch_, r, {}).ok());
    ASSERT_TRUE(monitor_ch_->RecvPooled(1'000'000).ok());
  }

  const InferMsg msg = MakeInfer(2);
  const uint64_t acquires0 = pool.total_acquires();
  const uint64_t copied0 = util::DataPlaneBytesCopied();

  ASSERT_TRUE(SendFrame(*monitor_ch_, msg, {}).ok());
  auto frame = variant_ch_->RecvPooled(1'000'000);
  ASSERT_TRUE(frame.ok());
  auto inbound = DecodeInfer(*frame);
  ASSERT_TRUE(inbound.ok());

  InferResultMsg result;
  result.batch_id = inbound->batch_id;
  result.ok = true;
  result.outputs = std::move(inbound->inputs);  // echo the views back
  ASSERT_TRUE(SendFrame(*variant_ch_, result, {}).ok());
  auto back = monitor_ch_->RecvPooled(1'000'000);
  ASSERT_TRUE(back.ok());
  auto final_msg = DecodeInferResult(*back);
  ASSERT_TRUE(final_msg.ok());
  ASSERT_EQ(final_msg->outputs.size(), msg.inputs.size());
  for (size_t i = 0; i < msg.inputs.size(); ++i) {
    EXPECT_EQ(final_msg->outputs[i], msg.inputs[i]) << i;
  }

  // The whole monitor -> variant -> monitor trip uses one pooled wire
  // buffer per direction: well under the two-allocations-per-tensor
  // regression budget.
  const uint64_t acquires = pool.total_acquires() - acquires0;
  EXPECT_LE(acquires, 2u * msg.inputs.size());
  EXPECT_EQ(acquires, 2u);
  // And the only data-plane copies are the unavoidable payload writes
  // into the two wire buffers (plus nothing per-hop): strictly fewer
  // than the 2x-per-tensor legacy floor.
  uint64_t payload_bytes = 0;
  for (const auto& t : msg.inputs) payload_bytes += t.byte_size();
  const uint64_t copied = util::DataPlaneBytesCopied() - copied0;
  EXPECT_LE(copied, 2 * payload_bytes + 1024);
}

}  // namespace
}  // namespace mvtee::core
