#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>

#include "graph/builder.h"
#include "graph/model_zoo.h"
#include "runtime/executor.h"
#include "runtime/gemm.h"
#include "runtime/kernels.h"
#include "runtime/pack_cache.h"
#include "util/buffer_pool.h"
#include "util/cpu_features.h"
#include "util/rng.h"

namespace mvtee::runtime {
namespace {

using graph::Graph;
using graph::ModelBuilder;
using graph::NodeId;
using tensor::AllClose;
using tensor::CosineSimilarity;
using tensor::MaxAbsDiff;
using tensor::Shape;
using tensor::Tensor;

// ------------------------------------------------------------------- GEMM

class GemmBackendTest : public ::testing::TestWithParam<GemmBackend> {};

TEST_P(GemmBackendTest, SmallKnownProduct) {
  // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> C = [[19,22],[43,50]]
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  float c[4] = {};
  Gemm(GetParam(), a, b, c, 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST_P(GemmBackendTest, IdentityMatrix) {
  const int64_t n = 17;
  std::vector<float> eye(n * n, 0.0f), x(n * n), out(n * n);
  for (int64_t i = 0; i < n; ++i) eye[i * n + i] = 1.0f;
  util::Rng rng(3);
  for (auto& v : x) v = rng.UniformFloat(-1, 1);
  Gemm(GetParam(), eye.data(), x.data(), out.data(), n, n, n);
  for (int64_t i = 0; i < n * n; ++i) EXPECT_FLOAT_EQ(out[i], x[i]);
}

TEST_P(GemmBackendTest, NonSquareAndOddSizes) {
  // Verify against naive for irregular shapes (exercises tile edges).
  for (auto [m, n, k] : std::vector<std::tuple<int, int, int>>{
           {1, 1, 1}, {3, 5, 7}, {65, 63, 66}, {128, 1, 130}}) {
    std::vector<float> a(m * k), b(k * n), c(m * n), ref(m * n);
    util::Rng rng(m * 1000 + n * 100 + k);
    for (auto& v : a) v = rng.UniformFloat(-1, 1);
    for (auto& v : b) v = rng.UniformFloat(-1, 1);
    Gemm(GetParam(), a.data(), b.data(), c.data(), m, n, k);
    Gemm(GemmBackend::kNaive, a.data(), b.data(), ref.data(), m, n, k);
    for (int i = 0; i < m * n; ++i) {
      EXPECT_NEAR(c[i], ref[i], 1e-4) << "backend "
                                      << GemmBackendName(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, GemmBackendTest,
                         ::testing::Values(GemmBackend::kNaive,
                                           GemmBackend::kBlocked,
                                           GemmBackend::kTransposed,
                                           GemmBackend::kAvx2),
                         [](const auto& info) {
                           return std::string(GemmBackendName(info.param));
                         });

TEST(GemmAvx2Test, DispatchPathsAreBitwiseIdentical) {
  // The whole point of the scalar fallback: MVTEE_SIMD=0 (or a host
  // without AVX2) must produce the exact same bits as the vector
  // kernel, so dispatch is a speed decision and never a diversity axis.
  util::Rng rng(0xa2f);
  for (auto [m, n, k] : std::vector<std::tuple<int, int, int>>{
           {3, 5, 7}, {6, 16, 4}, {17, 16, 9}, {65, 63, 66}, {64, 48, 32}}) {
    std::vector<float> a(static_cast<size_t>(m) * k),
        b(static_cast<size_t>(k) * n);
    for (auto& v : a) v = rng.UniformFloat(-1, 1);
    for (auto& v : b) v = rng.UniformFloat(-1, 1);
    std::vector<float> fast(static_cast<size_t>(m) * n, -1.0f);
    std::vector<float> scalar(static_cast<size_t>(m) * n, 1.0f);
    Gemm(GemmBackend::kAvx2, a.data(), b.data(), fast.data(), m, n, k);
    {
      util::ScopedForceScalar force_scalar;
      ASSERT_FALSE(GemmAvx2Accelerated());
      Gemm(GemmBackend::kAvx2, a.data(), b.data(), scalar.data(), m, n, k);
    }
    ASSERT_EQ(std::memcmp(fast.data(), scalar.data(),
                          fast.size() * sizeof(float)),
              0)
        << m << "x" << n << "x" << k;
  }
}

TEST(GemmAvx2Test, ParallelBitwiseIdenticalToSerial) {
  util::Rng rng(0x517);
  util::ThreadPool pool(4);
  for (auto [m, n, k] : std::vector<std::tuple<int, int, int>>{
           {128, 128, 128}, {200, 96, 160}, {257, 129, 70}}) {
    std::vector<float> a(static_cast<size_t>(m) * k),
        b(static_cast<size_t>(k) * n);
    for (auto& v : a) v = rng.UniformFloat(-0.5f, 0.5f);
    for (auto& v : b) v = rng.UniformFloat(-0.5f, 0.5f);
    std::vector<float> serial(static_cast<size_t>(m) * n);
    std::vector<float> parallel(static_cast<size_t>(m) * n);
    Gemm(GemmBackend::kAvx2, a.data(), b.data(), serial.data(), m, n, k,
         nullptr);
    Gemm(GemmBackend::kAvx2, a.data(), b.data(), parallel.data(), m, n, k,
         &pool);
    ASSERT_EQ(std::memcmp(serial.data(), parallel.data(),
                          serial.size() * sizeof(float)),
              0)
        << m << "x" << n << "x" << k;
  }
}

TEST(GemmAvx2Test, CloseToNaiveButDistinctRoundingProfile) {
  // kAvx2 is the fourth diversity backend: numerically close to naive
  // (threshold voting tolerates it) while its FMA accumulation gives a
  // different bit pattern on deep reductions.
  const int m = 64, n = 64, k = 512;
  util::Rng rng(0xbeef);
  std::vector<float> a(static_cast<size_t>(m) * k),
      b(static_cast<size_t>(k) * n);
  for (auto& v : a) v = rng.UniformFloat(-1, 1);
  for (auto& v : b) v = rng.UniformFloat(-1, 1);
  std::vector<float> avx2(static_cast<size_t>(m) * n),
      naive(static_cast<size_t>(m) * n);
  Gemm(GemmBackend::kAvx2, a.data(), b.data(), avx2.data(), m, n, k);
  Gemm(GemmBackend::kNaive, a.data(), b.data(), naive.data(), m, n, k);
  float max_diff = 0;
  for (size_t i = 0; i < avx2.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(avx2[i] - naive[i]));
  }
  EXPECT_LT(max_diff, 1e-3f);
  EXPECT_NE(avx2, naive);  // fused rounding differs from two-step
}

TEST(GemmParallelTest, BitwiseIdenticalToSerial) {
  util::Rng rng(0x6e3a);
  util::ThreadPool pool(4);
  // Sizes straddling the sharding threshold, including non-multiples of
  // the 64-row tile; each output row's accumulation order is shard-
  // independent, so parallel results must match serial ones bit for bit.
  const int64_t sizes[][3] = {
      {65, 64, 64}, {128, 128, 128}, {200, 96, 160}, {257, 129, 70}};
  for (const auto& [m, n, k] : sizes) {
    std::vector<float> a(static_cast<size_t>(m * k)),
        b(static_cast<size_t>(k * n));
    for (auto& v : a) v = rng.UniformFloat(-0.5f, 0.5f);
    for (auto& v : b) v = rng.UniformFloat(-0.5f, 0.5f);
    std::vector<float> serial(static_cast<size_t>(m * n), -1.0f);
    std::vector<float> parallel(static_cast<size_t>(m * n), 1.0f);
    Gemm(GemmBackend::kBlocked, a.data(), b.data(), serial.data(), m, n, k,
         nullptr);
    Gemm(GemmBackend::kBlocked, a.data(), b.data(), parallel.data(), m, n, k,
         &pool);
    ASSERT_EQ(std::memcmp(serial.data(), parallel.data(),
                          serial.size() * sizeof(float)),
              0)
        << m << "x" << n << "x" << k;
  }
}

TEST(GemmParallelTest, SharedPoolDefaultMatchesSerial) {
  util::Rng rng(0x77);
  const int64_t m = 192, n = 80, k = 300;  // above the fan-out threshold
  std::vector<float> a(static_cast<size_t>(m * k)),
      b(static_cast<size_t>(k * n));
  for (auto& v : a) v = rng.UniformFloat(-0.5f, 0.5f);
  for (auto& v : b) v = rng.UniformFloat(-0.5f, 0.5f);
  std::vector<float> serial(static_cast<size_t>(m * n));
  std::vector<float> pooled(static_cast<size_t>(m * n));
  Gemm(GemmBackend::kBlocked, a.data(), b.data(), serial.data(), m, n, k,
       nullptr);
  Gemm(GemmBackend::kBlocked, a.data(), b.data(), pooled.data(), m, n, k);
  EXPECT_EQ(std::memcmp(serial.data(), pooled.data(),
                        serial.size() * sizeof(float)),
            0);
}

TEST(GemmCheckedTest, MatchesUnchecked) {
  std::vector<float> a(6), b(6), c1(4), c2(4);
  util::Rng rng(1);
  for (auto& v : a) v = rng.UniformFloat(-1, 1);
  for (auto& v : b) v = rng.UniformFloat(-1, 1);
  Gemm(GemmBackend::kBlocked, a.data(), b.data(), c1.data(), 2, 2, 3);
  GemmChecked(GemmBackend::kBlocked, a.data(), a.size(), b.data(), b.size(),
              c2.data(), c2.size(), 2, 2, 3);
  EXPECT_EQ(c1, c2);
}

TEST(GemmCheckedDeathTest, DimensionProductOverflowAborts) {
  // Regression: m*k near INT64_MAX used to wrap around in the bounds
  // validation, so a huge bogus shape could pass the size checks and
  // index out of bounds. The overflow itself must now trip the check.
  float a[1] = {0}, b[1] = {0}, c[1] = {0};
  const int64_t big = (int64_t{1} << 62) + 11;  // big * 4 wraps int64
  EXPECT_DEATH(GemmChecked(GemmBackend::kNaive, a, 1, b, 1, c, 1,
                           /*m=*/big, /*n=*/1, /*k=*/4),
               "mul_overflow");
  EXPECT_DEATH(GemmChecked(GemmBackend::kNaive, a, 1, b, 1, c, 1,
                           /*m=*/1, /*n=*/big, /*k=*/4),
               "mul_overflow");
}

// ---------------------------------------------------------------- kernels

TEST(KernelTest, Conv1x1IsChannelMix) {
  // 1x1 conv = per-pixel linear map over channels.
  Tensor x(Shape({1, 2, 2, 2}), {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor w(Shape({1, 2, 1, 1}), {2.0f, 0.5f});  // out = 2*c0 + 0.5*c1
  ConvParams p;
  auto out = Conv2d(x, w, nullptr, p, ConvAlgo::kDirect, GemmBackend::kNaive);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0), 2 * 1 + 0.5f * 5);
  EXPECT_FLOAT_EQ(out.at(3), 2 * 4 + 0.5f * 8);
}

TEST(KernelTest, Conv3x3KnownValues) {
  // 3x3 all-ones kernel over a 3x3 all-ones image, pad 1: counts of the
  // overlapping window = [[4,6,4],[6,9,6],[4,6,4]].
  Tensor x = Tensor::Full(Shape({1, 1, 3, 3}), 1.0f);
  Tensor w = Tensor::Full(Shape({1, 1, 3, 3}), 1.0f);
  ConvParams p;
  p.padding = 1;
  auto out = Conv2d(x, w, nullptr, p, ConvAlgo::kDirect, GemmBackend::kNaive);
  const float expected[] = {4, 6, 4, 6, 9, 6, 4, 6, 4};
  for (int i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(out.at(i), expected[i]);
}

TEST(KernelTest, ConvBiasApplied) {
  Tensor x = Tensor::Full(Shape({1, 1, 2, 2}), 0.0f);
  Tensor w = Tensor::Full(Shape({3, 1, 1, 1}), 1.0f);
  Tensor b(Shape({3}), {1.0f, 2.0f, 3.0f});
  ConvParams p;
  auto out = Conv2d(x, w, &b, p, ConvAlgo::kDirect, GemmBackend::kNaive);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 2, 0, 0), 3.0f);
}

TEST(KernelTest, ConvDirectMatchesIm2col) {
  util::Rng rng(11);
  for (int64_t groups : {int64_t{1}, int64_t{4}}) {
    Tensor x = Tensor::RandomUniform(Shape({2, 8, 9, 9}), rng);
    Tensor w = Tensor::RandomUniform(Shape({8, 8 / groups, 3, 3}), rng);
    Tensor b = Tensor::RandomUniform(Shape({8}), rng);
    ConvParams p;
    p.stride = 2;
    p.padding = 1;
    p.groups = groups;
    auto direct =
        Conv2d(x, w, &b, p, ConvAlgo::kDirect, GemmBackend::kNaive);
    for (GemmBackend backend : {GemmBackend::kNaive, GemmBackend::kBlocked,
                                GemmBackend::kTransposed}) {
      auto gemm = Conv2d(x, w, &b, p, ConvAlgo::kIm2col, backend);
      EXPECT_EQ(gemm.shape(), direct.shape());
      EXPECT_LT(MaxAbsDiff(direct, gemm), 1e-4);
    }
  }
}

TEST(KernelTest, DepthwiseConv) {
  // groups == channels: each output channel sees only its own input.
  Tensor x(Shape({1, 2, 2, 2}), {1, 1, 1, 1, 2, 2, 2, 2});
  Tensor w(Shape({2, 1, 1, 1}), {3.0f, 5.0f});
  ConvParams p;
  p.groups = 2;
  auto out = Conv2d(x, w, nullptr, p, ConvAlgo::kDirect, GemmBackend::kNaive);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 0, 0), 10.0f);
}

TEST(KernelTest, FullyConnectedKnown) {
  Tensor x(Shape({1, 3}), {1, 2, 3});
  Tensor w(Shape({2, 3}), {1, 0, 0, 0, 1, 1});  // y0 = x0, y1 = x1+x2
  Tensor b(Shape({2}), {10, 20});
  auto out = FullyConnected(x, w, &b, GemmBackend::kNaive);
  EXPECT_FLOAT_EQ(out.at(0), 11);
  EXPECT_FLOAT_EQ(out.at(1), 25);
}

TEST(KernelTest, Activations) {
  Tensor x(Shape({5}), {-2, -0.5f, 0, 1, 8});
  auto relu = Relu(x);
  EXPECT_FLOAT_EQ(relu.at(0), 0);
  EXPECT_FLOAT_EQ(relu.at(3), 1);
  auto relu6 = Relu6(x);
  EXPECT_FLOAT_EQ(relu6.at(4), 6);
  auto sig = Sigmoid(x);
  EXPECT_NEAR(sig.at(2), 0.5, 1e-6);
  EXPECT_GT(sig.at(4), 0.999);
  auto hs = HardSwish(x);
  EXPECT_FLOAT_EQ(hs.at(0), -2 * 1.0f / 6.0f);  // relu6(-2+3)=1
  EXPECT_FLOAT_EQ(hs.at(4), 8);                 // saturated: 8*6/6
  auto th = Tanh(x);
  EXPECT_NEAR(th.at(2), 0.0, 1e-7);
}

TEST(KernelTest, MaxPoolKnown) {
  Tensor x(Shape({1, 1, 4, 4}),
           {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  auto out = MaxPool(x, 2, 2, 0);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0), 6);
  EXPECT_FLOAT_EQ(out.at(1), 8);
  EXPECT_FLOAT_EQ(out.at(2), 14);
  EXPECT_FLOAT_EQ(out.at(3), 16);
}

TEST(KernelTest, AvgPoolKnown) {
  Tensor x(Shape({1, 1, 2, 2}), {1, 3, 5, 7});
  auto out = AvgPool(x, 2, 2, 0);
  EXPECT_FLOAT_EQ(out.at(0), 4.0f);
}

TEST(KernelTest, GlobalAvgPool) {
  Tensor x(Shape({1, 2, 2, 2}), {1, 2, 3, 4, 10, 20, 30, 40});
  auto out = GlobalAvgPool(x);
  EXPECT_EQ(out.shape(), Shape({1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(out.at(0), 2.5f);
  EXPECT_FLOAT_EQ(out.at(1), 25.0f);
}

TEST(KernelTest, BatchNormIdentityParams) {
  util::Rng rng(5);
  Tensor x = Tensor::RandomUniform(Shape({1, 3, 4, 4}), rng);
  Tensor ones = Tensor::Full(Shape({3}), 1.0f);
  Tensor zeros = Tensor::Zeros(Shape({3}));
  auto out = BatchNorm(x, ones, zeros, zeros, ones, 0.0f);
  EXPECT_LT(MaxAbsDiff(x, out), 1e-6);
}

TEST(KernelTest, BatchNormNormalizes) {
  Tensor x(Shape({1, 1, 1, 2}), {4.0f, 8.0f});
  Tensor scale = Tensor::Full(Shape({1}), 2.0f);
  Tensor bias = Tensor::Full(Shape({1}), 1.0f);
  Tensor mean = Tensor::Full(Shape({1}), 6.0f);
  Tensor var = Tensor::Full(Shape({1}), 4.0f);  // stddev 2
  auto out = BatchNorm(x, scale, bias, mean, var, 0.0f);
  EXPECT_NEAR(out.at(0), 2.0f * (4 - 6) / 2 + 1, 1e-5);  // -1
  EXPECT_NEAR(out.at(1), 2.0f * (8 - 6) / 2 + 1, 1e-5);  // 3
}

TEST(KernelTest, MulChannelBroadcast) {
  Tensor a(Shape({1, 2, 1, 2}), {1, 2, 3, 4});
  Tensor gate(Shape({1, 2, 1, 1}), {10.0f, 100.0f});
  auto out = Mul(a, gate);
  EXPECT_FLOAT_EQ(out.at(0), 10);
  EXPECT_FLOAT_EQ(out.at(1), 20);
  EXPECT_FLOAT_EQ(out.at(2), 300);
  EXPECT_FLOAT_EQ(out.at(3), 400);
}

TEST(KernelTest, ConcatChannels) {
  Tensor a = Tensor::Full(Shape({1, 1, 2, 2}), 1.0f);
  Tensor b = Tensor::Full(Shape({1, 2, 2, 2}), 2.0f);
  auto out = Concat({&a, &b});
  EXPECT_EQ(out.shape(), Shape({1, 3, 2, 2}));
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 1, 1), 2.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 2, 0, 1), 2.0f);
}

TEST(KernelTest, SoftmaxRowsSumToOne) {
  Tensor x(Shape({2, 3}), {1, 2, 3, -1, 0, 1});
  auto out = Softmax(x);
  for (int64_t r = 0; r < 2; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < 3; ++c) sum += out.at2(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
  // Monotone in logits.
  EXPECT_GT(out.at2(0, 2), out.at2(0, 1));
}

TEST(KernelTest, SoftmaxNumericallyStable) {
  Tensor x(Shape({1, 2}), {1000.0f, 1001.0f});
  auto out = Softmax(x);
  EXPECT_FALSE(tensor::HasNonFinite(out));
  EXPECT_NEAR(out.at(0) + out.at(1), 1.0, 1e-6);
}

// --------------------------------------------------------------- executor

Graph SmallConvNet(uint64_t seed = 9) {
  ModelBuilder b(seed);
  NodeId x = b.Input("img", Shape({1, 3, 16, 16}));
  x = b.ConvBnRelu(x, 8, 3, 1, 1);
  NodeId branch = b.Conv(x, 8, 3, 1, 1);
  x = b.Relu(b.Add(b.BatchNorm(branch), x));
  x = b.MaxPool(x, 2, 2);
  x = b.SqueezeExcite(x);
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Gemm(x, 10);
  x = b.Softmax(x);
  b.MarkOutput(x);
  return b.Build();
}

TEST(ExecutorTest, RunsSmallNet) {
  Graph g = SmallConvNet();
  auto exec = Executor::Create(g, ReferenceExecutorConfig());
  ASSERT_TRUE(exec.ok());
  util::Rng rng(1);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  auto out = (*exec)->Run({input});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].shape(), Shape({1, 10}));
  EXPECT_FALSE(tensor::HasNonFinite((*out)[0]));
}

TEST(ExecutorTest, RejectsWrongInputCount) {
  Graph g = SmallConvNet();
  auto exec = Executor::Create(g, ReferenceExecutorConfig());
  ASSERT_TRUE(exec.ok());
  EXPECT_FALSE((*exec)->Run({}).ok());
}

TEST(ExecutorTest, RejectsWrongInputShape) {
  Graph g = SmallConvNet();
  auto exec = Executor::Create(g, ReferenceExecutorConfig());
  ASSERT_TRUE(exec.ok());
  util::Rng rng(1);
  auto bad = Tensor::RandomUniform(Shape({1, 3, 8, 8}), rng);
  EXPECT_FALSE((*exec)->Run({bad}).ok());
}

TEST(ExecutorTest, AllPresetsAgreeNumerically) {
  Graph g = SmallConvNet();
  util::Rng rng(2);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);

  std::vector<Tensor> results;
  for (const auto& cfg :
       {ReferenceExecutorConfig(), OrtLikeExecutorConfig(),
        TvmLikeExecutorConfig(), HardenedExecutorConfig(),
        MklLikeExecutorConfig()}) {
    auto exec = Executor::Create(g, cfg);
    ASSERT_TRUE(exec.ok());
    auto out = (*exec)->Run({input});
    ASSERT_TRUE(out.ok()) << cfg.name << ": " << out.status().ToString();
    results.push_back((*out)[0]);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GT(CosineSimilarity(results[0], results[i]), 0.9999);
    EXPECT_LT(MaxAbsDiff(results[0], results[i]), 1e-3);
  }
}

TEST(ExecutorTest, DiversifiedBackendsDifferBitwise) {
  // The whole premise of threshold-based checking: different backends
  // produce close-but-not-identical floats on deep nets.
  Graph g = SmallConvNet();
  util::Rng rng(2);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  auto ref = Executor::Create(g, ReferenceExecutorConfig());
  auto tvm = Executor::Create(g, TvmLikeExecutorConfig());
  ASSERT_TRUE(ref.ok() && tvm.ok());
  auto a = (*ref)->Run({input});
  auto b = (*tvm)->Run({input});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE((*a)[0].vec(), (*b)[0].vec());
}

TEST(ExecutorTest, DeterministicRepeatedRuns) {
  Graph g = SmallConvNet();
  auto exec = Executor::Create(g, OrtLikeExecutorConfig());
  ASSERT_TRUE(exec.ok());
  util::Rng rng(3);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  auto a = (*exec)->Run({input});
  auto b = (*exec)->Run({input});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)[0], (*b)[0]);
}

TEST(ExecutorTest, FoldBatchNormPreservesOutputs) {
  Graph g = SmallConvNet();
  util::Rng rng(4);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);

  auto plain = ReferenceExecutorConfig();
  auto folded = ReferenceExecutorConfig();
  folded.fold_batch_norm = true;
  auto e1 = Executor::Create(g, plain);
  auto e2 = Executor::Create(g, folded);
  ASSERT_TRUE(e1.ok() && e2.ok());
  auto a = (*e1)->Run({input});
  auto b = (*e2)->Run({input});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(MaxAbsDiff((*a)[0], (*b)[0]), 1e-4);
}

TEST(ExecutorTest, FoldBatchNormPassCountsFolds) {
  Graph g = SmallConvNet();
  size_t folds = FoldBatchNormPass(g);
  EXPECT_GE(folds, 2u);  // ConvBnRelu + branch BN
  EXPECT_TRUE(g.Validate().ok());
  // Folded graph still executes.
  auto exec = Executor::Create(g, ReferenceExecutorConfig());
  ASSERT_TRUE(exec.ok());
}

// Hand-built single-reshape graph: Input [1,3,4,4] (48 elements) ->
// Reshape(dims) -> output.
Graph ReshapeGraph(std::vector<int64_t> dims) {
  Graph g;
  NodeId x = g.AddInput("x", Shape({1, 3, 4, 4}));
  graph::Attributes attrs;
  attrs.SetInts("dims", std::move(dims));
  NodeId r = g.AddNode("reshape", graph::OpType::kReshape, {x}, {}, attrs);
  g.MarkOutput(r);
  return g;
}

TEST(ExecutorTest, ReshapeInfersMinusOneDim) {
  Graph g = ReshapeGraph({2, -1});
  auto shapes = g.InferShapes();
  ASSERT_TRUE(shapes.ok()) << shapes.status().ToString();
  EXPECT_EQ((*shapes)[1], Shape({2, 24}));

  auto exec = Executor::Create(g, ReferenceExecutorConfig());
  ASSERT_TRUE(exec.ok());
  util::Rng rng(11);
  auto input = Tensor::RandomUniform(Shape({1, 3, 4, 4}), rng);
  auto out = (*exec)->Run({input});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ((*out)[0].shape(), Shape({2, 24}));
  // Reshape is a metadata change: element order must survive untouched.
  EXPECT_EQ((*out)[0].vec(), input.vec());
}

TEST(ExecutorTest, ReshapeRejectsProductMismatch) {
  Graph g = ReshapeGraph({5, 7});  // 35 != 48
  EXPECT_FALSE(g.InferShapes().ok());
  EXPECT_FALSE(Executor::Create(g, ReferenceExecutorConfig()).ok());
}

TEST(ExecutorTest, ReshapeRejectsNonPositiveDims) {
  EXPECT_FALSE(ReshapeGraph({0, 48}).InferShapes().ok());
  EXPECT_FALSE(ReshapeGraph({-2, 24}).InferShapes().ok());
}

TEST(ExecutorTest, ReshapeRejectsMultipleInferredDims) {
  EXPECT_FALSE(ReshapeGraph({-1, -1}).InferShapes().ok());
}

TEST(ExecutorTest, ReshapeRejectsUninferrableMinusOne) {
  EXPECT_FALSE(ReshapeGraph({5, -1}).InferShapes().ok());  // 48 % 5 != 0
}

// Hand-built conv->bn chain for exercising the fold pass's operand
// validation. `scale_elems` sizes the BN params; `register_bn_params`
// controls whether they exist as initializers at all.
Graph ConvBnChain(bool register_bn_params, int64_t scale_elems) {
  Graph g;
  NodeId x = g.AddInput("x", Shape({1, 2, 4, 4}));
  g.AddInitializer("w", Tensor::Full(Shape({2, 2, 3, 3}), 0.1f));
  graph::Attributes cattrs;
  cattrs.SetInt("stride", 1);
  cattrs.SetInt("padding", 1);
  NodeId c = g.AddNode("conv", graph::OpType::kConv2d, {x}, {"w"}, cattrs);
  if (register_bn_params) {
    for (const char* name : {"scale", "bias", "mean", "var"}) {
      g.AddInitializer(name, Tensor::Full(Shape({scale_elems}), 1.0f));
    }
  }
  graph::Attributes battrs;
  battrs.SetFloat("epsilon", 1e-5f);
  NodeId bn = g.AddNode("bn", graph::OpType::kBatchNorm, {c},
                        {"scale", "bias", "mean", "var"}, battrs);
  g.MarkOutput(bn);
  return g;
}

TEST(ExecutorTest, FoldBatchNormSkipsMissingInitializers) {
  // BN params reference names with no backing initializer (a state
  // rewrite passes can produce mid-flight): the pass must skip the
  // fold, not crash.
  Graph g = ConvBnChain(/*register_bn_params=*/false, 2);
  EXPECT_EQ(FoldBatchNormPass(g), 0u);
  EXPECT_EQ(g.node(2).op, graph::OpType::kBatchNorm);  // untouched
  // Conv weight must not have been scaled by a partial fold.
  EXPECT_FLOAT_EQ(g.FindInitializer("w")->at(0), 0.1f);
}

TEST(ExecutorTest, FoldBatchNormSkipsMisSizedParams) {
  // 3-element BN params against 2 conv output channels.
  Graph g = ConvBnChain(/*register_bn_params=*/true, 3);
  EXPECT_EQ(FoldBatchNormPass(g), 0u);
  EXPECT_EQ(g.node(2).op, graph::OpType::kBatchNorm);
  EXPECT_FLOAT_EQ(g.FindInitializer("w")->at(0), 0.1f);
}

TEST(ExecutorTest, FoldBatchNormStillFoldsValidChain) {
  // Sanity check the guards did not over-reject: a well-formed chain
  // still folds and the BN node degrades to identity.
  Graph g = ConvBnChain(/*register_bn_params=*/true, 2);
  EXPECT_EQ(FoldBatchNormPass(g), 1u);
  EXPECT_EQ(g.node(2).op, graph::OpType::kIdentity);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(ExecutorTest, SlowdownFactorDelaysExecution) {
  Graph g = SmallConvNet();
  auto fast_cfg = OrtLikeExecutorConfig();
  auto slow_cfg = OrtLikeExecutorConfig();
  slow_cfg.slowdown_factor = 3.0;
  auto fast = Executor::Create(g, fast_cfg);
  auto slow = Executor::Create(g, slow_cfg);
  ASSERT_TRUE(fast.ok() && slow.ok());
  util::Rng rng(5);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  // Warm up.
  (void)(*fast)->Run({input});
  auto t0 = std::chrono::steady_clock::now();
  (void)(*fast)->Run({input});
  auto t1 = std::chrono::steady_clock::now();
  (void)(*slow)->Run({input});
  auto t2 = std::chrono::steady_clock::now();
  EXPECT_GT((t2 - t1).count(), (t1 - t0).count());
}

// Fault hook: corruption and crash are observable.
class CorruptOutputHook : public FaultHook {
 public:
  explicit CorruptOutputHook(std::string target) : target_(std::move(target)) {}
  void OnNodeComplete(const graph::Node& node, Tensor& out) override {
    if (node.name == target_ && out.num_elements() > 0) {
      out.data()[0] += 1000.0f;
      fired = true;
    }
  }
  std::string target_;
  bool fired = false;
};

class CrashHook : public FaultHook {
 public:
  explicit CrashHook(std::string target) : target_(std::move(target)) {}
  util::Status OnNodeStart(const graph::Node& node) override {
    if (node.name == target_) {
      return util::Aborted("simulated crash in " + node.name);
    }
    return util::OkStatus();
  }
  std::string target_;
};

TEST(ExecutorTest, FaultHookCorruptsOutput) {
  Graph g = SmallConvNet();
  util::Rng rng(6);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);

  auto clean_exec = Executor::Create(g, ReferenceExecutorConfig());
  auto faulty_exec = Executor::Create(g, ReferenceExecutorConfig());
  ASSERT_TRUE(clean_exec.ok() && faulty_exec.ok());
  // Corrupt the first conv's output.
  auto hook = std::make_shared<CorruptOutputHook>("conv_0");
  (*faulty_exec)->SetFaultHook(hook);

  auto clean = (*clean_exec)->Run({input});
  auto faulty = (*faulty_exec)->Run({input});
  ASSERT_TRUE(clean.ok() && faulty.ok());
  EXPECT_TRUE(hook->fired);
  EXPECT_GT(MaxAbsDiff((*clean)[0], (*faulty)[0]), 0.0);
}

TEST(ExecutorTest, FaultHookCrashPropagates) {
  Graph g = SmallConvNet();
  auto exec = Executor::Create(g, ReferenceExecutorConfig());
  ASSERT_TRUE(exec.ok());
  (*exec)->SetFaultHook(std::make_shared<CrashHook>("conv_0"));
  util::Rng rng(7);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  auto out = (*exec)->Run({input});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), util::StatusCode::kAborted);
}

// Full zoo end-to-end under the optimized executor.
class ZooExecutionTest : public ::testing::TestWithParam<graph::ModelKind> {};

TEST_P(ZooExecutionTest, ProducesFiniteDistribution) {
  graph::ZooConfig cfg;
  cfg.input_hw = 32;
  cfg.width_mult = 0.25;
  cfg.depth_mult = 0.34;
  Graph g = BuildModel(GetParam(), cfg);
  auto exec = Executor::Create(g, OrtLikeExecutorConfig());
  ASSERT_TRUE(exec.ok());
  util::Rng rng(8);
  auto input =
      Tensor::RandomUniform(Shape({cfg.batch, 3, cfg.input_hw, cfg.input_hw}),
                            rng);
  auto out = (*exec)->Run({input});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const Tensor& probs = (*out)[0];
  EXPECT_FALSE(tensor::HasNonFinite(probs));
  double sum = 0;
  for (int64_t i = 0; i < probs.num_elements(); ++i) {
    EXPECT_GE(probs.at(i), 0.0f);
    sum += probs.at(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooExecutionTest,
                         ::testing::ValuesIn(graph::AllModels()),
                         [](const auto& info) {
                           std::string name(graph::ModelName(info.param));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ------------------------------------------------- conv param checks

TEST(ConvParamDeathTest, GarbageParamsAbort) {
  // Garbage conv geometry must fail loudly at the kernel boundary, not
  // compute a garbage output shape (OutDim with stride 0 would divide
  // by zero; negative padding would read out of bounds).
  util::Rng rng(21);
  Tensor x = Tensor::RandomUniform(Shape({1, 4, 8, 8}), rng);
  Tensor w = Tensor::RandomUniform(Shape({4, 4, 3, 3}), rng);
  auto run = [&](int64_t stride, int64_t padding, int64_t groups) {
    ConvParams p;
    p.stride = stride;
    p.padding = padding;
    p.groups = groups;
    Conv2d(x, w, nullptr, p, ConvAlgo::kDirect, GemmBackend::kNaive);
  };
  EXPECT_DEATH(run(0, 1, 1), "stride");
  EXPECT_DEATH(run(-2, 1, 1), "stride");
  EXPECT_DEATH(run(1, -1, 1), "pad");
  EXPECT_DEATH(run(1, 1, 0), "groups");
  // groups must divide the output-channel count.
  EXPECT_DEATH(run(1, 1, 3), "groups");
}

TEST(ConvParamDeathTest, KernelLargerThanPaddedInputAborts) {
  util::Rng rng(22);
  Tensor x = Tensor::RandomUniform(Shape({1, 1, 2, 2}), rng);
  Tensor w = Tensor::RandomUniform(Shape({1, 1, 5, 5}), rng);
  ConvParams p;  // 5x5 kernel over an unpadded 2x2 input
  EXPECT_DEATH(Conv2d(x, w, nullptr, p, ConvAlgo::kDirect,
                      GemmBackend::kNaive),
               "");
}

// ------------------------------------------------- prepacked weights

TEST(PackedGemmTest, PrepackedBitwiseMatchesRepackOnEveryBackend) {
  // The cache only relocates bytes; the accumulation order per output
  // element is untouched, so prepacked FullyConnected must reproduce
  // the self-contained path bit for bit — on every backend, and with
  // SIMD dispatch both allowed and forced off.
  util::Rng rng(31);
  const int64_t m = 3, out_dim = 33, in_dim = 47;
  Tensor x = Tensor::RandomUniform(Shape({m, in_dim}), rng);
  Tensor w = Tensor::RandomUniform(Shape({out_dim, in_dim}), rng);
  Tensor b = Tensor::RandomUniform(Shape({out_dim}), rng);
  for (GemmBackend backend :
       {GemmBackend::kNaive, GemmBackend::kBlocked, GemmBackend::kTransposed,
        GemmBackend::kAvx2}) {
    PackedGemmB packed = PackGemmWeightTransposed(
        backend, w.data(), out_dim, in_dim, &util::BufferPool::Default());
    ASSERT_TRUE(static_cast<bool>(packed));
    EXPECT_EQ(packed.n, out_dim);
    EXPECT_EQ(packed.k, in_dim);
    for (bool force_scalar : {false, true}) {
      std::unique_ptr<util::ScopedForceScalar> scalar;
      if (force_scalar) scalar = std::make_unique<util::ScopedForceScalar>();
      Tensor repack = FullyConnected(x, w, &b, backend, nullptr);
      Tensor cached = FullyConnected(x, w, &b, backend, &packed);
      ASSERT_EQ(repack.shape(), cached.shape());
      EXPECT_EQ(std::memcmp(repack.data(), cached.data(), repack.byte_size()),
                0)
          << GemmBackendName(backend)
          << (force_scalar ? " (forced scalar)" : "");
    }
  }
}

TEST(PackedGemmTest, GemmPrepackedMatchesGemmOnEveryBackend) {
  // Same property one layer down: PackGemmB + GemmPrepacked vs the
  // one-shot Gemm entry point on a raw row-major B.
  util::Rng rng(32);
  for (auto [m, n, k] : std::vector<std::tuple<int, int, int>>{
           {1, 17, 19}, {6, 16, 4}, {5, 40, 23}}) {
    std::vector<float> a(static_cast<size_t>(m) * k),
        b(static_cast<size_t>(k) * n);
    for (auto& v : a) v = rng.UniformFloat(-1, 1);
    for (auto& v : b) v = rng.UniformFloat(-1, 1);
    for (GemmBackend backend :
         {GemmBackend::kNaive, GemmBackend::kBlocked,
          GemmBackend::kTransposed, GemmBackend::kAvx2}) {
      PackedGemmB packed = PackGemmB(backend, b.data(), n, k,
                                     &util::BufferPool::Default());
      std::vector<float> direct(static_cast<size_t>(m) * n, -1.0f);
      std::vector<float> pre(static_cast<size_t>(m) * n, 1.0f);
      Gemm(backend, a.data(), b.data(), direct.data(), m, n, k);
      GemmPrepacked(a.data(), packed, pre.data(), m);
      EXPECT_EQ(std::memcmp(direct.data(), pre.data(),
                            direct.size() * sizeof(float)),
                0)
          << GemmBackendName(backend) << " " << m << "x" << n << "x" << k;
    }
  }
}

TEST(PackedGemmDeathTest, BackendMismatchAborts) {
  util::Rng rng(33);
  Tensor x = Tensor::RandomUniform(Shape({1, 8}), rng);
  Tensor w = Tensor::RandomUniform(Shape({4, 8}), rng);
  PackedGemmB packed = PackGemmWeightTransposed(
      GemmBackend::kNaive, w.data(), 4, 8, &util::BufferPool::Default());
  EXPECT_DEATH(FullyConnected(x, w, nullptr, GemmBackend::kAvx2, &packed),
               "");
}

// ------------------------------------------------- pack cache

std::string FirstWeightName(const Graph& g, graph::OpType op) {
  for (const auto& node : g.nodes()) {
    if (node.op == op && !node.weights.empty()) return node.weights[0];
  }
  return "";
}

TEST(PackCacheTest, BindPacksConstantGemmWeights) {
  Graph g = SmallConvNet();
  PackedWeightCache cache;
  cache.Bind(g, GemmBackend::kAvx2);
  if (!PackedWeightCache::EnabledFromEnv()) {
    // MVTEE_PACK_CACHE=0 CI leg: bind must be a no-op and every lookup
    // a (counted) miss.
    EXPECT_FALSE(cache.bound());
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.FindGemm(FirstWeightName(g, graph::OpType::kGemm)),
              nullptr);
    return;
  }
  ASSERT_TRUE(cache.bound());
  EXPECT_GT(cache.entries(), 0u);
  EXPECT_GT(cache.packed_bytes(), 0u);

  const std::string gemm_w = FirstWeightName(g, graph::OpType::kGemm);
  ASSERT_FALSE(gemm_w.empty());
  const PackedGemmB* packed = cache.FindGemm(gemm_w);
  ASSERT_NE(packed, nullptr);
  EXPECT_EQ(packed->backend, GemmBackend::kAvx2);
  const Tensor* w = g.FindInitializer(gemm_w);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(packed->n, w->shape().dim(0));
  EXPECT_EQ(packed->k, w->shape().dim(1));

  const std::string conv_w = FirstWeightName(g, graph::OpType::kConv2d);
  ASSERT_FALSE(conv_w.empty());
  EXPECT_TRUE(cache.TouchConv(conv_w));
  EXPECT_FALSE(cache.TouchConv("no-such-weight"));
  EXPECT_EQ(cache.FindGemm("no-such-weight"), nullptr);
}

TEST(PackCacheTest, ScopedDisableForcesColdLookups) {
  if (!PackedWeightCache::EnabledFromEnv()) {
    GTEST_SKIP() << "MVTEE_PACK_CACHE=0: nothing to scope-disable";
  }
  Graph g = SmallConvNet();
  PackedWeightCache cache;
  cache.Bind(g, GemmBackend::kBlocked);
  const std::string gemm_w = FirstWeightName(g, graph::OpType::kGemm);
  ASSERT_NE(cache.FindGemm(gemm_w), nullptr);
  {
    ScopedDisablePackCache off;
    EXPECT_FALSE(PackCacheEnabled());
    EXPECT_EQ(cache.FindGemm(gemm_w), nullptr);
    EXPECT_FALSE(cache.TouchConv(FirstWeightName(g, graph::OpType::kConv2d)));
  }
  EXPECT_NE(cache.FindGemm(gemm_w), nullptr);
}

TEST(PackCacheTest, ExecutorOutputsBitwiseIdenticalWithCacheDisabled) {
  // MVTEE_PACK_CACHE is a speed knob, never a diversity axis: the same
  // executor must produce the same bits with the cache on and off.
  Graph g = SmallConvNet();
  util::Rng rng(41);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  auto exec = Executor::Create(g, OrtLikeExecutorConfig());
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ((*exec)->pack_cache().bound(),
            PackedWeightCache::EnabledFromEnv());
  auto hot = (*exec)->Run({input});
  ASSERT_TRUE(hot.ok());
  util::Result<std::vector<Tensor>> cold(util::Internal("unset"));
  {
    ScopedDisablePackCache off;
    cold = (*exec)->Run({input});
  }
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ((*hot)[0], (*cold)[0]);
}

TEST(PackCacheTest, SteadyStateInferenceTakesNoFreshPoolAllocations) {
  // After one warm-up inference every Gemm/Conv scratch acquisition
  // must be served from the BufferPool freelists: zero fresh
  // allocations on the steady-state path.
  Graph g = SmallConvNet();
  util::Rng rng(42);
  auto input = Tensor::RandomUniform(Shape({1, 3, 16, 16}), rng);
  auto exec = Executor::Create(g, MklLikeExecutorConfig());
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE((*exec)->Run({input}).ok());  // warm scratch sizes
  ASSERT_TRUE((*exec)->Run({input}).ok());
  const util::BufferPool::Stats before = util::BufferPool::Default().stats();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*exec)->Run({input}).ok());
  }
  const util::BufferPool::Stats after = util::BufferPool::Default().stats();
  EXPECT_EQ(after.misses - before.misses, 0u);
  EXPECT_GT(after.hits - before.hits, 0u);
}

// ------------------------------------------------- elementwise dispatch

std::vector<float> TrickyFloats() {
  // Exercise every special the AVX2 tier must reproduce exactly:
  // signed zeros, NaN, infinities, denormals and values around the
  // relu6/hardswish breakpoints (-3, 0, 3, 6).
  std::vector<float> v = {
      0.0f, -0.0f, 1.0f, -1.0f, 6.0f, -6.0f, 5.9999995f, 6.0000005f,
      3.0f, -3.0f, 2.9999998f, -2.9999998f, 1e-40f, -1e-40f,
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::max(), std::numeric_limits<float>::lowest(),
      std::numeric_limits<float>::denorm_min()};
  util::Rng rng(51);
  while (v.size() < 103) v.push_back(rng.UniformFloat(-10, 10));
  return v;
}

TEST(ElementwiseDispatchTest, VectorAndScalarTiersAreBitwiseIdentical) {
  const std::vector<float> in = TrickyFloats();
  const std::vector<float> rhs = [&] {
    std::vector<float> r = in;
    std::reverse(r.begin(), r.end());
    return r;
  }();
  const int64_t n = static_cast<int64_t>(in.size());
  const size_t bytes = in.size() * sizeof(float);

  auto run_all = [&](std::vector<std::vector<float>>& outs) {
    outs.assign(7, std::vector<float>(in.size(), -99.0f));
    elementwise::Relu(in.data(), outs[0].data(), n);
    elementwise::Relu6(in.data(), outs[1].data(), n);
    elementwise::HardSwish(in.data(), outs[2].data(), n);
    elementwise::Add(in.data(), rhs.data(), outs[3].data(), n);
    elementwise::AddScalar(in.data(), 0.625f, outs[4].data(), n);
    elementwise::Scale(in.data(), 1.25f, -0.375f, outs[5].data(), n);
    outs[6] = in;
    elementwise::MulScalar(outs[6].data(), 0.8125f, n);
  };
  // MaxReduce's bitwise contract covers finite inputs (maxps and
  // std::max diverge on NaN by design of the ISA); mask the NaN here.
  std::vector<float> finite = in;
  for (auto& v : finite) {
    if (std::isnan(v)) v = 0.5f;
  }
  std::vector<std::vector<float>> fast, scalar;
  run_all(fast);
  const float fast_max = elementwise::MaxReduce(finite.data(), n);
  {
    util::ScopedForceScalar force_scalar;
    EXPECT_FALSE(util::UseAvx2Elementwise());
    run_all(scalar);
    const float scalar_max = elementwise::MaxReduce(finite.data(), n);
    EXPECT_EQ(std::memcmp(&fast_max, &scalar_max, sizeof(float)), 0);
  }
  const char* names[] = {"relu", "relu6",     "hardswish", "add",
                         "adds", "scale",     "muls"};
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(std::memcmp(fast[i].data(), scalar[i].data(), bytes), 0)
        << names[i];
  }
}

TEST(ElementwiseDispatchTest, ToleratesAliasing) {
  const std::vector<float> in = TrickyFloats();
  const int64_t n = static_cast<int64_t>(in.size());
  std::vector<float> separate(in.size());
  elementwise::HardSwish(in.data(), separate.data(), n);
  std::vector<float> aliased = in;
  elementwise::HardSwish(aliased.data(), aliased.data(), n);
  EXPECT_EQ(std::memcmp(separate.data(), aliased.data(),
                        in.size() * sizeof(float)),
            0);
}

TEST(ElementwiseDispatchTest, SoftmaxBitwiseStableAcrossDispatch) {
  util::Rng rng(52);
  Tensor x = Tensor::RandomUniform(Shape({5, 37}), rng);
  Tensor fast = Softmax(x);
  util::ScopedForceScalar force_scalar;
  Tensor scalar = Softmax(x);
  EXPECT_EQ(std::memcmp(fast.data(), scalar.data(), fast.byte_size()), 0);
}

TEST(ElementwiseDispatchTest, MaxReduceEmptyAborts) {
  const float x = 1.0f;
  EXPECT_DEATH(elementwise::MaxReduce(&x, 0), "");
}

}  // namespace
}  // namespace mvtee::runtime
