// Property-based and fuzz-style tests across module boundaries:
// parameterized sweeps over sizes, partition counts and transform
// compositions, plus decoder robustness against truncation/corruption.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "core/consistency.h"
#include "core/messages.h"
#include "crypto/aead.h"
#include "crypto/sha256.h"
#include "graph/builder.h"
#include "graph/model_zoo.h"
#include "partition/partition.h"
#include "runtime/executor.h"
#include "runtime/kernels.h"
#include "runtime/pack_cache.h"
#include "util/cpu_features.h"
#include "tee/enclave.h"
#include "variant/spec.h"

namespace mvtee {
namespace {

using graph::Graph;
using tensor::Shape;
using tensor::Tensor;

// ------------------------------------------------------------ crypto sweep

class GcmSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(GcmSizeSweep, SealOpenRoundTrip) {
  util::Bytes key(32, 0x5a), nonce(12, 0x21);
  util::Rng rng(GetParam() + 1);
  util::Bytes pt(GetParam());
  for (auto& b : pt) b = static_cast<uint8_t>(rng.NextU64());
  crypto::AesGcm gcm(key);
  auto sealed = gcm.Seal(nonce, util::ToBytes("aad"), pt);
  EXPECT_EQ(sealed.size(), pt.size() + crypto::kGcmTagSize);
  auto opened = gcm.Open(nonce, util::ToBytes("aad"), sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, pt);
}

TEST_P(GcmSizeSweep, SingleBitFlipAnywhereDetected) {
  if (GetParam() > 4096) GTEST_SKIP() << "bit sweep too slow";
  util::Bytes key(32, 0x5a), nonce(12, 0x22);
  util::Bytes pt(GetParam(), 0x77);
  crypto::AesGcm gcm(key);
  auto sealed = gcm.Seal(nonce, {}, pt);
  util::Rng rng(3);
  // Sample up to 32 random byte positions (plus first/last).
  std::vector<size_t> positions = {0, sealed.size() - 1};
  for (int i = 0; i < 32; ++i) {
    positions.push_back(rng.UniformU64(sealed.size()));
  }
  for (size_t pos : positions) {
    auto corrupt = sealed;
    corrupt[pos] ^= static_cast<uint8_t>(1u << rng.UniformU64(8));
    EXPECT_FALSE(gcm.Open(nonce, {}, corrupt).ok()) << "pos " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcmSizeSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 33, 255,
                                           256, 1000, 65536));

TEST(Sha256Property, DistinctInputsDistinctDigests) {
  // Sanity over a family of near-identical messages.
  std::set<std::string> digests;
  util::Bytes msg(128, 0);
  for (int i = 0; i < 200; ++i) {
    msg[static_cast<size_t>(i) % msg.size()] ^= 1;
    digests.insert(util::HexEncode(crypto::Sha256Bytes(msg)));
  }
  EXPECT_EQ(digests.size(), 200u);
}

// -------------------------------------------------------- partition sweep

struct PartitionCase {
  graph::ModelKind model;
  int64_t parts;
};

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<graph::ModelKind, int>> {};

TEST_P(PartitionSweep, ValidCoverAndOrdering) {
  auto [kind, parts] = GetParam();
  graph::ZooConfig cfg;
  cfg.input_hw = 32;
  Graph g = graph::BuildModel(kind, cfg);
  partition::PartitionOptions opts;
  opts.target_partitions = parts;
  opts.seed = 97;
  auto set = partition::RandomContraction(g, opts);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set->num_partitions(), parts);

  // Exact cover.
  std::set<graph::NodeId> seen;
  for (const auto& p : set->partitions) {
    for (auto id : p.nodes) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), g.num_nodes());

  // Forward-only cross-partition edges.
  std::map<graph::NodeId, size_t> stage_of;
  for (size_t si = 0; si < set->partitions.size(); ++si) {
    for (auto id : set->partitions[si].nodes) stage_of[id] = si;
  }
  for (const auto& node : g.nodes()) {
    for (auto in : node.inputs) {
      EXPECT_LE(stage_of[in], stage_of[node.id]);
    }
  }

  // The partitioned model stays executable and equivalent.
  auto pm = partition::BuildPartitionedModel(g, *set);
  ASSERT_TRUE(pm.ok()) << pm.status().ToString();
  for (const auto& stage : pm->stages) {
    EXPECT_TRUE(stage.Validate().ok());
    EXPECT_TRUE(stage.InferShapes().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionSweep,
    ::testing::Combine(::testing::Values(graph::ModelKind::kResNet50,
                                         graph::ModelKind::kGoogleNet,
                                         graph::ModelKind::kEfficientNetB7),
                       ::testing::Values(2, 4, 6, 9)),
    [](const auto& info) {
      std::string name(graph::ModelName(std::get<0>(info.param)));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_p" + std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------------- transform compositions

TEST(TransformComposition, RandomOrdersStayEquivalent) {
  graph::ModelBuilder b(77);
  auto x = b.Input("in", Shape({1, 4, 12, 12}));
  x = b.ConvBnRelu(x, 8, 3, 1, 1);
  auto skip = x;
  x = b.ConvBnRelu(x, 8, 3, 1, 1);
  x = b.Relu(b.Add(x, skip));
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Gemm(x, 6);
  b.MarkOutput(x);
  Graph g = b.Build();

  util::Rng rng(5);
  auto input = Tensor::RandomUniform(Shape({1, 4, 12, 12}), rng);
  auto ref_exec =
      runtime::Executor::Create(g, runtime::ReferenceExecutorConfig());
  ASSERT_TRUE(ref_exec.ok());
  auto expected = (*ref_exec)->Run({input});
  ASSERT_TRUE(expected.ok());

  std::vector<variant::GraphTransform> all = {
      variant::GraphTransform::kInsertDummyOps,
      variant::GraphTransform::kSplitConv,
      variant::GraphTransform::kShuffleChannels,
      variant::GraphTransform::kReorderCommutative,
      variant::GraphTransform::kSelectiveBnFold,
      variant::GraphTransform::kConvToFc,
  };
  for (uint64_t trial = 0; trial < 6; ++trial) {
    auto order = all;
    util::Rng order_rng(trial);
    order_rng.Shuffle(order);
    variant::VariantSpec spec;
    spec.id = "trial" + std::to_string(trial);
    spec.graph_transforms = order;
    spec.transform_seed = trial * 31 + 7;
    spec.exec_config = runtime::OrtLikeExecutorConfig();
    auto vg = variant::BuildVariantGraph(g, spec);
    ASSERT_TRUE(vg.ok()) << trial << ": " << vg.status().ToString();
    auto exec = runtime::Executor::Create(*vg, spec.exec_config);
    ASSERT_TRUE(exec.ok());
    auto out = (*exec)->Run({input});
    ASSERT_TRUE(out.ok());
    EXPECT_GT(tensor::CosineSimilarity((*expected)[0], (*out)[0]), 0.9999)
        << "trial " << trial;
  }
}

// ------------------------------------------------- decoder fuzz (truncation)

template <typename Decoder>
void TruncationNeverCrashes(const util::Bytes& frame, Decoder decode) {
  // Every prefix must be rejected cleanly (the full frame is valid).
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    util::Bytes prefix(frame.begin(), frame.begin() + static_cast<long>(cut));
    auto result = decode(prefix);
    EXPECT_FALSE(result.ok()) << "cut " << cut;
  }
  EXPECT_TRUE(decode(frame).ok());
}

TEST(DecoderFuzz, InferMsgTruncation) {
  core::InferMsg msg;
  msg.batch_id = 5;
  msg.vtime_us = 9;
  msg.slots = {0, 1};
  util::Rng rng(1);
  msg.inputs.push_back(Tensor::RandomUniform(Shape({2, 3}), rng));
  msg.inputs.push_back(Tensor::RandomUniform(Shape({4}), rng));
  TruncationNeverCrashes(core::EncodeInfer(msg), [](util::ByteSpan f) {
    return core::DecodeInfer(f);
  });
}

TEST(DecoderFuzz, InferResultTruncation) {
  core::InferResultMsg msg;
  msg.batch_id = 5;
  msg.ok = true;
  util::Rng rng(2);
  msg.outputs.push_back(Tensor::RandomUniform(Shape({3, 3}), rng));
  TruncationNeverCrashes(core::EncodeInferResult(msg),
                         [](util::ByteSpan f) {
                           return core::DecodeInferResult(f);
                         });
}

TEST(DecoderFuzz, GraphTruncation) {
  graph::ModelBuilder b(3);
  auto x = b.Input("in", Shape({1, 4}));
  x = b.Gemm(x, 4);
  b.MarkOutput(x);
  Graph g = b.Build();
  auto frame = g.Serialize();
  // Sample cuts (full sweep is large for graphs with weights).
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    size_t cut = rng.UniformU64(frame.size());
    util::Bytes prefix(frame.begin(), frame.begin() + static_cast<long>(cut));
    EXPECT_FALSE(Graph::Deserialize(prefix).ok());
  }
  EXPECT_TRUE(Graph::Deserialize(frame).ok());
}

TEST(DecoderFuzz, ManifestRandomCorruption) {
  tee::Manifest m = tee::InitVariantManifest();
  m.trusted_files["x"] = crypto::Sha256::Hash(util::ToBytes("x"));
  auto frame = m.Serialize();
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    auto corrupt = frame;
    size_t pos = rng.UniformU64(corrupt.size());
    corrupt[pos] ^= static_cast<uint8_t>(1 + rng.UniformU64(255));
    // Must never crash; may or may not decode (some bytes are payload).
    auto result = tee::Manifest::Deserialize(corrupt);
    if (result.ok()) {
      // Either the corruption changed the manifest semantics (hash
      // differs, the measurement chain catches it), or it only changed
      // a non-canonical encoding (e.g. a boolean byte 0x01 -> 0x03) and
      // the canonical re-serialization equals the original.
      if (result->Hash() == m.Hash()) {
        EXPECT_EQ(result->Serialize(), frame);
      }
    }
  }
}

TEST(DecoderFuzz, AttestationReportRandomCorruption) {
  tee::SimulatedCpu cpu{tee::SimulatedCpu::Options{.hardware_key_seed = 9}};
  auto enclave = cpu.LaunchEnclave(tee::TeeType::kSgx2,
                                   util::ToBytes("code"),
                                   tee::MonitorManifest(), 16);
  ASSERT_TRUE(enclave.ok());
  auto report = (*enclave)->CreateReport({});
  auto frame = report.Serialize();
  util::Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    auto corrupt = frame;
    size_t pos = rng.UniformU64(corrupt.size());
    corrupt[pos] ^= static_cast<uint8_t>(1 + rng.UniformU64(255));
    auto parsed = tee::AttestationReport::Deserialize(corrupt);
    if (parsed.ok()) {
      // Any parsed-but-corrupted report must fail verification.
      EXPECT_FALSE(cpu.VerifyReport(*parsed).ok()) << "pos " << pos;
    }
  }
}

// --------------------------------------------------- consistency property

TEST(ConsistencyProperty, MetricsAgreeOnIdenticalAndDisjoint) {
  util::Rng rng(8);
  auto t = Tensor::RandomUniform(Shape({64}), rng);
  auto far = Tensor::RandomUniform(Shape({64}), rng, 50.0f, 100.0f);
  for (auto policy :
       {core::CheckPolicy::Cosine(0.999), core::CheckPolicy::Mse(1e-6),
        core::CheckPolicy::MaxAbs(1e-5),
        core::CheckPolicy::AllClose(1e-5, 1e-7)}) {
    EXPECT_TRUE(core::OutputsConsistent({t}, {t}, policy))
        << core::ConsistencyMetricName(policy.metric);
    EXPECT_FALSE(core::OutputsConsistent({t}, {far}, policy))
        << core::ConsistencyMetricName(policy.metric);
  }
}

TEST(ConsistencyProperty, ThresholdMonotonicity) {
  // If outputs pass at a strict cosine threshold they pass at any looser
  // one.
  util::Rng rng(9);
  auto a = Tensor::RandomUniform(Shape({128}), rng);
  Tensor b = a;
  for (int64_t i = 0; i < b.num_elements(); ++i) {
    b.data()[i] += rng.UniformFloat(-0.01f, 0.01f);
  }
  bool strict = core::OutputsConsistent({a}, {b},
                                        core::CheckPolicy::Cosine(0.9999));
  if (strict) {
    for (double th : {0.999, 0.99, 0.9, 0.5}) {
      EXPECT_TRUE(core::OutputsConsistent({a}, {b},
                                          core::CheckPolicy::Cosine(th)));
    }
  }
}

// ---------------------------------------------------------- vote property

TEST(VoteProperty, FailedVariantsAlwaysDissent) {
  util::Rng rng(10);
  auto t = Tensor::RandomUniform(Shape({32}), rng);
  // Variant 1 crashed (empty output list).
  std::vector<std::vector<Tensor>> outputs = {{t}, {}, {t}};
  auto policy = core::CheckPolicy::Cosine(0.999);
  auto una = core::Vote(outputs, policy, core::VotePolicy::kUnanimous);
  EXPECT_FALSE(una.accepted);
  auto maj = core::Vote(outputs, policy, core::VotePolicy::kMajority);
  EXPECT_TRUE(maj.accepted);
  EXPECT_TRUE(maj.winner == 0 || maj.winner == 2);
  ASSERT_EQ(maj.dissenters.size(), 1u);
  EXPECT_EQ(maj.dissenters[0], 1);
}

TEST(VoteProperty, AllFailedPanelRejects) {
  std::vector<std::vector<Tensor>> outputs = {{}, {}, {}};
  for (auto vp : {core::VotePolicy::kUnanimous, core::VotePolicy::kMajority}) {
    auto r = core::Vote(outputs, core::CheckPolicy::Cosine(0.999), vp);
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(r.winner, -1);
  }
}

TEST(VoteProperty, SummaryVoteMatchesPlainVote) {
  // Random panels mixing identical replicas, close diversified outputs,
  // divergent outputs and crashed variants: the digest-accelerated vote
  // must reach exactly the plain vote's decision.
  util::Rng rng(11);
  auto policy = core::CheckPolicy::Cosine(0.999);
  for (int trial = 0; trial < 50; ++trial) {
    const int k = 2 + trial % 4;
    auto base = Tensor::RandomUniform(Shape({24}), rng);
    std::vector<std::vector<Tensor>> outputs;
    for (int i = 0; i < k; ++i) {
      switch (rng.UniformU64(4)) {
        case 0:
          outputs.push_back({base});
          break;
        case 1: {
          Tensor close = base;
          for (int64_t j = 0; j < close.num_elements(); ++j) {
            close.data()[j] += rng.UniformFloat(-1e-6f, 1e-6f);
          }
          outputs.push_back({std::move(close)});
          break;
        }
        case 2:
          outputs.push_back(
              {Tensor::RandomUniform(Shape({24}), rng, 50.0f, 100.0f)});
          break;
        default:
          outputs.push_back({});  // crashed
          break;
      }
    }
    std::vector<core::OutputsSummary> sums;
    sums.reserve(outputs.size());
    for (const auto& o : outputs) sums.push_back(core::SummarizeOutputs(o));
    for (auto vp :
         {core::VotePolicy::kUnanimous, core::VotePolicy::kMajority}) {
      auto plain = core::Vote(outputs, policy, vp);
      core::CheckStats stats;
      auto fast = core::Vote(outputs, sums, policy, vp, &stats);
      EXPECT_EQ(plain.accepted, fast.accepted) << "trial " << trial;
      EXPECT_EQ(plain.winner, fast.winner) << "trial " << trial;
      EXPECT_EQ(plain.dissenters, fast.dissenters) << "trial " << trial;
    }
  }
}

TEST(VoteProperty, PrefilterAbsorbsIdenticalPanels) {
  // A fully replicated panel must be decided by digests alone: O(k)
  // hashes, zero element-wise scans.
  util::Rng rng(12);
  auto t = Tensor::RandomUniform(Shape({64}), rng);
  std::vector<std::vector<Tensor>> outputs(4, std::vector<Tensor>{t});
  std::vector<core::OutputsSummary> sums;
  for (const auto& o : outputs) sums.push_back(core::SummarizeOutputs(o));
  core::CheckStats stats;
  auto r = core::Vote(outputs, sums, core::CheckPolicy::Cosine(0.999),
                      core::VotePolicy::kUnanimous, &stats);
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(r.winner, 0);
  EXPECT_EQ(stats.full_checks, 0u);
  EXPECT_EQ(stats.prefilter_hits, 3u);  // each follower joins rep 0 by digest
}

TEST(VoteProperty, NonFiniteVariantDissentsUnderSummary) {
  util::Rng rng(13);
  auto t = Tensor::RandomUniform(Shape({16}), rng);
  Tensor bad = t;
  bad.data()[0] = std::numeric_limits<float>::quiet_NaN();
  std::vector<std::vector<Tensor>> outputs = {{t}, {t}, {bad}};
  std::vector<core::OutputsSummary> sums;
  for (const auto& o : outputs) sums.push_back(core::SummarizeOutputs(o));
  EXPECT_TRUE(sums[2].nonfinite);
  for (auto vp :
       {core::VotePolicy::kUnanimous, core::VotePolicy::kMajority}) {
    auto plain = core::Vote(outputs, core::CheckPolicy::Cosine(0.999), vp);
    core::CheckStats stats;
    auto fast = core::Vote(outputs, sums, core::CheckPolicy::Cosine(0.999),
                           vp, &stats);
    EXPECT_EQ(plain.accepted, fast.accepted);
    EXPECT_EQ(plain.dissenters, fast.dissenters);
    ASSERT_EQ(fast.dissenters.size(), 1u);
    EXPECT_EQ(fast.dissenters[0], 2);
  }
}

// ------------------------------------------------------- conv geometry

struct ConvCase {
  int64_t channels, height, out_channels, kernel, stride, padding, groups;
};

class ConvGeometrySweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometrySweep, AlgorithmsAgreeAndTogglesAreBitwiseNoOps) {
  // Two properties per geometry: (1) kDirect and kIm2col stay within
  // float tolerance of each other (they are distinct lowerings, not
  // twins); (2) for EACH algorithm, SIMD dispatch and the pack cache
  // are speed knobs only — toggling them must reproduce the exact bits.
  const ConvCase c = GetParam();
  util::Rng rng(static_cast<uint64_t>(
      c.channels * 1'000'000 + c.kernel * 10'000 + c.stride * 1'000 +
      c.padding * 100 + c.groups));
  const Tensor x =
      Tensor::RandomUniform(Shape({2, c.channels, c.height, c.height}), rng);
  const Tensor w = Tensor::RandomUniform(
      Shape({c.out_channels, c.channels / c.groups, c.kernel, c.kernel}),
      rng);
  const Tensor b = Tensor::RandomUniform(Shape({c.out_channels}), rng);
  runtime::ConvParams p;
  p.stride = c.stride;
  p.padding = c.padding;
  p.groups = c.groups;

  auto run = [&](runtime::ConvAlgo algo) {
    return runtime::Conv2d(x, w, &b, p, algo,
                           runtime::GemmBackend::kAvx2);
  };
  const Tensor direct = run(runtime::ConvAlgo::kDirect);
  const Tensor im2col = run(runtime::ConvAlgo::kIm2col);
  ASSERT_EQ(direct.shape(), im2col.shape());
  EXPECT_LT(tensor::MaxAbsDiff(direct, im2col), 1e-4);

  for (auto algo : {runtime::ConvAlgo::kDirect, runtime::ConvAlgo::kIm2col}) {
    const Tensor base = run(algo);
    {
      util::ScopedForceScalar force_scalar;
      const Tensor scalar = run(algo);
      EXPECT_EQ(std::memcmp(base.data(), scalar.data(), base.byte_size()), 0)
          << runtime::ConvAlgoName(algo) << " under forced scalar";
    }
    {
      runtime::ScopedDisablePackCache cache_off;
      const Tensor uncached = run(algo);
      EXPECT_EQ(std::memcmp(base.data(), uncached.data(), base.byte_size()),
                0)
          << runtime::ConvAlgoName(algo) << " with pack cache disabled";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, ConvGeometrySweep,
    ::testing::Values(
        ConvCase{8, 9, 8, 3, 1, 1, 1},     // the common 3x3 same-conv
        ConvCase{8, 9, 8, 3, 2, 1, 1},     // strided
        ConvCase{8, 9, 8, 3, 3, 2, 1},     // stride 3, fat padding
        ConvCase{8, 9, 8, 3, 1, 0, 1},     // valid conv (shrinking)
        ConvCase{8, 9, 16, 1, 1, 0, 1},    // 1x1: identity-cols fast path
        ConvCase{8, 9, 16, 1, 2, 0, 1},    // 1x1 strided: no fast path
        ConvCase{8, 9, 16, 1, 1, 1, 1},    // 1x1 padded: no fast path
        ConvCase{8, 9, 8, 3, 1, 1, 4},     // grouped
        ConvCase{8, 9, 8, 3, 2, 1, 8},     // depthwise, strided
        ConvCase{4, 7, 4, 5, 1, 2, 2},     // 5x5 grouped on odd input
        ConvCase{4, 5, 4, 5, 1, 0, 1}),    // kernel == input extent
    [](const auto& info) {
      const ConvCase& c = info.param;
      return "c" + std::to_string(c.channels) + "h" +
             std::to_string(c.height) + "o" + std::to_string(c.out_channels) +
             "k" + std::to_string(c.kernel) + "s" + std::to_string(c.stride) +
             "p" + std::to_string(c.padding) + "g" +
             std::to_string(c.groups);
    });

}  // namespace
}  // namespace mvtee
