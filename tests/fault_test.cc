#include <gtest/gtest.h>

#include "fault/campaign.h"
#include "fault/injectors.h"
#include "graph/builder.h"
#include "runtime/executor.h"

namespace mvtee::fault {
namespace {

using graph::Graph;
using graph::ModelBuilder;
using graph::NodeId;
using tensor::Shape;
using tensor::Tensor;

Graph SmallNet(uint64_t seed = 3) {
  ModelBuilder b(seed);
  NodeId x = b.Input("img", Shape({1, 3, 12, 12}));
  x = b.ConvBnRelu(x, 8, 3, 1, 1);
  x = b.ConvBnRelu(x, 8, 3, 1, 1);
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Gemm(x, 10);
  x = b.Softmax(x);
  b.MarkOutput(x);
  return b.Build();
}

Tensor RunWithHook(const Graph& g, runtime::ExecutorConfig cfg,
                   std::shared_ptr<runtime::FaultHook> hook,
                   util::Status* status_out = nullptr) {
  auto exec = runtime::Executor::Create(g, cfg);
  MVTEE_CHECK(exec.ok());
  if (hook) (*exec)->SetFaultHook(hook);
  util::Rng rng(1);
  auto input = Tensor::RandomUniform(Shape({1, 3, 12, 12}), rng);
  auto out = (*exec)->Run({input});
  if (status_out) *status_out = out.status();
  if (!out.ok()) return Tensor();
  return (*out)[0];
}

TEST(VulnerabilityFaultTest, FiresOnlyOnVulnerableBackend) {
  Graph g = SmallNet();
  VulnerabilitySpec spec;
  spec.cls = VulnClass::kOutOfBounds;
  spec.effect = FaultEffect::kCorruptSilent;
  spec.vulnerable_gemm = runtime::GemmBackend::kBlocked;

  // Vulnerable backend (blocked GEMM = "OpenBLAS"): corrupted output.
  auto hook1 = std::make_shared<VulnerabilityFault>(spec);
  auto clean = RunWithHook(g, runtime::OrtLikeExecutorConfig(), nullptr);
  auto dirty = RunWithHook(g, runtime::OrtLikeExecutorConfig(), hook1);
  EXPECT_TRUE(hook1->armed());
  EXPECT_GT(hook1->fire_count(), 0u);
  EXPECT_GT(tensor::MaxAbsDiff(clean, dirty), 0.0);

  // Different backend (transposed GEMM = "Eigen"): unaffected.
  auto hook2 = std::make_shared<VulnerabilityFault>(spec);
  auto clean_tvm = RunWithHook(g, runtime::TvmLikeExecutorConfig(), nullptr);
  auto same = RunWithHook(g, runtime::TvmLikeExecutorConfig(), hook2);
  EXPECT_FALSE(hook2->armed());
  EXPECT_EQ(hook2->fire_count(), 0u);
  EXPECT_EQ(tensor::MaxAbsDiff(clean_tvm, same), 0.0);
}

TEST(VulnerabilityFaultTest, HardenedVariantTrapsMemorySafetyBugs) {
  Graph g = SmallNet();
  VulnerabilitySpec spec;
  spec.cls = VulnClass::kOutOfBounds;
  spec.effect = FaultEffect::kCorruptSilent;
  spec.vulnerable_gemm = runtime::GemmBackend::kNaive;  // hardened's GEMM

  auto hook = std::make_shared<VulnerabilityFault>(spec);
  util::Status status;
  // Hardened config uses the vulnerable GEMM — but traps the exploit.
  (void)RunWithHook(g, runtime::HardenedExecutorConfig(), hook, &status);
  EXPECT_TRUE(hook->trapped_by_hardening());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kAborted);
  EXPECT_NE(status.message().find("sanitizer trap"), std::string::npos);
}

TEST(VulnerabilityFaultTest, CrashEffectAborts) {
  Graph g = SmallNet();
  VulnerabilitySpec spec;
  spec.cls = VulnClass::kNullPointer;
  spec.effect = FaultEffect::kCrash;
  auto hook = std::make_shared<VulnerabilityFault>(spec);
  util::Status status;
  (void)RunWithHook(g, runtime::OrtLikeExecutorConfig(), hook, &status);
  EXPECT_EQ(status.code(), util::StatusCode::kAborted);
  EXPECT_NE(status.message().find("UNP"), std::string::npos);
}

TEST(VulnerabilityFaultTest, NonFiniteEffectPoisonsOutput) {
  Graph g = SmallNet();
  VulnerabilitySpec spec;
  spec.cls = VulnClass::kFloatingPoint;
  spec.effect = FaultEffect::kNonFinite;
  auto hook = std::make_shared<VulnerabilityFault>(spec);
  util::Status status;
  auto out = RunWithHook(g, runtime::OrtLikeExecutorConfig(), hook, &status);
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(tensor::HasNonFinite(out));
}

TEST(VulnerabilityFaultTest, DefaultEffectsMatchTable1Impacts) {
  EXPECT_EQ(DefaultEffect(VulnClass::kNullPointer), FaultEffect::kCrash);
  EXPECT_EQ(DefaultEffect(VulnClass::kAssertFailure), FaultEffect::kCrash);
  EXPECT_EQ(DefaultEffect(VulnClass::kOutOfBounds),
            FaultEffect::kCorruptSilent);
  EXPECT_EQ(DefaultEffect(VulnClass::kFloatingPoint),
            FaultEffect::kNonFinite);
}

TEST(BitFlipFaultTest, FlipsExactBit) {
  Graph g = SmallNet();
  BitFlipSpec spec;
  spec.target_op = graph::OpType::kGemm;
  spec.bit = 30;
  auto hook = std::make_shared<BitFlipFault>(spec);
  auto clean = RunWithHook(g, runtime::OrtLikeExecutorConfig(), nullptr);
  auto flipped = RunWithHook(g, runtime::OrtLikeExecutorConfig(), hook);
  EXPECT_EQ(hook->fire_count(), 1u);
  // Exponent-bit flip on the logits propagates through softmax.
  EXPECT_GT(tensor::MaxAbsDiff(clean, flipped), 0.0);
}

TEST(BitFlipFaultTest, BackendTargetingDisarms) {
  Graph g = SmallNet();
  BitFlipSpec spec;
  spec.vulnerable_gemm = runtime::GemmBackend::kNaive;
  auto hook = std::make_shared<BitFlipFault>(spec);
  (void)RunWithHook(g, runtime::OrtLikeExecutorConfig(), hook);  // blocked
  EXPECT_EQ(hook->fire_count(), 0u);
}

TEST(WeightBitFlipTest, FlipsChangeWeights) {
  Graph g = SmallNet();
  Graph original = g;
  size_t flipped = FlipRandomWeightBits(g, 16, 7);
  EXPECT_EQ(flipped, 16u);
  bool any_changed = false;
  for (const auto& [name, t] : original.initializers()) {
    if (!(*g.FindInitializer(name) == t)) any_changed = true;
  }
  EXPECT_TRUE(any_changed);
}

TEST(WeightBitFlipTest, DeterministicBySeed) {
  Graph a = SmallNet(), b = SmallNet();
  FlipRandomWeightBits(a, 8, 5);
  FlipRandomWeightBits(b, 8, 5);
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

// ----------------------------------------------------------- campaigns

class CampaignTest : public ::testing::TestWithParam<VulnClass> {};

TEST_P(CampaignTest, MvxDetectsEveryVulnClass) {
  Graph g = SmallNet();
  CampaignOptions opts;
  opts.cls = GetParam();
  opts.effect = DefaultEffect(GetParam());
  opts.seed = 21;
  auto report = RunVulnerabilityCampaign(g, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->fault_fired) << VulnClassName(GetParam());
  EXPECT_TRUE(report->detected) << VulnClassName(GetParam());
  // The MVX promise: no wrong output is ever released as OK.
  EXPECT_FALSE(report->wrong_output_released);
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, CampaignTest,
    ::testing::Values(VulnClass::kOutOfBounds, VulnClass::kNullPointer,
                      VulnClass::kFloatingPoint, VulnClass::kIntegerOverflow,
                      VulnClass::kUseAfterFree, VulnClass::kAssertFailure),
    [](const auto& info) {
      return std::string(VulnClassName(info.param));
    });

TEST(CampaignTest, UnusedLibraryMeansNoDetectionEvents) {
  // Control: plant the bug in a GEMM backend NO pool recipe combines
  // with these stages' variants, by restricting it to a runtime name
  // that never matches. The campaign must report a quiet system.
  Graph g = SmallNet();
  CampaignOptions opts;
  opts.cls = VulnClass::kOutOfBounds;
  opts.seed = 22;
  auto report = RunVulnerabilityCampaign(g, opts);
  ASSERT_TRUE(report.ok());
  // With the default pool, the blocked-GEMM library IS used, so this is
  // a positive control; detection correlates exactly with firing.
  EXPECT_EQ(report->detected, report->fault_fired);
}

TEST(CampaignTest, ServiceSurvivesUnderMajorityVote) {
  Graph g = SmallNet();
  CampaignOptions opts;
  opts.cls = VulnClass::kNullPointer;
  opts.effect = FaultEffect::kCrash;
  opts.seed = 23;
  auto report = RunVulnerabilityCampaign(g, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->detected);
  // Crashing variants are outvoted; healthy majority keeps serving.
  EXPECT_TRUE(report->service_survived);
  EXPECT_FALSE(report->wrong_output_released);
}

// ------------------------------------------- lifecycle (ISSUE 4 tentpole)

const core::Supervisor::SlotInfo* FindSlot(
    const LifecycleCampaignReport& report, const std::string& id) {
  for (const auto& s : report.slots) {
    if (s.variant_id == id) return &s;
  }
  return nullptr;
}

TEST(WindowedFaultTest, GoesQuietAfterFireBudget) {
  Graph g = SmallNet();
  WindowedFaultSpec spec;
  spec.effect = FaultEffect::kCorruptSilent;
  spec.fire_limit = 1;
  auto hook = std::make_shared<WindowedFault>(spec);
  auto clean = RunWithHook(g, runtime::OrtLikeExecutorConfig(), nullptr);
  auto dirty = RunWithHook(g, runtime::OrtLikeExecutorConfig(), hook);
  EXPECT_EQ(hook->fire_count(), 1u);
  EXPECT_GT(tensor::MaxAbsDiff(clean, dirty), 0.0);
  // Budget spent: subsequent executions through the same hook run clean.
  auto after = RunWithHook(g, runtime::OrtLikeExecutorConfig(), hook);
  EXPECT_EQ(hook->fire_count(), 1u);
  EXPECT_EQ(tensor::MaxAbsDiff(clean, after), 0.0);
}

TEST(LifecycleCampaignTest, CrashThenRestartReadmitsAfterProbation) {
  Graph g = SmallNet();
  LifecycleCampaignOptions opts;
  opts.effect = FaultEffect::kCrash;
  opts.fire_limit = 1;  // transient: the respawned instance runs clean
  opts.seed = 31;
  auto report = RunLifecycleCampaign(g, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->fault_fired);
  // Zero aborts: every batch completes from the surviving panel.
  EXPECT_FALSE(report->aborted) << report->abort_message;
  EXPECT_EQ(report->completed_batches, opts.num_batches);
  EXPECT_FALSE(report->wrong_output_released);
  // The crashed variant was quarantined, re-bootstrapped (a genuinely
  // fresh spawn) and re-admitted after probation.
  EXPECT_GE(report->quarantines, 1u);
  EXPECT_GE(report->readmissions, 1u);
  EXPECT_EQ(report->retirements, 0u);
  EXPECT_GT(report->spawned_total, 6u);  // 2 stages x 3 + >=1 respawn
  const auto* slot = FindSlot(*report, opts.target_variant);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->state, core::VariantLifecycle::kHealthy);
  EXPECT_GE(slot->readmissions, 1u);
}

TEST(LifecycleCampaignTest, TamperThenQuarantineKeepsServingCleanOutputs) {
  Graph g = SmallNet();
  LifecycleCampaignOptions opts;
  opts.effect = FaultEffect::kCorruptSilent;  // output tamper
  opts.fire_limit = 1;
  opts.seed = 37;
  auto report = RunLifecycleCampaign(g, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->fault_fired);
  EXPECT_FALSE(report->aborted) << report->abort_message;
  EXPECT_EQ(report->completed_batches, opts.num_batches);
  // The tampered output never escapes: the majority bloc wins the vote.
  EXPECT_FALSE(report->wrong_output_released);
  EXPECT_GE(report->quarantines, 1u);
  EXPECT_GE(report->readmissions, 1u);
  const auto* slot = FindSlot(*report, opts.target_variant);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->state, core::VariantLifecycle::kHealthy);
}

TEST(LifecycleCampaignTest, PersistentFaultExhaustsRetriesAndRetires) {
  Graph g = SmallNet();
  LifecycleCampaignOptions opts;
  opts.effect = FaultEffect::kCorruptSilent;
  opts.fire_limit = -1;  // survives re-provisioning
  opts.num_batches = 8;  // room for quarantine -> probation x2 -> retire
  opts.seed = 41;
  auto report = RunLifecycleCampaign(g, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->aborted) << report->abort_message;
  EXPECT_EQ(report->completed_batches, opts.num_batches);
  EXPECT_FALSE(report->wrong_output_released);
  // Probation keeps failing until the retry budget (2) is spent.
  EXPECT_EQ(report->retirements, 1u);
  EXPECT_EQ(report->readmissions, 0u);
  EXPECT_GE(report->quarantines, 2u);
  const auto* slot = FindSlot(*report, opts.target_variant);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->state, core::VariantLifecycle::kRetired);
  // The stage keeps serving on the floor panel of two voters.
  int voting = 0;
  for (const auto& s : report->slots) {
    if (s.stage == 0 && (s.state == core::VariantLifecycle::kHealthy ||
                         s.state == core::VariantLifecycle::kSuspect)) {
      ++voting;
    }
  }
  EXPECT_EQ(voting, 2);
}

TEST(LifecycleCampaignTest, FloorPanelRefusesToShrinkBelowMinPanel) {
  Graph g = SmallNet();
  LifecycleCampaignOptions opts;
  opts.effect = FaultEffect::kCrash;
  opts.fire_limit = -1;  // crashes on every attempt, forever
  opts.num_batches = 6;
  opts.seed = 43;
  opts.reaction = core::ReactionPolicy::Builder()
                      .QuarantineAndRestart()
                      .MinPanel(3)  // == panel size: shrink always blocked
                      .DissentThreshold(1)
                      .RetryBudget(1)
                      .Backoff(0, 2.0, 1'000)
                      .Build();
  auto report = RunLifecycleCampaign(g, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // At the floor the slot stays in the panel (Suspect, auto-dissenting);
  // majority of the remaining healthy members still carries every batch.
  EXPECT_EQ(report->quarantines, 0u);
  EXPECT_FALSE(report->aborted) << report->abort_message;
  EXPECT_EQ(report->completed_batches, opts.num_batches);
  EXPECT_FALSE(report->wrong_output_released);
  const auto* slot = FindSlot(*report, opts.target_variant);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->state, core::VariantLifecycle::kSuspect);
}

}  // namespace
}  // namespace mvtee::fault
