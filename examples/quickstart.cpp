// Quickstart: protect a model with MVTEE in ~60 lines.
//
//   1. Build (or load) a model graph.
//   2. Run the offline MVX tool: partition, diversify, encrypt.
//   3. Boot the platform: simulated CPU, variant host, monitor TEE.
//   4. Initialize — attestation, key distribution, two-stage bootstrap.
//   5. Open a session against the monitor's request loop and submit.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/monitor.h"
#include "core/offline.h"
#include "core/variant_host.h"
#include "graph/model_zoo.h"

using namespace mvtee;

int main() {
  // 1. A ResNet-50-style model with deterministic synthetic weights.
  graph::ZooConfig zoo;
  zoo.input_hw = 32;
  graph::Graph model = graph::BuildModel(graph::ModelKind::kResNet50, zoo);
  std::printf("model: resnet-50, %lld nodes, %.1f KB parameters\n",
              static_cast<long long>(model.num_nodes()),
              model.ParameterBytes() / 1024.0);

  // 2. Offline tool: 5 random-balanced partitions, 3 diversified
  //    variants per partition, everything sealed into encrypted storage.
  core::OfflineOptions offline;
  offline.num_partitions = 5;
  offline.pool.variants_per_stage = 3;
  auto bundle = core::RunOfflineTool(model, offline);
  if (!bundle.ok()) {
    std::printf("offline tool failed: %s\n",
                bundle.status().ToString().c_str());
    return 1;
  }
  std::printf("offline: %lld stages, %zu variants, %zu encrypted files\n",
              static_cast<long long>(bundle->num_stages),
              bundle->variants.size(), bundle->store->size());

  // 3. Platform: a simulated CPU package and the untrusted host that
  //    places variant TEEs.
  tee::SimulatedCpu cpu;
  core::VariantHost host(&cpu, bundle->store);

  // 4. Monitor TEE + attested initialization. MVX on every stage with
  //    3 variants: full protection.
  core::MonitorConfig config;
  config.vote = core::VotePolicy::kUnanimous;
  auto monitor = core::Monitor::Create(&cpu, config);
  if (!monitor.ok()) return 1;
  auto status = (*monitor)->Initialize(
      *bundle, core::MvxSelection::Uniform(*bundle, 3), host);
  if (!status.ok()) {
    std::printf("initialization failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("initialized: %zu attested variant bindings\n",
              (*monitor)->bindings().size());

  // 5. Protected inference through the long-lived request API: start
  //    the request loop, open a session, submit one request and wait on
  //    its future. (One-shot batch vectors still work through the
  //    Run() compatibility wrapper.)
  util::Rng rng(1);
  auto input = tensor::Tensor::RandomUniform(
      tensor::Shape({1, 3, zoo.input_hw, zoo.input_hw}), rng);
  if (!(*monitor)->StartService().ok()) return 1;
  auto session = (*monitor)->OpenSession();
  if (!session.ok()) return 1;
  auto pending = (*session)->Submit({{input}});
  if (!pending.ok()) {
    std::printf("submit rejected: %s\n",
                pending.status().ToString().c_str());
    return 1;
  }
  core::InferenceResponse response = pending->get();
  if (!response.status.ok()) {
    std::printf("inference failed: %s\n",
                response.status.ToString().c_str());
    return 1;
  }

  // Top-1 class of the (softmax) output.
  const tensor::Tensor& probs = response.outputs[0];
  int64_t best = 0;
  for (int64_t i = 1; i < probs.num_elements(); ++i) {
    if (probs.at(i) > probs.at(best)) best = i;
  }
  std::printf(
      "inference OK: top-1 class %lld (p=%.4f), %llu checkpoints verified, "
      "served in %lld us\n",
      static_cast<long long>(best), probs.at(best),
      static_cast<unsigned long long>(
          (*monitor)->ConsumeStats().checkpoints_evaluated),
      static_cast<long long>(response.latency_us));

  (void)(*monitor)->Shutdown();
  host.JoinAll();
  return 0;
}
