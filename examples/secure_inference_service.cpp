// A cloud secure-inference service walk-through (paper Figure 2 + 6).
//
// Plays all three roles end to end:
//   - the MODEL OWNER runs the offline tool, holds the variant keys, and
//     later orders a partial variant update;
//   - the (untrusted) ORCHESTRATOR places init-variant TEEs and can only
//     see encrypted files;
//   - the MONITOR attests every TEE, distributes keys, streams user
//     batches through the pipelined partition DAG, and audits bindings.
//
// Build & run:  ./build/examples/secure_inference_service
#include <cstdio>

#include <thread>

#include "core/monitor.h"
#include "core/offline.h"
#include "core/owner.h"
#include "core/variant_host.h"
#include "graph/model_zoo.h"
#include "transport/channel.h"

using namespace mvtee;

int main() {
  std::printf("=== MVTEE secure inference service ===\n\n");

  // ---------------------------------------------------- offline phase
  std::printf("[owner] building MobileNetV3 and running the offline MVX "
              "tool...\n");
  graph::ZooConfig zoo;
  zoo.input_hw = 32;
  graph::Graph model =
      graph::BuildModel(graph::ModelKind::kMobileNetV3, zoo);

  core::OfflineOptions offline;
  offline.num_partitions = 4;
  offline.pool.variants_per_stage = 4;  // spare capacity for updates
  auto bundle = core::RunOfflineTool(model, offline);
  if (!bundle.ok()) {
    std::printf("offline tool failed: %s\n",
                bundle.status().ToString().c_str());
    return 1;
  }
  std::printf("[owner] partition balance: %.2fx (1.0 = perfect)\n",
              bundle->partition_set.CostImbalance());
  for (const auto& v : bundle->variants) {
    std::printf("[owner]   variant %-8s stage %d runtime %-10s (sealed)\n",
                v.variant_id.c_str(), v.stage, v.runtime_name.c_str());
  }

  // ----------------------------------------------------- online phase
  std::printf("\n[orchestrator] placing TEEs (sees only ciphertext: %zu "
              "protected files)\n",
              bundle->store->size());
  tee::SimulatedCpu cpu;
  core::VariantHost::Options host_options;
  host_options.network = transport::NetworkCostModel::TenGbE();
  core::VariantHost host(&cpu, bundle->store, host_options);

  core::MonitorConfig config;
  config.vote = core::VotePolicy::kMajority;
  config.reaction = core::ReactionPolicy::ContinueWithWinner();
  config.mode = core::ExecMode::kAsync;
  auto monitor = core::Monitor::Create(&cpu, config);
  if (!monitor.ok()) return 1;

  // Fig. 6 steps 1-3, 8: the owner attests the monitor over an RA-TLS
  // handshake (challenge-response on the monitor's hardware-signed
  // report), provisions the MVX configuration + variant keys with a
  // fresh nonce, and receives the nonce-bound initialization evidence.
  std::printf("[owner] attesting the monitor and provisioning 2 variants "
              "per stage...\n");
  auto [owner_endpoint, monitor_endpoint] = transport::CreateChannel();
  std::thread owner_service([&, ep = std::move(monitor_endpoint)]() mutable {
    (void)core::ServeOwner(**monitor, host, std::move(ep));
  });
  core::ModelOwner owner(*bundle);
  auto status = owner.ProvisionDeployment(
      std::move(owner_endpoint), cpu, (*monitor)->enclave().measurement(),
      core::MvxSelection::Uniform(*bundle, 2));
  if (!status.ok()) {
    std::printf("provisioning failed: %s\n", status.ToString().c_str());
    return 1;
  }
  // Combined attestation of every bound variant TEE through the monitor.
  auto verified = owner.VerifyDeployment(cpu, host.init_variant_measurement());
  std::printf("[owner] combined attestation: %zu variant TEEs verified\n",
              verified.ok() ? *verified : 0);
  owner.Disconnect();
  owner_service.join();
  for (const auto& b : (*monitor)->bindings()) {
    std::printf("[monitor]   bound %-8s (stage %d, enclave report #%llu)\n",
                b.variant_id.c_str(), b.stage,
                static_cast<unsigned long long>(b.enclave_report_id));
  }

  // ------------------------------------------------ streaming service
  std::printf("\n[service] streaming 16 user batches through the "
              "pipeline...\n");
  util::Rng rng(7);
  std::vector<std::vector<tensor::Tensor>> batches;
  for (int i = 0; i < 16; ++i) {
    batches.push_back({tensor::Tensor::RandomUniform(
        tensor::Shape({1, 3, zoo.input_hw, zoo.input_hw}), rng)});
  }
  core::RunStats stats;
  auto outputs = (*monitor)->Run(
      batches, core::RunOptions{.pipelined = true, .stats = &stats});
  if (!outputs.ok()) {
    std::printf("service failed: %s\n", outputs.status().ToString().c_str());
    return 1;
  }
  std::printf("[service] %zu results | %.1f batches/s (virtual) | "
              "%.2f ms/result | %llu checkpoints | %llu divergences\n",
              outputs->size(), stats.ThroughputPerSec(),
              stats.MeanLatencyUs() / 1000.0,
              static_cast<unsigned long long>(stats.checkpoints_evaluated),
              static_cast<unsigned long long>(stats.divergences));

  // -------------------------------------------------- partial update
  std::printf("\n[owner] rotating stage 1 to fresh variants (partial "
              "update, no TEE reuse)...\n");
  status = (*monitor)->UpdateStage(*bundle, host, 1, {"s1.v2", "s1.v3"});
  if (!status.ok()) {
    std::printf("update failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto post_update = (*monitor)->Run({batches[0]});
  std::printf("[service] post-update inference: %s\n",
              post_update.ok() ? "OK" : post_update.status().ToString().c_str());

  int active = 0, retired = 0;
  for (const auto& b : (*monitor)->bindings()) {
    (b.active ? active : retired)++;
  }
  std::printf("[monitor] audit log: %d active bindings, %d retired "
              "(append-only)\n",
              active, retired);

  (void)(*monitor)->Shutdown();
  host.JoinAll();
  std::printf("\n=== service shut down cleanly ===\n");
  return 0;
}
