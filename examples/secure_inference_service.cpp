// A cloud secure-inference service walk-through (paper Figure 2 + 6).
//
// Plays all four roles end to end:
//   - the MODEL OWNER runs the offline tool, holds the variant keys, and
//     later orders a partial variant update;
//   - the (untrusted) ORCHESTRATOR places init-variant TEEs and can only
//     see encrypted files;
//   - the MONITOR attests every TEE, distributes keys, interleaves
//     concurrent user sessions through the pipelined partition DAG, and
//     audits bindings;
//   - USERS attest the monitor over the RA-TLS front end and submit
//     encrypted inference requests over per-session AEAD channels.
//
// Build & run:  ./build/examples/secure_inference_service
#include <cstdio>

#include <atomic>
#include <thread>

#include "core/monitor.h"
#include "core/offline.h"
#include "core/owner.h"
#include "core/variant_host.h"
#include "graph/model_zoo.h"
#include "obs/metrics.h"
#include "service/inference_service.h"
#include "transport/channel.h"

using namespace mvtee;

int main() {
  std::printf("=== MVTEE secure inference service ===\n\n");

  // ---------------------------------------------------- offline phase
  std::printf("[owner] building MobileNetV3 and running the offline MVX "
              "tool...\n");
  graph::ZooConfig zoo;
  zoo.input_hw = 32;
  graph::Graph model =
      graph::BuildModel(graph::ModelKind::kMobileNetV3, zoo);

  core::OfflineOptions offline;
  offline.num_partitions = 4;
  offline.pool.variants_per_stage = 4;  // spare capacity for updates
  auto bundle = core::RunOfflineTool(model, offline);
  if (!bundle.ok()) {
    std::printf("offline tool failed: %s\n",
                bundle.status().ToString().c_str());
    return 1;
  }
  std::printf("[owner] partition balance: %.2fx (1.0 = perfect)\n",
              bundle->partition_set.CostImbalance());
  for (const auto& v : bundle->variants) {
    std::printf("[owner]   variant %-8s stage %d runtime %-10s (sealed)\n",
                v.variant_id.c_str(), v.stage, v.runtime_name.c_str());
  }

  // ----------------------------------------------------- online phase
  std::printf("\n[orchestrator] placing TEEs (sees only ciphertext: %zu "
              "protected files)\n",
              bundle->store->size());
  tee::SimulatedCpu cpu;
  core::VariantHost::Options host_options;
  host_options.network = transport::NetworkCostModel::TenGbE();
  core::VariantHost host(&cpu, bundle->store, host_options);

  core::MonitorConfig config;
  config.vote = core::VotePolicy::kMajority;
  config.reaction = core::ReactionPolicy::ContinueWithWinner();
  config.mode = core::ExecMode::kAsync;
  auto monitor = core::Monitor::Create(&cpu, config);
  if (!monitor.ok()) return 1;

  // Fig. 6 steps 1-3, 8: the owner attests the monitor over an RA-TLS
  // handshake (challenge-response on the monitor's hardware-signed
  // report), provisions the MVX configuration + variant keys with a
  // fresh nonce, and receives the nonce-bound initialization evidence.
  std::printf("[owner] attesting the monitor and provisioning 2 variants "
              "per stage...\n");
  auto [owner_endpoint, monitor_endpoint] = transport::CreateChannel();
  std::thread owner_service([&, ep = std::move(monitor_endpoint)]() mutable {
    (void)core::ServeOwner(**monitor, host, std::move(ep));
  });
  core::ModelOwner owner(*bundle);
  auto status = owner.ProvisionDeployment(
      std::move(owner_endpoint), cpu, (*monitor)->enclave().measurement(),
      core::MvxSelection::Uniform(*bundle, 2));
  if (!status.ok()) {
    std::printf("provisioning failed: %s\n", status.ToString().c_str());
    return 1;
  }
  // Combined attestation of every bound variant TEE through the monitor.
  auto verified = owner.VerifyDeployment(cpu, host.init_variant_measurement());
  std::printf("[owner] combined attestation: %zu variant TEEs verified\n",
              verified.ok() ? *verified : 0);
  owner.Disconnect();
  owner_service.join();
  for (const auto& b : (*monitor)->bindings()) {
    std::printf("[monitor]   bound %-8s (stage %d, enclave report #%llu)\n",
                b.variant_id.c_str(), b.stage,
                static_cast<unsigned long long>(b.enclave_report_id));
  }

  // ---------------------------------------- attested service front end
  // The monitor now serves a long-lived request API: a Listener accepts
  // client connections, each client attests the monitor (its RA-TLS
  // report binds the session key into report_data), derives per-session
  // AEAD keys, and submits encrypted requests. Concurrent sessions are
  // coalesced by the admission loop into shared pipelined passes.
  std::printf("\n[service] opening the attested front end; 8 users x 2 "
              "encrypted requests each...\n");
  transport::Listener listener;
  auto service = service::InferenceService::Start(**monitor, listener);
  if (!service.ok()) {
    std::printf("service start failed: %s\n",
                service.status().ToString().c_str());
    return 1;
  }

  std::atomic<int> completed{0};
  std::atomic<int64_t> latency_sum_us{0};
  std::vector<std::thread> users;
  for (int u = 0; u < 8; ++u) {
    users.emplace_back([&, u] {
      // Every user independently verifies the monitor's measurement
      // before trusting it with plaintext inputs.
      auto client = service::InferenceClient::Connect(
          listener, cpu, (*monitor)->enclave().measurement());
      if (!client.ok()) return;
      util::Rng rng(100 + static_cast<uint64_t>(u));
      for (int r = 0; r < 2; ++r) {
        auto result = (*client)->Infer({tensor::Tensor::RandomUniform(
            tensor::Shape({1, 3, zoo.input_hw, zoo.input_hw}), rng)});
        if (result.ok()) {
          completed.fetch_add(1);
          latency_sum_us.fetch_add((*client)->last_latency_us());
        }
      }
      (*client)->Disconnect();
    });
  }
  for (auto& t : users) t.join();
  (*service)->Stop();

  obs::Registry& reg = (*monitor)->metrics();
  std::printf("[service] %d/16 requests served | %.2f ms/request | "
              "%llu admission groups (coalesced from %llu requests) | "
              "%llu rejected\n",
              completed.load(),
              completed.load() > 0
                  ? latency_sum_us.load() / 1000.0 / completed.load()
                  : 0.0,
              static_cast<unsigned long long>(
                  reg.GetCounter("service.groups_total").value()),
              static_cast<unsigned long long>(
                  reg.GetCounter("service.requests_total").value()),
              static_cast<unsigned long long>(
                  reg.GetCounter("service.rejected_total").value()));

  // -------------------------------------------------- partial update
  std::printf("\n[owner] rotating stage 1 to fresh variants (partial "
              "update, no TEE reuse)...\n");
  status = (*monitor)->UpdateStage(*bundle, host, 1, {"s1.v2", "s1.v3"});
  if (!status.ok()) {
    std::printf("update failed: %s\n", status.ToString().c_str());
    return 1;
  }
  // The session API drives the restarted request loop directly.
  util::Rng rng(7);
  std::string post_update = "OK";
  if (auto ok = (*monitor)->StartService(); !ok.ok()) {
    post_update = ok.ToString();
  } else if (auto session = (*monitor)->OpenSession(); !session.ok()) {
    post_update = session.status().ToString();
  } else if (auto pending = (*session)->Submit({{tensor::Tensor::RandomUniform(
                 tensor::Shape({1, 3, zoo.input_hw, zoo.input_hw}), rng)}});
             !pending.ok()) {
    post_update = pending.status().ToString();
  } else if (core::InferenceResponse response = pending->get();
             !response.status.ok()) {
    post_update = response.status.ToString();
  }
  std::printf("[service] post-update inference: %s\n", post_update.c_str());

  int active = 0, retired = 0;
  for (const auto& b : (*monitor)->bindings()) {
    (b.active ? active : retired)++;
  }
  std::printf("[monitor] audit log: %d active bindings, %d retired "
              "(append-only)\n",
              active, retired);

  (void)(*monitor)->Shutdown();
  host.JoinAll();
  std::printf("\n=== service shut down cleanly ===\n");
  return 0;
}
