// Selective MVX tuning: explore the security/performance trade-off space
// for one model and print a decision table.
//
// Vertical scaling = how many partitions run MVX; horizontal scaling =
// panel size per MVX partition. "Coverage" is the fraction of model
// compute under multi-variant protection.
//
// Build & run:  ./build/examples/selective_mvx_tuning
#include <cstdio>

#include "bench/bench_common.h"

using namespace mvtee;
using namespace mvtee::bench;

int main() {
  std::printf("=== Selective MVX tuning: resnet-152 ===\n\n");
  graph::Graph model =
      graph::BuildModel(graph::ModelKind::kResNet152, BenchZooConfig());
  auto batches = MakeBatches(model, 12, 23);
  Outcome base = RunBaseline(model, batches);
  std::printf("original model: %.1f batches/s, %.2f ms/batch\n\n",
              base.throughput, base.mean_latency_ms);

  MvteeSetup setup = FundamentalSetup(5);
  setup.pool.variants_per_stage = 5;
  auto bundle = BuildBenchBundle(model, setup);
  if (!bundle.ok()) {
    std::printf("offline failed: %s\n", bundle.status().ToString().c_str());
    return 1;
  }

  // MVX configurations via the fluent selection builder: Uniform() sets
  // the default panel size, Stage() overrides individual partitions.
  using Builder = core::MvxSelection::Builder;
  struct Config {
    const char* name;
    core::MvxSelection selection;
  };
  const std::vector<Config> configs = {
      {"fast path only (0 MVX)", Builder().Uniform(1).Build(*bundle)},
      {"1 stage x3 variants",
       Builder().Uniform(1).Stage(2, 3).Build(*bundle)},
      {"1 stage x5 variants",
       Builder().Uniform(1).Stage(2, 5).Build(*bundle)},
      {"3 stages x3 variants",
       Builder().Uniform(1).Stage(2, 3).Stage(3, 3).Stage(4, 3).Build(
           *bundle)},
      {"full MVX x3 variants", Builder().Uniform(3).Build(*bundle)},
  };

  // Per-stage compute share for the coverage column.
  double total_cost = 0;
  std::vector<double> stage_cost;
  for (const auto& p : bundle->partition_set.partitions) {
    stage_cost.push_back(p.cost);
    total_cost += p.cost;
  }

  std::printf("%-26s %9s | %9s %9s | %9s %9s\n", "configuration",
              "coverage", "seq tput", "seq lat", "pipe tput", "pipe lat");
  std::printf("%-26s %9s | %19s | %19s\n", "", "", "(x original)",
              "(x original)");
  PrintRule();
  for (const auto& cfg : configs) {
    double covered = 0;
    for (size_t s = 0; s < cfg.selection.stage_variant_ids.size(); ++s) {
      if (cfg.selection.stage_variant_ids[s].size() > 1) {
        covered += stage_cost[s];
      }
    }
    MvteeSetup run_setup = setup;
    run_setup.explicit_selection = cfg.selection.stage_variant_ids;
    auto seq = RunMvtee(*bundle, run_setup, batches, false);
    auto pipe = RunMvtee(*bundle, run_setup, batches, true);
    if (!seq.ok() || !pipe.ok()) {
      std::printf("%-26s failed\n", cfg.name);
      continue;
    }
    std::printf("%-26s %8.0f%% | %8.2fx %8.2fx | %8.2fx %8.2fx\n", cfg.name,
                covered / total_cost * 100,
                Norm(seq->throughput, base.throughput),
                Norm(seq->mean_latency_ms, base.mean_latency_ms),
                Norm(pipe->throughput, base.throughput),
                Norm(pipe->mean_latency_ms, base.mean_latency_ms));
  }
  PrintRule();
  std::printf(
      "\nreading the table: pick the cheapest configuration whose coverage\n"
      "includes the model's sensitive layers (e.g. the fine-tuned head in\n"
      "transfer-learning deployments) — pipelined selective MVX typically\n"
      "beats the unprotected original while covering the hot spots.\n");
  return 0;
}
