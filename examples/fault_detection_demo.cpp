// Fault-attack detection demo: FrameFlip-style library fault + a
// TensorFlow-CVE-style crash, detected and absorbed by MVX.
//
// Scenario 1 — library-level runtime fault (cf. FrameFlip / Terminal
// Brain Damage): an attacker flips a high-exponent bit in the output of
// conv kernels, but only variants built on the "vulnerable BLAS" are
// affected. With unanimous voting the service refuses the batch; with
// majority voting the healthy panel keeps serving correct answers.
//
// Scenario 2 — memory-safety CVE (DoS class): the vulnerable variant
// crashes; the majority survives and the monitor logs the failure.
//
// Build & run:  ./build/examples/fault_detection_demo
#include <cstdio>

#include "core/monitor.h"
#include "core/offline.h"
#include "core/variant_host.h"
#include "fault/injectors.h"
#include "graph/model_zoo.h"
#include "runtime/executor.h"

using namespace mvtee;

namespace {

core::OfflineBundle MakeBundle(const graph::Graph& model) {
  core::OfflineOptions offline;
  offline.num_partitions = 3;
  offline.pool.variants_per_stage = 3;
  auto bundle = core::RunOfflineTool(model, offline);
  MVTEE_CHECK(bundle.ok());
  return std::move(*bundle);
}

void AttachBitFlip(core::VariantHost& host,
                   const core::OfflineBundle& bundle) {
  // The fault lives in one "library" (the blocked-GEMM backend); every
  // variant gets the hook but it only arms where that backend is used.
  for (const auto& v : bundle.variants) {
    fault::BitFlipSpec spec;
    spec.bit = 30;  // exponent bit: catastrophic error amplification
    spec.target_op = graph::OpType::kConv2d;
    spec.vulnerable_gemm = runtime::GemmBackend::kBlocked;
    host.SetFaultHook(v.variant_id,
                      std::make_shared<fault::BitFlipFault>(spec));
  }
}

}  // namespace

int main() {
  std::printf("=== MVTEE fault-detection demo ===\n\n");
  graph::ZooConfig zoo;
  zoo.input_hw = 32;
  graph::Graph model = graph::BuildModel(graph::ModelKind::kGoogleNet, zoo);
  util::Rng rng(3);
  auto input = tensor::Tensor::RandomUniform(
      tensor::Shape({1, 3, zoo.input_hw, zoo.input_hw}), rng);

  // ---- Scenario 1a: unanimous voting => detect and refuse.
  {
    std::printf("[1a] bit-flip fault, unanimous voting:\n");
    auto bundle = MakeBundle(model);
    tee::SimulatedCpu cpu;
    core::VariantHost host(&cpu, bundle.store);
    AttachBitFlip(host, bundle);

    core::MonitorConfig config;  // unanimous + abort (defaults)
    auto monitor = core::Monitor::Create(&cpu, config);
    MVTEE_CHECK(monitor.ok());
    MVTEE_CHECK((*monitor)
                    ->Initialize(bundle,
                                 core::MvxSelection::Uniform(bundle, 3), host)
                    .ok());
    MVTEE_CHECK((*monitor)->StartService().ok());
    auto session = (*monitor)->OpenSession();
    MVTEE_CHECK(session.ok());
    auto pending = (*session)->Submit({{input}});
    MVTEE_CHECK(pending.ok());
    core::InferenceResponse response = pending->get();
    std::printf("     result: %s\n",
                response.status.ok() ? "ACCEPTED (!!)"
                                     : response.status.ToString().c_str());
    std::printf("     divergences observed: %llu — attack detected before "
                "any output left the system\n\n",
                static_cast<unsigned long long>(
                    (*monitor)->ConsumeStats().divergences));
    (void)(*monitor)->Shutdown();
    host.JoinAll();
  }

  // ---- Scenario 1b: majority voting => detect, outvote, keep serving.
  {
    std::printf("[1b] same fault, majority voting + continue:\n");
    auto bundle = MakeBundle(model);
    tee::SimulatedCpu cpu;
    core::VariantHost host(&cpu, bundle.store);
    AttachBitFlip(host, bundle);

    core::MonitorConfig config;
    config.vote = core::VotePolicy::kMajority;
    config.reaction = core::ReactionPolicy::ContinueWithWinner();
    auto monitor = core::Monitor::Create(&cpu, config);
    MVTEE_CHECK(monitor.ok());
    MVTEE_CHECK((*monitor)
                    ->Initialize(bundle,
                                 core::MvxSelection::Uniform(bundle, 3), host)
                    .ok());
    MVTEE_CHECK((*monitor)->StartService().ok());
    auto session = (*monitor)->OpenSession();
    MVTEE_CHECK(session.ok());
    auto pending = (*session)->Submit({{input}});
    MVTEE_CHECK(pending.ok());
    core::InferenceResponse response = pending->get();
    MVTEE_CHECK(response.status.ok());

    // Compare against the unprotected reference.
    auto ref_exec =
        runtime::Executor::Create(model, runtime::ReferenceExecutorConfig());
    MVTEE_CHECK(ref_exec.ok());
    auto expected = (*ref_exec)->Run({input});
    MVTEE_CHECK(expected.ok());
    std::printf("     result: served (cosine vs ground truth: %.6f)\n",
                tensor::CosineSimilarity(response.outputs[0], (*expected)[0]));
    std::printf("     divergences: %llu — corrupted variant outvoted\n\n",
                static_cast<unsigned long long>(
                    (*monitor)->ConsumeStats().divergences));
    (void)(*monitor)->Shutdown();
    host.JoinAll();
  }

  // ---- Scenario 2: crash-class CVE in one library.
  {
    std::printf("[2]  CVE-style crash (DoS class) in one library:\n");
    auto bundle = MakeBundle(model);
    tee::SimulatedCpu cpu;
    core::VariantHost host(&cpu, bundle.store);
    for (const auto& v : bundle.variants) {
      fault::VulnerabilitySpec spec;
      spec.cls = fault::VulnClass::kNullPointer;
      spec.effect = fault::FaultEffect::kCrash;
      spec.vulnerable_gemm = runtime::GemmBackend::kBlocked;
      host.SetFaultHook(v.variant_id,
                        std::make_shared<fault::VulnerabilityFault>(spec));
    }
    core::MonitorConfig config;
    config.vote = core::VotePolicy::kMajority;
    config.reaction = core::ReactionPolicy::ContinueWithWinner();
    auto monitor = core::Monitor::Create(&cpu, config);
    MVTEE_CHECK(monitor.ok());
    MVTEE_CHECK((*monitor)
                    ->Initialize(bundle,
                                 core::MvxSelection::Uniform(bundle, 3), host)
                    .ok());
    MVTEE_CHECK((*monitor)->StartService().ok());
    auto session = (*monitor)->OpenSession();
    MVTEE_CHECK(session.ok());
    auto pending = (*session)->Submit({{input}});
    MVTEE_CHECK(pending.ok());
    core::InferenceResponse response = pending->get();
    std::printf("     result: %s | variant failures: %llu | service "
                "survived: %s\n",
                response.status.ok() ? "served" : "refused",
                static_cast<unsigned long long>(
                    (*monitor)->ConsumeStats().variant_failures),
                response.status.ok() ? "yes" : "no");
    (void)(*monitor)->Shutdown();
    host.JoinAll();
  }

  std::printf("\n=== demo complete ===\n");
  return 0;
}
