// Kernel-layer microbench (DESIGN.md §14): the three levers of the
// throughput pass, each against the path it replaced.
//
//   1. Prepacked GEMM: FullyConnected through a PackedWeightCache-style
//      PackedGemmB vs the self-contained path that re-derives the B
//      operand every call, per backend, on a serving-shaped m=1 FC.
//      Acceptance floor: >= 1.3x on kNaive (always) and on kAvx2 where
//      the vector kernel dispatches.
//   2. Conv scratch: direct loops vs im2col+GEMM on a 3x3 and a 1x1
//      (identity-cols fast path) layer, with a steady-state gate that
//      the pooled im2col/pack scratch takes zero fresh allocations
//      (BufferPool miss delta == 0 once warm).
//   3. Elementwise dispatch: relu / relu6 / hardswish / add / softmax
//      through the AVX2 tier vs util::ScopedForceScalar on L2-resident
//      arrays, asserting the outputs stay bitwise identical.
//      Acceptance floor: hardswish >= 1.2x where AVX2 dispatches.
//
// Results go to stdout and to a JSON summary at $MVTEE_BENCH_JSON
// (default ./BENCH_kernels.json). Floors the host cannot fail are
// recorded as floor_applies=false + floor_waived=true, same convention
// as bench_data_plane.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/bench_common.h"
#include "runtime/gemm.h"
#include "runtime/kernels.h"
#include "tensor/tensor.h"
#include "util/buffer_pool.h"
#include "util/cpu_features.h"
#include "util/rng.h"

namespace mvtee::bench {
namespace {

using tensor::Shape;
using tensor::Tensor;

double MedianSeconds(std::vector<double> secs) {
  std::sort(secs.begin(), secs.end());
  return secs[secs.size() / 2];
}

template <typename Fn>
double TimeMedian(int reps, const Fn& fn) {
  std::vector<double> secs;
  secs.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const int64_t t0 = util::NowNanos();
    fn();
    secs.push_back(static_cast<double>(util::NowNanos() - t0) * 1e-9);
  }
  return MedianSeconds(std::move(secs));
}

// ------------------------------------------------- prepacked GEMM

struct PrepackResult {
  runtime::GemmBackend backend;
  int64_t m = 0, n = 0, k = 0;
  double repack_us = 0.0;     // FullyConnected, packed = nullptr
  double prepacked_us = 0.0;  // FullyConnected, bind-time PackedGemmB
  bool floor_applies = false;
  double speedup() const {
    return prepacked_us > 0 ? repack_us / prepacked_us : 0.0;
  }
};

PrepackResult RunPrepack(runtime::GemmBackend backend, int64_t m, int64_t n,
                         int64_t k) {
  util::Rng rng(static_cast<uint64_t>(n * 31 + k));
  const Tensor input = Tensor::RandomUniform(Shape({m, k}), rng);
  const Tensor weight = Tensor::RandomUniform(Shape({n, k}), rng);
  const Tensor bias = Tensor::RandomUniform(Shape({n}), rng);
  const runtime::PackedGemmB packed = runtime::PackGemmWeightTransposed(
      backend, weight.data(), n, k, &util::BufferPool::Default());

  PrepackResult out;
  out.backend = backend;
  out.m = m;
  out.n = n;
  out.k = k;

  auto repack = [&] {
    Tensor y = runtime::FullyConnected(input, weight, &bias, backend, nullptr);
    MVTEE_CHECK(y.shape().dim(0) == m);
  };
  auto prepacked = [&] {
    Tensor y = runtime::FullyConnected(input, weight, &bias, backend, &packed);
    MVTEE_CHECK(y.shape().dim(0) == m);
  };
  // Bitwise identity first (the cache only relocates values), then warm
  // the scratch pool so the timed loops measure reuse, not cold misses.
  {
    const Tensor a = runtime::FullyConnected(input, weight, &bias, backend,
                                             nullptr);
    const Tensor b = runtime::FullyConnected(input, weight, &bias, backend,
                                             &packed);
    MVTEE_CHECK(std::memcmp(a.data(), b.data(), a.byte_size()) == 0);
  }
  const int iters = 64;
  out.repack_us = TimeMedian(5, [&] {
                    for (int i = 0; i < iters; ++i) repack();
                  }) /
                  iters * 1e6;
  out.prepacked_us = TimeMedian(5, [&] {
                       for (int i = 0; i < iters; ++i) prepacked();
                     }) /
                     iters * 1e6;
  return out;
}

// ------------------------------------------------------------ conv

struct ConvResult {
  const char* label = "";
  double direct_us = 0.0;
  double im2col_us = 0.0;
  uint64_t warm_pool_misses = 0;  // fresh allocations once warm
  double ratio() const {
    return im2col_us > 0 ? direct_us / im2col_us : 0.0;
  }
};

ConvResult RunConv(const char* label, int64_t C, int64_t H, int64_t OC,
                   int64_t K, int64_t stride, int64_t padding,
                   runtime::GemmBackend gemm) {
  util::Rng rng(static_cast<uint64_t>(C * 131 + OC));
  const Tensor input = Tensor::RandomUniform(Shape({1, C, H, H}), rng);
  const Tensor weight = Tensor::RandomUniform(Shape({OC, C, K, K}), rng);
  const Tensor bias = Tensor::RandomUniform(Shape({OC}), rng);
  const runtime::ConvParams params{stride, padding, /*groups=*/1};

  ConvResult out;
  out.label = label;
  auto direct = [&] {
    runtime::Conv2d(input, weight, &bias, params, runtime::ConvAlgo::kDirect,
                    gemm);
  };
  auto im2col = [&] {
    runtime::Conv2d(input, weight, &bias, params, runtime::ConvAlgo::kIm2col,
                    gemm);
  };
  direct();  // warm
  im2col();  // warm scratch pool with this layer's im2col sizes

  const int iters = 8;
  const util::BufferPool::Stats warm = util::BufferPool::Default().stats();
  out.direct_us = TimeMedian(5, [&] {
                    for (int i = 0; i < iters; ++i) direct();
                  }) /
                  iters * 1e6;
  out.im2col_us = TimeMedian(5, [&] {
                    for (int i = 0; i < iters; ++i) im2col();
                  }) /
                  iters * 1e6;
  const util::BufferPool::Stats after = util::BufferPool::Default().stats();
  out.warm_pool_misses = after.misses - warm.misses;
  return out;
}

// ------------------------------------------------------ elementwise

struct ElementwiseResult {
  const char* op = "";
  double bytes_per_call = 0.0;  // reads + writes
  double vector_gbps = 0.0;     // default dispatch
  double scalar_gbps = 0.0;     // under ScopedForceScalar
  bool dispatched = false;      // did the AVX2 tier actually run?
  double speedup() const {
    return scalar_gbps > 0 ? vector_gbps / scalar_gbps : 0.0;
  }
};

// `probe` returns the current output pointer (re-evaluated after each
// run: ops that hand back a fresh Tensor move their storage).
template <typename Fn, typename Probe>
ElementwiseResult RunElementwise(const char* op, double bytes_per_call,
                                 const Probe& probe, size_t probe_bytes,
                                 const Fn& fn) {
  ElementwiseResult out;
  out.op = op;
  out.bytes_per_call = bytes_per_call;
  out.dispatched = util::UseAvx2Elementwise();

  const int iters = 256;
  fn();  // warm
  std::vector<uint8_t> vector_probe(probe_bytes);
  std::memcpy(vector_probe.data(), probe(), probe_bytes);
  out.vector_gbps = bytes_per_call * iters /
                    TimeMedian(5, [&] {
                      for (int i = 0; i < iters; ++i) fn();
                    }) /
                    1e9;
  {
    util::ScopedForceScalar force_scalar;
    fn();
    // Dispatch is a speed decision, never a diversity axis: the scalar
    // twin must reproduce the vector tier bit for bit.
    MVTEE_CHECK(std::memcmp(vector_probe.data(), probe(), probe_bytes) == 0);
    out.scalar_gbps = bytes_per_call * iters /
                      TimeMedian(5, [&] {
                        for (int i = 0; i < iters; ++i) fn();
                      }) /
                      1e9;
  }
  return out;
}

// --------------------------------------------------------------- main

const char* BackendName(runtime::GemmBackend b) {
  switch (b) {
    case runtime::GemmBackend::kNaive: return "naive";
    case runtime::GemmBackend::kBlocked: return "blocked";
    case runtime::GemmBackend::kTransposed: return "transposed";
    case runtime::GemmBackend::kAvx2: return "avx2";
  }
  return "unknown";
}

void WriteJson(const std::vector<PrepackResult>& packs,
               const std::vector<ConvResult>& convs,
               const std::vector<ElementwiseResult>& elws,
               uint64_t steady_pool_misses) {
  const char* path = std::getenv("MVTEE_BENCH_JSON");
  if (path == nullptr) path = "BENCH_kernels.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"kernels\",\n");
  std::fprintf(f, "  \"cpu_features\": \"%s\",\n",
               util::CpuFeatureString().c_str());
  std::fprintf(f, "  \"gemm_prepack\": [\n");
  for (size_t i = 0; i < packs.size(); ++i) {
    const PrepackResult& r = packs[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"m\": %lld, \"n\": %lld, "
                 "\"k\": %lld, \"repack_us\": %.2f, \"prepacked_us\": %.2f, "
                 "\"speedup_x\": %.2f, \"floor_applies\": %s, "
                 "\"floor_waived\": %s}%s\n",
                 BackendName(r.backend), static_cast<long long>(r.m),
                 static_cast<long long>(r.n), static_cast<long long>(r.k),
                 r.repack_us, r.prepacked_us, r.speedup(),
                 r.floor_applies ? "true" : "false",
                 r.floor_applies ? "false" : "true",
                 i + 1 < packs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"conv\": [\n");
  for (size_t i = 0; i < convs.size(); ++i) {
    const ConvResult& r = convs[i];
    std::fprintf(f,
                 "    {\"layer\": \"%s\", \"direct_us\": %.2f, "
                 "\"im2col_us\": %.2f, \"direct_over_im2col_x\": %.2f, "
                 "\"warm_pool_misses\": %llu}%s\n",
                 r.label, r.direct_us, r.im2col_us, r.ratio(),
                 static_cast<unsigned long long>(r.warm_pool_misses),
                 i + 1 < convs.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"steady_state_pool_misses\": %llu,\n"
               "  \"elementwise\": [\n",
               static_cast<unsigned long long>(steady_pool_misses));
  for (size_t i = 0; i < elws.size(); ++i) {
    const ElementwiseResult& r = elws[i];
    const bool floor_applies =
        r.dispatched && std::strcmp(r.op, "hardswish") == 0;
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"vector_gbps\": %.2f, "
                 "\"scalar_gbps\": %.2f, \"speedup_x\": %.2f, "
                 "\"dispatched\": %s, \"floor_applies\": %s, "
                 "\"floor_waived\": %s}%s\n",
                 r.op, r.vector_gbps, r.scalar_gbps, r.speedup(),
                 r.dispatched ? "true" : "false",
                 floor_applies ? "true" : "false",
                 floor_applies ? "false" : "true",
                 i + 1 < elws.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Main() {
  PrintFigureHeader("Kernel layer",
                    "Prepacked constant-weight GEMM, pooled im2col "
                    "scratch, and AVX2 elementwise dispatch vs the paths "
                    "they replaced");

  // 1. Prepacked vs per-call-repacked FullyConnected, serving shape
  //    (m=1 single-request inference; the pack cost the cache removes
  //    is n*k floats regardless of m).
  const bool avx2 = runtime::GemmAvx2Accelerated();
  std::printf("FC m=1 n=512 k=512 (prepacked vs per-call repack)\n");
  PrintRule();
  std::printf("%-10s | %10s %12s | %6s\n", "backend", "repack us",
              "prepacked us", "x");
  std::vector<PrepackResult> packs;
  for (auto backend :
       {runtime::GemmBackend::kNaive, runtime::GemmBackend::kBlocked,
        runtime::GemmBackend::kTransposed, runtime::GemmBackend::kAvx2}) {
    packs.push_back(RunPrepack(backend, 1, 512, 512));
    PrepackResult& r = packs.back();
    // The 1.3x floor binds on the scalar reference backend (kNaive,
    // host-independent) and on kAvx2 when the vector kernel dispatches;
    // kBlocked shares kNaive's layout and kTransposed's pack is a
    // straight copy of W, so those two are report-only.
    r.floor_applies =
        r.backend == runtime::GemmBackend::kNaive ||
        (r.backend == runtime::GemmBackend::kAvx2 && avx2);
    std::printf("%-10s | %10.2f %12.2f | %5.2fx%s\n", BackendName(r.backend),
                r.repack_us, r.prepacked_us, r.speedup(),
                !r.floor_applies         ? "  (report only)"
                : r.speedup() >= 1.3 ? ""
                                         : "  ** BELOW FLOOR **");
  }

  // 2. Conv direct vs im2col (diversity axis, report only) with the
  //    zero-fresh-allocation gate on the warm scratch pool.
  std::printf("\nConv2d direct vs im2col (pooled scratch)\n");
  PrintRule();
  std::printf("%-22s | %10s %10s | %6s | %s\n", "layer", "direct us",
              "im2col us", "d/i", "warm pool misses");
  auto base = MetricsBaseline();
  const runtime::GemmBackend conv_gemm =
      avx2 ? runtime::GemmBackend::kAvx2 : runtime::GemmBackend::kBlocked;
  std::vector<ConvResult> convs;
  convs.push_back(RunConv("3x3 s1 p1 16->32 @32", 16, 32, 32, 3, 1, 1,
                          conv_gemm));
  convs.push_back(RunConv("1x1 s1 p0 32->64 @16", 32, 16, 64, 1, 1, 0,
                          conv_gemm));
  uint64_t steady_pool_misses = 0;
  for (const ConvResult& r : convs) {
    steady_pool_misses += r.warm_pool_misses;
    std::printf("%-22s | %10.2f %10.2f | %5.2fx | %llu\n", r.label,
                r.direct_us, r.im2col_us, r.ratio(),
                static_cast<unsigned long long>(r.warm_pool_misses));
  }
  std::printf("steady-state fresh allocations: %llu (floor: 0)%s\n",
              static_cast<unsigned long long>(steady_pool_misses),
              steady_pool_misses == 0 ? "" : "  ** BELOW FLOOR **");
  obs::SyncDataPlaneMetrics();
  DumpMetricsJson("kernels/conv_steady_state", &base);

  // 3. Elementwise AVX2 tier vs forced-scalar, L2-resident arrays.
  const size_t n = 64 << 10;  // 256 KiB per array
  util::Rng rng(5);
  std::vector<float> x(n), y(n), z(n);
  for (auto& v : x) v = rng.UniformFloat(-8.0f, 8.0f);
  for (auto& v : y) v = rng.UniformFloat(-8.0f, 8.0f);
  const size_t probe_bytes = n * sizeof(float);
  const Tensor sm_in = Tensor::RandomUniform(Shape({64, 1024}), rng);
  Tensor sm_out = runtime::Softmax(sm_in);

  std::printf("\nElementwise %zuK floats, AVX2 dispatch vs forced scalar\n",
              n >> 10);
  PrintRule();
  std::printf("%-10s | %10s %10s | %6s\n", "op", "simd GB/s", "scalar GB/s",
              "x");
  std::vector<ElementwiseResult> elws;
  const auto z_probe = [&] { return z.data(); };
  elws.push_back(RunElementwise("relu", 2.0 * probe_bytes, z_probe,
                                probe_bytes, [&] {
                                  runtime::elementwise::Relu(x.data(),
                                                             z.data(), n);
                                }));
  elws.push_back(RunElementwise("relu6", 2.0 * probe_bytes, z_probe,
                                probe_bytes, [&] {
                                  runtime::elementwise::Relu6(x.data(),
                                                              z.data(), n);
                                }));
  elws.push_back(RunElementwise("hardswish", 2.0 * probe_bytes, z_probe,
                                probe_bytes, [&] {
                                  runtime::elementwise::HardSwish(
                                      x.data(), z.data(), n);
                                }));
  elws.push_back(RunElementwise("add", 3.0 * probe_bytes, z_probe,
                                probe_bytes, [&] {
                                  runtime::elementwise::Add(
                                      x.data(), y.data(), z.data(), n);
                                }));
  elws.push_back(RunElementwise(
      "softmax", 2.0 * static_cast<double>(sm_in.byte_size()),
      [&] { return sm_out.data(); }, sm_out.byte_size(),
      [&] { sm_out = runtime::Softmax(sm_in); }));
  bool elw_ok = true;
  for (const ElementwiseResult& r : elws) {
    const bool floor_applies =
        r.dispatched && std::strcmp(r.op, "hardswish") == 0;
    if (floor_applies && r.speedup() < 1.2) elw_ok = false;
    std::printf("%-10s | %10.2f %10.2f | %5.2fx%s\n", r.op, r.vector_gbps,
                r.scalar_gbps, r.speedup(),
                !floor_applies         ? ""
                : r.speedup() >= 1.2 ? ""
                                       : "  ** BELOW FLOOR **");
  }

  WriteJson(packs, convs, elws, steady_pool_misses);
  bool pack_ok = true;
  for (const PrepackResult& r : packs) {
    if (r.floor_applies && r.speedup() < 1.3) pack_ok = false;
  }
  const bool ok = pack_ok && steady_pool_misses == 0 && elw_ok;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace mvtee::bench

int main() { return mvtee::bench::Main(); }
