// Figure 12: vertical variant scaling under selective MVX.
//
// 5-partition setup, 3 replicated variants on each MVX-enabled stage:
//  - 1-MVX: the 3rd partition only;
//  - 3-MVX: the 3rd, 4th and 5th partitions;
//  - 5-MVX: every partition (full MVX).
//
// Paper shape: sequential throughput >= 0.4x and latency <= 2.5x for 1-
// and 3-MVX; full 5-MVX drops to ~0.3x / >3x. Pipelined 1- and 3-MVX
// generally beat the original model; full-MVX pipelining stalls on early
// synchronization (0.2x-1.0x throughput).
#include "bench/bench_common.h"

namespace mvtee::bench {
namespace {

int Main() {
  PrintFigureHeader("Figure 12",
                    "Vertical variant scaling (3 variants per MVX stage)");
  std::printf("%-16s %4s | %9s %9s %9s | %9s %9s %9s\n", "model", "mode",
              "1mvx tput", "3mvx tput", "5mvx tput", "1mvx lat", "3mvx lat",
              "5mvx lat");
  PrintRule();

  const int kBatches = 12;
  const std::vector<std::vector<int>> configs = {
      {1, 1, 3, 1, 1},  // 1-MVX (3rd partition)
      {1, 1, 3, 3, 3},  // 3-MVX (3rd..5th)
      {3, 3, 3, 3, 3},  // 5-MVX (full)
  };

  for (auto kind : graph::AllModels()) {
    graph::Graph model = graph::BuildModel(kind, BenchZooConfig());
    auto batches = MakeBatches(model, kBatches, 13);
    Outcome base = RunBaseline(model, batches);

    MvteeSetup setup = FundamentalSetup(5);
    setup.pool.variants_per_stage = 3;
    auto bundle = BuildBenchBundle(model, setup);
    if (!bundle.ok()) continue;

    for (bool pipelined : {false, true}) {
      double tput[3] = {0, 0, 0}, lat[3] = {0, 0, 0};
      for (size_t i = 0; i < configs.size(); ++i) {
        MvteeSetup cfg = setup;
        cfg.variant_counts = configs[i];
        auto out = RunMvtee(*bundle, cfg, batches, pipelined);
        if (out.ok()) {
          tput[i] = Norm(out->throughput, base.throughput);
          lat[i] = Norm(out->mean_latency_ms, base.mean_latency_ms);
        }
      }
      std::printf(
          "%-16s %4s | %8.2fx %8.2fx %8.2fx | %8.2fx %8.2fx %8.2fx\n",
          std::string(graph::ModelName(kind)).c_str(),
          pipelined ? "pipe" : "seq", tput[0], tput[1], tput[2], lat[0],
          lat[1], lat[2]);
    }
  }
  PrintRule();
  std::printf(
      "paper: seq >=0.4x tput for 1-/3-MVX, ~0.3x for full MVX; pipelined\n"
      "1-/3-MVX generally beat the original; full MVX stalls pipelines.\n");
  return 0;
}

}  // namespace
}  // namespace mvtee::bench

int main() { return mvtee::bench::Main(); }
