// Figure 13: asynchronous cross-validation vs synchronous execution.
//
// 5-partition setup with MVX on the 2nd and 3rd partitions, 3 diversified
// variants each — one of them a deliberately slow, heavily diversified
// TVM-style variant (the lagging panel member). Async mode proceeds at
// majority consensus and validates the straggler late (Fig. 8).
//
// Paper shape: async beats sync by 5.2%-34.2% throughput sequentially and
// 3.1%-17.8% pipelined, with corresponding latency reductions.
#include "bench/bench_common.h"

namespace mvtee::bench {
namespace {

MvteeSetup RealSetup(uint64_t seed) {
  MvteeSetup setup;
  setup.partitions = 5;
  setup.seed = seed;
  setup.pool.replicated = false;  // multi-level diversification
  setup.pool.variants_per_stage = 2;
  setup.pool.include_slow_variant = true;  // appended as v2 per stage
  setup.pool.slow_variant_factor = 3.0;
  setup.pool.verify = false;
  setup.monitor.direct_fastpath = true;
  setup.monitor.check = core::CheckPolicy::Cosine(0.99);
  setup.monitor.vote = core::VotePolicy::kMajority;
  setup.monitor.reaction = core::ReactionPolicy::ContinueWithWinner();
  setup.host.network = transport::NetworkCostModel::TenGbE();
  // MVX (with the slow variant) on the 2nd and 3rd partitions.
  setup.variant_counts = {1, 3, 3, 1, 1};
  return setup;
}

int Main() {
  PrintFigureHeader("Figure 13",
                    "Async cross-validation vs sync (slow TVM variant in "
                    "the 2nd/3rd-partition panels)");
  std::printf("%-16s %4s | %10s %10s %8s | %10s %10s %8s\n", "model", "mode",
              "sync b/s", "async b/s", "tput +%", "sync ms", "async ms",
              "lat -%");
  PrintRule();

  const int kBatches = 12;
  for (auto kind : graph::AllModels()) {
    graph::Graph model = graph::BuildModel(kind, BenchZooConfig());
    auto batches = MakeBatches(model, kBatches, 17);

    MvteeSetup setup = RealSetup(17);
    auto bundle = BuildBenchBundle(model, setup);
    if (!bundle.ok()) {
      std::printf("%-16s offline failed: %s\n",
                  std::string(graph::ModelName(kind)).c_str(),
                  bundle.status().ToString().c_str());
      continue;
    }

    for (bool pipelined : {false, true}) {
      MvteeSetup sync_setup = setup;
      sync_setup.monitor.mode = core::ExecMode::kSync;
      MvteeSetup async_setup = setup;
      async_setup.monitor.mode = core::ExecMode::kAsync;

      auto sync_out = RunMvtee(*bundle, sync_setup, batches, pipelined);
      auto async_out = RunMvtee(*bundle, async_setup, batches, pipelined);
      if (!sync_out.ok() || !async_out.ok()) {
        std::printf("%-16s %4s | run failed (%s)\n",
                    std::string(graph::ModelName(kind)).c_str(),
                    pipelined ? "pipe" : "seq",
                    (!sync_out.ok() ? sync_out.status() : async_out.status())
                        .ToString()
                        .c_str());
        continue;
      }
      const double tput_gain =
          (async_out->throughput / sync_out->throughput - 1.0) * 100;
      const double lat_gain =
          (1.0 - async_out->mean_latency_ms / sync_out->mean_latency_ms) *
          100;
      std::printf(
          "%-16s %4s | %10.1f %10.1f %+7.1f%% | %10.2f %10.2f %+7.1f%%\n",
          std::string(graph::ModelName(kind)).c_str(),
          pipelined ? "pipe" : "seq", sync_out->throughput,
          async_out->throughput, tput_gain, sync_out->mean_latency_ms,
          async_out->mean_latency_ms, lat_gain);
    }
  }
  PrintRule();
  std::printf(
      "paper: async gains 5.2%%-34.2%% tput (seq), 3.1%%-17.8%% (pipe);\n"
      "latency -5%%..-25.6%% (seq), -3.1%%..-15.2%% (pipe).\n");
  return 0;
}

}  // namespace
}  // namespace mvtee::bench

int main() { return mvtee::bench::Main(); }
