// Figure 14: MVTEE performance in a real-world setup.
//
// Multi-level diversified variants (different runtimes / GEMM libraries /
// graph transforms), asynchronous cross-validation, 5 partitions.
// Configurations: 3-variant MVX on one partition (the 3rd) and across
// three partitions (3rd-5th), vs the original unprotected model.
//
// Paper shape: sequential throughput 0.4x-0.8x (1 MVX) and 0.4x-0.6x
// (3 MVX); pipelined execution *gains* 82%-209% throughput with 1 MVX
// partition and roughly doubles (85%-110%) with 3 MVX partitions.
#include "bench/bench_common.h"

namespace mvtee::bench {
namespace {

MvteeSetup RealSetup(uint64_t seed) {
  MvteeSetup setup;
  setup.partitions = 5;
  setup.seed = seed;
  setup.pool.replicated = false;  // ORT/TVM/hardened diversified recipes
  setup.pool.variants_per_stage = 3;
  setup.pool.verify = false;
  setup.monitor.direct_fastpath = true;
  setup.monitor.check = core::CheckPolicy::Cosine(0.99);
  setup.monitor.vote = core::VotePolicy::kMajority;
  setup.monitor.reaction = core::ReactionPolicy::ContinueWithWinner();
  setup.monitor.mode = core::ExecMode::kAsync;
  setup.host.network = transport::NetworkCostModel::TenGbE();
  return setup;
}

int Main() {
  PrintFigureHeader("Figure 14",
                    "Real-world setup: diversified variants, async "
                    "execution, 1 vs 3 MVX partitions");
  std::printf("%-16s %4s | %10s %10s | %10s %10s\n", "model", "mode",
              "1mvx tput", "3mvx tput", "1mvx lat", "3mvx lat");
  std::printf("%-16s %4s | %21s | %21s\n", "", "", "(x original)",
              "(x original)");
  PrintRule();

  const int kBatches = 12;
  for (auto kind : graph::AllModels()) {
    graph::Graph model = graph::BuildModel(kind, BenchZooConfig());
    auto batches = MakeBatches(model, kBatches, 19);
    Outcome base = RunBaseline(model, batches);

    MvteeSetup setup = RealSetup(19);
    auto bundle = BuildBenchBundle(model, setup);
    if (!bundle.ok()) {
      std::printf("%-16s offline failed: %s\n",
                  std::string(graph::ModelName(kind)).c_str(),
                  bundle.status().ToString().c_str());
      continue;
    }

    for (bool pipelined : {false, true}) {
      double tput[2] = {0, 0}, lat[2] = {0, 0};
      int i = 0;
      for (const auto& counts :
           std::vector<std::vector<int>>{{1, 1, 3, 1, 1}, {1, 1, 3, 3, 3}}) {
        MvteeSetup cfg = setup;
        cfg.variant_counts = counts;
        auto out = RunMvtee(*bundle, cfg, batches, pipelined);
        if (out.ok()) {
          tput[i] = Norm(out->throughput, base.throughput);
          lat[i] = Norm(out->mean_latency_ms, base.mean_latency_ms);
        }
        ++i;
      }
      std::printf("%-16s %4s | %9.2fx %9.2fx | %9.2fx %9.2fx\n",
                  std::string(graph::ModelName(kind)).c_str(),
                  pipelined ? "pipe" : "seq", tput[0], tput[1], lat[0],
                  lat[1]);
    }
  }
  PrintRule();
  std::printf(
      "paper: seq tput 0.4x-0.8x (1 MVX), 0.4x-0.6x (3 MVX); pipelined\n"
      "1.8x-3.1x (1 MVX) and 1.9x-2.1x (3 MVX) of the original model.\n");
  return 0;
}

}  // namespace
}  // namespace mvtee::bench

int main() { return mvtee::bench::Main(); }
