// Figure 11: horizontal variant scaling under selective MVX.
//
// 5-partition setup; MVX activated on the 3rd partition with 1, 3 or 5
// replicated variants; every other stage stays on the fast path.
//
// Paper shape: in sequential execution, extra variants cost little
// beyond the partitioning overhead; in pipelined execution, the 1->3
// transition (fast path -> slow path at that stage) costs noticeably
// more than 3->5; all pipelined configurations stay well above the
// original model (>= 1.6x throughput, <= 0.7x latency).
#include "bench/bench_common.h"

namespace mvtee::bench {
namespace {

int Main() {
  PrintFigureHeader("Figure 11",
                    "Horizontal variant scaling (MVX on the 3rd of 5 "
                    "partitions)");
  std::printf("%-16s %4s | %9s %9s %9s | %9s %9s %9s\n", "model", "mode",
              "1var tput", "3var tput", "5var tput", "1var lat", "3var lat",
              "5var lat");
  std::printf("%-16s %4s | %31s | %31s\n", "", "", "(x original)",
              "(x original)");
  PrintRule();

  const int kBatches = 12;
  for (auto kind : graph::AllModels()) {
    graph::Graph model = graph::BuildModel(kind, BenchZooConfig());
    auto batches = MakeBatches(model, kBatches, 11);
    Outcome base = RunBaseline(model, batches);

    MvteeSetup setup = FundamentalSetup(5);
    setup.pool.variants_per_stage = 5;
    auto bundle = BuildBenchBundle(model, setup);
    if (!bundle.ok()) continue;

    for (bool pipelined : {false, true}) {
      double tput[3] = {0, 0, 0}, lat[3] = {0, 0, 0};
      int i = 0;
      for (int vars : {1, 3, 5}) {
        MvteeSetup cfg = setup;
        cfg.variant_counts = {1, 1, vars, 1, 1};
        auto out = RunMvtee(*bundle, cfg, batches, pipelined);
        if (out.ok()) {
          tput[i] = Norm(out->throughput, base.throughput);
          lat[i] = Norm(out->mean_latency_ms, base.mean_latency_ms);
        }
        ++i;
      }
      std::printf(
          "%-16s %4s | %8.2fx %8.2fx %8.2fx | %8.2fx %8.2fx %8.2fx\n",
          std::string(graph::ModelName(kind)).c_str(),
          pipelined ? "pipe" : "seq", tput[0], tput[1], tput[2], lat[0],
          lat[1], lat[2]);
    }
  }
  PrintRule();
  std::printf(
      "paper: sequential cost of extra variants is negligible next to\n"
      "partitioning; pipelined 1->3 transition (fast->slow path) costs "
      "more than 3->5.\n");
  return 0;
}

}  // namespace
}  // namespace mvtee::bench

int main() { return mvtee::bench::Main(); }
