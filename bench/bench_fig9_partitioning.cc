// Figure 9: performance impact of random-balanced partitioning.
//
// Full fast path (single replicated variant per partition), encrypted
// channels, direct variant-to-variant forwarding; partition counts are
// swept and both sequential and pipelined execution are normalized
// against the original (unpartitioned, unprotected) model.
//
// Paper shape to reproduce: sequential throughput degrades as partitions
// increase (-1.7%..-62.2%; latency +1.7%..+164.3%), while pipelined
// execution exceeds the baseline (1.7x..5.4x throughput; latency
// -63.4%..-84.4%) and improves with more partitions.
#include "bench/bench_common.h"

namespace mvtee::bench {
namespace {

int Main() {
  PrintFigureHeader("Figure 9",
                    "Performance impact of random-balanced partitioning "
                    "(full fast path)");
  std::printf("%-16s %5s | %9s %9s | %9s %9s\n", "model", "parts",
              "seq tput", "seq lat", "pipe tput", "pipe lat");
  std::printf("%-16s %5s | %9s %9s | %9s %9s\n", "", "",
              "(x base)", "(x base)", "(x base)", "(x base)");
  PrintRule();

  const int kBatches = 12;
  double seq_tput_min = 1e9, seq_tput_max = 0;
  double pipe_tput_min = 1e9, pipe_tput_max = 0;
  double pipe_lat_min = 1e9, pipe_lat_max = 0;

  for (auto kind : graph::AllModels()) {
    graph::Graph model = graph::BuildModel(kind, BenchZooConfig());
    auto batches = MakeBatches(model, kBatches, 7);
    Outcome base = RunBaseline(model, batches);

    for (int parts : {3, 5, 7}) {
      MvteeSetup setup = FundamentalSetup(parts);
      auto bundle = BuildBenchBundle(model, setup);
      if (!bundle.ok()) {
        std::printf("%-16s %5d | offline failed: %s\n",
                    std::string(graph::ModelName(kind)).c_str(), parts,
                    bundle.status().ToString().c_str());
        continue;
      }
      auto seq = RunMvtee(*bundle, setup, batches, /*pipelined=*/false);
      auto pipe = RunMvtee(*bundle, setup, batches, /*pipelined=*/true);
      if (!seq.ok() || !pipe.ok()) {
        std::printf("%-16s %5d | run failed\n",
                    std::string(graph::ModelName(kind)).c_str(), parts);
        continue;
      }
      const double st = Norm(seq->throughput, base.throughput);
      const double sl = Norm(seq->mean_latency_ms, base.mean_latency_ms);
      const double pt = Norm(pipe->throughput, base.throughput);
      const double pl = Norm(pipe->mean_latency_ms, base.mean_latency_ms);
      std::printf("%-16s %5d | %8.2fx %8.2fx | %8.2fx %8.2fx\n",
                  std::string(graph::ModelName(kind)).c_str(), parts, st, sl,
                  pt, pl);
      seq_tput_min = std::min(seq_tput_min, st);
      seq_tput_max = std::max(seq_tput_max, st);
      pipe_tput_min = std::min(pipe_tput_min, pt);
      pipe_tput_max = std::max(pipe_tput_max, pt);
      pipe_lat_min = std::min(pipe_lat_min, pl);
      pipe_lat_max = std::max(pipe_lat_max, pl);
    }
  }
  PrintRule();
  std::printf(
      "summary: sequential throughput %.2fx..%.2fx of baseline "
      "(paper: 0.38x..0.98x)\n",
      seq_tput_min, seq_tput_max);
  std::printf(
      "         pipelined throughput %.2fx..%.2fx of baseline "
      "(paper: 1.7x..5.4x)\n",
      pipe_tput_min, pipe_tput_max);
  std::printf(
      "         pipelined latency %.2fx..%.2fx of baseline "
      "(paper: 0.16x..0.37x)\n",
      pipe_lat_min, pipe_lat_max);
  return 0;
}

}  // namespace
}  // namespace mvtee::bench

int main() { return mvtee::bench::Main(); }
