#include "bench/bench_common.h"

#include <cstdlib>

#include "obs/exporters.h"

namespace mvtee::bench {

using tensor::Shape;
using tensor::Tensor;

graph::ZooConfig BenchZooConfig() {
  graph::ZooConfig cfg;
  cfg.input_hw = 32;      // paper: 224 (scaled, see DESIGN.md §2)
  cfg.width_mult = 0.25;  // channel scaling
  cfg.depth_mult = 0.34;  // block-repeat scaling
  cfg.num_classes = 100;
  return cfg;
}

std::vector<std::vector<Tensor>> MakeBatches(const graph::Graph& model,
                                             int count, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<Tensor>> batches;
  batches.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    std::vector<Tensor> inputs;
    for (graph::NodeId in : model.inputs()) {
      inputs.push_back(
          Tensor::RandomUniform(model.input_shape(in), rng, -1.0f, 1.0f));
    }
    batches.push_back(std::move(inputs));
  }
  return batches;
}

Outcome RunBaseline(const graph::Graph& model,
                    const std::vector<std::vector<Tensor>>& batches) {
  auto exec =
      runtime::Executor::Create(model, runtime::OrtLikeExecutorConfig());
  MVTEE_CHECK(exec.ok());
  // Warm-up run (paper: "we perform warmup runs").
  (void)(*exec)->Run(batches[0]);

  // Thread-CPU time for comparability with the virtual-time model (on
  // the 1-core simulation host, wall time includes scheduler noise).
  Outcome outcome;
  const int64_t start = util::ThreadCpuMicros();
  int64_t latency_total = 0;
  for (const auto& batch : batches) {
    const int64_t t0 = util::ThreadCpuMicros();
    auto out = (*exec)->Run(batch);
    MVTEE_CHECK(out.ok());
    latency_total += util::ThreadCpuMicros() - t0;
  }
  const int64_t wall = util::ThreadCpuMicros() - start;
  outcome.throughput =
      static_cast<double>(batches.size()) * 1e6 / static_cast<double>(wall);
  outcome.mean_latency_ms = static_cast<double>(latency_total) /
                            static_cast<double>(batches.size()) / 1000.0;
  return outcome;
}

MvteeSetup FundamentalSetup(int partitions, uint64_t seed) {
  MvteeSetup setup;
  setup.partitions = partitions;
  setup.seed = seed;
  setup.pool.replicated = true;
  setup.pool.variants_per_stage = 1;  // raise for selective-MVX benches
  setup.pool.verify = false;
  setup.monitor.direct_fastpath = true;
  setup.monitor.check = core::CheckPolicy::Cosine(0.99);
  setup.host.network = transport::NetworkCostModel::TenGbE();
  return setup;
}

util::Result<core::OfflineBundle> BuildBenchBundle(const graph::Graph& model,
                                                   const MvteeSetup& setup) {
  core::OfflineOptions offline;
  offline.num_partitions = setup.partitions;
  offline.partition_seed = setup.seed;
  offline.key_seed = setup.seed + 1;
  offline.pool = setup.pool;
  offline.pool.seed = setup.seed + 2;
  return core::RunOfflineTool(model, offline);
}

util::Result<Outcome> RunMvtee(
    const core::OfflineBundle& bundle, const MvteeSetup& setup,
    const std::vector<std::vector<Tensor>>& batches, bool pipelined) {
  tee::SimulatedCpu cpu{
      tee::SimulatedCpu::Options{.hardware_key_seed = setup.seed + 3}};
  core::VariantHost host(&cpu, bundle.store, setup.host);
  MVTEE_ASSIGN_OR_RETURN(auto monitor,
                         core::Monitor::Create(&cpu, setup.monitor));

  core::MvxSelection selection;
  if (!setup.explicit_selection.empty()) {
    selection.stage_variant_ids = setup.explicit_selection;
  } else if (!setup.variant_counts.empty()) {
    selection = core::MvxSelection::PerStage(bundle, setup.variant_counts);
  } else {
    selection = core::MvxSelection::Uniform(bundle, 1);
  }
  MVTEE_RETURN_IF_ERROR(monitor->Initialize(bundle, selection, host));

  // Warm-up batch.
  MVTEE_RETURN_IF_ERROR(monitor->Run({batches[0]}).status());

  // The per-call stats handle carries exactly this run's numbers; the
  // warm-up above never pollutes them.
  Outcome outcome;
  MVTEE_RETURN_IF_ERROR(
      monitor
          ->Run(batches, core::RunOptions{.pipelined = pipelined,
                                          .stats = &outcome.stats})
          .status());
  outcome.throughput = outcome.stats.ThroughputPerSec();
  outcome.mean_latency_ms = outcome.stats.MeanLatencyUs() / 1000.0;

  MVTEE_RETURN_IF_ERROR(monitor->Shutdown());
  host.JoinAll();
  return outcome;
}

obs::RegistrySnapshot MetricsBaseline() {
  // Pull the util-side pool/copy counters in before snapshotting so
  // baseline and dump see consistent data-plane numbers.
  obs::SyncDataPlaneMetrics();
  return obs::Registry::Default().Snapshot();
}

void DumpMetricsJson(const std::string& label,
                     const obs::RegistrySnapshot* base) {
  obs::SyncDataPlaneMetrics();
  obs::RegistrySnapshot snap = obs::Registry::Default().Snapshot();
  if (base != nullptr) snap = snap.DeltaSince(*base);
  // JSONL schema — one self-contained object per line:
  //   {"label": "<bench label>",
  //    "metrics": {"counters": {name: u64, ...},
  //                "gauges": {name: i64, ...},
  //                "histograms": {name: {count, sum, min, max,
  //                                      p50, p95, p99}, ...}}}
  // When `base` was given, metrics are the delta since that snapshot.
  const std::string json = snap.ToJson(0);
  const char* path = std::getenv("MVTEE_METRICS_JSON");
  if (path != nullptr && path[0] != '\0') {
    // Opened once per process and line-buffered: each dump is appended
    // as one atomic-enough write() per line, so interleaved bench
    // phases (or a crashed run) never leave a torn record behind.
    static std::FILE* f = [] {
      std::FILE* file = std::fopen(std::getenv("MVTEE_METRICS_JSON"), "a");
      if (file != nullptr) setvbuf(file, nullptr, _IOLBF, 1 << 16);
      return file;
    }();
    if (f != nullptr) {
      std::fprintf(f, "{\"label\": \"%s\", \"metrics\": %s}\n", label.c_str(),
                   json.c_str());
      return;
    }
  }
  std::printf("metrics[%s] = %s\n", label.c_str(), json.c_str());
}

void PrintFigureHeader(const std::string& figure,
                       const std::string& description) {
  // Every bench honors MVTEE_TRACE_JSON / MVTEE_PROM_TEXT: register the
  // exit-time exporter dumps once, on the first figure header.
  obs::InstallExitDumps();
  std::printf("\n");
  PrintRule();
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  PrintRule();
}

void PrintRule() {
  std::printf(
      "--------------------------------------------------------------------"
      "----------\n");
}

}  // namespace mvtee::bench
