// Evented-monitor micro-benchmark: the blocking event loop and the
// digest prefilter on replicated 3-variant panels.
//
// Two runs of the same pipelined deployment, digest prefilter off vs
// on. Replicated panels produce byte-identical outputs, so with the
// prefilter every checkpoint vote degenerates to O(k) hashes; the
// verify-time column must drop accordingly. The wait column shows the
// loop blocking on the transport WaitSet (time formerly burned
// busy-polling), and the prefilter columns show hit/full-check counts
// from the consistency layer.
#include "bench/bench_common.h"

namespace mvtee::bench {
namespace {

double HistSum(const obs::RegistrySnapshot& s, const std::string& name) {
  auto it = s.histograms.find(name);
  return it == s.histograms.end() ? 0.0 : it->second.sum;
}

uint64_t HistCount(const obs::RegistrySnapshot& s, const std::string& name) {
  auto it = s.histograms.find(name);
  return it == s.histograms.end() ? 0 : it->second.count;
}

uint64_t CounterOf(const obs::RegistrySnapshot& s, const std::string& name) {
  auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

int Main() {
  PrintFigureHeader("Evented monitor",
                    "Blocking WaitSet loop + digest prefilter on "
                    "replicated k=3 panels (pipelined)");

  const int kBatches = 12;
  graph::Graph model =
      graph::BuildModel(graph::ModelKind::kResNet50, BenchZooConfig());
  auto batches = MakeBatches(model, kBatches, 23);

  MvteeSetup setup;
  setup.partitions = 4;
  setup.seed = 23;
  setup.pool.replicated = true;  // byte-identical panel outputs
  setup.pool.variants_per_stage = 3;
  setup.pool.verify = false;
  setup.variant_counts = {3, 3, 3, 3};
  setup.monitor.vote = core::VotePolicy::kMajority;
  setup.monitor.reaction = core::ReactionPolicy::ContinueWithWinner();
  setup.host.network = transport::NetworkCostModel::TenGbE();

  auto bundle = BuildBenchBundle(model, setup);
  if (!bundle.ok()) {
    std::printf("offline failed: %s\n", bundle.status().ToString().c_str());
    return 1;
  }

  std::printf("%-10s | %8s %8s | %10s %10s | %10s %6s | %9s %6s\n",
              "prefilter", "tput b/s", "lat ms", "verify ms", "jobs",
              "wait ms", "waits", "hits", "full");
  PrintRule();

  double verify_ms[2] = {0, 0};
  for (bool prefilter : {false, true}) {
    setup.monitor.digest_prefilter = prefilter;
    auto base = MetricsBaseline();
    auto out = RunMvtee(*bundle, setup, batches, /*pipelined=*/true);
    if (!out.ok()) {
      std::printf("run failed: %s\n", out.status().ToString().c_str());
      return 1;
    }
    auto delta = obs::Registry::Default().Snapshot().DeltaSince(base);
    const double vms = HistSum(delta, "monitor.verify_job_us") / 1000.0;
    verify_ms[prefilter ? 1 : 0] = vms;
    std::printf("%-10s | %8.1f %8.2f | %10.2f %10llu | %10.2f %6llu | "
                "%9llu %6llu\n",
                prefilter ? "on" : "off", out->throughput,
                out->mean_latency_ms, vms,
                static_cast<unsigned long long>(
                    HistCount(delta, "monitor.verify_job_us")),
                HistSum(delta, "monitor.wait_us") / 1000.0,
                static_cast<unsigned long long>(
                    HistCount(delta, "monitor.wait_us")),
                static_cast<unsigned long long>(
                    CounterOf(delta, "monitor.prefilter_hits")),
                static_cast<unsigned long long>(
                    CounterOf(delta, "monitor.full_checks")));
    DumpMetricsJson(prefilter ? "evented_monitor/prefilter_on"
                              : "evented_monitor/prefilter_off",
                    &base);
  }
  PrintRule();
  if (verify_ms[0] > 0) {
    std::printf("prefilter verify-time: %.2f ms -> %.2f ms (%.1fx)\n",
                verify_ms[0], verify_ms[1],
                verify_ms[1] > 0 ? verify_ms[0] / verify_ms[1] : 0.0);
  }
  return 0;
}

}  // namespace
}  // namespace mvtee::bench

int main() { return mvtee::bench::Main(); }
