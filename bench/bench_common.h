// Shared harness for the paper-figure benchmarks.
//
// Every figure bench boots a full MVTEE deployment (offline tool ->
// variant host -> monitor) on a scaled model-zoo model and measures
// throughput (batches/s) and mean end-to-end latency under sequential
// and pipelined execution, normalized against the unprotected original
// model. See DESIGN.md §4 for the experiment index.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/monitor.h"
#include "core/offline.h"
#include "core/variant_host.h"
#include "graph/model_zoo.h"
#include "obs/metrics.h"
#include "runtime/executor.h"
#include "transport/channel.h"
#include "util/clock.h"

namespace mvtee::bench {

// Scaled evaluation configuration (see model_zoo.h substitution note).
graph::ZooConfig BenchZooConfig();

// Deterministic input batches for a model.
std::vector<std::vector<tensor::Tensor>> MakeBatches(
    const graph::Graph& model, int count, uint64_t seed);

struct Outcome {
  double throughput = 0.0;       // batches / second
  double mean_latency_ms = 0.0;  // per batch, end to end
  core::RunStats stats;
};

// Original (unprotected) model on a single optimized executor.
Outcome RunBaseline(const graph::Graph& model,
                    const std::vector<std::vector<tensor::Tensor>>& batches);

struct MvteeSetup {
  int partitions = 5;
  // Active variants per stage (empty = one everywhere).
  std::vector<int> variant_counts;
  // Explicit per-stage variant ids (overrides variant_counts when set).
  std::vector<std::vector<std::string>> explicit_selection;
  core::MonitorConfig monitor;
  core::VariantHost::Options host;
  variant::PoolConfig pool;  // replicated=true for fundamental-perf runs
  uint64_t seed = 1;
};

// Offline phase (partition + pool + keys + encrypted store). Reuse the
// bundle across seq/pipe runs of the same configuration.
util::Result<core::OfflineBundle> BuildBenchBundle(const graph::Graph& model,
                                                   const MvteeSetup& setup);

// Boots a deployment from the bundle, runs the batches, tears down.
util::Result<Outcome> RunMvtee(
    const core::OfflineBundle& bundle, const MvteeSetup& setup,
    const std::vector<std::vector<tensor::Tensor>>& batches, bool pipelined);

// Default fundamental-performance setup: replicated ORT-like variants,
// encrypted channels, direct fast path, 10GbE-like cost model.
MvteeSetup FundamentalSetup(int partitions, uint64_t seed = 1);

// Current cumulative snapshot of the default metrics registry; pass it
// back to DumpMetricsJson as `base` to dump only what one run added.
obs::RegistrySnapshot MetricsBaseline();

// Dumps the default metrics registry (optionally as a delta since
// `base`) as labeled JSON: to the file named by $MVTEE_METRICS_JSON
// (appending one {"label", "metrics"} object per line) when set,
// otherwise to stdout.
void DumpMetricsJson(const std::string& label,
                     const obs::RegistrySnapshot* base = nullptr);

// Printing helpers.
void PrintFigureHeader(const std::string& figure,
                       const std::string& description);
void PrintRule();

inline double Norm(double value, double baseline) {
  return baseline > 0 ? value / baseline : 0.0;
}

}  // namespace mvtee::bench
