// Table 1: TensorFlow-style vulnerability classes and defending variants.
//
// For each CVE class the paper catalogs (OOB / UNP / FPE / IO / UAF /
// ACF), a vulnerability is injected into the variants built on the
// "vulnerable library" (the blocked-GEMM backend standing in for
// OpenBLAS) and a full MVTEE deployment runs inference. Reported: did
// the bug fire, did MVX detect it, did any wrong output escape, and did
// the service keep answering (majority vote with healthy variants).
#include "bench/bench_common.h"
#include "fault/campaign.h"

namespace mvtee::bench {
namespace {

struct Row {
  fault::VulnClass cls;
  const char* example_cve;
  const char* impact;
  const char* defending_variants;
};

int Main() {
  PrintFigureHeader("Table 1",
                    "Vulnerability classes vs defending variants "
                    "(fault-injection campaigns)");

  const std::vector<Row> rows = {
      {fault::VulnClass::kOutOfBounds, "CVE-2021-41226",
       "data corruption", "different RT / sanitizer variant"},
      {fault::VulnClass::kNullPointer, "CVE-2022-21739", "DoS",
       "different RT"},
      {fault::VulnClass::kFloatingPoint, "CVE-2022-21725",
       "incorrect results", "different RT / error handling"},
      {fault::VulnClass::kIntegerOverflow, "CVE-2022-21727",
       "incorrect results", "different RT / compiler"},
      {fault::VulnClass::kUseAfterFree, "CVE-2021-37652",
       "data corruption", "different RT / sanitizers"},
      {fault::VulnClass::kAssertFailure, "CVE-2022-35935", "DoS",
       "different RT / error handling"},
  };

  std::printf("%-5s %-15s %-18s %-34s | %5s %8s %9s %8s\n", "type",
              "example CVE", "impact", "defending variants e.g.", "fired",
              "detected", "protected", "survived");
  PrintRule();

  graph::Graph model =
      graph::BuildModel(graph::ModelKind::kResNet50, BenchZooConfig());

  bool all_detected = true, none_escaped = true;
  for (const Row& row : rows) {
    fault::CampaignOptions opts;
    opts.cls = row.cls;
    opts.effect = fault::DefaultEffect(row.cls);
    opts.vulnerable_gemm = runtime::GemmBackend::kBlocked;  // "OpenBLAS"
    opts.num_partitions = 3;
    opts.variants_per_stage = 3;
    opts.num_batches = 3;
    opts.seed = 31;
    auto report = fault::RunVulnerabilityCampaign(model, opts);
    if (!report.ok()) {
      std::printf("%-5s campaign failed: %s\n",
                  std::string(VulnClassName(row.cls)).c_str(),
                  report.status().ToString().c_str());
      all_detected = false;
      continue;
    }
    std::printf("%-5s %-15s %-18s %-34s | %5s %8s %9s %8s\n",
                std::string(VulnClassName(row.cls)).c_str(), row.example_cve,
                row.impact, row.defending_variants,
                report->fault_fired ? "yes" : "no",
                report->detected ? "yes" : "NO",
                report->wrong_output_released ? "NO" : "yes",
                report->service_survived ? "yes" : "no");
    all_detected &= report->detected;
    none_escaped &= !report->wrong_output_released;
  }
  PrintRule();
  std::printf(
      "result: %s — every injected class %s detected and %s wrong output "
      "was released\n(paper: MVTEE mitigates all listed TensorFlow CVE "
      "classes through diversified variants).\n",
      (all_detected && none_escaped) ? "PASS" : "FAIL",
      all_detected ? "was" : "was NOT", none_escaped ? "no" : "a");
  return (all_detected && none_escaped) ? 0 : 1;
}

}  // namespace
}  // namespace mvtee::bench

int main() { return mvtee::bench::Main(); }
