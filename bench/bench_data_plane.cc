// Data-plane benchmark (DESIGN.md §10): the three pillars of the pooled
// zero-copy path, each against its legacy copying counterpart.
//
//   1. AEAD: allocating Seal/Open vs SealInPlace/OpenInPlace on the
//      same record sizes the secure channel moves (MB/s of plaintext).
//   2. Checkpoint round trip: a variant reporting an InferResultMsg of
//      checkpoint tensors over a real attested secure channel, legacy
//      Encode+Send+Recv+Decode vs single-pass SendFrame -> RecvPooled ->
//      view decode, diffing util::DataPlaneBytesCopied() to prove the
//      per-tensor copy reduction (acceptance floor: >= 2x fewer bytes).
//   3. GEMM: the blocked backend serial vs sharded across a 4-worker
//      util::ThreadPool (acceptance floor: >= 2x speedup at 256x256+),
//      plus the kAvx2 backend serial vs blocked serial (acceptance
//      floor: >= 5x on hosts where the vector kernel dispatches).
//   4. SIMD dispatch: AES-GCM accel vs forced-scalar on the same
//      payload (acceptance floor: >= 10x where AES-NI dispatches).
//
// Results go to stdout and to a machine-readable JSON summary at
// $MVTEE_BENCH_JSON (default ./BENCH_data_plane.json) so CI can archive
// a baseline next to the observability artifacts. Every floor the run
// could not fail (host too small / no SIMD) is recorded as
// floor_applies=false + floor_waived=true next to the detected CPU
// features, so baseline comparisons can tell "passed" from "waived".
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/messages.h"
#include "crypto/aead.h"
#include "runtime/gemm.h"
#include "tee/enclave.h"
#include "tensor/tensor.h"
#include "transport/msg_channel.h"
#include "transport/secure_channel.h"
#include "util/buffer_pool.h"
#include "util/cpu_features.h"
#include "util/dataplane_stats.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mvtee::bench {
namespace {

using tensor::Shape;
using tensor::Tensor;
using transport::MsgChannel;
using transport::SecureChannel;
using transport::SecureMsgChannel;
using util::Bytes;

double MedianSeconds(std::vector<double> secs) {
  std::sort(secs.begin(), secs.end());
  return secs[secs.size() / 2];
}

// Times `fn` `reps` times and returns the median wall-clock seconds.
template <typename Fn>
double TimeMedian(int reps, const Fn& fn) {
  std::vector<double> secs;
  secs.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const int64_t t0 = util::NowNanos();
    fn();
    secs.push_back(static_cast<double>(util::NowNanos() - t0) * 1e-9);
  }
  return MedianSeconds(std::move(secs));
}

struct AeadResult {
  size_t payload = 0;
  double legacy_mbps = 0.0;   // Seal + Open, allocating
  double inplace_mbps = 0.0;  // SealInPlace + OpenInPlace
};

// Seal+open round trip so the in-place path is self-restoring (CTR is
// an XOR stream; OpenInPlace hands the buffer back as plaintext).
AeadResult RunAead(size_t payload, int inner_iters) {
  util::Rng rng(payload);
  Bytes key(32), nonce(crypto::kGcmNonceSize), aad(24), pt(payload);
  for (auto* b : {&key, &nonce, &aad, &pt}) {
    for (auto& byte : *b) byte = static_cast<uint8_t>(rng.NextU64());
  }
  crypto::AesGcm gcm(key);

  AeadResult out;
  out.payload = payload;
  const double bytes_per_run =
      static_cast<double>(payload) * inner_iters;

  const double legacy_s = TimeMedian(5, [&] {
    for (int i = 0; i < inner_iters; ++i) {
      Bytes sealed = gcm.Seal(nonce, aad, pt);
      auto opened = gcm.Open(nonce, aad, sealed);
      MVTEE_CHECK(opened.ok());
    }
  });
  out.legacy_mbps = bytes_per_run / legacy_s / 1e6;

  Bytes buf = pt;
  buf.resize(payload + crypto::kGcmTagSize);
  const double inplace_s = TimeMedian(5, [&] {
    for (int i = 0; i < inner_iters; ++i) {
      gcm.SealInPlace(nonce, aad, buf.data(), payload);
      auto n = gcm.OpenInPlace(nonce, aad, buf.data(), buf.size());
      MVTEE_CHECK(n.ok() && *n == payload);
    }
  });
  out.inplace_mbps = bytes_per_run / inplace_s / 1e6;
  return out;
}

// AES-GCM dispatch delta: the same seal+open round trip with the
// runtime dispatcher allowed to pick AES-NI/PCLMUL vs forced onto the
// portable 8-bit-table path. Ciphertext is identical either way; only
// throughput moves.
struct AeadDispatchResult {
  size_t payload = 0;
  bool accelerated = false;  // did the fast path actually dispatch?
  double accel_mbps = 0.0;
  double scalar_mbps = 0.0;
  double speedup() const {
    return scalar_mbps > 0 ? accel_mbps / scalar_mbps : 0.0;
  }
};

AeadDispatchResult RunAeadDispatch(size_t payload) {
  util::Rng rng(payload ^ 0x51d);
  Bytes key(32), nonce(crypto::kGcmNonceSize), aad(24), buf(payload);
  for (auto* b : {&key, &nonce, &aad, &buf}) {
    for (auto& byte : *b) byte = static_cast<uint8_t>(rng.NextU64());
  }
  crypto::AesGcm gcm(key);
  buf.resize(payload + crypto::kGcmTagSize);

  AeadDispatchResult out;
  out.payload = payload;
  out.accelerated = crypto::AesGcmAccelerated();
  auto round_trip = [&] {
    gcm.SealInPlace(nonce, aad, buf.data(), payload);
    auto n = gcm.OpenInPlace(nonce, aad, buf.data(), buf.size());
    MVTEE_CHECK(n.ok() && *n == payload);
  };
  const int iters = out.accelerated ? 16 : 4;
  round_trip();
  out.accel_mbps = static_cast<double>(payload) * iters /
                   TimeMedian(3, [&] {
                     for (int i = 0; i < iters; ++i) round_trip();
                   }) /
                   1e6;
  {
    util::ScopedForceScalar force_scalar;
    round_trip();
    out.scalar_mbps = static_cast<double>(payload) * 4 /
                      TimeMedian(3, [&] {
                        for (int i = 0; i < 4; ++i) round_trip();
                      }) /
                      1e6;
  }
  return out;
}

// ------------------------------------------------ checkpoint round trip

struct ChannelPair {
  tee::SimulatedCpu cpu{tee::SimulatedCpu::Options{.hardware_key_seed = 7}};
  std::unique_ptr<tee::Enclave> monitor;
  std::unique_ptr<tee::Enclave> variant;
  std::unique_ptr<MsgChannel> monitor_ch;
  std::unique_ptr<MsgChannel> variant_ch;

  bool Init() {
    auto m = cpu.LaunchEnclave(tee::TeeType::kSgx1, util::ToBytes("monitor"),
                               tee::MonitorManifest(), 64);
    auto v = cpu.LaunchEnclave(tee::TeeType::kSgx2, util::ToBytes("variant"),
                               tee::InitVariantManifest(), 1024);
    if (!m.ok() || !v.ok()) return false;
    monitor = std::move(*m);
    variant = std::move(*v);
    auto [a, b] = transport::CreateChannel();
    util::Result<std::unique_ptr<SecureChannel>> client(
        util::Internal("unset"));
    std::thread client_thread([&, ep = std::move(a)]() mutable {
      client = SecureChannel::Handshake(
          std::move(ep), SecureChannel::Role::kClient, *monitor,
          transport::AnyAttestedPeer(cpu), 1'000'000);
    });
    auto server = SecureChannel::Handshake(
        std::move(b), SecureChannel::Role::kServer, *variant,
        transport::AnyAttestedPeer(cpu), 1'000'000);
    client_thread.join();
    if (!client.ok() || !server.ok()) return false;
    monitor_ch = std::make_unique<SecureMsgChannel>(std::move(*client));
    variant_ch = std::make_unique<SecureMsgChannel>(std::move(*server));
    return true;
  }
};

struct RoundTripResult {
  size_t tensors = 0;
  uint64_t payload_bytes = 0;
  uint64_t legacy_copied = 0;  // per round trip
  uint64_t pooled_copied = 0;
  double legacy_mbps = 0.0;
  double pooled_mbps = 0.0;
  double copy_ratio() const {
    return pooled_copied > 0
               ? static_cast<double>(legacy_copied) /
                     static_cast<double>(pooled_copied)
               : 0.0;
  }
};

core::InferResultMsg MakeCheckpoint(size_t tensors, int64_t rows,
                                    int64_t cols) {
  util::Rng rng(99);
  core::InferResultMsg msg;
  msg.batch_id = 1;
  msg.ok = true;
  for (size_t i = 0; i < tensors; ++i) {
    msg.outputs.push_back(Tensor::RandomUniform(Shape({rows, cols}), rng));
  }
  return msg;
}

// One variant -> monitor checkpoint report. Legacy: encode into a fresh
// frame, copying Send/Recv, owning-copy decode. Pooled: single-pass
// SendFrame into one wire buffer, RecvPooled, view decode.
RoundTripResult RunRoundTrip(ChannelPair& pair, int iters) {
  const core::InferResultMsg msg = MakeCheckpoint(4, 128, 256);
  RoundTripResult out;
  out.tensors = msg.outputs.size();
  for (const auto& t : msg.outputs) out.payload_bytes += t.byte_size();

  auto legacy_once = [&] {
    Bytes frame = core::EncodeInferResult(msg);
    MVTEE_CHECK(pair.variant_ch->Send(frame).ok());
    auto got = pair.monitor_ch->Recv(1'000'000);
    MVTEE_CHECK(got.ok());
    auto decoded = core::DecodeInferResult(*got);
    MVTEE_CHECK(decoded.ok() && decoded->outputs.size() == out.tensors);
  };
  auto pooled_once = [&] {
    MVTEE_CHECK(core::SendFrame(*pair.variant_ch, msg).ok());
    auto got = pair.monitor_ch->RecvPooled(1'000'000);
    MVTEE_CHECK(got.ok());
    auto decoded = core::DecodeInferResult(*got);
    MVTEE_CHECK(decoded.ok() && decoded->outputs.size() == out.tensors);
  };

  // Warm both directions so pool reuse (not cold misses) is measured.
  legacy_once();
  pooled_once();

  uint64_t copied0 = util::DataPlaneBytesCopied();
  const double legacy_s = TimeMedian(3, [&] {
    for (int i = 0; i < iters; ++i) legacy_once();
  });
  // 3 timed reps + the copy accounting below all run `iters` trips.
  out.legacy_copied =
      (util::DataPlaneBytesCopied() - copied0) / (3ull * iters);
  out.legacy_mbps =
      static_cast<double>(out.payload_bytes) * iters / legacy_s / 1e6;

  copied0 = util::DataPlaneBytesCopied();
  const double pooled_s = TimeMedian(3, [&] {
    for (int i = 0; i < iters; ++i) pooled_once();
  });
  out.pooled_copied =
      (util::DataPlaneBytesCopied() - copied0) / (3ull * iters);
  out.pooled_mbps =
      static_cast<double>(out.payload_bytes) * iters / pooled_s / 1e6;
  return out;
}

// ------------------------------------------------------------- GEMM

struct GemmResult {
  int64_t m = 0, n = 0, k = 0;
  size_t threads = 0;
  unsigned hw_threads = 0;  // what the host can actually run in parallel
  bool avx2_dispatched = false;  // did kAvx2 take the vector path?
  double serial_gflops = 0.0;
  double parallel_gflops = 0.0;
  double avx2_serial_gflops = 0.0;
  double speedup() const {
    return serial_gflops > 0 ? parallel_gflops / serial_gflops : 0.0;
  }
  double avx2_speedup() const {
    return serial_gflops > 0 ? avx2_serial_gflops / serial_gflops : 0.0;
  }
};

GemmResult RunGemm(int64_t m, int64_t n, int64_t k, size_t threads) {
  util::Rng rng(7);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  std::vector<float> c(static_cast<size_t>(m * n));
  for (auto& x : a) x = rng.UniformFloat(-1.0f, 1.0f);
  for (auto& x : b) x = rng.UniformFloat(-1.0f, 1.0f);

  GemmResult out;
  out.m = m;
  out.n = n;
  out.k = k;
  out.threads = threads;
  out.hw_threads = std::max(1u, std::thread::hardware_concurrency());
  util::ThreadPool pool(threads);
  const double flops = 2.0 * static_cast<double>(m) * n * k;

  auto serial = [&] {
    runtime::Gemm(runtime::GemmBackend::kBlocked, a.data(), b.data(),
                  c.data(), m, n, k, nullptr);
  };
  auto parallel = [&] {
    runtime::Gemm(runtime::GemmBackend::kBlocked, a.data(), b.data(),
                  c.data(), m, n, k, &pool);
  };
  auto avx2_serial = [&] {
    runtime::Gemm(runtime::GemmBackend::kAvx2, a.data(), b.data(), c.data(),
                  m, n, k, nullptr);
  };
  serial();       // warm caches
  parallel();     // warm pool
  avx2_serial();  // warm packed-panel path
  out.avx2_dispatched = runtime::GemmAvx2Accelerated();
  out.serial_gflops = flops / TimeMedian(5, serial) / 1e9;
  out.parallel_gflops = flops / TimeMedian(5, parallel) / 1e9;
  out.avx2_serial_gflops = flops / TimeMedian(5, avx2_serial) / 1e9;
  return out;
}

// --------------------------------------------------------------- main

void WriteJson(const std::vector<AeadResult>& aead,
               const AeadDispatchResult& aead_disp, const RoundTripResult& rt,
               const GemmResult& gemm) {
  const char* path = std::getenv("MVTEE_BENCH_JSON");
  if (path == nullptr) path = "BENCH_data_plane.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"data_plane\",\n");
  std::fprintf(f, "  \"cpu_features\": \"%s\",\n",
               util::CpuFeatureString().c_str());
  std::fprintf(f, "  \"aead\": [\n");
  for (size_t i = 0; i < aead.size(); ++i) {
    std::fprintf(f,
                 "    {\"payload_bytes\": %zu, \"legacy_mbps\": %.1f, "
                 "\"inplace_mbps\": %.1f}%s\n",
                 aead[i].payload, aead[i].legacy_mbps, aead[i].inplace_mbps,
                 i + 1 < aead.size() ? "," : "");
  }
  const bool aead_floor_applies = aead_disp.accelerated;
  std::fprintf(
      f,
      "  ],\n  \"aead_dispatch\": {\n"
      "    \"payload_bytes\": %zu,\n"
      "    \"accelerated\": %s,\n"
      "    \"accel_mbps\": %.1f,\n"
      "    \"scalar_mbps\": %.1f,\n"
      "    \"speedup_x\": %.2f,\n"
      "    \"floor_applies\": %s,\n"
      "    \"floor_waived\": %s\n  },\n",
      aead_disp.payload, aead_disp.accelerated ? "true" : "false",
      aead_disp.accel_mbps, aead_disp.scalar_mbps, aead_disp.speedup(),
      aead_floor_applies ? "true" : "false",
      aead_floor_applies ? "false" : "true");
  std::fprintf(
      f,
      "  \"checkpoint_round_trip\": {\n"
      "    \"tensors\": %zu,\n    \"payload_bytes\": %llu,\n"
      "    \"legacy_copied_bytes\": %llu,\n"
      "    \"pooled_copied_bytes\": %llu,\n"
      "    \"copy_reduction_x\": %.2f,\n"
      "    \"legacy_mbps\": %.1f,\n    \"pooled_mbps\": %.1f\n  },\n",
      rt.tensors, static_cast<unsigned long long>(rt.payload_bytes),
      static_cast<unsigned long long>(rt.legacy_copied),
      static_cast<unsigned long long>(rt.pooled_copied), rt.copy_ratio(),
      rt.legacy_mbps, rt.pooled_mbps);
  const bool parallel_floor_applies = gemm.hw_threads >= 4;
  const bool avx2_floor_applies = gemm.avx2_dispatched;
  std::fprintf(
      f,
      "  \"gemm\": {\n    \"m\": %lld, \"n\": %lld, \"k\": %lld,\n"
      "    \"threads\": %zu,\n    \"hw_threads\": %u,\n"
      "    \"serial_gflops\": %.2f,\n"
      "    \"parallel_gflops\": %.2f,\n    \"speedup_x\": %.2f,\n"
      "    \"parallel_floor_applies\": %s,\n"
      "    \"parallel_floor_waived\": %s,\n"
      "    \"avx2_dispatched\": %s,\n"
      "    \"avx2_serial_gflops\": %.2f,\n"
      "    \"avx2_speedup_x\": %.2f,\n"
      "    \"avx2_floor_applies\": %s,\n"
      "    \"avx2_floor_waived\": %s\n  }\n}\n",
      static_cast<long long>(gemm.m), static_cast<long long>(gemm.n),
      static_cast<long long>(gemm.k), gemm.threads, gemm.hw_threads,
      gemm.serial_gflops, gemm.parallel_gflops, gemm.speedup(),
      parallel_floor_applies ? "true" : "false",
      parallel_floor_applies ? "false" : "true",
      gemm.avx2_dispatched ? "true" : "false", gemm.avx2_serial_gflops,
      gemm.avx2_speedup(), avx2_floor_applies ? "true" : "false",
      avx2_floor_applies ? "false" : "true");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Main() {
  PrintFigureHeader("Data plane",
                    "In-place AEAD, pooled checkpoint round trip, and "
                    "shared-pool GEMM vs their copying/serial baselines");

  // 1. AEAD seal+open round trips.
  std::printf("%-12s | %14s %14s | %6s\n", "AEAD payload", "legacy MB/s",
              "in-place MB/s", "x");
  PrintRule();
  std::vector<AeadResult> aead;
  for (auto [payload, iters] : {std::pair<size_t, int>{4 << 10, 64},
                                {64 << 10, 16},
                                {1 << 20, 2}}) {
    aead.push_back(RunAead(payload, iters));
    const AeadResult& r = aead.back();
    std::printf("%9zu KiB | %14.1f %14.1f | %5.2fx\n", r.payload >> 10,
                r.legacy_mbps, r.inplace_mbps,
                r.legacy_mbps > 0 ? r.inplace_mbps / r.legacy_mbps : 0.0);
  }

  // 1b. AES-GCM dispatch delta (AES-NI/PCLMUL vs portable tables).
  const AeadDispatchResult aead_disp = RunAeadDispatch(1 << 20);
  std::printf("\nAES-GCM dispatch [%s]: accel %.1f MB/s vs scalar %.1f MB/s"
              " | %.2fx (floor: 10x)%s\n",
              util::CpuFeatureString().c_str(), aead_disp.accel_mbps,
              aead_disp.scalar_mbps, aead_disp.speedup(),
              aead_disp.accelerated
                  ? (aead_disp.speedup() >= 10.0 ? ""
                                                 : "  ** BELOW FLOOR **")
                  : "  (floor waived: no AES-NI dispatch)");

  // 2. Checkpoint round trip over an attested secure channel.
  ChannelPair pair;
  if (!pair.Init()) {
    std::printf("secure-channel setup failed\n");
    return 1;
  }
  auto base = MetricsBaseline();
  const RoundTripResult rt = RunRoundTrip(pair, /*iters=*/8);
  std::printf("\ncheckpoint round trip (%zu tensors, %llu payload bytes)\n",
              rt.tensors, static_cast<unsigned long long>(rt.payload_bytes));
  PrintRule();
  std::printf("%-8s | %16s %12s\n", "path", "copied B/trip", "MB/s");
  std::printf("%-8s | %16llu %12.1f\n", "legacy",
              static_cast<unsigned long long>(rt.legacy_copied),
              rt.legacy_mbps);
  std::printf("%-8s | %16llu %12.1f\n", "pooled",
              static_cast<unsigned long long>(rt.pooled_copied),
              rt.pooled_mbps);
  std::printf("copy reduction: %.2fx (floor: 2x)%s\n", rt.copy_ratio(),
              rt.copy_ratio() >= 2.0 ? "" : "  ** BELOW FLOOR **");
  obs::SyncDataPlaneMetrics();
  DumpMetricsJson("data_plane/round_trip", &base);

  // 3. Blocked GEMM, serial vs 4-thread shared pool.
  const GemmResult gemm = RunGemm(512, 512, 512, /*threads=*/4);
  // The 2x floor only applies where the host can actually run the
  // shards in parallel; on a 1-2 core machine the bench still reports
  // the numbers but cannot fail on them.
  const bool gemm_floor_applies = gemm.hw_threads >= 4;
  std::printf("\nGEMM %lldx%lldx%lld blocked (%u hw threads)\n",
              static_cast<long long>(gemm.m), static_cast<long long>(gemm.n),
              static_cast<long long>(gemm.k), gemm.hw_threads);
  PrintRule();
  std::printf("serial: %6.2f GFLOP/s | %zu threads: %6.2f GFLOP/s | "
              "speedup %.2fx (floor: 2x)%s\n",
              gemm.serial_gflops, gemm.threads, gemm.parallel_gflops,
              gemm.speedup(),
              gemm.speedup() >= 2.0
                  ? ""
                  : gemm_floor_applies ? "  ** BELOW FLOOR **"
                                       : "  (floor waived: host too small)");
  std::printf("avx2 serial: %6.2f GFLOP/s | vs blocked serial %.2fx "
              "(floor: 5x)%s\n",
              gemm.avx2_serial_gflops, gemm.avx2_speedup(),
              gemm.avx2_dispatched
                  ? (gemm.avx2_speedup() >= 5.0 ? ""
                                                : "  ** BELOW FLOOR **")
                  : "  (floor waived: no AVX2 dispatch)");

  WriteJson(aead, aead_disp, rt, gemm);
  const bool ok = rt.copy_ratio() >= 2.0 &&
                  (!gemm_floor_applies || gemm.speedup() >= 2.0) &&
                  (!gemm.avx2_dispatched || gemm.avx2_speedup() >= 5.0) &&
                  (!aead_disp.accelerated || aead_disp.speedup() >= 10.0);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace mvtee::bench

int main() { return mvtee::bench::Main(); }
