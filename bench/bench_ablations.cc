// Ablations of MVTEE's design choices (DESIGN.md §5):
//
//  A. Random-BALANCED contraction vs unbiased random contraction:
//     partition cost imbalance and its effect on pipelined throughput
//     (the pipeline drains at the rate of its slowest stage).
//  B. Direct fast-path routing (variant->variant pipes) vs monitor-
//     mediated forwarding: the cost of hauling every boundary tensor
//     through the monitor.
//  C. Consistency metric choice: virtual checkpoint cost of cosine vs
//     MSE vs max-abs vs allclose on a 3-variant panel.
#include "bench/bench_common.h"
#include "partition/partition.h"

namespace mvtee::bench {
namespace {

void AblationPartitionBalance() {
  PrintFigureHeader("Ablation A",
                    "Balanced vs unbiased random contraction (5 "
                    "partitions, pipelined)");
  std::printf("%-16s | %10s %10s | %10s %10s\n", "model", "bal imbal",
              "uni imbal", "bal tput", "uni tput");
  PrintRule();
  const int kBatches = 12;
  for (auto kind :
       {graph::ModelKind::kResNet50, graph::ModelKind::kGoogleNet,
        graph::ModelKind::kMobileNetV3}) {
    graph::Graph model = graph::BuildModel(kind, BenchZooConfig());
    auto batches = MakeBatches(model, kBatches, 37);

    double imbalance[2] = {0, 0}, tput[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
      // mode 0: balanced default; mode 1: uniform weights, no cost cap.
      MvteeSetup setup = FundamentalSetup(5, 37);
      auto bundle_opts = core::OfflineOptions{};
      bundle_opts.num_partitions = 5;
      bundle_opts.partition_seed = 37;
      bundle_opts.key_seed = 38;
      bundle_opts.partition_trials = 1;
      bundle_opts.pool = setup.pool;

      // Recompute the partition set explicitly to read its imbalance.
      partition::PartitionOptions popts;
      popts.target_partitions = 5;
      popts.seed = 37;
      if (mode == 1) {
        popts.weight_fn = [](double, double, double) { return 1.0; };
        popts.max_cost_fraction = 1.0;
      }
      auto set = partition::RandomContraction(model, popts);
      if (!set.ok()) continue;
      imbalance[mode] = set->CostImbalance();

      // Run MVTEE with the same partitioning behaviour (the offline tool
      // uses the default weights; emulate the ablation by seeding the
      // run from the explicit partition set via manual slicing).
      std::vector<std::vector<graph::NodeId>> groups;
      for (const auto& p : set->partitions) groups.push_back(p.nodes);
      auto manual = partition::ManualSlice(model, groups);
      if (!manual.ok()) continue;
      auto pm = partition::BuildPartitionedModel(model, *manual);
      if (!pm.ok()) continue;
      // Feed through the bundle path by rebuilding with matching seed:
      // simplest honest route — build the offline bundle from the same
      // groups via the manual-slice partition set.
      (void)pm;
      // Offline tool only supports random contraction; approximate the
      // ablation by measuring the critical-stage share analytically:
      // pipeline throughput ~ 1 / max stage cost.
      double total = 0, max_cost = 0;
      for (const auto& p : set->partitions) {
        total += p.cost;
        max_cost = std::max(max_cost, p.cost);
      }
      // Normalized pipeline rate: total/(5*max) = 1/imbalance.
      tput[mode] = total / (5.0 * max_cost);
    }
    std::printf("%-16s | %9.2fx %9.2fx | %9.2f %9.2f\n",
                std::string(graph::ModelName(kind)).c_str(), imbalance[0],
                imbalance[1], tput[0], tput[1]);
  }
  PrintRule();
  std::printf(
      "imbalance = max stage cost / mean (1.0 = perfect); tput = relative\n"
      "pipeline drain rate (1/imbalance). Balanced contraction keeps the\n"
      "pipeline bottleneck near the mean; unbiased contraction does not.\n");
}

void AblationDirectFastPath() {
  PrintFigureHeader("Ablation B",
                    "Direct fast-path pipes vs monitor-mediated "
                    "forwarding (5 partitions, 1 variant/stage)");
  std::printf("%-16s %4s | %10s %10s %8s\n", "model", "mode", "direct b/s",
              "mediated", "cost");
  PrintRule();
  const int kBatches = 12;
  for (auto kind :
       {graph::ModelKind::kResNet50, graph::ModelKind::kEfficientNetB7,
        graph::ModelKind::kMnasNet}) {
    graph::Graph model = graph::BuildModel(kind, BenchZooConfig());
    auto batches = MakeBatches(model, kBatches, 39);

    MvteeSetup direct = FundamentalSetup(5, 39);
    MvteeSetup mediated = FundamentalSetup(5, 39);
    mediated.monitor.direct_fastpath = false;
    auto bundle = BuildBenchBundle(model, direct);
    if (!bundle.ok()) continue;

    for (bool pipelined : {false, true}) {
      auto d = RunMvtee(*bundle, direct, batches, pipelined);
      auto m = RunMvtee(*bundle, mediated, batches, pipelined);
      if (!d.ok() || !m.ok()) continue;
      std::printf("%-16s %4s | %10.1f %10.1f %7.1f%%\n",
                  std::string(graph::ModelName(kind)).c_str(),
                  pipelined ? "pipe" : "seq", d->throughput, m->throughput,
                  (1.0 - m->throughput / d->throughput) * 100);
    }
  }
  PrintRule();
  std::printf(
      "cost = throughput lost when all boundary tensors detour through "
      "the monitor.\n");
}

void AblationCheckMetric() {
  PrintFigureHeader("Ablation C",
                    "Consistency metric cost (3-variant panel, 5 "
                    "partitions, all-MVX, sequential)");
  std::printf("%-12s | %10s %12s\n", "metric", "tput b/s", "checkpoints");
  PrintRule();
  graph::Graph model =
      graph::BuildModel(graph::ModelKind::kResNet50, BenchZooConfig());
  auto batches = MakeBatches(model, 10, 41);
  MvteeSetup setup = FundamentalSetup(5, 41);
  setup.pool.variants_per_stage = 3;
  setup.variant_counts = {3, 3, 3, 3, 3};
  auto bundle = BuildBenchBundle(model, setup);
  if (!bundle.ok()) return;

  struct M {
    const char* name;
    core::CheckPolicy policy;
  };
  const M metrics[] = {
      {"cosine", core::CheckPolicy::Cosine(0.99)},
      {"mse", core::CheckPolicy::Mse(1e-3)},
      {"max-abs", core::CheckPolicy::MaxAbs(0.5)},
      {"allclose", core::CheckPolicy::AllClose(1e-2, 1e-3)},
  };
  for (const M& m : metrics) {
    MvteeSetup cfg = setup;
    cfg.monitor.check = m.policy;
    auto out = RunMvtee(*bundle, cfg, batches, false);
    if (!out.ok()) {
      std::printf("%-12s | failed: %s\n", m.name,
                  out.status().ToString().c_str());
      continue;
    }
    std::printf("%-12s | %10.1f %12llu\n", m.name, out->throughput,
                static_cast<unsigned long long>(
                    out->stats.checkpoints_evaluated));
  }
  PrintRule();
  std::printf(
      "verification compute is minor next to transfers — consistent with "
      "the paper's\nobservation that \"verification computation typically "
      "completes quickly\".\n");
}

int Main() {
  AblationPartitionBalance();
  AblationDirectFastPath();
  AblationCheckMetric();
  return 0;
}

}  // namespace
}  // namespace mvtee::bench

int main() { return mvtee::bench::Main(); }
