// Serving benchmark (DESIGN.md §11): the attested service front end
// under concurrent sessions.
//
// Boots a full deployment, opens the RA-TLS front end on a Listener and
// drives N concurrent client sessions, each submitting encrypted
// requests back-to-back. Reports per-request latency percentiles
// (p50/p99, measured client-side around Infer) and goodput (completed
// requests per wall-clock second across all sessions), plus how many
// coalesced admission groups served them.
//
// Per-phase latency breakdown (DESIGN.md §12): alongside the
// client-side end-to-end percentiles, the summary reports server-side
// p50/p99 of the queue-wait, infer and verify phases, read from the
// live service.{queue_wait,infer,verify}_us histograms.
//
// Introspection plane: the bench starts an AdminServer next to the
// service; with MVTEE_ADMIN_PORT set it serves /healthz /metrics
// /status on loopback TCP, and MVTEE_ADMIN_LINGER_MS keeps the loaded
// deployment alive after the run so CI can scrape it with curl.
//
// Results go to stdout and to a machine-readable JSON summary at
// $MVTEE_BENCH_JSON (default ./BENCH_serving.json) so CI can archive a
// baseline next to the other bench artifacts.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "obs/watchdog.h"
#include "service/admin.h"
#include "service/inference_service.h"
#include "transport/channel.h"
#include "util/rng.h"

namespace mvtee::bench {
namespace {

constexpr int kSessions = 8;
constexpr int kRequestsPerSession = 6;

struct ServingResult {
  int sessions = 0;
  int requests_total = 0;
  int requests_ok = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double goodput_rps = 0.0;  // completed requests / wall second
  uint64_t admission_groups = 0;
  uint64_t rejected = 0;
  // Server-side phase breakdown, from the live registry histograms.
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  double infer_p50_ms = 0.0;
  double infer_p99_ms = 0.0;
  double verify_p50_ms = 0.0;
  double verify_p99_ms = 0.0;
};

double PercentileMs(std::vector<int64_t> latencies_us, double q) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const size_t idx = std::min(
      latencies_us.size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies_us.size())));
  return static_cast<double>(latencies_us[idx]) / 1000.0;
}

void WriteJson(const ServingResult& r) {
  const char* path = std::getenv("MVTEE_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_serving.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serving\",\n"
               "  \"sessions\": %d,\n"
               "  \"requests_total\": %d,\n"
               "  \"requests_ok\": %d,\n"
               "  \"p50_ms\": %.2f,\n"
               "  \"p99_ms\": %.2f,\n"
               "  \"goodput_rps\": %.2f,\n"
               "  \"admission_groups\": %llu,\n"
               "  \"rejected\": %llu,\n"
               "  \"queue_wait_p50_ms\": %.2f,\n"
               "  \"queue_wait_p99_ms\": %.2f,\n"
               "  \"infer_p50_ms\": %.2f,\n"
               "  \"infer_p99_ms\": %.2f,\n"
               "  \"verify_p50_ms\": %.2f,\n"
               "  \"verify_p99_ms\": %.2f\n"
               "}\n",
               r.sessions, r.requests_total, r.requests_ok, r.p50_ms,
               r.p99_ms, r.goodput_rps,
               static_cast<unsigned long long>(r.admission_groups),
               static_cast<unsigned long long>(r.rejected),
               r.queue_wait_p50_ms, r.queue_wait_p99_ms, r.infer_p50_ms,
               r.infer_p99_ms, r.verify_p50_ms, r.verify_p99_ms);
  std::fclose(f);
  std::printf("json summary: %s\n", path);
}

int Main() {
  std::printf("=== serving: attested sessions through the front end ===\n");
  graph::ZooConfig zoo = BenchZooConfig();
  graph::Graph model =
      graph::BuildModel(graph::ModelKind::kMobileNetV3, zoo);

  MvteeSetup setup = FundamentalSetup(/*partitions=*/4);
  // The front end routes through the monitor; direct variant-to-variant
  // pipes would bypass the session loop's accounting.
  setup.monitor.direct_fastpath = false;
  auto bundle = BuildBenchBundle(model, setup);
  if (!bundle.ok()) {
    std::printf("bundle failed: %s\n", bundle.status().ToString().c_str());
    return 1;
  }

  tee::SimulatedCpu cpu;
  core::VariantHost host(&cpu, bundle->store, setup.host);
  auto monitor = core::Monitor::Create(&cpu, setup.monitor);
  if (!monitor.ok()) return 1;
  auto status = (*monitor)->Initialize(
      *bundle, core::MvxSelection::Uniform(*bundle, 1), host);
  if (!status.ok()) {
    std::printf("init failed: %s\n", status.ToString().c_str());
    return 1;
  }

  transport::Listener listener;
  auto service = service::InferenceService::Start(**monitor, listener);
  if (!service.ok()) {
    std::printf("service start failed: %s\n",
                service.status().ToString().c_str());
    return 1;
  }
  // Introspection plane next to the service: in-process admin listener
  // always; loopback TCP when MVTEE_ADMIN_PORT is set (0 = ephemeral).
  transport::Listener admin_listener;
  auto admin = service::AdminServer::Start(**monitor, admin_listener);
  if (!admin.ok()) {
    std::printf("admin start failed: %s\n", admin.status().ToString().c_str());
    return 1;
  }
  if ((*admin)->tcp_port() >= 0) {
    std::printf("admin endpoint: http://127.0.0.1:%d\n", (*admin)->tcp_port());
  }
  obs::Registry& reg = (*monitor)->metrics();
  const uint64_t groups_base =
      reg.GetCounter("service.groups_total").value();
  const uint64_t rejected_base =
      reg.GetCounter("service.rejected_total").value();

  std::mutex latencies_mu;
  std::vector<int64_t> latencies_us;
  std::atomic<int> ok_count{0};
  const int64_t t0 = util::NowMicros();
  std::vector<std::thread> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      auto client = service::InferenceClient::Connect(
          listener, cpu, (*monitor)->enclave().measurement());
      if (!client.ok()) return;
      util::Rng rng(1000 + static_cast<uint64_t>(s));
      std::vector<int64_t> mine;
      for (int r = 0; r < kRequestsPerSession; ++r) {
        auto input = tensor::Tensor::RandomUniform(
            tensor::Shape({1, 3, zoo.input_hw, zoo.input_hw}), rng);
        const int64_t start = util::NowMicros();
        auto result = (*client)->Infer({input});
        if (result.ok()) {
          mine.push_back(util::NowMicros() - start);
          ok_count.fetch_add(1);
        }
      }
      (*client)->Disconnect();
      std::lock_guard<std::mutex> lock(latencies_mu);
      latencies_us.insert(latencies_us.end(), mine.begin(), mine.end());
    });
  }
  for (auto& t : sessions) t.join();
  const int64_t wall_us = util::NowMicros() - t0;

  // With MVTEE_ADMIN_LINGER_MS set, keep the loaded deployment alive so
  // an external scraper (CI curl) can hit the admin endpoints while the
  // histograms, sessions and supervisor panel still reflect the run.
  const int64_t linger_ms = obs::StallWatchdog::ResolveKnob(
      "MVTEE_ADMIN_LINGER_MS", std::getenv("MVTEE_ADMIN_LINGER_MS"), 0,
      3'600'000, 0);
  if (linger_ms > 0) {
    std::printf("lingering %lld ms for admin scrapes...\n",
                static_cast<long long>(linger_ms));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  (*service)->Stop();

  ServingResult result;
  result.sessions = kSessions;
  result.requests_total = kSessions * kRequestsPerSession;
  result.requests_ok = ok_count.load();
  result.p50_ms = PercentileMs(latencies_us, 0.50);
  result.p99_ms = PercentileMs(latencies_us, 0.99);
  result.goodput_rps =
      wall_us > 0 ? static_cast<double>(result.requests_ok) * 1e6 /
                        static_cast<double>(wall_us)
                  : 0.0;
  result.admission_groups =
      reg.GetCounter("service.groups_total").value() - groups_base;
  result.rejected =
      reg.GetCounter("service.rejected_total").value() - rejected_base;
  const obs::HistogramStats queue_wait =
      reg.GetHistogram("service.queue_wait_us").Stats();
  const obs::HistogramStats infer =
      reg.GetHistogram("service.infer_us").Stats();
  const obs::HistogramStats verify =
      reg.GetHistogram("service.verify_us").Stats();
  result.queue_wait_p50_ms = queue_wait.p50 / 1000.0;
  result.queue_wait_p99_ms = queue_wait.p99 / 1000.0;
  result.infer_p50_ms = infer.p50 / 1000.0;
  result.infer_p99_ms = infer.p99 / 1000.0;
  result.verify_p50_ms = verify.p50 / 1000.0;
  result.verify_p99_ms = verify.p99 / 1000.0;

  std::printf(
      "%d sessions x %d requests: %d ok | p50 %.2f ms | p99 %.2f ms | "
      "%.2f req/s | %llu admission groups | %llu rejected\n",
      result.sessions, kRequestsPerSession, result.requests_ok,
      result.p50_ms, result.p99_ms, result.goodput_rps,
      static_cast<unsigned long long>(result.admission_groups),
      static_cast<unsigned long long>(result.rejected));
  std::printf(
      "phase breakdown (server-side): queue-wait p50 %.2f / p99 %.2f ms | "
      "infer p50 %.2f / p99 %.2f ms | verify p50 %.2f / p99 %.2f ms\n",
      result.queue_wait_p50_ms, result.queue_wait_p99_ms, result.infer_p50_ms,
      result.infer_p99_ms, result.verify_p50_ms, result.verify_p99_ms);
  WriteJson(result);

  (*admin)->Stop();
  (void)(*monitor)->Shutdown();
  host.JoinAll();
  return result.requests_ok == result.requests_total ? 0 : 1;
}

}  // namespace
}  // namespace mvtee::bench

int main() { return mvtee::bench::Main(); }
