// Serving benchmark (DESIGN.md §11, §13): the attested service front
// end under concurrent sessions, plus the continuous-batching scheduler
// under open-loop multi-tenant load.
//
// Phase 1 — wire sessions: boots a full deployment, opens the RA-TLS
// front end on a Listener and drives N concurrent client sessions, each
// submitting encrypted requests back-to-back. Reports per-request
// latency percentiles (p50/p99, measured client-side around Infer) and
// goodput (completed requests per wall-clock second across all
// sessions), plus how many coalesced admission groups served them, and
// the server-side queue-wait/infer/verify phase breakdown from the live
// service.*_us histograms.
//
// Phase 2 — offered-load sweep: three tenants ("tight" with a short
// deadline and high priority, "loose" with a long deadline, "batch"
// with no deadline) submit OPEN LOOP — at a fixed arrival rate,
// regardless of completions — through in-process sessions. The sweep
// raises the total offered load through multiples of the measured
// single-slot capacity and records goodput (ON-TIME completions per
// second) at each point, once with the continuous scheduler (EDF +
// batch window + WFQ) and once with the PR 6-style drain barrier
// (Continuous(false), Edf(false), BatchWindowUs(0)). The knee — peak
// goodput across the sweep — is the headline number; the bench exits
// non-zero if the scheduler's knee falls below the barrier baseline's,
// or if the scheduler misses deadlines at the lowest offered load where
// the baseline does not.
//
// Introspection plane: the bench starts an AdminServer next to the
// service; with MVTEE_ADMIN_PORT set it serves /healthz /metrics
// /status on loopback TCP, and MVTEE_ADMIN_LINGER_MS keeps the loaded
// deployment alive after the run so CI can scrape it with curl.
//
// Results go to stdout and to a machine-readable JSON summary at
// $MVTEE_BENCH_JSON (default ./BENCH_serving.json) so CI can archive a
// baseline next to the other bench artifacts (committed reference:
// bench/baselines/BENCH_serving.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/scheduler.h"
#include "service/admin.h"
#include "service/inference_service.h"
#include "transport/channel.h"
#include "util/knobs.h"
#include "util/rng.h"

namespace mvtee::bench {
namespace {

constexpr int kSessions = 8;
constexpr int kRequestsPerSession = 6;

// Offered-load sweep shape: three tenants, open loop, load multiples
// of the measured single-slot capacity.
constexpr int kTenants = 3;
constexpr int kRequestsPerTenantPerPoint = 8;
constexpr double kLoadMultiples[] = {0.5, 1.0, 2.0, 4.0};
const char* const kTenantNames[kTenants] = {"tight", "loose", "batch"};
constexpr int32_t kTenantPriority[kTenants] = {2, 1, 0};

struct ServingResult {
  int sessions = 0;
  int requests_total = 0;
  int requests_ok = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double goodput_rps = 0.0;  // completed requests / wall second
  uint64_t admission_groups = 0;
  uint64_t rejected = 0;
  // Server-side phase breakdown, from the live registry histograms.
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  double infer_p50_ms = 0.0;
  double infer_p99_ms = 0.0;
  double verify_p50_ms = 0.0;
  double verify_p99_ms = 0.0;
};

struct SweepPoint {
  double offered_rps = 0.0;  // total across the three tenants
  int submitted = 0;
  int rejected = 0;   // admission rejections (fail-fast at Submit)
  int completed = 0;  // successful responses
  int on_time = 0;    // completed within the tenant's deadline
  int expired = 0;    // kDeadlineExceeded (expired while queued)
  double goodput_rps = 0.0;  // on-time completions / wall second
};

struct SweepMode {
  const char* mode;  // "scheduler" | "baseline"
  std::vector<SweepPoint> points;
  double knee_goodput_rps = 0.0;  // peak goodput across the sweep
};

double PercentileMs(std::vector<int64_t> latencies_us, double q) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const size_t idx = std::min(
      latencies_us.size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies_us.size())));
  return static_cast<double>(latencies_us[idx]) / 1000.0;
}

// One offered-load point: three tenant threads, each with its own
// session, submitting open loop at offered_rps/3 and classifying every
// response against its own deadline.
SweepPoint RunSweepPoint(core::Monitor& monitor,
                         const std::vector<tensor::Tensor>& inputs,
                         double offered_rps, int64_t tight_deadline_us,
                         int64_t loose_deadline_us) {
  const int64_t deadlines[kTenants] = {tight_deadline_us, loose_deadline_us,
                                       0};
  struct TenantRun {
    SweepPoint counts;
    int64_t done_us = 0;
  };
  std::vector<TenantRun> runs(kTenants);
  const int64_t interval_us =
      static_cast<int64_t>(static_cast<double>(kTenants) * 1e6 / offered_rps);
  const int64_t t0 = util::NowMicros();
  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      auto session = monitor.OpenSession();
      if (!session.ok()) return;
      std::vector<std::future<core::InferenceResponse>> futures;
      futures.reserve(kRequestsPerTenantPerPoint);
      for (int r = 0; r < kRequestsPerTenantPerPoint; ++r) {
        // Open loop: the next arrival is scheduled on the wall clock,
        // not on the previous completion. Tenants are phase-staggered
        // by a third of the interval.
        const int64_t due =
            t0 + r * interval_us + (t * interval_us) / kTenants;
        const int64_t now = util::NowMicros();
        if (now < due) {
          std::this_thread::sleep_for(std::chrono::microseconds(due - now));
        }
        core::InferenceRequest request;
        request.inputs = {inputs[static_cast<size_t>(r) % inputs.size()]};
        request.tenant = kTenantNames[t];
        request.priority = kTenantPriority[t];
        request.deadline_us = deadlines[t];
        runs[t].counts.submitted++;
        auto submitted = (*session)->Submit(std::move(request));
        if (!submitted.ok()) {
          runs[t].counts.rejected++;
          continue;
        }
        futures.push_back(std::move(*submitted));
      }
      for (auto& future : futures) {
        core::InferenceResponse response = future.get();
        if (response.status.ok()) {
          runs[t].counts.completed++;
          if (deadlines[t] == 0 || response.latency_us <= deadlines[t]) {
            runs[t].counts.on_time++;
          }
        } else if (response.status.code() ==
                   util::StatusCode::kDeadlineExceeded) {
          runs[t].counts.expired++;
        }
      }
      runs[t].done_us = util::NowMicros();
    });
  }
  for (auto& th : threads) th.join();

  SweepPoint point;
  point.offered_rps = offered_rps;
  int64_t last_done = t0;
  for (const auto& run : runs) {
    point.submitted += run.counts.submitted;
    point.rejected += run.counts.rejected;
    point.completed += run.counts.completed;
    point.on_time += run.counts.on_time;
    point.expired += run.counts.expired;
    last_done = std::max(last_done, run.done_us);
  }
  const int64_t wall_us = last_done - t0;
  point.goodput_rps = wall_us > 0 ? static_cast<double>(point.on_time) * 1e6 /
                                        static_cast<double>(wall_us)
                                  : 0.0;
  return point;
}

SweepMode RunSweep(core::Monitor& monitor, const char* mode,
                   const core::SchedulerConfig& sched,
                   const std::vector<tensor::Tensor>& inputs,
                   double capacity_rps, int64_t tight_deadline_us,
                   int64_t loose_deadline_us) {
  monitor.StopService();
  core::ServiceConfig config;
  config.scheduler = sched;
  MVTEE_CHECK(monitor.StartService(config).ok());

  SweepMode result;
  result.mode = mode;
  for (double multiple : kLoadMultiples) {
    SweepPoint point = RunSweepPoint(monitor, inputs, capacity_rps * multiple,
                                     tight_deadline_us, loose_deadline_us);
    result.knee_goodput_rps =
        std::max(result.knee_goodput_rps, point.goodput_rps);
    std::printf(
        "  [%s] offered %7.1f req/s -> goodput %7.1f req/s "
        "(%d submitted, %d on-time, %d late, %d expired, %d rejected)\n",
        mode, point.offered_rps, point.goodput_rps, point.submitted,
        point.on_time, point.completed - point.on_time, point.expired,
        point.rejected);
    result.points.push_back(point);
  }
  return result;
}

void AppendSweepJson(std::string* out, const SweepMode& mode) {
  char buf[256];
  *out += "    {\n      \"mode\": \"";
  *out += mode.mode;
  std::snprintf(buf, sizeof(buf), "\",\n      \"knee_goodput_rps\": %.2f,\n",
                mode.knee_goodput_rps);
  *out += buf;
  *out += "      \"points\": [\n";
  for (size_t i = 0; i < mode.points.size(); ++i) {
    const SweepPoint& p = mode.points[i];
    std::snprintf(buf, sizeof(buf),
                  "        {\"offered_rps\": %.2f, \"goodput_rps\": %.2f, "
                  "\"submitted\": %d, \"on_time\": %d, \"completed\": %d, "
                  "\"expired\": %d, \"rejected\": %d}%s\n",
                  p.offered_rps, p.goodput_rps, p.submitted, p.on_time,
                  p.completed, p.expired, p.rejected,
                  i + 1 < mode.points.size() ? "," : "");
    *out += buf;
  }
  *out += "      ]\n    }";
}

void WriteJson(const ServingResult& r, const SweepMode& scheduler,
               const SweepMode& baseline, double capacity_rps) {
  const char* path = util::KnobRegistry::Default().Raw("MVTEE_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_serving.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::string sweep;
  AppendSweepJson(&sweep, scheduler);
  sweep += ",\n";
  AppendSweepJson(&sweep, baseline);
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serving\",\n"
               "  \"sessions\": %d,\n"
               "  \"requests_total\": %d,\n"
               "  \"requests_ok\": %d,\n"
               "  \"p50_ms\": %.2f,\n"
               "  \"p99_ms\": %.2f,\n"
               "  \"goodput_rps\": %.2f,\n"
               "  \"admission_groups\": %llu,\n"
               "  \"rejected\": %llu,\n"
               "  \"queue_wait_p50_ms\": %.2f,\n"
               "  \"queue_wait_p99_ms\": %.2f,\n"
               "  \"infer_p50_ms\": %.2f,\n"
               "  \"infer_p99_ms\": %.2f,\n"
               "  \"verify_p50_ms\": %.2f,\n"
               "  \"verify_p99_ms\": %.2f,\n"
               "  \"sweep\": {\n"
               "    \"tenants\": %d,\n"
               "    \"requests_per_tenant_per_point\": %d,\n"
               "    \"capacity_est_rps\": %.2f,\n"
               "    \"knee_ratio\": %.3f\n"
               "  },\n"
               "  \"sweep_modes\": [\n%s\n  ]\n"
               "}\n",
               r.sessions, r.requests_total, r.requests_ok, r.p50_ms,
               r.p99_ms, r.goodput_rps,
               static_cast<unsigned long long>(r.admission_groups),
               static_cast<unsigned long long>(r.rejected),
               r.queue_wait_p50_ms, r.queue_wait_p99_ms, r.infer_p50_ms,
               r.infer_p99_ms, r.verify_p50_ms, r.verify_p99_ms, kTenants,
               kRequestsPerTenantPerPoint, capacity_rps,
               baseline.knee_goodput_rps > 0
                   ? scheduler.knee_goodput_rps / baseline.knee_goodput_rps
                   : 0.0,
               sweep.c_str());
  std::fclose(f);
  std::printf("json summary: %s\n", path);
}

int Main() {
  std::printf("=== serving: attested sessions through the front end ===\n");
  graph::ZooConfig zoo = BenchZooConfig();
  graph::Graph model =
      graph::BuildModel(graph::ModelKind::kMobileNetV3, zoo);

  MvteeSetup setup = FundamentalSetup(/*partitions=*/4);
  // The front end routes through the monitor; direct variant-to-variant
  // pipes would bypass the session loop's accounting.
  setup.monitor.direct_fastpath = false;
  auto bundle = BuildBenchBundle(model, setup);
  if (!bundle.ok()) {
    std::printf("bundle failed: %s\n", bundle.status().ToString().c_str());
    return 1;
  }

  tee::SimulatedCpu cpu;
  core::VariantHost host(&cpu, bundle->store, setup.host);
  auto monitor = core::Monitor::Create(&cpu, setup.monitor);
  if (!monitor.ok()) return 1;
  auto status = (*monitor)->Initialize(
      *bundle, core::MvxSelection::Uniform(*bundle, 1), host);
  if (!status.ok()) {
    std::printf("init failed: %s\n", status.ToString().c_str());
    return 1;
  }

  transport::Listener listener;
  auto service = service::InferenceService::Start(**monitor, listener);
  if (!service.ok()) {
    std::printf("service start failed: %s\n",
                service.status().ToString().c_str());
    return 1;
  }
  // Introspection plane next to the service: in-process admin listener
  // always; loopback TCP when MVTEE_ADMIN_PORT is set (0 = ephemeral).
  transport::Listener admin_listener;
  auto admin = service::AdminServer::Start(**monitor, admin_listener);
  if (!admin.ok()) {
    std::printf("admin start failed: %s\n", admin.status().ToString().c_str());
    return 1;
  }
  if ((*admin)->tcp_port() >= 0) {
    std::printf("admin endpoint: http://127.0.0.1:%d\n", (*admin)->tcp_port());
  }
  obs::Registry& reg = (*monitor)->metrics();
  const uint64_t groups_base =
      reg.GetCounter("service.groups_total").value();
  const uint64_t rejected_base =
      reg.GetCounter("service.rejected_total").value();

  std::mutex latencies_mu;
  std::vector<int64_t> latencies_us;
  std::atomic<int> ok_count{0};
  const int64_t t0 = util::NowMicros();
  std::vector<std::thread> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      auto client = service::InferenceClient::Connect(
          listener, cpu, (*monitor)->enclave().measurement());
      if (!client.ok()) return;
      util::Rng rng(1000 + static_cast<uint64_t>(s));
      std::vector<int64_t> mine;
      for (int r = 0; r < kRequestsPerSession; ++r) {
        auto input = tensor::Tensor::RandomUniform(
            tensor::Shape({1, 3, zoo.input_hw, zoo.input_hw}), rng);
        const int64_t start = util::NowMicros();
        auto result = (*client)->Infer({input});
        if (result.ok()) {
          mine.push_back(util::NowMicros() - start);
          ok_count.fetch_add(1);
        }
      }
      (*client)->Disconnect();
      std::lock_guard<std::mutex> lock(latencies_mu);
      latencies_us.insert(latencies_us.end(), mine.begin(), mine.end());
    });
  }
  for (auto& t : sessions) t.join();
  const int64_t wall_us = util::NowMicros() - t0;

  // With MVTEE_ADMIN_LINGER_MS set, keep the loaded deployment alive so
  // an external scraper (CI curl) can hit the admin endpoints while the
  // histograms, sessions and supervisor panel still reflect the run.
  const int64_t linger_ms =
      util::KnobRegistry::Default().Int("MVTEE_ADMIN_LINGER_MS");
  if (linger_ms > 0) {
    std::printf("lingering %lld ms for admin scrapes...\n",
                static_cast<long long>(linger_ms));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  (*service)->Stop();

  ServingResult result;
  result.sessions = kSessions;
  result.requests_total = kSessions * kRequestsPerSession;
  result.requests_ok = ok_count.load();
  result.p50_ms = PercentileMs(latencies_us, 0.50);
  result.p99_ms = PercentileMs(latencies_us, 0.99);
  result.goodput_rps =
      wall_us > 0 ? static_cast<double>(result.requests_ok) * 1e6 /
                        static_cast<double>(wall_us)
                  : 0.0;
  result.admission_groups =
      reg.GetCounter("service.groups_total").value() - groups_base;
  result.rejected =
      reg.GetCounter("service.rejected_total").value() - rejected_base;
  const obs::HistogramStats queue_wait =
      reg.GetHistogram("service.queue_wait_us").Stats();
  const obs::HistogramStats infer =
      reg.GetHistogram("service.infer_us").Stats();
  const obs::HistogramStats verify =
      reg.GetHistogram("service.verify_us").Stats();
  result.queue_wait_p50_ms = queue_wait.p50 / 1000.0;
  result.queue_wait_p99_ms = queue_wait.p99 / 1000.0;
  result.infer_p50_ms = infer.p50 / 1000.0;
  result.infer_p99_ms = infer.p99 / 1000.0;
  result.verify_p50_ms = verify.p50 / 1000.0;
  result.verify_p99_ms = verify.p99 / 1000.0;

  std::printf(
      "%d sessions x %d requests: %d ok | p50 %.2f ms | p99 %.2f ms | "
      "%.2f req/s | %llu admission groups | %llu rejected\n",
      result.sessions, kRequestsPerSession, result.requests_ok,
      result.p50_ms, result.p99_ms, result.goodput_rps,
      static_cast<unsigned long long>(result.admission_groups),
      static_cast<unsigned long long>(result.rejected));
  std::printf(
      "phase breakdown (server-side): queue-wait p50 %.2f / p99 %.2f ms | "
      "infer p50 %.2f / p99 %.2f ms | verify p50 %.2f / p99 %.2f ms\n",
      result.queue_wait_p50_ms, result.queue_wait_p99_ms, result.infer_p50_ms,
      result.infer_p99_ms, result.verify_p50_ms, result.verify_p99_ms);

  // ---- Phase 2: open-loop 3-tenant offered-load sweep.
  std::printf("\n=== serving: open-loop multi-tenant offered-load sweep "
              "===\n");
  // Capacity calibration: the wire phase's median end-to-end latency is
  // an honest single-slot service-time estimate; with max_batch pipeline
  // slots the deployment's aggregate capacity is several times that.
  const double median_ms = result.p50_ms > 0.01 ? result.p50_ms : 10.0;
  const double capacity_rps = 2.0 * 1e3 / median_ms;
  const int64_t tight_deadline_us =
      static_cast<int64_t>(5.0 * median_ms * 1000.0);
  const int64_t loose_deadline_us =
      static_cast<int64_t>(25.0 * median_ms * 1000.0);
  std::printf("capacity estimate %.1f req/s | tight deadline %.1f ms | "
              "loose deadline %.1f ms\n",
              capacity_rps, tight_deadline_us / 1000.0,
              loose_deadline_us / 1000.0);

  std::vector<tensor::Tensor> sweep_inputs;
  {
    util::Rng rng(42);
    for (int i = 0; i < 4; ++i) {
      sweep_inputs.push_back(tensor::Tensor::RandomUniform(
          tensor::Shape({1, 3, zoo.input_hw, zoo.input_hw}), rng));
    }
  }
  const core::SchedulerConfig scheduler_cfg =
      core::SchedulerConfig::FromEnv(core::SchedulerConfig{});
  const core::SchedulerConfig baseline_cfg =
      core::SchedulerConfig::Builder()
          .Continuous(false)
          .Edf(false)
          .BatchWindowUs(0)
          .Build();
  SweepMode sched_sweep =
      RunSweep(**monitor, "scheduler", scheduler_cfg, sweep_inputs,
               capacity_rps, tight_deadline_us, loose_deadline_us);
  SweepMode base_sweep =
      RunSweep(**monitor, "baseline", baseline_cfg, sweep_inputs,
               capacity_rps, tight_deadline_us, loose_deadline_us);
  std::printf("knee goodput: scheduler %.1f req/s | drain-barrier baseline "
              "%.1f req/s | ratio %.2fx\n",
              sched_sweep.knee_goodput_rps, base_sweep.knee_goodput_rps,
              base_sweep.knee_goodput_rps > 0
                  ? sched_sweep.knee_goodput_rps / base_sweep.knee_goodput_rps
                  : 0.0);

  WriteJson(result, sched_sweep, base_sweep, capacity_rps);

  (*admin)->Stop();
  (void)(*monitor)->Shutdown();
  host.JoinAll();

  bool pass = result.requests_ok == result.requests_total;
  // Acceptance floor: continuous batching must not lose to the PR 6
  // drain barrier at saturation (small tolerance for scheduler noise on
  // loaded CI runners).
  if (sched_sweep.knee_goodput_rps < 0.95 * base_sweep.knee_goodput_rps) {
    std::printf("FAIL: scheduler knee goodput %.1f below drain-barrier "
                "baseline %.1f\n",
                sched_sweep.knee_goodput_rps, base_sweep.knee_goodput_rps);
    pass = false;
  }
  // Zero deadline-miss regression at low load: at the lowest offered
  // load the scheduler must not expire requests the baseline served.
  const SweepPoint& sched_low = sched_sweep.points.front();
  const SweepPoint& base_low = base_sweep.points.front();
  if (sched_low.expired > base_low.expired) {
    std::printf("FAIL: scheduler expired %d requests at low load "
                "(baseline: %d)\n",
                sched_low.expired, base_low.expired);
    pass = false;
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace mvtee::bench

int main() { return mvtee::bench::Main(); }
