// Micro-benchmarks of the substrates (google-benchmark): crypto record
// protection, GEMM backends, conv lowering, partitioning, end-to-end
// single inference per model. These quantify the building-block costs
// behind the figure-level experiments.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "crypto/aead.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"
#include "partition/partition.h"
#include "runtime/gemm.h"
#include "runtime/kernels.h"

namespace mvtee {
namespace {

void BM_Sha256(benchmark::State& state) {
  util::Bytes data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(64 * 1024);

void BM_AesGcmSeal(benchmark::State& state) {
  util::Bytes key(32, 0x11), nonce(12, 0x22);
  util::Bytes data(static_cast<size_t>(state.range(0)), 0xcd);
  crypto::AesGcm gcm(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.Seal(nonce, {}, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesGcmSeal)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_AesGcmOpen(benchmark::State& state) {
  util::Bytes key(32, 0x11), nonce(12, 0x22);
  util::Bytes data(static_cast<size_t>(state.range(0)), 0xcd);
  crypto::AesGcm gcm(key);
  auto sealed = gcm.Seal(nonce, {}, data);
  for (auto _ : state) {
    auto opened = gcm.Open(nonce, {}, sealed);
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesGcmOpen)->Arg(64 * 1024);

void BM_X25519(benchmark::State& state) {
  crypto::X25519Key scalar{};
  scalar[0] = 0x42;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::X25519PublicKey(scalar));
  }
}
BENCHMARK(BM_X25519);

void BM_Gemm(benchmark::State& state) {
  const auto backend = static_cast<runtime::GemmBackend>(state.range(0));
  const int64_t n = state.range(1);
  std::vector<float> a(static_cast<size_t>(n * n)),
      b(static_cast<size_t>(n * n)), c(static_cast<size_t>(n * n));
  util::Rng rng(1);
  for (auto& v : a) v = rng.UniformFloat(-1, 1);
  for (auto& v : b) v = rng.UniformFloat(-1, 1);
  for (auto _ : state) {
    runtime::Gemm(backend, a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(std::string(runtime::GemmBackendName(backend)));
}
BENCHMARK(BM_Gemm)
    ->Args({0, 128})
    ->Args({1, 128})
    ->Args({2, 128})
    ->Args({0, 256})
    ->Args({1, 256})
    ->Args({2, 256});

void BM_ConvAlgo(benchmark::State& state) {
  const auto algo = static_cast<runtime::ConvAlgo>(state.range(0));
  util::Rng rng(2);
  auto x = tensor::Tensor::RandomUniform(tensor::Shape({1, 32, 32, 32}), rng);
  auto w = tensor::Tensor::RandomUniform(tensor::Shape({32, 32, 3, 3}), rng);
  runtime::ConvParams params;
  params.padding = 1;
  for (auto _ : state) {
    auto out = runtime::Conv2d(x, w, nullptr, params, algo,
                               runtime::GemmBackend::kBlocked);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(std::string(runtime::ConvAlgoName(algo)));
}
BENCHMARK(BM_ConvAlgo)->Arg(0)->Arg(1);

void BM_RandomContraction(benchmark::State& state) {
  graph::Graph model = graph::BuildModel(graph::ModelKind::kResNet50,
                                         bench::BenchZooConfig());
  partition::PartitionOptions opts;
  opts.target_partitions = state.range(0);
  uint64_t seed = 0;
  for (auto _ : state) {
    opts.seed = seed++;
    auto set = partition::RandomContraction(model, opts);
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_RandomContraction)->Arg(3)->Arg(5)->Arg(9);

void BM_ModelInference(benchmark::State& state) {
  const auto kind = static_cast<graph::ModelKind>(state.range(0));
  graph::Graph model = graph::BuildModel(kind, bench::BenchZooConfig());
  auto exec =
      runtime::Executor::Create(model, runtime::OrtLikeExecutorConfig());
  MVTEE_CHECK(exec.ok());
  auto batches = bench::MakeBatches(model, 1, 3);
  for (auto _ : state) {
    auto out = (*exec)->Run(batches[0]);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(graph::ModelName(kind)));
}
BENCHMARK(BM_ModelInference)->DenseRange(0, 6);

}  // namespace
}  // namespace mvtee

BENCHMARK_MAIN();
