// Figure 10: encryption and checkpointing overheads.
//
// 5-partition setup. Baseline: no encryption, full fast path (direct
// variant-to-variant forwarding). "+enc" adds AES-GCM-256 record
// protection on every boundary. "+enc+ckpt" additionally forces the full
// slow path: all traffic detours through the monitor, which suspends at
// every checkpoint and evaluates outputs before forwarding (extra
// variant-monitor transmissions + crypto + verification).
//
// Paper shape: combined overhead 13.6%-50.7% sequential and larger
// (50.4%-93.6%) relative share in pipelined mode; more impactful on the
// small models (MobileNet, MnasNet); the fast path recovers a large part
// of the checkpointing cost.
#include "bench/bench_common.h"

namespace mvtee::bench {
namespace {

int Main() {
  PrintFigureHeader("Figure 10",
                    "Encryption and checkpoint overheads (5 partitions)");
  std::printf("%-16s %4s | %9s %9s %9s | %9s %9s %9s\n", "model", "mode",
              "base b/s", "+enc", "+enc+ckpt", "overhead", "enc part",
              "ckpt part");
  PrintRule();

  const int kBatches = 20;
  for (auto kind : graph::AllModels()) {
    graph::Graph model = graph::BuildModel(kind, BenchZooConfig());
    auto batches = MakeBatches(model, kBatches, 9);

    // A: no encryption, full fast path (direct).
    MvteeSetup plain = FundamentalSetup(5);
    plain.host.plaintext_channels = true;
    // B: encrypted, full fast path.
    MvteeSetup enc = FundamentalSetup(5);
    // C: encrypted, full slow path (monitor-mediated + verification).
    MvteeSetup ckpt = FundamentalSetup(5);
    ckpt.monitor.direct_fastpath = false;
    ckpt.monitor.verify_fast_path = true;

    auto bundle = BuildBenchBundle(model, plain);
    if (!bundle.ok()) continue;

    for (bool pipelined : {false, true}) {
      auto a = RunMvtee(*bundle, plain, batches, pipelined);
      auto b = RunMvtee(*bundle, enc, batches, pipelined);
      // Metrics dump for the fully protected run: the delta isolates its
      // per-stage checkpoint-verify (monitor.stageN.verify_us), crypto
      // (monitor.stageN.crypto_us, channel.seal_us/open_us) and wire
      // (monitor.stageN.wire_us) breakdowns.
      const auto metrics_base = MetricsBaseline();
      auto c = RunMvtee(*bundle, ckpt, batches, pipelined);
      if (c.ok()) {
        DumpMetricsJson(std::string(graph::ModelName(kind)) + "/" +
                            (pipelined ? "pipe" : "seq") + "/enc+ckpt",
                        &metrics_base);
      }
      if (!a.ok() || !b.ok() || !c.ok()) {
        std::printf("%-16s %4s | run failed\n",
                    std::string(graph::ModelName(kind)).c_str(),
                    pipelined ? "pipe" : "seq");
        continue;
      }
      const double overhead = 1.0 - c->throughput / a->throughput;
      const double enc_part = 1.0 - b->throughput / a->throughput;
      const double ckpt_part = overhead - enc_part;
      std::printf(
          "%-16s %4s | %9.1f %8.1f %9.1f | %8.1f%% %8.1f%% %8.1f%%\n",
          std::string(graph::ModelName(kind)).c_str(),
          pipelined ? "pipe" : "seq", a->throughput, b->throughput,
          c->throughput, overhead * 100, enc_part * 100, ckpt_part * 100);
    }
  }
  PrintRule();
  std::printf(
      "overhead = 1 - (enc+ckpt)/baseline; paper: 13.6%%-50.7%% seq, "
      "50.4%%-93.6%% pipelined.\n");
  return 0;
}

}  // namespace
}  // namespace mvtee::bench

int main() { return mvtee::bench::Main(); }
