// X25519 Diffie–Hellman over Curve25519 (RFC 7748).
//
// Provides the ephemeral key agreement underneath MVTEE's RA-TLS-style
// secure channels: each side contributes an ephemeral public key bound
// into its attestation report, and traffic keys are HKDF-derived from
// the shared secret.
#pragma once

#include <array>

#include "util/bytes.h"

namespace mvtee::crypto {

inline constexpr size_t kX25519KeySize = 32;
using X25519Key = std::array<uint8_t, kX25519KeySize>;

// scalar * point. `point` is a u-coordinate; use X25519BasePoint() for
// public-key generation.
X25519Key X25519(const X25519Key& scalar, const X25519Key& point);

// The canonical base point u = 9.
X25519Key X25519BasePoint();

// Convenience: derive public key from private scalar.
inline X25519Key X25519PublicKey(const X25519Key& private_key) {
  return X25519(private_key, X25519BasePoint());
}

}  // namespace mvtee::crypto
