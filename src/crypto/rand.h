// Random byte generation for keys and nonces.
//
// SecureRandom pulls from the OS entropy pool (/dev/urandom). For
// reproducible experiments, a DeterministicRandom (AES-CTR over a seed)
// satisfies the same interface — the TEE simulator and tests inject it.
#pragma once

#include <cstdint>
#include <memory>

#include "util/bytes.h"

namespace mvtee::crypto {

class RandomSource {
 public:
  virtual ~RandomSource() = default;
  virtual void Fill(uint8_t* out, size_t n) = 0;

  util::Bytes Generate(size_t n) {
    util::Bytes b(n);
    Fill(b.data(), n);
    return b;
  }
};

// OS entropy.
class SecureRandom : public RandomSource {
 public:
  void Fill(uint8_t* out, size_t n) override;
};

// AES-256-CTR DRBG over a fixed seed — deterministic, used in tests and
// reproducible benchmark runs.
class DeterministicRandom : public RandomSource {
 public:
  explicit DeterministicRandom(uint64_t seed);
  void Fill(uint8_t* out, size_t n) override;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

// Process-global source used by components that do not take an injected
// RandomSource. Defaults to SecureRandom; tests may override.
RandomSource& GlobalRandom();
void SetGlobalRandomForTesting(std::shared_ptr<RandomSource> source);

}  // namespace mvtee::crypto
