#include "crypto/hmac.h"

#include <cstring>

#include "util/status.h"

namespace mvtee::crypto {

Sha256Digest HmacSha256(util::ByteSpan key, util::ByteSpan data) {
  uint8_t key_block[64] = {0};
  if (key.size() > 64) {
    auto hashed = Sha256::Hash(key);
    std::memcpy(key_block, hashed.data(), hashed.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(util::ByteSpan(ipad, 64));
  inner.Update(data);
  auto inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(util::ByteSpan(opad, 64));
  outer.Update(util::ByteSpan(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

Sha256Digest HkdfExtract(util::ByteSpan salt, util::ByteSpan ikm) {
  static const uint8_t zero_salt[kSha256DigestSize] = {0};
  if (salt.empty()) salt = util::ByteSpan(zero_salt, kSha256DigestSize);
  return HmacSha256(salt, ikm);
}

util::Bytes HkdfExpand(util::ByteSpan prk, util::ByteSpan info,
                       size_t length) {
  MVTEE_CHECK(length <= 255 * kSha256DigestSize);
  util::Bytes okm;
  okm.reserve(length);
  Sha256Digest t{};
  size_t t_len = 0;
  uint8_t counter = 1;
  while (okm.size() < length) {
    util::Bytes block;
    block.insert(block.end(), t.begin(), t.begin() + t_len);
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    t = HmacSha256(prk, block);
    t_len = t.size();
    size_t take = std::min(t_len, length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + take);
  }
  return okm;
}

util::Bytes Hkdf(util::ByteSpan salt, util::ByteSpan ikm, util::ByteSpan info,
                 size_t length) {
  auto prk = HkdfExtract(salt, ikm);
  return HkdfExpand(util::ByteSpan(prk.data(), prk.size()), info, length);
}

}  // namespace mvtee::crypto
