// Internal interface of the AES-NI + PCLMUL TU (aes_accel.cc).
//
// aes_accel.cc is the only crypto TU compiled with -maes -mpclmul
// -mssse3; its functions must only be reached after the caller has
// consulted util::UseAesGcmAccel(). On targets without those flags the
// TU compiles to stubs and Compiled() returns false, leaving AES-GCM on
// the portable 8-bit-table path. GCM is exact, so both paths produce
// identical ciphertext and tags byte for byte — dispatch here is purely
// a throughput decision.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mvtee::crypto::accel {

// True when this binary carries the AES-NI/PCLMUL implementations.
bool Compiled();

// CTR keystream XOR with pipelined 8-block AES-NI encryption.
// `round_key_words` is Aes::round_key_words() (big-endian words);
// the 32-bit counter in j0[12..16) is incremented *before* each block,
// matching AesGcm::CtrCrypt. in/out may alias.
void CtrXor(const uint32_t* round_key_words, int rounds,
            const uint8_t j0[16], const uint8_t* in, uint8_t* out,
            size_t len);

// GHASH over `nblocks` full 16-byte blocks with carry-less multiply:
// folds each block into the running state held as big-endian halves
// (zh, zl), exactly like the portable table path.
void GhashBlocks(const uint8_t h[16], uint64_t& zh, uint64_t& zl,
                 const uint8_t* blocks, size_t nblocks);

}  // namespace mvtee::crypto::accel
