// SHA-256 (FIPS 180-4). Used for measurements, file hashes, HMAC and HKDF.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace mvtee::crypto {

inline constexpr size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(util::ByteSpan data);
  Sha256Digest Finish();

  // One-shot convenience.
  static Sha256Digest Hash(util::ByteSpan data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

// Digest as util::Bytes (convenience for serializers).
util::Bytes Sha256Bytes(util::ByteSpan data);

}  // namespace mvtee::crypto
