#include "crypto/aead.h"

#include <array>
#include <cstring>

#include "crypto/aes_accel.h"
#include "util/cpu_features.h"
#include "util/dataplane_stats.h"

namespace mvtee::crypto {

namespace {

// Reduction constants for the 8-bit GHASH table method: kRem8[b] is the
// fold-back of the byte shifted out of the 128-bit window, XORed into
// the top 16 bits of the state. Bit j of the byte contributes
// (0xE1 << 56) >> (7 - j), i.e. 0x01C2 << j in the 16-bit frame —
// the 8-bit generalization of the classic 4-bit kLast4 table.
constexpr std::array<uint16_t, 256> MakeRem8() {
  std::array<uint16_t, 256> t{};
  for (int b = 0; b < 256; ++b) {
    uint32_t v = 0;
    for (int j = 0; j < 8; ++j) {
      if (b & (1 << j)) v ^= 0x01c2u << j;
    }
    t[static_cast<size_t>(b)] = static_cast<uint16_t>(v);
  }
  return t;
}
constexpr std::array<uint16_t, 256> kRem8 = MakeRem8();

inline uint64_t LoadU64BE(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

inline void StoreU64BE(uint8_t* p, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    p[i] = static_cast<uint8_t>(v);
    v >>= 8;
  }
}

inline void Inc32(uint8_t block[16]) {
  for (int i = 15; i >= 12; --i) {
    if (++block[i] != 0) break;
  }
}
}  // namespace

bool AesGcmAccelerated() {
  return accel::Compiled() && util::UseAesGcmAccel();
}

AesGcm::AesGcm(util::ByteSpan key) : aes_(key) {
  MVTEE_CHECK(key.size() == 16 || key.size() == 32);

  uint8_t h[16] = {0};
  aes_.EncryptBlock(h, h);
  std::memcpy(h_, h, 16);

  uint64_t vh = LoadU64BE(h);
  uint64_t vl = LoadU64BE(h + 8);

  // 8-bit Shoup tables: base entries at the single-bit indices are
  // H · x^{-j} (index 0x80 >> j), every other index is the XOR of its
  // set bits' bases.
  hh_[0] = 0;
  hl_[0] = 0;
  hh_[0x80] = vh;
  hl_[0x80] = vl;
  for (int i = 0x40; i > 0; i >>= 1) {
    uint32_t t = static_cast<uint32_t>(vl & 1) * 0xe1000000U;
    vl = (vh << 63) | (vl >> 1);
    vh = (vh >> 1) ^ (static_cast<uint64_t>(t) << 32);
    hl_[i] = vl;
    hh_[i] = vh;
  }
  for (int i = 2; i <= 0x80; i *= 2) {
    const uint64_t base_h = hh_[i], base_l = hl_[i];
    for (int j = 1; j < i; ++j) {
      hh_[i + j] = base_h ^ hh_[j];
      hl_[i + j] = base_l ^ hl_[j];
    }
  }
}

void AesGcm::GHashBlocks(uint64_t& zh, uint64_t& zl, const uint8_t* blocks,
                         size_t nblocks) const {
  if (AesGcmAccelerated()) {
    accel::GhashBlocks(h_, zh, zl, blocks, nblocks);
    return;
  }
  uint8_t x[16];
  for (size_t b = 0; b < nblocks; ++b) {
    // XOR the running value into the block (GHASH chaining), then
    // multiply by H one byte digit at a time.
    const uint64_t yh = zh ^ LoadU64BE(blocks + 16 * b);
    const uint64_t yl = zl ^ LoadU64BE(blocks + 16 * b + 8);
    StoreU64BE(x, yh);
    StoreU64BE(x + 8, yl);

    uint64_t rzh = hh_[x[15]];
    uint64_t rzl = hl_[x[15]];
    for (int i = 14; i >= 0; --i) {
      const uint8_t rem = static_cast<uint8_t>(rzl & 0xff);
      rzl = (rzh << 56) | (rzl >> 8);
      rzh = rzh >> 8;
      rzh ^= static_cast<uint64_t>(kRem8[rem]) << 48;
      rzh ^= hh_[x[i]];
      rzl ^= hl_[x[i]];
    }
    zh = rzh;
    zl = rzl;
  }
}

void AesGcm::GHash(util::ByteSpan aad, util::ByteSpan data,
                   uint8_t out[16]) const {
  uint64_t zh = 0, zl = 0;
  uint8_t block[16];

  auto process = [&](util::ByteSpan d) {
    const size_t full = d.size() / 16;
    if (full > 0) GHashBlocks(zh, zl, d.data(), full);
    if (full * 16 < d.size()) {
      std::memset(block, 0, 16);
      std::memcpy(block, d.data() + full * 16, d.size() - full * 16);
      GHashBlocks(zh, zl, block, 1);
    }
  };

  process(aad);
  process(data);

  StoreU64BE(block, static_cast<uint64_t>(aad.size()) * 8);
  StoreU64BE(block + 8, static_cast<uint64_t>(data.size()) * 8);
  GHashBlocks(zh, zl, block, 1);

  StoreU64BE(out, zh);
  StoreU64BE(out + 8, zl);
}

void AesGcm::CtrCrypt(const uint8_t j0[16], util::ByteSpan in,
                      uint8_t* out) const {
  if (AesGcmAccelerated()) {
    accel::CtrXor(aes_.round_key_words(), aes_.rounds(), j0, in.data(), out,
                  in.size());
    return;
  }
  uint8_t counter[16];
  std::memcpy(counter, j0, 16);
  uint8_t keystream[16];
  size_t i = 0;
  while (i < in.size()) {
    Inc32(counter);
    aes_.EncryptBlock(counter, keystream);
    size_t n = std::min<size_t>(16, in.size() - i);
    for (size_t k = 0; k < n; ++k) out[i + k] = in[i + k] ^ keystream[k];
    i += n;
  }
}

void AesGcm::ComputeTag(util::ByteSpan nonce, util::ByteSpan aad,
                        util::ByteSpan ciphertext, uint8_t tag[16]) const {
  uint8_t j0[16];
  std::memcpy(j0, nonce.data(), 12);
  j0[12] = j0[13] = j0[14] = 0;
  j0[15] = 1;

  uint8_t s[16];
  GHash(aad, ciphertext, s);

  uint8_t e_j0[16];
  aes_.EncryptBlock(j0, e_j0);
  for (int i = 0; i < 16; ++i) tag[i] = s[i] ^ e_j0[i];
}

void AesGcm::SealInPlace(util::ByteSpan nonce, util::ByteSpan aad,
                         uint8_t* buf, size_t plaintext_len) const {
  MVTEE_CHECK(nonce.size() == kGcmNonceSize);

  uint8_t j0[16];
  std::memcpy(j0, nonce.data(), 12);
  j0[12] = j0[13] = j0[14] = 0;
  j0[15] = 1;

  // CTR encryption is an elementwise XOR with the keystream, so writing
  // the ciphertext over the plaintext it came from is well-defined.
  CtrCrypt(j0, util::ByteSpan(buf, plaintext_len), buf);

  uint8_t tag[16];
  ComputeTag(nonce, aad, util::ByteSpan(buf, plaintext_len), tag);
  std::memcpy(buf + plaintext_len, tag, kGcmTagSize);
}

util::Result<size_t> AesGcm::OpenInPlace(util::ByteSpan nonce,
                                         util::ByteSpan aad, uint8_t* buf,
                                         size_t len) const {
  if (nonce.size() != kGcmNonceSize) {
    return util::InvalidArgument("GCM nonce must be 12 bytes");
  }
  if (len < kGcmTagSize) {
    return util::AuthenticationFailure("ciphertext shorter than tag");
  }
  const size_t ct_len = len - kGcmTagSize;
  util::ByteSpan ciphertext(buf, ct_len);
  util::ByteSpan tag(buf + ct_len, kGcmTagSize);

  uint8_t expected_tag[16];
  ComputeTag(nonce, aad, ciphertext, expected_tag);
  if (!util::ConstantTimeEqual(util::ByteSpan(expected_tag, 16), tag)) {
    return util::AuthenticationFailure("GCM tag mismatch");
  }

  uint8_t j0[16];
  std::memcpy(j0, nonce.data(), 12);
  j0[12] = j0[13] = j0[14] = 0;
  j0[15] = 1;
  CtrCrypt(j0, ciphertext, buf);
  return ct_len;
}

util::Bytes AesGcm::Seal(util::ByteSpan nonce, util::ByteSpan aad,
                         util::ByteSpan plaintext) const {
  util::Bytes out(plaintext.size() + kGcmTagSize);
  if (!plaintext.empty()) {
    std::memcpy(out.data(), plaintext.data(), plaintext.size());
  }
  util::CountDataPlaneCopy(plaintext.size());
  SealInPlace(nonce, aad, out.data(), plaintext.size());
  return out;
}

util::Result<util::Bytes> AesGcm::Open(
    util::ByteSpan nonce, util::ByteSpan aad,
    util::ByteSpan ciphertext_with_tag) const {
  util::Bytes work(ciphertext_with_tag.begin(), ciphertext_with_tag.end());
  util::CountDataPlaneCopy(work.size());
  auto pt_len = OpenInPlace(nonce, aad, work.data(), work.size());
  if (!pt_len.ok()) return pt_len.status();
  work.resize(*pt_len);
  return work;
}

}  // namespace mvtee::crypto
