#include "crypto/x25519.h"

#include <cstdint>
#include <cstring>

namespace mvtee::crypto {

namespace {

// Field element mod p = 2^255 - 19, five 51-bit limbs.
struct Fe {
  uint64_t v[5];
};

using U128 = unsigned __int128;

constexpr uint64_t kMask51 = (1ULL << 51) - 1;

Fe FeZero() { return Fe{{0, 0, 0, 0, 0}}; }
Fe FeOne() { return Fe{{1, 0, 0, 0, 0}}; }

Fe FeAdd(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

// a - b with bias to keep limbs non-negative (2*p added).
Fe FeSub(const Fe& a, const Fe& b) {
  Fe r;
  r.v[0] = a.v[0] + 0xfffffffffffdaULL - b.v[0];
  r.v[1] = a.v[1] + 0xffffffffffffeULL - b.v[1];
  r.v[2] = a.v[2] + 0xffffffffffffeULL - b.v[2];
  r.v[3] = a.v[3] + 0xffffffffffffeULL - b.v[3];
  r.v[4] = a.v[4] + 0xffffffffffffeULL - b.v[4];
  return r;
}

void FeCarry(Fe& r, U128 t[5]) {
  uint64_t carry;

  t[1] += static_cast<uint64_t>(t[0] >> 51);
  t[0] = static_cast<uint64_t>(t[0]) & kMask51;
  t[2] += static_cast<uint64_t>(t[1] >> 51);
  t[1] = static_cast<uint64_t>(t[1]) & kMask51;
  t[3] += static_cast<uint64_t>(t[2] >> 51);
  t[2] = static_cast<uint64_t>(t[2]) & kMask51;
  t[4] += static_cast<uint64_t>(t[3] >> 51);
  t[3] = static_cast<uint64_t>(t[3]) & kMask51;
  uint64_t top = static_cast<uint64_t>(t[4] >> 51);
  t[4] = static_cast<uint64_t>(t[4]) & kMask51;
  t[0] += static_cast<U128>(top) * 19;

  carry = static_cast<uint64_t>(t[0] >> 51);
  t[0] = static_cast<uint64_t>(t[0]) & kMask51;
  t[1] += carry;

  for (int i = 0; i < 5; ++i) r.v[i] = static_cast<uint64_t>(t[i]);
}

Fe FeMul(const Fe& a, const Fe& b) {
  const uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3],
                 a4 = a.v[4];
  const uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3],
                 b4 = b.v[4];
  const uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19,
                 b4_19 = b4 * 19;

  U128 t[5];
  t[0] = static_cast<U128>(a0) * b0 + static_cast<U128>(a1) * b4_19 +
         static_cast<U128>(a2) * b3_19 + static_cast<U128>(a3) * b2_19 +
         static_cast<U128>(a4) * b1_19;
  t[1] = static_cast<U128>(a0) * b1 + static_cast<U128>(a1) * b0 +
         static_cast<U128>(a2) * b4_19 + static_cast<U128>(a3) * b3_19 +
         static_cast<U128>(a4) * b2_19;
  t[2] = static_cast<U128>(a0) * b2 + static_cast<U128>(a1) * b1 +
         static_cast<U128>(a2) * b0 + static_cast<U128>(a3) * b4_19 +
         static_cast<U128>(a4) * b3_19;
  t[3] = static_cast<U128>(a0) * b3 + static_cast<U128>(a1) * b2 +
         static_cast<U128>(a2) * b1 + static_cast<U128>(a3) * b0 +
         static_cast<U128>(a4) * b4_19;
  t[4] = static_cast<U128>(a0) * b4 + static_cast<U128>(a1) * b3 +
         static_cast<U128>(a2) * b2 + static_cast<U128>(a3) * b1 +
         static_cast<U128>(a4) * b0;

  Fe r;
  FeCarry(r, t);
  return r;
}

Fe FeSquare(const Fe& a) { return FeMul(a, a); }

Fe FeMulA24(const Fe& a) {
  U128 t[5];
  for (int i = 0; i < 5; ++i) t[i] = static_cast<U128>(a.v[i]) * 121665;
  Fe r;
  FeCarry(r, t);
  return r;
}

// Inversion via Fermat: a^(p-2).
Fe FeInvert(const Fe& z) {
  Fe z2 = FeSquare(z);                       // 2
  Fe z8 = FeSquare(FeSquare(z2));            // 8
  Fe z9 = FeMul(z8, z);                      // 9
  Fe z11 = FeMul(z9, z2);                    // 11
  Fe z22 = FeSquare(z11);                    // 22
  Fe z_5_0 = FeMul(z22, z9);                 // 2^5 - 2^0
  Fe t = z_5_0;
  for (int i = 0; i < 5; ++i) t = FeSquare(t);
  Fe z_10_0 = FeMul(t, z_5_0);               // 2^10 - 2^0
  t = z_10_0;
  for (int i = 0; i < 10; ++i) t = FeSquare(t);
  Fe z_20_0 = FeMul(t, z_10_0);              // 2^20 - 2^0
  t = z_20_0;
  for (int i = 0; i < 20; ++i) t = FeSquare(t);
  Fe z_40_0 = FeMul(t, z_20_0);              // 2^40 - 2^0
  t = z_40_0;
  for (int i = 0; i < 10; ++i) t = FeSquare(t);
  Fe z_50_0 = FeMul(t, z_10_0);              // 2^50 - 2^0
  t = z_50_0;
  for (int i = 0; i < 50; ++i) t = FeSquare(t);
  Fe z_100_0 = FeMul(t, z_50_0);             // 2^100 - 2^0
  t = z_100_0;
  for (int i = 0; i < 100; ++i) t = FeSquare(t);
  Fe z_200_0 = FeMul(t, z_100_0);            // 2^200 - 2^0
  t = z_200_0;
  for (int i = 0; i < 50; ++i) t = FeSquare(t);
  Fe z_250_0 = FeMul(t, z_50_0);             // 2^250 - 2^0
  t = z_250_0;
  for (int i = 0; i < 5; ++i) t = FeSquare(t);
  return FeMul(t, z11);                      // 2^255 - 21 = p - 2
}

Fe FeFromBytes(const uint8_t s[32]) {
  auto load64 = [](const uint8_t* p) {
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  };
  Fe r;
  r.v[0] = load64(s) & kMask51;
  r.v[1] = (load64(s + 6) >> 3) & kMask51;
  r.v[2] = (load64(s + 12) >> 6) & kMask51;
  r.v[3] = (load64(s + 19) >> 1) & kMask51;
  r.v[4] = (load64(s + 24) >> 12) & kMask51;
  return r;
}

void FeToBytes(uint8_t s[32], const Fe& a) {
  // Fully reduce.
  Fe t = a;
  for (int pass = 0; pass < 2; ++pass) {
    uint64_t carry = 0;
    for (int i = 0; i < 5; ++i) {
      t.v[i] += carry;
      carry = t.v[i] >> 51;
      t.v[i] &= kMask51;
    }
    t.v[0] += carry * 19;
  }
  // Subtract p if >= p.
  uint64_t carry = t.v[0] + 19;
  carry >>= 51;
  for (int i = 1; i < 5; ++i) {
    carry = (t.v[i] + carry) >> 51;
  }
  uint64_t sub = carry * 19;
  t.v[0] += sub;
  for (int i = 0; i < 4; ++i) {
    t.v[i + 1] += t.v[i] >> 51;
    t.v[i] &= kMask51;
  }
  t.v[4] &= kMask51;

  uint64_t out[4];
  out[0] = t.v[0] | (t.v[1] << 51);
  out[1] = (t.v[1] >> 13) | (t.v[2] << 38);
  out[2] = (t.v[2] >> 26) | (t.v[3] << 25);
  out[3] = (t.v[3] >> 39) | (t.v[4] << 12);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      s[i * 8 + j] = static_cast<uint8_t>(out[i] >> (8 * j));
    }
  }
}

void FeCSwap(Fe& a, Fe& b, uint64_t swap) {
  const uint64_t mask = 0ULL - swap;
  for (int i = 0; i < 5; ++i) {
    uint64_t x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

}  // namespace

X25519Key X25519(const X25519Key& scalar, const X25519Key& point) {
  uint8_t e[32];
  std::memcpy(e, scalar.data(), 32);
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  uint8_t u[32];
  std::memcpy(u, point.data(), 32);
  u[31] &= 127;  // Mask the high bit per RFC 7748.

  Fe x1 = FeFromBytes(u);
  Fe x2 = FeOne(), z2 = FeZero();
  Fe x3 = x1, z3 = FeOne();
  uint64_t swap = 0;

  for (int t = 254; t >= 0; --t) {
    uint64_t k_t = (e[t / 8] >> (t % 8)) & 1;
    swap ^= k_t;
    FeCSwap(x2, x3, swap);
    FeCSwap(z2, z3, swap);
    swap = k_t;

    Fe a = FeAdd(x2, z2);
    Fe aa = FeSquare(a);
    Fe b = FeSub(x2, z2);
    Fe bb = FeSquare(b);
    Fe e_ = FeSub(aa, bb);
    Fe c = FeAdd(x3, z3);
    Fe d = FeSub(x3, z3);
    Fe da = FeMul(d, a);
    Fe cb = FeMul(c, b);
    Fe dacb = FeAdd(da, cb);
    x3 = FeSquare(dacb);
    Fe da_cb = FeSub(da, cb);
    z3 = FeMul(x1, FeSquare(da_cb));
    x2 = FeMul(aa, bb);
    z2 = FeMul(e_, FeAdd(aa, FeMulA24(e_)));
  }
  FeCSwap(x2, x3, swap);
  FeCSwap(z2, z3, swap);

  Fe out = FeMul(x2, FeInvert(z2));
  X25519Key result;
  FeToBytes(result.data(), out);
  return result;
}

X25519Key X25519BasePoint() {
  X25519Key base{};
  base[0] = 9;
  return base;
}

}  // namespace mvtee::crypto
