// AES-GCM authenticated encryption (NIST SP 800-38D).
//
// This is the record-protection AEAD used for all inter-TEE traffic and
// the sealed/encrypted filesystem, mirroring the paper's AES-GCM-256
// deployment. Nonces are 96-bit; tags are 128-bit and appended to the
// ciphertext.
#pragma once

#include <cstdint>

#include "crypto/aes.h"
#include "util/bytes.h"
#include "util/status.h"

namespace mvtee::crypto {

inline constexpr size_t kGcmNonceSize = 12;
inline constexpr size_t kGcmTagSize = 16;

class AesGcm {
 public:
  // key: 16 bytes (AES-128-GCM) or 32 bytes (AES-256-GCM).
  explicit AesGcm(util::ByteSpan key);

  // Returns ciphertext || tag.
  util::Bytes Seal(util::ByteSpan nonce, util::ByteSpan aad,
                   util::ByteSpan plaintext) const;

  // Verifies the tag and decrypts. Fails with kAuthenticationFailure on
  // any tampering of nonce, aad, ciphertext or tag.
  util::Result<util::Bytes> Open(util::ByteSpan nonce, util::ByteSpan aad,
                                 util::ByteSpan ciphertext_with_tag) const;

  // Zero-copy variants for the pooled data plane: the caller's buffer
  // holds plaintext_len bytes of plaintext and at least kGcmTagSize
  // spare bytes after them. SealInPlace encrypts buf[0..plaintext_len)
  // in place (CTR is a self-inverse XOR stream, so aliasing is safe)
  // and writes the tag at buf[plaintext_len..plaintext_len+16).
  void SealInPlace(util::ByteSpan nonce, util::ByteSpan aad, uint8_t* buf,
                   size_t plaintext_len) const;

  // Inverse: buf holds ciphertext || tag (total `len` bytes). Verifies
  // the tag first, then decrypts in place; on success returns the
  // plaintext length (len - kGcmTagSize) and buf[0..plaintext_len)
  // holds plaintext. On failure the ciphertext is left untouched.
  util::Result<size_t> OpenInPlace(util::ByteSpan nonce, util::ByteSpan aad,
                                   uint8_t* buf, size_t len) const;

 private:
  // Folds `nblocks` full 16-byte blocks into the running GHASH state,
  // dispatching per call between PCLMUL and the 8-bit tables. Both
  // paths compute the same exact GF(2^128) arithmetic, so ciphertext
  // and tags are identical regardless of which one runs.
  void GHashBlocks(uint64_t& zh, uint64_t& zl, const uint8_t* blocks,
                   size_t nblocks) const;
  void GHash(util::ByteSpan aad, util::ByteSpan data, uint8_t out[16]) const;
  void CtrCrypt(const uint8_t j0[16], util::ByteSpan in, uint8_t* out) const;
  void ComputeTag(util::ByteSpan nonce, util::ByteSpan aad,
                  util::ByteSpan ciphertext, uint8_t tag[16]) const;

  Aes aes_;
  uint8_t h_[16];  // H = E(K, 0): the PCLMUL path's multiplier
  // Shoup 8-bit GHASH tables (4 KiB) for the portable path.
  uint64_t hl_[256];
  uint64_t hh_[256];
};

// True when Seal/Open/SealInPlace/OpenInPlace run the AES-NI + PCLMUL
// fast path on this host (TU compiled in, CPUID approves, MVTEE_SIMD
// not 0). Output bytes are identical either way.
bool AesGcmAccelerated();

}  // namespace mvtee::crypto
