// AES block cipher (FIPS 197), encrypt-only key schedule.
//
// Only encryption is exposed: every mode used by MVTEE (CTR inside GCM)
// requires the forward cipher exclusively.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace mvtee::crypto {

inline constexpr size_t kAesBlockSize = 16;
using AesBlock = std::array<uint8_t, kAesBlockSize>;

class Aes {
 public:
  // key must be 16, 24 or 32 bytes (AES-128/192/256).
  explicit Aes(util::ByteSpan key);

  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  int rounds() const { return rounds_; }

  // Raw expanded schedule, 4 big-endian words per round key — consumed
  // by the AES-NI TU (crypto/aes_accel.cc) to rebuild its native-order
  // round keys; the schedule itself is computed once, portably.
  const uint32_t* round_key_words() const { return round_keys_; }

 private:
  void ExpandKey(util::ByteSpan key);

  // Maximum schedule: AES-256 has 15 round keys of 4 words each.
  uint32_t round_keys_[60];
  int rounds_;
};

}  // namespace mvtee::crypto
