// AES-NI pipelined CTR + PCLMUL GHASH. Compiled with -maes -mpclmul
// -mssse3 (per-file, see crypto/CMakeLists.txt); only reached after
// runtime CPUID dispatch (util::UseAesGcmAccel) approves.
#include "crypto/aes_accel.h"

#if defined(__AES__) && defined(__PCLMUL__) && defined(__SSSE3__)

#include <immintrin.h>

#include <cstring>

namespace mvtee::crypto::accel {

bool Compiled() { return true; }

namespace {

// Round keys are kept as big-endian words by the portable schedule;
// AESENC wants them in state byte order (word bytes MSB-first).
inline __m128i LoadRoundKey(const uint32_t* w) {
  uint8_t b[16];
  for (int c = 0; c < 4; ++c) {
    b[4 * c + 0] = static_cast<uint8_t>(w[c] >> 24);
    b[4 * c + 1] = static_cast<uint8_t>(w[c] >> 16);
    b[4 * c + 2] = static_cast<uint8_t>(w[c] >> 8);
    b[4 * c + 3] = static_cast<uint8_t>(w[c]);
  }
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
}

inline void Inc32(uint8_t ctr[16]) {
  for (int i = 15; i >= 12; --i) {
    if (++ctr[i] != 0) break;
  }
}

inline __m128i EncryptOne(__m128i block, const __m128i* rk, int rounds) {
  block = _mm_xor_si128(block, rk[0]);
  for (int r = 1; r < rounds; ++r) block = _mm_aesenc_si128(block, rk[r]);
  return _mm_aesenclast_si128(block, rk[rounds]);
}

// GF(2^128) carry-less multiply with GCM's reflected bit order
// (Intel CLMUL white paper, "gfmul" for byte-reversed operands):
// 4 CLMULs build the 256-bit product, a 1-bit left shift accounts for
// the reflection, then a two-phase shift-based reduction folds the
// result modulo x^128 + x^7 + x^2 + x + 1.
inline __m128i GfMul(__m128i a, __m128i b) {
  __m128i tmp3 = _mm_clmulepi64_si128(a, b, 0x00);
  __m128i tmp4 = _mm_clmulepi64_si128(a, b, 0x10);
  __m128i tmp5 = _mm_clmulepi64_si128(a, b, 0x01);
  __m128i tmp6 = _mm_clmulepi64_si128(a, b, 0x11);

  tmp4 = _mm_xor_si128(tmp4, tmp5);
  tmp5 = _mm_slli_si128(tmp4, 8);
  tmp4 = _mm_srli_si128(tmp4, 8);
  tmp3 = _mm_xor_si128(tmp3, tmp5);
  tmp6 = _mm_xor_si128(tmp6, tmp4);

  __m128i tmp7 = _mm_srli_epi32(tmp3, 31);
  __m128i tmp8 = _mm_srli_epi32(tmp6, 31);
  tmp3 = _mm_slli_epi32(tmp3, 1);
  tmp6 = _mm_slli_epi32(tmp6, 1);

  __m128i tmp9 = _mm_srli_si128(tmp7, 12);
  tmp8 = _mm_slli_si128(tmp8, 4);
  tmp7 = _mm_slli_si128(tmp7, 4);
  tmp3 = _mm_or_si128(tmp3, tmp7);
  tmp6 = _mm_or_si128(tmp6, tmp8);
  tmp6 = _mm_or_si128(tmp6, tmp9);

  tmp7 = _mm_slli_epi32(tmp3, 31);
  tmp8 = _mm_slli_epi32(tmp3, 30);
  tmp9 = _mm_slli_epi32(tmp3, 25);
  tmp7 = _mm_xor_si128(tmp7, tmp8);
  tmp7 = _mm_xor_si128(tmp7, tmp9);
  tmp8 = _mm_srli_si128(tmp7, 4);
  tmp7 = _mm_slli_si128(tmp7, 12);
  tmp3 = _mm_xor_si128(tmp3, tmp7);

  __m128i tmp2 = _mm_srli_epi32(tmp3, 1);
  tmp4 = _mm_srli_epi32(tmp3, 2);
  tmp5 = _mm_srli_epi32(tmp3, 7);
  tmp2 = _mm_xor_si128(tmp2, tmp4);
  tmp2 = _mm_xor_si128(tmp2, tmp5);
  tmp2 = _mm_xor_si128(tmp2, tmp8);
  tmp3 = _mm_xor_si128(tmp3, tmp2);
  return _mm_xor_si128(tmp6, tmp3);
}

inline __m128i ByteSwap(__m128i x) {
  const __m128i mask = _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                    12, 13, 14, 15);
  return _mm_shuffle_epi8(x, mask);
}

inline void StoreU64BE(uint8_t* p, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    p[i] = static_cast<uint8_t>(v);
    v >>= 8;
  }
}

inline uint64_t LoadU64BE(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

void CtrXor(const uint32_t* round_key_words, int rounds,
            const uint8_t j0[16], const uint8_t* in, uint8_t* out,
            size_t len) {
  __m128i rk[15];
  for (int r = 0; r <= rounds; ++r) {
    rk[r] = LoadRoundKey(round_key_words + 4 * r);
  }
  uint8_t ctr[16];
  std::memcpy(ctr, j0, 16);

  size_t off = 0;
  // 8-block pipeline: AESENC latency is ~4 cycles with 1-2/cycle
  // throughput, so interleaving 8 independent streams keeps the unit
  // saturated instead of serializing on one block's round chain.
  while (len - off >= 8 * 16) {
    __m128i s[8];
    for (int b = 0; b < 8; ++b) {
      Inc32(ctr);
      s[b] = _mm_xor_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctr)), rk[0]);
    }
    for (int r = 1; r < rounds; ++r) {
      for (int b = 0; b < 8; ++b) s[b] = _mm_aesenc_si128(s[b], rk[r]);
    }
    for (int b = 0; b < 8; ++b) s[b] = _mm_aesenclast_si128(s[b], rk[rounds]);
    for (int b = 0; b < 8; ++b) {
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off + 16 * b));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off + 16 * b),
                       _mm_xor_si128(d, s[b]));
    }
    off += 8 * 16;
  }
  while (len - off >= 16) {
    Inc32(ctr);
    const __m128i ks = EncryptOne(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctr)), rk, rounds);
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off),
                     _mm_xor_si128(d, ks));
    off += 16;
  }
  if (off < len) {
    Inc32(ctr);
    uint8_t ks[16];
    const __m128i e = EncryptOne(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctr)), rk, rounds);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(ks), e);
    for (size_t i = 0; off + i < len; ++i) out[off + i] = in[off + i] ^ ks[i];
  }
}

void GhashBlocks(const uint8_t h[16], uint64_t& zh, uint64_t& zl,
                 const uint8_t* blocks, size_t nblocks) {
  const __m128i hv =
      ByteSwap(_mm_loadu_si128(reinterpret_cast<const __m128i*>(h)));
  uint8_t y_bytes[16];
  StoreU64BE(y_bytes, zh);
  StoreU64BE(y_bytes + 8, zl);
  __m128i y =
      ByteSwap(_mm_loadu_si128(reinterpret_cast<const __m128i*>(y_bytes)));
  for (size_t i = 0; i < nblocks; ++i) {
    const __m128i x = ByteSwap(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(blocks + 16 * i)));
    y = GfMul(_mm_xor_si128(y, x), hv);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(y_bytes), ByteSwap(y));
  zh = LoadU64BE(y_bytes);
  zl = LoadU64BE(y_bytes + 8);
}

}  // namespace mvtee::crypto::accel

#else  // missing AES-NI/PCLMUL/SSSE3 flags: stubs so the TU links.

namespace mvtee::crypto::accel {

bool Compiled() { return false; }

void CtrXor(const uint32_t*, int, const uint8_t[16], const uint8_t*,
            uint8_t*, size_t) {}

void GhashBlocks(const uint8_t[16], uint64_t&, uint64_t&, const uint8_t*,
                 size_t) {}

}  // namespace mvtee::crypto::accel

#endif
