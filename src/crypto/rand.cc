#include "crypto/rand.h"

#include <cstdio>
#include <cstring>
#include <mutex>

#include "crypto/aes.h"
#include "util/status.h"

namespace mvtee::crypto {

void SecureRandom::Fill(uint8_t* out, size_t n) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::FILE* f = std::fopen("/dev/urandom", "rb");
  MVTEE_CHECK(f != nullptr);
  size_t got = std::fread(out, 1, n, f);
  std::fclose(f);
  MVTEE_CHECK(got == n);
}

struct DeterministicRandom::Impl {
  explicit Impl(uint64_t seed)
      : aes([&] {
          uint8_t key[32] = {0};
          for (int i = 0; i < 8; ++i) {
            key[i] = static_cast<uint8_t>(seed >> (8 * i));
            key[i + 8] = static_cast<uint8_t>(~seed >> (8 * i));
          }
          return Aes(util::ByteSpan(key, 32));
        }()) {}

  std::mutex mu;
  Aes aes;
  uint64_t counter = 0;
};

DeterministicRandom::DeterministicRandom(uint64_t seed)
    : impl_(std::make_shared<Impl>(seed)) {}

void DeterministicRandom::Fill(uint8_t* out, size_t n) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  uint8_t block_in[16] = {0};
  uint8_t block_out[16];
  size_t i = 0;
  while (i < n) {
    uint64_t c = impl_->counter++;
    std::memcpy(block_in, &c, sizeof(c));
    impl_->aes.EncryptBlock(block_in, block_out);
    size_t take = std::min<size_t>(16, n - i);
    std::memcpy(out + i, block_out, take);
    i += take;
  }
}

namespace {
std::shared_ptr<RandomSource>& GlobalSlot() {
  static std::shared_ptr<RandomSource> source =
      std::make_shared<SecureRandom>();
  return source;
}
}  // namespace

RandomSource& GlobalRandom() { return *GlobalSlot(); }

void SetGlobalRandomForTesting(std::shared_ptr<RandomSource> source) {
  GlobalSlot() = std::move(source);
}

}  // namespace mvtee::crypto
