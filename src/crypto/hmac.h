// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HMAC backs the simulated "hardware" report signing key of the TEE
// substrate; HKDF derives session/traffic keys in the RA-TLS-style
// handshake and variant-specific file keys.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace mvtee::crypto {

Sha256Digest HmacSha256(util::ByteSpan key, util::ByteSpan data);

// HKDF-Extract: PRK = HMAC(salt, ikm).
Sha256Digest HkdfExtract(util::ByteSpan salt, util::ByteSpan ikm);

// HKDF-Expand: derive `length` bytes (length <= 255*32) from PRK and info.
util::Bytes HkdfExpand(util::ByteSpan prk, util::ByteSpan info, size_t length);

// Full extract-then-expand.
util::Bytes Hkdf(util::ByteSpan salt, util::ByteSpan ikm, util::ByteSpan info,
                 size_t length);

}  // namespace mvtee::crypto
