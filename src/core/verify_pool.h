// Worker pool that takes cross-validation off the monitor's ingestion
// thread (paper Fig. 8/13: hide MVX cross-checking overhead behind
// pipelining). The threading contract keeps all monitor state
// single-threaded: a Task runs the heavy, side-effect-free compute on a
// worker (Vote / OutputsConsistent over a snapshot of settled reports)
// and returns an *applier* closure; the applier is executed later on
// the monitor thread via TryPopCompleted and is the only place state is
// mutated. With zero threads the pool degrades to deterministic inline
// execution (task + applier run inside Submit).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "transport/channel.h"

namespace mvtee::core {

class VerifyPool {
 public:
  using Apply = std::function<void()>;
  // Runs on a worker; the returned applier runs on the consumer thread.
  using Task = std::function<Apply()>;

  // `waiter` (optional) is notified whenever a completed applier becomes
  // available, so an evented consumer blocked in WaitAny wakes up.
  VerifyPool(int threads, std::shared_ptr<transport::WaitSet> waiter);
  ~VerifyPool();

  VerifyPool(const VerifyPool&) = delete;
  VerifyPool& operator=(const VerifyPool&) = delete;

  void Submit(Task task);

  // Pops one completed applier, if any. The caller runs it.
  std::optional<Apply> TryPopCompleted();

  // Tasks whose applier has not been popped yet (queued + running +
  // completed). Zero means the pool is drained.
  size_t pending() const;

  // Tasks waiting for a worker (obs queue-depth gauge).
  size_t queued() const;

  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::shared_ptr<transport::WaitSet> waiter_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> tasks_;
  std::deque<Apply> completed_;
  size_t pending_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mvtee::core
