// Model-owner client (Fig. 6 steps 1-3 and 8, plus the user-side
// combined attestation of §4.3).
//
// The owner runs OUTSIDE any TEE. It holds the offline bundle (wiring +
// variant keys + expected manifest hashes), attests the monitor TEE via
// challenge-response over an RA-TLS handshake (the owner itself sends no
// report), provisions the MVX configuration with a fresh nonce, and
// verifies that the returned initialization evidence echoes that nonce.
// Afterwards it can request a combined attestation of every bound
// variant TEE through the monitor.
#pragma once

#include <memory>

#include "core/monitor.h"
#include "core/offline.h"
#include "transport/secure_channel.h"

namespace mvtee::core {

class ModelOwner {
 public:
  explicit ModelOwner(OfflineBundle bundle) : bundle_(std::move(bundle)) {}

  // Connects to the monitor's owner port, verifies the monitor's
  // measurement, and provisions the deployment. Blocks until the monitor
  // reports the initialization outcome; fails on attestation errors,
  // nonce mismatch, or initialization failure.
  util::Status ProvisionDeployment(
      transport::Endpoint endpoint, const tee::SimulatedCpu& cpu,
      const crypto::Sha256Digest& expected_monitor_measurement,
      const MvxSelection& selection, int64_t timeout_us = 30'000'000);

  // Combined attestation (post-provisioning): asks the monitor for the
  // reports of every bound variant TEE and verifies each one is
  // hardware-signed and measures as the expected init-variant. Returns
  // the number of verified variant TEEs.
  util::Result<size_t> VerifyDeployment(
      const tee::SimulatedCpu& cpu,
      const crypto::Sha256Digest& expected_variant_measurement,
      int64_t timeout_us = 30'000'000);

  // Ends the owner session (the monitor-side service returns).
  void Disconnect();
  ~ModelOwner() { Disconnect(); }

  const OfflineBundle& bundle() const { return bundle_; }
  OfflineBundle& bundle() { return bundle_; }

 private:
  OfflineBundle bundle_;
  std::unique_ptr<transport::SecureChannel> channel_;
};

// Monitor-side owner service: accepts one owner connection on `endpoint`
// (server role, owner unattested), handles provisioning and attestation
// queries until the channel closes. Run it on its own thread; it calls
// monitor.Initialize() when the provisioning message arrives.
util::Status ServeOwner(Monitor& monitor, VariantHost& host,
                        transport::Endpoint endpoint,
                        int64_t timeout_us = 30'000'000);

}  // namespace mvtee::core
