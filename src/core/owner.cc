#include "core/owner.h"

#include "core/messages.h"
#include "crypto/rand.h"

namespace mvtee::core {

util::Status ModelOwner::ProvisionDeployment(
    transport::Endpoint endpoint, const tee::SimulatedCpu& cpu,
    const crypto::Sha256Digest& expected_monitor_measurement,
    const MvxSelection& selection, int64_t timeout_us) {
  // Fig. 6 step 2: challenge-response attestation of the monitor. The
  // RA-TLS handshake binds the monitor's ephemeral key into its report;
  // the owner itself runs outside TEEs and sends no report.
  MVTEE_ASSIGN_OR_RETURN(
      channel_,
      transport::SecureChannel::HandshakeUnattested(
          std::move(endpoint), transport::SecureChannel::Role::kClient,
          transport::ExpectMeasurement(cpu, expected_monitor_measurement),
          timeout_us));

  // Fig. 6 step 3: provision the MVX configuration with a fresh nonce.
  ProvisionMsg msg;
  msg.nonce = crypto::GlobalRandom().Generate(32);
  msg.bundle_config = bundle_.SerializeConfig();
  msg.stage_variant_ids = selection.stage_variant_ids;
  MVTEE_RETURN_IF_ERROR(channel_->Send(EncodeProvision(msg)));

  // Fig. 6 step 8: initialization results bound to the nonce.
  MVTEE_ASSIGN_OR_RETURN(util::Bytes frame, channel_->Recv(timeout_us));
  MVTEE_ASSIGN_OR_RETURN(ProvisionResultMsg result,
                         DecodeProvisionResult(frame));
  if (!util::ConstantTimeEqual(result.nonce, msg.nonce)) {
    return util::ReplayDetected("provision result nonce mismatch");
  }
  if (!result.ok) {
    return util::Internal("deployment initialization failed: " +
                          result.error);
  }
  // The bindings must be exactly the requested selection, in order.
  size_t expected = 0;
  for (const auto& stage : selection.stage_variant_ids) {
    expected += stage.size();
  }
  if (result.bound_variant_ids.size() != expected) {
    return util::AttestationFailure("binding count mismatch");
  }
  return util::OkStatus();
}

util::Result<size_t> ModelOwner::VerifyDeployment(
    const tee::SimulatedCpu& cpu,
    const crypto::Sha256Digest& expected_variant_measurement,
    int64_t timeout_us) {
  if (!channel_) return util::FailedPrecondition("not provisioned");
  AttestQueryMsg query;
  query.nonce = crypto::GlobalRandom().Generate(32);
  MVTEE_RETURN_IF_ERROR(channel_->Send(EncodeAttestQuery(query)));
  MVTEE_ASSIGN_OR_RETURN(util::Bytes frame, channel_->Recv(timeout_us));
  MVTEE_ASSIGN_OR_RETURN(AttestReplyMsg reply, DecodeAttestReply(frame));
  if (!util::ConstantTimeEqual(reply.nonce, query.nonce)) {
    return util::ReplayDetected("attestation reply nonce mismatch");
  }
  size_t verified = 0;
  for (const auto& report_bytes : reply.variant_reports) {
    MVTEE_ASSIGN_OR_RETURN(tee::AttestationReport report,
                           tee::AttestationReport::Deserialize(report_bytes));
    MVTEE_RETURN_IF_ERROR(cpu.VerifyReport(report));
    if (!util::ConstantTimeEqual(
            util::ByteSpan(report.measurement.data(),
                           report.measurement.size()),
            util::ByteSpan(expected_variant_measurement.data(),
                           expected_variant_measurement.size()))) {
      return util::AttestationFailure("variant measurement mismatch");
    }
    ++verified;
  }
  return verified;
}

void ModelOwner::Disconnect() {
  if (!channel_) return;
  (void)channel_->Send(EncodeShutdown());
  channel_->Close();
  channel_.reset();
}

util::Status ServeOwner(Monitor& monitor, VariantHost& host,
                        transport::Endpoint endpoint, int64_t timeout_us) {
  MVTEE_ASSIGN_OR_RETURN(
      auto channel,
      transport::SecureChannel::Handshake(
          std::move(endpoint), transport::SecureChannel::Role::kServer,
          monitor.enclave(), transport::AllowUnattestedPeer(), timeout_us));

  for (;;) {
    auto frame = channel->Recv(timeout_us);
    if (!frame.ok()) {
      // Channel closed or timed out: service ends.
      return frame.status().code() == util::StatusCode::kUnavailable
                 ? util::OkStatus()
                 : frame.status();
    }
    auto type = PeekType(*frame);
    if (!type.ok()) return type.status();

    switch (*type) {
      case MsgType::kProvision: {
        auto msg = DecodeProvision(*frame);
        ProvisionResultMsg result;
        if (!msg.ok()) {
          result.ok = false;
          result.error = msg.status().ToString();
        } else {
          result.nonce = msg->nonce;
          auto bundle = OfflineBundle::DeserializeConfig(msg->bundle_config);
          util::Status status =
              bundle.ok() ? util::OkStatus() : bundle.status();
          if (status.ok()) {
            MvxSelection selection;
            selection.stage_variant_ids = msg->stage_variant_ids;
            status = monitor.Initialize(*bundle, selection, host);
          }
          result.ok = status.ok();
          if (!status.ok()) {
            result.error = status.ToString();
          } else {
            for (const auto& b : monitor.bindings()) {
              if (b.active) result.bound_variant_ids.push_back(b.variant_id);
            }
          }
        }
        MVTEE_RETURN_IF_ERROR(channel->Send(EncodeProvisionResult(result)));
        break;
      }
      case MsgType::kAttestQuery: {
        auto msg = DecodeAttestQuery(*frame);
        if (!msg.ok()) return msg.status();
        AttestReplyMsg reply;
        reply.nonce = msg->nonce;
        for (const auto& b : monitor.bindings()) {
          if (b.active && !b.report.empty()) {
            reply.variant_reports.push_back(b.report);
          }
        }
        MVTEE_RETURN_IF_ERROR(channel->Send(EncodeAttestReply(reply)));
        break;
      }
      case MsgType::kShutdown:
        channel->Close();
        return util::OkStatus();
      default:
        return util::InvalidArgument("unexpected owner message");
    }
  }
}

}  // namespace mvtee::core
