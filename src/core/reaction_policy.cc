#include "core/reaction_policy.h"

#include <algorithm>

namespace mvtee::core {

std::string_view ReactionKindName(ReactionKind kind) {
  switch (kind) {
    case ReactionKind::kAbort: return "abort";
    case ReactionKind::kContinueWithWinner: return "continue-with-winner";
    case ReactionKind::kQuarantineAndRestart: return "quarantine-and-restart";
  }
  return "?";
}

ReactionPolicyBuilder& ReactionPolicyBuilder::Abort() {
  policy_.kind = ReactionKind::kAbort;
  return *this;
}

ReactionPolicyBuilder& ReactionPolicyBuilder::ContinueWithWinner() {
  policy_.kind = ReactionKind::kContinueWithWinner;
  return *this;
}

ReactionPolicyBuilder& ReactionPolicyBuilder::QuarantineAndRestart() {
  policy_.kind = ReactionKind::kQuarantineAndRestart;
  return *this;
}

ReactionPolicyBuilder& ReactionPolicyBuilder::MinPanel(int floor) {
  policy_.min_panel = std::max(1, floor);
  return *this;
}

ReactionPolicyBuilder& ReactionPolicyBuilder::ProbationBatches(
    int batches) {
  policy_.probation_batches = std::max(1, batches);
  return *this;
}

ReactionPolicyBuilder& ReactionPolicyBuilder::DissentThreshold(
    int dissents) {
  policy_.dissent_threshold = std::max(1, dissents);
  return *this;
}

ReactionPolicyBuilder& ReactionPolicyBuilder::RetryBudget(int attempts) {
  policy_.retry_budget = std::max(0, attempts);
  return *this;
}

ReactionPolicyBuilder& ReactionPolicyBuilder::Backoff(int64_t initial_us,
                                                          double multiplier,
                                                          int64_t max_us) {
  policy_.initial_backoff_us = std::max<int64_t>(0, initial_us);
  policy_.backoff_multiplier = std::max(1.0, multiplier);
  policy_.max_backoff_us = std::max<int64_t>(policy_.initial_backoff_us,
                                             max_us);
  return *this;
}

ReactionPolicyBuilder& ReactionPolicyBuilder::DegradeToMajority(
    bool degrade) {
  policy_.degrade_to_majority = degrade;
  return *this;
}

}  // namespace mvtee::core
