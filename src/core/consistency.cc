#include "core/consistency.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

namespace mvtee::core {

using tensor::Tensor;

std::string_view ConsistencyMetricName(ConsistencyMetric metric) {
  switch (metric) {
    case ConsistencyMetric::kCosine: return "cosine";
    case ConsistencyMetric::kMse: return "mse";
    case ConsistencyMetric::kMaxAbsDiff: return "max-abs-diff";
    case ConsistencyMetric::kAllClose: return "allclose";
  }
  return "unknown";
}

bool OutputsConsistent(const std::vector<Tensor>& a,
                       const std::vector<Tensor>& b,
                       const CheckPolicy& policy) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].shape() != b[i].shape()) return false;
    if (tensor::HasNonFinite(a[i]) || tensor::HasNonFinite(b[i])) {
      return false;
    }
    switch (policy.metric) {
      case ConsistencyMetric::kCosine:
        if (tensor::CosineSimilarity(a[i], b[i]) < policy.threshold) {
          return false;
        }
        break;
      case ConsistencyMetric::kMse:
        if (tensor::MeanSquaredError(a[i], b[i]) > policy.threshold) {
          return false;
        }
        break;
      case ConsistencyMetric::kMaxAbsDiff:
        if (tensor::MaxAbsDiff(a[i], b[i]) > policy.threshold) return false;
        break;
      case ConsistencyMetric::kAllClose:
        if (!tensor::AllClose(a[i], b[i], policy.rtol, policy.atol)) {
          return false;
        }
        break;
    }
  }
  return true;
}

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline void FnvMix(uint64_t& h, const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

// Shared bloc-clustering vote: `consistent(i, j)` decides pairwise
// equivalence between live variants i and j.
VoteResult VoteImpl(const std::vector<std::vector<Tensor>>& outputs,
                    VotePolicy vote_policy,
                    const std::function<bool(int, int)>& consistent) {
  const int n = static_cast<int>(outputs.size());
  VoteResult result;
  if (n == 0) return result;

  // Cluster by consistency with a bloc representative (greedy; adequate
  // because equivalence is near-transitive under calibrated thresholds).
  std::vector<int> bloc_of(static_cast<size_t>(n), -1);
  std::vector<int> representatives;
  for (int i = 0; i < n; ++i) {
    if (outputs[static_cast<size_t>(i)].empty()) continue;  // failed variant
    for (size_t b = 0; b < representatives.size(); ++b) {
      if (consistent(i, representatives[b])) {
        bloc_of[static_cast<size_t>(i)] = static_cast<int>(b);
        break;
      }
    }
    if (bloc_of[static_cast<size_t>(i)] == -1) {
      bloc_of[static_cast<size_t>(i)] =
          static_cast<int>(representatives.size());
      representatives.push_back(i);
    }
  }

  // Bloc sizes.
  std::vector<int> bloc_size(representatives.size(), 0);
  for (int i = 0; i < n; ++i) {
    if (bloc_of[static_cast<size_t>(i)] >= 0) {
      bloc_size[static_cast<size_t>(bloc_of[static_cast<size_t>(i)])]++;
    }
  }
  int best_bloc = -1, best_size = 0;
  for (size_t b = 0; b < bloc_size.size(); ++b) {
    if (bloc_size[b] > best_size) {
      best_size = bloc_size[b];
      best_bloc = static_cast<int>(b);
    }
  }

  const bool accepted =
      vote_policy == VotePolicy::kUnanimous
          ? (best_size == n && representatives.size() == 1)
          : (best_size * 2 > n);

  result.accepted = accepted;
  result.winner = accepted ? representatives[static_cast<size_t>(best_bloc)]
                           : -1;
  for (int i = 0; i < n; ++i) {
    if (bloc_of[static_cast<size_t>(i)] != best_bloc) {
      result.dissenters.push_back(i);
    }
  }
  return result;
}

}  // namespace

OutputsSummary SummarizeOutputs(const std::vector<Tensor>& outputs) {
  OutputsSummary s;
  if (outputs.empty()) return s;
  s.valid = true;
  uint64_t h = kFnvOffset;
  for (const Tensor& t : outputs) {
    const auto& dims = t.shape().dims();
    uint64_t rank = static_cast<uint64_t>(dims.size());
    FnvMix(h, &rank, sizeof(rank));
    if (!dims.empty()) {
      FnvMix(h, dims.data(), dims.size() * sizeof(dims[0]));
    }
    const float* data = t.data();
    const size_t count = t.storage_size();
    if (count > 0) FnvMix(h, data, count * sizeof(float));
    for (size_t i = 0; i < count; ++i) {
      if (!std::isfinite(data[i])) {
        s.nonfinite = true;
        break;
      }
    }
  }
  s.digest = h;
  return s;
}

bool OutputsConsistent(const std::vector<Tensor>& a, const OutputsSummary& sa,
                       const std::vector<Tensor>& b, const OutputsSummary& sb,
                       const CheckPolicy& policy, CheckStats* stats) {
  if (sa.valid && sb.valid) {
    if (sa.nonfinite || sb.nonfinite) {
      if (stats) stats->prefilter_hits += 1;
      return false;  // non-finite always fails, no scan needed
    }
    if (sa.digest == sb.digest && a.size() == b.size()) {
      // Byte-identical (modulo a hash collision, acceptable for a
      // performance filter over trusted variant replicas) => consistent
      // under every metric.
      if (stats) stats->prefilter_hits += 1;
      return true;
    }
  }
  if (stats) stats->full_checks += 1;
  return OutputsConsistent(a, b, policy);
}

VoteResult Vote(const std::vector<std::vector<Tensor>>& outputs,
                const CheckPolicy& policy, VotePolicy vote_policy) {
  return VoteImpl(outputs, vote_policy, [&](int i, int j) {
    return OutputsConsistent(outputs[static_cast<size_t>(i)],
                             outputs[static_cast<size_t>(j)], policy);
  });
}

VoteResult Vote(const std::vector<std::vector<Tensor>>& outputs,
                const std::vector<OutputsSummary>& summaries,
                const CheckPolicy& policy, VotePolicy vote_policy,
                CheckStats* stats) {
  static const OutputsSummary kInvalid;
  auto summary_of = [&](int i) -> const OutputsSummary& {
    return static_cast<size_t>(i) < summaries.size()
               ? summaries[static_cast<size_t>(i)]
               : kInvalid;
  };
  return VoteImpl(outputs, vote_policy, [&](int i, int j) {
    return OutputsConsistent(outputs[static_cast<size_t>(i)], summary_of(i),
                             outputs[static_cast<size_t>(j)], summary_of(j),
                             policy, stats);
  });
}

}  // namespace mvtee::core
