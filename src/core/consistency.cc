#include "core/consistency.h"

#include <algorithm>

namespace mvtee::core {

using tensor::Tensor;

std::string_view ConsistencyMetricName(ConsistencyMetric metric) {
  switch (metric) {
    case ConsistencyMetric::kCosine: return "cosine";
    case ConsistencyMetric::kMse: return "mse";
    case ConsistencyMetric::kMaxAbsDiff: return "max-abs-diff";
    case ConsistencyMetric::kAllClose: return "allclose";
  }
  return "unknown";
}

bool OutputsConsistent(const std::vector<Tensor>& a,
                       const std::vector<Tensor>& b,
                       const CheckPolicy& policy) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].shape() != b[i].shape()) return false;
    if (tensor::HasNonFinite(a[i]) || tensor::HasNonFinite(b[i])) {
      return false;
    }
    switch (policy.metric) {
      case ConsistencyMetric::kCosine:
        if (tensor::CosineSimilarity(a[i], b[i]) < policy.threshold) {
          return false;
        }
        break;
      case ConsistencyMetric::kMse:
        if (tensor::MeanSquaredError(a[i], b[i]) > policy.threshold) {
          return false;
        }
        break;
      case ConsistencyMetric::kMaxAbsDiff:
        if (tensor::MaxAbsDiff(a[i], b[i]) > policy.threshold) return false;
        break;
      case ConsistencyMetric::kAllClose:
        if (!tensor::AllClose(a[i], b[i], policy.rtol, policy.atol)) {
          return false;
        }
        break;
    }
  }
  return true;
}

VoteResult Vote(const std::vector<std::vector<Tensor>>& outputs,
                const CheckPolicy& policy, VotePolicy vote_policy) {
  const int n = static_cast<int>(outputs.size());
  VoteResult result;
  if (n == 0) return result;

  // Cluster by consistency with a bloc representative (greedy; adequate
  // because equivalence is near-transitive under calibrated thresholds).
  std::vector<int> bloc_of(static_cast<size_t>(n), -1);
  std::vector<int> representatives;
  for (int i = 0; i < n; ++i) {
    if (outputs[static_cast<size_t>(i)].empty()) continue;  // failed variant
    for (size_t b = 0; b < representatives.size(); ++b) {
      if (OutputsConsistent(outputs[static_cast<size_t>(i)],
                            outputs[static_cast<size_t>(representatives[b])],
                            policy)) {
        bloc_of[static_cast<size_t>(i)] = static_cast<int>(b);
        break;
      }
    }
    if (bloc_of[static_cast<size_t>(i)] == -1) {
      bloc_of[static_cast<size_t>(i)] =
          static_cast<int>(representatives.size());
      representatives.push_back(i);
    }
  }

  // Bloc sizes.
  std::vector<int> bloc_size(representatives.size(), 0);
  for (int i = 0; i < n; ++i) {
    if (bloc_of[static_cast<size_t>(i)] >= 0) {
      bloc_size[static_cast<size_t>(bloc_of[static_cast<size_t>(i)])]++;
    }
  }
  int best_bloc = -1, best_size = 0;
  for (size_t b = 0; b < bloc_size.size(); ++b) {
    if (bloc_size[b] > best_size) {
      best_size = bloc_size[b];
      best_bloc = static_cast<int>(b);
    }
  }

  const bool accepted =
      vote_policy == VotePolicy::kUnanimous
          ? (best_size == n && representatives.size() == 1)
          : (best_size * 2 > n);

  result.accepted = accepted;
  result.winner = accepted ? representatives[static_cast<size_t>(best_bloc)]
                           : -1;
  for (int i = 0; i < n; ++i) {
    if (bloc_of[static_cast<size_t>(i)] != best_bloc) {
      result.dissenters.push_back(i);
    }
  }
  return result;
}

}  // namespace mvtee::core
