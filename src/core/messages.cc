#include "core/messages.h"

#include <memory>

namespace mvtee::core {

namespace {
// Tensor container: count(4), then per tensor
//   pad_len(1) || <pad_len zero bytes> || len(4) || tensor bytes
// pad_len (0-3) is chosen so the tensor's serialized bytes start 4-byte
// aligned relative to the *frame base*. The inner tensor header is a
// multiple of 4 bytes, so the float payload is then frame-aligned too,
// which is what lets a receiver alias it in place via
// tensor::Tensor::DeserializeView instead of copying.
uint8_t TensorPad(size_t pos) {
  // `pos` is the frame-relative offset of the pad_len byte; the tensor
  // bytes start at pos + 1 + pad + 4.
  return static_cast<uint8_t>((4 - ((pos + 5) % 4)) % 4);
}

size_t TensorsEncodedSize(size_t pos,
                          const std::vector<tensor::Tensor>& tensors) {
  size_t end = pos + 4;
  for (const auto& t : tensors) {
    end += 1 + TensorPad(end) + 4 + t.SerializedSize();
  }
  return end - pos;
}

void AppendTensors(util::Bytes& out, size_t frame_base,
                   const std::vector<tensor::Tensor>& tensors) {
  util::AppendU32(out, static_cast<uint32_t>(tensors.size()));
  for (const auto& t : tensors) {
    const uint8_t pad = TensorPad(out.size() - frame_base);
    util::AppendU8(out, pad);
    for (uint8_t i = 0; i < pad; ++i) util::AppendU8(out, 0);
    util::AppendU32(out, static_cast<uint32_t>(t.SerializedSize()));
    t.SerializeInto(out);
  }
}

// With a keepalive, decoded tensors are views aliasing the frame buffer
// (DeserializeView falls back to an owned copy if the payload landed
// misaligned); without one they are owned copies as before.
util::Status ReadTensors(util::ByteReader& reader,
                         std::vector<tensor::Tensor>& out,
                         const std::shared_ptr<const void>& keepalive) {
  uint32_t count;
  if (!reader.ReadU32(count) || count > 1024) {
    return util::InvalidArgument("bad tensor count");
  }
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t pad;
    uint32_t len;
    util::ByteSpan payload;
    if (!reader.ReadU8(pad) || pad > 3 || !reader.Skip(pad) ||
        !reader.ReadU32(len) || !reader.ReadSpan(len, payload)) {
      return util::InvalidArgument("truncated tensor");
    }
    MVTEE_ASSIGN_OR_RETURN(tensor::Tensor t,
                           tensor::Tensor::DeserializeView(payload, keepalive));
    out.push_back(std::move(t));
  }
  return util::OkStatus();
}

void AppendSlots(util::Bytes& out, const std::vector<uint32_t>& slots) {
  util::AppendU32(out, static_cast<uint32_t>(slots.size()));
  for (uint32_t s : slots) util::AppendU32(out, s);
}

size_t SlotsSize(const std::vector<uint32_t>& slots) {
  return 4 + 4 * slots.size();
}

size_t LpSize(size_t payload) { return 4 + payload; }

bool ReadSlots(util::ByteReader& reader, std::vector<uint32_t>& slots) {
  uint32_t count;
  if (!reader.ReadU32(count) || count > 1024) return false;
  slots.resize(count);
  for (auto& s : slots) {
    if (!reader.ReadU32(s)) return false;
  }
  return true;
}

util::Status ConsumeTag(util::ByteReader& reader, MsgType expected) {
  uint8_t tag;
  if (!reader.ReadU8(tag) || tag != static_cast<uint8_t>(expected)) {
    return util::InvalidArgument("unexpected message tag");
  }
  return util::OkStatus();
}
}  // namespace

size_t EncodedSize(const AssignIdentityMsg& msg) {
  return 1 + LpSize(msg.variant_id.size()) + LpSize(msg.variant_key.size());
}

void EncodeAssignIdentityInto(const AssignIdentityMsg& msg, util::Bytes& out) {
  util::AppendU8(out, static_cast<uint8_t>(MsgType::kAssignIdentity));
  util::AppendLengthPrefixedStr(out, msg.variant_id);
  util::AppendLengthPrefixed(out, msg.variant_key);
}

util::Bytes EncodeAssignIdentity(const AssignIdentityMsg& msg) {
  util::Bytes out;
  out.reserve(EncodedSize(msg));
  EncodeAssignIdentityInto(msg, out);
  return out;
}

size_t EncodedSize(const IdentityAckMsg& msg) {
  return 1 + LpSize(msg.variant_id.size()) + crypto::kSha256DigestSize + 1 +
         LpSize(msg.error.size());
}

void EncodeIdentityAckInto(const IdentityAckMsg& msg, util::Bytes& out) {
  util::AppendU8(out, static_cast<uint8_t>(MsgType::kIdentityAck));
  util::AppendLengthPrefixedStr(out, msg.variant_id);
  util::AppendBytes(out, util::ByteSpan(msg.manifest_hash.data(),
                                        msg.manifest_hash.size()));
  util::AppendU8(out, msg.ok ? 1 : 0);
  util::AppendLengthPrefixedStr(out, msg.error);
}

util::Bytes EncodeIdentityAck(const IdentityAckMsg& msg) {
  util::Bytes out;
  out.reserve(EncodedSize(msg));
  EncodeIdentityAckInto(msg, out);
  return out;
}

size_t EncodedSize(const InferMsg& msg) {
  const size_t head = 1 + 8 + 8 + SlotsSize(msg.slots);
  return head + TensorsEncodedSize(head, msg.inputs);
}

void EncodeInferInto(const InferMsg& msg, util::Bytes& out) {
  MVTEE_CHECK(msg.slots.size() == msg.inputs.size());
  const size_t frame_base = out.size();
  util::AppendU8(out, static_cast<uint8_t>(MsgType::kInfer));
  util::AppendU64(out, msg.batch_id);
  util::AppendU64(out, msg.vtime_us);
  AppendSlots(out, msg.slots);
  AppendTensors(out, frame_base, msg.inputs);
}

util::Bytes EncodeInfer(const InferMsg& msg) {
  util::Bytes out;
  out.reserve(EncodedSize(msg));
  EncodeInferInto(msg, out);
  return out;
}

size_t EncodedSize(const InferResultMsg& msg) {
  const size_t head = 1 + 8 + 8 + 1;
  return head + TensorsEncodedSize(head, msg.outputs) +
         LpSize(msg.error.size());
}

void EncodeInferResultInto(const InferResultMsg& msg, util::Bytes& out) {
  const size_t frame_base = out.size();
  util::AppendU8(out, static_cast<uint8_t>(MsgType::kInferResult));
  util::AppendU64(out, msg.batch_id);
  util::AppendU64(out, msg.vtime_us);
  util::AppendU8(out, msg.ok ? 1 : 0);
  AppendTensors(out, frame_base, msg.outputs);
  util::AppendLengthPrefixedStr(out, msg.error);
}

util::Bytes EncodeInferResult(const InferResultMsg& msg) {
  util::Bytes out;
  out.reserve(EncodedSize(msg));
  EncodeInferResultInto(msg, out);
  return out;
}

size_t EncodedSizeShutdown() { return 1; }

void EncodeShutdownInto(util::Bytes& out) {
  util::AppendU8(out, static_cast<uint8_t>(MsgType::kShutdown));
}

util::Bytes EncodeShutdown() {
  return {static_cast<uint8_t>(MsgType::kShutdown)};
}

size_t EncodedSize(const SetupRoutesMsg& msg) {
  size_t size = 1 + 4 + 8 * msg.upstream.size() + 4 + 1;
  for (const auto& down : msg.downstream) {
    size += 8 + 4 + 8 * down.output_to_slot.size();
  }
  return size;
}

void EncodeSetupRoutesInto(const SetupRoutesMsg& msg, util::Bytes& out) {
  util::AppendU8(out, static_cast<uint8_t>(MsgType::kSetupRoutes));
  util::AppendU32(out, static_cast<uint32_t>(msg.upstream.size()));
  for (const auto& up : msg.upstream) util::AppendU64(out, up.pipe_id);
  util::AppendU32(out, static_cast<uint32_t>(msg.downstream.size()));
  for (const auto& down : msg.downstream) {
    util::AppendU64(out, down.pipe_id);
    util::AppendU32(out, static_cast<uint32_t>(down.output_to_slot.size()));
    for (const auto& [output, slot] : down.output_to_slot) {
      util::AppendU32(out, output);
      util::AppendU32(out, slot);
    }
  }
  util::AppendU8(out, msg.report_to_monitor ? 1 : 0);
}

util::Bytes EncodeSetupRoutes(const SetupRoutesMsg& msg) {
  util::Bytes out;
  out.reserve(EncodedSize(msg));
  EncodeSetupRoutesInto(msg, out);
  return out;
}

size_t EncodedSize(const RoutesAckMsg& msg) {
  return 1 + 1 + LpSize(msg.error.size());
}

void EncodeRoutesAckInto(const RoutesAckMsg& msg, util::Bytes& out) {
  util::AppendU8(out, static_cast<uint8_t>(MsgType::kRoutesAck));
  util::AppendU8(out, msg.ok ? 1 : 0);
  util::AppendLengthPrefixedStr(out, msg.error);
}

util::Bytes EncodeRoutesAck(const RoutesAckMsg& msg) {
  util::Bytes out;
  out.reserve(EncodedSize(msg));
  EncodeRoutesAckInto(msg, out);
  return out;
}

size_t EncodedSize(const StageDataMsg& msg) {
  const size_t head = 1 + 8 + 8 + SlotsSize(msg.slots);
  return head + TensorsEncodedSize(head, msg.tensors);
}

void EncodeStageDataInto(const StageDataMsg& msg, util::Bytes& out) {
  MVTEE_CHECK(msg.slots.size() == msg.tensors.size());
  const size_t frame_base = out.size();
  util::AppendU8(out, static_cast<uint8_t>(MsgType::kStageData));
  util::AppendU64(out, msg.batch_id);
  util::AppendU64(out, msg.vtime_us);
  AppendSlots(out, msg.slots);
  AppendTensors(out, frame_base, msg.tensors);
}

util::Bytes EncodeStageData(const StageDataMsg& msg) {
  util::Bytes out;
  out.reserve(EncodedSize(msg));
  EncodeStageDataInto(msg, out);
  return out;
}

util::Status SendFrame(transport::MsgChannel& channel, const InferMsg& msg,
                       util::ByteSpan header) {
  return channel.SendEncoded(EncodedSize(msg), header, [&msg](util::Bytes& out) {
    EncodeInferInto(msg, out);
  });
}

util::Status SendFrame(transport::MsgChannel& channel,
                       const InferResultMsg& msg, util::ByteSpan header) {
  return channel.SendEncoded(EncodedSize(msg), header, [&msg](util::Bytes& out) {
    EncodeInferResultInto(msg, out);
  });
}

util::Status SendFrame(transport::MsgChannel& channel, const StageDataMsg& msg,
                       util::ByteSpan header) {
  return channel.SendEncoded(EncodedSize(msg), header, [&msg](util::Bytes& out) {
    EncodeStageDataInto(msg, out);
  });
}

size_t EncodedSize(const SessionSubmitMsg& msg) {
  const size_t head = 1 + 8 + 8 + 4 + LpSize(msg.tenant.size()) +
                      LpSize(msg.model.size());
  return head + TensorsEncodedSize(head, msg.inputs);
}

void EncodeSessionSubmitInto(const SessionSubmitMsg& msg, util::Bytes& out) {
  const size_t frame_base = out.size();
  util::AppendU8(out, static_cast<uint8_t>(MsgType::kSessionSubmit));
  util::AppendU64(out, msg.seq);
  util::AppendU64(out, static_cast<uint64_t>(msg.deadline_us));
  util::AppendU32(out, static_cast<uint32_t>(msg.priority));
  util::AppendLengthPrefixedStr(out, msg.tenant);
  util::AppendLengthPrefixedStr(out, msg.model);
  AppendTensors(out, frame_base, msg.inputs);
}

util::Bytes EncodeSessionSubmit(const SessionSubmitMsg& msg) {
  util::Bytes out;
  out.reserve(EncodedSize(msg));
  EncodeSessionSubmitInto(msg, out);
  return out;
}

size_t EncodedSize(const SessionReplyMsg& msg) {
  const size_t head = 1 + 8 + 1 + 8 + LpSize(msg.error.size());
  return head + TensorsEncodedSize(head, msg.outputs);
}

void EncodeSessionReplyInto(const SessionReplyMsg& msg, util::Bytes& out) {
  const size_t frame_base = out.size();
  util::AppendU8(out, static_cast<uint8_t>(MsgType::kSessionReply));
  util::AppendU64(out, msg.seq);
  util::AppendU8(out, msg.code);
  util::AppendU64(out, static_cast<uint64_t>(msg.latency_us));
  util::AppendLengthPrefixedStr(out, msg.error);
  AppendTensors(out, frame_base, msg.outputs);
}

util::Bytes EncodeSessionReply(const SessionReplyMsg& msg) {
  util::Bytes out;
  out.reserve(EncodedSize(msg));
  EncodeSessionReplyInto(msg, out);
  return out;
}

util::Status SendFrame(transport::MsgChannel& channel,
                       const SessionSubmitMsg& msg, util::ByteSpan header) {
  return channel.SendEncoded(EncodedSize(msg), header, [&msg](util::Bytes& out) {
    EncodeSessionSubmitInto(msg, out);
  });
}

util::Status SendFrame(transport::MsgChannel& channel,
                       const SessionReplyMsg& msg, util::ByteSpan header) {
  return channel.SendEncoded(EncodedSize(msg), header, [&msg](util::Bytes& out) {
    EncodeSessionReplyInto(msg, out);
  });
}

size_t EncodedSize(const ProvisionMsg& msg) {
  size_t size = 1 + LpSize(msg.nonce.size()) + LpSize(msg.bundle_config.size()) + 4;
  for (const auto& stage : msg.stage_variant_ids) {
    size += 4;
    for (const auto& id : stage) size += LpSize(id.size());
  }
  return size;
}

util::Bytes EncodeProvision(const ProvisionMsg& msg) {
  util::Bytes out;
  out.reserve(EncodedSize(msg));
  util::AppendU8(out, static_cast<uint8_t>(MsgType::kProvision));
  util::AppendLengthPrefixed(out, msg.nonce);
  util::AppendLengthPrefixed(out, msg.bundle_config);
  util::AppendU32(out, static_cast<uint32_t>(msg.stage_variant_ids.size()));
  for (const auto& stage : msg.stage_variant_ids) {
    util::AppendU32(out, static_cast<uint32_t>(stage.size()));
    for (const auto& id : stage) util::AppendLengthPrefixedStr(out, id);
  }
  return out;
}

util::Result<ProvisionMsg> DecodeProvision(util::ByteSpan frame) {
  util::ByteReader reader(frame);
  MVTEE_RETURN_IF_ERROR(ConsumeTag(reader, MsgType::kProvision));
  ProvisionMsg msg;
  uint32_t stages;
  if (!reader.ReadLengthPrefixed(msg.nonce) ||
      !reader.ReadLengthPrefixed(msg.bundle_config) ||
      !reader.ReadU32(stages) || stages > 256) {
    return util::InvalidArgument("malformed Provision");
  }
  for (uint32_t s = 0; s < stages; ++s) {
    uint32_t count;
    if (!reader.ReadU32(count) || count > 64) {
      return util::InvalidArgument("malformed Provision stage");
    }
    std::vector<std::string> ids(count);
    for (auto& id : ids) {
      if (!reader.ReadLengthPrefixedStr(id)) {
        return util::InvalidArgument("malformed Provision id");
      }
    }
    msg.stage_variant_ids.push_back(std::move(ids));
  }
  if (!reader.done()) return util::InvalidArgument("Provision trailing");
  return msg;
}

size_t EncodedSize(const ProvisionResultMsg& msg) {
  size_t size = 1 + LpSize(msg.nonce.size()) + 1 + LpSize(msg.error.size()) + 4;
  for (const auto& id : msg.bound_variant_ids) size += LpSize(id.size());
  return size;
}

util::Bytes EncodeProvisionResult(const ProvisionResultMsg& msg) {
  util::Bytes out;
  out.reserve(EncodedSize(msg));
  util::AppendU8(out, static_cast<uint8_t>(MsgType::kProvisionResult));
  util::AppendLengthPrefixed(out, msg.nonce);
  util::AppendU8(out, msg.ok ? 1 : 0);
  util::AppendLengthPrefixedStr(out, msg.error);
  util::AppendU32(out, static_cast<uint32_t>(msg.bound_variant_ids.size()));
  for (const auto& id : msg.bound_variant_ids) {
    util::AppendLengthPrefixedStr(out, id);
  }
  return out;
}

util::Result<ProvisionResultMsg> DecodeProvisionResult(util::ByteSpan frame) {
  util::ByteReader reader(frame);
  MVTEE_RETURN_IF_ERROR(ConsumeTag(reader, MsgType::kProvisionResult));
  ProvisionResultMsg msg;
  uint8_t ok;
  uint32_t count;
  if (!reader.ReadLengthPrefixed(msg.nonce) || !reader.ReadU8(ok) ||
      !reader.ReadLengthPrefixedStr(msg.error) || !reader.ReadU32(count) ||
      count > 4096) {
    return util::InvalidArgument("malformed ProvisionResult");
  }
  msg.ok = ok != 0;
  msg.bound_variant_ids.resize(count);
  for (auto& id : msg.bound_variant_ids) {
    if (!reader.ReadLengthPrefixedStr(id)) {
      return util::InvalidArgument("malformed ProvisionResult id");
    }
  }
  if (!reader.done()) {
    return util::InvalidArgument("ProvisionResult trailing");
  }
  return msg;
}

size_t EncodedSize(const AttestQueryMsg& msg) {
  return 1 + LpSize(msg.nonce.size());
}

util::Bytes EncodeAttestQuery(const AttestQueryMsg& msg) {
  util::Bytes out;
  out.reserve(EncodedSize(msg));
  util::AppendU8(out, static_cast<uint8_t>(MsgType::kAttestQuery));
  util::AppendLengthPrefixed(out, msg.nonce);
  return out;
}

util::Result<AttestQueryMsg> DecodeAttestQuery(util::ByteSpan frame) {
  util::ByteReader reader(frame);
  MVTEE_RETURN_IF_ERROR(ConsumeTag(reader, MsgType::kAttestQuery));
  AttestQueryMsg msg;
  if (!reader.ReadLengthPrefixed(msg.nonce) || !reader.done()) {
    return util::InvalidArgument("malformed AttestQuery");
  }
  return msg;
}

size_t EncodedSize(const AttestReplyMsg& msg) {
  size_t size = 1 + LpSize(msg.nonce.size()) + 4;
  for (const auto& r : msg.variant_reports) size += LpSize(r.size());
  return size;
}

util::Bytes EncodeAttestReply(const AttestReplyMsg& msg) {
  util::Bytes out;
  out.reserve(EncodedSize(msg));
  util::AppendU8(out, static_cast<uint8_t>(MsgType::kAttestReply));
  util::AppendLengthPrefixed(out, msg.nonce);
  util::AppendU32(out, static_cast<uint32_t>(msg.variant_reports.size()));
  for (const auto& r : msg.variant_reports) {
    util::AppendLengthPrefixed(out, r);
  }
  return out;
}

util::Result<AttestReplyMsg> DecodeAttestReply(util::ByteSpan frame) {
  util::ByteReader reader(frame);
  MVTEE_RETURN_IF_ERROR(ConsumeTag(reader, MsgType::kAttestReply));
  AttestReplyMsg msg;
  uint32_t count;
  if (!reader.ReadLengthPrefixed(msg.nonce) || !reader.ReadU32(count) ||
      count > 4096) {
    return util::InvalidArgument("malformed AttestReply");
  }
  msg.variant_reports.resize(count);
  for (auto& r : msg.variant_reports) {
    if (!reader.ReadLengthPrefixed(r)) {
      return util::InvalidArgument("malformed AttestReply report");
    }
  }
  if (!reader.done()) return util::InvalidArgument("AttestReply trailing");
  return msg;
}

void PatchVtime(util::Bytes& frame, uint64_t vtime_us) {
  // Layout: tag (1 byte) + batch_id (8) + vtime (8).
  MVTEE_CHECK(frame.size() >= 17);
  for (int i = 0; i < 8; ++i) {
    frame[9 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(vtime_us >> (56 - 8 * i));
  }
}

util::Result<MsgType> PeekType(util::ByteSpan frame) {
  if (frame.empty()) return util::InvalidArgument("empty frame");
  uint8_t tag = frame[0];
  if (tag < static_cast<uint8_t>(MsgType::kAssignIdentity) ||
      tag > static_cast<uint8_t>(MsgType::kSessionReply)) {
    return util::InvalidArgument("unknown message type " +
                                 std::to_string(tag));
  }
  return static_cast<MsgType>(tag);
}

util::Result<AssignIdentityMsg> DecodeAssignIdentity(util::ByteSpan frame) {
  util::ByteReader reader(frame);
  MVTEE_RETURN_IF_ERROR(ConsumeTag(reader, MsgType::kAssignIdentity));
  AssignIdentityMsg msg;
  if (!reader.ReadLengthPrefixedStr(msg.variant_id) ||
      !reader.ReadLengthPrefixed(msg.variant_key) || !reader.done()) {
    return util::InvalidArgument("malformed AssignIdentity");
  }
  return msg;
}

util::Result<IdentityAckMsg> DecodeIdentityAck(util::ByteSpan frame) {
  util::ByteReader reader(frame);
  MVTEE_RETURN_IF_ERROR(ConsumeTag(reader, MsgType::kIdentityAck));
  IdentityAckMsg msg;
  util::Bytes digest;
  uint8_t ok;
  if (!reader.ReadLengthPrefixedStr(msg.variant_id) ||
      !reader.ReadBytes(crypto::kSha256DigestSize, digest) ||
      !reader.ReadU8(ok) || !reader.ReadLengthPrefixedStr(msg.error) ||
      !reader.done()) {
    return util::InvalidArgument("malformed IdentityAck");
  }
  std::copy(digest.begin(), digest.end(), msg.manifest_hash.begin());
  msg.ok = ok != 0;
  return msg;
}

namespace {
util::Result<InferMsg> DecodeInferImpl(
    util::ByteSpan frame, const std::shared_ptr<const void>& keepalive) {
  util::ByteReader reader(frame);
  MVTEE_RETURN_IF_ERROR(ConsumeTag(reader, MsgType::kInfer));
  InferMsg msg;
  if (!reader.ReadU64(msg.batch_id) || !reader.ReadU64(msg.vtime_us) ||
      !ReadSlots(reader, msg.slots)) {
    return util::InvalidArgument("malformed Infer");
  }
  MVTEE_RETURN_IF_ERROR(ReadTensors(reader, msg.inputs, keepalive));
  if (msg.slots.size() != msg.inputs.size() || !reader.done()) {
    return util::InvalidArgument("inconsistent Infer");
  }
  return msg;
}

util::Result<InferResultMsg> DecodeInferResultImpl(
    util::ByteSpan frame, const std::shared_ptr<const void>& keepalive) {
  util::ByteReader reader(frame);
  MVTEE_RETURN_IF_ERROR(ConsumeTag(reader, MsgType::kInferResult));
  InferResultMsg msg;
  uint8_t ok;
  if (!reader.ReadU64(msg.batch_id) || !reader.ReadU64(msg.vtime_us) ||
      !reader.ReadU8(ok)) {
    return util::InvalidArgument("malformed InferResult");
  }
  msg.ok = ok != 0;
  MVTEE_RETURN_IF_ERROR(ReadTensors(reader, msg.outputs, keepalive));
  if (!reader.ReadLengthPrefixedStr(msg.error) || !reader.done()) {
    return util::InvalidArgument("malformed InferResult tail");
  }
  return msg;
}
}  // namespace

util::Result<InferMsg> DecodeInfer(util::ByteSpan frame) {
  return DecodeInferImpl(frame, nullptr);
}

util::Result<InferMsg> DecodeInfer(const transport::InFrame& frame) {
  return DecodeInferImpl(frame.span(), frame.keepalive());
}

util::Result<InferResultMsg> DecodeInferResult(util::ByteSpan frame) {
  return DecodeInferResultImpl(frame, nullptr);
}

util::Result<InferResultMsg> DecodeInferResult(const transport::InFrame& frame) {
  return DecodeInferResultImpl(frame.span(), frame.keepalive());
}

util::Result<SetupRoutesMsg> DecodeSetupRoutes(util::ByteSpan frame) {
  util::ByteReader reader(frame);
  MVTEE_RETURN_IF_ERROR(ConsumeTag(reader, MsgType::kSetupRoutes));
  SetupRoutesMsg msg;
  uint32_t up_count;
  if (!reader.ReadU32(up_count) || up_count > 256) {
    return util::InvalidArgument("malformed SetupRoutes");
  }
  for (uint32_t i = 0; i < up_count; ++i) {
    UpstreamRoute up;
    if (!reader.ReadU64(up.pipe_id)) {
      return util::InvalidArgument("truncated upstream route");
    }
    msg.upstream.push_back(up);
  }
  uint32_t down_count;
  if (!reader.ReadU32(down_count) || down_count > 256) {
    return util::InvalidArgument("malformed SetupRoutes downstream");
  }
  for (uint32_t i = 0; i < down_count; ++i) {
    DownstreamRoute down;
    uint32_t pairs;
    if (!reader.ReadU64(down.pipe_id) || !reader.ReadU32(pairs) ||
        pairs > 1024) {
      return util::InvalidArgument("truncated downstream route");
    }
    for (uint32_t p = 0; p < pairs; ++p) {
      uint32_t output, slot;
      if (!reader.ReadU32(output) || !reader.ReadU32(slot)) {
        return util::InvalidArgument("truncated output map");
      }
      down.output_to_slot.push_back({output, slot});
    }
    msg.downstream.push_back(std::move(down));
  }
  uint8_t report;
  if (!reader.ReadU8(report) || !reader.done()) {
    return util::InvalidArgument("malformed SetupRoutes tail");
  }
  msg.report_to_monitor = report != 0;
  return msg;
}

util::Result<RoutesAckMsg> DecodeRoutesAck(util::ByteSpan frame) {
  util::ByteReader reader(frame);
  MVTEE_RETURN_IF_ERROR(ConsumeTag(reader, MsgType::kRoutesAck));
  RoutesAckMsg msg;
  uint8_t ok;
  if (!reader.ReadU8(ok) || !reader.ReadLengthPrefixedStr(msg.error) ||
      !reader.done()) {
    return util::InvalidArgument("malformed RoutesAck");
  }
  msg.ok = ok != 0;
  return msg;
}

namespace {
util::Result<StageDataMsg> DecodeStageDataImpl(
    util::ByteSpan frame, const std::shared_ptr<const void>& keepalive) {
  util::ByteReader reader(frame);
  MVTEE_RETURN_IF_ERROR(ConsumeTag(reader, MsgType::kStageData));
  StageDataMsg msg;
  if (!reader.ReadU64(msg.batch_id) || !reader.ReadU64(msg.vtime_us) ||
      !ReadSlots(reader, msg.slots)) {
    return util::InvalidArgument("malformed StageData");
  }
  MVTEE_RETURN_IF_ERROR(ReadTensors(reader, msg.tensors, keepalive));
  if (msg.slots.size() != msg.tensors.size() || !reader.done()) {
    return util::InvalidArgument("inconsistent StageData");
  }
  return msg;
}
}  // namespace

util::Result<StageDataMsg> DecodeStageData(util::ByteSpan frame) {
  return DecodeStageDataImpl(frame, nullptr);
}

util::Result<StageDataMsg> DecodeStageData(const transport::InFrame& frame) {
  return DecodeStageDataImpl(frame.span(), frame.keepalive());
}

namespace {
util::Result<SessionSubmitMsg> DecodeSessionSubmitImpl(
    util::ByteSpan frame, const std::shared_ptr<const void>& keepalive) {
  util::ByteReader reader(frame);
  MVTEE_RETURN_IF_ERROR(ConsumeTag(reader, MsgType::kSessionSubmit));
  SessionSubmitMsg msg;
  uint64_t deadline;
  uint32_t priority;
  if (!reader.ReadU64(msg.seq) || !reader.ReadU64(deadline) ||
      !reader.ReadU32(priority) ||
      !reader.ReadLengthPrefixedStr(msg.tenant) ||
      !reader.ReadLengthPrefixedStr(msg.model)) {
    return util::InvalidArgument("malformed SessionSubmit");
  }
  // A negative deadline is NOT a decode error: the server answers it
  // with kAdmissionRejected so the session (and its sequence space)
  // survives a client clock skew.
  msg.deadline_us = static_cast<int64_t>(deadline);
  msg.priority = static_cast<int32_t>(priority);
  MVTEE_RETURN_IF_ERROR(ReadTensors(reader, msg.inputs, keepalive));
  if (!reader.done()) return util::InvalidArgument("SessionSubmit tail");
  return msg;
}

util::Result<SessionReplyMsg> DecodeSessionReplyImpl(
    util::ByteSpan frame, const std::shared_ptr<const void>& keepalive) {
  util::ByteReader reader(frame);
  MVTEE_RETURN_IF_ERROR(ConsumeTag(reader, MsgType::kSessionReply));
  SessionReplyMsg msg;
  uint64_t latency;
  if (!reader.ReadU64(msg.seq) || !reader.ReadU8(msg.code) ||
      !reader.ReadU64(latency) ||
      msg.code > static_cast<uint8_t>(util::StatusCode::kHandshakeFailure) ||
      !reader.ReadLengthPrefixedStr(msg.error)) {
    return util::InvalidArgument("malformed SessionReply");
  }
  msg.latency_us = static_cast<int64_t>(latency);
  MVTEE_RETURN_IF_ERROR(ReadTensors(reader, msg.outputs, keepalive));
  if (!reader.done()) return util::InvalidArgument("SessionReply tail");
  return msg;
}
}  // namespace

util::Result<SessionSubmitMsg> DecodeSessionSubmit(util::ByteSpan frame) {
  return DecodeSessionSubmitImpl(frame, nullptr);
}

util::Result<SessionSubmitMsg> DecodeSessionSubmit(
    const transport::InFrame& frame) {
  return DecodeSessionSubmitImpl(frame.span(), frame.keepalive());
}

util::Result<SessionReplyMsg> DecodeSessionReply(util::ByteSpan frame) {
  return DecodeSessionReplyImpl(frame, nullptr);
}

util::Result<SessionReplyMsg> DecodeSessionReply(
    const transport::InFrame& frame) {
  return DecodeSessionReplyImpl(frame.span(), frame.keepalive());
}

util::Bytes EncodeTraceContext(const obs::TraceContext& ctx) {
  util::Bytes out;
  util::AppendU64(out, ctx.trace_id);
  util::AppendU64(out, ctx.span_id);
  return out;
}

util::Result<obs::TraceContext> DecodeTraceContext(util::ByteSpan header) {
  obs::TraceContext ctx;
  if (header.empty()) return ctx;  // headerless frame: no context
  util::ByteReader reader(header);
  if (!reader.ReadU64(ctx.trace_id) || !reader.ReadU64(ctx.span_id) ||
      !reader.done()) {
    return util::InvalidArgument("malformed trace-context header");
  }
  return ctx;
}

}  // namespace mvtee::core
