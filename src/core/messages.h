// Monitor <-> variant and variant <-> variant protocol messages
// (carried over SecureChannel / MsgChannel frames).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "crypto/sha256.h"
#include "obs/trace.h"
#include "tensor/tensor.h"
#include "transport/msg_channel.h"
#include "util/bytes.h"
#include "util/status.h"

namespace mvtee::core {

enum class MsgType : uint8_t {
  kAssignIdentity = 1,  // monitor -> variant: id + variant key
  kIdentityAck,         // variant -> monitor: locked manifest evidence
  kInfer,               // monitor -> variant: slot-addressed stage inputs
  kInferResult,         // variant -> monitor: outputs or an error
  kShutdown,            // monitor -> variant
  kSetupRoutes,         // monitor -> variant: fast-path wiring (Fig. 7)
  kRoutesAck,           // variant -> monitor
  kStageData,           // variant -> variant: direct fast-path tensors
  kProvision,           // owner -> monitor: MVX config + keys + nonce
  kProvisionResult,     // monitor -> owner: init outcome bound to nonce
  kAttestQuery,         // user/owner -> monitor: combined attestation
  kAttestReply,         // monitor -> user/owner: all bound TEE reports
  kSessionSubmit,       // client -> service: one inference request
  kSessionReply,        // service -> client: outputs or an error
};

struct AssignIdentityMsg {
  std::string variant_id;
  util::Bytes variant_key;
};

struct IdentityAckMsg {
  std::string variant_id;
  crypto::Sha256Digest manifest_hash{};  // installed second-stage manifest
  bool ok = false;
  std::string error;
};

// Stage inputs addressed by slot (= index into the stage subgraph's
// input list). A message may carry any subset of slots; the variant
// assembles a batch from monitor messages and direct upstream messages
// and runs once every slot is filled.
struct InferMsg {
  uint64_t batch_id = 0;
  // Virtual-time arrival stamp (performance model; see monitor.h).
  uint64_t vtime_us = 0;
  std::vector<uint32_t> slots;
  std::vector<tensor::Tensor> inputs;  // parallel to slots
};

struct InferResultMsg {
  uint64_t batch_id = 0;
  uint64_t vtime_us = 0;
  bool ok = false;
  std::vector<tensor::Tensor> outputs;
  std::string error;
};

// Fast-path routing (Fig. 7). Upstream entries describe pipes this
// variant consumes from; downstream entries describe pipes it produces
// into, with an (output index -> remote slot) map per pipe.
struct UpstreamRoute {
  uint64_t pipe_id = 0;
};
struct DownstreamRoute {
  uint64_t pipe_id = 0;
  std::vector<std::pair<uint32_t, uint32_t>> output_to_slot;
};
struct SetupRoutesMsg {
  std::vector<UpstreamRoute> upstream;
  std::vector<DownstreamRoute> downstream;
  // Whether full outputs must still be reported to the monitor (MVX
  // panels and stages producing model outputs).
  bool report_to_monitor = true;
};

struct RoutesAckMsg {
  bool ok = false;
  std::string error;
};

// Direct variant->variant payload: tensors addressed to consumer slots.
struct StageDataMsg {
  uint64_t batch_id = 0;
  uint64_t vtime_us = 0;
  std::vector<uint32_t> slots;
  std::vector<tensor::Tensor> tensors;  // parallel to slots
};

util::Bytes EncodeAssignIdentity(const AssignIdentityMsg& msg);
util::Bytes EncodeIdentityAck(const IdentityAckMsg& msg);
util::Bytes EncodeInfer(const InferMsg& msg);
util::Bytes EncodeInferResult(const InferResultMsg& msg);
util::Bytes EncodeShutdown();
util::Bytes EncodeSetupRoutes(const SetupRoutesMsg& msg);
util::Bytes EncodeRoutesAck(const RoutesAckMsg& msg);
util::Bytes EncodeStageData(const StageDataMsg& msg);

// ---- single-pass encoding (zero-copy data plane, DESIGN.md §10) ----
//
// EncodedSize() returns the exact length Encode*/Encode*Into produce
// for a message, so a sender can acquire one right-sized pooled buffer
// and write the whole record (header + payload) in a single pass.
// Encode*Into appends to `out`; tensor containers insert 0-3 zero pad
// bytes before each tensor so its float payload lands 4-byte aligned
// relative to the frame start (out.size() at entry) — the property
// that lets the receiver alias tensors in the opened record.
size_t EncodedSize(const AssignIdentityMsg& msg);
size_t EncodedSize(const IdentityAckMsg& msg);
size_t EncodedSize(const InferMsg& msg);
size_t EncodedSize(const InferResultMsg& msg);
size_t EncodedSizeShutdown();
size_t EncodedSize(const SetupRoutesMsg& msg);
size_t EncodedSize(const RoutesAckMsg& msg);
size_t EncodedSize(const StageDataMsg& msg);

void EncodeAssignIdentityInto(const AssignIdentityMsg& msg, util::Bytes& out);
void EncodeIdentityAckInto(const IdentityAckMsg& msg, util::Bytes& out);
void EncodeInferInto(const InferMsg& msg, util::Bytes& out);
void EncodeInferResultInto(const InferResultMsg& msg, util::Bytes& out);
void EncodeShutdownInto(util::Bytes& out);
void EncodeSetupRoutesInto(const SetupRoutesMsg& msg, util::Bytes& out);
void EncodeRoutesAckInto(const RoutesAckMsg& msg, util::Bytes& out);
void EncodeStageDataInto(const StageDataMsg& msg, util::Bytes& out);

// Encodes the message straight into the channel's pooled wire buffer
// (no intermediate frame) and sends it.
util::Status SendFrame(transport::MsgChannel& channel, const InferMsg& msg,
                       util::ByteSpan header = {});
util::Status SendFrame(transport::MsgChannel& channel,
                       const InferResultMsg& msg, util::ByteSpan header = {});
util::Status SendFrame(transport::MsgChannel& channel, const StageDataMsg& msg,
                       util::ByteSpan header = {});

// Zero-copy decode of a pooled frame: tensors in the result are views
// aliasing the frame's buffer (pinned via its keepalive), not copies.
util::Result<InferMsg> DecodeInfer(const transport::InFrame& frame);
util::Result<InferResultMsg> DecodeInferResult(const transport::InFrame& frame);
util::Result<StageDataMsg> DecodeStageData(const transport::InFrame& frame);

// ---- owner <-> monitor provisioning (Fig. 6 steps 2-3 and 8) ----

struct ProvisionMsg {
  util::Bytes nonce;              // anti-replay (Fig. 6 step 3)
  util::Bytes bundle_config;      // OfflineBundle::SerializeConfig()
  std::vector<std::vector<std::string>> stage_variant_ids;  // MVX config
};

struct ProvisionResultMsg {
  util::Bytes nonce;  // echoed for verification (Fig. 6 step 8)
  bool ok = false;
  std::string error;
  // Binding summary (variant id per stage, in binding order).
  std::vector<std::string> bound_variant_ids;
};

struct AttestQueryMsg {
  util::Bytes nonce;
};

struct AttestReplyMsg {
  util::Bytes nonce;
  // Serialized AttestationReports of every bound variant TEE (launch
  // measurements), attested collectively through the monitor.
  std::vector<util::Bytes> variant_reports;
};

// ---- client <-> service session requests (DESIGN.md §11) ----
//
// Carried over the per-session RA-TLS channel established by the
// inference service front end. The channel already binds a per-record
// monotonic sequence number into the AAD; `seq` additionally names the
// request inside the session's application-level sequence space, so the
// service can pair replies to requests and detect replayed/reordered
// Submit frames even if a future transport multiplexes records.

struct SessionSubmitMsg {
  uint64_t seq = 0;
  // Relative per-request budget, microseconds; 0 = no deadline. A
  // negative value decodes fine (it consumes the seq) and is rejected
  // at admission with kAdmissionRejected — an expired budget is a
  // client-side condition, not a malformed frame.
  int64_t deadline_us = 0;
  // Scheduling hints (DESIGN.md §13): plaintext-equivalent labels for
  // the multi-tenant scheduler. They steer WFQ/quota/EDF ordering only
  // and are never bound into the attested channel's AAD — a forged
  // label can skew fairness for the forging client, never integrity.
  std::string tenant;    // "" = shared default tenant
  int32_t priority = 0;  // higher dispatches earlier within a tenant
  std::string model;     // model-zoo route ("" = the service default)
  std::vector<tensor::Tensor> inputs;  // one model-input batch
};

struct SessionReplyMsg {
  uint64_t seq = 0;  // echoes the request
  uint8_t code = 0;  // util::StatusCode of the outcome
  int64_t latency_us = 0;  // admission -> completion, service clock
  std::string error;
  std::vector<tensor::Tensor> outputs;
};

size_t EncodedSize(const SessionSubmitMsg& msg);
size_t EncodedSize(const SessionReplyMsg& msg);
void EncodeSessionSubmitInto(const SessionSubmitMsg& msg, util::Bytes& out);
void EncodeSessionReplyInto(const SessionReplyMsg& msg, util::Bytes& out);
util::Bytes EncodeSessionSubmit(const SessionSubmitMsg& msg);
util::Bytes EncodeSessionReply(const SessionReplyMsg& msg);
util::Result<SessionSubmitMsg> DecodeSessionSubmit(util::ByteSpan frame);
util::Result<SessionSubmitMsg> DecodeSessionSubmit(
    const transport::InFrame& frame);
util::Result<SessionReplyMsg> DecodeSessionReply(util::ByteSpan frame);
util::Result<SessionReplyMsg> DecodeSessionReply(
    const transport::InFrame& frame);
util::Status SendFrame(transport::MsgChannel& channel,
                       const SessionSubmitMsg& msg,
                       util::ByteSpan header = {});
util::Status SendFrame(transport::MsgChannel& channel,
                       const SessionReplyMsg& msg,
                       util::ByteSpan header = {});

size_t EncodedSize(const ProvisionMsg& msg);
size_t EncodedSize(const ProvisionResultMsg& msg);
size_t EncodedSize(const AttestQueryMsg& msg);
size_t EncodedSize(const AttestReplyMsg& msg);
util::Bytes EncodeProvision(const ProvisionMsg& msg);
util::Bytes EncodeProvisionResult(const ProvisionResultMsg& msg);
util::Bytes EncodeAttestQuery(const AttestQueryMsg& msg);
util::Bytes EncodeAttestReply(const AttestReplyMsg& msg);
util::Result<ProvisionMsg> DecodeProvision(util::ByteSpan frame);
util::Result<ProvisionResultMsg> DecodeProvisionResult(util::ByteSpan frame);
util::Result<AttestQueryMsg> DecodeAttestQuery(util::ByteSpan frame);
util::Result<AttestReplyMsg> DecodeAttestReply(util::ByteSpan frame);

// Peeks the type tag; error on empty/unknown frames.
util::Result<MsgType> PeekType(util::ByteSpan frame);

// ---- cross-TEE trace-context header (DESIGN.md §8) ----
//
// Carried as the secure channel's *authenticated plaintext* record
// header alongside kInfer / kInferResult / kStageData frames: 16 bytes,
// trace_id(8) || span_id(8), big-endian. Integrity-protected via the
// record AAD; contains ids only, never model data. An empty header
// decodes to an invalid (all-zero) context.
util::Bytes EncodeTraceContext(const obs::TraceContext& ctx);
util::Result<obs::TraceContext> DecodeTraceContext(util::ByteSpan header);

// Overwrites the vtime field of an already-encoded kInfer/kInferResult/
// kStageData frame (fixed offset) — lets senders stamp virtual arrival
// times that depend on the encoded frame's size without re-encoding.
void PatchVtime(util::Bytes& frame, uint64_t vtime_us);

util::Result<AssignIdentityMsg> DecodeAssignIdentity(util::ByteSpan frame);
util::Result<IdentityAckMsg> DecodeIdentityAck(util::ByteSpan frame);
util::Result<InferMsg> DecodeInfer(util::ByteSpan frame);
util::Result<InferResultMsg> DecodeInferResult(util::ByteSpan frame);
util::Result<SetupRoutesMsg> DecodeSetupRoutes(util::ByteSpan frame);
util::Result<RoutesAckMsg> DecodeRoutesAck(util::ByteSpan frame);
util::Result<StageDataMsg> DecodeStageData(util::ByteSpan frame);

}  // namespace mvtee::core
