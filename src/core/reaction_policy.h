// ReactionPolicy: the monitor's divergence-response surface.
//
// The paper's monitor does not merely *detect* a compromised variant —
// it reacts (§4.3): quarantine the dissenter, re-provision it through
// the two-stage attestable bootstrap (Fig. 6), and keep serving from
// the surviving panel. This header unifies a retired response enum
// plus loose `MonitorConfig` knobs into a single
// value type describing the whole reaction, including the recovery
// loop's tuning (panel floor, probation length, bootstrap backoff and
// retry budget).
//
//   MonitorConfig cfg;
//   cfg.reaction = ReactionPolicy::Abort();              // fail fast
//   cfg.reaction = ReactionPolicy::ContinueWithWinner(); // serve winner
//   cfg.reaction = ReactionPolicy::Builder()             // full loop
//                      .QuarantineAndRestart()
//                      .MinPanel(2)
//                      .ProbationBatches(3)
//                      .DissentThreshold(1)
//                      .RetryBudget(2)
//                      .Backoff(/*initial_us=*/1'000, /*multiplier=*/2.0,
//                               /*max_us=*/5'000'000)
//                      .Build();
#pragma once

#include <cstdint>
#include <string_view>

namespace mvtee::core {

enum class ReactionKind : uint8_t {
  // Fail the run on any rejected vote or observed dissent.
  kAbort = 0,
  // Majority verdicts proceed with the winner; rejection still aborts.
  // Lost variants are never recovered.
  kContinueWithWinner,
  // Full recovery loop: dissenting/failed variants are quarantined (the
  // panel shrinks in place, down to `min_panel`), re-bootstrapped
  // through the attested two-stage protocol with capped exponential
  // backoff, and re-admitted after shadow-agreeing on
  // `probation_batches` checkpoints. Exhausting `retry_budget`
  // bootstrap attempts retires the variant permanently.
  kQuarantineAndRestart,
};

std::string_view ReactionKindName(ReactionKind kind);

class ReactionPolicyBuilder;

struct ReactionPolicy {
  ReactionKind kind = ReactionKind::kAbort;

  // --- kQuarantineAndRestart tuning (ignored by the other kinds) ---

  // Panel floor: a variant is only quarantined while the stage keeps at
  // least this many voting members afterwards. At the floor a failing
  // variant stays in the panel (dissenting every batch) rather than
  // shrinking it further.
  int min_panel = 1;
  // Checkpoints a re-bootstrapped variant must shadow-agree on (its
  // reports compared against the accepted outputs without voting)
  // before it rejoins the panel.
  int probation_batches = 2;
  // Cumulative dissent verdicts before a Suspect variant is
  // quarantined. 1 quarantines on the first dissent; the default gives
  // one strike (Healthy -> Suspect) before removal. Hard failures
  // (crash / recv timeout / channel auth) always quarantine
  // immediately.
  int dissent_threshold = 2;
  // Total bootstrap attempts per variant per run before it is Retired.
  int retry_budget = 3;
  // Capped exponential backoff between bootstrap attempts (wall-clock):
  // attempt n waits min(initial * multiplier^(n-1), max).
  int64_t initial_backoff_us = 1'000;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_us = 5'000'000;
  // When true (default) a quarantine-mode panel accepts on majority
  // even if configured kUnanimous — dissent still drives quarantine,
  // but the batch completes from the winning bloc. When false the
  // configured vote policy is enforced over the live panel.
  bool degrade_to_majority = true;

  static ReactionPolicy Abort() { return ReactionPolicy{}; }
  static ReactionPolicy ContinueWithWinner() {
    ReactionPolicy p;
    p.kind = ReactionKind::kContinueWithWinner;
    return p;
  }
  static ReactionPolicy QuarantineAndRestart() {
    ReactionPolicy p;
    p.kind = ReactionKind::kQuarantineAndRestart;
    return p;
  }

  // Fluent construction, mirroring MvxSelection::Builder.
  using Builder = ReactionPolicyBuilder;
};

class ReactionPolicyBuilder {
 public:
  ReactionPolicyBuilder& Abort();
  ReactionPolicyBuilder& ContinueWithWinner();
  ReactionPolicyBuilder& QuarantineAndRestart();
  ReactionPolicyBuilder& MinPanel(int floor);
  ReactionPolicyBuilder& ProbationBatches(int batches);
  ReactionPolicyBuilder& DissentThreshold(int dissents);
  ReactionPolicyBuilder& RetryBudget(int attempts);
  ReactionPolicyBuilder& Backoff(int64_t initial_us, double multiplier,
                                 int64_t max_us);
  ReactionPolicyBuilder& DegradeToMajority(bool degrade);

  ReactionPolicy Build() const { return policy_; }

 private:
  ReactionPolicy policy_;
};

}  // namespace mvtee::core
