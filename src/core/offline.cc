#include "core/offline.h"

#include "crypto/rand.h"

namespace mvtee::core {

std::string VariantManifestPath(const std::string& variant_id) {
  return "variants/" + variant_id + "/manifest";
}
std::string VariantSpecPath(const std::string& variant_id) {
  return "variants/" + variant_id + "/spec";
}
std::string VariantGraphPath(const std::string& variant_id) {
  return "variants/" + variant_id + "/graph";
}

std::vector<std::string> OfflineBundle::StageVariantIds(int32_t stage) const {
  std::vector<std::string> ids;
  for (const auto& v : variants) {
    if (v.stage == stage) ids.push_back(v.variant_id);
  }
  return ids;
}

const OfflineVariantEntry* OfflineBundle::FindVariant(
    const std::string& id) const {
  for (const auto& v : variants) {
    if (v.variant_id == id) return &v;
  }
  return nullptr;
}

namespace {
void AppendSource(util::Bytes& out, const partition::StageInputSource& src) {
  util::AppendU32(out, static_cast<uint32_t>(src.stage));
  util::AppendU32(out, static_cast<uint32_t>(src.index));
}

bool ReadSource(util::ByteReader& reader, partition::StageInputSource& src) {
  uint32_t stage, index;
  if (!reader.ReadU32(stage) || !reader.ReadU32(index)) return false;
  src.stage = static_cast<int32_t>(stage);
  src.index = static_cast<int32_t>(index);
  return true;
}
}  // namespace

util::Bytes OfflineBundle::SerializeConfig() const {
  util::Bytes out;
  util::AppendU32(out, 0x4d564f43);  // "MVOC"
  util::AppendU32(out, static_cast<uint32_t>(num_stages));
  util::AppendU32(out, static_cast<uint32_t>(num_model_inputs));
  util::AppendU32(out, static_cast<uint32_t>(stage_inputs.size()));
  for (const auto& sources : stage_inputs) {
    util::AppendU32(out, static_cast<uint32_t>(sources.size()));
    for (const auto& src : sources) AppendSource(out, src);
  }
  util::AppendU32(out, static_cast<uint32_t>(model_outputs.size()));
  for (const auto& src : model_outputs) AppendSource(out, src);
  util::AppendU32(out, static_cast<uint32_t>(variants.size()));
  for (const auto& v : variants) {
    util::AppendLengthPrefixedStr(out, v.variant_id);
    util::AppendU32(out, static_cast<uint32_t>(v.stage));
    util::AppendLengthPrefixed(out, v.variant_key);
    util::AppendBytes(out, util::ByteSpan(v.manifest_hash.data(),
                                          v.manifest_hash.size()));
    util::AppendLengthPrefixedStr(out, v.runtime_name);
  }
  return out;
}

util::Result<OfflineBundle> OfflineBundle::DeserializeConfig(
    util::ByteSpan data) {
  util::ByteReader reader(data);
  uint32_t magic;
  if (!reader.ReadU32(magic) || magic != 0x4d564f43) {
    return util::InvalidArgument("bad bundle-config magic");
  }
  OfflineBundle bundle;
  uint32_t stages, inputs, stage_input_count;
  if (!reader.ReadU32(stages) || !reader.ReadU32(inputs) ||
      !reader.ReadU32(stage_input_count) || stages > 1024 ||
      stage_input_count != stages) {
    return util::InvalidArgument("malformed bundle config header");
  }
  bundle.num_stages = stages;
  bundle.num_model_inputs = inputs;
  for (uint32_t s = 0; s < stages; ++s) {
    uint32_t count;
    if (!reader.ReadU32(count) || count > 4096) {
      return util::InvalidArgument("malformed stage inputs");
    }
    std::vector<partition::StageInputSource> sources(count);
    for (auto& src : sources) {
      if (!ReadSource(reader, src)) {
        return util::InvalidArgument("truncated stage input");
      }
    }
    bundle.stage_inputs.push_back(std::move(sources));
  }
  uint32_t outputs;
  if (!reader.ReadU32(outputs) || outputs > 4096) {
    return util::InvalidArgument("malformed outputs");
  }
  bundle.model_outputs.resize(outputs);
  for (auto& src : bundle.model_outputs) {
    if (!ReadSource(reader, src)) {
      return util::InvalidArgument("truncated output");
    }
  }
  uint32_t variant_count;
  if (!reader.ReadU32(variant_count) || variant_count > 65536) {
    return util::InvalidArgument("malformed variants");
  }
  for (uint32_t i = 0; i < variant_count; ++i) {
    OfflineVariantEntry entry;
    uint32_t stage;
    util::Bytes digest;
    if (!reader.ReadLengthPrefixedStr(entry.variant_id) ||
        !reader.ReadU32(stage) ||
        !reader.ReadLengthPrefixed(entry.variant_key) ||
        !reader.ReadBytes(crypto::kSha256DigestSize, digest) ||
        !reader.ReadLengthPrefixedStr(entry.runtime_name)) {
      return util::InvalidArgument("truncated variant entry");
    }
    entry.stage = static_cast<int32_t>(stage);
    std::copy(digest.begin(), digest.end(), entry.manifest_hash.begin());
    bundle.variants.push_back(std::move(entry));
  }
  if (!reader.done()) return util::InvalidArgument("trailing config bytes");
  return bundle;
}

util::Status OfflineBundle::RotateVariantKey(const std::string& variant_id,
                                             crypto::RandomSource& random) {
  OfflineVariantEntry* entry = nullptr;
  for (auto& v : variants) {
    if (v.variant_id == variant_id) entry = &v;
  }
  if (entry == nullptr) return util::NotFound("variant '" + variant_id + "'");
  if (store == nullptr) {
    return util::FailedPrecondition("bundle has no store attached");
  }
  const util::Bytes old_key =
      tee::DeriveVariantFileKey(entry->variant_key, variant_id);
  const util::Bytes new_variant_key = random.Generate(32);
  const util::Bytes new_key =
      tee::DeriveVariantFileKey(new_variant_key, variant_id);
  for (const std::string& path :
       {VariantManifestPath(variant_id), VariantSpecPath(variant_id),
        VariantGraphPath(variant_id)}) {
    MVTEE_ASSIGN_OR_RETURN(util::Bytes plaintext,
                           store->Get(path, old_key));
    MVTEE_RETURN_IF_ERROR(store->Put(path, plaintext, new_key));
  }
  entry->variant_key = new_variant_key;
  return util::OkStatus();
}

util::Result<OfflineBundle> RunOfflineTool(const graph::Graph& model,
                                           const OfflineOptions& options) {
  // 1. Partition (random-balanced, best-of-N).
  partition::PartitionOptions popts;
  popts.target_partitions = options.num_partitions;
  popts.seed = options.partition_seed;
  MVTEE_ASSIGN_OR_RETURN(
      partition::PartitionSet set,
      partition::BestOfRandomContraction(model, popts,
                                         options.partition_trials));
  MVTEE_ASSIGN_OR_RETURN(partition::PartitionedModel pm,
                         partition::BuildPartitionedModel(model, set));

  // 2. Variant pool with multi-level diversification.
  MVTEE_ASSIGN_OR_RETURN(auto pools,
                         variant::BuildVariantPool(pm, options.pool));

  // 3. Keys + encrypted private files.
  OfflineBundle bundle;
  bundle.num_stages = pm.num_stages();
  bundle.num_model_inputs = 0;
  for (const auto& sources : pm.stage_inputs) {
    for (const auto& src : sources) {
      if (src.stage < 0) {
        bundle.num_model_inputs =
            std::max<int64_t>(bundle.num_model_inputs, src.index + 1);
      }
    }
  }
  bundle.stage_inputs = pm.stage_inputs;
  bundle.model_outputs = pm.model_outputs;
  bundle.partition_set = std::move(set);
  bundle.store = std::make_shared<tee::ProtectedStore>();

  std::unique_ptr<crypto::RandomSource> deterministic;
  crypto::RandomSource* keygen = &crypto::GlobalRandom();
  if (options.key_seed != 0) {
    deterministic =
        std::make_unique<crypto::DeterministicRandom>(options.key_seed);
    keygen = deterministic.get();
  }

  for (size_t si = 0; si < pools.size(); ++si) {
    for (size_t vi = 0; vi < pools[si].variants.size(); ++vi) {
      const variant::VariantBundle& vb = pools[si].variants[vi];
      OfflineVariantEntry entry;
      entry.variant_id =
          "s" + std::to_string(si) + ".v" + std::to_string(vi);
      entry.stage = static_cast<int32_t>(si);
      entry.variant_key = keygen->Generate(32);
      entry.runtime_name = vb.spec.exec_config.name;

      // Second-stage manifest: inference-only surface, private files
      // marked encrypted.
      tee::Manifest manifest = tee::MainVariantManifest();
      manifest.encrypted_files = {VariantManifestPath(entry.variant_id),
                                  VariantSpecPath(entry.variant_id),
                                  VariantGraphPath(entry.variant_id)};
      entry.manifest_hash = manifest.Hash();

      util::Bytes file_key =
          tee::DeriveVariantFileKey(entry.variant_key, entry.variant_id);
      MVTEE_RETURN_IF_ERROR(bundle.store->Put(
          VariantManifestPath(entry.variant_id), manifest.Serialize(),
          file_key));
      MVTEE_RETURN_IF_ERROR(bundle.store->Put(
          VariantSpecPath(entry.variant_id), vb.spec.Serialize(), file_key));
      MVTEE_RETURN_IF_ERROR(bundle.store->Put(
          VariantGraphPath(entry.variant_id), vb.graph.Serialize(),
          file_key));
      bundle.variants.push_back(std::move(entry));
    }
  }
  return bundle;
}

}  // namespace mvtee::core
