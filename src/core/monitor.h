// The MVTEE monitor (paper §4.3, §5.2): security manager and dataflow
// hub of the runtime system.
//
// Responsibilities implemented here:
//  - attestable variant initialization and updates (Fig. 6): attest each
//    init-variant, assign its key + identity, verify the locked
//    second-stage manifest evidence, bind the connection;
//  - input distribution, checkpoint synchronization and output
//    replication across the partition pipeline;
//  - the slow/fast path design (Fig. 7): stages with several active
//    variants take the slow path (checkpoint sync + vote at the
//    monitor); single-variant stages take the fast path, optionally with
//    direct variant-to-variant channels that bypass the monitor
//    entirely (`direct_fastpath`);
//  - selective MVX (vertical/horizontal scaling of the MVX config);
//  - sync and asynchronous cross-validation execution modes (Fig. 8);
//  - sequential and pipelined batch execution;
//  - divergence reaction (ReactionPolicy: abort, continue-with-winner,
//    or quarantine + attested re-bootstrap via the lifecycle
//    supervisor) and statistics.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/consistency.h"
#include "core/messages.h"
#include "core/offline.h"
#include "core/reaction_policy.h"
#include "core/scheduler.h"
#include "core/supervisor.h"
#include "core/variant_host.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor.h"
#include "transport/msg_channel.h"
#include "util/status.h"

namespace mvtee::core {

enum class ExecMode : uint8_t { kSync = 0, kAsync };

struct MonitorConfig {
  CheckPolicy check = CheckPolicy::Cosine(0.995);
  VotePolicy vote = VotePolicy::kUnanimous;
  ExecMode mode = ExecMode::kSync;
  // How the monitor reacts to divergence and variant failure: abort the
  // run, continue with the winner, or quarantine + re-bootstrap the
  // dissenting variant (full recovery loop — see reaction_policy.h).
  ReactionPolicy reaction = ReactionPolicy::Abort();
  // Fast-path stages stream outputs directly to the next partition's
  // variants over dedicated secure channels instead of via the monitor.
  bool direct_fastpath = false;
  // Force the slow path on single-variant stages: the monitor suspends
  // at every checkpoint and evaluates the outputs against predefined
  // rules (finiteness / shape sanity) before forwarding. Used by the
  // checkpointing-overhead ablation (Fig. 10); requires monitor-mediated
  // routing (direct_fastpath = false).
  bool verify_fast_path = false;
  int64_t recv_timeout_us = 30'000'000;
  // Legacy busy-poll slice. Unused since the event loop became evented
  // (it blocks on a transport::WaitSet instead of sleeping); kept so
  // existing configs still compile.
  int64_t poll_slice_us = 50;
  // Worker threads for MVX cross-validation (Vote / pairwise
  // consistency). 0 runs verification inline on the ingestion thread
  // (deterministic; the pre-evented behavior).
  int verify_threads = 2;
  // Hash each reported output list once on ingestion and short-circuit
  // pairwise element-wise checks when digests match (byte-identical
  // replicas) — the all-agree case becomes O(k) hashes, not O(k²) scans.
  bool digest_prefilter = true;
  // Fault-injection seam: called once per event-loop iteration, right
  // after the monitor.loop_heartbeat increment. A test hook that blocks
  // here simulates a wedged event loop (the stall the watchdog exists
  // to catch). Null in production.
  std::function<void()> loop_tick_hook;
};

// Which pool variants the monitor activates per stage ("MVX
// configuration": vertical scaling = stages with >1 id, horizontal
// scaling = number of ids per stage).
struct MvxSelection {
  std::vector<std::vector<std::string>> stage_variant_ids;

  // Convenience: first `variants_per_stage` pool variants per stage.
  static MvxSelection Uniform(const OfflineBundle& bundle,
                              int variants_per_stage);
  // `counts[i]` variants for stage i (1 = fast path only).
  static MvxSelection PerStage(const OfflineBundle& bundle,
                               const std::vector<int>& counts);

  // Fluent construction for selective-MVX tuning:
  //
  //   auto sel = MvxSelection::Builder()
  //                  .Uniform(1)                    // default per stage
  //                  .Stage(2, 3)                   // 3-variant panel
  //                  .Stage(0, {"s0.v1", "s0.v3"})  // named variants
  //                  .Build(bundle);
  //
  // Unspecified stages take the Uniform() default (1 when unset);
  // counts are clamped to the pool size like PerStage().
  class Builder {
   public:
    // Explicit variant ids for one stage (overrides any count).
    Builder& Stage(int32_t stage, std::vector<std::string> ids);
    // Panel size for one stage.
    Builder& Stage(int32_t stage, int count);
    // Default panel size for every stage not named explicitly.
    Builder& Uniform(int variants_per_stage);

    MvxSelection Build(const OfflineBundle& bundle) const;

   private:
    int default_count_ = 1;
    std::map<int32_t, std::vector<std::string>> explicit_ids_;
    std::map<int32_t, int> counts_;
  };
};

struct RunStats {
  int64_t wall_us = 0;
  std::vector<int64_t> batch_latency_us;
  // Cross-validation CPU attributed per batch (admission order, one
  // slot per batch of the run). Feeds the per-request verify phase of
  // the latency breakdown; not part of ConsumeStats deltas.
  std::vector<int64_t> batch_verify_us;
  uint64_t checkpoints_evaluated = 0;  // slow-path votes
  uint64_t fast_path_forwards = 0;     // unverified stage traversals
  uint64_t divergences = 0;            // dissent observed at a checkpoint
  uint64_t late_divergences = 0;       // async straggler dissent
  uint64_t variant_failures = 0;       // crashed / error results
  uint64_t bytes_sent = 0;             // monitor -> variants (wire)

  double ThroughputPerSec() const {
    if (wall_us <= 0 || batch_latency_us.empty()) return 0.0;
    return static_cast<double>(batch_latency_us.size()) * 1e6 /
           static_cast<double>(wall_us);
  }
  double MeanLatencyUs() const {
    if (batch_latency_us.empty()) return 0.0;
    int64_t sum = 0;
    for (int64_t v : batch_latency_us) sum += v;
    return static_cast<double>(sum) /
           static_cast<double>(batch_latency_us.size());
  }
};

// Per-call options for Monitor::Run — the batch-vector compatibility
// wrapper over the long-lived request loop (see Session below).
struct RunOptions {
  // false: batches admitted strictly one after another (next admitted
  // only once the previous completed). true: all batches streamed
  // through the pipeline simultaneously.
  bool pipelined = false;
  // Per-call wall-clock budget for the whole run, microseconds. 0 =
  // unbounded (the config's idle recv_timeout_us still applies either
  // way). Exceeding it fails the run with kDeadlineExceeded.
  int64_t deadline_us = 0;
  // Optional stats-snapshot handle: filled with this call's own stats
  // (a per-run delta) without consuming the monitor's cumulative
  // stats — ConsumeStats() is unaffected.
  RunStats* stats = nullptr;
  // Optional out-param: the distributed-trace id minted for each batch
  // (admission order). Lets the request loop hand trace-id exemplars
  // back to per-request timelines.
  std::vector<uint64_t>* trace_ids = nullptr;
};

// ---- long-lived request API (service front end, DESIGN.md §11) ----
//
// The monitor's execution engine is driven by a single service loop:
// clients open Sessions and Submit individual requests; the loop admits
// queued requests in coalesced pipelined groups through the MVX
// pipeline. Monitor::Run(batches) is a thin compatibility wrapper that
// opens an internal session, submits the whole batch vector as one
// admission group, and drains it — byte-identical semantics to the old
// one-shot entry point.

// One inference request: a single model-input batch plus scheduling
// metadata (tenant / priority / model routing) and an optional
// relative wall-clock budget.
struct InferenceRequest {
  std::vector<tensor::Tensor> inputs;
  // Microseconds from submission; 0 = no deadline (end to end: the
  // request is never expired). Negative values are rejected at Submit
  // with kAdmissionRejected — an already-expired deadline must not
  // enter the pipeline. A request whose deadline passes while it waits
  // in the admission queue fails with kDeadlineExceeded; one that
  // completes after its deadline is still answered, but counted in
  // scheduler.deadline_misses_total.
  int64_t deadline_us = 0;
  // Tenant label for fair queuing and per-tenant quotas. A plaintext
  // scheduling hint: it never enters the attested channel's AAD and
  // grants no authority (DESIGN.md §13). "" schedules as one shared
  // tenant.
  std::string tenant;
  // Higher dispatches earlier among equal-deadline work.
  int32_t priority = 0;
  // Model-zoo routing key for multi-model front ends
  // (service::Scheduler); ignored by a single-model Monitor.
  std::string model;
};

struct InferenceResponse {
  util::Status status;
  std::vector<tensor::Tensor> outputs;
  uint64_t seq = 0;        // the request's position in its session
  int64_t latency_us = 0;  // submission -> completion, wall clock
  // Server-side distributed-trace id of the batch this request rode in
  // (0 when it never reached the pipeline). Not part of the wire reply;
  // the service front end uses it to stamp timelines and logs.
  uint64_t trace_id = 0;
};

// Configuration of the monitor's request loop, split into front-end
// admission settings (here) and the batch-formation policy
// (SchedulerConfig — continuous batching, WFQ/quota fairness, EDF;
// see core/scheduler.h). The former ServiceConfig::max_inflight is
// now SchedulerConfig::max_batch.
struct ServiceConfig {
  // Submissions queued beyond this bound are rejected with
  // kAdmissionRejected (bounded backpressure; counted in
  // service.rejected_total). Legacy Run() groups are exempt — they
  // carry their own caller-side flow control.
  size_t admission_queue_max = 64;
  // Batch formation: continuous admission, max concurrent pipeline
  // slots, batch window, per-tenant quota/weights, EDF.
  SchedulerConfig scheduler;
};

namespace internal {
struct ServiceState;
}  // namespace internal

// A client-facing request handle bound to one session: Submit stamps
// each request with the session's next application-level sequence
// number (the per-session sequence space layered above the secure
// channel's per-record seq||header AAD binding) and returns a future
// that resolves when the request clears the pipeline. A Session is
// driven from one thread at a time; distinct Sessions are independent
// and may submit concurrently.
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Stamps the next sequence number and submits. Fails fast (no future)
  // with kAdmissionRejected when the queue is full, kUnavailable when
  // the service is stopped, kReplayDetected once the session aborted.
  util::Result<std::future<InferenceResponse>> Submit(
      InferenceRequest request);

  // Wire-facing form: the caller (the service front end decoding
  // kSessionSubmit frames) supplies the sequence number. A repeat or
  // gap aborts the whole session with kReplayDetected — a replayed
  // Submit frame must not yield a second execution.
  util::Result<std::future<InferenceResponse>> SubmitSequenced(
      InferenceRequest request, uint64_t seq);

  // Unregisters the session (service.sessions_active drops). Queued
  // requests still complete; further Submits fail. Idempotent.
  void Close();

  uint64_t id() const { return id_; }

 private:
  friend class Monitor;
  Session(std::shared_ptr<internal::ServiceState> state, uint64_t id);

  std::shared_ptr<internal::ServiceState> state_;
  uint64_t id_ = 0;
  uint64_t next_seq_ = 0;
};

class Monitor {
 public:
  // The monitor runs inside its own (small, integrity-protected) TEE.
  static util::Result<std::unique_ptr<Monitor>> Create(
      tee::SimulatedCpu* cpu, MonitorConfig config,
      tee::TeeType tee_type = tee::TeeType::kSgx1);

  ~Monitor();

  // Fig. 6 steps 4-7: spawn, attest, key, bind every selected variant;
  // then configure fast-path routing per MonitorConfig.
  util::Status Initialize(const OfflineBundle& bundle,
                          const MvxSelection& selection, VariantHost& host);

  // Partial update (§4.3): tears down one stage's variants and rebinds a
  // new selection for it; bindings are appended for audit. Not available
  // with direct_fastpath routing (pipes would need re-brokering).
  util::Status UpdateStage(const OfflineBundle& bundle, VariantHost& host,
                           int32_t stage,
                           const std::vector<std::string>& variant_ids);

  // Full update: reinitialize every stage from a (possibly new) bundle.
  util::Status FullUpdate(const OfflineBundle& bundle,
                          const MvxSelection& selection, VariantHost& host);

  // Starts the long-lived request loop (idempotent; requires an
  // initialized monitor). Run() and OpenSession() start it lazily with
  // a default ServiceConfig when needed.
  util::Status StartService(const ServiceConfig& config = ServiceConfig{});

  // Stops the request loop: still-queued requests fail with
  // kUnavailable, in-flight groups finish, the loop thread joins.
  // Idempotent; implied by Initialize/UpdateStage/FullUpdate/Shutdown
  // so reconfiguration always sees a quiesced pipeline.
  void StopService();

  // Opens a session against the request loop. Sessions may outlive a
  // stopped service (their Submits then fail with kUnavailable).
  util::Result<std::unique_ptr<Session>> OpenSession();

  // DEPRECATED compatibility wrapper over the request loop — use
  // OpenSession() + Session::Submit instead (README has the old→new
  // migration table). Kept one release for existing callers; new code
  // and all in-tree examples/benches use the session API.
  //
  // Opens an internal session, submits `batches` as ONE admission
  // group executed exactly like the old one-shot call (same options,
  // same stats), and drains.
  //
  //   Run({inputs})                                  — one batch
  //   Run(batches)                                   — sequential: each
  //     batch admitted only once the previous one completed
  //   Run(batches, RunOptions{.pipelined = true})    — all batches
  //     streamed through the pipeline simultaneously
  //
  // StartService/StopService/OpenSession/Run are control-plane calls:
  // drive them from one thread. Session::Submit on open sessions is
  // safe from any thread.
  util::Result<std::vector<std::vector<tensor::Tensor>>> Run(
      const std::vector<std::vector<tensor::Tensor>>& batches,
      const RunOptions& options = RunOptions{});

  util::Status Shutdown();

  // Point-in-time view of the request loop, served read-only by the
  // admin /status endpoint. Safe from any thread; cheap (two brief
  // lock acquisitions, no pipeline interaction).
  struct ServiceStatusSnapshot {
    bool running = false;    // loop thread alive
    bool accepting = false;  // admitting new submits
    size_t queue_depth = 0;  // queued (non-legacy) submits
    size_t queue_max = 0;
    size_t max_batch = 0;    // concurrent pipeline slots (scheduler)
    // Scheduler policy in force (for /status).
    bool continuous = false;
    bool edf = false;
    int64_t batch_window_us = 0;
    int tenant_quota_pct = 100;
    struct SessionStatus {
      uint64_t id = 0;
      uint64_t next_seq = 0;  // next expected sequence number
      bool aborted = false;   // condemned by a sequence violation
    };
    std::vector<SessionStatus> sessions;
  };
  ServiceStatusSnapshot ServiceStatus();

  // Snapshot-and-reset of the cumulative run statistics, sourced from
  // the metrics registry (delta since the previous consume).
  RunStats ConsumeStats();
  // Registry every monitor metric is recorded into (process default).
  obs::Registry& metrics() const { return *metrics_; }
  const MonitorConfig& config() const { return config_; }
  const tee::Enclave& enclave() const { return *enclave_; }

  // Lifecycle supervisor (present only under
  // ReactionKind::kQuarantineAndRestart); per-variant lifecycle state,
  // quarantine/readmission counters. Stable across runs until the next
  // Initialize/UpdateStage.
  const Supervisor* supervisor() const { return supervisor_.get(); }

  // Audit log of variant bindings ("appending-only for auditing").
  struct Binding {
    int32_t stage;
    std::string variant_id;
    uint64_t enclave_report_id;
    bool active;
    // Serialized attestation report captured at binding time (empty on
    // plaintext channels). Served to users via combined attestation.
    util::Bytes report;
  };
  std::vector<Binding> bindings() const;

 private:
  Monitor(std::unique_ptr<tee::Enclave> enclave, tee::SimulatedCpu* cpu,
          MonitorConfig config);

  struct VariantConn {
    std::string id;
    std::unique_ptr<transport::MsgChannel> channel;
  };
  // Per-stage observability instruments, resolved once at Initialize so
  // the event loop updates them without registry lookups.
  struct StageMetrics {
    obs::Histogram* verify_us = nullptr;   // checkpoint-verify time
    obs::Histogram* forward_us = nullptr;  // monitor-mediated forward time
    obs::Counter* wire_us = nullptr;       // modeled wire time, outbound
    obs::Counter* crypto_us = nullptr;     // modeled seal+open time, outbound
    obs::Counter* bytes = nullptr;         // outbound payload bytes
  };
  struct StageState {
    std::vector<VariantConn> variants;
    StageMetrics metrics;
    bool is_mvx() const { return variants.size() > 1; }
  };

  // Monitor-mediated forwarding target: consumer stage + slot map.
  struct ForwardTarget {
    int32_t consumer_stage;
    // (producer output index -> consumer slot)
    std::vector<std::pair<uint32_t, uint32_t>> output_to_slot;
  };

  util::Result<VariantConn> BindVariant(const OfflineBundle& bundle,
                                        VariantHost& host,
                                        const std::string& variant_id);

  util::Status ConfigureRoutes(VariantHost& host);

  // Supervisor-driven repair: re-runs the two-stage attested bootstrap
  // for a quarantined slot against the retained bundle/host (fresh TEE,
  // new session keys, re-verified second-stage manifest). On success
  // the slot enters probation; on failure the supervisor schedules the
  // next backoff step or retires the slot.
  void RebootstrapSlot(size_t stage, size_t vi);

  // Marks the audit-log binding of a quarantined/retired variant
  // inactive (the replacement is appended by BindVariant).
  void DeactivateBinding(int32_t stage, const std::string& variant_id);

  // Continuous-feed hooks for RunStream: when non-null, the stream
  // starts empty and pulls work from the feed whenever a pipeline slot
  // frees, delivering each batch's result as soon as it completes (no
  // full-queue barrier). Completed batch state is garbage-collected
  // behind a sliding window. Legacy Run() passes run with feed ==
  // nullptr and keep their one-shot semantics.
  struct StreamFeed {
    // Concurrent pipeline slots (SchedulerConfig::max_batch).
    size_t max_inflight = 1;
    // Pulls up to free_slots new batches (scheduler formation). Each
    // appended batch is admitted immediately with the next batch
    // index. Returns the number appended.
    std::function<size_t(size_t free_slots,
                         std::vector<std::vector<tensor::Tensor>>* out)>
        refill;
    // Delivers batch `b` (stream-local index) on the monitor thread
    // the moment it completes.
    std::function<void(size_t b, std::vector<tensor::Tensor> outputs,
                       int64_t verify_us, uint64_t trace_id)>
        deliver;
    // True once the stream should stop pulling and return when the
    // last inflight batch drains (service stopping, legacy group at
    // the queue head, or the queue went idle).
    std::function<bool()> quiesce;
    // Earliest absolute wall time the feed wants a refill poll (batch
    // window expiry); 0 = none.
    std::function<int64_t()> next_wake_us;
  };

  // The event-driven engine behind the request loop: one admission
  // group = one call (feed == nullptr), or one long-lived continuous
  // serving stream (feed != nullptr).
  util::Result<std::vector<std::vector<tensor::Tensor>>> RunStream(
      const std::vector<std::vector<tensor::Tensor>>& batches,
      const RunOptions& options, StreamFeed* feed = nullptr);

  // The request loop body (service thread): runs continuous serving
  // streams (scheduler-formed batches through RunStream's feed hooks)
  // and interleaves exclusive legacy Run() passes.
  void ServiceLoop();

  // One continuous serving stream: admits scheduler-formed requests
  // until quiesced (stop / legacy barrier / idle queue). Returns the
  // stream's terminal status (OK on a clean quiesce).
  util::Status ServeStream(BatchFormer& former);

  // Resolves the monitor-level and per-stage metric instruments.
  void BindMetrics();

  // Current cumulative counter values (no latencies); the baseline that
  // ConsumeStats() subtracts.
  RunStats RegistryBaseline() const;

  std::unique_ptr<tee::Enclave> enclave_;
  tee::SimulatedCpu* cpu_;
  MonitorConfig config_;

  std::vector<StageState> stages_;
  std::vector<std::vector<partition::StageInputSource>> stage_inputs_;
  std::vector<partition::StageInputSource> model_outputs_;
  int64_t num_model_inputs_ = 0;
  bool initialized_ = false;
  bool routes_configured_ = false;

  // Derived routing (built by ConfigureRoutes).
  // Per stage: slots fed by model inputs (slot -> model input index).
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> model_input_slots_;
  // Per producer stage: monitor-mediated forwarding targets.
  std::vector<std::vector<ForwardTarget>> monitor_forwards_;
  // Per stage: does the monitor expect kInferResult reports from it?
  std::vector<bool> stage_reports_;
  size_t num_fast_path_stages_ = 0;
  // Per stage: how many distinct input sends (model-input admit + one
  // per producer forward) a batch needs before the stage has all its
  // inputs. Used to tell "variant is owed a report" from "inputs not
  // dispatched yet" when a recv timeout is being classified.
  std::vector<size_t> stage_feed_count_;

  // Recovery loop (ReactionKind::kQuarantineAndRestart): lifecycle
  // state machine plus the provisioning material needed to re-run the
  // two-stage bootstrap mid-run. The host must outlive the monitor
  // while the quarantine reaction is configured.
  std::unique_ptr<Supervisor> supervisor_;
  OfflineBundle lifecycle_bundle_;
  VariantHost* lifecycle_host_ = nullptr;

  // Observability: all monitor counters live in the metrics registry;
  // ConsumeStats() reads them as a delta against `consumed_base_`.
  // Per-batch latencies additionally keep an exact per-run list (the
  // registry histogram only retains aggregates).
  obs::Registry* metrics_ = &obs::Registry::Default();
  struct MonitorMetrics {
    obs::Counter* checkpoints_evaluated = nullptr;
    obs::Counter* fast_path_forwards = nullptr;
    obs::Counter* divergences = nullptr;
    obs::Counter* late_divergences = nullptr;
    obs::Counter* variant_failures = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* wall_us = nullptr;
    obs::Counter* batches_completed = nullptr;
    obs::Histogram* batch_latency_us = nullptr;
    obs::Histogram* attest_us = nullptr;
    // Wall-clock cost of one supervisor-driven attested re-bootstrap
    // (spawn + attest + handshake + identity + manifest evidence).
    obs::Histogram* rebootstrap_us = nullptr;
    // Evented-loop instruments: time spent blocked waiting for events
    // vs. cross-validation work, verify-pool backlog, and digest
    // prefilter effectiveness.
    obs::Histogram* wait_us = nullptr;
    obs::Histogram* verify_job_us = nullptr;
    obs::Gauge* verify_queue_depth = nullptr;
    obs::Counter* prefilter_hits = nullptr;
    obs::Counter* full_checks = nullptr;
    // Lifetime instruments, never reset by ConsumeStats: cumulative
    // divergence count (all classes) and the deepest verify-pool
    // backlog ever observed.
    obs::Counter* divergences_total = nullptr;
    obs::Gauge* verify_queue_depth_hwm = nullptr;
    // Liveness beacon: bumped once per request-loop and event-loop
    // iteration. The stall watchdog samples it; sustained silence while
    // work is pending means the loop is wedged.
    obs::Counter* loop_heartbeat = nullptr;
  };
  MonitorMetrics m_{};
  mutable std::mutex stats_mu_;
  std::vector<int64_t> pending_latencies_;  // since last ConsumeStats
  RunStats consumed_base_;                  // counter values at last consume
  std::atomic<uint64_t> next_batch_id_{0};

  // Readiness set shared by every variant channel and the verify pool;
  // the run loop blocks on it instead of busy-polling.
  std::shared_ptr<transport::WaitSet> wait_set_ =
      std::make_shared<transport::WaitSet>();

  // Virtual-time performance model (see DESIGN.md §2): the monitor's own
  // timeline, advanced by measured thread-CPU work; wire delays come
  // from the host's network cost model captured at Initialize.
  int64_t vclock_us_ = 0;
  transport::NetworkCostModel network_{};
  double crypto_bytes_per_us_ = 0.0;

  mutable std::mutex bindings_mu_;
  std::vector<Binding> bindings_;

  // Request-loop state (shared with Sessions, which may outlive a
  // stopped service) and the loop thread. service_ctl_mu_ guards the
  // start/stop control path so session threads can OpenSession safely.
  std::mutex service_ctl_mu_;
  std::shared_ptr<internal::ServiceState> service_;
  std::thread service_thread_;
  bool service_running_ = false;
  ServiceConfig service_config_;
};

}  // namespace mvtee::core
