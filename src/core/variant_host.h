// Variant TEE host: the untrusted orchestrator's role (Fig. 6 step 1).
//
// Spawns variant TEEs as isolated execution domains (one thread per
// enclave, message-passing only) loaded with the public init-variant and
// its first-stage manifest. Everything variant-specific arrives later,
// encrypted, through the monitor's initialization protocol — the host
// never sees plaintext variant content (two-stage bootstrap, §4.3).
//
// The host doubles as the experiment's adversary surface: it can attach
// fault hooks to variants and gets raw access to the shared protected
// store and channels.
#pragma once

#include <map>
#include <optional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/executor.h"
#include "tee/enclave.h"
#include "tee/sealed_fs.h"
#include "transport/channel.h"
#include "util/status.h"

namespace mvtee::core {

class VariantHost {
 public:
  struct Options {
    transport::NetworkCostModel network = transport::NetworkCostModel::Free();
    // Virtual-time cost of AEAD record protection, bytes per microsecond
    // (seal + open are charged once each per boundary message). Default
    // calibrated to AES-NI GCM (~2.3 GB/s), the paper testbed's rate;
    // the simulation host's portable software GCM (~36 MB/s) is excluded
    // from virtual charges. 0 disables the charge.
    double crypto_bytes_per_us = 2300.0;
    // Plaintext channels (encryption-overhead ablation only).
    bool plaintext_channels = false;
    size_t variant_epc_pages = 4096;
    int64_t recv_timeout_us = 30'000'000;
    // Host-attacker hook: installed on every variant-side endpoint's
    // transmit path before the service thread starts (models a
    // compromised host tampering with / dropping frames on the wire).
    // The secure channel layer must surface such tampering as an
    // AuthenticationFailure at the monitor.
    transport::Interceptor tamper_variant_tx;
  };

  VariantHost(tee::SimulatedCpu* cpu,
              std::shared_ptr<tee::ProtectedStore> store)
      : VariantHost(cpu, std::move(store), Options{}) {}
  VariantHost(tee::SimulatedCpu* cpu,
              std::shared_ptr<tee::ProtectedStore> store, Options options);
  ~VariantHost();

  VariantHost(const VariantHost&) = delete;
  VariantHost& operator=(const VariantHost&) = delete;

  // Places one variant TEE (init-variant stage) and returns the
  // monitor-side endpoint of its channel. Also the supervisor's respawn
  // primitive: a quarantined variant's replacement is a brand-new spawn
  // (fresh enclave, fresh session keys) re-bootstrapped through the same
  // two-stage protocol; the retired instance's service thread exits when
  // the monitor closes its channel and is reaped by JoinAll().
  util::Result<transport::Endpoint> SpawnVariantTee(
      tee::TeeType type = tee::TeeType::kSgx2);

  // Total variant TEEs spawned over this host's lifetime (initial panel
  // + lifecycle respawns). Tests assert re-bootstrap actually re-spawned.
  size_t spawned_total() const;

  // Expected init-variant measurement (public: derived from the public
  // init-variant code and manifest).
  crypto::Sha256Digest init_variant_measurement() const;

  const tee::SimulatedCpu& cpu() const { return *cpu_; }
  tee::ProtectedStore& store() { return *store_; }
  const Options& options() const { return options_; }

  // --- fault-injection surface (experiments / tests) ---
  // The hook is attached when a variant service assumes `variant_id`.
  void SetFaultHook(const std::string& variant_id,
                    std::shared_ptr<runtime::FaultHook> hook);
  std::shared_ptr<runtime::FaultHook> LookupFaultHook(
      const std::string& variant_id);

  // --- direct fast-path pipe broker ---
  // In-process stand-in for variants dialing each other's RA-TLS
  // sockets: the monitor requests a pipe, each side claims its end.
  uint64_t CreatePipe();
  util::Result<transport::Endpoint> ClaimPipeEnd(uint64_t pipe_id,
                                                 bool producer_end);

  // Blocks until all spawned variant threads exit (after the monitor
  // sends shutdowns / closes channels).
  void JoinAll();

 private:
  tee::SimulatedCpu* cpu_;
  std::shared_ptr<tee::ProtectedStore> store_;
  Options options_;

  mutable std::mutex mu_;
  std::vector<std::thread> threads_;
  size_t spawned_total_ = 0;
  std::map<std::string, std::shared_ptr<runtime::FaultHook>> fault_hooks_;
  uint64_t next_pipe_id_ = 1;
  struct PipeEnds {
    std::optional<transport::Endpoint> producer;
    std::optional<transport::Endpoint> consumer;
  };
  std::map<uint64_t, PipeEnds> pipes_;
};

}  // namespace mvtee::core
