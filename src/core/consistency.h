// Checkpoint consistency checking and cross-process voting (§4.3, §5.2).
//
// Diversified variants produce numerically close but bitwise different
// outputs, so consistency is criteria-based with thresholds: the policy
// selects a metric (cosine similarity / MSE / max-abs-diff / allclose)
// and a tolerance calibrated to variant noise levels. Voting aggregates
// pairwise consistency into an accept/reject decision plus a winner
// whose outputs are replicated downstream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace mvtee::core {

enum class ConsistencyMetric : uint8_t {
  kCosine = 0,     // accept if cosine >= threshold
  kMse,            // accept if MSE <= threshold
  kMaxAbsDiff,     // accept if max |a-b| <= threshold
  kAllClose,       // accept if allclose(rtol, atol)
};

std::string_view ConsistencyMetricName(ConsistencyMetric metric);

struct CheckPolicy {
  ConsistencyMetric metric = ConsistencyMetric::kCosine;
  double threshold = 0.999;  // semantics depend on metric
  double rtol = 1e-3;        // allclose only
  double atol = 1e-4;        // allclose only

  static CheckPolicy Cosine(double min_similarity = 0.999) {
    return {ConsistencyMetric::kCosine, min_similarity, 0, 0};
  }
  static CheckPolicy Mse(double max_mse) {
    return {ConsistencyMetric::kMse, max_mse, 0, 0};
  }
  static CheckPolicy MaxAbs(double max_diff) {
    return {ConsistencyMetric::kMaxAbsDiff, max_diff, 0, 0};
  }
  static CheckPolicy AllClose(double rtol = 1e-3, double atol = 1e-4) {
    return {ConsistencyMetric::kAllClose, 0, rtol, atol};
  }
};

// Single-pair check over full output lists (shapes must match, every
// tensor must pass, and non-finite values always fail).
bool OutputsConsistent(const std::vector<tensor::Tensor>& a,
                       const std::vector<tensor::Tensor>& b,
                       const CheckPolicy& policy);

// Digest prefilter (one pass per report, computed on ingestion): FNV-1a
// over shapes + raw bytes of every output tensor, plus a non-finite
// flag from the same pass. Byte-identical, all-finite output lists are
// consistent under every metric/threshold, so equal digests
// short-circuit the element-wise scan — the common all-agree case for
// replicated variants costs O(k) hashes instead of O(k²) tensor scans.
struct OutputsSummary {
  uint64_t digest = 0;
  bool nonfinite = false;
  bool valid = false;  // false for failed variants (empty outputs)
};

OutputsSummary SummarizeOutputs(const std::vector<tensor::Tensor>& outputs);

// Counters a caller can aggregate into obs (prefilter effectiveness).
struct CheckStats {
  uint64_t prefilter_hits = 0;   // pairs decided by digest equality
  uint64_t full_checks = 0;      // pairs that needed the element-wise scan
};

// Summary-accelerated pair check. Falls back to the element-wise metric
// when digests differ (close-but-not-identical outputs of diversified
// variants). Exactly equivalent to the plain overload for all-finite
// data; non-finite data fails either way.
bool OutputsConsistent(const std::vector<tensor::Tensor>& a,
                       const OutputsSummary& sa,
                       const std::vector<tensor::Tensor>& b,
                       const OutputsSummary& sb, const CheckPolicy& policy,
                       CheckStats* stats = nullptr);

enum class VotePolicy : uint8_t {
  kUnanimous = 0,  // all live variants must agree (security-first default)
  kMajority,       // > half must agree; winner from the largest bloc
};

struct VoteResult {
  bool accepted = false;
  // Index (into the outputs vector) whose value should be replicated
  // downstream; -1 if rejected.
  int winner = -1;
  // Variants outside the winning bloc (crashed or inconsistent).
  std::vector<int> dissenters;
};

// `outputs[i]` empty => variant i failed (crash / refused input); a
// failed variant always dissents. Panels of one trivially accept.
VoteResult Vote(const std::vector<std::vector<tensor::Tensor>>& outputs,
                const CheckPolicy& policy, VotePolicy vote_policy);

// Summary-accelerated vote: `summaries[i]` must be SummarizeOutputs of
// `outputs[i]` (invalid summaries are recomputed). Same decision as the
// plain overload; `stats` reports how many pairwise checks the digest
// prefilter absorbed.
VoteResult Vote(const std::vector<std::vector<tensor::Tensor>>& outputs,
                const std::vector<OutputsSummary>& summaries,
                const CheckPolicy& policy, VotePolicy vote_policy,
                CheckStats* stats = nullptr);

}  // namespace mvtee::core
