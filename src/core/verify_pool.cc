#include "core/verify_pool.h"

namespace mvtee::core {

VerifyPool::VerifyPool(int threads, std::shared_ptr<transport::WaitSet> waiter)
    : waiter_(std::move(waiter)) {
  workers_.reserve(static_cast<size_t>(threads > 0 ? threads : 0));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

VerifyPool::~VerifyPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void VerifyPool::Submit(Task task) {
  if (workers_.empty()) {
    // Inline mode: deterministic, single-threaded. The applier runs
    // right away — Submit is only ever called from the consumer thread.
    Apply apply = task();
    if (apply) apply();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
    pending_ += 1;
  }
  cv_.notify_one();
}

std::optional<VerifyPool::Apply> VerifyPool::TryPopCompleted() {
  std::lock_guard<std::mutex> lock(mu_);
  if (completed_.empty()) return std::nullopt;
  Apply apply = std::move(completed_.front());
  completed_.pop_front();
  pending_ -= 1;
  return apply;
}

size_t VerifyPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

size_t VerifyPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

void VerifyPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    Apply apply = task();
    std::shared_ptr<transport::WaitSet> waiter;
    {
      std::lock_guard<std::mutex> lock(mu_);
      completed_.push_back(std::move(apply));
      waiter = waiter_;
    }
    if (waiter) waiter->Notify();
  }
}

}  // namespace mvtee::core
