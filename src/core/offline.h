// Offline ML MVX tool (paper §5.1, Figure 2 steps 1-2).
//
// Partitions the model, generates the diversified variant pool, creates
// variant-specific keys, and writes each variant's second-stage
// manifest, spec and stage graph into host storage in encrypted form.
// The returned bundle is what the model owner holds: the routing wiring
// plus per-variant keys and expected manifest hashes — everything the
// monitor needs for attestable initialization.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "crypto/rand.h"
#include "graph/ir.h"
#include "partition/partition.h"
#include "tee/manifest.h"
#include "tee/sealed_fs.h"
#include "util/status.h"
#include "variant/spec.h"

namespace mvtee::core {

struct OfflineOptions {
  int64_t num_partitions = 5;
  uint64_t partition_seed = 0;
  int partition_trials = 3;  // best-of random contraction
  variant::PoolConfig pool;
  // Deterministic key generation seed for reproducible experiments;
  // 0 = draw from the global random source.
  uint64_t key_seed = 0;
};

struct OfflineVariantEntry {
  std::string variant_id;  // "s<stage>.v<index>"
  int32_t stage = 0;
  util::Bytes variant_key;                 // key-derivation key
  crypto::Sha256Digest manifest_hash{};    // expected second-stage manifest
  std::string runtime_name;                // for reporting
};

// Paths inside the protected store for a variant's private files.
std::string VariantManifestPath(const std::string& variant_id);
std::string VariantSpecPath(const std::string& variant_id);
std::string VariantGraphPath(const std::string& variant_id);

struct OfflineBundle {
  // Stage wiring the monitor routes tensors by.
  int64_t num_stages = 0;
  int64_t num_model_inputs = 0;
  std::vector<std::vector<partition::StageInputSource>> stage_inputs;
  std::vector<partition::StageInputSource> model_outputs;
  partition::PartitionSet partition_set;

  std::vector<OfflineVariantEntry> variants;
  std::shared_ptr<tee::ProtectedStore> store;

  // All variant ids available for a stage (the monitor's selection
  // domain).
  std::vector<std::string> StageVariantIds(int32_t stage) const;
  const OfflineVariantEntry* FindVariant(const std::string& id) const;

  // Owner-side configuration payload (wiring + variant entries incl.
  // keys, WITHOUT the encrypted store — that stays on host storage).
  // This is what the model owner provisions to the monitor over the
  // attested channel (Fig. 6 step 3).
  util::Bytes SerializeConfig() const;
  // Reconstructs a bundle from a provisioned config; `store` must be
  // attached separately (the monitor never holds it — variants read it
  // through the host).
  static util::Result<OfflineBundle> DeserializeConfig(util::ByteSpan data);

  // Key rotation (§6.5): re-encrypts one variant's sealed files under a
  // fresh variant key drawn from `random`. Running variants are
  // unaffected (they hold decrypted state); future (re)initializations
  // must use the rotated bundle.
  util::Status RotateVariantKey(const std::string& variant_id,
                                crypto::RandomSource& random);
};

util::Result<OfflineBundle> RunOfflineTool(const graph::Graph& model,
                                           const OfflineOptions& options);

}  // namespace mvtee::core
