#include "core/variant_host.h"

#include <thread>

#include "core/messages.h"
#include "core/offline.h"
#include "graph/ir.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "transport/msg_channel.h"
#include "util/clock.h"
#include "variant/spec.h"

namespace mvtee::core {

namespace {

constexpr std::string_view kInitVariantCode = "mvtee-init-variant-v1";

// Virtual cost of moving one protected message across a TEE boundary:
// seal + wire + open. Measured software-crypto CPU is excluded from the
// virtual clocks; this analytic charge stands in for the testbed's
// hardware-accelerated record protection.
int64_t BoundaryMicros(const VariantHost::Options& options, size_t bytes) {
  double us = transport::WireMicros(options.network, bytes);
  if (!options.plaintext_channels && options.crypto_bytes_per_us > 0) {
    us += 2.0 * static_cast<double>(bytes) / options.crypto_bytes_per_us;
  }
  return static_cast<int64_t>(us);
}

// Pipeline stage encoded in a pool variant id ("s<N>.v<M>"); -1 when
// the id does not follow that convention.
int32_t StageFromVariantId(const std::string& id) {
  if (id.size() < 3 || id[0] != 's') return -1;
  int32_t stage = 0;
  size_t i = 1;
  for (; i < id.size() && id[i] >= '0' && id[i] <= '9'; ++i) {
    stage = stage * 10 + (id[i] - '0');
  }
  if (i == 1 || i >= id.size() || id[i] != '.') return -1;
  return stage;
}

// In-enclave state of one variant service after identity assignment.
struct VariantState {
  std::string variant_id;
  int32_t stage = -1;  // parsed from variant_id, for metric labels
  tee::FreshnessLedger ledger;
  std::unique_ptr<runtime::Executor> executor;
  size_t total_slots = 0;
  bool report_to_monitor = true;

  // Observability instruments, resolved once at identity assignment.
  obs::Histogram* infer_us = nullptr;        // variant.infer_us
  obs::Histogram* stage_infer_us = nullptr;  // variant.stage<N>.infer_us
  // This TEE's own span ring, registered as "tee/<variant_id>" with the
  // process collector so the merged timeline shows one row per TEE.
  std::shared_ptr<obs::TraceBuffer> trace;

  struct Upstream {
    std::unique_ptr<transport::MsgChannel> channel;
  };
  struct Downstream {
    std::unique_ptr<transport::MsgChannel> channel;
    std::vector<std::pair<uint32_t, uint32_t>> output_to_slot;
  };
  std::vector<Upstream> upstream;
  std::vector<Downstream> downstream;

  // Slot assembly per batch.
  struct Assembly {
    std::vector<std::optional<tensor::Tensor>> slots;
    size_t filled = 0;
    int64_t ready_vtime = 0;  // max virtual arrival over contributing msgs
    // Received trace context (authenticated channel header): the remote
    // parent this batch's infer span attaches under.
    obs::TraceContext ctx;
  };
  std::map<uint64_t, Assembly> pending;

  // Virtual-time performance model: this variant's own timeline. Real
  // work is measured with the thread CPU clock and advances the virtual
  // clock, so pipeline overlap across variants is reflected even on a
  // core-limited simulation host (see DESIGN.md §2).
  int64_t vclock_us = 0;
};

// Handles AssignIdentity: installs the key, loads + installs the
// second-stage manifest, decrypts the spec and stage graph, execs into
// the main stage and builds the executor.
util::Status AssumeIdentity(const AssignIdentityMsg& msg,
                            tee::Enclave& enclave,
                            tee::ProtectedStore& store, VariantHost& host,
                            VariantState& state) {
  state.variant_id = msg.variant_id;
  state.stage = StageFromVariantId(msg.variant_id);
  obs::Registry& reg = obs::Registry::Default();
  state.infer_us = &reg.GetHistogram("variant.infer_us");
  if (state.stage >= 0) {
    state.stage_infer_us = &reg.GetHistogram(
        "variant.stage" + std::to_string(state.stage) + ".infer_us");
  }
  state.trace = std::make_shared<obs::TraceBuffer>();
  obs::TraceCollector::Default().Register("tee/" + msg.variant_id,
                                          state.trace);
  obs::ScopedSpan span("variant/bootstrap",
                       {.stage = state.stage, .tag = msg.variant_id},
                       state.trace.get(),
                       &reg.GetHistogram("variant.bootstrap_us"));
  util::Bytes file_key =
      tee::DeriveVariantFileKey(msg.variant_key, msg.variant_id);
  MVTEE_RETURN_IF_ERROR(enclave.InstallProtectedFsKey(file_key));

  MVTEE_ASSIGN_OR_RETURN(
      util::Bytes manifest_bytes,
      store.Get(VariantManifestPath(msg.variant_id), file_key,
                &state.ledger));
  MVTEE_ASSIGN_OR_RETURN(tee::Manifest manifest,
                         tee::Manifest::Deserialize(manifest_bytes));
  MVTEE_RETURN_IF_ERROR(enclave.InstallSecondStageManifest(manifest));

  MVTEE_ASSIGN_OR_RETURN(
      util::Bytes spec_bytes,
      store.Get(VariantSpecPath(msg.variant_id), file_key, &state.ledger));
  MVTEE_ASSIGN_OR_RETURN(variant::VariantSpec spec,
                         variant::VariantSpec::Deserialize(spec_bytes));

  MVTEE_ASSIGN_OR_RETURN(
      util::Bytes graph_bytes,
      store.Get(VariantGraphPath(msg.variant_id), file_key, &state.ledger));
  MVTEE_ASSIGN_OR_RETURN(graph::Graph graph,
                         graph::Graph::Deserialize(graph_bytes));

  // One-way transition into the locked-down main stage.
  MVTEE_RETURN_IF_ERROR(enclave.Exec());

  MVTEE_ASSIGN_OR_RETURN(state.executor,
                         runtime::Executor::Create(graph, spec.exec_config));
  state.executor->SetTraceBuffer(state.trace.get());
  state.total_slots = state.executor->graph().inputs().size();
  // The adversary's fault hook, if the experiment set one for this id.
  if (auto hook = host.LookupFaultHook(msg.variant_id)) {
    state.executor->SetFaultHook(std::move(hook));
  }
  return util::OkStatus();
}

// Builds upstream/downstream channels per the routing message. Server
// handshakes run concurrently (one short-lived thread per pipe) to avoid
// cross-variant ordering deadlocks; client handshakes run inline.
util::Status SetupRoutes(const SetupRoutesMsg& msg, tee::Enclave& enclave,
                         VariantHost& host, tee::SimulatedCpu& cpu,
                         const VariantHost::Options& options,
                         VariantState& state) {
  state.report_to_monitor = msg.report_to_monitor;

  // Upstream: claim consumer ends, handshake as server concurrently.
  struct UpstreamSetup {
    transport::Endpoint endpoint;
    std::unique_ptr<transport::MsgChannel> channel;
    util::Status status = util::OkStatus();
  };
  std::vector<UpstreamSetup> setups(msg.upstream.size());
  for (size_t i = 0; i < msg.upstream.size(); ++i) {
    MVTEE_ASSIGN_OR_RETURN(
        setups[i].endpoint,
        host.ClaimPipeEnd(msg.upstream[i].pipe_id, /*producer_end=*/false));
  }
  if (options.plaintext_channels) {
    for (auto& setup : setups) {
      setup.channel = std::make_unique<transport::PlainMsgChannel>(
          std::move(setup.endpoint));
    }
  } else {
    std::vector<std::thread> handshakers;
    for (auto& setup : setups) {
      handshakers.emplace_back([&setup, &enclave, &cpu, &options] {
        auto secure = transport::SecureChannel::Handshake(
            std::move(setup.endpoint),
            transport::SecureChannel::Role::kServer, enclave,
            transport::AnyAttestedPeer(cpu), options.recv_timeout_us);
        if (!secure.ok()) {
          setup.status = secure.status();
          return;
        }
        setup.channel = std::make_unique<transport::SecureMsgChannel>(
            std::move(*secure));
      });
    }
    for (auto& t : handshakers) t.join();
  }
  for (auto& setup : setups) {
    MVTEE_RETURN_IF_ERROR(setup.status);
    state.upstream.push_back({std::move(setup.channel)});
  }

  // Downstream: claim producer ends, handshake as client inline.
  for (const auto& down : msg.downstream) {
    MVTEE_ASSIGN_OR_RETURN(
        transport::Endpoint endpoint,
        host.ClaimPipeEnd(down.pipe_id, /*producer_end=*/true));
    std::unique_ptr<transport::MsgChannel> channel;
    if (options.plaintext_channels) {
      channel = std::make_unique<transport::PlainMsgChannel>(
          std::move(endpoint));
    } else {
      MVTEE_ASSIGN_OR_RETURN(
          auto secure,
          transport::SecureChannel::Handshake(
              std::move(endpoint), transport::SecureChannel::Role::kClient,
              enclave, transport::AnyAttestedPeer(cpu),
              options.recv_timeout_us));
      channel = std::make_unique<transport::SecureMsgChannel>(
          std::move(secure));
    }
    state.downstream.push_back({std::move(channel), down.output_to_slot});
  }
  return util::OkStatus();
}

// Places slot data into the batch assembly; returns the batch id if it
// became complete.
std::optional<uint64_t> Fill(VariantState& state, uint64_t batch,
                             const std::vector<uint32_t>& slots,
                             std::vector<tensor::Tensor>&& tensors,
                             int64_t arrival_vtime,
                             const obs::TraceContext& ctx) {
  auto& assembly = state.pending[batch];
  if (assembly.slots.empty()) {
    assembly.slots.resize(state.total_slots);
  }
  assembly.ready_vtime = std::max(assembly.ready_vtime, arrival_vtime);
  // All contributors carry the same trace id; keep the latest parent.
  if (ctx.valid()) assembly.ctx = ctx;
  for (size_t i = 0; i < slots.size(); ++i) {
    size_t slot = slots[i];
    if (slot >= assembly.slots.size()) continue;  // malformed; drop
    if (!assembly.slots[slot].has_value()) {
      assembly.slots[slot] = std::move(tensors[i]);
      ++assembly.filled;
    }
  }
  if (assembly.filled == state.total_slots && state.total_slots > 0) {
    return batch;
  }
  return std::nullopt;
}

// Runs a completed batch and distributes the results, advancing the
// variant's virtual clock by the measured CPU cost of inference,
// serialization and record protection, plus the modeled wire time on
// each outgoing message.
void RunAssembledBatch(VariantState& state, uint64_t batch,
                       transport::MsgChannel& monitor_channel,
                       const VariantHost::Options& options) {
  auto it = state.pending.find(batch);
  MVTEE_CHECK(it != state.pending.end());
  std::vector<tensor::Tensor> inputs;
  inputs.reserve(it->second.slots.size());
  for (auto& slot : it->second.slots) inputs.push_back(std::move(*slot));
  const int64_t v_start =
      std::max(state.vclock_us, it->second.ready_vtime);
  const obs::TraceContext remote_ctx = it->second.ctx;
  state.pending.erase(it);

  const int64_t cpu0 = util::ThreadCpuMicros();
  InferResultMsg result;
  result.batch_id = batch;
  // Infer span: parents under the monitor's dispatch span (or the
  // upstream variant's infer span) via the received context; its own
  // context is echoed on everything sent for this batch.
  obs::TraceContext infer_ctx;
  auto outputs = [&] {
    obs::TraceContextScope remote(remote_ctx);
    obs::ScopedSpan span("variant/infer",
                         {.stage = state.stage,
                          .batch = static_cast<int64_t>(batch),
                          .tag = state.variant_id},
                         state.trace ? state.trace.get()
                                     : &obs::TraceBuffer::Default());
    infer_ctx = span.context();
    return state.executor->Run(inputs);
  }();
  const int64_t infer_cpu_us = util::ThreadCpuMicros() - cpu0;
  if (state.infer_us != nullptr) state.infer_us->Observe(infer_cpu_us);
  if (state.stage_infer_us != nullptr) {
    state.stage_infer_us->Observe(infer_cpu_us);
  }
  if (outputs.ok()) {
    result.ok = true;
    result.outputs = std::move(*outputs);
  } else {
    // A trapped exploit / crash inside this variant.
    result.ok = false;
    result.error = outputs.status().ToString();
  }
  // Diversification slowdown scales the variant's virtual compute cost
  // (the executor's real sleep does not show up on the CPU clock).
  const double factor = state.executor->config().slowdown_factor;
  const int64_t v_done =
      v_start + static_cast<int64_t>(
                    static_cast<double>(util::ThreadCpuMicros() - cpu0) *
                    factor);

  const util::Bytes tctx = EncodeTraceContext(infer_ctx);
  if (result.ok) {
    // Direct fast-path forwarding to adjacent partitions (Fig. 7).
    for (auto& down : state.downstream) {
      StageDataMsg data;
      data.batch_id = batch;
      for (const auto& [output, slot] : down.output_to_slot) {
        data.slots.push_back(slot);
        data.tensors.push_back(result.outputs[output]);
      }
      // vtime depends only on the encoded size, so it is stamped before
      // the single-pass encode into the pooled wire buffer.
      data.vtime_us = static_cast<uint64_t>(
          v_done + BoundaryMicros(options, EncodedSize(data)));
      (void)SendFrame(*down.channel, data, tctx);
    }
  }
  // Failures are always surfaced to the monitor; successful outputs only
  // when this variant is on a reporting (slow-path / model-output) role.
  if (state.report_to_monitor || !result.ok) {
    result.vtime_us = static_cast<uint64_t>(
        v_done + BoundaryMicros(options, EncodedSize(result)));
    (void)SendFrame(monitor_channel, result, tctx);
  }
  state.vclock_us = v_done;
}

// Variant service main loop (one per enclave/thread).
void VariantServiceMain(std::unique_ptr<tee::Enclave> enclave,
                        transport::Endpoint endpoint, VariantHost* host,
                        tee::SimulatedCpu* cpu,
                        std::shared_ptr<tee::ProtectedStore> store,
                        VariantHost::Options options) {
  std::unique_ptr<transport::MsgChannel> monitor_channel;
  if (options.plaintext_channels) {
    monitor_channel = std::make_unique<transport::PlainMsgChannel>(
        std::move(endpoint));
  } else {
    auto secure = transport::SecureChannel::Handshake(
        std::move(endpoint), transport::SecureChannel::Role::kServer,
        *enclave, transport::AnyAttestedPeer(*cpu),
        options.recv_timeout_us);
    if (!secure.ok()) {
      cpu->ReleaseEnclave(*enclave);
      return;
    }
    monitor_channel = std::make_unique<transport::SecureMsgChannel>(
        std::move(*secure));
  }

  VariantState state;
  auto teardown = [&] {
    monitor_channel->Close();
    for (auto& up : state.upstream) up.channel->Close();
    for (auto& down : state.downstream) down.channel->Close();
    cpu->ReleaseEnclave(*enclave);
  };

  const int64_t idle_sleep_us = 50;
  int64_t last_activity = util::NowMicros();

  for (;;) {
    bool progressed = false;

    // 1. Monitor channel (non-blocking poll).
    util::Bytes header;
    auto frame = monitor_channel->RecvPooled(0, &header);
    if (!frame.ok() &&
        frame.status().code() == util::StatusCode::kUnavailable) {
      teardown();
      return;  // monitor closed the channel
    }
    if (frame.ok()) {
      progressed = true;
      auto type = PeekType(frame->span());
      if (!type.ok()) {
        teardown();
        return;
      }
      switch (*type) {
        case MsgType::kAssignIdentity: {
          auto msg = DecodeAssignIdentity(frame->span());
          IdentityAckMsg ack;
          if (!msg.ok()) {
            ack.ok = false;
            ack.error = msg.status().ToString();
          } else {
            ack.variant_id = msg->variant_id;
            util::Status status =
                AssumeIdentity(*msg, *enclave, *store, *host, state);
            ack.ok = status.ok();
            if (!status.ok()) {
              ack.error = status.ToString();
            } else {
              ack.manifest_hash = enclave->manifest().Hash();
            }
          }
          (void)monitor_channel->Send(EncodeIdentityAck(ack));
          break;
        }
        case MsgType::kSetupRoutes: {
          auto msg = DecodeSetupRoutes(frame->span());
          RoutesAckMsg ack;
          if (!msg.ok()) {
            ack.ok = false;
            ack.error = msg.status().ToString();
          } else {
            util::Status status =
                SetupRoutes(*msg, *enclave, *host, *cpu, options, state);
            ack.ok = status.ok();
            if (!status.ok()) ack.error = status.ToString();
          }
          (void)monitor_channel->Send(EncodeRoutesAck(ack));
          break;
        }
        case MsgType::kInfer: {
          auto msg = DecodeInfer(*frame);
          if (msg.ok() && state.executor) {
            state.vclock_us = std::max(
                state.vclock_us, static_cast<int64_t>(msg->vtime_us));
            obs::TraceContext ctx;
            if (auto c = DecodeTraceContext(header); c.ok()) ctx = *c;
            auto done = Fill(state, msg->batch_id, msg->slots,
                             std::move(msg->inputs), state.vclock_us, ctx);
            if (done) {
              RunAssembledBatch(state, *done, *monitor_channel, options);
            }
          } else if (msg.ok()) {
            InferResultMsg err;
            err.batch_id = msg->batch_id;
            err.ok = false;
            err.error = "variant not initialized";
            (void)monitor_channel->Send(EncodeInferResult(err));
          }
          break;
        }
        case MsgType::kShutdown:
          teardown();
          return;
        default:
          break;  // ignore unexpected types
      }
    }

    // 2. Upstream fast-path pipes (non-blocking poll).
    for (auto& up : state.upstream) {
      util::Bytes up_header;
      auto data_frame = up.channel->RecvPooled(0, &up_header);
      if (!data_frame.ok()) continue;
      progressed = true;
      auto msg = DecodeStageData(*data_frame);  // tensors alias the frame
      if (!msg.ok() || !state.executor) continue;
      state.vclock_us =
          std::max(state.vclock_us, static_cast<int64_t>(msg->vtime_us));
      obs::TraceContext ctx;
      if (auto c = DecodeTraceContext(up_header); c.ok()) ctx = *c;
      auto done = Fill(state, msg->batch_id, msg->slots,
                       std::move(msg->tensors), state.vclock_us, ctx);
      if (done) {
        RunAssembledBatch(state, *done, *monitor_channel, options);
      }
    }

    if (progressed) {
      last_activity = util::NowMicros();
    } else {
      if (util::NowMicros() - last_activity > options.recv_timeout_us) {
        teardown();  // orphaned: monitor gone silent
        return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(idle_sleep_us));
    }
  }
}

}  // namespace

VariantHost::VariantHost(tee::SimulatedCpu* cpu,
                         std::shared_ptr<tee::ProtectedStore> store,
                         Options options)
    : cpu_(cpu), store_(std::move(store)), options_(options) {}

VariantHost::~VariantHost() { JoinAll(); }

util::Result<transport::Endpoint> VariantHost::SpawnVariantTee(
    tee::TeeType type) {
  obs::ScopedSpan span(
      "host/spawn", {},
      &obs::TraceBuffer::Default(),
      &obs::Registry::Default().GetHistogram("host.spawn_us"));
  MVTEE_ASSIGN_OR_RETURN(
      auto enclave,
      cpu_->LaunchEnclave(type, util::ToBytes(std::string(kInitVariantCode)),
                          tee::InitVariantManifest(),
                          options_.variant_epc_pages));
  // Real channels carry no sleep cost — options_.network is applied as
  // *virtual* wire time by the performance model.
  auto [monitor_side, variant_side] =
      transport::CreateChannel(transport::NetworkCostModel::Free());
  if (options_.tamper_variant_tx) {
    variant_side.SetInterceptor(options_.tamper_variant_tx);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads_.emplace_back(VariantServiceMain, std::move(enclave),
                          std::move(variant_side), this, cpu_, store_,
                          options_);
    ++spawned_total_;
  }
  return monitor_side;
}

size_t VariantHost::spawned_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spawned_total_;
}

crypto::Sha256Digest VariantHost::init_variant_measurement() const {
  crypto::Sha256 hasher;
  hasher.Update(util::ToBytes(std::string(kInitVariantCode)));
  auto mhash = tee::InitVariantManifest().Hash();
  hasher.Update(util::ByteSpan(mhash.data(), mhash.size()));
  return hasher.Finish();
}

void VariantHost::SetFaultHook(const std::string& variant_id,
                               std::shared_ptr<runtime::FaultHook> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_hooks_[variant_id] = std::move(hook);
}

std::shared_ptr<runtime::FaultHook> VariantHost::LookupFaultHook(
    const std::string& variant_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fault_hooks_.find(variant_id);
  return it == fault_hooks_.end() ? nullptr : it->second;
}

uint64_t VariantHost::CreatePipe() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_pipe_id_++;
  auto [producer_end, consumer_end] =
      transport::CreateChannel(transport::NetworkCostModel::Free());
  pipes_[id] = {std::move(producer_end), std::move(consumer_end)};
  return id;
}

util::Result<transport::Endpoint> VariantHost::ClaimPipeEnd(
    uint64_t pipe_id, bool producer_end) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pipes_.find(pipe_id);
  if (it == pipes_.end()) {
    return util::NotFound("pipe " + std::to_string(pipe_id));
  }
  auto& slot = producer_end ? it->second.producer : it->second.consumer;
  if (!slot.has_value()) {
    return util::FailedPrecondition("pipe end already claimed");
  }
  transport::Endpoint endpoint = std::move(*slot);
  slot.reset();
  if (!it->second.producer.has_value() && !it->second.consumer.has_value()) {
    pipes_.erase(it);
  }
  return endpoint;
}

void VariantHost::JoinAll() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    to_join.swap(threads_);
  }
  for (auto& t : to_join) {
    if (t.joinable()) t.join();
  }
}

}  // namespace mvtee::core
