// Variant lifecycle supervisor (paper §4.3 + Fig. 6 update protocol):
// the bookkeeping half of the detection → repair loop.
//
// Each panel slot carries a lifecycle state machine
//
//   Healthy -> Suspect -> Quarantined -> Rebootstrapping
//                               ^              |
//                               |   (ok)       v  (fail: backoff, retry;
//                               +--------- Probation     budget spent ->
//                               |              |          Retired)
//                               +-(dissent)----+-(agreed x N)-> Healthy
//
// driven by checkpoint verdicts (dissent), hard failures (crash
// reports, recv timeouts, channel authentication errors) and bootstrap
// outcomes. The supervisor decides *what* should happen — shrink the
// voting panel (never below ReactionPolicy::min_panel), schedule a
// re-bootstrap with capped exponential backoff, count probation
// shadow-agreements, retire on an exhausted retry budget — while the
// monitor performs the mechanics (channel teardown, the attested
// two-stage re-bootstrap, evidence records).
//
// Thread-safety: every call is internally locked; in practice all
// mutation happens on the monitor's event-loop thread, with Snapshot()
// usable from tests after a run returns.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/reaction_policy.h"
#include "obs/metrics.h"

namespace mvtee::core {

enum class VariantLifecycle : uint8_t {
  kHealthy = 0,
  kSuspect,          // dissented, still voting
  kQuarantined,      // out of the panel, awaiting re-bootstrap (backoff)
  kRebootstrapping,  // a bootstrap attempt is in progress
  kProbation,        // re-bootstrapped; shadow-voting until readmission
  kRetired,          // retry budget exhausted; permanently out
};

std::string_view LifecycleName(VariantLifecycle state);

// Hard (non-verdict) failure classes that quarantine immediately.
enum class FailureKind : uint8_t {
  kCrash = 0,  // variant reported ok=false (or a synthesized timeout)
  kTimeout,    // recv deadline expired with the report owed
  kChannel,    // authentication / replay / decode / disconnect
};

std::string_view FailureKindName(FailureKind kind);

class Supervisor {
 public:
  struct SlotInfo {
    std::string variant_id;
    size_t stage = 0;
    size_t index = 0;  // panel slot within the stage
    VariantLifecycle state = VariantLifecycle::kHealthy;
    int dissents = 0;            // verdict dissents since last healthy
    int bootstrap_attempts = 0;  // since the first quarantine
    int probation_left = 0;      // clean checkpoints still required
    int64_t next_retry_us = 0;   // wall deadline of the next attempt
    uint64_t quarantines = 0;
    uint64_t readmissions = 0;
  };

  enum class ProbationOutcome : uint8_t {
    kNone = 0,      // still on probation (or not probing)
    kReadmitted,    // shadow-agreed enough: back to Healthy
    kRequarantined, // shadow dissent with budget left
    kRetired,       // shadow dissent with the budget spent
  };

  Supervisor(ReactionPolicy policy, obs::Registry* registry);

  // (Re)builds the slot table; every slot starts Healthy. `stage_ids`
  // is the active selection, panel order per stage.
  void Reset(const std::vector<std::vector<std::string>>& stage_ids);

  // A checkpoint verdict marked this voting slot a dissenter. Returns
  // true when the slot transitioned to Quarantined (the panel shrank).
  bool ReportDissent(size_t stage, size_t index, int64_t now_us);

  // Hard failure. Returns true when the slot transitioned to
  // Quarantined; false when the floor blocks the shrink (the caller
  // keeps its previous error handling) or the slot is already out.
  bool ReportFailure(size_t stage, size_t index, FailureKind kind,
                     int64_t now_us);

  // A probation (shadow) checkpoint for a kProbation slot.
  ProbationOutcome ReportProbation(size_t stage, size_t index, bool agreed,
                                   int64_t now_us);

  // Quarantined slots whose backoff deadline expired and whose retry
  // budget is not exhausted.
  std::vector<std::pair<size_t, size_t>> DueForRebootstrap(int64_t now_us);
  void BeginRebootstrap(size_t stage, size_t index);
  // Outcome of a bootstrap attempt: ok -> kProbation; failure -> next
  // backoff step or kRetired once the budget is spent. Returns the
  // resulting state.
  VariantLifecycle FinishRebootstrap(size_t stage, size_t index, bool ok,
                                     int64_t now_us);

  // --- queries (monitor vote/ingestion paths) ---
  // In the voting panel (Healthy or Suspect).
  bool Voting(size_t stage, size_t index) const;
  // Shadow-executing (kProbation): receives inputs, never votes.
  bool Shadow(size_t stage, size_t index) const;
  // Channel usable (not Quarantined/Rebootstrapping/Retired).
  bool ChannelLive(size_t stage, size_t index) const;
  size_t ActiveCount(size_t stage) const;  // voting members
  VariantLifecycle state(size_t stage, size_t index) const;
  SlotInfo slot(size_t stage, size_t index) const;
  std::vector<SlotInfo> Snapshot() const;

  uint64_t quarantines_total() const;
  uint64_t readmissions_total() const;
  uint64_t retirements_total() const;
  // Any lifecycle transition since Reset (evidence-dump trigger).
  bool AnyEvents() const;

  const ReactionPolicy& policy() const { return policy_; }

 private:
  int64_t BackoffDelayUs(int attempts_done) const;
  size_t ActiveCountLocked(size_t stage) const;
  bool QuarantineLocked(SlotInfo& si, int64_t now_us);

  ReactionPolicy policy_;
  mutable std::mutex mu_;
  std::vector<std::vector<SlotInfo>> slots_;
  uint64_t quarantines_ = 0;
  uint64_t readmissions_ = 0;
  uint64_t retirements_ = 0;

  obs::Counter* m_quarantines_ = nullptr;
  obs::Counter* m_readmissions_ = nullptr;
  obs::Counter* m_rebootstraps_ = nullptr;
  obs::Counter* m_rebootstrap_failures_ = nullptr;
  obs::Counter* m_retirements_ = nullptr;
};

}  // namespace mvtee::core
