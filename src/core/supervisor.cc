#include "core/supervisor.h"

#include <algorithm>
#include <cmath>

namespace mvtee::core {

std::string_view LifecycleName(VariantLifecycle state) {
  switch (state) {
    case VariantLifecycle::kHealthy: return "healthy";
    case VariantLifecycle::kSuspect: return "suspect";
    case VariantLifecycle::kQuarantined: return "quarantined";
    case VariantLifecycle::kRebootstrapping: return "rebootstrapping";
    case VariantLifecycle::kProbation: return "probation";
    case VariantLifecycle::kRetired: return "retired";
  }
  return "?";
}

std::string_view FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kCrash: return "crash";
    case FailureKind::kTimeout: return "timeout";
    case FailureKind::kChannel: return "channel";
  }
  return "?";
}

Supervisor::Supervisor(ReactionPolicy policy, obs::Registry* registry)
    : policy_(policy) {
  m_quarantines_ = &registry->GetCounter("supervisor.quarantines_total");
  m_readmissions_ = &registry->GetCounter("supervisor.readmissions_total");
  m_rebootstraps_ = &registry->GetCounter("supervisor.rebootstraps_total");
  m_rebootstrap_failures_ =
      &registry->GetCounter("supervisor.rebootstrap_failures_total");
  m_retirements_ = &registry->GetCounter("supervisor.retirements_total");
}

void Supervisor::Reset(
    const std::vector<std::vector<std::string>>& stage_ids) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  slots_.resize(stage_ids.size());
  for (size_t s = 0; s < stage_ids.size(); ++s) {
    slots_[s].resize(stage_ids[s].size());
    for (size_t i = 0; i < stage_ids[s].size(); ++i) {
      SlotInfo& si = slots_[s][i];
      si = SlotInfo{};
      si.variant_id = stage_ids[s][i];
      si.stage = s;
      si.index = i;
    }
  }
  quarantines_ = readmissions_ = retirements_ = 0;
}

int64_t Supervisor::BackoffDelayUs(int attempts_done) const {
  double delay = static_cast<double>(policy_.initial_backoff_us);
  for (int i = 0; i < attempts_done; ++i) {
    delay *= policy_.backoff_multiplier;
    if (delay >= static_cast<double>(policy_.max_backoff_us)) break;
  }
  return std::min<int64_t>(policy_.max_backoff_us,
                           static_cast<int64_t>(delay));
}

size_t Supervisor::ActiveCountLocked(size_t stage) const {
  size_t n = 0;
  for (const SlotInfo& si : slots_[stage]) {
    if (si.state == VariantLifecycle::kHealthy ||
        si.state == VariantLifecycle::kSuspect) {
      ++n;
    }
  }
  return n;
}

bool Supervisor::QuarantineLocked(SlotInfo& si, int64_t now_us) {
  if (si.state != VariantLifecycle::kHealthy &&
      si.state != VariantLifecycle::kSuspect) {
    return false;  // already out of the panel
  }
  // Panel floor: never shrink the stage below min_panel voters.
  if (ActiveCountLocked(si.stage) <=
      static_cast<size_t>(std::max(1, policy_.min_panel))) {
    si.state = VariantLifecycle::kSuspect;
    return false;
  }
  si.state = VariantLifecycle::kQuarantined;
  si.next_retry_us = now_us + BackoffDelayUs(si.bootstrap_attempts);
  ++si.quarantines;
  ++quarantines_;
  m_quarantines_->Add(1);
  return true;
}

bool Supervisor::ReportDissent(size_t stage, size_t index, int64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  SlotInfo& si = slots_[stage][index];
  if (si.state != VariantLifecycle::kHealthy &&
      si.state != VariantLifecycle::kSuspect) {
    return false;
  }
  ++si.dissents;
  if (si.dissents < std::max(1, policy_.dissent_threshold)) {
    si.state = VariantLifecycle::kSuspect;
    return false;
  }
  return QuarantineLocked(si, now_us);
}

bool Supervisor::ReportFailure(size_t stage, size_t index, FailureKind kind,
                               int64_t now_us) {
  (void)kind;  // classes are recorded by the caller's evidence trail
  std::lock_guard<std::mutex> lock(mu_);
  SlotInfo& si = slots_[stage][index];
  ++si.dissents;
  return QuarantineLocked(si, now_us);
}

Supervisor::ProbationOutcome Supervisor::ReportProbation(size_t stage,
                                                         size_t index,
                                                         bool agreed,
                                                         int64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  SlotInfo& si = slots_[stage][index];
  if (si.state != VariantLifecycle::kProbation) {
    return ProbationOutcome::kNone;
  }
  if (agreed) {
    if (--si.probation_left > 0) return ProbationOutcome::kNone;
    si.state = VariantLifecycle::kHealthy;
    si.dissents = 0;
    ++si.readmissions;
    ++readmissions_;
    m_readmissions_->Add(1);
    return ProbationOutcome::kReadmitted;
  }
  // Shadow dissent: the fresh instance is still bad.
  if (si.bootstrap_attempts >= policy_.retry_budget) {
    si.state = VariantLifecycle::kRetired;
    ++retirements_;
    m_retirements_->Add(1);
    return ProbationOutcome::kRetired;
  }
  si.state = VariantLifecycle::kQuarantined;
  si.next_retry_us = now_us + BackoffDelayUs(si.bootstrap_attempts);
  ++si.quarantines;
  ++quarantines_;
  m_quarantines_->Add(1);
  return ProbationOutcome::kRequarantined;
}

std::vector<std::pair<size_t, size_t>> Supervisor::DueForRebootstrap(
    int64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<size_t, size_t>> due;
  for (auto& stage : slots_) {
    for (SlotInfo& si : stage) {
      if (si.state != VariantLifecycle::kQuarantined) continue;
      if (si.bootstrap_attempts >= policy_.retry_budget) {
        si.state = VariantLifecycle::kRetired;
        ++retirements_;
        m_retirements_->Add(1);
        continue;
      }
      if (now_us >= si.next_retry_us) due.push_back({si.stage, si.index});
    }
  }
  return due;
}

void Supervisor::BeginRebootstrap(size_t stage, size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  SlotInfo& si = slots_[stage][index];
  si.state = VariantLifecycle::kRebootstrapping;
  ++si.bootstrap_attempts;
  m_rebootstraps_->Add(1);
}

VariantLifecycle Supervisor::FinishRebootstrap(size_t stage, size_t index,
                                               bool ok, int64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  SlotInfo& si = slots_[stage][index];
  if (ok) {
    si.state = VariantLifecycle::kProbation;
    si.probation_left = std::max(1, policy_.probation_batches);
    return si.state;
  }
  m_rebootstrap_failures_->Add(1);
  if (si.bootstrap_attempts >= policy_.retry_budget) {
    si.state = VariantLifecycle::kRetired;
    ++retirements_;
    m_retirements_->Add(1);
  } else {
    si.state = VariantLifecycle::kQuarantined;
    si.next_retry_us = now_us + BackoffDelayUs(si.bootstrap_attempts);
  }
  return si.state;
}

bool Supervisor::Voting(size_t stage, size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  const VariantLifecycle st = slots_[stage][index].state;
  return st == VariantLifecycle::kHealthy ||
         st == VariantLifecycle::kSuspect;
}

bool Supervisor::Shadow(size_t stage, size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_[stage][index].state == VariantLifecycle::kProbation;
}

bool Supervisor::ChannelLive(size_t stage, size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  const VariantLifecycle st = slots_[stage][index].state;
  return st == VariantLifecycle::kHealthy ||
         st == VariantLifecycle::kSuspect ||
         st == VariantLifecycle::kProbation;
}

size_t Supervisor::ActiveCount(size_t stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ActiveCountLocked(stage);
}

VariantLifecycle Supervisor::state(size_t stage, size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_[stage][index].state;
}

Supervisor::SlotInfo Supervisor::slot(size_t stage, size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_[stage][index];
}

std::vector<Supervisor::SlotInfo> Supervisor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlotInfo> out;
  for (const auto& stage : slots_) {
    out.insert(out.end(), stage.begin(), stage.end());
  }
  return out;
}

uint64_t Supervisor::quarantines_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantines_;
}

uint64_t Supervisor::readmissions_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return readmissions_;
}

uint64_t Supervisor::retirements_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retirements_;
}

bool Supervisor::AnyEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantines_ > 0 || readmissions_ > 0 || retirements_ > 0;
}

}  // namespace mvtee::core
