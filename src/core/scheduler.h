// Batch-formation policy for the monitor's continuous-batching request
// loop (DESIGN.md §13).
//
// PR 6's request loop drained the admission queue one coalesced pass at
// a time: a group was popped, pushed through the MVX pipeline, and only
// when the WHOLE group finished was the next group formed. Under mixed
// open-loop load that full-queue barrier collapses goodput. The
// scheduler replaces it:
//
//   - continuous batching: a request is admitted into the pipeline as
//     soon as a slot frees, up to max_batch concurrent slots — no
//     drain barrier between "groups";
//   - weighted fair queuing across tenants: each slot goes to the
//     backlogged tenant with the lowest virtual time (vtime advances by
//     1/weight per admitted request), so a flooding tenant cannot
//     starve a quiet one — a newly backlogged tenant wins the very
//     next free slot;
//   - per-tenant quotas: at most quota_pct% of the max_batch slots are
//     granted to one tenant while others are backlogged (the fill is
//     work-conserving: leftover slots go to whoever has work);
//   - earliest-deadline-first: within a tenant, requests dispatch in
//     deadline order (ties by priority then arrival), which preempts
//     the ADMISSION QUEUE order only — a running MVX stage is never
//     preempted;
//   - batch window: for up to batch_window_us a fresh deadline-slack
//     request ranks BEHIND tight-deadline or aged work when slots are
//     scarce, so a late tight-deadline arrival can still jump ahead.
//     The window is work-conserving: a held request is still granted
//     any slot that would otherwise idle — it never throttles
//     admission, it only orders it.
//
// BatchFormer is deterministic and clock-free: every decision is a pure
// function of the pending entries, the caller-supplied now_us, and the
// accumulated WFQ virtual times — tests drive it with synthetic clocks.
// The monitor owns queue locking, expiry rejection and the MVX
// pipeline; the former only picks.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mvtee::core {

// Scheduler half of the (split) ServiceConfig. Constructed directly or
// via the fluent Builder:
//
//   auto cfg = SchedulerConfig::Builder()
//                  .MaxBatch(16)
//                  .BatchWindowUs(500)
//                  .TenantQuotaPct(50)
//                  .Edf(true)
//                  .TenantWeight("gold", 3)
//                  .Build();
struct SchedulerConfig {
  // Max requests concurrently in the MVX pipeline (one request = one
  // pipeline slot). Replaces ServiceConfig::max_inflight.
  size_t max_batch = 8;
  // EDF reordering horizon: for this long after arrival a deadline-
  // slack request ranks behind tight-deadline or window-expired work
  // when slots are scarce. Work-conserving — a slot that would
  // otherwise idle is still granted to held work immediately. 0 = pure
  // arrival/EDF ranking.
  int64_t batch_window_us = 2000;
  // Per-tenant share of the max_batch slots while other tenants are
  // backlogged, percent. 100 = uncapped. The fill is work-conserving:
  // slots left over after every backlogged tenant took its share are
  // handed out by WFQ order regardless of quota.
  int tenant_quota_pct = 100;
  // Earliest-deadline-first ordering (false = arrival order within a
  // tenant; cross-tenant WFQ applies either way).
  bool edf = true;
  // Admit into free slots as soon as they open. false restores the
  // PR 6 drain barrier (a new group forms only when the pipeline is
  // empty) — kept for A/B benchmarking and migration.
  bool continuous = true;
  // WFQ weight per tenant (default 1). A weight-3 tenant receives 3x
  // the slots of a weight-1 tenant under contention.
  std::map<std::string, uint32_t> tenant_weights;

  class Builder;  // fluent construction, defined below

  // Applies the MVTEE_SCHED_* knobs (strict KnobRegistry resolution)
  // on top of `base`.
  static SchedulerConfig FromEnv(SchedulerConfig base);
};

class SchedulerConfig::Builder {
 public:
  Builder& MaxBatch(size_t n);
  Builder& BatchWindowUs(int64_t us);
  Builder& TenantQuotaPct(int pct);
  Builder& Edf(bool on);
  Builder& Continuous(bool on);
  Builder& TenantWeight(const std::string& tenant, uint32_t weight);
  SchedulerConfig Build() const { return config_; }

 private:
  SchedulerConfig config_;
};

// One schedulable request, queue-side view. `id` is a monotone arrival
// ticket: it defines FIFO order and is what EDF "preempts".
struct SchedEntry {
  uint64_t id = 0;
  std::string tenant;           // "" schedules as one shared tenant
  int32_t priority = 0;         // higher dispatches earlier, after EDF
  int64_t deadline_abs_us = 0;  // absolute wall clock; 0 = none
  int64_t enqueue_us = 0;
};

// One formation decision.
struct BatchPlan {
  // Indices into the `pending` span passed to Form, in dispatch order.
  std::vector<size_t> picks;
  // When `picks` was limited by the batch window: the absolute time at
  // which held entries become dispatchable (0 = nothing held).
  int64_t recheck_at_us = 0;
  // Picks that overtook an older (smaller-id) entry left waiting —
  // EDF/priority/WFQ queue-order preemptions, for scheduler.preemptions.
  uint64_t preemptions = 0;
};

class BatchFormer {
 public:
  explicit BatchFormer(SchedulerConfig config);

  const SchedulerConfig& config() const { return config_; }

  // Picks up to free_slots entries from `pending` to admit at now_us.
  // `inflight_per_tenant` holds the pipeline occupancy the quota counts
  // against. Deterministic; no wall-clock reads. Expired entries must
  // be filtered out by the caller beforehand.
  BatchPlan Form(const std::vector<SchedEntry>& pending, int64_t now_us,
                 size_t free_slots,
                 const std::map<std::string, size_t>& inflight_per_tenant);

  // Forgets a tenant's WFQ virtual time (e.g. after it idles away).
  void ResetTenant(const std::string& tenant);

 private:
  double WeightOf(const std::string& tenant) const;

  SchedulerConfig config_;
  // WFQ virtual times: vtime_[t] advances by 1/weight per slot granted
  // to t; the next slot goes to the backlogged tenant with the lowest
  // vtime. vclock_ tracks the service's virtual progress so a newly
  // arrived tenant starts at "now" instead of cashing in idle credit.
  std::map<std::string, double> vtime_;
  double vclock_ = 0.0;
};

}  // namespace mvtee::core
