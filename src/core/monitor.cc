#include "core/monitor.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <set>
#include <thread>

#include "core/verify_pool.h"
#include "obs/flight_recorder.h"
#include "obs/timeline.h"
#include "util/clock.h"
#include "util/knobs.h"
#include "util/logging.h"

namespace mvtee::core {

using tensor::Tensor;

namespace internal {

// State shared between the monitor's request loop and every Session
// handle. Sessions hold it by shared_ptr so a handle outliving a
// stopped (or destroyed) monitor degrades to fast-fail Submits instead
// of dangling.
struct ServiceState {
  struct Item {
    bool legacy = false;
    uint64_t session_id = 0;
    uint64_t seq = 0;
    // Monotone arrival ticket across all sessions: the scheduler's
    // FIFO reference (what EDF/priority "preempt").
    uint64_t ticket = 0;
    // One batch for a session submit; the whole vector for a legacy
    // Run() group.
    std::vector<std::vector<Tensor>> batches;
    RunOptions options;          // legacy groups only
    int64_t deadline_abs_us = 0; // submits only; 0 = unbounded
    int64_t enqueue_us = 0;
    // Scheduling metadata (submits only).
    std::string tenant;
    int32_t priority = 0;
    std::string model;
    std::promise<InferenceResponse> response;  // submits
    std::promise<util::Result<std::vector<std::vector<Tensor>>>>
        group_result;  // legacy groups
  };

  struct SessionInfo {
    uint64_t expected_seq = 0;
    bool aborted = false;  // sequence violation: session is dead
  };

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Item> queue;
  size_t queued_submits = 0;  // non-legacy items (the bounded part)
  bool accepting = false;
  size_t queue_max = 64;
  uint64_t next_session_id = 1;
  uint64_t next_ticket = 1;
  std::map<uint64_t, SessionInfo> sessions;
  // The monitor's event wait set: enqueues notify it so a serving
  // stream parked in WaitFor wakes for the new work.
  std::shared_ptr<transport::WaitSet> waker;

  // Service instruments (default registry; pointer-stable).
  obs::Gauge* sessions_active = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* queue_depth_hwm = nullptr;
  obs::Gauge* inflight = nullptr;
  obs::Counter* rejected_total = nullptr;
  obs::Counter* requests_total = nullptr;
  obs::Counter* groups_total = nullptr;
  obs::Histogram* request_latency_us = nullptr;
  // Per-request latency breakdown (DESIGN.md §12): one histogram per
  // lifecycle phase. reply_us is bound here but observed by the service
  // front end (the reply seal happens outside the monitor).
  obs::Histogram* queue_wait_us = nullptr;
  obs::Histogram* coalesce_us = nullptr;
  obs::Histogram* infer_us = nullptr;
  obs::Histogram* verify_us = nullptr;
  obs::Histogram* reply_us = nullptr;
  // Scheduler instruments (DESIGN.md §13): pipeline occupancy at each
  // formation, queue-order preemptions, requests answered after (or
  // expired at) their deadline, and per-tenant goodput (resolved on
  // demand as scheduler.tenant.<name>.goodput_total).
  obs::Registry* registry = nullptr;
  obs::Histogram* sched_occupancy = nullptr;
  obs::Counter* sched_preemptions = nullptr;
  obs::Counter* sched_deadline_misses = nullptr;

  obs::Counter& TenantGoodput(const std::string& tenant) {
    return registry->GetCounter("scheduler.tenant." +
                                (tenant.empty() ? "default" : tenant) +
                                ".goodput_total");
  }

  void BindMetrics(obs::Registry& reg) {
    registry = &reg;
    sched_occupancy = &reg.GetHistogram("scheduler.batch_occupancy");
    sched_preemptions = &reg.GetCounter("scheduler.preemptions_total");
    sched_deadline_misses =
        &reg.GetCounter("scheduler.deadline_misses_total");
    sessions_active = &reg.GetGauge("service.sessions_active");
    queue_depth = &reg.GetGauge("service.admission_queue_depth");
    queue_depth_hwm = &reg.GetGauge("service.admission_queue_depth_hwm");
    inflight = &reg.GetGauge("service.inflight");
    rejected_total = &reg.GetCounter("service.rejected_total");
    requests_total = &reg.GetCounter("service.requests_total");
    groups_total = &reg.GetCounter("service.groups_total");
    request_latency_us = &reg.GetHistogram("service.request_latency_us");
    queue_wait_us = &reg.GetHistogram("service.queue_wait_us");
    coalesce_us = &reg.GetHistogram("service.coalesce_us");
    infer_us = &reg.GetHistogram("service.infer_us");
    verify_us = &reg.GetHistogram("service.verify_us");
    reply_us = &reg.GetHistogram("service.reply_us");
  }
};

}  // namespace internal

Session::Session(std::shared_ptr<internal::ServiceState> state, uint64_t id)
    : state_(std::move(state)), id_(id) {}

Session::~Session() { Close(); }

void Session::Close() {
  if (!state_) return;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->sessions.erase(id_) > 0) state_->sessions_active->Add(-1);
  }
  state_.reset();
}

util::Result<std::future<InferenceResponse>> Session::Submit(
    InferenceRequest request) {
  auto result = SubmitSequenced(std::move(request), next_seq_);
  // Mirror the server-side rule: the sequence number is consumed by any
  // in-order submission, including one rejected at admission or by a
  // stopped service (only sequence violations leave it unconsumed).
  const util::StatusCode code = result.status().code();
  if (result.ok() || code == util::StatusCode::kAdmissionRejected ||
      code == util::StatusCode::kUnavailable) {
    ++next_seq_;
  }
  return result;
}

util::Result<std::future<InferenceResponse>> Session::SubmitSequenced(
    InferenceRequest request, uint64_t seq) {
  if (!state_) return util::FailedPrecondition("session closed");
  internal::ServiceState& st = *state_;
  std::future<InferenceResponse> future;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    auto it = st.sessions.find(id_);
    if (it == st.sessions.end()) {
      return util::FailedPrecondition("session closed");
    }
    if (it->second.aborted) {
      return util::ReplayDetected("session aborted by sequence violation");
    }
    if (seq != it->second.expected_seq) {
      // A replayed (or reordered) Submit must never execute twice;
      // the whole session is condemned, not just the request.
      it->second.aborted = true;
      return util::ReplayDetected(
          "submit sequence " + std::to_string(seq) + " != expected " +
          std::to_string(it->second.expected_seq));
    }
    // Any in-order frame consumes its sequence number, whatever its
    // admission outcome: the client increments on send, before it can
    // know whether the request was admitted, so a rejected request must
    // not desynchronize the session's sequence space.
    it->second.expected_seq = seq + 1;
    if (!st.accepting) return util::Unavailable("service stopped");
    if (request.deadline_us < 0) {
      // End-to-end deadline semantics: 0 means "no deadline"; a
      // negative budget is expired before it starts and must never
      // enter the pipeline (the sequence number above is still
      // consumed, like any other admission rejection).
      st.rejected_total->Add(1);
      st.sched_deadline_misses->Add(1);
      return util::AdmissionRejected(
          "deadline_us " + std::to_string(request.deadline_us) +
          " already expired at submit (0 = no deadline)");
    }
    if (st.queued_submits >= st.queue_max) {
      st.rejected_total->Add(1);
      return util::AdmissionRejected(
          "admission queue full (" + std::to_string(st.queued_submits) +
          " queued, max " + std::to_string(st.queue_max) + ")");
    }

    internal::ServiceState::Item item;
    item.session_id = id_;
    item.seq = seq;
    item.ticket = st.next_ticket++;
    item.enqueue_us = util::NowMicros();
    item.deadline_abs_us = request.deadline_us > 0
                               ? item.enqueue_us + request.deadline_us
                               : 0;
    item.tenant = std::move(request.tenant);
    item.priority = request.priority;
    item.model = std::move(request.model);
    item.batches.push_back(std::move(request.inputs));
    future = item.response.get_future();
    st.queue.push_back(std::move(item));
    st.queued_submits += 1;
    const auto depth = static_cast<int64_t>(st.queued_submits);
    st.queue_depth->Set(depth);
    if (depth > st.queue_depth_hwm->value()) st.queue_depth_hwm->Set(depth);
    st.requests_total->Add(1);
  }
  st.cv.notify_one();
  // Wake a serving stream parked on the monitor's wait set.
  std::shared_ptr<transport::WaitSet> waker;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    waker = st.waker;
  }
  if (waker) waker->Notify();
  return future;
}

MvxSelection MvxSelection::Uniform(const OfflineBundle& bundle,
                                   int variants_per_stage) {
  MvxSelection sel;
  sel.stage_variant_ids.resize(static_cast<size_t>(bundle.num_stages));
  for (int32_t s = 0; s < bundle.num_stages; ++s) {
    auto ids = bundle.StageVariantIds(s);
    const int take =
        std::min<int>(variants_per_stage, static_cast<int>(ids.size()));
    sel.stage_variant_ids[static_cast<size_t>(s)].assign(
        ids.begin(), ids.begin() + take);
  }
  return sel;
}

MvxSelection MvxSelection::PerStage(const OfflineBundle& bundle,
                                    const std::vector<int>& counts) {
  MvxSelection sel;
  sel.stage_variant_ids.resize(static_cast<size_t>(bundle.num_stages));
  for (int32_t s = 0; s < bundle.num_stages; ++s) {
    auto ids = bundle.StageVariantIds(s);
    int want = s < static_cast<int32_t>(counts.size())
                   ? counts[static_cast<size_t>(s)]
                   : 1;
    const int take = std::min<int>(std::max(want, 1),
                                   static_cast<int>(ids.size()));
    sel.stage_variant_ids[static_cast<size_t>(s)].assign(
        ids.begin(), ids.begin() + take);
  }
  return sel;
}

MvxSelection::Builder& MvxSelection::Builder::Stage(
    int32_t stage, std::vector<std::string> ids) {
  explicit_ids_[stage] = std::move(ids);
  counts_.erase(stage);
  return *this;
}

MvxSelection::Builder& MvxSelection::Builder::Stage(int32_t stage,
                                                    int count) {
  counts_[stage] = count;
  explicit_ids_.erase(stage);
  return *this;
}

MvxSelection::Builder& MvxSelection::Builder::Uniform(
    int variants_per_stage) {
  default_count_ = variants_per_stage;
  return *this;
}

MvxSelection MvxSelection::Builder::Build(const OfflineBundle& bundle) const {
  MvxSelection sel;
  sel.stage_variant_ids.resize(static_cast<size_t>(bundle.num_stages));
  for (int32_t s = 0; s < bundle.num_stages; ++s) {
    auto& out = sel.stage_variant_ids[static_cast<size_t>(s)];
    if (auto it = explicit_ids_.find(s); it != explicit_ids_.end()) {
      out = it->second;
      continue;
    }
    auto ids = bundle.StageVariantIds(s);
    auto cit = counts_.find(s);
    const int want = cit != counts_.end() ? cit->second : default_count_;
    const int take =
        std::min<int>(std::max(want, 1), static_cast<int>(ids.size()));
    out.assign(ids.begin(), ids.begin() + take);
  }
  return sel;
}

Monitor::Monitor(std::unique_ptr<tee::Enclave> enclave,
                 tee::SimulatedCpu* cpu, MonitorConfig config)
    : enclave_(std::move(enclave)), cpu_(cpu), config_(config) {
  BindMetrics();
  // The registry is process-wide and cumulative; remember what was
  // already there so ConsumeStats() only reports this monitor's work.
  consumed_base_ = RegistryBaseline();
  // The monitor records into the (immortal) process-default ring; expose
  // it to the collector as the "monitor" timeline for the merged trace.
  obs::TraceCollector::Default().Register(
      "monitor", std::shared_ptr<obs::TraceBuffer>(
                     &obs::TraceBuffer::Default(), [](obs::TraceBuffer*) {}));
}

void Monitor::BindMetrics() {
  m_.checkpoints_evaluated =
      &metrics_->GetCounter("monitor.checkpoints_evaluated");
  m_.fast_path_forwards = &metrics_->GetCounter("monitor.fast_path_forwards");
  m_.divergences = &metrics_->GetCounter("monitor.divergences");
  m_.late_divergences = &metrics_->GetCounter("monitor.late_divergences");
  m_.variant_failures = &metrics_->GetCounter("monitor.variant_failures");
  m_.bytes_sent = &metrics_->GetCounter("monitor.bytes_sent");
  m_.wall_us = &metrics_->GetCounter("monitor.wall_us");
  m_.batches_completed = &metrics_->GetCounter("monitor.batches_completed");
  m_.batch_latency_us = &metrics_->GetHistogram("monitor.batch_latency_us");
  m_.attest_us = &metrics_->GetHistogram("monitor.attest_us");
  m_.rebootstrap_us = &metrics_->GetHistogram("supervisor.rebootstrap_us");
  m_.wait_us = &metrics_->GetHistogram("monitor.wait_us");
  m_.verify_job_us = &metrics_->GetHistogram("monitor.verify_job_us");
  m_.verify_queue_depth = &metrics_->GetGauge("monitor.verify_queue_depth");
  m_.prefilter_hits = &metrics_->GetCounter("monitor.prefilter_hits");
  m_.full_checks = &metrics_->GetCounter("monitor.full_checks");
  m_.divergences_total = &metrics_->GetCounter("monitor.divergences_total");
  m_.verify_queue_depth_hwm =
      &metrics_->GetGauge("monitor.verify_queue_depth_hwm");
  m_.loop_heartbeat = &metrics_->GetCounter("monitor.loop_heartbeat");
  for (size_t s = 0; s < stages_.size(); ++s) {
    const std::string prefix = "monitor.stage" + std::to_string(s) + ".";
    StageMetrics& sm = stages_[s].metrics;
    sm.verify_us = &metrics_->GetHistogram(prefix + "verify_us");
    sm.forward_us = &metrics_->GetHistogram(prefix + "forward_us");
    sm.wire_us = &metrics_->GetCounter(prefix + "wire_us");
    sm.crypto_us = &metrics_->GetCounter(prefix + "crypto_us");
    sm.bytes = &metrics_->GetCounter(prefix + "bytes");
  }
}

RunStats Monitor::RegistryBaseline() const {
  RunStats s;
  s.wall_us = static_cast<int64_t>(m_.wall_us->value());
  s.checkpoints_evaluated = m_.checkpoints_evaluated->value();
  s.fast_path_forwards = m_.fast_path_forwards->value();
  s.divergences = m_.divergences->value();
  s.late_divergences = m_.late_divergences->value();
  s.variant_failures = m_.variant_failures->value();
  s.bytes_sent = m_.bytes_sent->value();
  return s;
}

Monitor::~Monitor() { (void)Shutdown(); }

util::Result<std::unique_ptr<Monitor>> Monitor::Create(
    tee::SimulatedCpu* cpu, MonitorConfig config, tee::TeeType tee_type) {
  // The monitor is deliberately tiny: it fits the small integrity-
  // protected SGX1 EPC (§6.5 "Monitor security").
  MVTEE_ASSIGN_OR_RETURN(
      auto enclave,
      cpu->LaunchEnclave(tee_type, util::ToBytes("mvtee-monitor-v1"),
                         tee::MonitorManifest(), 256));
  return std::unique_ptr<Monitor>(
      new Monitor(std::move(enclave), cpu, config));
}

util::Result<Monitor::VariantConn> Monitor::BindVariant(
    const OfflineBundle& bundle, VariantHost& host,
    const std::string& variant_id) {
  const OfflineVariantEntry* entry = bundle.FindVariant(variant_id);
  if (entry == nullptr) {
    return util::NotFound("variant '" + variant_id + "' not in bundle");
  }
  obs::ScopedSpan attest_span("monitor/attest",
                              {.stage = entry->stage, .tag = variant_id},
                              &obs::TraceBuffer::Default(), m_.attest_us);
  MVTEE_ASSIGN_OR_RETURN(transport::Endpoint endpoint,
                         host.SpawnVariantTee());

  VariantConn conn;
  conn.id = variant_id;
  uint64_t report_id = 0;
  util::Bytes report_bytes;
  if (host.options().plaintext_channels) {
    conn.channel =
        std::make_unique<transport::PlainMsgChannel>(std::move(endpoint));
  } else {
    // Attest: the spawned TEE must measure as the public init-variant.
    MVTEE_ASSIGN_OR_RETURN(
        auto secure,
        transport::SecureChannel::Handshake(
            std::move(endpoint), transport::SecureChannel::Role::kClient,
            *enclave_,
            transport::ExpectMeasurement(*cpu_,
                                         host.init_variant_measurement()),
            config_.recv_timeout_us));
    report_id = secure->peer_report().enclave_id;
    report_bytes = secure->peer_report().Serialize();
    conn.channel =
        std::make_unique<transport::SecureMsgChannel>(std::move(secure));
  }

  // Key distribution + identity assignment.
  AssignIdentityMsg assign;
  assign.variant_id = variant_id;
  assign.variant_key = entry->variant_key;
  MVTEE_RETURN_IF_ERROR(conn.channel->Send(EncodeAssignIdentity(assign)));
  MVTEE_ASSIGN_OR_RETURN(util::Bytes frame,
                         conn.channel->Recv(config_.recv_timeout_us));
  MVTEE_ASSIGN_OR_RETURN(IdentityAckMsg ack, DecodeIdentityAck(frame));
  if (!ack.ok) {
    return util::Internal("variant '" + variant_id +
                          "' failed bootstrap: " + ack.error);
  }
  if (ack.variant_id != variant_id) {
    return util::AttestationFailure("identity mismatch in ack");
  }
  // Evidence check: the locked second-stage manifest must be exactly the
  // one sealed by the offline tool.
  if (!util::ConstantTimeEqual(
          util::ByteSpan(ack.manifest_hash.data(), ack.manifest_hash.size()),
          util::ByteSpan(entry->manifest_hash.data(),
                         entry->manifest_hash.size()))) {
    return util::AttestationFailure("second-stage manifest evidence mismatch");
  }

  {
    std::lock_guard<std::mutex> lock(bindings_mu_);
    bindings_.push_back(
        {entry->stage, variant_id, report_id, true, std::move(report_bytes)});
  }
  return conn;
}

util::Status Monitor::ConfigureRoutes(VariantHost& host) {
  const size_t num_stages = stages_.size();
  // Every variant channel feeds the shared readiness set; the run loop
  // blocks on it instead of spinning over Recv(0).
  for (auto& stage : stages_) {
    for (auto& conn : stage.variants) {
      conn.channel->AttachWaiter(wait_set_);
    }
  }
  model_input_slots_.assign(num_stages, {});
  monitor_forwards_.assign(num_stages, {});
  stage_reports_.assign(num_stages, true);
  stage_feed_count_.assign(num_stages, 0);
  num_fast_path_stages_ = 0;
  for (const auto& stage : stages_) {
    if (!stage.is_mvx()) ++num_fast_path_stages_;
  }

  std::vector<bool> produces_model_output(num_stages, false);
  for (const auto& src : model_outputs_) {
    produces_model_output[static_cast<size_t>(src.stage)] = true;
  }

  // Per-variant routing messages (stage, variant index) -> msg.
  std::map<std::pair<size_t, size_t>, SetupRoutesMsg> route_msgs;

  for (size_t c = 0; c < num_stages; ++c) {
    // Group consumer slots by producer stage.
    std::map<int32_t, std::vector<std::pair<uint32_t, uint32_t>>> from_stage;
    for (size_t j = 0; j < stage_inputs_[c].size(); ++j) {
      const auto& src = stage_inputs_[c][j];
      if (src.stage < 0) {
        model_input_slots_[c].push_back(
            {static_cast<uint32_t>(j), static_cast<uint32_t>(src.index)});
      } else {
        from_stage[src.stage].push_back(
            {static_cast<uint32_t>(src.index), static_cast<uint32_t>(j)});
      }
    }
    for (const auto& [p, mapping] : from_stage) {
      const size_t ps = static_cast<size_t>(p);
      const bool direct =
          config_.direct_fastpath && !stages_[ps].is_mvx();
      if (!direct) {
        monitor_forwards_[ps].push_back(
            {static_cast<int32_t>(c), mapping});
        continue;
      }
      // One pipe from the producer's single variant to every variant of
      // the consumer stage.
      for (size_t vc = 0; vc < stages_[c].variants.size(); ++vc) {
        uint64_t pipe = host.CreatePipe();
        route_msgs[{ps, 0}].downstream.push_back({pipe, mapping});
        route_msgs[{c, vc}].upstream.push_back({pipe});
      }
    }
  }

  if (config_.direct_fastpath) {
    for (size_t s = 0; s < num_stages; ++s) {
      stage_reports_[s] =
          stages_[s].is_mvx() || produces_model_output[s];
    }
  }

  // Input-send counts per stage (timeout classification): one send for
  // the model-input admit plus one per monitor-mediated producer.
  for (size_t s = 0; s < num_stages; ++s) {
    if (!model_input_slots_[s].empty()) ++stage_feed_count_[s];
    for (const auto& target : monitor_forwards_[s]) {
      ++stage_feed_count_[static_cast<size_t>(target.consumer_stage)];
    }
  }

  // Ensure every variant whose report flag differs from the default, or
  // that has routes, receives a message. Send everything first, then
  // collect acks (avoids handshake ordering deadlocks).
  std::vector<std::pair<size_t, size_t>> sent;
  for (size_t s = 0; s < num_stages; ++s) {
    for (size_t v = 0; v < stages_[s].variants.size(); ++v) {
      auto it = route_msgs.find({s, v});
      const bool has_routes = it != route_msgs.end();
      if (!has_routes && stage_reports_[s]) continue;  // defaults suffice
      SetupRoutesMsg msg = has_routes ? it->second : SetupRoutesMsg{};
      msg.report_to_monitor = stage_reports_[s];
      MVTEE_RETURN_IF_ERROR(
          stages_[s].variants[v].channel->Send(EncodeSetupRoutes(msg)));
      sent.push_back({s, v});
    }
  }
  for (const auto& [s, v] : sent) {
    MVTEE_ASSIGN_OR_RETURN(
        util::Bytes frame,
        stages_[s].variants[v].channel->Recv(config_.recv_timeout_us));
    MVTEE_ASSIGN_OR_RETURN(RoutesAckMsg ack, DecodeRoutesAck(frame));
    if (!ack.ok) {
      return util::Internal("route setup failed at " +
                            stages_[s].variants[v].id + ": " + ack.error);
    }
  }
  routes_configured_ = true;
  return util::OkStatus();
}

util::Status Monitor::Initialize(const OfflineBundle& bundle,
                                 const MvxSelection& selection,
                                 VariantHost& host) {
  StopService();  // reconfiguration requires a quiesced request loop
  if (selection.stage_variant_ids.size() !=
      static_cast<size_t>(bundle.num_stages)) {
    return util::InvalidArgument("selection stage count mismatch");
  }
  if (config_.reaction.kind == ReactionKind::kQuarantineAndRestart &&
      config_.direct_fastpath) {
    // Quarantining reroutes a panel mid-run; variant-to-variant pipes
    // cannot be re-brokered without tearing the whole pipeline down.
    return util::InvalidArgument(
        "ReactionPolicy::QuarantineAndRestart requires monitor-mediated "
        "routing (direct_fastpath = false)");
  }
  std::vector<StageState> stages(static_cast<size_t>(bundle.num_stages));
  for (int32_t s = 0; s < bundle.num_stages; ++s) {
    const auto& ids = selection.stage_variant_ids[static_cast<size_t>(s)];
    if (ids.empty()) {
      return util::InvalidArgument("stage " + std::to_string(s) +
                                   " has no variants selected");
    }
    for (const std::string& id : ids) {
      const OfflineVariantEntry* entry = bundle.FindVariant(id);
      if (entry == nullptr || entry->stage != s) {
        return util::InvalidArgument("variant '" + id +
                                     "' does not belong to stage " +
                                     std::to_string(s));
      }
      MVTEE_ASSIGN_OR_RETURN(VariantConn conn,
                             BindVariant(bundle, host, id));
      stages[static_cast<size_t>(s)].variants.push_back(std::move(conn));
    }
  }
  stages_ = std::move(stages);
  stage_inputs_ = bundle.stage_inputs;
  model_outputs_ = bundle.model_outputs;
  num_model_inputs_ = bundle.num_model_inputs;
  network_ = host.options().network;
  crypto_bytes_per_us_ =
      host.options().plaintext_channels ? 0.0
                                        : host.options().crypto_bytes_per_us;
  initialized_ = true;
  if (config_.reaction.kind == ReactionKind::kQuarantineAndRestart) {
    // Retain the provisioning material so the supervisor can re-run the
    // two-stage bootstrap mid-run (bundle copies share the sealed
    // store; the host reference must stay valid while running).
    supervisor_ =
        std::make_unique<Supervisor>(config_.reaction, metrics_);
    supervisor_->Reset(selection.stage_variant_ids);
    lifecycle_bundle_ = bundle;
    lifecycle_host_ = &host;
  } else {
    supervisor_.reset();
    lifecycle_host_ = nullptr;
  }
  BindMetrics();  // resolves the per-stage instruments
  MVTEE_RETURN_IF_ERROR(ConfigureRoutes(host));
  return util::OkStatus();
}

util::Status Monitor::UpdateStage(const OfflineBundle& bundle,
                                  VariantHost& host, int32_t stage,
                                  const std::vector<std::string>& ids) {
  StopService();  // reconfiguration requires a quiesced request loop
  if (!initialized_) return util::FailedPrecondition("not initialized");
  if (config_.direct_fastpath) {
    return util::Unimplemented(
        "partial updates require monitor-mediated routing");
  }
  if (stage < 0 || static_cast<size_t>(stage) >= stages_.size()) {
    return util::InvalidArgument("stage out of range");
  }
  if (ids.empty()) return util::InvalidArgument("empty variant selection");

  // Bind replacements first (never reuse TEEs — §4.3).
  std::vector<VariantConn> fresh;
  for (const std::string& id : ids) {
    const OfflineVariantEntry* entry = bundle.FindVariant(id);
    if (entry == nullptr || entry->stage != stage) {
      return util::InvalidArgument("variant '" + id +
                                   "' does not belong to stage " +
                                   std::to_string(stage));
    }
    MVTEE_ASSIGN_OR_RETURN(VariantConn conn, BindVariant(bundle, host, id));
    fresh.push_back(std::move(conn));
  }
  // Retire the old TEEs.
  StageState& st = stages_[static_cast<size_t>(stage)];
  for (auto& conn : st.variants) {
    (void)conn.channel->Send(EncodeShutdown());
    conn.channel->Close();
    std::lock_guard<std::mutex> lock(bindings_mu_);
    for (auto& b : bindings_) {
      if (b.stage == stage && b.variant_id == conn.id && b.active) {
        b.active = false;
      }
    }
  }
  st.variants = std::move(fresh);
  if (supervisor_ != nullptr) {
    // Partial updates change panel membership: rebuild the lifecycle
    // table from the live selection (all slots restart Healthy).
    std::vector<std::vector<std::string>> current(stages_.size());
    for (size_t s = 0; s < stages_.size(); ++s) {
      for (const auto& conn : stages_[s].variants) {
        current[s].push_back(conn.id);
      }
    }
    supervisor_->Reset(current);
    lifecycle_bundle_ = bundle;
    lifecycle_host_ = &host;
  }
  // Horizontal scaling may change fast/slow classification.
  MVTEE_RETURN_IF_ERROR(ConfigureRoutes(host));
  return util::OkStatus();
}

util::Status Monitor::FullUpdate(const OfflineBundle& bundle,
                                 const MvxSelection& selection,
                                 VariantHost& host) {
  MVTEE_RETURN_IF_ERROR(Shutdown());
  return Initialize(bundle, selection, host);
}

util::Status Monitor::StartService(const ServiceConfig& config) {
  std::lock_guard<std::mutex> lock(service_ctl_mu_);
  if (service_running_) return util::OkStatus();
  if (!initialized_) return util::FailedPrecondition("not initialized");
  util::KnobRegistry::Default().WarnUnknownOnce();
  if (!service_) service_ = std::make_shared<internal::ServiceState>();
  service_->BindMetrics(*metrics_);
  service_config_ = config;
  service_config_.scheduler = SchedulerConfig::FromEnv(config.scheduler);
  {
    std::lock_guard<std::mutex> state_lock(service_->mu);
    service_->accepting = true;
    service_->queue_max = config.admission_queue_max;
    service_->waker = wait_set_;
  }
  service_thread_ = std::thread(&Monitor::ServiceLoop, this);
  service_running_ = true;
  return util::OkStatus();
}

void Monitor::StopService() {
  std::lock_guard<std::mutex> lock(service_ctl_mu_);
  if (!service_running_) return;
  {
    std::lock_guard<std::mutex> state_lock(service_->mu);
    service_->accepting = false;
  }
  service_->cv.notify_all();
  wait_set_->Notify();  // a parked serving stream quiesces promptly
  service_thread_.join();
  service_running_ = false;
}

util::Result<std::unique_ptr<Session>> Monitor::OpenSession() {
  std::shared_ptr<internal::ServiceState> state;
  {
    std::lock_guard<std::mutex> lock(service_ctl_mu_);
    if (!service_running_) {
      return util::FailedPrecondition("service not started");
    }
    state = service_;
  }
  uint64_t id;
  {
    std::lock_guard<std::mutex> state_lock(state->mu);
    id = state->next_session_id++;
    state->sessions[id] = internal::ServiceState::SessionInfo{};
    state->sessions_active->Add(1);
  }
  return std::unique_ptr<Session>(new Session(std::move(state), id));
}

Monitor::ServiceStatusSnapshot Monitor::ServiceStatus() {
  ServiceStatusSnapshot out;
  std::shared_ptr<internal::ServiceState> state;
  {
    std::lock_guard<std::mutex> lock(service_ctl_mu_);
    out.running = service_running_;
    out.max_batch = service_config_.scheduler.max_batch;
    out.continuous = service_config_.scheduler.continuous;
    out.edf = service_config_.scheduler.edf;
    out.batch_window_us = service_config_.scheduler.batch_window_us;
    out.tenant_quota_pct = service_config_.scheduler.tenant_quota_pct;
    state = service_;
  }
  if (!state) return out;
  std::lock_guard<std::mutex> state_lock(state->mu);
  out.accepting = state->accepting;
  out.queue_depth = state->queued_submits;
  out.queue_max = state->queue_max;
  out.sessions.reserve(state->sessions.size());
  for (const auto& [id, info] : state->sessions) {
    out.sessions.push_back({id, info.expected_seq, info.aborted});
  }
  return out;
}

void Monitor::ServiceLoop() {
  internal::ServiceState& st = *service_;
  // The formation policy lives as long as the loop so WFQ virtual
  // times carry fairness memory across serving streams.
  BatchFormer former(service_config_.scheduler);
  for (;;) {
    bool legacy_next = false;
    {
      std::unique_lock<std::mutex> lock(st.mu);
      st.cv.wait(lock, [&] { return !st.queue.empty() || !st.accepting; });
      if (!st.accepting) {
        // Drain: everything still queued fails fast instead of running
        // against a pipeline about to be reconfigured.
        while (!st.queue.empty()) {
          internal::ServiceState::Item item = std::move(st.queue.front());
          st.queue.pop_front();
          if (item.legacy) {
            item.group_result.set_value(
                util::Unavailable("service stopped"));
          } else {
            InferenceResponse response;
            response.status = util::Unavailable("service stopped");
            response.seq = item.seq;
            item.response.set_value(std::move(response));
          }
        }
        st.queued_submits = 0;
        st.queue_depth->Set(0);
        return;
      }
      legacy_next = st.queue.front().legacy;
    }
    m_.loop_heartbeat->Add(1);

    if (legacy_next) {
      // A legacy Run() vector travels alone as one exclusive classic
      // pass (its options — sequential admission, deadlines, stats
      // handle — are group-scoped).
      internal::ServiceState::Item item;
      {
        std::lock_guard<std::mutex> lock(st.mu);
        item = std::move(st.queue.front());
        st.queue.pop_front();
        st.groups_total->Add(1);
      }
      st.inflight->Set(static_cast<int64_t>(item.batches.size()));
      item.group_result.set_value(RunStream(item.batches, item.options));
      st.inflight->Set(0);
      continue;
    }

    // Continuous serving stream: the scheduler forms batches and the
    // stream admits them as slots free, until the service stops, a
    // legacy group reaches the queue head, or the queue runs dry. A
    // stream error fails only that stream's in-flight requests; the
    // loop then starts a fresh stream for whatever is still queued.
    (void)ServeStream(former);
  }
}

util::Status Monitor::ServeStream(BatchFormer& former) {
  internal::ServiceState& st = *service_;
  const SchedulerConfig& sched = service_config_.scheduler;

  // One admitted, not-yet-answered request per pipeline slot.
  struct Pending {
    internal::ServiceState::Item item;
    int64_t admit_us = 0;
  };
  std::map<size_t, Pending> live;  // stream batch index -> request
  std::map<std::string, size_t> inflight_per_tenant;
  size_t next_index = 0;
  int64_t window_recheck_us = 0;

  auto answer = [&](internal::ServiceState::Item& item,
                    InferenceResponse response, int64_t queue_wait,
                    int64_t infer_us, int64_t verify_us, bool ok) {
    st.queue_wait_us->Observe(queue_wait);
    st.coalesce_us->Observe(0);  // formation is per-slot, not per-pass
    st.infer_us->Observe(infer_us);
    st.verify_us->Observe(verify_us);
    obs::RequestTimeline timeline;
    timeline.trace_id = response.trace_id;
    timeline.session_id = item.session_id;
    timeline.seq = item.seq;
    timeline.enqueue_wall_us = item.enqueue_us;
    timeline.queue_wait_us = queue_wait;
    timeline.coalesce_us = 0;
    timeline.infer_us = infer_us;
    timeline.verify_us = verify_us;
    timeline.ok = ok;
    obs::TimelineLog::Default().Note(std::move(timeline));
    item.response.set_value(std::move(response));
  };

  StreamFeed feed;
  feed.max_inflight = std::max<size_t>(1, sched.max_batch);
  feed.quiesce = [&] {
    std::lock_guard<std::mutex> lock(st.mu);
    return !st.accepting || st.queue.empty() || st.queue.front().legacy;
  };
  feed.next_wake_us = [&] { return window_recheck_us; };
  feed.refill = [&](size_t free_slots,
                    std::vector<std::vector<Tensor>>* out) -> size_t {
    window_recheck_us = 0;
    // PR 6 parity mode: a new group forms only against an empty
    // pipeline (the drain barrier the continuous scheduler removes).
    if (!sched.continuous && !live.empty()) return 0;
    const int64_t now = util::NowMicros();

    // Pull the submits ahead of any legacy barrier out of the queue;
    // unpicked ones are put back in arrival order below.
    std::vector<internal::ServiceState::Item> window;
    {
      std::lock_guard<std::mutex> lock(st.mu);
      if (!st.accepting) return 0;
      while (!st.queue.empty() && !st.queue.front().legacy) {
        window.push_back(std::move(st.queue.front()));
        st.queue.pop_front();
      }
    }
    if (window.empty()) return 0;

    // Reject expired / malformed requests before formation: they must
    // never occupy a pipeline slot.
    std::vector<internal::ServiceState::Item> viable;
    for (auto& item : window) {
      if (item.deadline_abs_us != 0 && now >= item.deadline_abs_us) {
        st.sched_deadline_misses->Add(1);
        InferenceResponse response;
        response.status =
            util::DeadlineExceeded("request expired in admission queue");
        response.seq = item.seq;
        response.latency_us = now - item.enqueue_us;
        answer(item, std::move(response), now - item.enqueue_us, 0, 0,
               false);
        continue;
      }
      if (static_cast<int64_t>(item.batches.front().size()) !=
          num_model_inputs_) {
        InferenceResponse response;
        response.status = util::InvalidArgument(
            "expected " + std::to_string(num_model_inputs_) +
            " model inputs per request");
        response.seq = item.seq;
        response.latency_us = now - item.enqueue_us;
        answer(item, std::move(response), now - item.enqueue_us, 0, 0,
               false);
        continue;
      }
      viable.push_back(std::move(item));
    }

    BatchPlan plan;
    if (!viable.empty()) {
      std::vector<SchedEntry> entries;
      entries.reserve(viable.size());
      for (const auto& item : viable) {
        SchedEntry e;
        e.id = item.ticket;
        e.tenant = item.tenant;
        e.priority = item.priority;
        e.deadline_abs_us = item.deadline_abs_us;
        e.enqueue_us = item.enqueue_us;
        entries.push_back(std::move(e));
      }
      plan = former.Form(entries, now, free_slots, inflight_per_tenant);
      window_recheck_us = plan.recheck_at_us;
    }

    std::vector<char> picked(viable.size(), 0);
    for (size_t i : plan.picks) picked[i] = 1;
    for (size_t i : plan.picks) {
      internal::ServiceState::Item& item = viable[i];
      ++inflight_per_tenant[item.tenant];
      out->push_back(std::move(item.batches.front()));
      live.emplace(next_index++, Pending{std::move(item), now});
    }

    // Put unpicked submits back at the queue head, original order.
    size_t requeued = 0;
    {
      std::lock_guard<std::mutex> lock(st.mu);
      for (size_t i = viable.size(); i-- > 0;) {
        if (picked[i]) continue;
        st.queue.push_front(std::move(viable[i]));
        ++requeued;
      }
      st.queued_submits = 0;
      for (const auto& qi : st.queue) {
        if (!qi.legacy) ++st.queued_submits;
      }
      st.queue_depth->Set(static_cast<int64_t>(st.queued_submits));
    }
    (void)requeued;

    if (!plan.picks.empty()) {
      st.groups_total->Add(1);
      st.sched_preemptions->Add(plan.preemptions);
      st.sched_occupancy->Observe(static_cast<int64_t>(live.size()));
      st.inflight->Set(static_cast<int64_t>(live.size()));
    }
    return plan.picks.size();
  };
  feed.deliver = [&](size_t b, std::vector<Tensor> outputs,
                     int64_t verify_us, uint64_t trace_id) {
    auto it = live.find(b);
    if (it == live.end()) return;
    Pending& p = it->second;
    const int64_t done = util::NowMicros();
    InferenceResponse response;
    response.seq = p.item.seq;
    response.latency_us = done - p.item.enqueue_us;
    response.trace_id = trace_id;
    response.outputs = std::move(outputs);
    if (p.item.deadline_abs_us != 0 && done > p.item.deadline_abs_us) {
      // Late success: still answered (the work is done and verified),
      // but it is a scheduler deadline miss — goodput counts it out.
      st.sched_deadline_misses->Add(1);
    }
    st.request_latency_us->Observe(response.latency_us);
    st.TenantGoodput(p.item.tenant).Add(1);
    answer(p.item, std::move(response), p.admit_us - p.item.enqueue_us,
           done - p.admit_us, verify_us, true);
    auto tit = inflight_per_tenant.find(p.item.tenant);
    if (tit != inflight_per_tenant.end() && tit->second > 0) --tit->second;
    live.erase(it);
    st.inflight->Set(static_cast<int64_t>(live.size()));
  };

  RunOptions options;
  options.pipelined = true;
  auto result = RunStream({}, options, &feed);
  util::Status status = result.status();

  // A stream abort leaves admitted-but-unanswered requests: fail each
  // with the stream error (or its own deadline, when that is the
  // truer story). Requests answered before the abort keep their
  // results — stream failure is not retroactive.
  const int64_t done = util::NowMicros();
  for (auto& [b, p] : live) {
    InferenceResponse response;
    response.seq = p.item.seq;
    response.latency_us = done - p.item.enqueue_us;
    if (!status.ok() && p.item.deadline_abs_us != 0 &&
        done >= p.item.deadline_abs_us) {
      st.sched_deadline_misses->Add(1);
      response.status = util::DeadlineExceeded(
          "request deadline passed: " + status.ToString());
    } else if (!status.ok()) {
      response.status = status;
    } else {
      response.status = util::Unavailable("serving stream ended");
    }
    answer(p.item, std::move(response), p.admit_us - p.item.enqueue_us,
           done - p.admit_us, 0, false);
  }
  live.clear();
  st.inflight->Set(0);
  return status;
}

util::Result<std::vector<std::vector<Tensor>>> Monitor::Run(
    const std::vector<std::vector<Tensor>>& batches,
    const RunOptions& options) {
  if (!initialized_) return util::FailedPrecondition("not initialized");
  static std::once_flag deprecation_once;
  std::call_once(deprecation_once, [] {
    MVTEE_WLOG << "Monitor::Run(batches) is deprecated and will be removed "
               << "next release; use OpenSession() + Session::Submit "
               << "(migration table in README)";
  });
  MVTEE_RETURN_IF_ERROR(StartService(service_config_));
  std::future<util::Result<std::vector<std::vector<Tensor>>>> future;
  {
    std::lock_guard<std::mutex> lock(service_->mu);
    if (!service_->accepting) return util::Unavailable("service stopped");
    internal::ServiceState::Item item;
    item.legacy = true;
    item.batches = batches;
    item.options = options;
    item.enqueue_us = util::NowMicros();
    future = item.group_result.get_future();
    service_->queue.push_back(std::move(item));
  }
  service_->cv.notify_one();
  {
    // Wake a parked serving stream so it quiesces for the legacy pass.
    std::shared_ptr<transport::WaitSet> waker;
    {
      std::lock_guard<std::mutex> lock(service_->mu);
      waker = service_->waker;
    }
    if (waker) waker->Notify();
  }
  return future.get();
}

void Monitor::DeactivateBinding(int32_t stage,
                                const std::string& variant_id) {
  std::lock_guard<std::mutex> lock(bindings_mu_);
  for (auto& b : bindings_) {
    if (b.stage == stage && b.variant_id == variant_id && b.active) {
      b.active = false;
    }
  }
}

void Monitor::RebootstrapSlot(size_t stage, size_t vi) {
  VariantConn& conn = stages_[stage].variants[vi];
  supervisor_->BeginRebootstrap(stage, vi);
  obs::ScopedSpan span("monitor/rebootstrap",
                       {.stage = static_cast<int32_t>(stage),
                        .tag = conn.id},
                       &obs::TraceBuffer::Default(), m_.rebootstrap_us);
  auto fresh = BindVariant(lifecycle_bundle_, *lifecycle_host_, conn.id);
  const bool ok = fresh.ok();
  if (ok) {
    conn.channel = std::move(fresh->channel);
    conn.channel->AttachWaiter(wait_set_);
  }
  supervisor_->FinishRebootstrap(stage, vi, ok, util::NowMicros());
}

util::Result<std::vector<std::vector<Tensor>>> Monitor::RunStream(
    const std::vector<std::vector<Tensor>>& batches,
    const RunOptions& options, StreamFeed* feed) {
  const bool pipelined = options.pipelined;
  if (!initialized_) return util::FailedPrecondition("not initialized");
  const size_t num_batches = batches.size();
  if (feed == nullptr) {
    if (num_batches == 0) return std::vector<std::vector<Tensor>>{};
    for (const auto& b : batches) {
      if (static_cast<int64_t>(b.size()) != num_model_inputs_) {
        return util::InvalidArgument("expected " +
                                     std::to_string(num_model_inputs_) +
                                     " model inputs per batch");
      }
    }
  }
  const size_t num_stages = stages_.size();
  // Feed mode allocates batch ids lazily, one per admitted request;
  // RunStream calls are serialized on the service thread so the ids
  // stay contiguous from `base`.
  const uint64_t base = feed != nullptr
                            ? next_batch_id_.load()
                            : next_batch_id_.fetch_add(num_batches);
  // One distributed trace per inference batch (DESIGN.md §8): the
  // monitor's admit/forward/verify spans and — via the authenticated
  // channel headers — every variant-side span share a batch's id.
  std::vector<uint64_t> trace_ids(num_batches);
  for (auto& t : trace_ids) t = obs::NewTraceId();
  if (options.trace_ids != nullptr) *options.trace_ids = trace_ids;
  const int64_t run_vstart = vclock_us_;
  const int64_t wall_start = util::NowMicros();
  obs::ScopedSpan run_span("monitor/run",
                           {.tag = pipelined ? "pipelined" : "sequential"});
  // This call's own statistics; merged into the metrics registry (and
  // the ConsumeStats() backlog) when the run finishes.
  RunStats rstats;
  rstats.batch_verify_us.assign(num_batches, 0);  // grows per feed admit
  auto channel_bytes = [&] {
    uint64_t total = 0;
    for (const auto& stage : stages_) {
      for (const auto& conn : stage.variants) {
        total += conn.channel->bytes_sent();
      }
    }
    return total;
  };
  const uint64_t bytes0 = channel_bytes();
  // Virtual-time model of the monitor: admissions are serialized on the
  // monitor's ingestion clock (vclock_us_), but checkpoint decisions are
  // timed per flow — a decision happens at the latest virtual arrival of
  // the results it used, plus the measured verification cost. This
  // reflects a monitor that serves independent streams concurrently and
  // keeps async cross-validation from being retarded by stragglers.
  int64_t handling_cpu0 = util::ThreadCpuMicros();
  int64_t send_cpu_excluded = 0;
  // Virtual base time of the event being handled (set per event).
  int64_t event_vbase = vclock_us_;
  auto vnow = [&] {
    return event_vbase +
           (util::ThreadCpuMicros() - handling_cpu0 - send_cpu_excluded);
  };
  // Models the stage-boundary crossing cost of one frame and charges it
  // to the destination stage's wire/crypto/bytes instruments.
  auto charge_boundary = [&](size_t dest, size_t bytes) {
    const auto wire =
        static_cast<int64_t>(transport::WireMicros(network_, bytes));
    int64_t crypto = 0;
    if (crypto_bytes_per_us_ > 0) {
      crypto = static_cast<int64_t>(2.0 * static_cast<double>(bytes) /
                                    crypto_bytes_per_us_);
    }
    StageMetrics& sm = stages_[dest].metrics;
    sm.wire_us->Add(static_cast<uint64_t>(wire));
    sm.crypto_us->Add(static_cast<uint64_t>(crypto));
    sm.bytes->Add(bytes);
    return wire + crypto;
  };

  // How many non-reporting fast-path stages each completed batch has
  // silently traversed (direct routing only).
  size_t silent_fast_stages = 0;
  for (size_t s = 0; s < num_stages; ++s) {
    if (!stages_[s].is_mvx() && !stage_reports_[s]) ++silent_fast_stages;
  }

  struct BatchState {
    // Per stage: result per variant (reporting stages only). Slots are
    // written at most once (duplicate frames are dropped), so a settled
    // slot can be read from a verify worker without racing the
    // ingestion thread writing other slots.
    std::map<size_t, std::vector<std::optional<InferResultMsg>>> reports;
    // Per stage: digest summary per panel slot (prefilter, computed
    // once on ingestion).
    std::map<size_t, std::vector<OutputsSummary>> summaries;
    std::map<size_t, std::vector<Tensor>> chosen;
    // Lazily cached summary of the chosen outputs (straggler checks).
    std::map<size_t, OutputsSummary> chosen_summary;
    std::map<size_t, int64_t> v_chosen;  // virtual decision time per stage
    std::set<size_t> voted;  // stages whose verdict is final
    std::set<size_t> verify_inflight;  // stages with a pool job running
    std::set<size_t> verify_dirty;     // reports arrived while in flight
    bool complete = false;
    int64_t admit_vus = 0;  // virtual admission time
    // Panel membership, frozen per batch at admission: 0 = excluded
    // (quarantined / retired), 1 = voting, 2 = shadow (probation).
    // Mid-batch transitions only affect later batches' masks.
    std::vector<std::vector<char>> masks;
    // Shadow (probation) reports, judged against the accepted outputs
    // once the stage verdict commits — never part of the vote.
    std::map<size_t, std::vector<std::optional<InferResultMsg>>> shadow;
    std::map<size_t, std::vector<OutputsSummary>> shadow_sums;
    // Input sends completed per stage; a stage "owes" reports only once
    // feeds_done == stage_feed_count_ (timeout classification).
    std::vector<size_t> feeds_done;
    // Verify-pool jobs holding pointers into this state (worker side or
    // queued applier). GC of a completed batch waits for zero.
    size_t jobs_inflight = 0;
  };
  // Deque: pointer-stable across both the feed's push_back growth and
  // the sliding-window pop_front GC (workers hold BatchState*).
  std::deque<BatchState> bs;
  if (feed == nullptr) bs.resize(num_batches);
  // Stream indices below window_base are completed, GC'd batches; live
  // state for batch b is bat(b).
  size_t window_base = 0;
  auto bat = [&](size_t b) -> BatchState& { return bs[b - window_base]; };
  // Cross-validation worker pool (declared after `bs`: destroyed first,
  // so in-flight jobs never outlive the state they read). Completed
  // jobs notify the wait set so the loop below wakes up.
  VerifyPool pool(config_.verify_threads, wait_set_);

  // Flight recorder (DESIGN.md §8): every committed verdict is noted
  // into the bounded ring; on divergence / auth failure / abort the
  // retained ring plus the affected batch's trace slice is dumped as a
  // self-contained evidence bundle ($MVTEE_EVIDENCE_DIR).
  obs::FlightRecorder& recorder = obs::FlightRecorder::Default();
  bool evidence_dumped = false;
  // Records one checkpoint verdict. `fast` supplies the report on the
  // fast path (k == 1), where the panel-report map is never populated.
  auto note_checkpoint = [&](size_t s, size_t b, std::string verdict,
                             int64_t v_decide,
                             const std::vector<int>& dissenters = {},
                             const InferResultMsg* fast = nullptr) {
    obs::CheckpointEvidence ev;
    ev.trace_id = trace_ids[b];
    ev.batch = base + b;
    ev.stage = static_cast<int32_t>(s);
    ev.verdict = std::move(verdict);
    ev.v_decide_us = v_decide;
    BatchState& state = bat(b);
    const size_t k = stages_[s].variants.size();
    const auto rit = state.reports.find(s);
    const auto sit = state.summaries.find(s);
    for (size_t i = 0; i < k; ++i) {
      obs::VariantEvidence ve;
      ve.variant_id = stages_[s].variants[i].id;
      if (fast != nullptr && k == 1) {
        ve.ok = fast->ok;
        ve.vtime_us = fast->vtime_us;
      } else if (rit != state.reports.end() && i < rit->second.size() &&
                 rit->second[i].has_value()) {
        ve.ok = rit->second[i]->ok;
        ve.vtime_us = rit->second[i]->vtime_us;
      }
      if (sit != state.summaries.end() && i < sit->second.size()) {
        ve.digest = sit->second[i].digest;
        ve.nonfinite = sit->second[i].nonfinite;
      }
      for (int d : dissenters) {
        if (d == static_cast<int>(i)) ve.dissent = true;
      }
      ev.variants.push_back(std::move(ve));
    }
    recorder.Note(std::move(ev));
  };
  // First incident wins; later failures in the same run ride along in
  // the already-written ring.
  auto dump_evidence = [&](const std::string& trigger, size_t b,
                           const std::string& detail) {
    if (evidence_dumped) return;
    evidence_dumped = true;
    (void)recorder.DumpBundle(trigger, trace_ids[b], detail);
  };

  // --- lifecycle supervision (ReactionKind::kQuarantineAndRestart) ---
  const bool supervised = supervisor_ != nullptr;
  bool lifecycle_events = false;       // any transition this run
  size_t lifecycle_trigger_batch = 0;  // first affected batch (evidence)
  // Settles a departed slot's owed reports as failures so waiting votes
  // proceed without the recv timeout. Assigned after handle_result
  // (mutual recursion: quarantine -> settle -> handle_result).
  std::function<void(size_t, size_t, const char*)> settle_owed;

  // Lifecycle verdict record ("quarantine" / "rebootstrap" / "readmit" /
  // "retired") on the affected batch's trace.
  auto note_lifecycle = [&](size_t s, size_t vi, const char* verdict,
                            size_t b, const std::string& why) {
    obs::CheckpointEvidence ev;
    ev.trace_id = trace_ids[b];
    ev.batch = base + b;
    ev.stage = static_cast<int32_t>(s);
    ev.verdict = verdict;
    ev.v_decide_us = vclock_us_;
    (void)why;  // reaches the trace via the rebootstrap/verify spans
    obs::VariantEvidence ve;
    ve.variant_id = stages_[s].variants[vi].id;
    ve.ok = std::string_view(verdict) == "readmit" ||
            std::string_view(verdict) == "rebootstrap";
    ve.dissent = !ve.ok;
    ev.variants.push_back(std::move(ve));
    recorder.Note(std::move(ev));
    if (!lifecycle_events) lifecycle_trigger_batch = b;
    lifecycle_events = true;
  };

  // Channel teardown + audit for a slot that just left the panel.
  auto detach_slot = [&](size_t s, size_t vi) {
    stages_[s].variants[vi].channel->Close();
    DeactivateBinding(static_cast<int32_t>(s), stages_[s].variants[vi].id);
  };

  auto on_quarantined = [&](size_t s, size_t vi, size_t b,
                            const std::string& why) {
    detach_slot(s, vi);
    note_lifecycle(s, vi, "quarantine", b, why);
    if (settle_owed) settle_owed(s, vi, "quarantined");
  };

  // Hard failure: quarantine when the supervisor allows the shrink.
  // Returns false when unsupervised, at the panel floor, or on a
  // fast-path (k == 1) stage — callers keep their old error handling.
  auto lifecycle_failure = [&](size_t s, size_t vi, size_t b,
                               FailureKind kind) {
    if (!supervised || !stages_[s].is_mvx()) return false;
    if (!supervisor_->ReportFailure(s, vi, kind, util::NowMicros())) {
      return false;
    }
    on_quarantined(s, vi, b, std::string(FailureKindName(kind)));
    return true;
  };

  // Checkpoint dissent: Healthy -> Suspect, then Quarantined once
  // ReactionPolicy::dissent_threshold verdicts accumulate.
  auto lifecycle_dissent = [&](size_t s, size_t vi, size_t b) {
    if (!supervised) return;
    if (supervisor_->ReportDissent(s, vi, util::NowMicros())) {
      on_quarantined(s, vi, b, "dissent");
    }
  };

  util::Status run_error = util::OkStatus();
  size_t completed = 0;
  size_t admitted = 0;
  // Pipelined latency is reported as steady-state time-per-result
  // (inter-completion interval): the latency a streaming client observes
  // per answer. Sequential latency is per-batch end-to-end. Both are in
  // virtual time.
  int64_t last_completion_vus = run_vstart;

  auto admit = [&](size_t b, const std::vector<Tensor>& inputs) {
    // Root of batch b's distributed trace; the span's context rides to
    // every variant in the sends' authenticated plaintext headers.
    obs::TraceContextScope troot(trace_ids[b], 0);
    obs::ScopedSpan span("monitor/admit",
                         {.batch = static_cast<int64_t>(base + b), .tag = {}});
    const util::Bytes tctx = EncodeTraceContext(span.context());
    // Admission is its own virtual-time event: save/restore the bases
    // so a caller mid-event (defensive; the loop only admits top-level)
    // keeps its own timeline intact.
    const int64_t saved_vbase = event_vbase;
    const int64_t saved_cpu0 = handling_cpu0;
    const int64_t saved_excluded = send_cpu_excluded;
    event_vbase = vclock_us_;
    handling_cpu0 = util::ThreadCpuMicros();
    send_cpu_excluded = 0;
    bat(b).admit_vus = vnow();
    // Freeze panel membership for this batch: quarantined slots get no
    // inputs, probation slots shadow-execute.
    BatchState& bstate = bat(b);
    bstate.masks.resize(num_stages);
    bstate.feeds_done.assign(num_stages, 0);
    for (size_t s = 0; s < num_stages; ++s) {
      bstate.masks[s].assign(stages_[s].variants.size(), 1);
      if (!supervised) continue;
      for (size_t vi = 0; vi < stages_[s].variants.size(); ++vi) {
        if (supervisor_->Voting(s, vi)) {
          bstate.masks[s][vi] = 1;
        } else if (supervisor_->Shadow(s, vi)) {
          bstate.masks[s][vi] = 2;
        } else {
          bstate.masks[s][vi] = 0;
        }
      }
    }
    for (size_t s = 0; s < num_stages; ++s) {
      if (model_input_slots_[s].empty()) continue;
      InferMsg msg;
      msg.batch_id = base + b;
      for (const auto& [slot, input_idx] : model_input_slots_[s]) {
        msg.slots.push_back(slot);
        msg.inputs.push_back(inputs[input_idx]);
      }
      // Encoded straight into each variant's pooled wire buffer; the
      // vtime stamp depends only on the (identical) frame size, so it
      // is set per variant before the single-pass encode.
      const size_t frame_size = EncodedSize(msg);
      for (size_t vi = 0; vi < stages_[s].variants.size(); ++vi) {
        if (bstate.masks[s][vi] == 0) continue;
        auto& conn = stages_[s].variants[vi];
        msg.vtime_us = static_cast<uint64_t>(
            vnow() + charge_boundary(s, frame_size));
        const int64_t send_cpu0 = util::ThreadCpuMicros();
        util::Status st = SendFrame(*conn.channel, msg, tctx);
        send_cpu_excluded += util::ThreadCpuMicros() - send_cpu0;
        if (!st.ok() && run_error.ok()) run_error = st;
      }
      ++bstate.feeds_done[s];
    }
    vclock_us_ = vnow();  // the monitor's ingestion path is serial
    ++admitted;
    event_vbase = saved_vbase;
    handling_cpu0 = saved_cpu0;
    send_cpu_excluded = saved_excluded;
  };

  auto batch_complete = [&](const BatchState& state) {
    for (const auto& src : model_outputs_) {
      if (!state.chosen.count(static_cast<size_t>(src.stage))) return false;
    }
    return true;
  };

  // Judges any shadow reports buffered while stage s's verdict was
  // pending. Assigned after dissents_from_chosen (definition order).
  std::function<void(size_t, size_t)> judge_pending_shadows;

  // Forward declaration pattern via std::function is avoided: forwarding
  // never recurses (targets are plain sends).
  auto on_chosen = [&](size_t s, size_t b) {
    BatchState& state = bat(b);
    event_vbase = state.v_chosen.count(s) ? state.v_chosen[s] : vnow();
    if (supervised && judge_pending_shadows) judge_pending_shadows(s, b);
    if (!monitor_forwards_[s].empty()) {
      obs::TraceContextScope troot(trace_ids[b], 0);
      obs::ScopedSpan span("monitor/forward",
                           {.stage = static_cast<int32_t>(s),
                            .batch = static_cast<int64_t>(base + b),
                            .tag = {}},
                           &obs::TraceBuffer::Default(),
                           stages_[s].metrics.forward_us);
      const util::Bytes tctx = EncodeTraceContext(span.context());
      for (const auto& target : monitor_forwards_[s]) {
        InferMsg msg;
        msg.batch_id = base + b;
        const auto& outputs = state.chosen[s];
        for (const auto& [out_idx, slot] : target.output_to_slot) {
          msg.slots.push_back(slot);
          msg.inputs.push_back(outputs[out_idx]);
        }
        const size_t frame_size = EncodedSize(msg);
        const auto consumer = static_cast<size_t>(target.consumer_stage);
        for (size_t vi = 0; vi < stages_[consumer].variants.size(); ++vi) {
          if (state.masks[consumer][vi] == 0) continue;
          // A panel member of this batch may have been quarantined
          // since admission: its channel is closed, skip quietly.
          if (supervised && !supervisor_->ChannelLive(consumer, vi)) {
            continue;
          }
          auto& conn = stages_[consumer].variants[vi];
          msg.vtime_us = static_cast<uint64_t>(
              vnow() + charge_boundary(consumer, frame_size));
          const int64_t send_cpu0 = util::ThreadCpuMicros();
          util::Status st = SendFrame(*conn.channel, msg, tctx);
          send_cpu_excluded += util::ThreadCpuMicros() - send_cpu0;
          if (!st.ok() && run_error.ok()) run_error = st;
        }
        ++state.feeds_done[consumer];
      }
    }
    if (!state.complete && batch_complete(state)) {
      state.complete = true;
      ++completed;
      // Completion in virtual time: the latest per-stage decision among
      // the stages producing model outputs.
      int64_t vcomplete = 0;
      for (const auto& src : model_outputs_) {
        auto it = state.v_chosen.find(static_cast<size_t>(src.stage));
        if (it != state.v_chosen.end()) {
          vcomplete = std::max(vcomplete, it->second);
        }
      }
      if (vcomplete == 0) vcomplete = vnow();
      rstats.batch_latency_us.push_back(
          pipelined ? std::max<int64_t>(0, vcomplete - last_completion_vus)
                    : vcomplete - state.admit_vus);
      rstats.fast_path_forwards += silent_fast_stages;
      last_completion_vus = std::max(last_completion_vus, vcomplete);
      if (feed != nullptr) {
        // Continuous streams are long-lived: merge accumulated counters
        // into the registry at every completion (add-and-reset, the
        // end-of-run flush adds the remainder), so /metrics and
        // ConsumeStats() reflect delivered work without waiting for the
        // stream to quiesce — a loaded stream may not quiesce for hours,
        // and the requester's future resolves before the stream ends.
        m_.checkpoints_evaluated->Add(rstats.checkpoints_evaluated);
        m_.fast_path_forwards->Add(rstats.fast_path_forwards);
        m_.divergences->Add(rstats.divergences);
        m_.late_divergences->Add(rstats.late_divergences);
        m_.variant_failures->Add(rstats.variant_failures);
        m_.batches_completed->Add(rstats.batch_latency_us.size());
        for (int64_t lat : rstats.batch_latency_us) {
          m_.batch_latency_us->Observe(lat);
        }
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          pending_latencies_.insert(pending_latencies_.end(),
                                    rstats.batch_latency_us.begin(),
                                    rstats.batch_latency_us.end());
        }
        rstats.checkpoints_evaluated = 0;
        rstats.fast_path_forwards = 0;
        rstats.divergences = 0;
        rstats.late_divergences = 0;
        rstats.variant_failures = 0;
        rstats.batch_latency_us.clear();
        // Continuous delivery: the requester gets its answer the moment
        // its batch completes — in-flight neighbors keep running.
        std::vector<Tensor> outs;
        for (const auto& src : model_outputs_) {
          outs.push_back(state.chosen[static_cast<size_t>(src.stage)]
                                     [static_cast<size_t>(src.index)]);
        }
        feed->deliver(b, std::move(outs), rstats.batch_verify_us[b],
                      trace_ids[b]);
      }
      // Sequential pacing: the next admission can only happen after this
      // completion is observed. The admission itself is deferred to the
      // event loop (its own top-level event) — calling admit() here
      // would clobber the virtual-time bases of the result event still
      // being handled.
      vclock_us_ = std::max(vclock_us_, vcomplete);
    }
  };

  // Aggregate prefilter/verify-cost bookkeeping (applied on the
  // monitor thread by job appliers). `b` attributes the verification
  // CPU to its batch for the per-request latency breakdown.
  auto note_verify_job = [&](size_t b, int64_t verify_cpu,
                             const CheckStats& cstats) {
    m_.verify_job_us->Observe(verify_cpu);
    m_.prefilter_hits->Add(cstats.prefilter_hits);
    m_.full_checks->Add(cstats.full_checks);
    rstats.batch_verify_us[b] += verify_cpu;
  };

  // The decision verdict is its own virtual-time event, parallel to
  // ingestion: it lands at the latest virtual arrival of the reports it
  // used plus the verification CPU measured on the worker.
  auto begin_decision_event = [&](BatchState& state, size_t s,
                                  int64_t verify_cpu) {
    int64_t v_decide = 0;
    for (const auto& r : state.reports[s]) {
      if (r.has_value()) {
        v_decide = std::max(v_decide, static_cast<int64_t>(r->vtime_us));
      }
    }
    state.v_chosen[s] = v_decide + verify_cpu;
    event_vbase = state.v_chosen[s];
    handling_cpu0 = util::ThreadCpuMicros();
    send_cpu_excluded = 0;
  };

  // Inline straggler/backfill consistency check against the accepted
  // outputs (prefiltered; cheap enough for the ingestion thread).
  auto dissents_from_chosen = [&](BatchState& state, size_t s,
                                  const InferResultMsg& r,
                                  const OutputsSummary& rsum) {
    if (!r.ok) return true;
    if (!state.chosen.count(s)) return false;
    if (!config_.digest_prefilter) {
      return !OutputsConsistent(r.outputs, state.chosen[s], config_.check);
    }
    auto it = state.chosen_summary.find(s);
    if (it == state.chosen_summary.end() || !it->second.valid) {
      it = state.chosen_summary
               .insert_or_assign(s, SummarizeOutputs(state.chosen[s]))
               .first;
    }
    CheckStats cstats;
    const bool ok = OutputsConsistent(r.outputs, rsum, state.chosen[s],
                                      it->second, config_.check, &cstats);
    m_.prefilter_hits->Add(cstats.prefilter_hits);
    m_.full_checks->Add(cstats.full_checks);
    return !ok;
  };

  // Probation verdict: a shadow report either agrees with the accepted
  // outputs (one step closer to readmission) or dissents (back to
  // quarantine, or retired once the retry budget is spent).
  auto judge_shadow_slot = [&](size_t s, size_t b, size_t vi) {
    BatchState& state = bat(b);
    auto shit = state.shadow.find(s);
    if (shit == state.shadow.end() || !shit->second[vi].has_value()) return;
    InferResultMsg r = std::move(*shit->second[vi]);
    shit->second[vi].reset();  // judged exactly once
    const OutputsSummary rsum = state.shadow_sums[s][vi];
    const bool agreed = r.ok && !dissents_from_chosen(state, s, r, rsum);
    switch (supervisor_->ReportProbation(s, vi, agreed, util::NowMicros())) {
      case Supervisor::ProbationOutcome::kReadmitted:
        note_lifecycle(s, vi, "readmit", b, "probation complete");
        break;
      case Supervisor::ProbationOutcome::kRequarantined:
        detach_slot(s, vi);
        note_lifecycle(s, vi, "quarantine", b, "probation dissent");
        break;
      case Supervisor::ProbationOutcome::kRetired:
        detach_slot(s, vi);
        note_lifecycle(s, vi, "retired", b, "retry budget exhausted");
        break;
      case Supervisor::ProbationOutcome::kNone:
        break;
    }
  };
  judge_pending_shadows = [&](size_t s, size_t b) {
    BatchState& state = bat(b);
    auto shit = state.shadow.find(s);
    if (shit == state.shadow.end()) return;
    for (size_t vi = 0; vi < shit->second.size(); ++vi) {
      if (shit->second[vi].has_value()) judge_shadow_slot(s, b, vi);
    }
  };

  // Finalizes an MVX stage verdict from a full panel. The O(k²) Vote
  // runs on the verify pool; the applier (monitor thread) commits the
  // verdict. Settled panel slots are captured by pointer — they are
  // final once written (duplicate frames are dropped on ingestion), so
  // workers never race the ingestion thread writing other slots.
  auto schedule_full_vote = [&](size_t s, size_t b) {
    BatchState& state = bat(b);
    BatchState* st = &state;
    const size_t k = stages_[s].variants.size();
    // Participating slots (batch mask == 1). Under supervision, failed
    // and missing members are excluded from the vote list and recorded
    // as automatic dissenters: acceptance is decided over the live
    // panel, so a degraded stage still reaches quorum (dMVX-style).
    std::vector<size_t> vmap;       // vote-list position -> panel index
    std::vector<int> auto_dissent;  // participating, excluded from list
    std::vector<const InferResultMsg*> settled;
    std::vector<OutputsSummary> sums;
    for (size_t i = 0; i < k; ++i) {
      if (supervised && state.masks[s][i] != 1) continue;
      const auto& r = state.reports[s][i];
      if (supervised && (!r.has_value() || !r->ok)) {
        auto_dissent.push_back(static_cast<int>(i));
        continue;
      }
      vmap.push_back(i);
      settled.push_back(r.has_value() ? &*r : nullptr);
      sums.push_back(i < state.summaries[s].size() ? state.summaries[s][i]
                                                   : OutputsSummary{});
    }
    VotePolicy vote_policy = config_.vote;
    if (supervised && config_.reaction.degrade_to_majority) {
      // The quarantine reaction accepts on majority (the batch serves
      // from the winning bloc); dissent still drives quarantine.
      vote_policy = VotePolicy::kMajority;
    }
    const bool prefilter = config_.digest_prefilter;
    const CheckPolicy check = config_.check;
    obs::Histogram* verify_hist = stages_[s].metrics.verify_us;
    ++state.jobs_inflight;  // released by the applier (monitor thread)
    pool.Submit([this, s, b, k, st, base, tid = trace_ids[b],
                 vmap = std::move(vmap),
                 auto_dissent = std::move(auto_dissent),
                 settled = std::move(settled),
                 sums = std::move(sums), prefilter, check, vote_policy,
                 verify_hist, &rstats, &run_error, &on_chosen,
                 &note_verify_job, &note_checkpoint, &dump_evidence,
                 &begin_decision_event,
                 &lifecycle_dissent]() -> VerifyPool::Apply {
      const size_t kv = settled.size();
      std::vector<std::vector<Tensor>> list(kv);
      for (size_t i = 0; i < kv; ++i) {
        if (settled[i] != nullptr && settled[i]->ok) {
          list[i] = settled[i]->outputs;
        }
      }
      const int64_t cpu0 = util::ThreadCpuMicros();
      VoteResult vote;
      CheckStats cstats;
      {
        // Worker thread: adopt the batch's trace so the verify span
        // lands on the same timeline as admit/forward.
        obs::TraceContextScope tscope(tid, 0);
        obs::ScopedSpan span("monitor/verify",
                             {.stage = static_cast<int32_t>(s),
                              .batch = static_cast<int64_t>(base + b),
                              .tag = "vote"},
                             &obs::TraceBuffer::Default(), verify_hist);
        vote = prefilter ? Vote(list, sums, check, vote_policy, &cstats)
                         : Vote(list, check, vote_policy);
      }
      const int64_t verify_cpu = util::ThreadCpuMicros() - cpu0;
      return [this, s, b, k, st, vote, cstats, verify_cpu,
              vmap = std::move(vmap),
              auto_dissent = std::move(auto_dissent),
              list = std::move(list), sums = std::move(sums), &rstats,
              &run_error, &on_chosen, &note_verify_job, &note_checkpoint,
              &dump_evidence, &begin_decision_event,
              &lifecycle_dissent]() mutable {
        --st->jobs_inflight;
        if (st->voted.count(s)) return;  // quorum decided meanwhile
        st->voted.insert(s);
        note_verify_job(b, verify_cpu, cstats);
        begin_decision_event(*st, s, verify_cpu);
        rstats.checkpoints_evaluated++;
        // Dissenters in panel coordinates: the vote's dissenters mapped
        // back through vmap plus the auto-excluded failures.
        std::vector<int> dissent_idx = auto_dissent;
        for (int d : vote.dissenters) {
          dissent_idx.push_back(
              static_cast<int>(vmap[static_cast<size_t>(d)]));
        }
        std::sort(dissent_idx.begin(), dissent_idx.end());
        rstats.divergences += dissent_idx.size();
        m_.divergences_total->Add(dissent_idx.size());
        note_checkpoint(s, b,
                        dissent_idx.empty() ? "accepted" : "divergence",
                        st->v_chosen[s], dissent_idx);
        if (!vote.accepted || vote.winner < 0 ||
            (config_.reaction.kind == ReactionKind::kAbort &&
             !dissent_idx.empty())) {
          if (run_error.ok()) {
            run_error = util::DivergenceDetected(
                "stage " + std::to_string(s) + " batch " +
                std::to_string(b) + ": " +
                std::to_string(dissent_idx.size()) + "/" +
                std::to_string(k) + " variants dissent");
          }
          dump_evidence("vote-divergence", b, run_error.message());
          return;
        }
        st->chosen[s] = std::move(list[static_cast<size_t>(vote.winner)]);
        st->chosen_summary[s] = sums[static_cast<size_t>(vote.winner)];
        for (int d : dissent_idx) {
          lifecycle_dissent(s, static_cast<size_t>(d), b);
        }
        on_chosen(s, b);
      };
    });
  };

  // Async quorum attempt over the reports received so far (Fig. 8): the
  // largest-consistent-bloc scan runs on the pool; the applier decides,
  // reschedules when new reports arrived mid-flight, or falls back to a
  // full vote once the whole panel answered. std::function so the
  // applier can reschedule recursively.
  std::function<void(size_t, size_t)> schedule_quorum =
      [&](size_t s, size_t b) {
    BatchState& state = bat(b);
    BatchState* st = &state;
    const size_t k = stages_[s].variants.size();
    state.verify_inflight.insert(s);
    state.verify_dirty.erase(s);
    // Snapshot of settled slots: healthy outputs go to the worker;
    // in-snapshot flags let the applier treat later arrivals as
    // stragglers.
    std::vector<const std::vector<Tensor>*> outs;
    std::vector<OutputsSummary> sums;
    std::vector<char> in_snapshot(k, 0);
    size_t settled_count = 0;
    size_t voting_count = 0;  // batch-frozen panel size (mask == 1)
    for (size_t i = 0; i < k; ++i) {
      if (supervised && state.masks[s][i] != 1) continue;
      ++voting_count;
      const auto& r = state.reports[s][i];
      if (!r.has_value()) continue;
      in_snapshot[i] = 1;
      ++settled_count;
      if (!r->ok) continue;
      outs.push_back(&r->outputs);
      sums.push_back(i < state.summaries[s].size() ? state.summaries[s][i]
                                                   : OutputsSummary{});
    }
    const bool prefilter = config_.digest_prefilter;
    const CheckPolicy check = config_.check;
    obs::Histogram* verify_hist = stages_[s].metrics.verify_us;
    ++state.jobs_inflight;  // released by the applier (monitor thread)
    pool.Submit([this, s, b, k, st, base, tid = trace_ids[b],
                 outs = std::move(outs),
                 sums = std::move(sums), in_snapshot = std::move(in_snapshot),
                 settled_count, voting_count, supervised, prefilter, check,
                 verify_hist, &rstats,
                 &run_error, &on_chosen, &note_verify_job, &note_checkpoint,
                 &dump_evidence,
                 &begin_decision_event, &dissents_from_chosen,
                 &schedule_quorum, &lifecycle_dissent,
                 &schedule_full_vote]() -> VerifyPool::Apply {
      const int64_t cpu0 = util::ThreadCpuMicros();
      CheckStats cstats;
      size_t best_pos = outs.size(), best_size = 0;
      std::vector<char> best_bloc;
      {
        obs::TraceContextScope tscope(tid, 0);
        obs::ScopedSpan span("monitor/verify",
                             {.stage = static_cast<int32_t>(s),
                              .batch = static_cast<int64_t>(base + b),
                              .tag = "quorum"},
                             &obs::TraceBuffer::Default(), verify_hist);
        for (size_t rp = 0; rp < outs.size(); ++rp) {
          size_t size = 0;
          std::vector<char> bloc(outs.size(), 0);
          for (size_t o = 0; o < outs.size(); ++o) {
            const bool consistent =
                prefilter ? OutputsConsistent(*outs[o], sums[o], *outs[rp],
                                              sums[rp], check, &cstats)
                          : OutputsConsistent(*outs[o], *outs[rp], check);
            if (consistent) {
              bloc[o] = 1;
              ++size;
            }
          }
          if (size > best_size) {
            best_size = size;
            best_pos = rp;
            best_bloc = std::move(bloc);
          }
        }
      }
      const int64_t verify_cpu = util::ThreadCpuMicros() - cpu0;
      return [this, s, b, k, st, outs, sums, in_snapshot, settled_count,
              voting_count, supervised, cstats, verify_cpu, best_pos,
              best_size,
              best_bloc = std::move(best_bloc), &rstats, &run_error,
              &on_chosen, &note_verify_job, &note_checkpoint,
              &dump_evidence, &begin_decision_event,
              &dissents_from_chosen, &schedule_quorum, &lifecycle_dissent,
              &schedule_full_vote]() {
        --st->jobs_inflight;
        st->verify_inflight.erase(s);
        const bool was_dirty = st->verify_dirty.count(s) > 0;
        st->verify_dirty.erase(s);
        if (st->voted.count(s)) return;
        note_verify_job(b, verify_cpu, cstats);
        // Quorum over the batch-frozen panel, not the configured k: a
        // degraded panel keeps making progress.
        const size_t quorum = voting_count / 2 + 1;
        size_t received_now = 0;
        for (size_t i = 0; i < k; ++i) {
          if (supervised && st->masks[s][i] != 1) continue;
          if (st->reports[s][i].has_value()) ++received_now;
        }
        if (best_size >= quorum) {
          st->voted.insert(s);
          begin_decision_event(*st, s, verify_cpu);
          st->chosen[s] = *outs[best_pos];
          st->chosen_summary[s] = sums[best_pos];
          size_t dissent_now = settled_count - outs.size();
          // Dissenting panel indices for the evidence trail: settled
          // slots outside the winning bloc (failed slots always
          // dissent; `o` walks healthy snapshot slots in panel order).
          std::vector<int> dissent_idx;
          {
            size_t o = 0;
            for (size_t i = 0; i < k; ++i) {
              if (!in_snapshot[i]) continue;
              const auto& r = st->reports[s][i];
              if (!r.has_value() || !r->ok) {
                dissent_idx.push_back(static_cast<int>(i));
              } else {
                if (o < best_bloc.size() && !best_bloc[o]) {
                  dissent_idx.push_back(static_cast<int>(i));
                }
                ++o;
              }
            }
          }
          for (size_t o = 0; o < outs.size(); ++o) {
            if (!best_bloc[o]) ++dissent_now;
          }
          rstats.checkpoints_evaluated++;
          rstats.divergences += dissent_now;
          m_.divergences_total->Add(dissent_now);
          note_checkpoint(s, b,
                          dissent_now > 0 ? "divergence" : "accepted",
                          st->v_chosen[s], dissent_idx);
          if (dissent_now > 0 &&
              config_.reaction.kind == ReactionKind::kAbort) {
            if (run_error.ok()) {
              run_error = util::DivergenceDetected(
                  "stage " + std::to_string(s) + " batch " +
                  std::to_string(b) + ": dissent under async quorum");
            }
            dump_evidence("vote-divergence", b, run_error.message());
            return;
          }
          for (int d : dissent_idx) {
            lifecycle_dissent(s, static_cast<size_t>(d), b);
          }
          // Reports that landed between snapshot and decision are
          // cross-validated as stragglers.
          for (size_t i = 0; i < k; ++i) {
            if (supervised && st->masks[s][i] != 1) continue;
            const auto& r = st->reports[s][i];
            if (!r.has_value() || in_snapshot[i]) continue;
            const OutputsSummary rsum =
                i < st->summaries[s].size() ? st->summaries[s][i]
                                            : OutputsSummary{};
            if (dissents_from_chosen(*st, s, *r, rsum)) {
              rstats.late_divergences++;
              m_.divergences_total->Add(1);
              note_checkpoint(s, b, "late-divergence", st->v_chosen[s],
                              {static_cast<int>(i)});
              lifecycle_dissent(s, i, b);
            }
          }
          on_chosen(s, b);
          return;
        }
        // No quorum in this snapshot.
        if (received_now == voting_count) {
          schedule_full_vote(s, b);
          return;
        }
        if (was_dirty && received_now >= quorum) schedule_quorum(s, b);
      };
    });
  };

  auto handle_result = [&](size_t s, size_t vi, InferResultMsg&& msg) {
    if (msg.batch_id < base + window_base ||
        msg.batch_id >= base + (feed != nullptr ? admitted : num_batches)) {
      return;  // stale frame: earlier (aborted) run, or a GC'd batch
    }
    const size_t b = static_cast<size_t>(msg.batch_id - base);
    BatchState& state = bat(b);
    const size_t k = stages_[s].variants.size();

    if (!msg.ok) rstats.variant_failures++;

    // Fast path: single variant — forwarded unverified, unless the
    // slow path is forced (checkpoint rule evaluation, Fig. 10).
    if (k == 1) {
      if (!msg.ok) {
        note_checkpoint(s, b, "variant-failure",
                        static_cast<int64_t>(msg.vtime_us), {0}, &msg);
        if (run_error.ok()) {
          run_error = util::Aborted("stage " + std::to_string(s) +
                                    " variant failed: " + msg.error);
        }
        dump_evidence("run-abort", b, run_error.message());
        return;
      }
      state.v_chosen[s] = static_cast<int64_t>(msg.vtime_us);
      if (config_.verify_fast_path) {
        bool rule_violation = false;
        {
          obs::TraceContextScope troot(trace_ids[b], 0);
          obs::ScopedSpan span("monitor/verify",
                               {.stage = static_cast<int32_t>(s),
                                .batch = static_cast<int64_t>(msg.batch_id),
                                .tag = "rule"},
                               &obs::TraceBuffer::Default(),
                               stages_[s].metrics.verify_us);
          for (const auto& t : msg.outputs) {
            if (tensor::HasNonFinite(t)) rule_violation = true;
          }
        }
        rstats.checkpoints_evaluated++;
        note_checkpoint(s, b,
                        rule_violation ? "rule-violation" : "accepted",
                        state.v_chosen[s],
                        rule_violation ? std::vector<int>{0}
                                       : std::vector<int>{},
                        &msg);
        if (rule_violation) {
          rstats.divergences++;
          m_.divergences_total->Add(1);
          if (run_error.ok()) {
            run_error = util::DivergenceDetected(
                "stage " + std::to_string(s) + " batch " +
                std::to_string(b) + ": checkpoint rule violation");
          }
          dump_evidence("vote-divergence", b, run_error.message());
          return;
        }
      } else {
        rstats.fast_path_forwards++;
      }
      state.v_chosen[s] += util::ThreadCpuMicros() - handling_cpu0 -
                           send_cpu_excluded;
      state.chosen[s] = std::move(msg.outputs);
      on_chosen(s, b);
      return;
    }

    // Slow path (MVX panel).
    const char mk = supervised ? state.masks[s][vi] : char{1};
    if (mk == 0) return;  // slot was not admitted for this batch
    if (mk == 2) {
      // Probation shadow: buffered out of the vote entirely; judged
      // against the committed verdict (immediately when this stage has
      // already decided, else when on_chosen drains pending shadows).
      auto& sh = state.shadow[s];
      auto& shs = state.shadow_sums[s];
      if (sh.empty()) {
        sh.resize(k);
        shs.resize(k);
      }
      if (sh[vi].has_value()) return;
      if (config_.digest_prefilter && msg.ok) {
        shs[vi] = SummarizeOutputs(msg.outputs);
      }
      sh[vi] = std::move(msg);
      if (state.voted.count(s)) judge_shadow_slot(s, b, vi);
      return;
    }
    auto& panel = state.reports[s];
    auto& sums = state.summaries[s];
    if (panel.empty()) {
      panel.resize(k);
      sums.resize(k);
    }
    if (panel[vi].has_value()) {
      return;  // duplicate frame: slots settle exactly once (workers
               // hold pointers into settled slots)
    }
    if (config_.digest_prefilter && msg.ok) {
      // One hashing pass per report; equal digests short-circuit the
      // pairwise element-wise checks downstream.
      sums[vi] = SummarizeOutputs(msg.outputs);
    }
    panel[vi] = std::move(msg);
    if (supervised && !panel[vi]->ok) {
      // Hard failure report: quarantine now (panel permitting) instead
      // of waiting for the vote to count the slot as a dissenter.
      const FailureKind kind =
          panel[vi]->error.rfind("recv timeout", 0) == 0
              ? FailureKind::kTimeout
              : FailureKind::kCrash;
      lifecycle_failure(s, vi, b, kind);
    }

    if (state.voted.count(s)) {
      // Async straggler: cross-validate against the accepted value.
      if (dissents_from_chosen(state, s, *panel[vi], sums[vi])) {
        rstats.late_divergences++;
        m_.divergences_total->Add(1);
        note_checkpoint(s, b, "late-divergence",
                        static_cast<int64_t>(panel[vi]->vtime_us),
                        {static_cast<int>(vi)});
        lifecycle_dissent(s, vi, b);
      }
      return;
    }

    size_t received = 0, voting = 0;
    for (size_t i = 0; i < k; ++i) {
      if (supervised && state.masks[s][i] != 1) continue;
      ++voting;
      if (panel[i].has_value()) ++received;
    }

    if (config_.mode == ExecMode::kSync) {
      if (received == voting) schedule_full_vote(s, b);
      return;
    }

    // Async cross-validation: proceed at majority consensus among the
    // results received so far (Fig. 8). The bloc scan runs on the
    // verify pool; if one is already in flight for this stage, mark it
    // dirty so its applier re-examines the grown panel.
    const size_t quorum = voting / 2 + 1;
    if (received >= quorum) {
      if (state.verify_inflight.count(s)) {
        state.verify_dirty.insert(s);
      } else {
        schedule_quorum(s, b);
      }
    }
  };

  // A quarantined slot may still owe reports to in-flight batches whose
  // masks froze it as a voter. Settle those as synthesized failures so
  // their votes proceed immediately instead of waiting out recv_timeout.
  settle_owed = [&](size_t s, size_t vi, const char* why) {
    if (!stages_[s].is_mvx()) return;
    for (size_t b = window_base; b < admitted; ++b) {
      BatchState& state = bat(b);
      if (state.complete || state.masks.empty()) continue;
      if (state.masks[s][vi] != 1) continue;
      if (state.voted.count(s)) continue;
      // Only stages whose inputs were fully dispatched owe a report.
      if (stage_feed_count_[s] == 0 ||
          state.feeds_done[s] < stage_feed_count_[s]) {
        continue;
      }
      const auto pit = state.reports.find(s);
      if (pit != state.reports.end() && vi < pit->second.size() &&
          pit->second[vi].has_value()) {
        continue;  // already settled
      }
      InferResultMsg fail;
      fail.batch_id = base + b;
      fail.vtime_us = static_cast<uint64_t>(vclock_us_);
      fail.ok = false;
      fail.error = why;
      handle_result(s, vi, std::move(fail));
    }
  };

  // Admission. Feed mode starts empty: the loop's refill step admits.
  if (feed == nullptr) {
    if (pipelined) {
      for (size_t b = 0; b < num_batches; ++b) admit(b, batches[b]);
    } else {
      admit(0, batches[0]);
    }
  }

  // Evented loop: drain completed verify verdicts, run any deferred
  // sequential admission (or feed refill), poll every variant channel
  // without blocking, then — only if nothing happened — block on the
  // shared wait set until a frame lands or a verify job completes. A
  // one-shot run is done when every batch completed AND the verify
  // pool drained (pending verdicts still carry stats); a feed stream
  // additionally keeps serving until the feed quiesces.
  int64_t idle_deadline = util::NowMicros() + config_.recv_timeout_us;
  auto work_remains = [&] {
    if (feed != nullptr) {
      return completed < admitted || pool.pending() > 0 ||
             !feed->quiesce();
    }
    return completed < num_batches || pool.pending() > 0;
  };
  while (work_remains() && run_error.ok()) {
    // Liveness beacon for the stall watchdog: the loop either makes
    // progress below or parks in a bounded (≤100ms) WaitFor, so a
    // healthy loop beats continuously while work is pending.
    m_.loop_heartbeat->Add(1);
    if (config_.loop_tick_hook) config_.loop_tick_hook();
    if (options.deadline_us > 0 &&
        util::NowMicros() - wall_start > options.deadline_us) {
      run_error = util::DeadlineExceeded(
          "run deadline of " + std::to_string(options.deadline_us) +
          "us exceeded (" + std::to_string(completed) + "/" +
          std::to_string(num_batches) + " batches complete)");
      break;
    }
    // Epoch snapshot BEFORE polling: an event landing after the
    // snapshot advances the epoch, so the wait below returns
    // immediately instead of losing the wakeup.
    const uint64_t epoch = wait_set_->Epoch();
    bool progressed = false;

    // 1) Completed cross-validation verdicts (appliers mutate run
    //    state, so they execute here, on the monitor thread).
    while (auto apply = pool.TryPopCompleted()) {
      if (*apply) (*apply)();
      progressed = true;
    }
    const int64_t qdepth = static_cast<int64_t>(pool.queued());
    m_.verify_queue_depth->Set(qdepth);
    if (qdepth > m_.verify_queue_depth_hwm->value()) {
      m_.verify_queue_depth_hwm->Set(qdepth);
    }

    // 1b) Sliding-window GC (feed mode): a completed batch's state is
    //     reclaimed once no verify job can still read it. Late frames
    //     for reclaimed ids are dropped by handle_result's guard.
    while (feed != nullptr && !bs.empty() && bs.front().complete &&
           bs.front().jobs_inflight == 0) {
      bs.pop_front();
      ++window_base;
    }

    // 2) Deferred sequential admission: its own top-level event (never
    //    nested inside the result event that completed the previous
    //    batch — that would clobber the virtual-time bases).
    if (feed == nullptr && !pipelined && run_error.ok() &&
        admitted < num_batches && completed == admitted) {
      admit(admitted, batches[admitted]);
      progressed = true;
    }

    // 2a) Feed refill: continuous admission — pull scheduler-formed
    //     work into every free pipeline slot (its own top-level
    //     virtual-time event per admission, like 2).
    if (feed != nullptr && run_error.ok()) {
      const size_t inflight = admitted - completed;
      if (inflight < feed->max_inflight) {
        std::vector<std::vector<Tensor>> fresh;
        const size_t got =
            feed->refill(feed->max_inflight - inflight, &fresh);
        for (size_t i = 0; i < got; ++i) {
          (void)next_batch_id_.fetch_add(1);  // == base + admitted
          const size_t b = admitted;          // admit() advances it
          bs.emplace_back();
          trace_ids.push_back(obs::NewTraceId());
          rstats.batch_verify_us.push_back(0);
          admit(b, fresh[i]);
          progressed = true;
        }
      }
    }

    // 2b) Lifecycle: re-run the two-stage bootstrap for quarantined
    //     slots whose backoff expired (inline — the handshake shares
    //     the monitor's enclave context).
    if (supervised && run_error.ok()) {
      for (const auto& [qs, qvi] :
           supervisor_->DueForRebootstrap(util::NowMicros())) {
        RebootstrapSlot(qs, qvi);
        const size_t evb = admitted > 0 ? admitted - 1 : 0;
        const VariantLifecycle after = supervisor_->state(qs, qvi);
        if (after == VariantLifecycle::kRetired) {
          note_lifecycle(qs, qvi, "retired", evb,
                         "bootstrap retry budget exhausted");
        } else if (after == VariantLifecycle::kProbation) {
          note_lifecycle(qs, qvi, "rebootstrap", evb,
                         "re-attested; entering probation");
        }
        progressed = true;
      }
    }

    // 3) Frames.
    for (size_t s = 0; s < num_stages && run_error.ok(); ++s) {
      for (size_t vi = 0; vi < stages_[s].variants.size(); ++vi) {
        if (supervised && !supervisor_->ChannelLive(s, vi)) continue;
        auto frame = stages_[s].variants[vi].channel->RecvPooled(0);
        if (!frame.ok()) {
          const auto code = frame.status().code();
          if (code == util::StatusCode::kDeadlineExceeded) {
            continue;  // no frame pending — the only benign case
          }
          // Channel death on a supervised MVX panel is a lifecycle
          // event, not a run error, while the panel floor allows the
          // shrink. Tampered/replayed frames kill the CHANNEL's trust
          // (the variant is quarantined and re-attested from scratch);
          // without a supervisor they abort the run as before.
          if (lifecycle_failure(s, vi, admitted > 0 ? admitted - 1 : 0,
                                FailureKind::kChannel)) {
            progressed = true;
            continue;
          }
          if (run_error.ok()) {
            if (code == util::StatusCode::kUnavailable) {
              run_error = util::Unavailable("variant " +
                                            stages_[s].variants[vi].id +
                                            " disconnected");
            } else {
              // Security taxonomy (DESIGN.md): authentication /
              // replay / decode failures on a variant channel abort
              // the run — a tampered or replayed frame must never be
              // treated as "no frame arrived".
              run_error = util::Status(
                  frame.status().code(),
                  "variant " + stages_[s].variants[vi].id + ": " +
                      frame.status().message());
            }
          }
          continue;
        }
        progressed = true;
        auto type = PeekType(frame->span());
        if (!type.ok() || *type != MsgType::kInferResult) continue;
        handling_cpu0 = util::ThreadCpuMicros();
        send_cpu_excluded = 0;
        auto msg = DecodeInferResult(*frame);
        if (!msg.ok()) {
          if (run_error.ok()) run_error = msg.status();
          continue;
        }
        event_vbase = static_cast<int64_t>(msg->vtime_us);
        handle_result(s, vi, std::move(*msg));
      }
    }

    // 4) Idle: block until the wait set's epoch moves on.
    if (progressed) {
      idle_deadline = util::NowMicros() + config_.recv_timeout_us;
    } else if (run_error.ok()) {
      const int64_t now = util::NowMicros();
      if (feed != nullptr && completed == admitted &&
          pool.pending() == 0) {
        // An idle stream owes nothing: waiting for work is not a
        // variant stall.
        idle_deadline = now + config_.recv_timeout_us;
      }
      if (now > idle_deadline) {
        // A silent variant must not fail the whole batch while the
        // remaining panel can still satisfy the vote policy: classify
        // the expiry as per-slot variant failures on every owed voting
        // slot of a dispatched MVX stage, and let the verdict machinery
        // (and the supervisor, if any) take it from there. Fast-path
        // stages have no panel to absorb the loss — they still abort.
        bool classified = false;
        if (config_.reaction.kind != ReactionKind::kAbort &&
            !config_.direct_fastpath) {
          for (size_t b = window_base; b < admitted && run_error.ok();
               ++b) {
            BatchState& state = bat(b);
            if (state.complete || state.masks.empty()) continue;
            for (size_t s = 0; s < num_stages && run_error.ok(); ++s) {
              if (!stages_[s].is_mvx()) continue;
              if (state.voted.count(s)) continue;
              if (stage_feed_count_[s] == 0 ||
                  state.feeds_done[s] < stage_feed_count_[s]) {
                continue;  // inputs not dispatched: nothing is owed
              }
              const size_t kk = stages_[s].variants.size();
              for (size_t vi = 0; vi < kk && run_error.ok(); ++vi) {
                if (state.masks[s][vi] != 1) continue;
                const auto pit = state.reports.find(s);
                if (pit != state.reports.end() &&
                    vi < pit->second.size() &&
                    pit->second[vi].has_value()) {
                  continue;  // already settled
                }
                event_vbase = vclock_us_;
                handling_cpu0 = util::ThreadCpuMicros();
                send_cpu_excluded = 0;
                InferResultMsg fail;
                fail.batch_id = base + b;
                fail.vtime_us = static_cast<uint64_t>(vclock_us_);
                fail.ok = false;
                fail.error = "recv timeout: no report within recv_timeout_us";
                handle_result(s, vi, std::move(fail));
                classified = true;
              }
            }
          }
        }
        if (classified) {
          idle_deadline = util::NowMicros() + config_.recv_timeout_us;
          continue;
        }
        run_error = util::DeadlineExceeded(
            "no variant progress within recv_timeout (" +
            std::to_string(completed) + "/" +
            std::to_string(feed != nullptr ? admitted : num_batches) +
            " batches complete)");
        break;
      }
      int64_t slice = idle_deadline - now;
      if (options.deadline_us > 0) {
        slice = std::min(slice, options.deadline_us - (now - wall_start));
      }
      if (feed != nullptr) {
        // Wake early for a batch-window expiry so held admissions are
        // re-examined on time.
        const int64_t wake = feed->next_wake_us();
        if (wake > 0) slice = std::min(slice, wake - now);
      }
      // Bounded so deadline checks stay live even without events.
      slice = std::max<int64_t>(1, std::min<int64_t>(slice, 100'000));
      const int64_t wait0 = util::NowMicros();
      wait_set_->WaitFor(epoch, slice);
      m_.wait_us->Observe(util::NowMicros() - wait0);
    }
  }
  m_.verify_queue_depth->Set(0);

  // Incidents that never reached a verdict site (authentication /
  // replay failures, disconnects, deadlines) still leave evidence: one
  // bundle for the run, attributed to the last admitted batch's trace.
  if (!run_error.ok() && !evidence_dumped) {
    const auto code = run_error.code();
    const char* trigger =
        (code == util::StatusCode::kAuthenticationFailure ||
         code == util::StatusCode::kReplayDetected ||
         code == util::StatusCode::kPermissionDenied)
            ? "auth-failure"
            : "run-abort";
    dump_evidence(trigger, admitted > 0 ? admitted - 1 : 0,
                  run_error.message());
  }
  // Lifecycle-only runs (quarantines absorbed without aborting) leave a
  // bundle too: the ring holds the quarantine AND readmit/retire
  // verdicts, attributed to the first affected batch's trace.
  if (lifecycle_events && !evidence_dumped) {
    dump_evidence("quarantine", lifecycle_trigger_batch,
                  "variant lifecycle events (run completed)");
  }

  // Merge this run into the registry (even on error: partial work shows
  // up in the dump) and into the ConsumeStats() backlog.
  rstats.wall_us = std::max<int64_t>(1, last_completion_vus - run_vstart);
  rstats.bytes_sent = channel_bytes() - bytes0;
  m_.wall_us->Add(static_cast<uint64_t>(rstats.wall_us));
  m_.checkpoints_evaluated->Add(rstats.checkpoints_evaluated);
  m_.fast_path_forwards->Add(rstats.fast_path_forwards);
  m_.divergences->Add(rstats.divergences);
  m_.late_divergences->Add(rstats.late_divergences);
  m_.variant_failures->Add(rstats.variant_failures);
  m_.bytes_sent->Add(rstats.bytes_sent);
  m_.batches_completed->Add(rstats.batch_latency_us.size());
  for (int64_t lat : rstats.batch_latency_us) {
    m_.batch_latency_us->Observe(lat);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    pending_latencies_.insert(pending_latencies_.end(),
                              rstats.batch_latency_us.begin(),
                              rstats.batch_latency_us.end());
  }
  if (options.stats != nullptr) *options.stats = rstats;

  MVTEE_RETURN_IF_ERROR(run_error);

  // Feed-mode results were delivered per batch as they completed.
  if (feed != nullptr) return std::vector<std::vector<Tensor>>{};

  std::vector<std::vector<Tensor>> all(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    for (const auto& src : model_outputs_) {
      all[b].push_back(
          bat(b).chosen[static_cast<size_t>(src.stage)]
              [static_cast<size_t>(src.index)]);
    }
  }
  return all;
}

util::Status Monitor::Shutdown() {
  StopService();
  if (!initialized_) return util::OkStatus();
  for (auto& stage : stages_) {
    for (auto& conn : stage.variants) {
      (void)conn.channel->Send(EncodeShutdown());
      conn.channel->Close();
    }
  }
  {
    std::lock_guard<std::mutex> lock(bindings_mu_);
    for (auto& b : bindings_) b.active = false;
  }
  stages_.clear();
  initialized_ = false;
  routes_configured_ = false;
  return util::OkStatus();
}

RunStats Monitor::ConsumeStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  const RunStats now = RegistryBaseline();
  RunStats out;
  out.wall_us = now.wall_us - consumed_base_.wall_us;
  out.checkpoints_evaluated =
      now.checkpoints_evaluated - consumed_base_.checkpoints_evaluated;
  out.fast_path_forwards =
      now.fast_path_forwards - consumed_base_.fast_path_forwards;
  out.divergences = now.divergences - consumed_base_.divergences;
  out.late_divergences =
      now.late_divergences - consumed_base_.late_divergences;
  out.variant_failures =
      now.variant_failures - consumed_base_.variant_failures;
  out.bytes_sent = now.bytes_sent - consumed_base_.bytes_sent;
  out.batch_latency_us = std::move(pending_latencies_);
  pending_latencies_.clear();
  consumed_base_ = now;
  return out;
}

std::vector<Monitor::Binding> Monitor::bindings() const {
  std::lock_guard<std::mutex> lock(bindings_mu_);
  return bindings_;
}

}  // namespace mvtee::core
