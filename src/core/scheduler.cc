#include "core/scheduler.h"

#include <algorithm>
#include <cstdlib>

#include "util/knobs.h"

namespace mvtee::core {

SchedulerConfig::Builder& SchedulerConfig::Builder::MaxBatch(size_t n) {
  config_.max_batch = std::max<size_t>(1, n);
  return *this;
}

SchedulerConfig::Builder& SchedulerConfig::Builder::BatchWindowUs(
    int64_t us) {
  config_.batch_window_us = std::max<int64_t>(0, us);
  return *this;
}

SchedulerConfig::Builder& SchedulerConfig::Builder::TenantQuotaPct(int pct) {
  config_.tenant_quota_pct = std::clamp(pct, 1, 100);
  return *this;
}

SchedulerConfig::Builder& SchedulerConfig::Builder::Edf(bool on) {
  config_.edf = on;
  return *this;
}

SchedulerConfig::Builder& SchedulerConfig::Builder::Continuous(bool on) {
  config_.continuous = on;
  return *this;
}

SchedulerConfig::Builder& SchedulerConfig::Builder::TenantWeight(
    const std::string& tenant, uint32_t weight) {
  config_.tenant_weights[tenant] = std::max<uint32_t>(1, weight);
  return *this;
}

SchedulerConfig SchedulerConfig::FromEnv(SchedulerConfig base) {
  const util::KnobRegistry& knobs = util::KnobRegistry::Default();
  if (std::getenv("MVTEE_SCHED_MAX_BATCH") != nullptr) {
    base.max_batch =
        static_cast<size_t>(knobs.Int("MVTEE_SCHED_MAX_BATCH"));
  }
  if (std::getenv("MVTEE_SCHED_WINDOW_US") != nullptr) {
    base.batch_window_us = knobs.Int("MVTEE_SCHED_WINDOW_US");
  }
  if (std::getenv("MVTEE_SCHED_EDF") != nullptr) {
    base.edf = knobs.Int("MVTEE_SCHED_EDF") != 0;
  }
  if (std::getenv("MVTEE_SCHED_QUOTA_PCT") != nullptr) {
    base.tenant_quota_pct =
        static_cast<int>(knobs.Int("MVTEE_SCHED_QUOTA_PCT"));
  }
  return base;
}

BatchFormer::BatchFormer(SchedulerConfig config)
    : config_(std::move(config)) {}

double BatchFormer::WeightOf(const std::string& tenant) const {
  auto it = config_.tenant_weights.find(tenant);
  if (it == config_.tenant_weights.end()) return 1.0;
  return static_cast<double>(std::max<uint32_t>(1, it->second));
}

void BatchFormer::ResetTenant(const std::string& tenant) {
  vtime_.erase(tenant);
}

BatchPlan BatchFormer::Form(
    const std::vector<SchedEntry>& pending, int64_t now_us,
    size_t free_slots,
    const std::map<std::string, size_t>& inflight_per_tenant) {
  BatchPlan plan;
  if (pending.empty() || free_slots == 0) return plan;

  // Dispatch order within one tenant: EDF (deadlined before
  // deadline-free, earliest first), then priority, then arrival.
  // Without EDF: priority, then arrival.
  auto before = [&](const SchedEntry& a, const SchedEntry& b) {
    if (config_.edf) {
      const bool da = a.deadline_abs_us != 0, db = b.deadline_abs_us != 0;
      if (da != db) return da;
      if (da && a.deadline_abs_us != b.deadline_abs_us) {
        return a.deadline_abs_us < b.deadline_abs_us;
      }
    }
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.id < b.id;
  };

  // Batch window: an entry is "ready" once its window elapsed or its
  // deadline slack is inside the window (a hold could miss it). The
  // window is an ORDERING HORIZON, not a throttle: ready entries
  // outrank window-held ones for scarce slots (so a late tight-deadline
  // arrival jumps ahead of fresh slack work), but held entries still
  // fill any slot that would otherwise idle — holding work while the
  // pipeline has free capacity only burns goodput.
  auto is_ready = [&](const SchedEntry& e) {
    if (config_.batch_window_us == 0) return true;
    if (now_us - e.enqueue_us >= config_.batch_window_us) return true;
    return e.deadline_abs_us != 0 &&
           e.deadline_abs_us - now_us <= 2 * config_.batch_window_us;
  };

  // Per-tenant candidate lists (dispatch order), ready before held.
  std::map<std::string, std::vector<size_t>> ready, held;
  for (size_t i = 0; i < pending.size(); ++i) {
    (is_ready(pending[i]) ? ready : held)[pending[i].tenant].push_back(i);
  }
  auto prep = [&](std::map<std::string, std::vector<size_t>>& group) {
    for (auto& [tenant, idx] : group) {
      std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
        return before(pending[a], pending[b]);
      });
      // A tenant first seen (or seen again after ResetTenant) starts at
      // the current virtual clock — no banked credit from idle time.
      auto [it, inserted] = vtime_.try_emplace(tenant, vclock_);
      if (!inserted && it->second < vclock_) it->second = vclock_;
    }
  };
  prep(ready);
  prep(held);

  // Quota: slots one tenant may OCCUPY (inflight + this plan's picks)
  // while the fill is still contended. Leftover slots are granted
  // quota-free below so a lone tenant can use the whole pipeline.
  const size_t quota_slots = std::max<size_t>(
      1, config_.max_batch * static_cast<size_t>(config_.tenant_quota_pct) /
             100);
  std::map<std::string, size_t> occupancy = inflight_per_tenant;

  // WFQ fill: every slot goes to the lowest-vtime tenant with work
  // (ties: the tenant whose head entry dispatches first, then name —
  // deterministic). Per group, pass 1 respects the quota and pass 2 is
  // the work-conserving top-up; the held group only sees slots the
  // ready group left over.
  auto fill = [&](const std::map<std::string, std::vector<size_t>>& group,
                  std::map<std::string, size_t>& cursor,
                  bool respect_quota) {
    while (plan.picks.size() < free_slots) {
      const std::string* best = nullptr;
      for (const auto& [tenant, idx] : group) {
        if (cursor[tenant] >= idx.size()) continue;
        if (respect_quota && occupancy[tenant] >= quota_slots) continue;
        if (best == nullptr) {
          best = &tenant;
          continue;
        }
        const double vt = vtime_[tenant], vb = vtime_[*best];
        if (vt < vb) {
          best = &tenant;
        } else if (vt == vb) {
          const SchedEntry& ct = pending[idx[cursor[tenant]]];
          const SchedEntry& cb =
              pending[group.at(*best)[cursor[*best]]];
          if (before(ct, cb)) best = &tenant;
        }
      }
      if (best == nullptr) break;
      const std::string tenant = *best;
      plan.picks.push_back(group.at(tenant)[cursor[tenant]++]);
      ++occupancy[tenant];
      vclock_ = std::max(vclock_, vtime_[tenant]);
      vtime_[tenant] += 1.0 / WeightOf(tenant);
    }
  };
  std::map<std::string, size_t> ready_cursor, held_cursor;
  fill(ready, ready_cursor, /*respect_quota=*/true);
  fill(ready, ready_cursor, /*respect_quota=*/false);
  fill(held, held_cursor, /*respect_quota=*/true);
  fill(held, held_cursor, /*respect_quota=*/false);

  std::vector<char> picked(pending.size(), 0);
  for (size_t i : plan.picks) picked[i] = 1;

  // Held entries that did NOT get a leftover slot re-rank when their
  // window expires; tell the caller when to re-form.
  for (const auto& [tenant, idx] : held) {
    for (size_t i : idx) {
      if (picked[i]) continue;
      const int64_t ready_at =
          pending[i].enqueue_us + config_.batch_window_us;
      if (plan.recheck_at_us == 0 || ready_at < plan.recheck_at_us) {
        plan.recheck_at_us = ready_at;
      }
    }
  }

  // Queue-order preemptions: a pick that leaves an older entry waiting
  // jumped the FIFO line (EDF, priority or fairness did it).
  uint64_t oldest_unpicked = UINT64_MAX;
  for (size_t i = 0; i < pending.size(); ++i) {
    if (!picked[i]) oldest_unpicked = std::min(oldest_unpicked, pending[i].id);
  }
  for (size_t i : plan.picks) {
    if (pending[i].id > oldest_unpicked) ++plan.preemptions;
  }
  return plan;
}

}  // namespace mvtee::core
