#include "variant/spec.h"

#include "tensor/tensor.h"
#include "util/rng.h"

namespace mvtee::variant {

using graph::Graph;
using runtime::Executor;
using runtime::ExecutorConfig;
using tensor::Tensor;

namespace {
constexpr uint32_t kSpecMagic = 0x4d565653;  // "MVVS"
}

util::Bytes VariantSpec::Serialize() const {
  util::Bytes out;
  util::AppendU32(out, kSpecMagic);
  util::AppendLengthPrefixedStr(out, id);
  util::AppendU32(out, static_cast<uint32_t>(graph_transforms.size()));
  for (GraphTransform t : graph_transforms) {
    util::AppendU8(out, static_cast<uint8_t>(t));
  }
  util::AppendU64(out, transform_seed);
  util::AppendU32(out, static_cast<uint32_t>(transform_sites));
  util::AppendLengthPrefixedStr(out, exec_config.name);
  util::AppendU8(out, static_cast<uint8_t>(exec_config.conv_algo));
  util::AppendU8(out, static_cast<uint8_t>(exec_config.gemm));
  util::AppendU8(out, exec_config.fold_batch_norm ? 1 : 0);
  util::AppendU8(out, exec_config.inplace_activations ? 1 : 0);
  util::AppendU8(out, exec_config.bounds_checked ? 1 : 0);
  uint64_t slowdown_bits;
  static_assert(sizeof(slowdown_bits) == sizeof(exec_config.slowdown_factor));
  std::memcpy(&slowdown_bits, &exec_config.slowdown_factor,
              sizeof(slowdown_bits));
  util::AppendU64(out, slowdown_bits);
  return out;
}

util::Result<VariantSpec> VariantSpec::Deserialize(util::ByteSpan data) {
  util::ByteReader reader(data);
  uint32_t magic;
  if (!reader.ReadU32(magic) || magic != kSpecMagic) {
    return util::InvalidArgument("bad variant spec magic");
  }
  VariantSpec spec;
  uint32_t n_transforms;
  if (!reader.ReadLengthPrefixedStr(spec.id) ||
      !reader.ReadU32(n_transforms) || n_transforms > 64) {
    return util::InvalidArgument("truncated variant spec");
  }
  for (uint32_t i = 0; i < n_transforms; ++i) {
    uint8_t t;
    if (!reader.ReadU8(t) ||
        t > static_cast<uint8_t>(GraphTransform::kConvToFc)) {
      return util::InvalidArgument("bad transform tag");
    }
    spec.graph_transforms.push_back(static_cast<GraphTransform>(t));
  }
  uint32_t sites;
  if (!reader.ReadU64(spec.transform_seed) || !reader.ReadU32(sites)) {
    return util::InvalidArgument("truncated variant spec");
  }
  spec.transform_sites = static_cast<int>(sites);
  uint8_t conv_algo, gemm, fold, inplace, bounds;
  uint64_t slowdown_bits;
  if (!reader.ReadLengthPrefixedStr(spec.exec_config.name) ||
      !reader.ReadU8(conv_algo) || !reader.ReadU8(gemm) ||
      !reader.ReadU8(fold) || !reader.ReadU8(inplace) ||
      !reader.ReadU8(bounds) || !reader.ReadU64(slowdown_bits)) {
    return util::InvalidArgument("truncated exec config");
  }
  if (conv_algo > static_cast<uint8_t>(runtime::ConvAlgo::kIm2col) ||
      gemm > static_cast<uint8_t>(runtime::GemmBackend::kAvx2)) {
    return util::InvalidArgument("bad exec config enums");
  }
  spec.exec_config.conv_algo = static_cast<runtime::ConvAlgo>(conv_algo);
  spec.exec_config.gemm = static_cast<runtime::GemmBackend>(gemm);
  spec.exec_config.fold_batch_norm = fold != 0;
  spec.exec_config.inplace_activations = inplace != 0;
  spec.exec_config.bounds_checked = bounds != 0;
  std::memcpy(&spec.exec_config.slowdown_factor, &slowdown_bits,
              sizeof(slowdown_bits));
  return spec;
}

util::Result<Graph> BuildVariantGraph(const Graph& base,
                                      const VariantSpec& spec) {
  Graph g = base;
  for (size_t i = 0; i < spec.graph_transforms.size(); ++i) {
    MVTEE_ASSIGN_OR_RETURN(
        g, ApplyGraphTransform(g, spec.graph_transforms[i],
                               spec.transform_seed + i * 97,
                               spec.transform_sites));
  }
  return g;
}

util::Result<bool> VerifyVariantEquivalence(const Graph& base,
                                            const Graph& variant_graph,
                                            const VariantSpec& spec,
                                            uint64_t input_seed,
                                            double min_cosine) {
  MVTEE_ASSIGN_OR_RETURN(auto base_exec,
                         Executor::Create(base, runtime::ReferenceExecutorConfig()));
  MVTEE_ASSIGN_OR_RETURN(auto var_exec,
                         Executor::Create(variant_graph, spec.exec_config));

  util::Rng rng(input_seed);
  std::vector<Tensor> inputs;
  for (graph::NodeId in : base.inputs()) {
    inputs.push_back(
        Tensor::RandomUniform(base.input_shape(in), rng, -1.0f, 1.0f));
  }
  MVTEE_ASSIGN_OR_RETURN(auto base_out, base_exec->Run(inputs));
  MVTEE_ASSIGN_OR_RETURN(auto var_out, var_exec->Run(inputs));
  if (base_out.size() != var_out.size()) return false;
  for (size_t i = 0; i < base_out.size(); ++i) {
    if (base_out[i].shape() != var_out[i].shape()) return false;
    if (tensor::CosineSimilarity(base_out[i], var_out[i]) < min_cosine) {
      return false;
    }
  }
  return true;
}

namespace {

// Diversification recipes cycled through by the pool builder. Each
// combines an instance-level runtime with graph-level transforms —
// "multi-level diversification".
struct Recipe {
  const char* tag;
  ExecutorConfig (*exec)();
  std::vector<GraphTransform> transforms;
};

const std::vector<Recipe>& Recipes() {
  static const std::vector<Recipe> recipes = {
      {"ort-plain", runtime::OrtLikeExecutorConfig, {}},
      {"tvm-shuffled",
       runtime::TvmLikeExecutorConfig,
       {GraphTransform::kShuffleChannels, GraphTransform::kInsertDummyOps}},
      {"hardened-split",
       runtime::HardenedExecutorConfig,
       {GraphTransform::kSplitConv}},
      {"ref-folded",
       runtime::ReferenceExecutorConfig,
       {GraphTransform::kSelectiveBnFold,
        GraphTransform::kReorderCommutative, GraphTransform::kConvToFc}},
      {"ort-decomposed",
       runtime::OrtLikeExecutorConfig,
       {GraphTransform::kInsertDummyOps, GraphTransform::kSplitConv}},
      // Appended last so existing pools (vi < 5) keep their recipes:
      // the vectorized "fourth library" joins the rotation for wider
      // panels without reshuffling anyone else's diversity assignment.
      {"mkl-avx2",
       runtime::MklLikeExecutorConfig,
       {GraphTransform::kReorderCommutative}},
  };
  return recipes;
}

}  // namespace

util::Result<std::vector<StageVariantPool>> BuildVariantPool(
    const partition::PartitionedModel& model, const PoolConfig& config) {
  if (config.variants_per_stage < 1) {
    return util::InvalidArgument("variants_per_stage must be >= 1");
  }
  std::vector<StageVariantPool> pools;
  pools.reserve(static_cast<size_t>(model.num_stages()));

  for (int64_t si = 0; si < model.num_stages(); ++si) {
    const Graph& stage = model.stages[static_cast<size_t>(si)];
    StageVariantPool pool;
    const int total = config.variants_per_stage +
                      (config.include_slow_variant ? 1 : 0);
    for (int vi = 0; vi < total; ++vi) {
      VariantSpec spec;
      const bool is_slow = config.include_slow_variant &&
                           vi == config.variants_per_stage;
      if (config.replicated && !is_slow) {
        spec.id = "stage" + std::to_string(si) + ".replica" +
                  std::to_string(vi);
        spec.exec_config = runtime::OrtLikeExecutorConfig();
      } else if (is_slow) {
        spec.id = "stage" + std::to_string(si) + ".slow-tvm";
        spec.exec_config = runtime::TvmLikeExecutorConfig();
        spec.exec_config.slowdown_factor = config.slow_variant_factor;
        spec.graph_transforms = {GraphTransform::kShuffleChannels,
                                 GraphTransform::kInsertDummyOps,
                                 GraphTransform::kSplitConv};
      } else {
        const Recipe& recipe =
            Recipes()[static_cast<size_t>(vi) % Recipes().size()];
        spec.id = "stage" + std::to_string(si) + "." + recipe.tag + ".v" +
                  std::to_string(vi);
        spec.exec_config = recipe.exec();
        spec.graph_transforms = recipe.transforms;
      }
      spec.transform_seed =
          config.seed * 2654435761ULL + static_cast<uint64_t>(si) * 131 +
          static_cast<uint64_t>(vi);

      MVTEE_ASSIGN_OR_RETURN(Graph vgraph, BuildVariantGraph(stage, spec));
      if (config.verify) {
        MVTEE_ASSIGN_OR_RETURN(
            bool equivalent,
            VerifyVariantEquivalence(stage, vgraph, spec,
                                     spec.transform_seed ^ 0xabcdef));
        if (!equivalent) {
          return util::Internal("variant " + spec.id +
                                " failed equivalence verification");
        }
      }
      pool.variants.push_back({std::move(spec), std::move(vgraph)});
    }
    pools.push_back(std::move(pool));
  }
  return pools;
}

}  // namespace mvtee::variant
