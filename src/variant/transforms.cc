#include "variant/transforms.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "runtime/executor.h"

namespace mvtee::variant {

using graph::Attributes;
using graph::Graph;
using graph::Node;
using graph::NodeId;
using graph::OpType;
using tensor::Shape;
using tensor::Tensor;

std::string_view GraphTransformName(GraphTransform t) {
  switch (t) {
    case GraphTransform::kInsertDummyOps: return "insert-dummy-ops";
    case GraphTransform::kSplitConv: return "split-conv";
    case GraphTransform::kShuffleChannels: return "shuffle-channels";
    case GraphTransform::kReorderCommutative: return "reorder-commutative";
    case GraphTransform::kSelectiveBnFold: return "selective-bn-fold";
    case GraphTransform::kConvToFc: return "conv-to-fc";
  }
  return "unknown";
}

namespace {

// Chooses up to k distinct elements from candidates.
std::set<NodeId> PickSites(std::vector<NodeId> candidates, util::Rng& rng,
                           int k) {
  rng.Shuffle(candidates);
  if (static_cast<int>(candidates.size()) > k) {
    candidates.resize(static_cast<size_t>(k));
  }
  return std::set<NodeId>(candidates.begin(), candidates.end());
}

// ------------------------------------------------------------- dummy ops

std::vector<NodeId> DummyOpCandidates(const Graph& g) {
  std::vector<NodeId> out;
  for (const Node& n : g.nodes()) out.push_back(n.id);
  return out;
}

Graph InsertDummyOps(const Graph& g, util::Rng& rng, int max_sites) {
  std::set<NodeId> sites = PickSites(DummyOpCandidates(g), rng, max_sites);
  Graph out;
  for (const auto& [name, t] : g.initializers()) out.AddInitializer(name, t);
  std::map<NodeId, NodeId> remap;
  for (const Node& n : g.nodes()) {
    NodeId nid;
    if (n.op == OpType::kInput) {
      nid = out.AddInput(n.name, g.input_shape(n.id));
    } else {
      std::vector<NodeId> ins;
      for (NodeId in : n.inputs) ins.push_back(remap.at(in));
      nid = out.AddNode(n.name, n.op, std::move(ins), n.weights, n.attrs);
    }
    if (sites.count(n.id)) {
      if (rng.NextU64() & 1) {
        nid = out.AddNode(n.name + ".dummy_id", OpType::kIdentity, {nid});
      } else {
        Attributes attrs;
        attrs.SetFloat("alpha", 1.0f);
        attrs.SetFloat("beta", 0.0f);
        nid = out.AddNode(n.name + ".dummy_scale", OpType::kScale, {nid}, {},
                          std::move(attrs));
      }
    }
    remap[n.id] = nid;
  }
  for (NodeId o : g.outputs()) out.MarkOutput(remap.at(o));
  out.DropUnusedInitializers();
  return out;
}

// ------------------------------------------------------------ split conv

std::vector<NodeId> SplitConvCandidates(const Graph& g) {
  std::vector<NodeId> out;
  for (const Node& n : g.nodes()) {
    if (n.op != OpType::kConv2d) continue;
    if (n.attrs.GetInt("groups", 1) != 1) continue;
    const Tensor* w = g.FindInitializer(n.weights[0]);
    if (w && w->shape().dim(0) >= 2) out.push_back(n.id);
  }
  return out;
}

Graph SplitConv(const Graph& g, util::Rng& rng, int max_sites) {
  std::set<NodeId> sites = PickSites(SplitConvCandidates(g), rng, max_sites);
  Graph out;
  for (const auto& [name, t] : g.initializers()) out.AddInitializer(name, t);
  std::map<NodeId, NodeId> remap;

  auto slice_rows = [](const Tensor& t, int64_t begin, int64_t end) {
    const int64_t per_row = t.num_elements() / t.shape().dim(0);
    std::vector<int64_t> dims = t.shape().dims();
    dims[0] = end - begin;
    std::vector<float> data(t.data() + begin * per_row,
                            t.data() + end * per_row);
    return Tensor(Shape(std::move(dims)), std::move(data));
  };

  for (const Node& n : g.nodes()) {
    if (n.op == OpType::kInput) {
      remap[n.id] = out.AddInput(n.name, g.input_shape(n.id));
      continue;
    }
    std::vector<NodeId> ins;
    for (NodeId in : n.inputs) ins.push_back(remap.at(in));

    if (!sites.count(n.id)) {
      remap[n.id] = out.AddNode(n.name, n.op, std::move(ins), n.weights,
                                n.attrs);
      continue;
    }
    // Decompose: conv -> [conv_a ; conv_b] -> concat.
    const Tensor* w = g.FindInitializer(n.weights[0]);
    const Tensor* b =
        n.weights.size() >= 2 ? g.FindInitializer(n.weights[1]) : nullptr;
    const int64_t oc = w->shape().dim(0);
    const int64_t oc_a = oc / 2;

    out.AddInitializer(n.name + ".split_a.w", slice_rows(*w, 0, oc_a));
    out.AddInitializer(n.name + ".split_b.w", slice_rows(*w, oc_a, oc));
    std::vector<std::string> wa = {n.name + ".split_a.w"};
    std::vector<std::string> wb = {n.name + ".split_b.w"};
    if (b) {
      out.AddInitializer(n.name + ".split_a.b", slice_rows(*b, 0, oc_a));
      out.AddInitializer(n.name + ".split_b.b", slice_rows(*b, oc_a, oc));
      wa.push_back(n.name + ".split_a.b");
      wb.push_back(n.name + ".split_b.b");
    }
    NodeId ca = out.AddNode(n.name + ".split_a", OpType::kConv2d, ins,
                            std::move(wa), n.attrs);
    NodeId cb = out.AddNode(n.name + ".split_b", OpType::kConv2d, ins,
                            std::move(wb), n.attrs);
    Attributes cat_attrs;
    cat_attrs.SetInt("axis", 1);
    remap[n.id] = out.AddNode(n.name + ".split_cat", OpType::kConcat,
                              {ca, cb}, {}, std::move(cat_attrs));
  }
  for (NodeId o : g.outputs()) out.MarkOutput(remap.at(o));
  out.DropUnusedInitializers();
  return out;
}

// ------------------------------------------------------- channel shuffle

bool IsChannelwiseChainOp(OpType op) {
  switch (op) {
    case OpType::kBatchNorm:
    case OpType::kRelu:
    case OpType::kRelu6:
    case OpType::kSigmoid:
    case OpType::kHardSwish:
    case OpType::kTanh:
    case OpType::kIdentity:
    case OpType::kScale:
    case OpType::kMaxPool:
    case OpType::kAvgPool:
    case OpType::kGlobalAvgPool:
      return true;
    default:
      return false;
  }
}

// A shuffle site: conv1 -> (channelwise single-consumer chain) ->
// terminal, where the terminal is either a Conv2d (permute its
// input-channel axis) or a Gemm reached through a Flatten of a
// [N,C,1,1] tensor (permute its input-feature axis). The chain may
// contain Flatten only in that degenerate spatial case.
struct ShuffleSite {
  NodeId conv1;
  std::vector<NodeId> chain;  // channelwise nodes between (may be empty)
  NodeId terminal;
  bool terminal_is_gemm = false;
};

std::vector<ShuffleSite> ShuffleSites(const Graph& g) {
  auto consumers = g.BuildConsumers();
  auto shapes_or = g.InferShapes();
  if (!shapes_or.ok()) return {};
  const auto& shapes = *shapes_or;
  std::set<NodeId> outputs(g.outputs().begin(), g.outputs().end());
  std::vector<ShuffleSite> sites;
  for (const Node& n : g.nodes()) {
    if (n.op != OpType::kConv2d || n.attrs.GetInt("groups", 1) != 1) continue;
    ShuffleSite site;
    site.conv1 = n.id;
    NodeId cur = n.id;
    bool ok = true;
    for (;;) {
      if (outputs.count(cur) ||
          consumers[static_cast<size_t>(cur)].size() != 1) {
        ok = false;
        break;
      }
      NodeId next = consumers[static_cast<size_t>(cur)][0];
      const Node& next_node = g.node(next);
      if (next_node.op == OpType::kConv2d) {
        if (next_node.attrs.GetInt("groups", 1) != 1) ok = false;
        site.terminal = next;
        break;
      }
      if (next_node.op == OpType::kGemm) {
        site.terminal = next;
        site.terminal_is_gemm = true;
        break;
      }
      if (next_node.op == OpType::kFlatten) {
        // Only safe when flattening [N,C,1,1]: features == channels.
        const tensor::Shape& in_shape = shapes[static_cast<size_t>(cur)];
        if (in_shape.rank() != 4 || in_shape.dim(2) != 1 ||
            in_shape.dim(3) != 1) {
          ok = false;
          break;
        }
      } else if (!IsChannelwiseChainOp(next_node.op)) {
        ok = false;
        break;
      }
      site.chain.push_back(next);
      cur = next;
    }
    if (ok) sites.push_back(std::move(site));
  }
  return sites;
}

Graph ShuffleChannels(const Graph& g, util::Rng& rng, int max_sites) {
  auto sites = ShuffleSites(g);
  rng.Shuffle(sites);
  if (static_cast<int>(sites.size()) > max_sites) {
    sites.resize(static_cast<size_t>(max_sites));
  }
  // Sites must not overlap (sharing a chain node or conv would compose
  // permutations incorrectly). Greedily keep non-overlapping ones.
  std::set<NodeId> touched;
  std::vector<ShuffleSite> kept;
  for (const auto& s : sites) {
    std::vector<NodeId> all = {s.conv1, s.terminal};
    all.insert(all.end(), s.chain.begin(), s.chain.end());
    bool overlap = false;
    for (NodeId id : all) {
      if (touched.count(id)) overlap = true;
    }
    if (overlap) continue;
    touched.insert(all.begin(), all.end());
    kept.push_back(s);
  }

  Graph out = g;  // weight permutation only; structure unchanged
  for (const auto& site : kept) {
    const Node& conv1 = out.node(site.conv1);
    Tensor* w1 = out.MutableInitializer(conv1.weights[0]);
    const int64_t oc = w1->shape().dim(0);
    std::vector<int64_t> perm(static_cast<size_t>(oc));
    std::iota(perm.begin(), perm.end(), 0);
    rng.Shuffle(perm);

    auto permute_rows = [&](Tensor& t) {
      const int64_t per_row = t.num_elements() / t.shape().dim(0);
      Tensor copy = t;
      for (int64_t c = 0; c < oc; ++c) {
        std::copy(copy.data() + perm[static_cast<size_t>(c)] * per_row,
                  copy.data() + (perm[static_cast<size_t>(c)] + 1) * per_row,
                  t.data() + c * per_row);
      }
    };

    permute_rows(*w1);
    if (conv1.weights.size() >= 2) {
      permute_rows(*out.MutableInitializer(conv1.weights[1]));
    }
    for (NodeId cid : site.chain) {
      const Node& chain_node = out.node(cid);
      if (chain_node.op == OpType::kBatchNorm) {
        for (const std::string& wname : chain_node.weights) {
          permute_rows(*out.MutableInitializer(wname));
        }
      }
    }
    // Terminal: permute the input-channel / input-feature axis (dim 1).
    const Node& terminal = out.node(site.terminal);
    Tensor* w2 = out.MutableInitializer(terminal.weights[0]);
    const int64_t oc2 = w2->shape().dim(0), ic = w2->shape().dim(1);
    const int64_t khw = site.terminal_is_gemm
                            ? 1
                            : w2->shape().dim(2) * w2->shape().dim(3);
    MVTEE_CHECK(ic == oc);
    Tensor copy = *w2;
    for (int64_t o = 0; o < oc2; ++o) {
      for (int64_t c = 0; c < ic; ++c) {
        std::copy(
            copy.data() + (o * ic + perm[static_cast<size_t>(c)]) * khw,
            copy.data() + (o * ic + perm[static_cast<size_t>(c)] + 1) * khw,
            w2->data() + (o * ic + c) * khw);
      }
    }
  }
  return out;
}

// -------------------------------------------------- commutative reorder

std::vector<NodeId> CommutativeCandidates(const Graph& g) {
  std::vector<NodeId> out;
  for (const Node& n : g.nodes()) {
    if (n.op == OpType::kAdd) out.push_back(n.id);
  }
  return out;
}

Graph ReorderCommutative(const Graph& g, util::Rng& rng, int max_sites) {
  std::set<NodeId> sites =
      PickSites(CommutativeCandidates(g), rng, max_sites);
  Graph out = g;
  for (NodeId id : sites) {
    Node& n = out.node(id);
    std::swap(n.inputs[0], n.inputs[1]);
  }
  return out;
}

// ---------------------------------------------------- selective BN fold

std::vector<NodeId> BnFoldCandidates(const Graph& g) {
  auto consumers = g.BuildConsumers();
  std::vector<NodeId> out;
  for (const Node& n : g.nodes()) {
    if (n.op != OpType::kBatchNorm) continue;
    NodeId conv = n.inputs[0];
    if (g.node(conv).op == OpType::kConv2d &&
        consumers[static_cast<size_t>(conv)].size() == 1) {
      out.push_back(n.id);
    }
  }
  return out;
}

Graph SelectiveBnFold(const Graph& g, util::Rng& rng, int max_sites) {
  std::set<NodeId> sites = PickSites(BnFoldCandidates(g), rng, max_sites);
  Graph out = g;
  runtime::FoldBatchNormPass(
      out, [&](NodeId id) { return sites.count(id) > 0; });
  return out;
}

// ------------------------------------------------------- conv -> FC

// Candidates: 1x1 stride-1 pad-0 ungrouped convs whose input tensor is
// [N, C, 1, 1] (SE squeeze/expand convs, classifier heads).
std::vector<NodeId> ConvToFcCandidates(const Graph& g) {
  auto shapes_or = g.InferShapes();
  if (!shapes_or.ok()) return {};
  const auto& shapes = *shapes_or;
  std::vector<NodeId> out;
  for (const Node& n : g.nodes()) {
    if (n.op != OpType::kConv2d) continue;
    if (n.attrs.GetInt("groups", 1) != 1) continue;
    if (n.attrs.GetInt("stride", 1) != 1) continue;
    if (n.attrs.GetInt("padding", 0) != 0) continue;
    const Tensor* w = g.FindInitializer(n.weights[0]);
    if (!w || w->shape().dim(2) != 1 || w->shape().dim(3) != 1) continue;
    const tensor::Shape& x = shapes[static_cast<size_t>(n.inputs[0])];
    if (x.rank() == 4 && x.dim(2) == 1 && x.dim(3) == 1) out.push_back(n.id);
  }
  return out;
}

Graph ConvToFc(const Graph& g, util::Rng& rng, int max_sites) {
  std::set<NodeId> sites = PickSites(ConvToFcCandidates(g), rng, max_sites);
  auto shapes_or = g.InferShapes();
  MVTEE_CHECK(shapes_or.ok());
  const auto& shapes = *shapes_or;

  Graph out;
  for (const auto& [name, t] : g.initializers()) out.AddInitializer(name, t);
  std::map<NodeId, NodeId> remap;
  for (const Node& n : g.nodes()) {
    if (n.op == OpType::kInput) {
      remap[n.id] = out.AddInput(n.name, g.input_shape(n.id));
      continue;
    }
    std::vector<NodeId> ins;
    for (NodeId in : n.inputs) ins.push_back(remap.at(in));
    if (!sites.count(n.id)) {
      remap[n.id] =
          out.AddNode(n.name, n.op, std::move(ins), n.weights, n.attrs);
      continue;
    }
    // conv1x1 over [N,C,1,1]  ==  reshape -> gemm -> reshape.
    const Tensor* w = g.FindInitializer(n.weights[0]);
    const int64_t oc = w->shape().dim(0), ic = w->shape().dim(1);
    const tensor::Shape& x = shapes[static_cast<size_t>(n.inputs[0])];
    const int64_t batch = x.dim(0);

    out.AddInitializer(n.name + ".fc.w",
                       Tensor(tensor::Shape({oc, ic}), w->vec()));
    std::vector<std::string> weights = {n.name + ".fc.w"};
    if (n.weights.size() >= 2) weights.push_back(n.weights[1]);

    Attributes to_2d;
    to_2d.SetInts("dims", {batch, ic});
    NodeId flat = out.AddNode(n.name + ".fc.in", OpType::kReshape, ins, {},
                              std::move(to_2d));
    NodeId fc = out.AddNode(n.name + ".fc", OpType::kGemm, {flat},
                            std::move(weights));
    Attributes to_4d;
    to_4d.SetInts("dims", {batch, oc, 1, 1});
    remap[n.id] = out.AddNode(n.name + ".fc.out", OpType::kReshape, {fc}, {},
                              std::move(to_4d));
  }
  for (NodeId o : g.outputs()) out.MarkOutput(remap.at(o));
  out.DropUnusedInitializers();
  return out;
}

}  // namespace

int CountApplicableSites(const Graph& g, GraphTransform t) {
  switch (t) {
    case GraphTransform::kInsertDummyOps:
      return static_cast<int>(DummyOpCandidates(g).size());
    case GraphTransform::kSplitConv:
      return static_cast<int>(SplitConvCandidates(g).size());
    case GraphTransform::kShuffleChannels:
      return static_cast<int>(ShuffleSites(g).size());
    case GraphTransform::kReorderCommutative:
      return static_cast<int>(CommutativeCandidates(g).size());
    case GraphTransform::kSelectiveBnFold:
      return static_cast<int>(BnFoldCandidates(g).size());
    case GraphTransform::kConvToFc:
      return static_cast<int>(ConvToFcCandidates(g).size());
  }
  return 0;
}

util::Result<Graph> ApplyGraphTransform(const Graph& g, GraphTransform t,
                                        uint64_t seed, int max_sites) {
  MVTEE_RETURN_IF_ERROR(g.Validate());
  if (max_sites < 1) return util::InvalidArgument("max_sites must be >= 1");
  util::Rng rng(seed ^ (static_cast<uint64_t>(t) << 56));
  Graph out;
  switch (t) {
    case GraphTransform::kInsertDummyOps:
      out = InsertDummyOps(g, rng, max_sites);
      break;
    case GraphTransform::kSplitConv:
      out = SplitConv(g, rng, max_sites);
      break;
    case GraphTransform::kShuffleChannels:
      out = ShuffleChannels(g, rng, max_sites);
      break;
    case GraphTransform::kReorderCommutative:
      out = ReorderCommutative(g, rng, max_sites);
      break;
    case GraphTransform::kSelectiveBnFold:
      out = SelectiveBnFold(g, rng, max_sites);
      break;
    case GraphTransform::kConvToFc:
      out = ConvToFc(g, rng, max_sites);
      break;
  }
  MVTEE_RETURN_IF_ERROR(out.Validate());
  {
    auto shapes = out.InferShapes();
    if (!shapes.ok()) return shapes.status();
  }
  return out;
}

}  // namespace mvtee::variant
