// Variant specification and pool construction (paper §4.2, §5.1).
//
// A VariantSpec = graph-level transforms + an inference-instance
// configuration. The pool builder produces, per pipeline stage, the set
// of diversified variants the monitor will later select from (the
// "pre-established variant pool" of Figure 2).
#pragma once

#include <string>
#include <vector>

#include "graph/ir.h"
#include "partition/partition.h"
#include "runtime/executor.h"
#include "variant/transforms.h"

namespace mvtee::variant {

struct VariantSpec {
  std::string id;
  // Graph-level transforms, applied in order with `transform_seed`.
  std::vector<GraphTransform> graph_transforms;
  uint64_t transform_seed = 0;
  int transform_sites = 4;
  // Inference-instance level (runtime/EP/library analog).
  runtime::ExecutorConfig exec_config;

  util::Bytes Serialize() const;
  static util::Result<VariantSpec> Deserialize(util::ByteSpan data);
};

// Applies the spec's graph transforms to `base`.
util::Result<graph::Graph> BuildVariantGraph(const graph::Graph& base,
                                             const VariantSpec& spec);

// Offline correctness check ("partitions are tested for correctness
// before evaluation"): runs base and variant on a deterministic random
// input and compares outputs with a cosine-similarity threshold.
util::Result<bool> VerifyVariantEquivalence(const graph::Graph& base,
                                            const graph::Graph& variant_graph,
                                            const VariantSpec& spec,
                                            uint64_t input_seed,
                                            double min_cosine = 0.999);

struct VariantBundle {
  VariantSpec spec;
  graph::Graph graph;  // transformed stage graph
};

// All variants generated for one pipeline stage.
struct StageVariantPool {
  std::vector<VariantBundle> variants;
};

struct PoolConfig {
  // Maximum variants generated per stage (the monitor picks a subset at
  // init time).
  int variants_per_stage = 3;
  uint64_t seed = 0;
  // Replicated mode: identical ORT-like variants, no diversification —
  // used for the paper's "fundamental performance" experiments where
  // execution-time variation between variants must be minimized.
  bool replicated = false;
  // Adds one deliberately slow, heavily diversified TVM-style variant
  // per stage (the lagging variant of the Fig. 13 async experiments).
  bool include_slow_variant = false;
  double slow_variant_factor = 1.8;
  // Verify each generated variant against its base stage graph.
  bool verify = true;
};

// Builds a pool for every stage of a partitioned model.
util::Result<std::vector<StageVariantPool>> BuildVariantPool(
    const partition::PartitionedModel& model, const PoolConfig& config);

}  // namespace mvtee::variant
