// Model-graph-level diversification transforms (paper §4.2).
//
// Every transform produces a *functionally equivalent* graph — most are
// exactly equivalent in float arithmetic (identity insertion, channel
// permutation, conv output split, commutative reorder); BN folding is
// equivalent up to rounding. They change the graph's structure, weight
// layout and execution order, which is what denies an attacker a single
// stable target across variants.
#pragma once

#include <cstdint>

#include "graph/ir.h"
#include "util/rng.h"
#include "util/status.h"

namespace mvtee::variant {

enum class GraphTransform : uint8_t {
  // Insert Identity / Scale(1,0) pass-through nodes on random edges
  // ("dummy operators").
  kInsertDummyOps = 0,
  // Split a Conv2d into two half-output-channel convs + Concat
  // ("equivalent operator replacement": decomposition).
  kSplitConv,
  // Permute a conv's output channels and the downstream consumers'
  // weights accordingly ("channel manipulation").
  kShuffleChannels,
  // Swap the operands of Add nodes ("mathematical-property-based graph
  // rewriting": commutativity).
  kReorderCommutative,
  // Fold a random subset of BatchNorms into their convs ("selective
  // optimization").
  kSelectiveBnFold,
  // Replace a 1x1 convolution over a [N,C,1,1] tensor with an exactly
  // equivalent fully-connected (Gemm) operator ("equivalent operator
  // replacement": conv -> linear), via Reshape on both sides.
  kConvToFc,
};

std::string_view GraphTransformName(GraphTransform t);

// Applies one transform at up to `max_sites` sites chosen by `seed`.
// Returns the transformed graph (the input is not modified). Transforms
// that find no applicable site return the graph unchanged — callers that
// need guaranteed structural change should check ApplicableSites first.
util::Result<graph::Graph> ApplyGraphTransform(const graph::Graph& g,
                                               GraphTransform t,
                                               uint64_t seed,
                                               int max_sites = 4);

// Number of sites where `t` could apply.
int CountApplicableSites(const graph::Graph& g, GraphTransform t);

}  // namespace mvtee::variant
