#include "service/inference_service.h"

#include <utility>

#include "core/messages.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "util/clock.h"

namespace mvtee::service {

InferenceService::InferenceService(core::Monitor& monitor,
                                   transport::Listener& listener,
                                   ServiceOptions options)
    : monitor_(monitor), listener_(listener), options_(options) {
  obs::Registry& reg = monitor.metrics();
  auth_failures_ = &reg.GetCounter("channel.auth_failures");
  handshake_failures_ = &reg.GetCounter("service.handshake_failures");
  reply_us_ = &reg.GetHistogram("service.reply_us");
}

util::Result<std::unique_ptr<InferenceService>> InferenceService::Start(
    core::Monitor& monitor, transport::Listener& listener,
    const ServiceOptions& options) {
  // The request loop must be live before the first session submits.
  MVTEE_RETURN_IF_ERROR(monitor.StartService(options.admission));
  std::unique_ptr<InferenceService> service(
      new InferenceService(monitor, listener, options));
  service->accept_thread_ =
      std::thread(&InferenceService::AcceptLoop, service.get());
  return service;
}

InferenceService::~InferenceService() { Stop(); }

void InferenceService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Closing the channels unblocks session threads parked in Recv.
    for (auto& channel : channels_) channel->Close();
    channels_.clear();
    threads.swap(session_threads_);
  }
  for (auto& t : threads) t.join();
}

void InferenceService::AcceptLoop() {
  for (;;) {
    auto endpoint = listener_.Accept(200'000);
    if (!endpoint.ok()) {
      if (endpoint.status().code() == util::StatusCode::kUnavailable) return;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopped_) return;
      }
      continue;  // accept timeout: poll the stop flag again
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      endpoint->Close();
      return;
    }
    session_threads_.emplace_back(&InferenceService::ServeSession, this,
                                  std::move(*endpoint));
  }
}

void InferenceService::ServeSession(transport::Endpoint endpoint) {
  // RA-TLS handshake: the monitor presents its report (binding its
  // ephemeral key into report_data); clients connect unattested — it is
  // the *client* that must be convinced it talks to the genuine
  // monitor, not vice versa. A failed handshake is a distinct taxonomy
  // event (kHandshakeFailure), counted alongside record-level
  // authentication failures.
  auto handshake = transport::SecureChannel::Handshake(
      std::move(endpoint), transport::SecureChannel::Role::kServer,
      monitor_.enclave(), transport::AllowUnattestedPeer(),
      options_.handshake_timeout_us);
  if (!handshake.ok()) {
    handshake_failures_->Add(1);
    auth_failures_->Add(1);
    return;
  }
  auto channel = std::make_shared<transport::SecureMsgChannel>(
      std::move(*handshake));
  // A session that ends before delivering a single frame never
  // completed establishment from the client's point of view — the
  // typical cause is a client that rejected our attestation report and
  // hung up. Classify that as a handshake failure too (a clean
  // kShutdown right after connecting is not one).
  bool served_any = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      channel->Close();
      handshake_failures_->Add(1);
      auth_failures_->Add(1);
      return;
    }
    channels_.push_back(channel);
  }

  auto session = monitor_.OpenSession();
  if (!session.ok()) {
    channel->Close();
    return;
  }

  for (;;) {
    auto frame = channel->RecvPooled(options_.idle_timeout_us);
    if (!frame.ok()) {
      // kUnavailable: client (or Stop) closed the channel. A record
      // that fails authentication or replays a sequence number was
      // already counted by the channel; either way the session ends —
      // there is no recovery from a poisoned record stream.
      if (!served_any) {
        handshake_failures_->Add(1);
        auth_failures_->Add(1);
      }
      break;
    }
    served_any = true;
    auto type = core::PeekType(frame->span());
    if (!type.ok() || *type == core::MsgType::kShutdown) break;
    if (*type != core::MsgType::kSessionSubmit) break;

    auto msg = core::DecodeSessionSubmit(*frame);
    if (!msg.ok()) break;

    core::SessionReplyMsg reply;
    reply.seq = msg->seq;
    core::InferenceRequest request;
    request.inputs = std::move(msg->inputs);
    request.deadline_us = msg->deadline_us;
    request.tenant = std::move(msg->tenant);
    request.priority = msg->priority;
    request.model = std::move(msg->model);
    auto submitted = (*session)->SubmitSequenced(std::move(request), msg->seq);
    if (!submitted.ok()) {
      reply.code = static_cast<uint8_t>(submitted.status().code());
      reply.error = submitted.status().message();
      (void)core::SendFrame(*channel, reply);
      if (submitted.status().code() == util::StatusCode::kReplayDetected) {
        break;  // replayed Submit frame: abort the whole session
      }
      continue;  // e.g. admission rejection — the session survives
    }
    core::InferenceResponse response = submitted->get();
    reply.code = static_cast<uint8_t>(response.status.code());
    reply.error = response.status.message();
    reply.latency_us = response.latency_us;
    reply.outputs = std::move(response.outputs);
    // Reply-seal phase of the latency breakdown: encode + AEAD seal +
    // send, patched into the request's retained timeline by trace id.
    const int64_t reply_start = util::NowMicros();
    const bool sent = core::SendFrame(*channel, reply).ok();
    const int64_t reply_elapsed = util::NowMicros() - reply_start;
    reply_us_->Observe(reply_elapsed);
    obs::TimelineLog::Default().NoteReply(response.trace_id, reply_elapsed);
    if (!sent) break;
  }
  channel->Close();
}

util::Result<std::unique_ptr<InferenceClient>> InferenceClient::Connect(
    transport::Listener& listener, const tee::SimulatedCpu& cpu,
    const crypto::Sha256Digest& expected_monitor_measurement,
    int64_t timeout_us) {
  auto handshake = transport::SecureChannel::HandshakeUnattested(
      listener.Connect(), transport::SecureChannel::Role::kClient,
      transport::ExpectMeasurement(cpu, expected_monitor_measurement),
      timeout_us);
  if (!handshake.ok()) {
    // Attestation and transport errors keep their own codes (tests and
    // metrics distinguish them); everything else about a failed session
    // establishment is the taxonomy's kHandshakeFailure.
    const util::StatusCode code = handshake.status().code();
    if (code == util::StatusCode::kAttestationFailure ||
        code == util::StatusCode::kAuthenticationFailure ||
        code == util::StatusCode::kUnavailable) {
      return handshake.status();
    }
    return util::HandshakeFailure(handshake.status().ToString());
  }
  return std::unique_ptr<InferenceClient>(
      new InferenceClient(std::move(*handshake)));
}

util::Result<std::vector<tensor::Tensor>> InferenceClient::Infer(
    std::vector<tensor::Tensor> inputs, int64_t deadline_us,
    int64_t recv_timeout_us) {
  InferOptions options;
  options.deadline_us = deadline_us;
  options.recv_timeout_us = recv_timeout_us;
  return Infer(std::move(inputs), options);
}

util::Result<std::vector<tensor::Tensor>> InferenceClient::Infer(
    std::vector<tensor::Tensor> inputs, const InferOptions& options) {
  if (disconnected_) return util::FailedPrecondition("client disconnected");
  if (options.deadline_us < 0) {
    // Validated before any frame leaves: an already-expired budget must
    // not consume a sequence number or a network round trip.
    return util::AdmissionRejected(
        "deadline_us " + std::to_string(options.deadline_us) +
        " already expired at submit (0 = no deadline)");
  }
  const int64_t deadline_us = options.deadline_us;
  const int64_t recv_timeout_us = options.recv_timeout_us;
  core::SessionSubmitMsg msg;
  msg.seq = next_seq_;
  msg.deadline_us = deadline_us;
  msg.tenant = options.tenant;
  msg.priority = options.priority;
  msg.model = options.model;
  msg.inputs = std::move(inputs);
  MVTEE_RETURN_IF_ERROR(core::SendFrame(channel_, msg));
  next_seq_ += 1;
  MVTEE_ASSIGN_OR_RETURN(transport::InFrame frame,
                         channel_.RecvPooled(recv_timeout_us));
  MVTEE_ASSIGN_OR_RETURN(core::SessionReplyMsg reply,
                         core::DecodeSessionReply(frame));
  if (reply.seq != msg.seq) {
    return util::ReplayDetected("reply sequence mismatch");
  }
  if (reply.code != static_cast<uint8_t>(util::StatusCode::kOk)) {
    return util::Status(static_cast<util::StatusCode>(reply.code),
                        std::move(reply.error));
  }
  last_latency_us_ = reply.latency_us;
  // The decoded tensors alias the pooled record buffer and pin it via
  // their keepalive — safe to hand out as-is.
  return std::move(reply.outputs);
}

const tee::AttestationReport& InferenceClient::monitor_report() {
  return channel_.secure().peer_report();
}

void InferenceClient::Disconnect() {
  if (disconnected_) return;
  disconnected_ = true;
  (void)channel_.Send(core::EncodeShutdown());
  channel_.Close();
}

}  // namespace mvtee::service
