#include "service/scheduler.h"

#include <utility>

namespace mvtee::service {

Scheduler::Scheduler(std::vector<ModelEntry> models)
    : models_(std::move(models)) {
  for (const auto& entry : models_) {
    names_.push_back(entry.name);
    routes_[entry.name] = entry.monitor;
  }
}

util::Result<std::unique_ptr<Scheduler>> Scheduler::Start(
    std::vector<ModelEntry> models, const core::ServiceConfig& config) {
  if (models.empty()) {
    return util::InvalidArgument("scheduler needs at least one model");
  }
  for (const auto& entry : models) {
    if (entry.monitor == nullptr) {
      return util::InvalidArgument("model '" + entry.name +
                                   "' has no monitor");
    }
  }
  // Start (or confirm) every monitor's request loop. The loops are
  // per-monitor threads — the zoo serves all models concurrently.
  for (const auto& entry : models) {
    MVTEE_RETURN_IF_ERROR(entry.monitor->StartService(config));
  }
  return std::unique_ptr<Scheduler>(new Scheduler(std::move(models)));
}

core::Monitor* Scheduler::Route(const std::string& model) const {
  if (model.empty()) return models_.front().monitor;
  auto it = routes_.find(model);
  return it == routes_.end() ? nullptr : it->second;
}

util::Result<std::unique_ptr<SchedulerSession>> Scheduler::OpenSession() {
  return std::unique_ptr<SchedulerSession>(new SchedulerSession(this));
}

util::Result<std::future<core::InferenceResponse>> SchedulerSession::Submit(
    core::InferenceRequest request) {
  if (scheduler_ == nullptr) {
    return util::FailedPrecondition("session closed");
  }
  core::Monitor* monitor = scheduler_->Route(request.model);
  if (monitor == nullptr) {
    return util::InvalidArgument("unknown model '" + request.model + "'");
  }
  auto it = sessions_.find(monitor);
  if (it == sessions_.end()) {
    MVTEE_ASSIGN_OR_RETURN(std::unique_ptr<core::Session> session,
                           monitor->OpenSession());
    it = sessions_.emplace(monitor, std::move(session)).first;
  }
  return it->second->Submit(std::move(request));
}

void SchedulerSession::Close() {
  for (auto& [monitor, session] : sessions_) session->Close();
  sessions_.clear();
  scheduler_ = nullptr;
}

}  // namespace mvtee::service
