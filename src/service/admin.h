// Live introspection plane (DESIGN.md §12): a read-only admin endpoint
// for an operator of a running InferenceService, plus the stall
// watchdog guarding its event loop.
//
// Deliberately OUTSIDE the attested channel: the admin surface is
// plaintext, unauthenticated and read-only — it is what a curl, a
// Prometheus scraper or a Kubernetes liveness probe talks to, none of
// which can run the RA-TLS handshake. The hard rule that makes this
// safe is what the endpoint serves: aggregate metrics, health verdicts
// and lifecycle states only. It must never expose key material, tensor
// data, or plaintext request bodies (trace ids and phase durations are
// fine; payloads are not).
//
//   GET /healthz  200/503 + JSON     liveness: watchdog verdict +
//                                    variant lifecycle panel
//   GET /metrics  Prometheus 0.0.4   live registry scrape (consistent
//                                    point-in-time histogram snapshots)
//   GET /status   JSON               sessions, queue depth/HWM,
//                                    inflight, lifecycle states, uptime,
//                                    build/CPU provenance, timeline
//                                    exemplars (trace ids + phases)
//
// The server listens on an in-process transport::Listener (one "GET
// /path" frame in, one full HTTP/1.0 response text out — see AdminGet)
// and, when MVTEE_ADMIN_PORT is set, additionally bridges the same
// handler to a real loopback TCP socket so external tools can scrape a
// running bench/service.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/monitor.h"
#include "obs/watchdog.h"
#include "transport/channel.h"
#include "util/status.h"

namespace mvtee::service {

struct AdminOptions {
  obs::WatchdogOptions watchdog;
  // Loopback TCP bridge port: -1 disables, 0 binds an ephemeral port.
  int tcp_port = -1;

  // Applies MVTEE_ADMIN_PORT and the MVTEE_WATCHDOG_* knobs on top of
  // `base` (strict validation; invalid values keep the base).
  static AdminOptions FromEnv(AdminOptions base);
  static AdminOptions FromEnv() { return FromEnv(AdminOptions{}); }
};

class AdminServer {
 public:
  struct HttpResponse {
    int code = 200;
    std::string content_type;
    std::string body;
  };

  // Serves `listener` (and the TCP bridge, when configured) against
  // `monitor`'s introspection surfaces; starts the stall watchdog. The
  // monitor and listener must outlive the returned server.
  static util::Result<std::unique_ptr<AdminServer>> Start(
      core::Monitor& monitor, transport::Listener& listener,
      AdminOptions options = AdminOptions::FromEnv());

  // Closes the listener + TCP socket, joins the serving threads, stops
  // the watchdog. Idempotent.
  void Stop();
  ~AdminServer();

  // The shared request handler behind both transports. `request_line`
  // is the HTTP request line ("GET /healthz" — an HTTP-version suffix
  // is tolerated). Exposed for tests.
  HttpResponse Handle(const std::string& request_line);

  // Serializes `r` as a full HTTP/1.0 response (status line, headers,
  // Content-Length, body).
  static std::string RenderHttp(const HttpResponse& r);

  // Bound TCP bridge port, or -1 when the bridge is disabled.
  int tcp_port() const { return tcp_port_; }

  const obs::StallWatchdog& watchdog() const { return watchdog_; }

 private:
  AdminServer(core::Monitor& monitor, transport::Listener& listener,
              AdminOptions options);

  void AcceptLoop();  // in-process transport
  void TcpLoop();     // loopback bridge
  util::Status BindTcp(int port);

  HttpResponse Healthz();
  HttpResponse Metrics();
  HttpResponse Status();

  core::Monitor& monitor_;
  transport::Listener& listener_;
  AdminOptions options_;
  obs::StallWatchdog watchdog_;
  int64_t start_us_ = 0;

  std::mutex mu_;
  bool stopped_ = false;
  std::thread accept_thread_;
  std::thread tcp_thread_;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
};

// Client helper for the in-process admin transport: dials `listener`,
// sends "GET <path>", returns the full HTTP response text.
util::Result<std::string> AdminGet(transport::Listener& listener,
                                   const std::string& path,
                                   int64_t timeout_us = 2'000'000);

}  // namespace mvtee::service
