// Multi-model serving orchestrator (DESIGN.md §13).
//
// One MVTEE monitor serves one partitioned model. A deployment that
// serves a model zoo runs several monitors — each with its own variant
// panel, sequence spaces and continuous-batching request loop — and
// needs a front-of-house router: service::Scheduler.
//
//   Scheduler
//     ├── "resnet18"    -> Monitor A (its own service loop thread)
//     ├── "mobilenetv3" -> Monitor B (its own service loop thread)
//     └── default ("")  -> the first registered model
//
// Every registered monitor's request loop runs CONCURRENTLY; the
// scheduler adds no cross-model serialization. Per-model fairness
// (WFQ, quotas, EDF) is enforced inside each monitor's BatchFormer;
// the scheduler's job is routing and session fan-out only.
//
// A SchedulerSession is the multi-model analogue of core::Session: it
// routes each InferenceRequest by `request.model` and lazily opens one
// core::Session per routed monitor. Sequence spaces therefore stay
// strictly per (session, model) — requests to different models never
// share a sequence space or an admission queue, so a slow model cannot
// poison another model's replay detection.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/monitor.h"

namespace mvtee::service {

class SchedulerSession;

class Scheduler {
 public:
  // One model-zoo entry. The monitor must be initialized and must
  // outlive the scheduler.
  struct ModelEntry {
    std::string name;
    core::Monitor* monitor = nullptr;
  };

  // Starts every monitor's request loop with `config` (each monitor
  // may also be pre-started with its own config — StartService is
  // idempotent while running). The first entry is the default route
  // for requests with an empty model.
  static util::Result<std::unique_ptr<Scheduler>> Start(
      std::vector<ModelEntry> models, const core::ServiceConfig& config);

  // The monitor serving `model` ("" = default); nullptr when unknown.
  core::Monitor* Route(const std::string& model) const;

  const std::vector<std::string>& model_names() const { return names_; }

  // Opens a multi-model session (per-model core::Sessions are opened
  // lazily on first use).
  util::Result<std::unique_ptr<SchedulerSession>> OpenSession();

 private:
  explicit Scheduler(std::vector<ModelEntry> models);

  std::vector<ModelEntry> models_;
  std::vector<std::string> names_;
  std::map<std::string, core::Monitor*> routes_;
};

// One client's handle across the model zoo. Like core::Session, driven
// from one thread at a time.
class SchedulerSession {
 public:
  // Routes by request.model and submits into that monitor's admission
  // queue. Unknown models fail fast with kInvalidArgument; everything
  // else carries core::Session::Submit semantics (kAdmissionRejected on
  // a full queue or expired deadline, etc.).
  util::Result<std::future<core::InferenceResponse>> Submit(
      core::InferenceRequest request);

  // Closes every underlying per-model session. Idempotent.
  void Close();

  ~SchedulerSession() { Close(); }

 private:
  friend class Scheduler;
  explicit SchedulerSession(const Scheduler* scheduler)
      : scheduler_(scheduler) {}

  const Scheduler* scheduler_;
  // Lazily opened core sessions, keyed by the monitor they belong to
  // (two model names routing to one monitor share a session).
  std::map<core::Monitor*, std::unique_ptr<core::Session>> sessions_;
};

}  // namespace mvtee::service
