#include "service/admin.h"

#include <poll.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/supervisor.h"
#include "crypto/aead.h"
#include "obs/exporters.h"
#include "obs/json.h"
#include "obs/timeline.h"
#include "runtime/gemm.h"
#include "runtime/pack_cache.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/cpu_features.h"
#include "util/knobs.h"
#include "util/logging.h"

namespace mvtee::service {

namespace {

const char* StatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

// "GET /healthz HTTP/1.1" -> "/healthz"; empty on a malformed line.
std::string ParsePath(const std::string& request_line) {
  if (request_line.rfind("GET ", 0) != 0) return "";
  const size_t start = 4;
  size_t end = request_line.find_first_of(" \r\n", start);
  if (end == std::string::npos) end = request_line.size();
  return request_line.substr(start, end - start);
}

std::string IdString(uint64_t id) { return std::to_string(id); }

}  // namespace

AdminOptions AdminOptions::FromEnv(AdminOptions base) {
  base.watchdog = obs::WatchdogOptions::FromEnv(base.watchdog);
  base.tcp_port = static_cast<int>(util::ResolveKnob(
      "MVTEE_ADMIN_PORT", std::getenv("MVTEE_ADMIN_PORT"), 0, 65'535,
      base.tcp_port));
  return base;
}

AdminServer::AdminServer(core::Monitor& monitor,
                         transport::Listener& listener, AdminOptions options)
    : monitor_(monitor),
      listener_(listener),
      options_(options),
      watchdog_(monitor.metrics(), options.watchdog),
      start_us_(util::NowMicros()) {}

util::Result<std::unique_ptr<AdminServer>> AdminServer::Start(
    core::Monitor& monitor, transport::Listener& listener,
    AdminOptions options) {
  std::unique_ptr<AdminServer> server(
      new AdminServer(monitor, listener, options));
  if (options.tcp_port >= 0) {
    MVTEE_RETURN_IF_ERROR(server->BindTcp(options.tcp_port));
    server->tcp_thread_ = std::thread(&AdminServer::TcpLoop, server.get());
  }
  server->watchdog_.Start();
  server->accept_thread_ = std::thread(&AdminServer::AcceptLoop, server.get());
  return server;
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (tcp_thread_.joinable()) tcp_thread_.join();
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  watchdog_.Stop();
}

std::string AdminServer::RenderHttp(const HttpResponse& r) {
  std::string out = "HTTP/1.0 " + std::to_string(r.code) + " " +
                    StatusText(r.code) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

AdminServer::HttpResponse AdminServer::Handle(
    const std::string& request_line) {
  const std::string path = ParsePath(request_line);
  if (path == "/healthz") return Healthz();
  if (path == "/metrics") return Metrics();
  if (path == "/status") return Status();
  HttpResponse r;
  r.code = 404;
  r.content_type = "application/json";
  obs::JsonValue::Object err;
  err.emplace_back("error", "unknown path");
  err.emplace_back("paths",
                   obs::JsonValue::Array{"/healthz", "/metrics", "/status"});
  r.body = obs::JsonValue(std::move(err)).Dump(2) + "\n";
  return r;
}

AdminServer::HttpResponse AdminServer::Healthz() {
  // A probe wants the verdict as of NOW, not as of the last poll tick
  // (Evaluate is thread-safe against the sampling loop).
  watchdog_.Evaluate(util::NowMicros());
  const obs::StallWatchdog::Health h = watchdog_.health();
  obs::JsonValue::Object body;
  body.emplace_back("healthy", h.healthy);
  body.emplace_back("reason", h.reason);
  body.emplace_back("heartbeat", h.heartbeat);
  body.emplace_back("silent_for_us", h.silent_for_us);
  body.emplace_back("queue_depth", h.queue_depth);
  body.emplace_back("inflight", h.inflight);
  body.emplace_back("verify_queue_depth", h.verify_queue_depth);
  body.emplace_back("stall_alarms", h.stall_alarms);
  // Supervisor panel verdict: a retired or quarantined variant is an
  // operator-visible condition, but panel self-healing is the design —
  // only the watchdog verdict decides the status code.
  if (const core::Supervisor* sup = monitor_.supervisor()) {
    obs::JsonValue::Object panel;
    for (const auto& slot : sup->Snapshot()) {
      panel.emplace_back(slot.variant_id,
                         std::string(core::LifecycleName(slot.state)));
    }
    body.emplace_back("variants", std::move(panel));
  }
  HttpResponse r;
  r.code = h.healthy ? 200 : 503;
  r.content_type = "application/json";
  r.body = obs::JsonValue(std::move(body)).Dump(2) + "\n";
  return r;
}

AdminServer::HttpResponse AdminServer::Metrics() {
  HttpResponse r;
  r.content_type = "text/plain; version=0.0.4";
  r.body = obs::PrometheusExporter(&monitor_.metrics()).Export();
  return r;
}

AdminServer::HttpResponse AdminServer::Status() {
  obs::Registry& reg = monitor_.metrics();
  obs::JsonValue::Object body;
  body.emplace_back("uptime_us", util::NowMicros() - start_us_);

  obs::JsonValue::Object build;
  build.emplace_back("cpu_features", util::CpuFeatureString());
  build.emplace_back("simd_enabled", util::SimdEnabled());
  // Structured dispatch provenance: which accelerated tiers actually
  // run on this host right now, plus detected-but-not-yet-dispatched
  // ISA bits (avx512f is surfaced so deployments can see the headroom;
  // a full AVX-512 GEMM tier remains a ROADMAP item).
  obs::JsonValue::Object simd;
  simd.emplace_back("avx2_gemm", runtime::GemmAvx2Accelerated());
  simd.emplace_back("avx2_elementwise", util::UseAvx2Elementwise());
  simd.emplace_back("aes_gcm", crypto::AesGcmAccelerated());
  simd.emplace_back("avx512f_detected_unused",
                    util::HostCpuFeatures().avx512f);
  build.emplace_back("simd_dispatch", std::move(simd));
  body.emplace_back("build", std::move(build));

  // Prepacked constant-weight cache (DESIGN.md §14): hits/misses are
  // hot-path lookups, bytes is the storage held by live caches.
  obs::JsonValue::Object pack;
  pack.emplace_back("enabled", runtime::PackCacheEnabled());
  pack.emplace_back("hits", reg.GetCounter("pack.hits").value());
  pack.emplace_back("misses", reg.GetCounter("pack.misses").value());
  pack.emplace_back("bytes", reg.GetGauge("pack.bytes").value());
  body.emplace_back("pack", std::move(pack));

  const core::Monitor::ServiceStatusSnapshot status = monitor_.ServiceStatus();
  obs::JsonValue::Object svc;
  svc.emplace_back("running", status.running);
  svc.emplace_back("accepting", status.accepting);
  svc.emplace_back("queue_depth", static_cast<uint64_t>(status.queue_depth));
  svc.emplace_back("queue_depth_hwm",
                   reg.GetGauge("service.admission_queue_depth_hwm").value());
  svc.emplace_back("queue_max", static_cast<uint64_t>(status.queue_max));
  svc.emplace_back("inflight", reg.GetGauge("service.inflight").value());

  // Scheduler policy in force plus its live counters (DESIGN.md §13).
  obs::JsonValue::Object sched;
  sched.emplace_back("continuous", status.continuous);
  sched.emplace_back("edf", status.edf);
  sched.emplace_back("max_batch", static_cast<uint64_t>(status.max_batch));
  sched.emplace_back("batch_window_us", status.batch_window_us);
  sched.emplace_back("tenant_quota_pct",
                     static_cast<uint64_t>(status.tenant_quota_pct));
  sched.emplace_back("preemptions",
                     reg.GetCounter("scheduler.preemptions_total").value());
  sched.emplace_back(
      "deadline_misses",
      reg.GetCounter("scheduler.deadline_misses_total").value());
  svc.emplace_back("scheduler", std::move(sched));
  obs::JsonValue::Array sessions;
  for (const auto& s : status.sessions) {
    obs::JsonValue::Object sess;
    sess.emplace_back("id", IdString(s.id));
    sess.emplace_back("next_seq", s.next_seq);
    sess.emplace_back("aborted", s.aborted);
    sessions.emplace_back(std::move(sess));
  }
  svc.emplace_back("sessions", std::move(sessions));
  body.emplace_back("service", std::move(svc));

  const obs::StallWatchdog::Health h = watchdog_.health();
  obs::JsonValue::Object wd;
  wd.emplace_back("healthy", h.healthy);
  wd.emplace_back("reason", h.reason);
  wd.emplace_back("heartbeat", h.heartbeat);
  wd.emplace_back("silent_for_us", h.silent_for_us);
  wd.emplace_back("stall_alarms", h.stall_alarms);
  body.emplace_back("watchdog", std::move(wd));

  if (const core::Supervisor* sup = monitor_.supervisor()) {
    obs::JsonValue::Array variants;
    for (const auto& slot : sup->Snapshot()) {
      obs::JsonValue::Object v;
      v.emplace_back("variant_id", slot.variant_id);
      v.emplace_back("stage", static_cast<uint64_t>(slot.stage));
      v.emplace_back("state", std::string(core::LifecycleName(slot.state)));
      v.emplace_back("dissents", slot.dissents);
      v.emplace_back("quarantines", slot.quarantines);
      v.emplace_back("readmissions", slot.readmissions);
      variants.emplace_back(std::move(v));
    }
    body.emplace_back("variants", std::move(variants));
  }

  // Every MVTEE_* knob the process honors — one authoritative table
  // (util::KnobRegistry), with the raw and effective values.
  obs::JsonValue::Array knobs;
  for (const auto& view : util::KnobRegistry::Default().Snapshot()) {
    obs::JsonValue::Object k;
    k.emplace_back("name", std::string(view.desc->name));
    k.emplace_back("set", view.set);
    if (view.set) k.emplace_back("raw", view.raw);
    k.emplace_back("value", view.value);
    k.emplace_back("doc", std::string(view.desc->doc));
    knobs.emplace_back(std::move(k));
  }
  body.emplace_back("knobs", std::move(knobs));

  obs::TimelineLog& log = obs::TimelineLog::Default();
  obs::JsonValue::Object timelines;
  timelines.emplace_back("total_noted", log.total_noted());
  obs::JsonValue::Array slowest;
  for (const auto& t : log.SlowestK(8)) {
    slowest.emplace_back(obs::TimelineToJson(t));
  }
  timelines.emplace_back("slowest", std::move(slowest));
  body.emplace_back("timelines", std::move(timelines));

  HttpResponse r;
  r.content_type = "application/json";
  r.body = obs::JsonValue(std::move(body)).Dump(2) + "\n";
  return r;
}

void AdminServer::AcceptLoop() {
  for (;;) {
    auto endpoint = listener_.Accept(200'000);
    if (!endpoint.ok()) {
      if (endpoint.status().code() == util::StatusCode::kUnavailable) return;
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      continue;  // accept timeout: poll the stop flag again
    }
    // One request per connection, served inline: the handlers are
    // cheap snapshots and the admin plane has no concurrency SLO.
    auto frame = endpoint->Recv(2'000'000);
    if (frame.ok()) {
      const HttpResponse response = Handle(util::ToString(*frame));
      (void)endpoint->Send(util::ToBytes(RenderHttp(response)));
    }
    endpoint->Close();
  }
}

util::Status AdminServer::BindTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return util::Internal("admin: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return util::Internal("admin: bind(127.0.0.1:" + std::to_string(port) +
                          ") failed: " + std::strerror(errno));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return util::Internal("admin: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return util::Internal("admin: getsockname() failed");
  }
  tcp_fd_ = fd;
  tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
  MVTEE_ILOG << "admin: listening on 127.0.0.1:" << tcp_port_;
  return util::OkStatus();
}

void AdminServer::TcpLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
    }
    pollfd pfd{tcp_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);  // ms; bounds the stop latency
    if (ready <= 0) continue;
    const int conn = ::accept(tcp_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Read up to the end of the request line; ignore the header block
    // (every endpoint is a bare GET).
    std::string request;
    char buf[512];
    for (;;) {
      const ssize_t n = ::read(conn, buf, sizeof(buf));
      if (n <= 0) break;
      request.append(buf, static_cast<size_t>(n));
      if (request.find('\n') != std::string::npos) break;
      if (request.size() > 8192) break;  // header flood guard
    }
    const std::string wire = RenderHttp(Handle(request));
    size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n = ::write(conn, wire.data() + off, wire.size() - off);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    ::close(conn);
  }
}

util::Result<std::string> AdminGet(transport::Listener& listener,
                                   const std::string& path,
                                   int64_t timeout_us) {
  transport::Endpoint endpoint = listener.Connect();
  MVTEE_RETURN_IF_ERROR(endpoint.Send(util::ToBytes("GET " + path)));
  MVTEE_ASSIGN_OR_RETURN(util::Bytes reply, endpoint.Recv(timeout_us));
  endpoint.Close();
  return util::ToString(reply);
}

}  // namespace mvtee::service
