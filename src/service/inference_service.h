// Confidential inference service front end (DESIGN.md §11).
//
// Modeled on the onnx-server-openenclave request-handler pattern: a
// client fetches the monitor TEE's attestation report — whose
// report_data binds the monitor's ephemeral X25519 public key — over
// the RA-TLS handshake, verifies the measurement, derives per-session
// AEAD keys via ECDH + transcript-bound HKDF, and then submits
// encrypted kSessionSubmit requests. Server-side, each accepted
// connection becomes one monitor Session; requests from concurrent
// sessions interleave through the MVX pipeline via the monitor's
// coalescing admission loop.
//
// Error taxonomy (DESIGN.md §7): a failed handshake is surfaced as
// kHandshakeFailure and counted in channel.auth_failures +
// service.handshake_failures; admission overflow is kAdmissionRejected,
// counted in service.rejected_total (the session survives); a replayed
// or reordered Submit frame is kReplayDetected and aborts the session.
#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/monitor.h"
#include "transport/channel.h"
#include "transport/msg_channel.h"
#include "transport/secure_channel.h"

namespace mvtee::service {

struct ServiceOptions {
  // Monitor-side admission knobs (queue bound, coalescing width).
  core::ServiceConfig admission;
  int64_t handshake_timeout_us = 5'000'000;
  // Per-session idle receive window; a session silent for this long is
  // closed (the client reconnects).
  int64_t idle_timeout_us = 30'000'000;
};

// Server: accepts connections from a transport::Listener, runs the
// attested handshake (monitor attested, clients unattested), and pumps
// each session's Submit frames into the monitor's request loop.
class InferenceService {
 public:
  // Starts the monitor's request loop (with `options.admission`), the
  // accept thread, and per-session service threads. The monitor and
  // listener must outlive the returned service.
  static util::Result<std::unique_ptr<InferenceService>> Start(
      core::Monitor& monitor, transport::Listener& listener,
      const ServiceOptions& options = ServiceOptions{});

  // Closes the listener and every live session channel, then joins all
  // service threads. Does NOT stop the monitor's request loop (other
  // frontends/Run() callers may still use it). Idempotent.
  void Stop();

  ~InferenceService();

 private:
  InferenceService(core::Monitor& monitor, transport::Listener& listener,
                   ServiceOptions options);

  void AcceptLoop();
  void ServeSession(transport::Endpoint endpoint);

  core::Monitor& monitor_;
  transport::Listener& listener_;
  ServiceOptions options_;

  obs::Counter* auth_failures_ = nullptr;       // channel.auth_failures
  obs::Counter* handshake_failures_ = nullptr;  // service.handshake_failures
  obs::Histogram* reply_us_ = nullptr;          // service.reply_us

  std::mutex mu_;
  bool stopped_ = false;
  std::vector<std::thread> session_threads_;
  // Live session channels, closable from Stop() to unblock their
  // threads; each thread also holds its own reference.
  std::vector<std::shared_ptr<transport::SecureMsgChannel>> channels_;
  std::thread accept_thread_;
};

// Client: one attested session against an InferenceService. Not
// thread-safe — one client per thread (open several sessions for
// concurrency; that is the point of the session API).
class InferenceClient {
 public:
  // Dials `listener`, performs the RA-TLS handshake as an unattested
  // client, and verifies that the service's report is hardware-signed
  // and measures as `expected_monitor_measurement` — rejecting a wrong
  // or stale report, or a report whose report_data does not bind the
  // handshake key. Handshake failures surface as kHandshakeFailure.
  static util::Result<std::unique_ptr<InferenceClient>> Connect(
      transport::Listener& listener, const tee::SimulatedCpu& cpu,
      const crypto::Sha256Digest& expected_monitor_measurement,
      int64_t timeout_us = 5'000'000);

  // Per-request options for Infer.
  struct InferOptions {
    // Relative budget, microseconds; 0 = no deadline. A negative value
    // is rejected client-side with kAdmissionRejected before any frame
    // is sent (no sequence number is consumed).
    int64_t deadline_us = 0;
    // Local wait bound for the reply record.
    int64_t recv_timeout_us = 60'000'000;
    // Scheduling hints for the multi-tenant scheduler (DESIGN.md §13):
    // fairness/ordering labels only, never authenticated inputs.
    std::string tenant;
    int32_t priority = 0;
    std::string model;
  };

  // Submits one encrypted request and blocks for the reply.
  // `deadline_us` is the relative per-request budget (0 = no deadline)
  // enforced at admission; `recv_timeout_us` bounds the local wait for
  // the reply record.
  util::Result<std::vector<tensor::Tensor>> Infer(
      std::vector<tensor::Tensor> inputs, int64_t deadline_us = 0,
      int64_t recv_timeout_us = 60'000'000);
  util::Result<std::vector<tensor::Tensor>> Infer(
      std::vector<tensor::Tensor> inputs, const InferOptions& options);

  // The monitor's attestation report captured during the handshake.
  const tee::AttestationReport& monitor_report();

  // Service-side latency (admission -> completion) of the last
  // successful Infer.
  int64_t last_latency_us() const { return last_latency_us_; }

  // Sends a clean end-of-session marker and closes the channel.
  void Disconnect();
  ~InferenceClient() { Disconnect(); }

  // Testing hook: the untrusted endpoint under the secure channel.
  transport::Endpoint& raw_endpoint() { return channel_.secure().raw_endpoint(); }

 private:
  explicit InferenceClient(std::unique_ptr<transport::SecureChannel> channel)
      : channel_(std::move(channel)) {}

  transport::SecureMsgChannel channel_;
  uint64_t next_seq_ = 0;
  int64_t last_latency_us_ = 0;
  bool disconnected_ = false;
};

}  // namespace mvtee::service
