#include "runtime/pack_cache.h"

#include <atomic>

#include "obs/metrics.h"
#include "util/buffer_pool.h"
#include "util/knobs.h"

namespace mvtee::runtime {

namespace {

std::atomic<bool> g_disable_pack_cache{false};

obs::Counter& PackHits() {
  static obs::Counter& c = obs::Registry::Default().GetCounter("pack.hits");
  return c;
}

obs::Counter& PackMisses() {
  static obs::Counter& c = obs::Registry::Default().GetCounter("pack.misses");
  return c;
}

obs::Gauge& PackBytes() {
  static obs::Gauge& g = obs::Registry::Default().GetGauge("pack.bytes");
  return g;
}

}  // namespace

bool PackedWeightCache::EnabledFromEnv() {
  // Latched once like MVTEE_SIMD: the knob decides a process-lifetime
  // policy, and re-reading the environment per bind would let the
  // table's strict parse be bypassed mid-run.
  static const bool enabled =
      util::KnobRegistry::Default().Int("MVTEE_PACK_CACHE") != 0;
  return enabled;
}

bool PackCacheEnabled() {
  return PackedWeightCache::EnabledFromEnv() &&
         !g_disable_pack_cache.load(std::memory_order_relaxed);
}

PackedWeightCache::~PackedWeightCache() {
  if (packed_bytes_ > 0) {
    PackBytes().Add(-static_cast<int64_t>(packed_bytes_));
  }
}

void PackedWeightCache::Bind(const graph::Graph& graph, GemmBackend backend) {
  MVTEE_CHECK(!bound_);
  if (!EnabledFromEnv()) return;
  backend_ = backend;
  util::BufferPool& pool = util::BufferPool::Default();
  for (const graph::Node& node : graph.nodes()) {
    if (node.weights.empty()) continue;
    const tensor::Tensor* w = graph.FindInitializer(node.weights[0]);
    if (w == nullptr) continue;
    if (node.op == graph::OpType::kGemm && w->shape().rank() == 2) {
      const int64_t out = w->shape().dim(0), in = w->shape().dim(1);
      if (out <= 0 || in <= 0) continue;
      PackedGemmB packed =
          PackGemmWeightTransposed(backend, w->data(), out, in, &pool);
      packed_bytes_ += packed.bytes();
      gemm_entries_.emplace(node.weights[0], std::move(packed));
    } else if (node.op == graph::OpType::kConv2d &&
               w->shape().rank() == 4) {
      // The im2col lowering consumes conv weights as the GEMM A operand
      // in initializer layout — per-group panels W_g[oc/groups, patch]
      // are already contiguous, so there is nothing to relocate. The
      // alias entry pins the validated geometry (and hit accounting)
      // without duplicating bytes.
      const int64_t groups = node.attrs.GetInt("groups", 1);
      if (groups <= 0 || w->shape().dim(0) % groups != 0) continue;
      conv_entries_.insert(node.weights[0]);
    }
  }
  if (packed_bytes_ > 0) {
    PackBytes().Add(static_cast<int64_t>(packed_bytes_));
  }
  bound_ = true;
}

const PackedGemmB* PackedWeightCache::FindGemm(const std::string& name) const {
  if (!bound_ || !PackCacheEnabled()) {
    PackMisses().Add();
    return nullptr;
  }
  auto it = gemm_entries_.find(name);
  if (it == gemm_entries_.end()) {
    PackMisses().Add();
    return nullptr;
  }
  PackHits().Add();
  return &it->second;
}

bool PackedWeightCache::TouchConv(const std::string& name) const {
  if (!bound_ || !PackCacheEnabled() || conv_entries_.count(name) == 0) {
    PackMisses().Add();
    return false;
  }
  PackHits().Add();
  return true;
}

ScopedDisablePackCache::ScopedDisablePackCache() {
  g_disable_pack_cache.store(true, std::memory_order_relaxed);
}

ScopedDisablePackCache::~ScopedDisablePackCache() {
  g_disable_pack_cache.store(false, std::memory_order_relaxed);
}

}  // namespace mvtee::runtime
