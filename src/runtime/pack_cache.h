// Executor-owned cache of prepacked constant GEMM operands.
//
// Model weights never change between requests, yet the pre-cache hot
// path repaid a per-call setup tax on every inference: FullyConnected
// transposed W, kTransposed re-transposed B, kAvx2 re-packed its
// 16-column panels. PackedWeightCache performs that work exactly once
// at model bind time: every kGemm initializer is packed into its
// backend's hot-path layout (PackGemmWeightTransposed) and stored in a
// util::BufferPool keepalive chunk, keyed by tensor identity — the
// initializer's name inside the executor's private, frozen graph copy
// (Graph::FreezeInitializers guarantees the cached bytes can never go
// stale). Conv weights need no relayout — im2col consumes them as the
// GEMM A operand in initializer order — so Bind validates their
// per-group geometry once and records zero-byte alias entries, which
// keeps pack.{hits,misses} accounting uniform across op types.
//
// Knob: MVTEE_PACK_CACHE=0 (strict KnobRegistry row) disables binding;
// ScopedDisablePackCache forces cache-off lookups process-wide for
// A/B tests. Outputs are bitwise identical either way — packing only
// relocates values, never reorders accumulation.
//
// Instruments (obs default registry, exported via /status and
// Prometheus): pack.hits / pack.misses per hot-path lookup, pack.bytes
// for the bytes currently held by live caches.
#pragma once

#include <map>
#include <set>
#include <string>

#include "graph/ir.h"
#include "runtime/gemm.h"

namespace mvtee::runtime {

class PackedWeightCache {
 public:
  PackedWeightCache() = default;
  ~PackedWeightCache();
  PackedWeightCache(const PackedWeightCache&) = delete;
  PackedWeightCache& operator=(const PackedWeightCache&) = delete;

  // Packs the constant GEMM operands of `graph` for `backend`. Call
  // after all graph passes have run and the initializers are frozen.
  // No-op (cache stays unbound) when MVTEE_PACK_CACHE=0.
  void Bind(const graph::Graph& graph, GemmBackend backend);

  // Hot-path lookup for a kGemm weight. Returns the packed operand, or
  // nullptr when the cache is unbound/disabled or the name is unknown.
  // Counts pack.hits / pack.misses.
  const PackedGemmB* FindGemm(const std::string& name) const;

  // Hot-path touch for a kConv2d weight's alias entry (geometry was
  // validated at bind). Returns true on a hit; counts hits/misses.
  bool TouchConv(const std::string& name) const;

  bool bound() const { return bound_; }
  size_t entries() const {
    return gemm_entries_.size() + conv_entries_.size();
  }
  size_t packed_bytes() const { return packed_bytes_; }

  // MVTEE_PACK_CACHE via the strict knob table (default on).
  static bool EnabledFromEnv();

 private:
  bool bound_ = false;
  GemmBackend backend_ = GemmBackend::kNaive;
  std::map<std::string, PackedGemmB> gemm_entries_;
  std::set<std::string> conv_entries_;
  size_t packed_bytes_ = 0;
};

// True when lookups may serve cached entries: the env knob allows it
// and no ScopedDisablePackCache is live.
bool PackCacheEnabled();

// RAII test/bench hook: forces cache-off lookups process-wide while
// live, as if MVTEE_PACK_CACHE=0 had been set (bound caches keep their
// storage; they just stop serving). Not reentrancy-counted — do not
// nest. Mirrors util::ScopedForceScalar.
class ScopedDisablePackCache {
 public:
  ScopedDisablePackCache();
  ~ScopedDisablePackCache();
  ScopedDisablePackCache(const ScopedDisablePackCache&) = delete;
  ScopedDisablePackCache& operator=(const ScopedDisablePackCache&) = delete;
};

}  // namespace mvtee::runtime
