// Internal interface of the AVX2 elementwise kernel TU (kernels_avx2.cc).
//
// kernels_avx2.cc is compiled with -mavx2 and deliberately WITHOUT
// -mfma: every operation here (compare/blend, min/max, add, mul, div)
// rounds exactly once per element, and with contraction impossible the
// vector tier is bitwise identical to the scalar fallbacks in
// kernels.cc for every input — including NaN and signed-zero corners,
// which the intrinsic operand orders below are chosen to reproduce.
// Dispatch (util::UseAvx2Elementwise) is therefore a speed decision,
// never a diversity axis, same rule as the GEMM microkernel.
//
// Softmax's exp and double-precision sum passes intentionally stay
// scalar in kernels.cc: libm's exp has no vector twin with identical
// rounding, and changing it would alter every variant's numeric
// profile. Only the max pass and the final normalize pass (pure
// single-rounding ops) are vectorized.
#pragma once

#include <cstdint>

namespace mvtee::runtime::internal {

// True when this binary carries the vector elementwise kernels.
bool Avx2ElementwiseCompiled();

// All kernels tolerate exact aliasing (in == out).
void ReluAvx2(const float* in, float* out, int64_t n);
void Relu6Avx2(const float* in, float* out, int64_t n);
void HardSwishAvx2(const float* in, float* out, int64_t n);
void AddAvx2(const float* a, const float* b, float* out, int64_t n);
// out[i] = in[i] + s — the conv bias-scatter shape.
void AddScalarAvx2(const float* in, float s, float* out, int64_t n);
// out[i] = in[i] * alpha + beta (mul then add, never fused).
void ScaleAvx2(const float* in, float alpha, float beta, float* out,
               int64_t n);
// Max over x[0..n) (n >= 1). Matches the sequential scalar reduction
// bitwise for finite inputs (max is exact and order-independent); the
// Softmax caller is insensitive to the ±0 corner because exp(±0) == 1.
float MaxReduceAvx2(const float* x, int64_t n);
void MulScalarAvx2(float* data, float s, int64_t n);

}  // namespace mvtee::runtime::internal
