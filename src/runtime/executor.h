// Inference executors over graph::Graph.
//
// One Executor ≈ one "inference instance" in the paper's terms: the
// combination of runtime lowering (BN folding, in-place activations),
// conv algorithm, GEMM backend, and hardening flags defines the
// instance-level diversity of a variant. Three presets mirror the
// paper's runtimes: "reference" (un-optimized interpreter), "ort"
// (ONNX-Runtime-like optimized CPU EP) and "tvm" (compiler-style tiled
// lowering).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "graph/ir.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/kernels.h"
#include "runtime/pack_cache.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace mvtee::runtime {

struct ExecutorConfig {
  std::string name = "reference";
  ConvAlgo conv_algo = ConvAlgo::kDirect;
  GemmBackend gemm = GemmBackend::kNaive;
  bool fold_batch_norm = false;    // graph-level optimization pass
  bool inplace_activations = false;
  bool bounds_checked = false;     // sanitizer-style hardened kernels
  // Simulated cost multiplier for heavy diversification (e.g. a variant
  // compiled with expensive instrumentation). 1.0 = none.
  double slowdown_factor = 1.0;
};

// Well-known presets (instance-level diversification axes).
ExecutorConfig ReferenceExecutorConfig();
ExecutorConfig OrtLikeExecutorConfig();      // optimized: fold + fuse + blocked
ExecutorConfig TvmLikeExecutorConfig();      // tiled/compiled: transposed GEMM
ExecutorConfig HardenedExecutorConfig();     // bounds-checked, slower
ExecutorConfig MklLikeExecutorConfig();      // vectorized: AVX2/FMA packed panels

// Fault hook: the seam where the fault-injection substrate attaches.
// Production variants run with no hook installed.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  // Called when the hook is attached; lets backend-targeted faults (a
  // bug in one BLAS library, a sanitizer that traps) see which code
  // paths this variant actually runs.
  virtual void OnAttach(const ExecutorConfig& config) { (void)config; }
  // Before node execution; a non-OK status models a crash / trapped
  // exploit inside this variant (DoS-style CVE classes).
  virtual util::Status OnNodeStart(const graph::Node& node) {
    (void)node;
    return util::OkStatus();
  }
  // After node execution; the hook may silently corrupt the output
  // (bit-flip / data-corruption fault classes).
  virtual void OnNodeComplete(const graph::Node& node, tensor::Tensor& out) {
    (void)node;
    (void)out;
  }
};

class Executor {
 public:
  // Validates and shape-infers the graph; applies config-driven passes
  // (BN folding) to a private copy.
  static util::Result<std::unique_ptr<Executor>> Create(
      const graph::Graph& graph, ExecutorConfig config);

  // Runs one inference. `inputs` are bound to graph inputs in order;
  // returns tensors for the graph outputs in order.
  util::Result<std::vector<tensor::Tensor>> Run(
      const std::vector<tensor::Tensor>& inputs);

  void SetFaultHook(std::shared_ptr<FaultHook> hook) {
    fault_hook_ = std::move(hook);
    if (fault_hook_) fault_hook_->OnAttach(config_);
  }

  // Ring buffer Run() records its "executor/run" span into. Defaults to
  // the process-wide buffer; a variant TEE points it at its own per-TEE
  // ring so the merged timeline attributes executor work to the right
  // "process" (DESIGN.md §8).
  void SetTraceBuffer(obs::TraceBuffer* buffer) { trace_ = buffer; }

  const ExecutorConfig& config() const { return config_; }
  const graph::Graph& graph() const { return graph_; }
  // Prepacked constant-weight cache bound to this executor's frozen
  // graph copy (pack.{hits,misses,bytes} in the default registry).
  const PackedWeightCache& pack_cache() const { return pack_cache_; }

 private:
  Executor(graph::Graph graph, ExecutorConfig config);

  util::Result<tensor::Tensor> ExecuteNode(
      const graph::Node& node, std::vector<std::optional<tensor::Tensor>>& env);

  graph::Graph graph_;
  ExecutorConfig config_;
  PackedWeightCache pack_cache_;
  std::shared_ptr<FaultHook> fault_hook_;
  obs::TraceBuffer* trace_ = &obs::TraceBuffer::Default();
  // Per-op-type kernel-time histograms ("executor.op.<Name>_us" in the
  // default registry), indexed by OpType and resolved at construction.
  static constexpr size_t kNumOpTypes =
      static_cast<size_t>(graph::OpType::kReshape) + 1;
  std::array<obs::Histogram*, kNumOpTypes> op_us_{};
  // Per-node index of its last consumer in topological order (for buffer
  // reclamation).
  std::vector<graph::NodeId> last_use_;
  std::vector<bool> is_output_;
};

// Folds inference-mode BatchNorm into a directly preceding Conv2d when
// the conv's only consumer is the BN (the BN node becomes Identity).
// Returns the number of folds applied. Exposed for the variant
// generator's "selective optimization" diversification. The filtered
// overload folds only BN nodes for which `filter(bn_id)` is true.
size_t FoldBatchNormPass(graph::Graph& graph);
size_t FoldBatchNormPass(graph::Graph& graph,
                         const std::function<bool(graph::NodeId)>& filter);

}  // namespace mvtee::runtime
