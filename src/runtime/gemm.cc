#include "runtime/gemm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "runtime/gemm_avx2.h"
#include "runtime/scratch.h"
#include "util/cpu_features.h"
#include "util/dataplane_stats.h"
#include "util/status.h"

namespace mvtee::runtime {

std::string_view GemmBackendName(GemmBackend backend) {
  switch (backend) {
    case GemmBackend::kNaive: return "naive";
    case GemmBackend::kBlocked: return "blocked";
    case GemmBackend::kTransposed: return "transposed";
    case GemmBackend::kAvx2: return "avx2";
  }
  return "unknown";
}

bool GemmAvx2Accelerated() {
  return internal::Avx2KernelCompiled() && util::UseAvx2Gemm();
}

namespace {

void GemmNaive(const float* a, const float* b, float* c, int64_t m, int64_t n,
               int64_t k) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a[i * k + p] * b[p * n + j];
      }
      c[i * n + j] = acc;
    }
  }
}

constexpr int64_t kTile = 64;

// Computes output rows [row0, row1) with the blocked backend's loop
// order. Rows are independent (each reads shared A/B rows, writes a
// disjoint C range) and a row's accumulation order does not depend on
// which shard runs it — the basis for bitwise-deterministic sharding.
void GemmBlockedRows(const float* a, const float* b, float* c, int64_t row0,
                     int64_t row1, int64_t n, int64_t k) {
  std::memset(c + row0 * n, 0,
              static_cast<size_t>((row1 - row0) * n) * sizeof(float));
  for (int64_t i0 = row0; i0 < row1; i0 += kTile) {
    const int64_t i_end = std::min(i0 + kTile, row1);
    for (int64_t p0 = 0; p0 < k; p0 += kTile) {
      const int64_t p_end = std::min(p0 + kTile, k);
      for (int64_t j0 = 0; j0 < n; j0 += kTile) {
        const int64_t j_end = std::min(j0 + kTile, n);
        for (int64_t i = i0; i < i_end; ++i) {
          for (int64_t p = p0; p < p_end; ++p) {
            const float a_ip = a[i * k + p];
            const float* b_row = b + p * n;
            float* c_row = c + i * n;
            for (int64_t j = j0; j < j_end; ++j) {
              c_row[j] += a_ip * b_row[j];
            }
          }
        }
      }
    }
  }
}

// Worthwhile fan-out: more than one row tile and enough multiply-adds
// that the pool handoff is noise (~4M MACs).
bool WorthSharding(int64_t m, int64_t n, int64_t k) {
  return m > kTile && m * n * k >= (int64_t{1} << 22);
}

void GemmBlocked(const float* a, const float* b, float* c, int64_t m,
                 int64_t n, int64_t k, util::ThreadPool* pool) {
  if (pool == nullptr || !WorthSharding(m, n, k)) {
    GemmBlockedRows(a, b, c, 0, m, n, k);
    return;
  }
  static obs::Counter& parallel_tiles =
      obs::Registry::Default().GetCounter("gemm.parallel_tiles");
  const size_t tiles = static_cast<size_t>((m + kTile - 1) / kTile);
  parallel_tiles.Add(tiles);
  pool->ParallelFor(tiles, [&](size_t t) {
    const int64_t row0 = static_cast<int64_t>(t) * kTile;
    GemmBlockedRows(a, b, c, row0, std::min(row0 + kTile, m), n, k);
  });
}

// Scalar twin of the AVX2 microkernel for C columns [j0, j1): each
// C[i][j] is one fused-multiply-add chain over p = 0..k-1. fmaf rounds
// once per step exactly like vfmadd, so this path is bitwise identical
// to the vector path — it serves both as the portable fallback and as
// the tail-column handler next to the 16-wide panels.
void GemmAvx2ScalarCols(const float* a, const float* b, float* c,
                        int64_t row0, int64_t row1, int64_t j0, int64_t j1,
                        int64_t n, int64_t k) {
  for (int64_t i = row0; i < row1; ++i) {
    const float* a_row = a + i * k;
    for (int64_t j = j0; j < j1; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc = std::fmaf(a_row[p], b[p * n + j], acc);
      }
      c[i * n + j] = acc;
    }
  }
}

// Scalar twin of the microkernel over a *packed* panel region: the
// same fmaf chain as GemmAvx2ScalarCols, addressed through the panel
// layout instead of row-major B. Serves the prepacked entry point when
// dispatch is forced scalar.
void GemmAvx2ScalarPanels(const float* a, const float* panels, float* c,
                          int64_t row0, int64_t row1, int64_t full_cols,
                          int64_t n, int64_t k) {
  for (int64_t i = row0; i < row1; ++i) {
    const float* a_row = a + i * k;
    for (int64_t j = 0; j < full_cols; ++j) {
      const int64_t panel = j / internal::kAvx2PanelCols;
      const int64_t lane = j % internal::kAvx2PanelCols;
      const float* bp = panels + panel * k * internal::kAvx2PanelCols + lane;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc = std::fmaf(a_row[p], bp[p * internal::kAvx2PanelCols], acc);
      }
      c[i * n + j] = acc;
    }
  }
}

// Tail columns of the packed layout (stored column-major after the
// panels): same fmaf chain again, so packed and unpacked kAvx2 agree
// bitwise on every column.
void GemmAvx2ScalarTail(const float* a, const float* tail, float* c,
                        int64_t row0, int64_t row1, int64_t full_cols,
                        int64_t n, int64_t k) {
  for (int64_t i = row0; i < row1; ++i) {
    const float* a_row = a + i * k;
    for (int64_t j = full_cols; j < n; ++j) {
      const float* b_col = tail + (j - full_cols) * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc = std::fmaf(a_row[p], b_col[p], acc);
      }
      c[i * n + j] = acc;
    }
  }
}

void GemmAvx2(const float* a, const float* b, float* c, int64_t m, int64_t n,
              int64_t k, util::ThreadPool* pool) {
  const int64_t full_cols =
      (n / internal::kAvx2PanelCols) * internal::kAvx2PanelCols;
  const bool vectorized = GemmAvx2Accelerated() && full_cols > 0;

  // Pack B's full panels once (column panels of 16, contiguous along
  // p) so the microkernel streams two cache lines per k step; shards
  // share the packed copy read-only. Scratch comes from the buffer
  // pool: a steady-state caller recycles the same chunk instead of
  // paying a heap round trip per call. (Constant operands skip this
  // entirely via GemmPrepacked.)
  util::PooledBuffer packed;
  if (vectorized) {
    packed = AcquireFloatScratch(static_cast<size_t>(full_cols * k));
    for (int64_t panel = 0; panel < full_cols / internal::kAvx2PanelCols;
         ++panel) {
      for (int64_t p = 0; p < k; ++p) {
        std::memcpy(
            FloatScratch(packed) + (panel * k + p) * internal::kAvx2PanelCols,
            b + p * n + panel * internal::kAvx2PanelCols,
            static_cast<size_t>(internal::kAvx2PanelCols) * sizeof(float));
      }
    }
  }

  auto compute_rows = [&](int64_t row0, int64_t row1) {
    if (vectorized) {
      internal::GemmAvx2KernelRows(a, FloatScratch(packed), c, row0, row1, n,
                                   k);
    } else if (full_cols > 0) {
      GemmAvx2ScalarCols(a, b, c, row0, row1, 0, full_cols, n, k);
    }
    if (full_cols < n) {
      GemmAvx2ScalarCols(a, b, c, row0, row1, full_cols, n, n, k);
    }
  };

  if (pool == nullptr || !WorthSharding(m, n, k)) {
    compute_rows(0, m);
    return;
  }
  static obs::Counter& parallel_tiles =
      obs::Registry::Default().GetCounter("gemm.parallel_tiles");
  const size_t tiles = static_cast<size_t>((m + kTile - 1) / kTile);
  parallel_tiles.Add(tiles);
  pool->ParallelFor(tiles, [&](size_t t) {
    const int64_t row0 = static_cast<int64_t>(t) * kTile;
    compute_rows(row0, std::min(row0 + kTile, m));
  });
}

// Inner product phase of the transposed backend over an already
// column-major B (bt[j*k + p]); shared by the per-call transpose path
// and the prepacked path.
void GemmTransposedFromBt(const float* a, const float* bt, float* c,
                          int64_t m, int64_t n, int64_t k) {
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_col = bt + j * k;
      // Four-way partial sums: a distinct accumulation order from the
      // other backends (and measurably faster than strict sequential).
      float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      int64_t p = 0;
      for (; p + 4 <= k; p += 4) {
        s0 += a_row[p] * b_col[p];
        s1 += a_row[p + 1] * b_col[p + 1];
        s2 += a_row[p + 2] * b_col[p + 2];
        s3 += a_row[p + 3] * b_col[p + 3];
      }
      float acc = (s0 + s1) + (s2 + s3);
      for (; p < k; ++p) acc += a_row[p] * b_col[p];
      c[i * n + j] = acc;
    }
  }
}

void GemmTransposed(const float* a, const float* b, float* c, int64_t m,
                    int64_t n, int64_t k) {
  util::PooledBuffer bt = AcquireFloatScratch(static_cast<size_t>(n * k));
  float* btp = FloatScratch(bt);
  for (int64_t p = 0; p < k; ++p) {
    for (int64_t j = 0; j < n; ++j) {
      btp[j * k + p] = b[p * n + j];
    }
  }
  GemmTransposedFromBt(a, btp, c, m, n, k);
}

// Packs B (presented through `get(p, j)`) into `backend`'s hot-path
// layout. One code path serves both row-major B and W^T-without-
// materializing sources.
template <typename Get>
PackedGemmB PackInto(GemmBackend backend, Get get, int64_t n, int64_t k,
                     util::BufferPool* pool) {
  PackedGemmB out;
  out.n = n;
  out.k = k;
  out.backend = backend;
  const size_t floats = static_cast<size_t>(n * k);
  out.storage = pool->Acquire(floats * sizeof(float));
  float* dst = reinterpret_cast<float*>(out.storage.data());
  switch (backend) {
    case GemmBackend::kNaive:
    case GemmBackend::kBlocked:
      for (int64_t p = 0; p < k; ++p) {
        for (int64_t j = 0; j < n; ++j) dst[p * n + j] = get(p, j);
      }
      break;
    case GemmBackend::kTransposed:
      for (int64_t j = 0; j < n; ++j) {
        for (int64_t p = 0; p < k; ++p) dst[j * k + p] = get(p, j);
      }
      break;
    case GemmBackend::kAvx2: {
      const int64_t full_cols =
          (n / internal::kAvx2PanelCols) * internal::kAvx2PanelCols;
      for (int64_t panel = 0; panel < full_cols / internal::kAvx2PanelCols;
           ++panel) {
        for (int64_t p = 0; p < k; ++p) {
          float* row = dst + (panel * k + p) * internal::kAvx2PanelCols;
          for (int64_t lane = 0; lane < internal::kAvx2PanelCols; ++lane) {
            row[lane] = get(p, panel * internal::kAvx2PanelCols + lane);
          }
        }
      }
      float* tail = dst + full_cols * k;
      for (int64_t j = full_cols; j < n; ++j) {
        for (int64_t p = 0; p < k; ++p) {
          tail[(j - full_cols) * k + p] = get(p, j);
        }
      }
      break;
    }
  }
  // Bind-time copies are data-plane work too; charging them here keeps
  // dataplane.bytes_copied honest about where bytes move (once per
  // bind, never per inference).
  util::CountDataPlaneCopy(floats * sizeof(float));
  return out;
}

void GemmAvx2Prepacked(const float* a, const PackedGemmB& packed, float* c,
                       int64_t m, util::ThreadPool* pool) {
  const int64_t n = packed.n, k = packed.k;
  const int64_t full_cols =
      (n / internal::kAvx2PanelCols) * internal::kAvx2PanelCols;
  const bool vectorized = GemmAvx2Accelerated() && full_cols > 0;
  const float* panels = packed.data();
  const float* tail = packed.data() + full_cols * k;

  auto compute_rows = [&](int64_t row0, int64_t row1) {
    if (vectorized) {
      internal::GemmAvx2KernelRows(a, panels, c, row0, row1, n, k);
    } else if (full_cols > 0) {
      GemmAvx2ScalarPanels(a, panels, c, row0, row1, full_cols, n, k);
    }
    if (full_cols < n) {
      GemmAvx2ScalarTail(a, tail, c, row0, row1, full_cols, n, k);
    }
  };

  if (pool == nullptr || !WorthSharding(m, n, k)) {
    compute_rows(0, m);
    return;
  }
  static obs::Counter& parallel_tiles =
      obs::Registry::Default().GetCounter("gemm.parallel_tiles");
  const size_t tiles = static_cast<size_t>((m + kTile - 1) / kTile);
  parallel_tiles.Add(tiles);
  pool->ParallelFor(tiles, [&](size_t t) {
    const int64_t row0 = static_cast<int64_t>(t) * kTile;
    compute_rows(row0, std::min(row0 + kTile, m));
  });
}

}  // namespace

PackedGemmB PackGemmB(GemmBackend backend, const float* b, int64_t n,
                      int64_t k, util::BufferPool* pool) {
  MVTEE_CHECK(n > 0 && k > 0 && pool != nullptr);
  return PackInto(
      backend, [&](int64_t p, int64_t j) { return b[p * n + j]; }, n, k,
      pool);
}

PackedGemmB PackGemmWeightTransposed(GemmBackend backend, const float* w,
                                     int64_t n, int64_t k,
                                     util::BufferPool* pool) {
  MVTEE_CHECK(n > 0 && k > 0 && pool != nullptr);
  return PackInto(
      backend, [&](int64_t p, int64_t j) { return w[j * k + p]; }, n, k,
      pool);
}

void GemmPrepacked(const float* a, const PackedGemmB& packed, float* c,
                   int64_t m) {
  GemmPrepacked(a, packed, c, m, &util::ThreadPool::Shared());
}

void GemmPrepacked(const float* a, const PackedGemmB& packed, float* c,
                   int64_t m, util::ThreadPool* pool) {
  MVTEE_CHECK(packed);
  switch (packed.backend) {
    case GemmBackend::kNaive:
      GemmNaive(a, packed.data(), c, m, packed.n, packed.k);
      return;
    case GemmBackend::kBlocked:
      GemmBlocked(a, packed.data(), c, m, packed.n, packed.k, pool);
      return;
    case GemmBackend::kTransposed:
      GemmTransposedFromBt(a, packed.data(), c, m, packed.n, packed.k);
      return;
    case GemmBackend::kAvx2:
      GemmAvx2Prepacked(a, packed, c, m, pool);
      return;
  }
  MVTEE_CHECK(false);
}

void Gemm(GemmBackend backend, const float* a, const float* b, float* c,
          int64_t m, int64_t n, int64_t k) {
  Gemm(backend, a, b, c, m, n, k, &util::ThreadPool::Shared());
}

void Gemm(GemmBackend backend, const float* a, const float* b, float* c,
          int64_t m, int64_t n, int64_t k, util::ThreadPool* pool) {
  switch (backend) {
    case GemmBackend::kNaive: GemmNaive(a, b, c, m, n, k); return;
    case GemmBackend::kBlocked: GemmBlocked(a, b, c, m, n, k, pool); return;
    case GemmBackend::kTransposed: GemmTransposed(a, b, c, m, n, k); return;
    case GemmBackend::kAvx2: GemmAvx2(a, b, c, m, n, k, pool); return;
  }
  MVTEE_CHECK(false);
}

void GemmChecked(GemmBackend backend, const float* a, size_t a_size,
                 const float* b, size_t b_size, float* c, size_t c_size,
                 int64_t m, int64_t n, int64_t k) {
  MVTEE_CHECK(m >= 0 && n >= 0 && k >= 0);
  // Adversarially large extents must not slip past the bounds check by
  // overflowing the products, so multiply with overflow detection and
  // abort on wrap — this function exists to catch exactly such inputs.
  int64_t mk = 0, kn = 0, mn = 0;
  MVTEE_CHECK(!__builtin_mul_overflow(m, k, &mk));
  MVTEE_CHECK(!__builtin_mul_overflow(k, n, &kn));
  MVTEE_CHECK(!__builtin_mul_overflow(m, n, &mn));
  MVTEE_CHECK(a_size >= static_cast<size_t>(mk));
  MVTEE_CHECK(b_size >= static_cast<size_t>(kn));
  MVTEE_CHECK(c_size >= static_cast<size_t>(mn));
  // With extents proven, reuse the unchecked kernels; the checked entry
  // point also pays a deliberate per-element validation pass to model
  // sanitizer-instrumented builds.
  float guard = 0.0f;
  for (size_t i = 0; i < static_cast<size_t>(mk); ++i) guard = guard + a[i] * 0.0f;
  for (size_t i = 0; i < static_cast<size_t>(kn); ++i) guard = guard + b[i] * 0.0f;
  static volatile float g_guard_sink [[maybe_unused]];
  g_guard_sink = guard;
  Gemm(backend, a, b, c, m, n, k);
}

}  // namespace mvtee::runtime
