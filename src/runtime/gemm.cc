#include "runtime/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace mvtee::runtime {

std::string_view GemmBackendName(GemmBackend backend) {
  switch (backend) {
    case GemmBackend::kNaive: return "naive";
    case GemmBackend::kBlocked: return "blocked";
    case GemmBackend::kTransposed: return "transposed";
  }
  return "unknown";
}

namespace {

void GemmNaive(const float* a, const float* b, float* c, int64_t m, int64_t n,
               int64_t k) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a[i * k + p] * b[p * n + j];
      }
      c[i * n + j] = acc;
    }
  }
}

constexpr int64_t kTile = 64;

// Computes output rows [row0, row1) with the blocked backend's loop
// order. Rows are independent (each reads shared A/B rows, writes a
// disjoint C range) and a row's accumulation order does not depend on
// which shard runs it — the basis for bitwise-deterministic sharding.
void GemmBlockedRows(const float* a, const float* b, float* c, int64_t row0,
                     int64_t row1, int64_t n, int64_t k) {
  std::memset(c + row0 * n, 0,
              static_cast<size_t>((row1 - row0) * n) * sizeof(float));
  for (int64_t i0 = row0; i0 < row1; i0 += kTile) {
    const int64_t i_end = std::min(i0 + kTile, row1);
    for (int64_t p0 = 0; p0 < k; p0 += kTile) {
      const int64_t p_end = std::min(p0 + kTile, k);
      for (int64_t j0 = 0; j0 < n; j0 += kTile) {
        const int64_t j_end = std::min(j0 + kTile, n);
        for (int64_t i = i0; i < i_end; ++i) {
          for (int64_t p = p0; p < p_end; ++p) {
            const float a_ip = a[i * k + p];
            const float* b_row = b + p * n;
            float* c_row = c + i * n;
            for (int64_t j = j0; j < j_end; ++j) {
              c_row[j] += a_ip * b_row[j];
            }
          }
        }
      }
    }
  }
}

// Worthwhile fan-out: more than one row tile and enough multiply-adds
// that the pool handoff is noise (~4M MACs).
bool WorthSharding(int64_t m, int64_t n, int64_t k) {
  return m > kTile && m * n * k >= (int64_t{1} << 22);
}

void GemmBlocked(const float* a, const float* b, float* c, int64_t m,
                 int64_t n, int64_t k, util::ThreadPool* pool) {
  if (pool == nullptr || !WorthSharding(m, n, k)) {
    GemmBlockedRows(a, b, c, 0, m, n, k);
    return;
  }
  static obs::Counter& parallel_tiles =
      obs::Registry::Default().GetCounter("gemm.parallel_tiles");
  const size_t tiles = static_cast<size_t>((m + kTile - 1) / kTile);
  parallel_tiles.Add(tiles);
  pool->ParallelFor(tiles, [&](size_t t) {
    const int64_t row0 = static_cast<int64_t>(t) * kTile;
    GemmBlockedRows(a, b, c, row0, std::min(row0 + kTile, m), n, k);
  });
}

void GemmTransposed(const float* a, const float* b, float* c, int64_t m,
                    int64_t n, int64_t k) {
  std::vector<float> bt(static_cast<size_t>(n * k));
  for (int64_t p = 0; p < k; ++p) {
    for (int64_t j = 0; j < n; ++j) {
      bt[j * k + p] = b[p * n + j];
    }
  }
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_col = bt.data() + j * k;
      // Four-way partial sums: a distinct accumulation order from the
      // other backends (and measurably faster than strict sequential).
      float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      int64_t p = 0;
      for (; p + 4 <= k; p += 4) {
        s0 += a_row[p] * b_col[p];
        s1 += a_row[p + 1] * b_col[p + 1];
        s2 += a_row[p + 2] * b_col[p + 2];
        s3 += a_row[p + 3] * b_col[p + 3];
      }
      float acc = (s0 + s1) + (s2 + s3);
      for (; p < k; ++p) acc += a_row[p] * b_col[p];
      c[i * n + j] = acc;
    }
  }
}

}  // namespace

void Gemm(GemmBackend backend, const float* a, const float* b, float* c,
          int64_t m, int64_t n, int64_t k) {
  Gemm(backend, a, b, c, m, n, k, &util::ThreadPool::Shared());
}

void Gemm(GemmBackend backend, const float* a, const float* b, float* c,
          int64_t m, int64_t n, int64_t k, util::ThreadPool* pool) {
  switch (backend) {
    case GemmBackend::kNaive: GemmNaive(a, b, c, m, n, k); return;
    case GemmBackend::kBlocked: GemmBlocked(a, b, c, m, n, k, pool); return;
    case GemmBackend::kTransposed: GemmTransposed(a, b, c, m, n, k); return;
  }
  MVTEE_CHECK(false);
}

void GemmChecked(GemmBackend backend, const float* a, size_t a_size,
                 const float* b, size_t b_size, float* c, size_t c_size,
                 int64_t m, int64_t n, int64_t k) {
  MVTEE_CHECK(m >= 0 && n >= 0 && k >= 0);
  MVTEE_CHECK(a_size >= static_cast<size_t>(m * k));
  MVTEE_CHECK(b_size >= static_cast<size_t>(k * n));
  MVTEE_CHECK(c_size >= static_cast<size_t>(m * n));
  // With extents proven, reuse the unchecked kernels; the checked entry
  // point also pays a deliberate per-element validation pass to model
  // sanitizer-instrumented builds.
  float guard = 0.0f;
  for (size_t i = 0; i < static_cast<size_t>(m * k); ++i) guard = guard + a[i] * 0.0f;
  for (size_t i = 0; i < static_cast<size_t>(k * n); ++i) guard = guard + b[i] * 0.0f;
  static volatile float g_guard_sink [[maybe_unused]];
  g_guard_sink = guard;
  Gemm(backend, a, b, c, m, n, k);
}

}  // namespace mvtee::runtime
