// AVX2 elementwise/activation kernels. Compiled with -mavx2 only — see
// kernels_avx2.h for why -mfma must stay off this TU.
#include "runtime/kernels_avx2.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace mvtee::runtime::internal {

bool Avx2ElementwiseCompiled() { return true; }

namespace {

// relu(v) = (v > 0) ? v : +0. cmp_gt is false for NaN and for v == ±0,
// so the masked AND yields +0 exactly where the scalar ternary does.
inline __m256 ReluV(__m256 v) {
  return _mm256_and_ps(v, _mm256_cmp_ps(v, _mm256_setzero_ps(), _CMP_GT_OQ));
}

}  // namespace

void ReluAvx2(const float* in, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, ReluV(_mm256_loadu_ps(in + i)));
  }
  for (; i < n; ++i) out[i] = in[i] > 0 ? in[i] : 0.0f;
}

void Relu6Avx2(const float* in, float* out, int64_t n) {
  // std::min(6, u) == (u < 6) ? u : 6 == minps(u, 6) (u is never NaN
  // after ReluV, so the NaN-propagation asymmetry of minps is moot).
  const __m256 six = _mm256_set1_ps(6.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i,
                     _mm256_min_ps(ReluV(_mm256_loadu_ps(in + i)), six));
  }
  for (; i < n; ++i) out[i] = std::min(6.0f, std::max(0.0f, in[i]));
}

void HardSwishAvx2(const float* in, float* out, int64_t n) {
  const __m256 three = _mm256_set1_ps(3.0f);
  const __m256 six = _mm256_set1_ps(6.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(in + i);
    const __m256 u =
        _mm256_min_ps(ReluV(_mm256_add_ps(v, three)), six);
    _mm256_storeu_ps(out + i,
                     _mm256_div_ps(_mm256_mul_ps(v, u), six));
  }
  for (; i < n; ++i) {
    out[i] = in[i] * std::min(6.0f, std::max(0.0f, in[i] + 3.0f)) / 6.0f;
  }
}

void AddAvx2(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void AddScalarAvx2(const float* in, float s, float* out, int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(in + i), sv));
  }
  for (; i < n; ++i) out[i] = in[i] + s;
}

void ScaleAvx2(const float* in, float alpha, float beta, float* out,
               int64_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  const __m256 bv = _mm256_set1_ps(beta);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(in + i), av), bv));
  }
  for (; i < n; ++i) out[i] = in[i] * alpha + beta;
}

float MaxReduceAvx2(const float* x, int64_t n) {
  int64_t i;
  float m;
  if (n >= 8) {
    __m256 acc = _mm256_loadu_ps(x);
    for (i = 8; i + 8 <= n; i += 8) {
      acc = _mm256_max_ps(acc, _mm256_loadu_ps(x + i));
    }
    const __m128 lo = _mm256_castps256_ps128(acc);
    const __m128 hi = _mm256_extractf128_ps(acc, 1);
    __m128 m4 = _mm_max_ps(lo, hi);
    m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
    m4 = _mm_max_ss(m4, _mm_shuffle_ps(m4, m4, 1));
    m = _mm_cvtss_f32(m4);
  } else {
    m = x[0];
    i = 1;
  }
  for (; i < n; ++i) m = std::max(m, x[i]);
  return m;
}

void MulScalarAvx2(float* data, float s, int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(data + i, _mm256_mul_ps(_mm256_loadu_ps(data + i), sv));
  }
  for (; i < n; ++i) data[i] *= s;
}

}  // namespace mvtee::runtime::internal

#else  // !__AVX2__: stub so the TU links everywhere.

namespace mvtee::runtime::internal {

bool Avx2ElementwiseCompiled() { return false; }

void ReluAvx2(const float*, float*, int64_t) {}
void Relu6Avx2(const float*, float*, int64_t) {}
void HardSwishAvx2(const float*, float*, int64_t) {}
void AddAvx2(const float*, const float*, float*, int64_t) {}
void AddScalarAvx2(const float*, float, float*, int64_t) {}
void ScaleAvx2(const float*, float, float, float*, int64_t) {}
float MaxReduceAvx2(const float* x, int64_t) { return x[0]; }
void MulScalarAvx2(float*, float, int64_t) {}

}  // namespace mvtee::runtime::internal

#endif
