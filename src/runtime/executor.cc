#include "runtime/executor.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "util/clock.h"

namespace mvtee::runtime {

using graph::Graph;
using graph::Node;
using graph::NodeId;
using graph::OpType;
using tensor::Tensor;

ExecutorConfig ReferenceExecutorConfig() {
  ExecutorConfig cfg;
  cfg.name = "reference";
  cfg.conv_algo = ConvAlgo::kDirect;
  cfg.gemm = GemmBackend::kNaive;
  return cfg;
}

ExecutorConfig OrtLikeExecutorConfig() {
  ExecutorConfig cfg;
  cfg.name = "ort";
  cfg.conv_algo = ConvAlgo::kIm2col;
  cfg.gemm = GemmBackend::kBlocked;
  cfg.fold_batch_norm = true;
  cfg.inplace_activations = true;
  return cfg;
}

ExecutorConfig TvmLikeExecutorConfig() {
  ExecutorConfig cfg;
  cfg.name = "tvm";
  cfg.conv_algo = ConvAlgo::kIm2col;
  cfg.gemm = GemmBackend::kTransposed;
  cfg.fold_batch_norm = true;
  cfg.inplace_activations = true;
  return cfg;
}

ExecutorConfig MklLikeExecutorConfig() {
  ExecutorConfig cfg;
  cfg.name = "mkl";
  cfg.conv_algo = ConvAlgo::kIm2col;
  // The vectorized library analog: FMA accumulation gives this preset a
  // fourth distinct rounding profile (fused multiply-adds round once per
  // step), bitwise different from all scalar backends yet numerically
  // close — exactly the diversity the threshold checks expect. Runtime
  // dispatch only swaps vector vs scalar-fmaf execution of the *same*
  // order, so host capability never changes this variant's outputs.
  cfg.gemm = GemmBackend::kAvx2;
  cfg.fold_batch_norm = true;
  cfg.inplace_activations = true;
  return cfg;
}

ExecutorConfig HardenedExecutorConfig() {
  ExecutorConfig cfg;
  cfg.name = "hardened";
  cfg.conv_algo = ConvAlgo::kIm2col;
  // Deliberately its own GEMM backend: presets must not share a
  // "library", or one library bug impacts several panel members at once.
  cfg.gemm = GemmBackend::kNaive;
  cfg.bounds_checked = true;
  cfg.slowdown_factor = 1.3;
  return cfg;
}

size_t FoldBatchNormPass(graph::Graph& g) {
  return FoldBatchNormPass(g, [](NodeId) { return true; });
}

size_t FoldBatchNormPass(graph::Graph& g,
                         const std::function<bool(NodeId)>& filter) {
  auto consumers = g.BuildConsumers();
  size_t folds = 0;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    Node& bn = g.node(id);
    if (bn.op != OpType::kBatchNorm) continue;
    if (!filter(id)) continue;
    NodeId conv_id = bn.inputs[0];
    Node& conv = g.node(conv_id);
    if (conv.op != OpType::kConv2d) continue;
    if (consumers[static_cast<size_t>(conv_id)].size() != 1) continue;

    // BN/conv params that are not graph initializers (or have the wrong
    // extents) cannot be folded — skip the fold, never crash, and never
    // mutate the graph before every operand has been validated.
    if (bn.weights.size() < 4 || conv.weights.empty()) continue;
    const Tensor* scale = g.FindInitializer(bn.weights[0]);
    const Tensor* bias = g.FindInitializer(bn.weights[1]);
    const Tensor* mean = g.FindInitializer(bn.weights[2]);
    const Tensor* var = g.FindInitializer(bn.weights[3]);
    Tensor* w = g.MutableInitializer(conv.weights[0]);
    if (scale == nullptr || bias == nullptr || mean == nullptr ||
        var == nullptr || w == nullptr) {
      continue;
    }
    const float eps = bn.attrs.GetFloat("epsilon", 1e-5f);
    if (w->shape().rank() < 1) continue;
    const int64_t oc = w->shape().dim(0);
    if (oc <= 0) continue;
    const int64_t per_oc = w->num_elements() / oc;
    if (scale->num_elements() != oc || bias->num_elements() != oc ||
        mean->num_elements() != oc || var->num_elements() != oc) {
      continue;
    }

    // Conv bias: create if absent; an existing bias that is not an
    // initializer (or mis-sized) also blocks the fold.
    std::string bias_name;
    Tensor* b = nullptr;
    if (conv.weights.size() >= 2) {
      bias_name = conv.weights[1];
      b = g.MutableInitializer(bias_name);
      if (b == nullptr || b->num_elements() != oc) continue;
    } else {
      bias_name = conv.name + ".folded_bias";
      g.AddInitializer(bias_name, Tensor(tensor::Shape({oc})));
      conv.weights.push_back(bias_name);
      b = g.MutableInitializer(bias_name);
    }

    for (int64_t c = 0; c < oc; ++c) {
      const float a = scale->at(c) / std::sqrt(var->at(c) + eps);
      const float shift = bias->at(c) - mean->at(c) * a;
      float* w_slice = w->data() + c * per_oc;
      for (int64_t i = 0; i < per_oc; ++i) w_slice[i] *= a;
      b->at(c) = b->at(c) * a + shift;
    }
    bn.op = OpType::kIdentity;
    bn.weights.clear();
    ++folds;
  }
  if (folds > 0) g.DropUnusedInitializers();
  return folds;
}

Executor::Executor(Graph graph, ExecutorConfig config)
    : graph_(std::move(graph)), config_(std::move(config)) {
  const size_t n = static_cast<size_t>(graph_.num_nodes());
  last_use_.assign(n, graph::kInvalidNode);
  for (const Node& node : graph_.nodes()) {
    for (NodeId in : node.inputs) {
      last_use_[static_cast<size_t>(in)] = node.id;
    }
  }
  is_output_.assign(n, false);
  for (NodeId out : graph_.outputs()) is_output_[static_cast<size_t>(out)] = true;
  // Only resolve instruments for op types this graph actually uses, so
  // the registry dump stays free of never-observed kernels.
  for (const Node& node : graph_.nodes()) {
    const auto op = static_cast<size_t>(node.op);
    if (op_us_[op] == nullptr) {
      op_us_[op] = &obs::Registry::Default().GetHistogram(
          "executor.op." + std::string(graph::OpTypeName(node.op)) + "_us");
    }
  }
  // Pack constant GEMM operands once for this executor's backend; the
  // graph copy is frozen by Create, so the cached bytes cannot go
  // stale. Honors MVTEE_PACK_CACHE=0 (stays unbound; hot path falls
  // back to per-call packing with bitwise-identical outputs).
  pack_cache_.Bind(graph_, config_.gemm);
}

util::Result<std::unique_ptr<Executor>> Executor::Create(
    const Graph& graph, ExecutorConfig config) {
  MVTEE_RETURN_IF_ERROR(graph.Validate());
  {
    auto shapes = graph.InferShapes();
    if (!shapes.ok()) return shapes.status();
  }
  Graph private_copy = graph;  // value copy; passes mutate it
  if (config.fold_batch_norm) FoldBatchNormPass(private_copy);
  // All weight-mutating passes have run; freeze before the weight
  // cache aliases initializer storage.
  private_copy.FreezeInitializers();
  return std::unique_ptr<Executor>(
      new Executor(std::move(private_copy), std::move(config)));
}

util::Result<Tensor> Executor::ExecuteNode(
    const Node& node, std::vector<std::optional<Tensor>>& env) {
  auto in = [&](size_t i) -> const Tensor& {
    return *env[static_cast<size_t>(node.inputs[i])];
  };
  auto weight = [&](size_t i) -> const Tensor* {
    return graph_.FindInitializer(node.weights[i]);
  };

  switch (node.op) {
    case OpType::kInput:
      return util::Internal("input node executed");
    case OpType::kConv2d: {
      ConvParams params;
      params.stride = node.attrs.GetInt("stride", 1);
      params.padding = node.attrs.GetInt("padding", 0);
      params.groups = node.attrs.GetInt("groups", 1);
      const Tensor* bias = node.weights.size() >= 2 ? weight(1) : nullptr;
      if (config_.bounds_checked) {
        // Hardened path: validate operand extents before the kernel runs
        // (aborts on contract violation instead of corrupting memory),
        // and touch every element — modeling sanitizer instrumentation.
        const Tensor& x = in(0);
        const Tensor* w = weight(0);
        MVTEE_CHECK(static_cast<int64_t>(x.storage_size()) ==
                    x.shape().num_elements());
        MVTEE_CHECK(static_cast<int64_t>(w->storage_size()) ==
                    w->shape().num_elements());
        float guard = 0.0f;
        for (int64_t i = 0; i < x.num_elements(); ++i) {
          guard = guard + x.data()[i] * 0.0f;
        }
        static volatile float g_guard_sink [[maybe_unused]];
  g_guard_sink = guard;
      }
      pack_cache_.TouchConv(node.weights[0]);
      return Conv2d(in(0), *weight(0), bias, params, config_.conv_algo,
                    config_.gemm);
    }
    case OpType::kGemm: {
      const Tensor* bias = node.weights.size() >= 2 ? weight(1) : nullptr;
      return FullyConnected(in(0), *weight(0), bias, config_.gemm,
                            pack_cache_.FindGemm(node.weights[0]));
    }
    case OpType::kRelu: return Relu(in(0));
    case OpType::kRelu6: return Relu6(in(0));
    case OpType::kSigmoid: return Sigmoid(in(0));
    case OpType::kHardSwish: return HardSwish(in(0));
    case OpType::kTanh: return Tanh(in(0));
    case OpType::kMaxPool:
      return MaxPool(in(0), node.attrs.GetInt("kernel", 2),
                     node.attrs.GetInt("stride", 2),
                     node.attrs.GetInt("padding", 0));
    case OpType::kAvgPool:
      return AvgPool(in(0), node.attrs.GetInt("kernel", 2),
                     node.attrs.GetInt("stride", 2),
                     node.attrs.GetInt("padding", 0));
    case OpType::kGlobalAvgPool: return GlobalAvgPool(in(0));
    case OpType::kBatchNorm:
      return BatchNorm(in(0), *weight(0), *weight(1), *weight(2), *weight(3),
                       node.attrs.GetFloat("epsilon", 1e-5f));
    case OpType::kAdd: return Add(in(0), in(1));
    case OpType::kMul: return Mul(in(0), in(1));
    case OpType::kConcat: {
      std::vector<const Tensor*> xs;
      xs.reserve(node.inputs.size());
      for (size_t i = 0; i < node.inputs.size(); ++i) xs.push_back(&in(i));
      return Concat(xs);
    }
    case OpType::kFlatten: return Flatten(in(0));
    case OpType::kSoftmax: return Softmax(in(0));
    case OpType::kIdentity: return Tensor(in(0));
    case OpType::kScale:
      return Scale(in(0), node.attrs.GetFloat("alpha", 1.0f),
                   node.attrs.GetFloat("beta", 0.0f));
    case OpType::kReshape: {
      std::vector<int64_t> dims = node.attrs.GetInts("dims");
      const int64_t total = in(0).num_elements();
      int64_t known = 1;
      int infer = -1;
      for (size_t i = 0; i < dims.size(); ++i) {
        if (dims[i] == -1) {
          if (infer >= 0) {
            return util::InvalidArgument(
                "reshape: more than one -1 (inferred) dim");
          }
          infer = static_cast<int>(i);
        } else if (dims[i] <= 0) {
          return util::InvalidArgument("reshape: non-positive dim " +
                                       std::to_string(dims[i]));
        } else {
          known *= dims[i];
        }
      }
      if (infer >= 0) {
        if (known <= 0 || total % known != 0) {
          return util::InvalidArgument(
              "reshape: cannot infer -1 dim (" + std::to_string(total) +
              " elements not divisible by " + std::to_string(known) + ")");
        }
        dims[static_cast<size_t>(infer)] = total / known;
        known = total;
      }
      if (known != total) {
        return util::InvalidArgument(
            "reshape: dims product " + std::to_string(known) +
            " != input element count " + std::to_string(total));
      }
      // Reshape is a metadata change: steal the buffer when the input
      // dies at this node instead of copying it.
      const NodeId src = node.inputs[0];
      if (last_use_[static_cast<size_t>(src)] == node.id &&
          !is_output_[static_cast<size_t>(src)]) {
        Tensor stolen = std::move(*env[static_cast<size_t>(src)]);
        env[static_cast<size_t>(src)].reset();
        return Tensor::Reshape(std::move(stolen),
                               tensor::Shape(std::move(dims)));
      }
      return Tensor::Reshape(in(0), tensor::Shape(std::move(dims)));
    }
  }
  return util::Internal("unknown op");
}

util::Result<std::vector<Tensor>> Executor::Run(
    const std::vector<Tensor>& inputs) {
  const auto start = std::chrono::steady_clock::now();
  // Parents under the caller's live span (variant/infer inside a TEE)
  // through the thread's trace context.
  obs::ScopedSpan run_span("executor/run", {.tag = config_.name}, trace_);

  if (inputs.size() != graph_.inputs().size()) {
    return util::InvalidArgument("expected " +
                                 std::to_string(graph_.inputs().size()) +
                                 " inputs, got " +
                                 std::to_string(inputs.size()));
  }
  std::vector<std::optional<Tensor>> env(
      static_cast<size_t>(graph_.num_nodes()));
  for (size_t i = 0; i < inputs.size(); ++i) {
    NodeId id = graph_.inputs()[i];
    if (inputs[i].shape() != graph_.input_shape(id)) {
      return util::InvalidArgument(
          "input shape mismatch: got " + inputs[i].shape().ToString() +
          " want " + graph_.input_shape(id).ToString());
    }
    env[static_cast<size_t>(id)] = inputs[i];
  }

  for (const Node& node : graph_.nodes()) {
    if (node.op == OpType::kInput) continue;
    if (fault_hook_) {
      MVTEE_RETURN_IF_ERROR(fault_hook_->OnNodeStart(node));
    }
    const int64_t node_cpu0 = util::ThreadCpuMicros();

    // In-place / move fast path for unary ops whose input dies here.
    const bool input_dies =
        node.inputs.size() == 1 &&
        last_use_[static_cast<size_t>(node.inputs[0])] == node.id &&
        !is_output_[static_cast<size_t>(node.inputs[0])];
    if (config_.inplace_activations && input_dies &&
        (node.op == OpType::kRelu || node.op == OpType::kRelu6 ||
         node.op == OpType::kHardSwish || node.op == OpType::kIdentity)) {
      Tensor t = std::move(*env[static_cast<size_t>(node.inputs[0])]);
      env[static_cast<size_t>(node.inputs[0])].reset();
      float* d = t.data();
      // Same dispatched primitives the copying kernels use (AVX2 tier
      // with bitwise-identical scalar fallback), applied in place.
      switch (node.op) {
        case OpType::kRelu:
          elementwise::Relu(d, d, t.num_elements());
          break;
        case OpType::kRelu6:
          elementwise::Relu6(d, d, t.num_elements());
          break;
        case OpType::kHardSwish:
          elementwise::HardSwish(d, d, t.num_elements());
          break;
        default:
          break;
      }
      if (fault_hook_) fault_hook_->OnNodeComplete(node, t);
      env[static_cast<size_t>(node.id)] = std::move(t);
    } else {
      MVTEE_ASSIGN_OR_RETURN(Tensor out, ExecuteNode(node, env));
      if (fault_hook_) fault_hook_->OnNodeComplete(node, out);
      env[static_cast<size_t>(node.id)] = std::move(out);
    }
    op_us_[static_cast<size_t>(node.op)]->Observe(util::ThreadCpuMicros() -
                                                  node_cpu0);

    // Reclaim buffers whose last consumer was this node.
    for (NodeId in : node.inputs) {
      if (last_use_[static_cast<size_t>(in)] == node.id &&
          !is_output_[static_cast<size_t>(in)]) {
        env[static_cast<size_t>(in)].reset();
      }
    }
  }

  std::vector<Tensor> outputs;
  outputs.reserve(graph_.outputs().size());
  for (NodeId out : graph_.outputs()) {
    if (!env[static_cast<size_t>(out)].has_value()) {
      return util::Internal("output not computed");
    }
    outputs.push_back(*env[static_cast<size_t>(out)]);
  }

  if (config_.slowdown_factor > 1.0) {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    std::this_thread::sleep_for(elapsed * (config_.slowdown_factor - 1.0));
  }
  return outputs;
}

}  // namespace mvtee::runtime
