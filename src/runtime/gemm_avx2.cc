// AVX2/FMA packed-panel GEMM microkernel. Compiled with -mavx2 -mfma
// (per-file, see runtime/CMakeLists.txt); only reached after runtime
// CPUID dispatch says the host executes those instructions.
#include "runtime/gemm_avx2.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

namespace mvtee::runtime::internal {

bool Avx2KernelCompiled() { return true; }

namespace {

// R-row x 16-column register tile: two YMM accumulators per row, one
// broadcast of A per row per k step. Every C[i][j] lane accumulates
// p = 0..k-1 sequentially through vfmadd — bitwise the same chain the
// scalar fmaf fallback produces.
template <int R>
void MicroKernel(const float* a, const float* bp, float* c, int64_t i0,
                 int64_t j0, int64_t n, int64_t k) {
  __m256 acc0[R], acc1[R];
  for (int r = 0; r < R; ++r) {
    acc0[r] = _mm256_setzero_ps();
    acc1[r] = _mm256_setzero_ps();
  }
  for (int64_t p = 0; p < k; ++p) {
    const float* b_row = bp + p * kAvx2PanelCols;
    const __m256 b0 = _mm256_loadu_ps(b_row);
    const __m256 b1 = _mm256_loadu_ps(b_row + 8);
    for (int r = 0; r < R; ++r) {
      const __m256 av = _mm256_set1_ps(a[(i0 + r) * k + p]);
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  for (int r = 0; r < R; ++r) {
    _mm256_storeu_ps(c + (i0 + r) * n + j0, acc0[r]);
    _mm256_storeu_ps(c + (i0 + r) * n + j0 + 8, acc1[r]);
  }
}

}  // namespace

void GemmAvx2KernelRows(const float* a, const float* packed_b, float* c,
                        int64_t row0, int64_t row1, int64_t n, int64_t k) {
  const int64_t panels = n / kAvx2PanelCols;
  for (int64_t panel = 0; panel < panels; ++panel) {
    const float* bp = packed_b + panel * k * kAvx2PanelCols;
    const int64_t j0 = panel * kAvx2PanelCols;
    int64_t i0 = row0;
    for (; i0 + kAvx2RowBlock <= row1; i0 += kAvx2RowBlock) {
      MicroKernel<6>(a, bp, c, i0, j0, n, k);
    }
    switch (row1 - i0) {
      case 5: MicroKernel<5>(a, bp, c, i0, j0, n, k); break;
      case 4: MicroKernel<4>(a, bp, c, i0, j0, n, k); break;
      case 3: MicroKernel<3>(a, bp, c, i0, j0, n, k); break;
      case 2: MicroKernel<2>(a, bp, c, i0, j0, n, k); break;
      case 1: MicroKernel<1>(a, bp, c, i0, j0, n, k); break;
      default: break;
    }
  }
}

}  // namespace mvtee::runtime::internal

#else  // !(__AVX2__ && __FMA__): stub so the TU links everywhere.

namespace mvtee::runtime::internal {

bool Avx2KernelCompiled() { return false; }

void GemmAvx2KernelRows(const float*, const float*, float*, int64_t,
                        int64_t, int64_t, int64_t) {}

}  // namespace mvtee::runtime::internal

#endif
