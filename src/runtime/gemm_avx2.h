// Internal interface of the AVX2/FMA GEMM microkernel TU (gemm_avx2.cc).
//
// gemm_avx2.cc is the only runtime TU compiled with -mavx2 -mfma; it
// must contain nothing that executes before the caller has consulted
// util::UseAvx2Gemm(). On targets where those flags are unavailable the
// TU compiles to a stub whose Avx2KernelCompiled() returns false and
// the kAvx2 backend runs its scalar fmaf fallback (gemm.cc), which
// reproduces the microkernel's accumulation order bitwise.
#pragma once

#include <cstdint>

namespace mvtee::runtime::internal {

// Microkernel geometry. 16 columns = two YMM accumulators per row;
// 6 rows fills the register file (12 accumulators + 2 B loads + 1
// broadcast out of 16 YMM registers).
inline constexpr int64_t kAvx2PanelCols = 16;
inline constexpr int64_t kAvx2RowBlock = 6;

// True when this binary carries the vector microkernel.
bool Avx2KernelCompiled();

// Computes C rows [row0,row1) over the full 16-column panels of
// `packed_b` (layout: packed_b[(panel*k + p)*16 + lane], covering
// columns [0, 16*(n/16))). Tail columns are the caller's job. Each
// C[i][j] accumulates p = 0..k-1 as a single fused-multiply-add chain —
// the contract the scalar fallback mirrors with fmaf.
void GemmAvx2KernelRows(const float* a, const float* packed_b, float* c,
                        int64_t row0, int64_t row1, int64_t n, int64_t k);

}  // namespace mvtee::runtime::internal
