// GEMM backends: C[M,N] = A[M,K] x B[K,N].
//
// The paper's instance-level diversity comes from different acceleration
// libraries (OpenBLAS vs Eigen vs MKL) under different runtimes. Here the
// same role is played by four genuinely distinct GEMM implementations
// with different loop orders, memory access patterns and floating-point
// accumulation orders — so diversified variants produce *bitwise
// different but numerically close* results, exactly the situation
// MVTEE's threshold-based checkpoint checks are designed for.
//
// kAvx2 is the vectorized member of the family: a packed-panel FMA
// microkernel compiled into its own TU with -mavx2 -mfma and selected
// through util::cpu_features runtime dispatch. Its scalar fallback
// (compiled unconditionally, fmaf-based) reproduces the microkernel's
// fused-multiply-add accumulation order exactly, so a given input
// yields bitwise identical results whether the host dispatches the
// vector path or the fallback — dispatch is a speed decision, never a
// diversity axis.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/buffer_pool.h"
#include "util/thread_pool.h"

namespace mvtee::runtime {

enum class GemmBackend : uint8_t {
  kNaive = 0,      // textbook i-j-k ("reference BLAS")
  kBlocked,        // cache-tiled i-k-j ("OpenBLAS-like")
  kTransposed,     // B transposed then row-dot ("Eigen-like")
  kAvx2,           // packed-panel FMA microkernel ("MKL-like"), runtime
                   // dispatched with a bitwise-identical scalar fallback
};

std::string_view GemmBackendName(GemmBackend backend);

// Plain GEMM. C is fully overwritten. The default entry point shards
// the blocked backend's independent row tiles across the process-wide
// worker pool (util::ThreadPool::Shared) when the product is large
// enough to amortize the fan-out; pass an explicit pool (or nullptr to
// force serial) via the second overload. Row sharding preserves each
// output row's accumulation order, so the parallel result is bitwise
// identical to the serial one.
void Gemm(GemmBackend backend, const float* a, const float* b, float* c,
          int64_t m, int64_t n, int64_t k);
void Gemm(GemmBackend backend, const float* a, const float* b, float* c,
          int64_t m, int64_t n, int64_t k, util::ThreadPool* pool);

// A constant B operand packed once into the layout its backend consumes
// on the hot path, so per-call Gemm() setup (the kAvx2 panel pack, the
// kTransposed B transpose, the FC weight transpose) happens exactly once
// at model bind time. Storage is a BufferPool keepalive chunk: the pool
// charges the bytes (pool.* accounting) and the chunk returns to the
// pool when the owning cache dies. n*k floats for every backend:
//   kNaive/kBlocked : row-major B[k][n] (these backends stream B as-is;
//                     packing from a weight just caches the transpose)
//   kTransposed     : bt[j*k + p] (column-major B == row-major B^T)
//   kAvx2           : full 16-column panels [(panel*k + p)*16 + lane]
//                     followed by the tail columns column-major
struct PackedGemmB {
  util::PooledBuffer storage;
  int64_t n = 0;
  int64_t k = 0;
  GemmBackend backend = GemmBackend::kNaive;

  const float* data() const {
    return reinterpret_cast<const float*>(storage.data());
  }
  size_t bytes() const { return storage.size(); }
  explicit operator bool() const { return static_cast<bool>(storage); }
};

// Packs a row-major B[k][n] for `backend`.
PackedGemmB PackGemmB(GemmBackend backend, const float* b, int64_t n,
                      int64_t k, util::BufferPool* pool);

// Packs the B = W^T operand of y = x W^T directly from a row-major FC
// weight W[n][k] ([OUT, IN]) without materializing the transpose.
PackedGemmB PackGemmWeightTransposed(GemmBackend backend, const float* w,
                                     int64_t n, int64_t k,
                                     util::BufferPool* pool);

// Gemm over a prepacked B. Bitwise identical to Gemm() with the same
// backend on the unpacked operand: packing only relocates B's values;
// every backend's accumulation order is unchanged, including the kAvx2
// scalar fallback, which reads the packed panels with the same fmaf
// chain the vector microkernel uses. Performs no allocation.
void GemmPrepacked(const float* a, const PackedGemmB& packed, float* c,
                   int64_t m);
void GemmPrepacked(const float* a, const PackedGemmB& packed, float* c,
                   int64_t m, util::ThreadPool* pool);

// Bounds-checked GEMM used by hardened ("sanitizer") variants: every
// access is validated against the declared extents; out-of-contract
// calls abort instead of corrupting memory. a_size/b_size/c_size are the
// element counts of the underlying buffers.
void GemmChecked(GemmBackend backend, const float* a, size_t a_size,
                 const float* b, size_t b_size, float* c, size_t c_size,
                 int64_t m, int64_t n, int64_t k);

// True when the kAvx2 backend will run its vector microkernel on this
// host (TU compiled in, CPUID says AVX2+FMA, MVTEE_SIMD not 0). When
// false, kAvx2 still works through the scalar fmaf fallback.
bool GemmAvx2Accelerated();

}  // namespace mvtee::runtime
