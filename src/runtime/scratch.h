// Pool-backed float scratch for kernel internals.
//
// Kernels that need per-call working memory (im2col column matrices,
// per-call B-operand packing, weight transposes on the uncached path)
// draw it from util::BufferPool::Default() instead of fresh heap
// vectors, so a steady-state inference loop recycles the same chunks —
// visible as pool.hits with zero pool.misses growth in /metrics, which
// is how the zero-alloc hot-path claim is verified. PooledBuffer bytes
// come from operator new (>= 16-byte alignment), so reinterpreting as
// float is well-defined for both scalar and unaligned AVX access.
#pragma once

#include "util/buffer_pool.h"

namespace mvtee::runtime {

inline util::PooledBuffer AcquireFloatScratch(size_t count) {
  return util::BufferPool::Default().Acquire(count * sizeof(float));
}

inline float* FloatScratch(util::PooledBuffer& b) {
  return reinterpret_cast<float*>(b.data());
}

inline const float* FloatScratch(const util::PooledBuffer& b) {
  return reinterpret_cast<const float*>(b.data());
}

}  // namespace mvtee::runtime
